// Regenerates the Section 3.3 risk observation: "instead of dealing with
// decentralized content sources to monitor, authorities can exert control at
// a handful of local choke points". Per country, counts how few facilities
// intercept 50% / 90% of the country's offnet-served traffic.
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 3.3 -- choke points for control and filtering");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section33_study(pipeline)).c_str());

  std::printf(
      "Paper claim to hold: in countries where most users sit in ISPs with\n"
      "colocated offnets, a handful of facilities carries most offnet-served\n"
      "traffic -- a small set of local choke points.\n");
  print_footer("section33_chokepoints", watch, pipeline);
  return 0;
}
