// Warm-start benchmark: how much does the persistent artifact store save?
//
// Runs the heavy paper studies (Table 1, Table 2, Figure 2) twice over one
// artifact store root: a cold pass into an empty store (computes and
// publishes every artifact) and a warm pass with a fresh Pipeline over the
// same root (population, scan, per-ISP latency matrices and clusterings all
// come from disk). The warm outputs are checked bit-identical to the cold
// ones -- the store's core contract -- and the speedup is reported.
//
// The store lives in <bench_out>/warm_start.store and is wiped at startup so
// the cold pass is honestly cold; the REPRO_STORE env toggle is ignored here
// on purpose (this harness must never evict a store the user cares about).
//
// Artifacts: BENCH_warm_start.json with "speedup", "store.hit",
// "store.miss" and "store.corrupt" fields (the store counters of the warm
// pass). Exits nonzero if the warm pass is not bit-identical.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_common.h"
#include "store/artifact_store.h"

namespace {

using namespace repro;

struct PassResult {
  std::string table1;
  std::string table2;
  std::string figure2;
  std::map<std::string, fault::StageHealth> stages;
  double seconds = 0.0;
};

PassResult run_pass(const Scenario& scenario,
                    std::shared_ptr<store::ArtifactStore> artifacts) {
  bench::Stopwatch watch;
  Pipeline pipeline(scenario, fault::FaultPlan::none(), std::move(artifacts));
  PassResult result;
  result.table1 = render(table1_study(pipeline));
  result.table2 = render(table2_study(pipeline, bench::kPaperXis));
  result.figure2 = render(figure2_study(pipeline, bench::kPaperXis));
  result.stages = pipeline.stage_health();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace

int main() {
  using namespace repro;
  namespace fs = std::filesystem;
  bench::Stopwatch total;
  bench::print_header("Warm start: artifact-store cold vs. warm pipeline");

  const Scenario scenario = bench::scenario_from_env();
  const char* dir = std::getenv("REPRO_BENCH_OUT");
  const fs::path root =
      fs::path(dir == nullptr ? "bench_output" : dir) / "warm_start.store";
  std::error_code ec;
  fs::remove_all(root, ec);

  store::StoreConfig config;
  config.root = root.string();

  std::printf("cold pass (store: %s)...\n", config.root.c_str());
  auto cold_store = std::make_shared<store::ArtifactStore>(config);
  const PassResult cold = run_pass(scenario, cold_store);
  const store::StoreStats cold_stats = cold_store->stats();
  std::printf("  %.1f s; %llu artifacts saved (%.1f MB)\n", cold.seconds,
              static_cast<unsigned long long>(cold_stats.saved),
              cold_store->used_mb());

  std::printf("warm pass...\n");
  auto warm_store = std::make_shared<store::ArtifactStore>(config);
  const PassResult warm = run_pass(scenario, warm_store);
  const store::StoreStats warm_stats = warm_store->stats();
  std::printf("  %.1f s; %llu hits, %llu misses, %llu corrupt\n", warm.seconds,
              static_cast<unsigned long long>(warm_stats.hits),
              static_cast<unsigned long long>(warm_stats.misses),
              static_cast<unsigned long long>(warm_stats.corrupt));

  const bool identical = warm.table1 == cold.table1 &&
                         warm.table2 == cold.table2 &&
                         warm.figure2 == cold.figure2;
  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::printf("\nwarm outputs bit-identical to cold: %s\n",
              identical ? "yes" : "NO -- STORE CONTRACT VIOLATED");
  std::printf("speedup: %.1fx (cold %.1f s -> warm %.1f s)\n", speedup,
              cold.seconds, warm.seconds);

  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
                "\"speedup\":%.3f,\"identical\":%s,\"store.hit\":%llu,"
                "\"store.miss\":%llu,\"store.corrupt\":%llu",
                cold.seconds, warm.seconds, speedup,
                identical ? "true" : "false",
                static_cast<unsigned long long>(warm_stats.hits),
                static_cast<unsigned long long>(warm_stats.misses),
                static_cast<unsigned long long>(warm_stats.corrupt));
  bench::print_footer("warm_start", total, warm.stages, extra);
  return identical ? 0 : 1;
}
