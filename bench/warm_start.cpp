// Warm-start benchmark: how much does the persistent artifact store save?
//
// Runs the heavy paper studies (Table 1, Table 2, Figure 2) twice over one
// artifact store root: a cold pass into an empty store (computes and
// publishes every artifact) and a warm pass with a fresh Pipeline over the
// same root (population, scan, per-ISP latency matrices and clusterings all
// come from disk). The warm outputs are checked bit-identical to the cold
// ones -- the store's core contract -- and the speedup is reported.
//
// The store lives in <bench_out>/warm_start.store and is wiped at startup so
// the cold pass is honestly cold; the REPRO_STORE env toggle is ignored here
// on purpose (this harness must never evict a store the user cares about).
//
// Each pass is timed end to end -- Pipeline construction (topology
// generation, or its warm load from the Internet artifact) plus all three
// studies -- so the reported speedup reflects a user-visible run, not just
// the study phase. The Pipeline constructor is also timed on its own and the
// store hit counter snapshotted around it, so the BENCH line records whether
// the warm pass actually skipped topology generation ("warm_topology_hit").
//
// Artifacts: BENCH_warm_start.json with "speedup" (end-to-end),
// "cold_pipeline_seconds"/"warm_pipeline_seconds", "warm_topology_hit",
// "store.hit", "store.miss" and "store.corrupt" fields (the store counters
// of the warm pass). Exits nonzero if the warm pass is not bit-identical.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_common.h"
#include "store/artifact_store.h"

namespace {

using namespace repro;

struct PassResult {
  std::string table1;
  std::string table2;
  std::string figure2;
  std::map<std::string, fault::StageHealth> stages;
  /// End-to-end: Pipeline construction (topology) plus all three studies.
  double seconds = 0.0;
  /// Pipeline construction alone: topology generation, or its warm load.
  double pipeline_seconds = 0.0;
  /// Store hits during construction (>=1 means the topology came warm).
  std::uint64_t construction_hits = 0;
};

PassResult run_pass(const Scenario& scenario,
                    const std::shared_ptr<store::ArtifactStore>& artifacts) {
  bench::Stopwatch watch;
  const std::uint64_t hits_before = artifacts->stats().hits;
  Pipeline pipeline(scenario, fault::FaultPlan::none(), artifacts);
  PassResult result;
  result.pipeline_seconds = watch.seconds();
  result.construction_hits = artifacts->stats().hits - hits_before;
  result.table1 = render(table1_study(pipeline));
  result.table2 = render(table2_study(pipeline, bench::kPaperXis));
  result.figure2 = render(figure2_study(pipeline, bench::kPaperXis));
  result.stages = pipeline.stage_health();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace

int main() {
  using namespace repro;
  namespace fs = std::filesystem;
  bench::Stopwatch total;
  bench::print_header("Warm start: artifact-store cold vs. warm pipeline");

  const Scenario scenario = bench::scenario_from_env();
  const char* dir = std::getenv("REPRO_BENCH_OUT");
  const fs::path root =
      fs::path(dir == nullptr ? "bench_output" : dir) / "warm_start.store";
  std::error_code ec;
  fs::remove_all(root, ec);

  store::StoreConfig config;
  config.root = root.string();

  std::printf("cold pass (store: %s)...\n", config.root.c_str());
  auto cold_store = std::make_shared<store::ArtifactStore>(config);
  const PassResult cold = run_pass(scenario, cold_store);
  const store::StoreStats cold_stats = cold_store->stats();
  std::printf("  %.1f s end to end (%.1f s topology); %llu artifacts saved (%.1f MB)\n",
              cold.seconds, cold.pipeline_seconds,
              static_cast<unsigned long long>(cold_stats.saved),
              cold_store->used_mb());

  std::printf("warm pass...\n");
  auto warm_store = std::make_shared<store::ArtifactStore>(config);
  const PassResult warm = run_pass(scenario, warm_store);
  const store::StoreStats warm_stats = warm_store->stats();
  const bool warm_topology_hit = warm.construction_hits >= 1;
  std::printf("  %.1f s end to end (%.1f s topology, %s); "
              "%llu hits, %llu misses, %llu corrupt\n",
              warm.seconds, warm.pipeline_seconds,
              warm_topology_hit ? "loaded warm" : "REGENERATED",
              static_cast<unsigned long long>(warm_stats.hits),
              static_cast<unsigned long long>(warm_stats.misses),
              static_cast<unsigned long long>(warm_stats.corrupt));

  const bool identical = warm.table1 == cold.table1 &&
                         warm.table2 == cold.table2 &&
                         warm.figure2 == cold.figure2;
  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::printf("\nwarm outputs bit-identical to cold: %s\n",
              identical ? "yes" : "NO -- STORE CONTRACT VIOLATED");
  std::printf("end-to-end speedup: %.1fx (cold %.1f s -> warm %.1f s)\n",
              speedup, cold.seconds, warm.seconds);

  char extra[512];
  std::snprintf(extra, sizeof(extra),
                "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
                "\"cold_pipeline_seconds\":%.6f,"
                "\"warm_pipeline_seconds\":%.6f,"
                "\"warm_topology_hit\":%s,"
                "\"speedup\":%.3f,\"identical\":%s,\"store.hit\":%llu,"
                "\"store.miss\":%llu,\"store.corrupt\":%llu",
                cold.seconds, warm.seconds, cold.pipeline_seconds,
                warm.pipeline_seconds, warm_topology_hit ? "true" : "false",
                speedup, identical ? "true" : "false",
                static_cast<unsigned long long>(warm_stats.hits),
                static_cast<unsigned long long>(warm_stats.misses),
                static_cast<unsigned long long>(warm_stats.corrupt));
  bench::print_footer("warm_start", total, warm.stages, extra);
  return identical ? 0 : 1;
}
