// Regenerates the Section 4.1 evidence that offnets run near capacity:
//   * single-site fractions per hypergiant (from the clustering),
//   * the COVID lockdown surge arithmetic (+58% demand -> offnets +20%,
//     interdomain more than doubles),
//   * the 530-apartment diurnal study (peak hours shift traffic to distant
//     servers).
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 4.1 -- offnets run near capacity");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section41_study(pipeline, kPaperXis)).c_str());

  std::printf(
      "Paper reference: 75.3-91.2%% of ISPs have a single Netflix site,\n"
      "37.8-64.3%% single Meta, 34.3-78.4%% single Google, 34.6-75.1%%\n"
      "single Akamai; lockdown: offnets +20%% vs demand +58%%, interdomain\n"
      "more than doubled; at peak, distant servers carry a larger share.\n");
  print_footer("section41_capacity", watch, pipeline);
  return 0;
}
