// Regenerates the Section 3.2 methodological point: "with existing
// methodologies, it is impossible to know which users are served from which
// offnets". Runs the 2013 EDNS-Client-Subnet mapping technique against the
// three redirection policies:
//   * the 2013-era geo-DNS (where the technique worked),
//   * the 2023-era embedded-URL redirection of Google/Netflix/Meta
//     (coverage collapses to zero),
//   * Akamai's resolver allowlist (works only from an allow-listed vantage).
#include "bench_common.h"

#include "dns/mapping_study.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 3.2 -- why DNS can no longer map users to offnets");

  Pipeline pipeline(scenario_from_env());
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  const RequestRouter router(pipeline.internet(), registry);

  TextTable table({"hypergiant", "policy", "vantage", "prefixes->offnet",
                   "offnet IPs", "offnet ISPs", "ISP recall"});
  const Ipv4 public_resolver = Ipv4::parse("8.8.8.8");
  const Ipv4 trusted_resolver = Ipv4::parse("9.9.9.9");

  const auto run = [&](Hypergiant hg, RedirectionPolicy policy, Ipv4 resolver,
                       const char* vantage) {
    const AuthoritativeDns dns(router, hg, policy, {trusted_resolver});
    EcsMappingConfig config;
    config.resolver = resolver;
    const EcsMappingResult result =
        ecs_mapping_study(pipeline.internet(), registry, router, dns, config);
    table.add_row({std::string(to_string(hg)), std::string(to_string(policy)),
                   vantage,
                   with_commas((long long)result.prefixes_mapped_to_offnet),
                   with_commas((long long)result.distinct_offnet_ips),
                   with_commas((long long)result.distinct_offnet_isps),
                   format_percent(result.isp_recall)});
  };

  for (const Hypergiant hg :
       {Hypergiant::kGoogle, Hypergiant::kNetflix, Hypergiant::kMeta}) {
    run(hg, RedirectionPolicy::kGeoDns2013, public_resolver, "public");
    run(hg, RedirectionPolicy::kEmbeddedUrl2023, public_resolver, "public");
  }
  run(Hypergiant::kAkamai, RedirectionPolicy::kEcsAllowlist, trusted_resolver,
      "allow-listed");
  run(Hypergiant::kAkamai, RedirectionPolicy::kEcsAllowlist, public_resolver,
      "public");

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: the 2013 technique mapped Google's serving\n"
      "infrastructure via DNS; Google/Netflix/Meta now direct users with\n"
      "URLs embedded in returned pages (DNS reveals nothing), and Akamai\n"
      "only answers ECS from allow-listed resolvers.\n");
  print_footer("section32_dns", watch, pipeline);
  return 0;
}
