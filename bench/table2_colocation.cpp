// Regenerates Table 2: per hypergiant and per clustering setting
// (xi = 0.1 / 0.9), the share of hosting ISPs whose offnets are colocated
// with another hypergiant's offnets, bucketed {sole, 0%, (0,50)%, [50,100)%,
// 100%}. Runs the full measurement pipeline: ping mesh from the vantage
// points, Appendix-A filters, per-ISP OPTICS clustering.
//
// The BENCH json line records the clustering stage's wall time and thread
// count. With REPRO_SPEEDUP=1 a second, serial (threads = 1) pipeline is run
// as a baseline and the line gains clustering_serial_seconds /
// clustering_speedup -- off by default because the extra run doubles the
// harness cost and re-executes every stage counter.
#include "bench_common.h"
#include "util/thread_pool.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Table 2 -- colocation of offnets across hypergiants");

  Pipeline pipeline(scenario_from_env());
  // Materialize everything upstream of clustering so the stage timer below
  // sees clustering alone, not discovery or the ping mesh.
  pipeline.hosting_isps_2023();
  pipeline.ping_mesh();
  const Stopwatch cluster_watch;
  pipeline.clusterings(0.1);
  const double cluster_seconds = cluster_watch.seconds();
  const std::size_t cluster_threads = default_thread_count();

  std::printf("%s\n", render(table2_study(pipeline, kPaperXis)).c_str());

  std::printf(
      "Paper reference (sole / 0 / (0,50) / [50,100) / 100):\n"
      "  Google  xi=0.1: 31/15/12/ 9/33   xi=0.9: 31/ 2/ 2/ 3/62\n"
      "  Akamai  xi=0.1: 16/25/36/ 7/16   xi=0.9: 16/ 7/ 4/15/58\n"
      "  Meta    xi=0.1:  6/23/27/12/32   xi=0.9:  6/ 4/ 2/ 4/84\n"
      "  Netflix xi=0.1: 12/21/10/11/46   xi=0.9: 12/ 8/ 2/ 7/71\n"
      "Shape to hold: colocation widespread for every hypergiant; xi=0.9\n"
      "shows far more full colocation; Akamai the most partial deployments.\n");
  std::printf("\nclustering: %.1f s on %zu threads\n", cluster_seconds,
              cluster_threads);

  char fields[256];
  std::snprintf(fields, sizeof(fields),
                "\"clustering_seconds\":%.6f,\"clustering_threads\":%zu",
                cluster_seconds, cluster_threads);
  std::string extra = fields;

  const char* speedup_env = std::getenv("REPRO_SPEEDUP");
  if (speedup_env != nullptr && std::string(speedup_env) == "1" &&
      cluster_threads > 1) {
    set_default_thread_count(1);
    Pipeline serial(scenario_from_env());
    serial.hosting_isps_2023();
    serial.ping_mesh();
    const Stopwatch serial_watch;
    serial.clusterings(0.1);
    const double serial_seconds = serial_watch.seconds();
    set_default_thread_count(0);
    const double speedup =
        cluster_seconds > 0.0 ? serial_seconds / cluster_seconds : 0.0;
    std::printf("serial baseline: %.1f s (speedup %.2fx)\n", serial_seconds,
                speedup);
    std::snprintf(fields, sizeof(fields),
                  ",\"clustering_serial_seconds\":%.6f,"
                  "\"clustering_speedup\":%.3f",
                  serial_seconds, speedup);
    extra += fields;
  }

  print_footer("table2_colocation", watch, pipeline, extra);
  return 0;
}
