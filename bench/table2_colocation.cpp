// Regenerates Table 2: per hypergiant and per clustering setting
// (xi = 0.1 / 0.9), the share of hosting ISPs whose offnets are colocated
// with another hypergiant's offnets, bucketed {sole, 0%, (0,50)%, [50,100)%,
// 100%}. Runs the full measurement pipeline: ping mesh from the vantage
// points, Appendix-A filters, per-ISP OPTICS clustering.
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Table 2 -- colocation of offnets across hypergiants");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(table2_study(pipeline, kPaperXis)).c_str());

  std::printf(
      "Paper reference (sole / 0 / (0,50) / [50,100) / 100):\n"
      "  Google  xi=0.1: 31/15/12/ 9/33   xi=0.9: 31/ 2/ 2/ 3/62\n"
      "  Akamai  xi=0.1: 16/25/36/ 7/16   xi=0.9: 16/ 7/ 4/15/58\n"
      "  Meta    xi=0.1:  6/23/27/12/32   xi=0.9:  6/ 4/ 2/ 4/84\n"
      "  Netflix xi=0.1: 12/21/10/11/46   xi=0.9: 12/ 8/ 2/ 7/71\n"
      "Shape to hold: colocation widespread for every hypergiant; xi=0.9\n"
      "shows far more full colocation; Akamai the most partial deployments.\n");
  print_footer("table2_colocation", watch);
  return 0;
}
