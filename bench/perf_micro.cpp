// google-benchmark microbenchmarks for the computational kernels: the
// trimmed-Manhattan distance, pairwise distance matrices, OPTICS ordering
// and xi extraction, valley-free route computation, traceroute synthesis,
// scan classification, and the deterministic RNG.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/optics.h"
#include "obs/report.h"
#include "hypergiant/background.h"
#include "mlab/ping_mesh.h"
#include "route/peering_inference.h"
#include "scan/classifier.h"
#include "topology/generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro {
namespace {

// Shared tiny world (built once; benchmarks must not mutate it).
const Internet& world() {
  static const Internet net =
      InternetGenerator(GeneratorConfig::tiny()).generate();
  return net;
}

const OffnetRegistry& registry() {
  static const OffnetRegistry reg = [] {
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    return DeploymentPolicy(world(), config).deploy(Snapshot::k2023);
  }();
  return reg;
}

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.lognormal(0.0, 0.5));
}
BENCHMARK(BM_RngLognormal);

void BM_TrimmedManhattan(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> a(cols);
  std::vector<double> b(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    a[i] = rng.uniform(10.0, 200.0);
    b[i] = rng.uniform(10.0, 200.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trimmed_manhattan(a, b, 0.2));
  }
}
BENCHMARK(BM_TrimmedManhattan)->Arg(40)->Arg(163);

void BM_PairwiseDistances(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = 163;
  Rng rng(3);
  std::vector<double> table(rows * cols);
  for (auto& value : table) value = rng.uniform(10.0, 200.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairwise_distances(table, rows, cols, 0.2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseDistances)->Arg(16)->Arg(64)->Arg(256)->Complexity();

// Same kernel pinned to one thread, for a serial-vs-pool comparison against
// BM_PairwiseDistances (which uses the REPRO_THREADS / hardware default).
void BM_PairwiseDistancesSerial(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = 163;
  Rng rng(3);
  std::vector<double> table(rows * cols);
  for (auto& value : table) value = rng.uniform(10.0, 200.0);
  set_default_thread_count(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairwise_distances(table, rows, cols, 0.2));
  }
  set_default_thread_count(0);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseDistancesSerial)->Arg(64)->Arg(256)->Complexity();

DistanceMatrix random_blobs(std::size_t n, std::size_t blobs) {
  Rng rng(4);
  std::vector<double> positions(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions[i] = static_cast<double>(i % blobs) * 1000.0 +
                   static_cast<double>(i) + rng.uniform(-0.02, 0.02);
  }
  DistanceMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, std::abs(positions[i] - positions[j]));
    }
  }
  return matrix;
}

void BM_OpticsOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix matrix = random_blobs(n, 4);
  for (auto _ : state) {
    OpticsResult result;
    optics_order(matrix, 2, result);
    benchmark::DoNotOptimize(result.ordering.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OpticsOrder)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_OpticsXiExtraction(benchmark::State& state) {
  const DistanceMatrix matrix = random_blobs(256, 4);
  OpticsResult base;
  optics_order(matrix, 2, base);
  for (auto _ : state) {
    reextract_xi(base, 2, 0.1);
    benchmark::DoNotOptimize(base.cluster_count);
  }
}
BENCHMARK(BM_OpticsXiExtraction);

void BM_RoutesToDestination(benchmark::State& state) {
  const RoutingEngine engine(world());
  const AsIndex google = world().as_by_asn(kGoogleAsn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.routes_to(google));
  }
}
BENCHMARK(BM_RoutesToDestination);

void BM_Traceroute(benchmark::State& state) {
  const RoutingEngine engine(world());
  const TracerouteEngine tracer(world(), TracerouteConfig{});
  const AsIndex google = world().as_by_asn(kGoogleAsn);
  const AsIndex target = world().access_isps().front();
  const RoutingTable table = engine.routes_to(target);
  const Ipv4 dst = world().ases[target].user_prefixes.front().at(1);
  std::uint64_t flow = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace(google, dst, table, ++flow));
  }
}
BENCHMARK(BM_Traceroute);

void BM_ScanAndClassify(benchmark::State& state) {
  PopulationConfig population;
  population.background_per_isp = 1;
  const CertStore store =
      build_tls_population(world(), registry(), Snapshot::k2023, population);
  const Scanner scanner(ScannerConfig{});
  const OffnetClassifier classifier(world(), Methodology::k2023);
  for (auto _ : state) {
    const auto records = scanner.scan(store);
    benchmark::DoNotOptimize(classifier.classify(records));
  }
}
BENCHMARK(BM_ScanAndClassify);

void BM_PingIspMeasurement(benchmark::State& state) {
  const VantagePointSet vps(world(), 40, 163163);
  const PingMesh mesh(world(), vps, PingConfig{});
  const AsIndex isp = registry().hosting_isps().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.measure_isp(registry(), isp));
  }
}
BENCHMARK(BM_PingIspMeasurement);

// Best-of-3 wall time for one pairwise_distances call at a fixed thread
// count (0 restores the REPRO_THREADS / hardware default afterwards).
double time_pairwise(const std::vector<double>& table, std::size_t rows,
                     std::size_t cols, std::size_t threads) {
  set_default_thread_count(threads);
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    const bench::Stopwatch watch;
    benchmark::DoNotOptimize(pairwise_distances(table, rows, cols, 0.2));
    const double seconds = watch.seconds();
    if (run == 0 || seconds < best) best = seconds;
  }
  set_default_thread_count(0);
  return best;
}

}  // namespace
}  // namespace repro

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const repro::bench::Stopwatch total;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  // Headline serial-vs-parallel speedup of the dominant kernel (the per-ISP
  // distance matrix), recorded in BENCH_perf_micro.json for trend tooling.
  // 8 threads matches the determinism test tier; on smaller machines the
  // pool still runs 8 workers, so the number reflects real oversubscription.
  // On a single-hardware-thread host the serial/parallel ratio would only
  // measure pool overhead, so the comparison is skipped outright and the
  // speedup fields stay absent -- repro-bench diff ignores fields missing
  // from either side, so the gate can never trip on timeslicing noise.
  {
    using namespace repro;
    const std::size_t rows = 256;
    const std::size_t cols = 163;
    const std::size_t threads = 8;
    Rng rng(3);
    std::vector<double> table(rows * cols);
    for (auto& value : table) value = rng.uniform(10.0, 200.0);
    const bool speedup_meaningful = hardware_thread_count() > 1;
    const double serial = time_pairwise(table, rows, cols, 1);
    const double parallel =
        speedup_meaningful ? time_pairwise(table, rows, cols, threads) : 0.0;
    const double speedup =
        speedup_meaningful && parallel > 0.0 ? serial / parallel : 0.0;
    // Per-phase cost of the SIMD kernel at the paper's vector length (163
    // vantage points, 20% trim): |a-b| fill vs select vs ascending-sum
    // reduce, ns per pair at the dispatched level. Both select strategies
    // (rank-select program, flat Batcher network) are timed each run so the
    // line names the measured winner alongside the active strategy.
    const KernelPhaseProfile phases = profile_kernel_phases(cols, 0.2, 2000);
    // Cost of one xi re-extraction sweep over a warm 256-point ordering:
    // the resident report service re-extracts per (ISP, xi) query, so this
    // is the serial path the OPTICS scratch-reuse work targets. Best of 5
    // batches, like the kernel phases.
    const DistanceMatrix blob_matrix = random_blobs(256, 4);
    OpticsResult optics_base;
    optics_order(blob_matrix, 2, optics_base);
    double optics_extract_ns = 0.0;
    {
      constexpr int kBatch = 50;
      for (int rep = 0; rep < 5; ++rep) {
        const bench::Stopwatch watch;
        for (int i = 0; i < kBatch; ++i) {
          benchmark::DoNotOptimize(
              extract_xi_clusters(optics_base.reachability, 2, 0.1, 2));
        }
        const double ns = watch.seconds() * 1e9 / kBatch;
        if (rep == 0 || ns < optics_extract_ns) optics_extract_ns = ns;
      }
    }
    if (speedup_meaningful) {
      std::printf(
          "\npairwise_distances %zux%zu: serial %.4f s, %zu threads %.4f s "
          "(speedup %.2fx, %zu hardware threads)\n",
          rows, cols, serial, threads, parallel, speedup,
          hardware_thread_count());
    } else {
      std::printf(
          "\npairwise_distances %zux%zu: serial %.4f s (1 hardware thread; "
          "parallel comparison skipped)\n",
          rows, cols, serial);
    }
    std::printf(
        "kernel phases (simd %s, cols %zu): diff %.1f ns/pair, select %.1f "
        "ns/pair [%s; ranksel %.1f, network %.1f], sum %.1f ns/pair\n",
        phases.simd_level.c_str(), cols, phases.diff_ns_op,
        phases.select_ns_op, phases.select_strategy.c_str(),
        phases.select_ranksel_ns_op, phases.select_network_ns_op,
        phases.sum_ns_op);
    std::printf("optics xi extraction (n 256): %.0f ns/extract\n",
                optics_extract_ns);
    char fields[768];
    char speedup_fields[192] = "";
    if (speedup_meaningful) {
      std::snprintf(speedup_fields, sizeof(speedup_fields),
                    "\"pairwise_parallel_seconds\":%.6f,"
                    "\"pairwise_threads\":%zu,\"pairwise_speedup\":%.3f,",
                    parallel, threads, speedup);
    }
    std::snprintf(fields, sizeof(fields),
                  "\"pairwise_serial_seconds\":%.6f,"
                  "%s"
                  "\"hardware_threads\":%zu,"
                  "\"simd_level\":\"%s\","
                  "\"kernel_select_strategy\":\"%s\","
                  "\"kernel_diff_ns_op\":%.1f,"
                  "\"kernel_select_ns_op\":%.1f,"
                  "\"kernel_select_ranksel_ns_op\":%.1f,"
                  "\"kernel_select_network_ns_op\":%.1f,"
                  "\"kernel_sum_ns_op\":%.1f,"
                  "\"optics_extract_ns_op\":%.0f",
                  serial, speedup_fields, hardware_thread_count(),
                  phases.simd_level.c_str(), phases.select_strategy.c_str(),
                  phases.diff_ns_op, phases.select_ns_op,
                  phases.select_ranksel_ns_op, phases.select_network_ns_op,
                  phases.sum_ns_op, optics_extract_ns);
    bench::print_footer("perf_micro", total, {}, fields);
  }

  // With REPRO_TRACE=1 the kernels above populate span/metric state; dump it
  // like the table harnesses do.
  repro::obs::maybe_write_run_report();
  return 0;
}
