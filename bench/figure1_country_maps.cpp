// Regenerates Figure 1: per-country fraction of Internet users in ISPs
// hosting offnets from >=2, >=3 and all 4 of Akamai/Google/Netflix/Meta
// (the paper's world maps, here as a table plus a CSV for plotting), and the
// Section 3.1 ISP counts (3382 >= 2, 1880 >= 3, 505 all four).
#include "bench_common.h"

#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Figure 1 -- users in ISPs hosting multiple hypergiants");

  Pipeline pipeline(scenario_from_env());
  const Figure1Study study = figure1_study(pipeline);
  std::printf("%s\n", render(study, 40).c_str());

  // Full per-country series as CSV (the map's data).
  TextTable csv({"country", "users_m", "frac_ge2", "frac_ge3", "frac_eq4"});
  for (const CountryHostingRow& row : study.countries) {
    csv.add_row({row.code, format_fixed(row.users_m, 3),
                 format_fixed(row.frac_ge2, 4), format_fixed(row.frac_ge3, 4),
                 format_fixed(row.frac_eq4, 4)});
  }
  write_file("bench_output/figure1_countries.csv", csv.render_csv());
  std::printf("full series written to bench_output/figure1_countries.csv\n\n");

  std::printf(
      "Paper reference: of 5516 hosting ISPs, 3382 host >=2 hypergiants,\n"
      "1880 host >=3 and 505 host all four; in many countries the majority\n"
      "of users sit in ISPs hosting offnets of >=2 hypergiants.\n");
  print_footer("figure1_country_maps", watch, pipeline);
  return 0;
}
