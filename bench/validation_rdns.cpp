// Regenerates the Section 3.2 validation: check cluster location
// consistency against rDNS hostnames geolocated HOIHO-style, for both
// clustering settings, before and after the paper's manual corrections of
// HOIHO misinterpretations.
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 3.2 validation -- rDNS location consistency");

  Pipeline pipeline(scenario_from_env());
  for (const double xi : kPaperXis) {
    std::printf("%s\n", render(validation_study(pipeline, xi)).c_str());
  }

  std::printf(
      "Paper reference: xi=0.1 -- 60 clusters with >=2 located hostnames,\n"
      "55 single-city + 3 single-metro + 2 multi-city; xi=0.9 -- 34 clusters,\n"
      "30 + 2 + 2. Shape to hold: the overwhelming majority of clusters are\n"
      "geographically consistent once HOIHO misreads are corrected.\n");
  print_footer("validation_rdns", watch, pipeline);
  return 0;
}
