// Scaling bench: the Scale axis as a tracked artifact (docs/SCALING.md).
//
// For each scale in REPRO_SCALING_SCALES (comma-separated; default
// "tiny,small,paper") the clustering pipeline runs twice in freshly forked
// child processes -- once with the in-memory matrix substrate, once with
// the streamed one (spill to an .mmx file, mmap back, block-streamed
// pairwise distances) -- and each child reports its end-to-end wall clock,
// clustering-stage wall clock, pre-clustering RSS baseline, and lifetime
// peak RSS (getrusage ru_maxrss). Forking gives every configuration an
// honest per-process peak: RSS never carries over from the previous
// measurement, and the two substrates of one scale see identical cold
// state.
//
// The number the scaling story hangs on is `cluster_growth_mb` = peak RSS
// minus the baseline sampled right before the clustering stage: the
// streamed substrate holds it roughly flat as matrices grow, while the
// in-memory substrate's growth tracks the largest per-ISP matrix. Both
// substrates are bit-identical in output (tests/test_scale.cpp fences
// that), so the curve is purely a memory/time trade.
//
// Artifacts: BENCH_scaling.json with a per-scale/per-substrate object
// ("seconds", "cluster_seconds", "baseline_mb", "peak_mb", "growth_mb").
// REPRO_SCALING_ROWS overrides the streamed block height for the sweep.
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace repro;

struct ConfigResult {
  bool ok = false;
  double seconds = 0.0;          // end to end: construction + all stages
  double cluster_seconds = 0.0;  // the clusterings() call alone
  double baseline_mb = 0.0;      // RSS right before clustering
  double peak_mb = 0.0;          // lifetime peak (ru_maxrss)
  double growth_mb() const { return peak_mb - baseline_mb; }
};

/// Runs one (scale, substrate) configuration in a forked child so its peak
/// RSS is measured from a clean slate. The child computes the standard xi
/// batch and reports through a pipe; a crashed or nonzero child yields
/// ok=false rather than taking the bench down.
ConfigResult run_config(Scale scale, bool streamed, std::size_t block_rows) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    close(fds[0]);
    double payload[4] = {0.0, 0.0, 0.0, 0.0};
    try {
      Scenario scenario = Scenario::at_scale(scale);
      scenario.stream_matrices = streamed;
      if (block_rows != 0) scenario.stream_block_rows = block_rows;
      bench::Stopwatch total;
      Pipeline pipeline(scenario, fault::FaultPlan::none());
      pipeline.hosting_isps_2023();  // every stage but clustering
      payload[2] =
          static_cast<double>(obs::read_resource_sample().rss_kb) / 1024.0;
      bench::Stopwatch cluster;
      pipeline.clusterings(0.1);
      payload[1] = cluster.seconds();
      payload[0] = total.seconds();
      struct rusage usage{};
      getrusage(RUSAGE_SELF, &usage);
      payload[3] = static_cast<double>(usage.ru_maxrss) / 1024.0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "scaling child: %s\n", error.what());
      std::_Exit(1);
    }
    const ssize_t wrote = write(fds[1], payload, sizeof(payload));
    std::_Exit(wrote == sizeof(payload) ? 0 : 1);
  }
  close(fds[1]);
  double payload[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t got = 0;
  while (got < sizeof(payload)) {
    const ssize_t n = read(fds[0], reinterpret_cast<char*>(payload) + got,
                           sizeof(payload) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  ConfigResult result;
  result.ok = got == sizeof(payload) && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  result.seconds = payload[0];
  result.cluster_seconds = payload[1];
  result.baseline_mb = payload[2];
  result.peak_mb = payload[3];
  return result;
}

std::vector<Scale> scales_from_env() {
  const char* env = std::getenv("REPRO_SCALING_SCALES");
  const std::string list = env == nullptr ? "tiny,small,paper" : env;
  std::vector<Scale> scales;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::string name =
        list.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!name.empty()) {
      if (const auto scale = parse_scale(name); scale.has_value()) {
        scales.push_back(*scale);
      } else {
        std::fprintf(stderr, "unknown scale '%s' skipped\n", name.c_str());
      }
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return scales;
}

std::string config_json(const ConfigResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"ok\":%s,\"seconds\":%.3f,\"cluster_seconds\":%.3f,"
                "\"baseline_mb\":%.1f,\"peak_mb\":%.1f,\"growth_mb\":%.1f}",
                r.ok ? "true" : "false", r.seconds, r.cluster_seconds,
                r.baseline_mb, r.peak_mb, r.growth_mb());
  return buf;
}

}  // namespace

int main() {
  using namespace repro;
  bench::Stopwatch total;
  bench::print_header("Scaling: wall clock and peak RSS per Scale");

  const std::vector<Scale> scales = scales_from_env();
  const char* rows_env = std::getenv("REPRO_SCALING_ROWS");
  const std::size_t block_rows =
      rows_env == nullptr ? 0 : std::strtoul(rows_env, nullptr, 10);

  std::printf("%-7s %-9s %10s %12s %12s %11s %11s\n", "scale", "substrate",
              "seconds", "cluster_s", "baseline_mb", "peak_mb", "growth_mb");
  std::string scales_json = "\"scales\":{";
  bool first = true;
  bool all_ok = true;
  for (const Scale scale : scales) {
    const std::string name{to_string(scale)};
    std::string entry = "\"" + name + "\":{";
    for (const bool streamed : {false, true}) {
      const ConfigResult r = run_config(scale, streamed, block_rows);
      all_ok = all_ok && r.ok;
      std::printf("%-7s %-9s %10.2f %12.2f %12.1f %11.1f %11.1f%s\n",
                  name.c_str(),
                  streamed ? "streamed" : "inmem", r.seconds,
                  r.cluster_seconds, r.baseline_mb, r.peak_mb, r.growth_mb(),
                  r.ok ? "" : "  [FAILED]");
      entry += streamed ? "\"streamed\":" : "\"inmem\":";
      entry += config_json(r);
      if (!streamed) entry += ",";
    }
    entry += "}";
    if (!first) scales_json += ",";
    first = false;
    scales_json += entry;
  }
  scales_json += "}";
  if (block_rows != 0) {
    scales_json += ",\"block_rows\":" + std::to_string(block_rows);
  }

  bench::print_footer("scaling", total, {}, scales_json);
  return all_ok ? 0 : 1;
}
