// Fault-sensitivity sweep: how hard can a measurement campaign degrade
// before the paper's headline conclusions move?
//
// Sweeps FaultPlan::chaos() scaled to several intensities (0 = clean
// baseline) and, at each point, recomputes the three headline results --
// Table 1 per-hypergiant ISP counts, the Figure 1 user fraction in >= 2-HG
// ISPs, and the Table 2 colocation buckets -- then reports their drift from
// the clean run. The intensity-0 row is bit-identical to the seed pipeline,
// so any nonzero drift there is a regression.
//
// Two sweep modes:
//   * combined (default): FaultPlan::chaos() -- every pathology at once --
//     scaled across the intensity grid. The worst case.
//   * per-pathology (--per-pathology, or REPRO_SWEEP=pathology): one knob at
//     a time -- scan shard truncation, vantage-point outages, ICMP
//     rate-limit storms, certificate churn, BGP path flapping, stale or
//     missing PTR records, live store corruption -- each at chaos()
//     strength scaled across intensities, everything else zeroed.
//     Attributes drift to the pathology that causes it. The store_chaos
//     dimension is measurement-identical to the clean run: it garbles the
//     shared store's warm artifacts while pool workers are loading them, so
//     every drift column must stay 0.0 while the status goes degraded --
//     the self-heal proof.
//
// Artifacts: bench_output/fault_sweeps.csv (one row per sweep point, with a
// `pathology` column: "combined" or the knob name) plus the standard
// BENCH_fault_sweeps.json; run with REPRO_TRACE=1 for the span table and
// run_report.json (whose "fault" section reflects the last, harshest sweep
// point).
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/stage_health.h"
#include "store/artifact_store.h"
#include "util/strings.h"

namespace {

using namespace repro;

struct SweepPoint {
  std::string pathology = "combined";
  double intensity = 0.0;
  fault::StageStatus status = fault::StageStatus::kOk;
  Table1Study table1;
  Figure1Study figure1;
  Table2Study table2;
  ValidationStudy validation;
  Section421Study s421;
  std::map<std::string, fault::StageHealth> stages;
  double seconds = 0.0;
};

/// One sweep dimension: a named base plan whose rates get scaled across the
/// intensity grid.
struct SweepDimension {
  std::string name;
  fault::FaultPlan base;
};

/// The per-pathology dimensions: each takes exactly one knob from chaos()
/// and zeroes everything else, so conclusion drift is attributable. (The
/// miss-burst and anycast knobs are only exercised by the combined sweep.)
std::vector<SweepDimension> pathology_dimensions() {
  const fault::FaultPlan chaos = fault::FaultPlan::chaos();
  std::vector<SweepDimension> out;

  fault::FaultPlan scan = fault::FaultPlan::none();
  scan.scan.shard_truncation = chaos.scan.shard_truncation;
  out.push_back({"scan_truncation", scan});

  fault::FaultPlan vps = fault::FaultPlan::none();
  vps.ping.vp_outage_rate = chaos.ping.vp_outage_rate;
  out.push_back({"vp_outage", vps});

  fault::FaultPlan storm = fault::FaultPlan::none();
  storm.ping.icmp_storm_rate = chaos.ping.icmp_storm_rate;
  storm.ping.icmp_storm_failure = chaos.ping.icmp_storm_failure;
  out.push_back({"icmp_storm", storm});

  fault::FaultPlan churn = fault::FaultPlan::none();
  churn.cert.churn_rate = chaos.cert.churn_rate;
  out.push_back({"cert_churn", churn});

  fault::FaultPlan flap = fault::FaultPlan::none();
  flap.route.flap_rate = chaos.route.flap_rate;
  flap.route.flap_period = chaos.route.flap_period;
  out.push_back({"bgp_flap", flap});

  fault::FaultPlan missing = fault::FaultPlan::none();
  missing.rdns.missing_ptr_rate = chaos.rdns.missing_ptr_rate;
  out.push_back({"missing_ptr", missing});

  fault::FaultPlan stale = fault::FaultPlan::none();
  stale.rdns.stale_ptr_rate = chaos.rdns.stale_ptr_rate;
  stale.rdns.garbled_ptr_rate = chaos.rdns.garbled_ptr_rate;
  out.push_back({"stale_ptr", stale});

  // chaos() keeps store corruption off (it would break warm-identity
  // guarantees elsewhere), so this dimension sets its own rate: at full
  // intensity well over half the warm artifacts get garbled mid-run.
  fault::FaultPlan store = fault::FaultPlan::none();
  store.store.corrupt_rate = 0.6;
  out.push_back({"store_chaos", store});

  return out;
}

/// User-weighted fraction of users inside >= 2-hypergiant ISPs (the
/// headline Figure 1 number, aggregated over countries).
double users_frac_ge2(const Figure1Study& study) {
  double users = 0.0;
  double weighted = 0.0;
  for (const auto& row : study.countries) {
    users += row.users_m;
    weighted += row.users_m * row.frac_ge2;
  }
  return users == 0.0 ? 0.0 : weighted / users;
}

/// Largest relative drift (percent) of any per-hypergiant 2023 ISP count.
double table1_max_drift_pct(const Table1Study& clean, const Table1Study& now) {
  double worst = 0.0;
  for (std::size_t i = 0; i < clean.rows.size() && i < now.rows.size(); ++i) {
    const double base = static_cast<double>(clean.rows[i].isps_2023);
    if (base == 0.0) continue;
    const double drift =
        std::abs(static_cast<double>(now.rows[i].isps_2023) - base) / base;
    worst = std::max(worst, drift * 100.0);
  }
  return worst;
}

const Table2Row* find_row(const Table2Study& study, Hypergiant hg, double xi) {
  for (const auto& row : study.rows) {
    if (row.hg == hg && row.xi == xi) return &row;
  }
  return nullptr;
}

/// Mean absolute drift (percentage points) across all Table 2 colocation
/// buckets, matched by (hypergiant, xi).
double table2_bucket_drift_pts(const Table2Study& clean,
                               const Table2Study& now) {
  double sum = 0.0;
  std::size_t buckets = 0;
  for (const auto& row : clean.rows) {
    const Table2Row* other = find_row(now, row.hg, row.xi);
    if (other == nullptr) continue;
    const double pairs[][2] = {
        {row.sole_pct, other->sole_pct},
        {row.coloc_0_pct, other->coloc_0_pct},
        {row.coloc_mid_low_pct, other->coloc_mid_low_pct},
        {row.coloc_mid_high_pct, other->coloc_mid_high_pct},
        {row.coloc_full_pct, other->coloc_full_pct},
    };
    for (const auto& pair : pairs) {
      sum += std::abs(pair[0] - pair[1]);
      ++buckets;
    }
  }
  return buckets == 0 ? 0.0 : sum / static_cast<double>(buckets);
}

std::size_t table2_isp_count(const Table2Study& study, double xi) {
  std::size_t count = 0;
  for (const auto& row : study.rows) {
    if (row.xi == xi) count = std::max(count, row.isp_count);
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  bench::Stopwatch total;

  bool per_pathology = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--per-pathology") per_pathology = true;
  }
  if (const char* mode = std::getenv("REPRO_SWEEP")) {
    if (std::string(mode) == "pathology") per_pathology = true;
  }

  bench::print_header(per_pathology
                          ? "Fault sweeps: conclusion drift per pathology"
                          : "Fault sweeps: conclusion drift vs. fault intensity");

  const Scenario scenario = bench::scenario_from_env();
  const double xis[] = {0.1, 0.9};

  // Every sweep point shares one artifact store, so the warm topology
  // artifact (keyed by the topology digest alone, independent of the fault
  // plan) is generated once by the clean baseline and reused by every later
  // point instead of being regenerated per point. REPRO_STORE is honored
  // when set; otherwise the store lives in a temp directory removed before
  // exit, so the sweep stays side-effect free.
  std::shared_ptr<store::ArtifactStore> artifact_store =
      store::ArtifactStore::from_env();
  std::filesystem::path temp_store_root;
  if (artifact_store == nullptr) {
    temp_store_root = std::filesystem::temp_directory_path() /
                      ("repro-fault-sweeps-" + std::to_string(::getpid()));
    artifact_store = std::make_shared<store::ArtifactStore>(
        store::StoreConfig{temp_store_root.string(), false, 0.0});
  }

  // The clean baseline is shared by every dimension (intensity 0 of any
  // pathology is the same run), so it is computed once, first.
  std::vector<SweepDimension> dimensions;
  std::vector<double> intensities;
  if (per_pathology) {
    dimensions = pathology_dimensions();
    intensities = {0.25, 1.0};
  } else {
    dimensions = {{"combined", fault::FaultPlan::chaos()}};
    intensities = {0.1, 0.25, 0.5, 1.0};
  }

  const auto run_point = [&](const std::string& pathology,
                             const fault::FaultPlan& base,
                             double intensity) {
    bench::Stopwatch watch;
    Pipeline pipeline(scenario, base.scaled_by(intensity), artifact_store);
    SweepPoint point;
    point.pathology = pathology;
    point.intensity = intensity;
    point.table1 = table1_study(pipeline);
    point.figure1 = figure1_study(pipeline);
    point.table2 = table2_study(pipeline, xis);
    // The rDNS validation and traceroute-peering studies ride along so the
    // two new fault families (PTR pathologies, BGP flaps) have conclusion
    // columns of their own.
    point.validation = validation_study(pipeline, xis[0]);
    point.s421 = section421_study(pipeline);
    point.status = pipeline.overall_status();
    point.stages = pipeline.stage_health();
    point.seconds = watch.seconds();
    std::printf("%-16s intensity %.2f: status=%s, %zu hosting ISPs, %.1f s\n",
                pathology.c_str(), intensity,
                std::string(to_string(point.status)).c_str(),
                point.table1.total_hosting_isps_2023, point.seconds);
    for (const auto& [stage, health] : point.stages) {
      if (health.status == fault::StageStatus::kOk) continue;
      std::printf("  %-16s %-8s dropped %llu/%llu\n", stage.c_str(),
                  std::string(to_string(health.status)).c_str(),
                  static_cast<unsigned long long>(health.dropped),
                  static_cast<unsigned long long>(health.total));
    }
    return point;
  };

  std::vector<SweepPoint> points;
  points.push_back(run_point("clean", fault::FaultPlan::none(), 0.0));
  for (const SweepDimension& dimension : dimensions) {
    for (const double intensity : intensities) {
      points.push_back(run_point(dimension.name, dimension.base, intensity));
    }
  }

  const SweepPoint& clean = points.front();

  std::printf("\n");
  TextTable table({"pathology", "intensity", "status", "hosting ISPs",
                   "T1 max HG drift", "F1 users >=2HG", "F1 drift",
                   "T2 ISPs (xi=0.1)", "T2 bucket drift", "V confidence",
                   "V drift", "S421 peer", "S421 drift"});
  for (std::size_t column = 3; column < 13; ++column) {
    table.set_align(column, Align::kRight);
  }
  std::string csv =
      "pathology,intensity,status,hosting_isps,t1_max_hg_drift_pct,"
      "f1_users_frac_ge2,f1_drift_pts,t2_isps_xi01,t2_bucket_drift_pts,"
      "v_confidence,v_drift_pts,s421_peer_pct,s421_peer_drift_pts,"
      "seconds\n";
  for (const SweepPoint& point : points) {
    const double t1_drift = table1_max_drift_pct(clean.table1, point.table1);
    const double f1 = users_frac_ge2(point.figure1);
    const double f1_drift = (f1 - users_frac_ge2(clean.figure1)) * 100.0;
    const double t2_drift = table2_bucket_drift_pts(clean.table2, point.table2);
    // Validation confidence (corrected HOIHO, consistency x hint coverage):
    // garbled PTR names starve it through coverage, stale ones through
    // consistency. Peering drift: flaps demote kPeer verdicts.
    const double v_conf = point.validation.with_corrections.confidence();
    const double v_drift =
        (v_conf - clean.validation.with_corrections.confidence()) * 100.0;
    const double s421_drift = point.s421.peer_pct - clean.s421.peer_pct;
    table.add_row({point.pathology, format_fixed(point.intensity, 2),
                   std::string(to_string(point.status)),
                   std::to_string(point.table1.total_hosting_isps_2023),
                   format_fixed(t1_drift, 1) + "%", format_percent(f1, 1),
                   format_fixed(f1_drift, 1) + " pts",
                   std::to_string(table2_isp_count(point.table2, 0.1)),
                   format_fixed(t2_drift, 1) + " pts",
                   format_percent(v_conf, 1),
                   format_fixed(v_drift, 1) + " pts",
                   format_fixed(point.s421.peer_pct, 1) + "%",
                   format_fixed(s421_drift, 1) + " pts"});
    char line[400];
    std::snprintf(line, sizeof(line),
                  "%s,%.2f,%s,%zu,%.3f,%.5f,%.3f,%zu,%.3f,%.5f,%.3f,%.3f,"
                  "%.3f,%.3f\n",
                  point.pathology.c_str(), point.intensity,
                  std::string(to_string(point.status)).c_str(),
                  point.table1.total_hosting_isps_2023, t1_drift, f1, f1_drift,
                  table2_isp_count(point.table2, 0.1), t2_drift, v_conf,
                  v_drift, point.s421.peer_pct, s421_drift, point.seconds);
    csv += line;
  }
  std::printf("%s\n", table.render().c_str());

  const char* dir = std::getenv("REPRO_BENCH_OUT");
  const std::string csv_path =
      std::string(dir == nullptr ? "bench_output" : dir) + "/fault_sweeps.csv";
  try {
    write_file(csv_path, csv);
    std::printf("wrote %s\n", csv_path.c_str());
  } catch (const Error& error) {
    std::fprintf(stderr, "csv not written: %s\n", error.what());
  }

  // Shared-store verdict: with the store_chaos dimension in the sweep this
  // proves live corruption actually happened (chaos_injected > 0) and was
  // healed by recompute (recomputed >= chaos_injected artifacts touched by
  // load_or_compute), not silently served.
  const store::StoreStats stats = artifact_store->stats();
  std::printf(
      "store: %llu hits, %llu corrupt, %llu chaos_injected, %llu recomputed, "
      "%llu herd_waits\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.corrupt),
      static_cast<unsigned long long>(stats.chaos_injected),
      static_cast<unsigned long long>(stats.recomputed),
      static_cast<unsigned long long>(stats.herd_waits));

  if (!temp_store_root.empty()) {
    artifact_store.reset();  // release before deleting the backing directory
    std::error_code ec;
    std::filesystem::remove_all(temp_store_root, ec);
  }

  // The BENCH line carries the harshest sweep point's health verdicts; the
  // clean baseline is by construction all-ok.
  bench::print_footer("fault_sweeps", total, points.back().stages);
  return 0;
}
