// Regenerates Section 4.2.1: the traceroute-based peering study. Issues
// traceroutes from VMs inside Google's network to addresses in every access
// ISP, maps hops via IP-to-AS and the IXP databases, and infers peering from
// hypergiant->ISP hop adjacency (unresponsive hops in between count only as
// "possible peering").
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 4.2.1 -- dedicated peering between Google and ISPs");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section421_study(pipeline)).c_str());

  std::printf(
      "Paper reference: of 4697 ISPs with Google offnets, 38.2%% peer with\n"
      "Google, 13.3%% possibly peer (unresponsive hops), 48.4%% show no\n"
      "evidence; of 9207 inferred peers, 62.2%% peer via an IXP in >=1\n"
      "traceroute and 42.5%% only via IXPs.\n");
  print_footer("section421_peering", watch, pipeline);
  return 0;
}
