// Regenerates the longitudinal claim behind Section 3.1 ("an increase in
// cohosting since 2021 ... multi-hypergiant hosting will continue to
// increase over time", building on the seven-year study the methodology
// comes from): per-year footprints, cohosting counts, and the mean number
// of hypergiants per hosting ISP, 2016-2025.
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Longitudinal -- multi-hypergiant hosting keeps increasing");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(longitudinal_study(pipeline)).c_str());

  std::printf(
      "Paper reference points (scaled by the world size): 2021 -- ~2840 ISPs\n"
      "hosting >=2, ~1690 >=3, ~430 all four; 2023 -- 3382 >=2, 1880 >=3,\n"
      "505 all four. The trend to hold: every cohosting series increases\n"
      "monotonically year over year.\n");
  print_footer("longitudinal_growth", watch, pipeline);
  return 0;
}
