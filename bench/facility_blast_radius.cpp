// Network-wide view of Section 3.3 / 4.3: the blast radius of single
// facilities (how many ISPs, hypergiants, users and Gbps one building
// carries) and what an outage of the biggest one does to link loads across
// the whole topology -- congested links and the fraction of ISPs whose
// content paths cross them.
#include "bench_common.h"

#include <cmath>

#include "traffic/network_load.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Facility blast radius and network-wide cascade");

  Pipeline pipeline(scenario_from_env());
  NetworkLoadConfig config;
  // Sampling keeps the paper-scale run quick; the shape is unaffected.
  config.isp_stride = 3;
  const NetworkLoadModel model(pipeline.internet(),
                               pipeline.registry(Snapshot::k2023),
                               pipeline.demand(), pipeline.capacity(),
                               pipeline.routing(), config);

  const auto radii = model.blast_radii();
  std::printf("Facilities hosting offnets: %zu\n\n", radii.size());
  TextTable table({"facility", "ISPs", "HGs", "users (M)", "displaced Gbps"});
  for (std::size_t i = 0; i < std::min<std::size_t>(radii.size(), 15); ++i) {
    const FacilityBlastRadius& radius = radii[i];
    table.add_row({pipeline.internet().facilities[radius.facility].name,
                   std::to_string(radius.isps),
                   std::to_string(radius.hypergiants),
                   format_fixed(radius.users / 1e6, 1),
                   format_fixed(radius.displaced_gbps, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  // Multi-ISP facilities: the colocation risk in one number.
  std::size_t multi_isp = 0;
  std::size_t multi_hg = 0;
  for (const FacilityBlastRadius& radius : radii) {
    if (radius.isps >= 2) ++multi_isp;
    if (radius.hypergiants >= 2) ++multi_hg;
  }
  std::printf("facilities hosting offnets of >=2 ISPs: %s, of >=2 hypergiants: %s\n\n",
              format_percent(static_cast<double>(multi_isp) / radii.size()).c_str(),
              format_percent(static_cast<double>(multi_hg) / radii.size()).c_str());

  // Network-wide cascade: fail each of the top facilities at *its* local
  // evening peak (that is when the displaced traffic is largest) and count
  // the newly congested links and newly affected ISPs vs the same-hour
  // baseline.
  TextTable cascade({"failed facility", "local-peak UTC", "displaced Gbps",
                     "congested links (base -> outage)",
                     "ISPs on congested paths (base -> outage)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(radii.size(), 8); ++i) {
    const Facility& facility =
        pipeline.internet().facilities[radii[i].facility];
    const double longitude =
        pipeline.internet().metros[facility.metro].location.longitude_deg;
    double hour = std::fmod(21.0 - longitude / 15.0, 24.0);
    if (hour < 0.0) hour += 24.0;
    const NetworkLoadResult before = model.evaluate(hour);
    const NetworkLoadResult after = model.evaluate(hour, {radii[i].facility});
    cascade.add_row(
        {facility.name, format_fixed(hour, 0),
         format_fixed(radii[i].displaced_gbps, 0),
         std::to_string(before.congested_links.size()) + " -> " +
             std::to_string(after.congested_links.size()),
         format_percent(before.congested_fraction()) + " -> " +
             format_percent(after.congested_fraction())});
  }
  std::printf("%s\n", cascade.render().c_str());

  std::printf(
      "Paper claim to hold: one building concentrates many ISPs' and several\n"
      "hypergiants' serving capacity; its loss pushes traffic onto shared\n"
      "interdomain links and congests paths well beyond the facility itself.\n");
  print_footer("facility_blast_radius", watch, pipeline);
  return 0;
}
