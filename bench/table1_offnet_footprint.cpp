// Regenerates Table 1 of the paper: the number of ISPs hosting offnets of
// each hypergiant in the 2021 and 2023 snapshots, discovered by scanning the
// synthetic Internet's TLS population with the certificate-fingerprint
// methodology (updated 2023 rules), plus the Section 2.2 totals (261K offnet
// IPs across 5516 ISPs in the paper).
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Table 1 -- offnet footprint per hypergiant, 2021 vs 2023");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(table1_study(pipeline)).c_str());

  std::printf(
      "Paper reference: Google 3810 -> 4697 (+23.2%%), Netflix 2115 -> 2906\n"
      "(+37.4%%), Meta 2214 -> 2588 (+16.9%%), Akamai 1094 -> 1094 (+0.0%%);\n"
      "261K offnet IPs across 5516 ISPs in 2023.\n");
  print_footer("table1_offnet_footprint", watch, pipeline);
  return 0;
}
