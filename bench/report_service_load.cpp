// Load generator for the resident report service (docs/SERVICE.md): fires
// thousands of mixed warm/cold/incremental queries at an in-process
// ReportService over a private artifact store and reports the SLO numbers
// the ROADMAP asks for -- warm-query p50/p99 latency and the warm-hit
// ratio -- on a BENCH_report_service.json line with peak_rss_mb stamped
// like every other bench.
//
// Phases:
//   1. Cold warm-up (single client): every distinct base query of the mix
//      is touched once, so the storm below measures the steady state, not
//      first-contact compute. Four worlds (clean, chaos, half-chaos, a
//      reseeded chaos variant) x the report queries, plus xi-incremental
//      table2 queries that re-extract clusters from the warm reachability
//      artifacts.
//   2. Mixed storm: REPRO_SERVE_QUERIES total queries (default 1200, floor
//      1000) from REPRO_SERVE_CLIENTS threads (default 8) in a fixed
//      interleaved schedule -- overwhelmingly warm repeats, with the
//      cold/incremental keys recurring so the mix stays mixed. Per-query
//      latency and cached-ness are recorded per client and merged.
//
// Extra BENCH fields: queries, clients, distinct, warm_hit_ratio,
// warm_p50_ms, warm_p99_ms, p50_ms, p99_ms, cold_queries, errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "store/artifact_store.h"

namespace {

using repro::bench::Stopwatch;
using repro::serve::QueryRequest;
using repro::serve::QueryResponse;
using repro::serve::ReportService;

std::size_t env_count(const char* name, std::size_t fallback,
                      std::size_t floor) {
  if (const char* text = std::getenv(name)) {
    const unsigned long long value = std::strtoull(text, nullptr, 10);
    if (value > 0) return std::max<std::size_t>(value, floor);
  }
  return fallback;
}

struct Sample {
  double ms = 0.0;
  bool cached = false;
  bool ok = false;
};

double percentile_of(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  return sorted_ms[static_cast<std::size_t>(rank + 0.5)];
}

}  // namespace

int main() {
  using namespace repro;

  bench::print_header("Report-service load (mixed warm/cold/incremental)");
  Stopwatch watch;

  // Private store root: the bench must measure its own cold/warm economics,
  // not whatever REPRO_STORE happens to hold.
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("repro-serve-bench-" + std::to_string(::getpid())))
          .string();
  serve::ServiceConfig config;
  {
    store::StoreConfig store_config;
    store_config.root = root + "/store";
    config.artifacts = std::make_shared<store::ArtifactStore>(store_config);
  }
  const Scale scale =
      parse_scale(bench::scale_name()).value_or(Scale::kTiny);
  config.default_scale = scale;
  ReportService service(std::move(config));

  // The distinct query mix. Worlds: clean, full chaos, half-intensity
  // chaos, and a reseeded chaos (same knobs, different fault draw -- a new
  // world digest, so genuinely cold). The xi-incremental table2 queries
  // reuse the clean world's warm matrices and re-extract clusters only.
  fault::FaultPlan reseeded = fault::FaultPlan::chaos();
  reseeded.seed = 777;
  const std::pair<const char*, fault::FaultPlan> worlds[] = {
      {"clean", fault::FaultPlan::none()},
      {"chaos", fault::FaultPlan::chaos()},
      {"chaos50", fault::FaultPlan::chaos().scaled_by(0.5)},
      {"reseeded", reseeded},
  };
  const char* report_queries[] = {"table1", "figure1", "table2", "figure2",
                                  "section421"};

  std::vector<QueryRequest> distinct;
  for (const auto& [name, plan] : worlds) {
    (void)name;
    for (const char* query : report_queries) {
      QueryRequest request;
      request.query = query;
      request.scale = scale;
      request.plan = plan;
      if (std::string_view(query) == "table2" ||
          std::string_view(query) == "figure2") {
        request.xis = {0.1, 0.9};
      }
      distinct.push_back(std::move(request));
    }
  }
  for (const double xi : {0.3, 0.5}) {
    QueryRequest request;
    request.query = "table2";
    request.scale = scale;
    request.plan = fault::FaultPlan::none();
    request.xis = {xi};
    distinct.push_back(std::move(request));
  }

  std::printf("cold warm-up: %zu distinct queries...\n", distinct.size());
  std::vector<Sample> cold_samples;
  std::size_t cold_queries = 0;
  double cold_ms_max = 0.0;
  for (const QueryRequest& request : distinct) {
    const QueryResponse response = service.execute(request);
    if (!response.ok) {
      std::fprintf(stderr, "warm-up query failed: %s\n",
                   response.json.c_str());
      return 1;
    }
    if (!response.cached) ++cold_queries;
    cold_ms_max = std::max(cold_ms_max, response.ms);
    cold_samples.push_back({response.ms, response.cached, response.ok});
  }

  const std::size_t total =
      env_count("REPRO_SERVE_QUERIES", 1200, /*floor=*/1000);
  const std::size_t clients = env_count("REPRO_SERVE_CLIENTS", 8, 1);
  std::printf("storm: %zu queries from %zu clients over %zu keys...\n",
              total, clients, distinct.size());

  // Fixed interleaved schedule: client t executes indices t, t+clients, ...
  // of one global sequence that cycles the distinct keys with a stride
  // coprime to the key count, so every client mixes worlds and queries.
  std::vector<Sample> samples(total);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const Stopwatch storm_watch;
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t]() {
      for (std::size_t i = t; i < total; i += clients) {
        const QueryRequest& request = distinct[(i * 7 + t) % distinct.size()];
        const QueryResponse response = service.execute(request);
        samples[i].ms = response.ms;
        samples[i].cached = response.cached;
        samples[i].ok = response.ok;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double storm_seconds = storm_watch.seconds();

  // Statistics cover the whole mixed run -- the cold/incremental warm-up
  // plus the storm -- so the warm-hit ratio reflects an actual mix instead
  // of a pre-warmed steady state reading 1.0 by construction.
  samples.insert(samples.end(), cold_samples.begin(), cold_samples.end());
  std::vector<double> all_ms;
  std::vector<double> warm_ms;
  std::size_t errors = 0;
  for (const Sample& sample : samples) {
    if (!sample.ok) ++errors;
    all_ms.push_back(sample.ms);
    if (sample.cached) warm_ms.push_back(sample.ms);
  }
  std::sort(all_ms.begin(), all_ms.end());
  std::sort(warm_ms.begin(), warm_ms.end());
  const double warm_hit_ratio =
      samples.empty() ? 0.0
                      : static_cast<double>(warm_ms.size()) /
                            static_cast<double>(samples.size());

  std::printf(
      "storm done in %.2f s: %.0f qps, warm-hit ratio %.3f, "
      "warm p50 %.3f ms, warm p99 %.3f ms, %zu errors\n",
      storm_seconds, static_cast<double>(total) / storm_seconds,
      warm_hit_ratio, percentile_of(warm_ms, 50.0),
      percentile_of(warm_ms, 99.0), errors);

  char extra[512];
  std::snprintf(
      extra, sizeof(extra),
      "\"queries\":%zu,\"clients\":%zu,\"distinct\":%zu,"
      "\"warm_hit_ratio\":%.4f,\"warm_p50_ms\":%.4f,\"warm_p99_ms\":%.4f,"
      "\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"cold_queries\":%zu,"
      "\"cold_ms_max\":%.1f,\"errors\":%zu",
      samples.size(), clients, distinct.size(), warm_hit_ratio,
      percentile_of(warm_ms, 50.0), percentile_of(warm_ms, 99.0),
      percentile_of(all_ms, 50.0), percentile_of(all_ms, 99.0), cold_queries,
      cold_ms_max, errors);
  bench::print_footer("report_service", watch, {}, extra);

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return errors == 0 ? 0 : 1;
}
