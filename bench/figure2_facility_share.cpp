// Regenerates Figure 2: the user-weighted CCDF of the estimated fraction of
// a user's traffic that one facility (the inferred cluster hosting the most
// hypergiants) could serve, for both clustering settings, plus the headline
// aggregates (71-82% of analyzable users above 25%; 18-31% with an all-four
// facility serving 52%).
#include "bench_common.h"

#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Figure 2 -- traffic serveable from a single facility");

  Pipeline pipeline(scenario_from_env());
  const Figure2Study study = figure2_study(pipeline, kPaperXis);
  std::printf("%s\n", render(study).c_str());

  // Dense CCDF series for plotting.
  TextTable csv({"fraction", "ccdf_xi01", "ccdf_xi09"});
  for (double x = 0.0; x <= 0.56; x += 0.01) {
    csv.add_row({format_fixed(x, 2),
                 format_fixed(ccdf_at(study.series.front().ccdf, x), 5),
                 format_fixed(ccdf_at(study.series.back().ccdf, x), 5)});
  }
  write_file("bench_output/figure2_ccdf.csv", csv.render_csv());
  std::printf("full CCDF written to bench_output/figure2_ccdf.csv\n\n");

  std::printf(
      "Paper reference: 76%% of users are in ISPs with offnets; 56%% in\n"
      "analyzable ISPs; of those, 71-82%% can fetch >=25%% of their traffic\n"
      "from one facility and 18-31%% have an all-four facility (52%%).\n");
  print_footer("figure2_facility_share", watch, pipeline);
  return 0;
}
