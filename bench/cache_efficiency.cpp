// Mechanistic derivation of the Section 2.1 cache-efficiency constants the
// paper's arithmetic uses (Google 80%, Netflix 95%, Meta 86%, Akamai 75%):
// drive an LRU offnet cache with each hypergiant's catalog model and report
// steady-state hit rates at the reference deployment size, plus full
// hit-rate-vs-capacity curves (the ablation behind "offnets could serve X%
// of the service's traffic").
#include "bench_common.h"

#include "cache/simulator.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 2.1 -- offnet cache efficiency, derived");

  const double paper_constants[] = {0.80, 0.95, 0.86, 0.75};
  TextTable table({"hypergiant", "cache size", "hit rate", "paper constant",
                   "catalog objects", "zipf"});
  for (const Hypergiant hg : all_hypergiants()) {
    const double capacity = reference_cache_mb(hg);
    const CacheSimResult result = simulate_cache(hg, capacity);
    const CatalogProfile& profile = catalog_profile(hg);
    table.add_row({std::string(to_string(hg)),
                   format_fixed(capacity / 1e6, 1) + " TB",
                   format_percent(result.hit_rate),
                   format_percent(paper_constants[static_cast<std::size_t>(hg)]),
                   with_commas((long long)profile.object_count),
                   format_fixed(profile.zipf_exponent, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Hit-rate curves: capacity sweep per hypergiant (CSV for plotting).
  TextTable csv({"hypergiant", "capacity_tb", "hit_rate", "byte_hit_rate"});
  for (const Hypergiant hg : all_hypergiants()) {
    const double reference = reference_cache_mb(hg);
    const double capacities[] = {reference / 8, reference / 4, reference / 2,
                                 reference, reference * 2, reference * 4};
    for (const auto& [capacity, result] : hit_rate_curve(hg, capacities)) {
      csv.add_row({std::string(to_string(hg)), format_fixed(capacity / 1e6, 2),
                   format_fixed(result.hit_rate, 4),
                   format_fixed(result.byte_hit_rate, 4)});
    }
  }
  write_file("bench_output/cache_hit_curves.csv", csv.render_csv());
  std::printf("capacity sweep written to bench_output/cache_hit_curves.csv\n");
  print_footer("cache_efficiency", watch);
  return 0;
}
