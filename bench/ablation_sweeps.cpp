// Ablations for the design choices DESIGN.md calls out:
//   1. OPTICS steepness xi (the paper brackets with 0.1 / 0.9 -- how do the
//      colocation conclusions move across the whole range?)
//   2. The 20% discrepant-vantage-point trimming in the latency distance.
//   3. The number of vantage points (the paper has 163 M-Lab sites).
//   4. Router unresponsiveness vs the peering study's confirmed/possible split.
//   5. Offnet headroom vs lockdown-style surge spillover.
//
// Runs at "small" scale by default (override with REPRO_SCALE) because each
// sweep point re-runs a pipeline stage.
#include <cstdio>
#include <map>
#include <set>

#include "bench_common.h"
#include "route/peering_inference.h"
#include "traffic/scenarios.h"
#include "util/strings.h"
#include "util/table.h"

namespace repro::bench {
namespace {

Scenario ablation_scenario() {
  const char* scale = std::getenv("REPRO_SCALE");
  if (scale == nullptr) return Scenario::small();
  return scenario_from_env();
}

/// Fraction of ISPs fully colocated (all of any hypergiant's offnets in a
/// cluster with another hypergiant) and cluster/facility purity at one xi.
struct ClusterQuality {
  double full_colocation_google = 0.0;
  double facility_purity = 0.0;  // clusters whose IPs share one facility
  std::size_t usable_isps = 0;
};

/// Every k-th hosting ISP is clustered per sweep point; the sweeps compare
/// settings against each other, so consistent subsampling is free accuracy.
constexpr std::size_t kSweepStride = 3;

ClusterQuality evaluate_clustering(const Pipeline& pipeline,
                                   const ColocationClusterer& clusterer,
                                   double xi) {
  ClusterQuality quality;
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  std::size_t google_hosts = 0;
  std::size_t google_full = 0;
  std::size_t clusters = 0;
  std::size_t pure = 0;
  std::size_t ordinal = 0;
  for (const AsIndex isp : pipeline.hosting_isps_2023()) {
    if (ordinal++ % kSweepStride != 0) continue;
    const double xis[] = {xi};
    const auto clustering = clusterer.cluster_isp_multi(isp, xis).front();
    if (!clustering.usable) continue;
    ++quality.usable_isps;
    const HgColocation colocation =
        colocation_of(clustering, registry, Hypergiant::kGoogle);
    if (colocation.total_ips > 0) {
      ++google_hosts;
      if (colocation.colocated_ips == colocation.total_ips) ++google_full;
    }
    std::map<int, std::set<FacilityIndex>> by_label;
    for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
      if (clustering.labels[i] < 0) continue;
      by_label[clustering.labels[i]].insert(
          registry.servers()[clustering.registry_indices[i]].facility);
    }
    for (const auto& [label, facilities] : by_label) {
      (void)label;
      ++clusters;
      if (facilities.size() == 1) ++pure;
    }
  }
  if (google_hosts > 0) {
    quality.full_colocation_google =
        static_cast<double>(google_full) / google_hosts;
  }
  if (clusters > 0) {
    quality.facility_purity = static_cast<double>(pure) / clusters;
  }
  return quality;
}

void sweep_xi(const Pipeline& pipeline) {
  std::printf("--- Ablation 1: OPTICS xi sweep ---\n");
  ColocationConfig config;
  config.filter = pipeline.scenario().filter;
  const ColocationClusterer clusterer(pipeline.registry(Snapshot::k2023),
                                      pipeline.ping_mesh(),
                                      pipeline.vantage_points(), config);
  TextTable table({"xi", "Google fully colocated", "facility purity", "ISPs"});
  for (const double xi : {0.05, 0.1, 0.5, 0.9}) {
    const ClusterQuality quality = evaluate_clustering(pipeline, clusterer, xi);
    table.add_row({format_fixed(xi, 2),
                   format_percent(quality.full_colocation_google),
                   format_percent(quality.facility_purity),
                   std::to_string(quality.usable_isps)});
  }
  std::printf("%s\n", table.render().c_str());
}

void sweep_trim(const Pipeline& pipeline) {
  std::printf("--- Ablation 2: distance trim fraction (paper uses 20%%) ---\n");
  TextTable table({"trim", "Google fully colocated", "facility purity"});
  for (const double trim : {0.0, 0.2, 0.4}) {
    ColocationConfig config;
    config.filter = pipeline.scenario().filter;
    config.trim_fraction = trim;
    const ColocationClusterer clusterer(pipeline.registry(Snapshot::k2023),
                                        pipeline.ping_mesh(),
                                        pipeline.vantage_points(), config);
    const ClusterQuality quality = evaluate_clustering(pipeline, clusterer, 0.1);
    table.add_row({format_fixed(trim, 1),
                   format_percent(quality.full_colocation_google),
                   format_percent(quality.facility_purity)});
  }
  std::printf("%s\n", table.render().c_str());
}

void sweep_vantage_points(const Scenario& base) {
  std::printf("--- Ablation 3: vantage-point count (paper: 163 M-Lab sites) ---\n");
  TextTable table({"VPs", "min sites filter", "Google fully colocated",
                   "facility purity", "usable ISPs"});
  for (const std::size_t count :
       {base.vantage_points, base.vantage_points / 2, base.vantage_points / 4}) {
    Scenario scenario = base;
    scenario.vantage_points = count;
    scenario.filter.min_usable_sites =
        std::max<std::size_t>(4, base.filter.min_usable_sites * count /
                                     base.vantage_points);
    Pipeline pipeline(scenario);
    ColocationConfig config;
    config.filter = scenario.filter;
    const ColocationClusterer clusterer(pipeline.registry(Snapshot::k2023),
                                        pipeline.ping_mesh(),
                                        pipeline.vantage_points(), config);
    const ClusterQuality quality = evaluate_clustering(pipeline, clusterer, 0.1);
    table.add_row({std::to_string(count),
                   std::to_string(scenario.filter.min_usable_sites),
                   format_percent(quality.full_colocation_google),
                   format_percent(quality.facility_purity),
                   std::to_string(quality.usable_isps)});
  }
  std::printf("%s\n", table.render().c_str());
}

void sweep_silent_routers(const Pipeline& pipeline) {
  std::printf(
      "--- Ablation 4: router unresponsiveness vs peering inference ---\n");
  const Internet& net = pipeline.internet();
  const AsIndex google = net.as_by_asn(kGoogleAsn);
  const IxpRegistry ixp_registry =
      IxpRegistry::build(net, pipeline.scenario().ixp);
  TextTable table({"silent router rate", "peer", "possible", "no evidence"});
  for (const double rate : {0.0, 0.18, 0.4, 0.7}) {
    TracerouteConfig trace_config = pipeline.scenario().traceroute;
    trace_config.silent_router_rate = rate;
    const TracerouteEngine engine(net, trace_config);
    const PeeringStudy study(net, engine, ixp_registry,
                             pipeline.scenario().peering);
    const DiscoveryReport& report =
        pipeline.discovery(Snapshot::k2023, Methodology::k2023);
    std::vector<AsIndex> targets;
    for (const auto& [isp, ips] :
         report.footprint(Hypergiant::kGoogle).by_isp) {
      (void)ips;
      targets.push_back(isp);
    }
    const auto evidence = study.run(google, targets, pipeline.routing());
    std::size_t peer = 0;
    std::size_t possible = 0;
    for (const auto& [isp, result] : evidence) {
      (void)isp;
      if (result.status == PeeringStatus::kPeer) ++peer;
      if (result.status == PeeringStatus::kPossiblePeer) ++possible;
    }
    const double denom = static_cast<double>(targets.size());
    table.add_row({format_fixed(rate, 2),
                   format_percent(peer / denom),
                   format_percent(possible / denom),
                   format_percent((denom - peer - possible) / denom)});
  }
  std::printf("%s\n", table.render().c_str());
}

void sweep_headroom() {
  std::printf("--- Ablation 5: offnet headroom vs surge spillover ---\n");
  TextTable table({"headroom", "offnet change", "interdomain multiplier"});
  for (const double headroom : {1.0, 1.2, 1.5, 2.0}) {
    CovidSurgeInput input;
    input.offnet_headroom = headroom;
    const CovidSurgeResult result = covid_surge(input);
    table.add_row({format_fixed(headroom, 1),
                   format_percent(result.offnet_increase_fraction()),
                   "x" + format_fixed(result.interdomain_multiplier(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace
}  // namespace repro::bench

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Ablations -- sensitivity of the reproduction's conclusions");

  const Scenario scenario = ablation_scenario();
  Pipeline pipeline(scenario);
  sweep_xi(pipeline);
  sweep_trim(pipeline);
  sweep_vantage_points(scenario);
  sweep_silent_routers(pipeline);
  sweep_headroom();
  print_footer("ablation_sweeps", watch, pipeline);
  return 0;
}
