// Regenerates Section 4.3: spillover collateral damage. For a sample of
// hosting ISPs, fail the facility hosting the most hypergiants at the ISP's
// local evening peak and measure (a) how much traffic shifts to interdomain
// routes, (b) how often shared links (IXP ports, transit) become congested,
// and (c) the degradation inflicted on unrelated ("other") traffic --
// comparing facilities that host one hypergiant vs several.
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 4.3 -- cascading spillover and collateral damage");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section43_study(pipeline)).c_str());

  std::printf(
      "Paper claim to hold: failures of facilities hosting offnets from\n"
      "multiple hypergiants push far more traffic onto shared routes than\n"
      "single-hypergiant facilities, congesting IXPs/transit and damaging\n"
      "unrelated services.\n");
  print_footer("section43_cascade", watch, pipeline);
  return 0;
}
