// Regenerates Section 4.2.2: dedicated interconnect (PNI) capacity vs the
// interdomain demand left after offnet serving, at each ISP's local evening
// peak -- the paper's evidence that PNIs frequently lack sufficient
// bandwidth (Google >= 13% average exceedance; 10% of Meta PNIs at 2x).
#include "bench_common.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 4.2.2 -- PNI capacity vs peak interdomain demand");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section422_study(pipeline)).c_str());
  print_footer("section422_pni", watch, pipeline);
  return 0;
}
