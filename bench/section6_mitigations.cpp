// The Section 6 discussion as a what-if: replay the busiest-facility failure
// of Section 4.3 with the proposed shared-link isolation mechanism and show
// the trade-off (collateral damage to unrelated traffic vs self-inflicted
// degradation of the spilling hypergiants). Also plays a 48-hour "perfect
// storm" timeline -- flash crowd + facility failure -- under both policies.
#include "bench_common.h"

#include "traffic/timeline.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;
  using namespace repro::bench;
  const Stopwatch watch;
  print_header("Section 6 -- mitigating spillover with isolation");

  Pipeline pipeline(scenario_from_env());
  std::printf("%s\n", render(section6_study(pipeline)).c_str());

  // Perfect-storm timeline: among ISPs hosting all four hypergiants, pick
  // the one where the busiest-facility failure hurts shared links the most
  // (that is where a flash crowd on top compounds into a real storm).
  const Internet& net = pipeline.internet();
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  AsIndex isp = kInvalidIndex;
  double worst_collateral = -1.0;
  for (const AsIndex candidate : registry.hosting_isps()) {
    if (registry.hypergiants_at(candidate).size() < 4) continue;
    const CascadeOutcome probe = cascade_study(
        net, registry, pipeline.demand(), pipeline.capacity(), candidate);
    const double collateral =
        probe.failure.other_traffic_degraded_fraction();
    if (collateral > worst_collateral) {
      worst_collateral = collateral;
      isp = candidate;
    }
  }
  if (isp == kInvalidIndex) {
    std::printf("no all-four ISP in this world; skipping the timeline\n");
    return 0;
  }
  FacilityIndex busiest = kInvalidIndex;
  std::size_t most = 0;
  for (const auto& [facility, hgs] : registry.facility_map(isp)) {
    if (hgs.size() > most) {
      most = hgs.size();
      busiest = facility;
    }
  }

  const SpilloverSimulator simulator(net, registry, pipeline.demand(),
                                     pipeline.capacity());
  const TimelineSimulator timeline_sim(simulator);
  // Events: flash crowd on Google hours 18-26, facility failure hours 20-30.
  const double peak_utc = simulator.local_peak_utc_hour(isp);
  const std::vector<TimelineEvent> events{
      flash_crowd(Hypergiant::kGoogle, 18.0, 8.0, 1.5),
      facility_failure(busiest, 20.0, 10.0),
  };

  std::printf("Perfect-storm timeline: %s (%.1fM users), facility %s (%zu "
              "hypergiants)\n\n",
              net.ases[isp].name.c_str(), net.ases[isp].users / 1e6,
              net.facilities[busiest].name.c_str(), most);
  TextTable table({"hour", "policy", "offnet Gbps", "interdomain Gbps",
                   "IXP drop", "other degraded"});
  for (const SharedLinkPolicy policy :
       {SharedLinkPolicy::kBestEffort, SharedLinkPolicy::kIsolation}) {
    const auto points = timeline_sim.run(isp, events, 36.0, 1.0,
                                         peak_utc - 21.0, policy);
    for (const TimelinePoint& point : points) {
      if (static_cast<int>(point.hour) % 4 != 0 &&
          !(point.hour >= 18 && point.hour <= 30)) {
        continue;  // dense around the storm, sparse elsewhere
      }
      double offnet = 0.0;
      double interdomain = 0.0;
      for (const Hypergiant hg : all_hypergiants()) {
        offnet += point.state.flow(hg).offnet;
        interdomain += point.state.flow(hg).interdomain();
      }
      table.add_row({format_fixed(point.hour, 0),
                     std::string(to_string(policy)), format_fixed(offnet, 0),
                     format_fixed(interdomain, 0),
                     format_percent(point.state.ixp_drop_fraction()),
                     format_percent(
                         point.state.other_traffic_degraded_fraction(), 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  print_footer("section6_mitigations", watch, pipeline);
  return 0;
}
