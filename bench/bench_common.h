// Shared plumbing for the table/figure harnesses: scenario selection (the
// paper scale by default, overridable for quick runs via REPRO_SCALE), a
// monotonic stopwatch for stage reporting, and the machine-readable run
// artifacts every harness emits:
//   * bench_output/BENCH_<name>.json -- one JSON line per run (steady-clock
//     seconds, scale, wall-clock unix_ms, peak_rss_mb from the resource
//     sampler's max), consumable by trend tooling;
//     directory overridable via REPRO_BENCH_OUT. The same line is appended
//     to bench_output/HISTORY.jsonl so `repro-bench diff/trend` can compare
//     runs over time (the history file is local-only, see .gitignore).
//   * run_report.json -- the span tree + metrics registry (+ resource
//     sampler series), written when REPRO_TRACE=1 (path overridable via
//     REPRO_TRACE_OUT); the per-stage timing table is also printed.
//   * trace.json -- Perfetto/chrome://tracing trace of the same run,
//     written when REPRO_TRACE=1 (path overridable via REPRO_TRACE_EVENTS).
// print_header() also starts the background resource sampler when
// REPRO_SAMPLE_HZ is set (or by default under REPRO_TRACE=1).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyses.h"
#include "core/pipeline.h"
#include "obs/perfetto.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trend.h"
#include "util/table.h"

namespace repro::bench {

/// Scenario from the REPRO_SCALE environment variable: any spelling
/// parse_scale accepts ("tiny", "small", "paper", "10x"); "paper" when
/// unset or unrecognized.
inline Scenario scenario_from_env() {
  const char* scale = std::getenv("REPRO_SCALE");
  if (scale != nullptr) {
    if (const auto parsed = parse_scale(scale); parsed.has_value()) {
      return Scenario::at_scale(*parsed);
    }
    std::fprintf(stderr, "unknown REPRO_SCALE '%s', using paper\n", scale);
  }
  return Scenario::paper();
}

inline const char* scale_name() {
  const char* scale = std::getenv("REPRO_SCALE");
  return scale == nullptr ? "paper" : scale;
}

/// Monotonic stopwatch (steady_clock: immune to NTP steps and wall-clock
/// adjustments mid-benchmark).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s   [scale: %s]\n", title, scale_name());
  std::printf("==============================================================\n\n");
  obs::sampler().maybe_start_from_env();
}

/// One JSON line describing a finished benchmark run. `extra_fields`, when
/// non-empty, is spliced verbatim before the closing brace (it must be a
/// comma-separated list of already-escaped `"key":value` pairs).
inline std::string bench_json_line(const char* bench, double seconds,
                                   const std::string& extra_fields = {}) {
  const long long unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix),
                "{\"bench\":\"%s\",\"scale\":\"%s\",\"seconds\":%.6f,"
                "\"clock\":\"steady\",\"unix_ms\":%lld",
                bench, scale_name(), seconds, unix_ms);
  std::string line = prefix;
  if (!extra_fields.empty()) {
    line += ",";
    line += extra_fields;
  }
  line += "}\n";
  return line;
}

/// `"health":"<overall>","stages":{"<stage>":"<status>",...}` fields for a
/// BENCH json line, from a pipeline's stage-health map. An empty map (no
/// pipeline, or no stage executed) reads as a clean run.
inline std::string health_json_fields(
    const std::map<std::string, fault::StageHealth>& stages) {
  std::string out = "\"health\":\"";
  out += fault::to_string(fault::overall_status(stages));
  out += "\",\"stages\":{";
  bool first = true;
  for (const auto& [stage, health] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + stage + "\":\"";
    out += fault::to_string(health.status);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Prints the footer and emits the machine-readable artifacts described in
/// the header comment. `bench` names the BENCH_<bench>.json file; `stages`
/// (typically pipeline.stage_health()) becomes the line's health verdict and
/// `extra_fields` extends the line (see bench_json_line).
/// Peak resident set over the run, in MB: the max across the background
/// sampler's series (when it ran) and a sample taken right now, so the
/// field is present -- if coarser -- even in unsampled runs. RSS only
/// shrinks on explicit release (madvise), so the footer-time sample is a
/// faithful floor of the true peak.
inline double peak_rss_mb_now() {
  long peak_kb = obs::read_resource_sample().rss_kb;
  for (const obs::ResourceSample& sample : obs::sampler().samples()) {
    if (sample.rss_kb > peak_kb) peak_kb = sample.rss_kb;
  }
  return static_cast<double>(peak_kb) / 1024.0;
}

inline void print_footer(const char* bench, const Stopwatch& watch,
                         const std::map<std::string, fault::StageHealth>& stages = {},
                         const std::string& extra_fields = {}) {
  std::printf("\n[completed in %.1f s]\n", watch.seconds());

  // Join the sampler before building the line so its final sample counts
  // toward peak_rss_mb and the exported series covers the full run.
  obs::sampler().stop();

  std::string fields = health_json_fields(stages);
  {
    char rss[64];
    std::snprintf(rss, sizeof(rss), ",\"peak_rss_mb\":%.1f",
                  peak_rss_mb_now());
    fields += rss;
  }
  if (!extra_fields.empty()) {
    fields += ",";
    fields += extra_fields;
  }
  const char* dir = std::getenv("REPRO_BENCH_OUT");
  const std::string out_dir = dir == nullptr ? "bench_output" : dir;
  const std::string path = out_dir + "/BENCH_" + bench + ".json";
  const std::string line = bench_json_line(bench, watch.seconds(), fields);
  try {
    write_file(path, line);
  } catch (const Error& error) {
    std::fprintf(stderr, "bench json not written: %s\n", error.what());
  }
  try {
    // Trend history: the same line, appended, so repro-bench can diff this
    // run against earlier ones. REPRO_HISTORY_MAX_LINES (when set) caps the
    // file to the newest N lines.
    append_file_capped(out_dir + "/HISTORY.jsonl", line,
                       obs::history_max_lines_from_env());
  } catch (const Error& error) {
    std::fprintf(stderr, "bench history not appended: %s\n", error.what());
  }

  if (obs::tracing_enabled()) {
    std::printf("\nPer-stage timing (REPRO_TRACE=1):\n%s\n",
                obs::span_table().c_str());
    if (obs::maybe_write_run_report()) {
      std::printf("[trace: wrote %s]\n", obs::default_report_path().c_str());
    }
    if (obs::maybe_write_trace()) {
      std::printf("[trace: wrote %s]\n", obs::default_trace_path().c_str());
    }
  }
}

/// Footer for a harness built around one Pipeline: surfaces its per-stage
/// StageHealth verdicts in the BENCH json line.
inline void print_footer(const char* bench, const Stopwatch& watch,
                         const Pipeline& pipeline,
                         const std::string& extra_fields = {}) {
  print_footer(bench, watch, pipeline.stage_health(), extra_fields);
}

inline constexpr double kPaperXis[] = {0.1, 0.9};

}  // namespace repro::bench
