// Shared plumbing for the table/figure harnesses: scenario selection (the
// paper scale by default, overridable for quick runs via REPRO_SCALE) and a
// stopwatch for stage reporting.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyses.h"
#include "core/pipeline.h"

namespace repro::bench {

/// Scenario from the REPRO_SCALE environment variable:
/// "paper" (default), "small", or "tiny".
inline Scenario scenario_from_env() {
  const char* scale = std::getenv("REPRO_SCALE");
  const std::string value = scale == nullptr ? "paper" : scale;
  if (value == "tiny") return Scenario::tiny();
  if (value == "small") return Scenario::small();
  if (value != "paper") {
    std::fprintf(stderr, "unknown REPRO_SCALE '%s', using paper\n",
                 value.c_str());
  }
  return Scenario::paper();
}

inline const char* scale_name() {
  const char* scale = std::getenv("REPRO_SCALE");
  return scale == nullptr ? "paper" : scale;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s   [scale: %s]\n", title, scale_name());
  std::printf("==============================================================\n\n");
}

inline void print_footer(const Stopwatch& watch) {
  std::printf("\n[completed in %.1f s]\n", watch.seconds());
}

inline constexpr double kPaperXis[] = {0.1, 0.9};

}  // namespace repro::bench
