// Spillover and cascade walkthrough (Section 4 of the paper): pick a large
// multi-hypergiant ISP, show a normal evening peak, then a lockdown-style
// surge, then a failure of the facility hosting the most hypergiants --
// tracing where every Gbps goes (offnet, PNI, IXP, transit) and what the
// collateral damage to unrelated traffic is.
#include <cstdio>

#include "core/pipeline.h"
#include "traffic/scenarios.h"
#include "util/strings.h"

namespace {

void print_flows(const repro::SpilloverResult& result) {
  using namespace repro;
  std::printf("  %-8s %9s %9s %9s %9s %9s %9s\n", "service", "demand", "offnet",
              "PNI", "IXP", "transit", "degraded");
  for (const Hypergiant hg : all_hypergiants()) {
    const HgFlow& flow = result.flow(hg);
    std::printf("  %-8s %8.1fG %8.1fG %8.1fG %8.1fG %8.1fG %8.1fG\n",
                std::string(to_string(hg)).c_str(), flow.demand, flow.offnet,
                flow.pni, flow.ixp, flow.transit, flow.degraded);
  }
  std::printf("  shared IXP ports:   %.1fG load / %.1fG capacity (drop %s)\n",
              result.ixp_load, result.ixp_capacity,
              format_percent(result.ixp_drop_fraction()).c_str());
  std::printf("  transit links:      %.1fG load / %.1fG capacity (drop %s)\n",
              result.transit_load, result.transit_capacity,
              format_percent(result.transit_drop_fraction()).c_str());
  std::printf("  other traffic degraded: %s\n",
              format_percent(result.other_traffic_degraded_fraction()).c_str());
}

}  // namespace

int main() {
  using namespace repro;
  Pipeline pipeline(Scenario::small());
  const Internet& net = pipeline.internet();
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);

  // Pick the largest ISP hosting all four hypergiants.
  AsIndex isp = kInvalidIndex;
  for (const AsIndex candidate : registry.hosting_isps()) {
    if (registry.hypergiants_at(candidate).size() < 4) continue;
    if (isp == kInvalidIndex || net.ases[candidate].users > net.ases[isp].users) {
      isp = candidate;
    }
  }
  if (isp == kInvalidIndex) {
    std::printf("no ISP hosts all four hypergiants in this world\n");
    return 1;
  }
  std::printf("ISP under study: %s (%.1fM users, %zu offnet IPs)\n\n",
              net.ases[isp].name.c_str(), net.ases[isp].users / 1e6,
              registry.servers_at(isp).size());

  const SpilloverSimulator simulator(net, registry, pipeline.demand(),
                                     pipeline.capacity());
  SpilloverScenario scenario;
  scenario.utc_hour = simulator.local_peak_utc_hour(isp);

  std::printf("--- normal evening peak ---\n");
  print_flows(simulator.simulate(isp, scenario));

  std::printf("\n--- lockdown-style surge (+58%% demand on every service) ---\n");
  SpilloverScenario surge = scenario;
  for (auto& multiplier : surge.demand_multiplier) multiplier = 1.58;
  print_flows(simulator.simulate(isp, surge));

  std::printf("\n--- failure of the busiest facility at evening peak ---\n");
  const CascadeOutcome outcome = cascade_study(net, registry, pipeline.demand(),
                                               pipeline.capacity(), isp);
  std::printf("  failed facility: %s (hosted %d hypergiants)\n",
              net.facilities[outcome.failed_facility].name.c_str(),
              outcome.hypergiants_in_facility);
  print_flows(outcome.failure);
  std::printf("\n  collateral degradation vs baseline: %s\n",
              format_percent(outcome.collateral_degradation(), 2).c_str());

  std::printf("\n--- the lockdown arithmetic of Section 4.1 ---\n");
  const CovidSurgeResult covid = covid_surge(CovidSurgeInput{});
  std::printf("  offnet:      %.3f -> %.3f (%s)\n", covid.offnet_before,
              covid.offnet_after,
              format_percent(covid.offnet_increase_fraction()).c_str());
  std::printf("  interdomain: %.3f -> %.3f (x%.2f)\n", covid.interdomain_before,
              covid.interdomain_after, covid.interdomain_multiplier());
  return 0;
}
