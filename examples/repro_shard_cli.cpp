// Multi-process shard driver for the clustering stage (docs/SCALING.md).
//
// Parent mode forks one worker process per shard; each worker builds its
// own Pipeline over the shared artifact store, clusters only the hosting
// ISPs its shard owns (Pipeline::shard_of partitions them by the scenario's
// measurement digest, so every process agrees without coordination), and
// publishes a "clustershard" artifact. The parent then merges: it replays
// every shard's outcomes and domain-counter deltas through the same
// ISP-ordered merge a single-process run uses, recomputing any shard whose
// artifact is missing or corrupt. The merged clusterings, StageHealth,
// Table 1/2 outputs and domain counters are bit-identical to --single
// (scripts/check.sh diffs the two summaries; tests/test_scale.cpp fences
// the same contract in-process).
//
//   repro-shard --shards 3 --store /tmp/st --scale tiny --out sharded.txt
//   repro-shard --single   --store /tmp/st2 --scale tiny --out single.txt
//   diff sharded.txt single.txt
//
// REPRO_FAULT selects the fault plan, exactly like the other example
// binaries. Workers are forked before the parent constructs any Pipeline,
// so no threads or locked mutexes cross the fork.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analyses.h"
#include "fault/fault_plan.h"
#include "fault/stage_health.h"
#include "obs/metrics.h"
#include "store/artifact_store.h"
#include "store/serde.h"
#include "util/table.h"

namespace {

using namespace repro;

struct Options {
  std::size_t shards = 0;      // 0 = not set
  bool single = false;
  int worker = -1;             // >= 0: internal worker mode for that shard
  std::string store_root;
  std::string scale = "tiny";
  double xi = 0.1;
  std::string out = "-";
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--shards K | --single) --store DIR [--scale "
      "tiny|small|paper|10x] [--xi X] [--out PATH]\n"
      "  --shards K   fork K worker processes, then merge their shards\n"
      "  --single     run the whole clustering in this process instead\n"
      "  --store DIR  artifact store root (the shared medium; required)\n"
      "  --out PATH   write the comparison summary there (default stdout)\n"
      "  --worker I   internal: run as the worker for shard I\n",
      argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--shards") opt.shards = std::strtoul(value(), nullptr, 10);
    else if (arg == "--single") opt.single = true;
    else if (arg == "--worker") opt.worker = std::atoi(value());
    else if (arg == "--store") opt.store_root = value();
    else if (arg == "--scale") opt.scale = value();
    else if (arg == "--xi") opt.xi = std::atof(value());
    else if (arg == "--out") opt.out = value();
    else usage(argv[0]);
  }
  if (opt.store_root.empty()) usage(argv[0]);
  if (opt.worker >= 0) {
    if (opt.shards == 0) usage(argv[0]);
  } else if (opt.single == (opt.shards != 0)) {
    usage(argv[0]);  // exactly one of --single / --shards
  }
  return opt;
}

Scenario scenario_for(const std::string& name) {
  const auto scale = parse_scale(name);
  if (!scale.has_value()) {
    std::fprintf(stderr, "unknown scale: %s\n", name.c_str());
    std::exit(2);
  }
  return Scenario::at_scale(*scale);
}

std::shared_ptr<store::ArtifactStore> open_store(const std::string& root) {
  store::StoreConfig config;
  config.root = root;
  return std::make_shared<store::ArtifactStore>(config);
}

/// Digest over everything an IspClustering decides, so two runs agree
/// exactly when their clusterings are bit-identical.
std::uint64_t clusterings_digest(const std::vector<IspClustering>& all) {
  store::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(all.size()));
  for (const IspClustering& c : all) {
    h.mix(static_cast<std::uint64_t>(c.isp)).mix(c.usable);
    h.mix(static_cast<std::uint64_t>(c.cluster_count));
    h.mix(static_cast<std::uint64_t>(c.dropped_unresponsive));
    h.mix(static_cast<std::uint64_t>(c.dropped_impossible));
    h.mix(static_cast<std::uint64_t>(c.usable_sites));
    for (const std::size_t ri : c.registry_indices) {
      h.mix(static_cast<std::uint64_t>(ri));
    }
    for (const int label : c.labels) h.mix(label);
  }
  return h.digest();
}

/// The comparison summary: clustering digests, stage health, Table 1/2
/// renders, and the domain counters -- everything the bit-identity contract
/// covers. Deliberately excludes gauges (cluster.threads/tasks describe the
/// process layout, not the result) and store./pipeline. bookkeeping.
std::string summarize(const Pipeline& pipeline, double xi) {
  std::string out;
  char line[128];
  for (const double x : (xi == 0.1 || xi == 0.9)
                            ? std::vector<double>{0.1, 0.9}
                            : std::vector<double>{xi}) {
    std::snprintf(line, sizeof(line), "clusterings[%g]: %016llx\n", x,
                  static_cast<unsigned long long>(
                      clusterings_digest(pipeline.clusterings(x))));
    out += line;
  }
  out += "health:\n";
  for (const auto& [stage, health] : pipeline.stage_health()) {
    out += "  " + stage + ": " + std::string(to_string(health.status)) + " " +
           std::to_string(health.dropped) + "/" +
           std::to_string(health.total);
    for (const std::string& reason : health.reasons) out += " | " + reason;
    out += "\n";
  }
  out += "counters:\n";
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (name.rfind("store.", 0) == 0 || name.rfind("pipeline.", 0) == 0) {
      continue;
    }
    out += "  " + name + " = " + std::to_string(value) + "\n";
  }
  out += "table1:\n" + render(table1_study(pipeline));
  const std::vector<double> xis{0.1, 0.9};
  out += "table2:\n" + render(table2_study(pipeline, xis));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const fault::FaultPlan plan = fault::FaultPlan::from_env();
  const Scenario scenario = scenario_for(opt.scale);

  if (opt.worker >= 0) {
    // Worker mode: cluster this shard's ISPs and publish the artifact.
    try {
      Pipeline pipeline(scenario, plan, open_store(opt.store_root));
      pipeline.compute_clustering_shard(static_cast<std::size_t>(opt.worker),
                                        opt.shards, opt.xi);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "worker %d: %s\n", opt.worker, error.what());
      return 1;
    }
    return 0;
  }

  if (opt.single) {
    // Stage-for-stage comparability with shard mode: there the workers
    // publish the shared stage artifacts (topology, population, scan) and
    // the parent consumes them warm, with those stages' counters confined
    // to the worker processes. Mirror that process structure here -- a
    // forked prewarm child computes the stage artifacts and exits, so the
    // summarizing parent below is warm for the same stages and cold only
    // for clustering, exactly like the shard-mode parent.
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      try {
        Pipeline pipeline(scenario, plan, open_store(opt.store_root));
        pipeline.hosting_isps_2023();
        std::_Exit(0);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "prewarm: %s\n", error.what());
        std::_Exit(1);
      }
    }
    int status = 0;
    waitpid(pid, &status, 0);
  } else {
    // Fork the workers before this process builds any Pipeline: no thread
    // pool or locked mutex exists yet, so fork() is safe, and each worker
    // re-execs nothing -- it runs main() logic in its own address space.
    std::vector<pid_t> children;
    for (std::size_t shard = 0; shard < opt.shards; ++shard) {
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        try {
          Pipeline pipeline(scenario, plan, open_store(opt.store_root));
          pipeline.compute_clustering_shard(shard, opt.shards, opt.xi);
          std::_Exit(0);
        } catch (const std::exception& error) {
          std::fprintf(stderr, "worker %zu: %s\n", shard, error.what());
          std::_Exit(1);
        }
      }
      children.push_back(pid);
    }
    std::size_t failed = 0;
    for (const pid_t pid : children) {
      int status = 0;
      if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        ++failed;
      }
    }
    if (failed > 0) {
      // The merge below recomputes any shard whose artifact never landed,
      // so worker failures degrade to extra local work, not wrong output.
      std::fprintf(stderr, "%zu worker(s) failed; merge will recompute\n",
                   failed);
    }
  }

  Pipeline pipeline(scenario, plan, open_store(opt.store_root));
  if (!opt.single) {
    pipeline.merge_clustering_shards(opt.shards, opt.xi);
  }
  const std::string summary = summarize(pipeline, opt.xi);

  if (opt.out == "-") {
    std::fputs(summary.c_str(), stdout);
  } else {
    write_file(opt.out, summary);
    std::printf("wrote %s\n", opt.out.c_str());
  }
  return 0;
}
