// Colocation deep-dive on a small world: Table 2 buckets at both xi
// settings, the Figure 2 facility-share CCDF, the rDNS validation, and the
// single-site statistics -- the full Section 3 pipeline end to end.
#include <iostream>

#include "core/analyses.h"
#include "core/pipeline.h"

int main() {
  using namespace repro;
  Pipeline pipeline(Scenario::small());

  const double xis[] = {0.1, 0.9};
  std::cout << render(table2_study(pipeline, xis)) << "\n";
  std::cout << render(figure2_study(pipeline, xis)) << "\n";
  std::cout << render(validation_study(pipeline, 0.1)) << "\n";
  std::cout << render(section41_study(pipeline, xis)) << "\n";
  return 0;
}
