// repro-bench: trend tooling over the BENCH_*.json lines the harnesses
// emit (bench/bench_common.h) and the trace.json files the flight recorder
// writes. Subcommands:
//
//   repro-bench record <BENCH.json> [history.jsonl]
//       Append the bench line(s) in the file to the history (default
//       bench_output/HISTORY.jsonl). bench_common.h already appends
//       automatically; this is for importing lines produced elsewhere.
//
//   repro-bench diff [--baseline FILE] [--history FILE] [--gate R]
//                    [--gate-fields f1,f2] [AFTER.json]
//       Compare the newest run against a reference, field by field, and
//       print per-field deltas with a regression verdict. The reference is
//       --baseline when given, else the previous entry (same bench) in the
//       history. AFTER defaults to the newest history entry. Time fields
//       ("seconds", *_seconds, *_ms, *_ns_op) whose after/before ratio
//       exceeds the gate (default 1.25) regress; --gate-fields restricts
//       which fields can fail the gate (others still print).
//       Exit: 0 ok, 1 regression, 2 usage/input error.
//
//   repro-bench trend [--history FILE] [BENCH]
//       One row per stored run (optionally one bench only): timestamp,
//       scale, seconds.
//
//   repro-bench trace-check <trace.json>
//       Structural validation used by the scripts/check.sh trace-smoke
//       step: the file must parse with the obs JSON parser and contain at
//       least one flow event and one counter event.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trend.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace repro;

int usage() {
  std::fprintf(
      stderr,
      "usage: repro-bench record <BENCH.json> [history.jsonl]\n"
      "       repro-bench diff [--baseline FILE] [--history FILE]\n"
      "                        [--gate R] [--gate-fields f1,f2] [AFTER.json]\n"
      "       repro-bench trend [--history FILE] [BENCH]\n"
      "       repro-bench trace-check <trace.json>\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(static_cast<bool>(in), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_fields(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

int cmd_record(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  const std::string history =
      args.size() > 1 ? args[1] : "bench_output/HISTORY.jsonl";
  std::string content = read_file(args[0]);
  // Validate before appending; a malformed line would poison the history.
  const std::vector<obs::BenchRecord> records = obs::parse_history(content);
  if (records.empty()) {
    std::fprintf(stderr, "repro-bench: no bench lines in %s\n",
                 args[0].c_str());
    return 2;
  }
  if (content.empty() || content.back() != '\n') content += '\n';
  // REPRO_HISTORY_MAX_LINES (when set) trims the history to the newest N
  // lines after the append, matching the bench footers' behavior.
  append_file_capped(history, content, obs::history_max_lines_from_env());
  std::printf("appended %zu line(s) to %s\n", records.size(),
              history.c_str());
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::string baseline_path;
  std::string history_path = "bench_output/HISTORY.jsonl";
  std::string after_path;
  double gate = 1.25;
  std::vector<std::string> gate_fields;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      require(i + 1 < args.size(), arg + " needs a value");
      return args[++i];
    };
    if (arg == "--baseline") baseline_path = next();
    else if (arg == "--history") history_path = next();
    else if (arg == "--gate") gate = std::stod(next());
    else if (arg == "--gate-fields") gate_fields = split_fields(next());
    else if (!arg.empty() && arg[0] == '-') return usage();
    else if (after_path.empty()) after_path = arg;
    else return usage();
  }

  obs::BenchRecord after;
  std::vector<obs::BenchRecord> history;
  if (after_path.empty() || baseline_path.empty()) {
    history = obs::parse_history(read_file(history_path));
  }
  if (!after_path.empty()) {
    const std::vector<obs::BenchRecord> records =
        obs::parse_history(read_file(after_path));
    require(!records.empty(), "no bench lines in " + after_path);
    after = records.back();
  } else {
    require(!history.empty(), "history is empty: " + history_path);
    after = history.back();
  }

  obs::BenchRecord before;
  bool have_before = false;
  if (!baseline_path.empty()) {
    const std::vector<obs::BenchRecord> records =
        obs::parse_history(read_file(baseline_path));
    require(!records.empty(), "no bench lines in " + baseline_path);
    before = records.back();
    have_before = true;
  } else {
    // Reference: the newest history entry of the same bench, skipping the
    // tail entry when `after` itself came from the history tail.
    const std::size_t skip =
        after_path.empty() ? history.size() - 1 : history.size();
    for (std::size_t i = history.size(); i-- > 0;) {
      if (i == skip || history[i].bench != after.bench) continue;
      before = history[i];
      have_before = true;
      break;
    }
  }
  if (!have_before) {
    std::printf("no prior run of bench '%s' to diff against\n",
                after.bench.c_str());
    return 0;  // first run is not a regression
  }

  const obs::TrendDiff diff =
      obs::diff_records(before, after, gate, gate_fields);
  std::printf("%s", obs::render_diff(diff).c_str());
  return diff.regressed() ? 1 : 0;
}

int cmd_trend(const std::vector<std::string>& args) {
  std::string history_path = "bench_output/HISTORY.jsonl";
  std::string bench;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--history") {
      require(i + 1 < args.size(), "--history needs a value");
      history_path = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      bench = args[i];
    }
  }
  const std::vector<obs::BenchRecord> history =
      obs::parse_history(read_file(history_path));
  TextTable table({"bench", "scale", "unix_ms", "seconds"});
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);
  for (const obs::BenchRecord& record : history) {
    if (!bench.empty() && record.bench != bench) continue;
    const auto unix_ms = record.numbers.find("unix_ms");
    const auto seconds = record.numbers.find("seconds");
    char when[32] = "-";
    if (unix_ms != record.numbers.end()) {
      std::snprintf(when, sizeof(when), "%.0f", unix_ms->second);
    }
    char secs[32] = "-";
    if (seconds != record.numbers.end()) {
      std::snprintf(secs, sizeof(secs), "%.6f", seconds->second);
    }
    table.add_row({record.bench, record.scale, when, secs});
  }
  if (table.row_count() == 0) {
    const std::string filter =
        bench.empty() ? "" : " of bench '" + bench + "'";
    std::printf("no runs%s in %s\n", filter.c_str(), history_path.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_trace_check(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const obs::JsonValue trace = obs::parse_json(read_file(args[0]));
  const obs::JsonValue& events = trace.at("traceEvents");
  std::size_t flow_events = 0;
  std::size_t counter_events = 0;
  std::size_t slices = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string& ph = events.at(i).at("ph").str();
    if (ph == "s" || ph == "f") ++flow_events;
    else if (ph == "C") ++counter_events;
    else if (ph == "X" || ph == "B") ++slices;
  }
  std::printf("%s: %zu slices, %zu flow events, %zu counter events\n",
              args[0].c_str(), slices, flow_events, counter_events);
  if (flow_events == 0) {
    std::fprintf(stderr, "repro-bench: no flow events (expected >= 1)\n");
    return 1;
  }
  if (counter_events == 0) {
    std::fprintf(stderr, "repro-bench: no counter events (expected >= 1)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "record") return cmd_record(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "trend") return cmd_trend(args);
    if (command == "trace-check") return cmd_trace_check(args);
  } catch (const Error& error) {
    std::fprintf(stderr, "repro-bench: %s\n", error.what());
    return 2;
  }
  return usage();
}
