// repro-store: operator CLI for a persistent artifact store root
// (docs/PERSISTENCE.md). Four subcommands over the same flat-file layout the
// pipeline uses, so an operator can inspect, audit or shrink a store without
// running a reproduction:
//
//   repro-store ls <root>            list artifacts, most recently used first
//   repro-store stats <root>         totals and a per-type breakdown
//   repro-store verify <root>        load every artifact; nonzero on corruption
//   repro-store prune <root> <mb>    LRU-evict down to a megabyte budget
//
// ls and stats take --json for machine-readable output: ls emits an array
// of {type, schema, digest, bytes} objects (MRU first); stats emits the
// same occupancy_json document the report service returns for its "stats"
// query, so dashboards can scrape either source identically.
//
// ls/stats/verify open the store read-only, so they never touch mtimes,
// evict, or delete corrupt files -- verify reports what a pipeline would
// see without changing it. prune is the only mutating subcommand.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "obs/json.h"
#include "store/artifact_store.h"
#include "util/error.h"

namespace {

using repro::store::ArtifactInfo;
using repro::store::ArtifactStore;
using repro::store::StoreConfig;

ArtifactStore open_store(const char* root, bool read_only) {
  StoreConfig config;
  config.root = root;
  config.read_only = read_only;
  return ArtifactStore(config);
}

int cmd_ls(const char* root, bool json) {
  const ArtifactStore store = open_store(root, /*read_only=*/true);
  const auto artifacts = store.list();
  if (json) {
    // One array, MRU first, mirroring the text listing's order.
    std::string out = "[";
    char entry[160];
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
      const ArtifactInfo& artifact = artifacts[i];
      std::snprintf(entry, sizeof(entry),
                    "%s{\"type\":\"%s\",\"schema\":%u,"
                    "\"digest\":\"%016llx\",\"bytes\":%llu}",
                    i == 0 ? "" : ",",
                    repro::obs::json_escape(artifact.key.type).c_str(),
                    artifact.key.schema,
                    static_cast<unsigned long long>(artifact.key.digest),
                    static_cast<unsigned long long>(artifact.bytes));
      out += entry;
    }
    out += "]\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  std::printf("%-12s %8s %18s %10s\n", "type", "schema", "digest", "bytes");
  for (const ArtifactInfo& artifact : artifacts) {
    std::printf("%-12s %8u   %016llx %10llu\n", artifact.key.type.c_str(),
                artifact.key.schema,
                static_cast<unsigned long long>(artifact.key.digest),
                static_cast<unsigned long long>(artifact.bytes));
  }
  std::printf("%zu artifacts, %.1f MB (most recently used first)\n",
              artifacts.size(), store.used_mb());
  return 0;
}

int cmd_stats(const char* root, bool json) {
  const ArtifactStore store = open_store(root, /*read_only=*/true);
  if (json) {
    std::printf("%s\n", repro::store::occupancy_json(store).c_str());
    return 0;
  }
  struct TypeStats {
    std::size_t count = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, TypeStats> by_type;  // sorted output
  for (const ArtifactInfo& artifact : store.list()) {
    TypeStats& stats = by_type[artifact.key.type];
    ++stats.count;
    stats.bytes += artifact.bytes;
  }
  std::printf("root: %s\n", root);
  std::printf("artifacts: %zu, %.1f MB\n\n", store.object_count(),
              store.used_mb());
  std::printf("%-12s %8s %12s\n", "type", "count", "MB");
  for (const auto& [type, stats] : by_type) {
    std::printf("%-12s %8zu %12.1f\n", type.c_str(), stats.count,
                static_cast<double>(stats.bytes) / 1e6);
  }
  return 0;
}

int cmd_verify(const char* root) {
  ArtifactStore store = open_store(root, /*read_only=*/true);
  std::size_t ok = 0;
  std::size_t corrupt = 0;
  for (const ArtifactInfo& artifact : store.list()) {
    // load() re-checks magic, container version, type, schema, payload size
    // and the trailing checksum; read-only, so a corrupt file is reported
    // but left in place for forensics.
    const repro::store::LoadResult result = store.load(artifact.key);
    if (result.hit()) {
      ++ok;
      continue;
    }
    ++corrupt;
    std::printf("CORRUPT  %s\n", result.corrupt()
                                     ? result.detail.c_str()
                                     : (artifact.filename + ": vanished "
                                                            "during verify")
                                           .c_str());
  }
  std::printf("%zu ok, %zu corrupt\n", ok, corrupt);
  return corrupt == 0 ? 0 : 1;
}

int cmd_prune(const char* root, const char* mb_text) {
  char* end = nullptr;
  const double mb = std::strtod(mb_text, &end);
  if (end == mb_text || *end != '\0' || mb < 0.0) {
    std::fprintf(stderr, "repro-store: bad budget '%s' (want megabytes)\n",
                 mb_text);
    return 2;
  }
  ArtifactStore store = open_store(root, /*read_only=*/false);
  const std::uint64_t removed = store.prune_to_budget(mb);
  std::printf("evicted %llu artifacts; %zu remain, %.1f MB (budget %.1f MB)\n",
              static_cast<unsigned long long>(removed), store.object_count(),
              store.used_mb(), mb);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: repro-store <command> <root> [args]\n"
      "  ls <root> [--json]     list artifacts, most recently used first\n"
      "  stats <root> [--json]  totals and per-type breakdown\n"
      "  verify <root>          check every artifact; nonzero if corrupt\n"
      "  prune <root> <mb>      LRU-evict down to <mb> megabytes\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const char* root = argv[2];
  const bool json = argc == 4 && std::string(argv[3]) == "--json";
  try {
    if (command == "ls" && (argc == 3 || json)) return cmd_ls(root, json);
    if (command == "stats" && (argc == 3 || json)) return cmd_stats(root, json);
    if (command == "verify" && argc == 3) return cmd_verify(root);
    if (command == "prune" && argc == 4 && !json)
      return cmd_prune(root, argv[3]);
  } catch (const repro::Error& error) {
    std::fprintf(stderr, "repro-store: %s\n", error.what());
    return 1;
  }
  return usage();
}
