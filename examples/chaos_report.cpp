// Degraded-campaign walkthrough: runs the whole measurement pipeline under
// a FaultPlan (REPRO_FAULT env settings when present, FaultPlan::chaos()
// otherwise), prints each stage's health verdict, and compares the headline
// results against a clean run of the same scenario -- the "what do the
// paper's filters actually buy us" demo.
//
// Tracing is on by default (REPRO_TRACE=0 to silence): the run writes
// run_report.json with a populated "fault" section.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyses.h"
#include "fault/fault_plan.h"
#include "fault/stage_health.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace repro;

  if (std::getenv("REPRO_TRACE") == nullptr) obs::set_tracing(true);

  Scenario scenario = Scenario::paper();
  const char* scale = std::getenv("REPRO_SCALE");
  if (scale != nullptr) {
    const std::string value = scale;
    if (value == "tiny") scenario = Scenario::tiny();
    else if (value == "small") scenario = Scenario::small();
  }

  fault::FaultPlan plan = fault::FaultPlan::from_env();
  if (!plan.active()) plan = fault::FaultPlan::chaos();
  std::printf("fault plan: %s\n\n", plan.to_json().c_str());

  std::printf("--- clean run ---\n");
  Pipeline clean(scenario);
  const auto clean_t1 = table1_study(clean);
  const auto clean_f1 = figure1_study(clean);

  std::printf("--- degraded run ---\n");
  Pipeline chaos(scenario, plan);
  const auto chaos_t1 = table1_study(chaos);
  const auto chaos_f1 = figure1_study(chaos);
  chaos.ping_mesh();  // make sure the campaign stage reports health too

  std::printf("\nStage health (degraded run):\n");
  TextTable health_table({"stage", "status", "dropped", "total", "reasons"});
  for (const auto& [stage, health] : chaos.stage_health()) {
    std::string reasons;
    for (const auto& reason : health.reasons) {
      if (!reasons.empty()) reasons += "; ";
      reasons += reason;
    }
    health_table.add_row({stage, std::string(to_string(health.status)),
                          std::to_string(health.dropped),
                          std::to_string(health.total), reasons});
  }
  std::printf("%s\n", health_table.render().c_str());
  std::printf("overall: %s\n\n",
              std::string(to_string(chaos.overall_status())).c_str());

  TextTable drift({"result", "clean", "degraded"});
  drift.set_align(1, Align::kRight);
  drift.set_align(2, Align::kRight);
  drift.add_row({"Table 1: hosting ISPs (2023)",
                 with_commas((long long)clean_t1.total_hosting_isps_2023),
                 with_commas((long long)chaos_t1.total_hosting_isps_2023)});
  drift.add_row({"Table 1: offnet IPs (2023)",
                 with_commas((long long)clean_t1.total_offnet_ips_2023),
                 with_commas((long long)chaos_t1.total_offnet_ips_2023)});
  for (std::size_t i = 0; i < clean_t1.rows.size(); ++i) {
    drift.add_row({"  " + std::string(to_string(clean_t1.rows[i].hg)) +
                       " ISPs (2023)",
                   with_commas((long long)clean_t1.rows[i].isps_2023),
                   with_commas((long long)chaos_t1.rows[i].isps_2023)});
  }
  drift.add_row({"Figure 1: ISPs hosting >= 2 HGs",
                 with_commas((long long)clean_f1.isps_ge2),
                 with_commas((long long)chaos_f1.isps_ge2)});
  std::printf("Headline drift:\n%s\n", drift.render().c_str());

  if (obs::tracing_enabled() && obs::maybe_write_run_report()) {
    std::printf("wrote %s (see its \"fault\" section)\n",
                obs::default_report_path().c_str());
  }
  return 0;
}
