// Quickstart: build a small synthetic Internet, rediscover the planted
// offnet deployments with the TLS-scan methodology, and print the headline
// numbers of the paper (Table 1 style counts, multi-hypergiant hosting, and
// a colocation summary for one ISP).
#include <cstdio>
#include <iostream>

#include "core/analyses.h"
#include "core/pipeline.h"

int main() {
  using namespace repro;

  // A small world keeps this example fast; Scenario::paper() is the full
  // scale the benchmarks use.
  Pipeline pipeline(Scenario::small());

  std::cout << "World: " << pipeline.internet().ases.size() << " ASes, "
            << pipeline.internet().metros.size() << " metros, "
            << pipeline.internet().facilities.size() << " facilities, "
            << pipeline.internet().ixps.size() << " IXPs\n\n";

  // Offnet discovery, 2021 vs 2023 (Table 1).
  std::cout << render(table1_study(pipeline)) << "\n";

  // Multi-hypergiant hosting (the Figure 1 aggregates).
  const Figure1Study figure1 = figure1_study(pipeline);
  std::cout << "ISPs hosting >=2 hypergiants: " << figure1.isps_ge2
            << ", >=3: " << figure1.isps_ge3 << ", all four: " << figure1.isps_eq4
            << "\n\n";

  // Colocation for the largest hosting ISP, at the conservative xi.
  const auto hosting = pipeline.hosting_isps_2023();
  AsIndex biggest = hosting.front();
  for (const AsIndex isp : hosting) {
    if (pipeline.internet().ases[isp].users >
        pipeline.internet().ases[biggest].users) {
      biggest = isp;
    }
  }
  const IspClustering* clustering = pipeline.clustering_of(0.1, biggest);
  std::cout << "Largest hosting ISP: " << pipeline.internet().ases[biggest].name
            << " (" << static_cast<long long>(pipeline.internet().ases[biggest].users)
            << " users)\n";
  if (clustering != nullptr && clustering->usable) {
    std::cout << "  clustered " << clustering->registry_indices.size()
              << " offnet IPs into " << clustering->cluster_count
              << " sites (xi=0.1)\n";
    for (const Hypergiant hg : all_hypergiants()) {
      const HgColocation colocation =
          colocation_of(*clustering, pipeline.registry(Snapshot::k2023), hg);
      if (colocation.total_ips == 0) continue;
      std::printf("  %-8s %3zu IPs, %5.1f%% colocated with another hypergiant\n",
                  std::string(to_string(hg)).c_str(), colocation.total_ips,
                  100.0 * colocation.fraction());
    }
  }
  return 0;
}
