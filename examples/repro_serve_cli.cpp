// repro-serve: the resident report service as a CLI (docs/SERVICE.md).
// Newline-delimited JSON requests in, one-line JSON responses out -- no
// external dependencies, so any shell or script can drive it:
//
//   repro-serve --stdio --store /var/cache/repro
//       daemon over stdin/stdout: one response line per request line,
//       until EOF or a {"query":"shutdown"} request
//   repro-serve --socket /tmp/repro.sock --store /var/cache/repro
//       Unix-socket daemon; connect with e.g. `nc -U /tmp/repro.sock`
//   repro-serve --query '{"query":"table1"}' [--render-out FILE]
//       one-shot: execute a single query, print the response line, and
//       (with --render-out) write the raw render text to FILE -- the
//       byte-identity diffs in scripts/check.sh use exactly this
//
// Options:
//   --store ROOT    artifact store root (default: the REPRO_STORE env
//                   toggles via ArtifactStore::from_env(); no store = no
//                   persistence, warm reuse spans resident pipelines only)
//   --scale NAME    default scale for requests that omit "scale"
//                   (tiny/small/paper/10x; default REPRO_SCALE, else tiny)
//   --workers N     socket-mode handler threads (default: thread-pool
//                   default count)
//
// Exit status: 0 on clean shutdown/EOF; 1 when a one-shot query returns an
// error response or the daemon cannot start; 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "serve/service.h"
#include "store/artifact_store.h"
#include "util/error.h"
#include "util/table.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: repro-serve [--stdio | --socket PATH | --query JSON]\n"
               "                   [--store ROOT] [--scale NAME]\n"
               "                   [--workers N] [--render-out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;

  enum class Mode { kStdio, kSocket, kOneShot };
  Mode mode = Mode::kStdio;
  std::string socket_path;
  std::string query;
  std::string render_out;
  std::string store_root;
  std::string scale_name;
  std::size_t workers = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--stdio") {
      mode = Mode::kStdio;
    } else if (arg == "--socket") {
      const char* value = next();
      if (value == nullptr) return usage();
      mode = Mode::kSocket;
      socket_path = value;
    } else if (arg == "--query") {
      const char* value = next();
      if (value == nullptr) return usage();
      mode = Mode::kOneShot;
      query = value;
    } else if (arg == "--render-out") {
      const char* value = next();
      if (value == nullptr) return usage();
      render_out = value;
    } else if (arg == "--store") {
      const char* value = next();
      if (value == nullptr) return usage();
      store_root = value;
    } else if (arg == "--scale") {
      const char* value = next();
      if (value == nullptr) return usage();
      scale_name = value;
    } else if (arg == "--workers") {
      const char* value = next();
      if (value == nullptr) return usage();
      workers = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "repro-serve: unknown argument '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  try {
    serve::ServiceConfig config;
    if (!store_root.empty()) {
      store::StoreConfig store_config;
      store_config.root = store_root;
      config.artifacts = std::make_shared<store::ArtifactStore>(store_config);
    } else {
      config.artifacts = store::ArtifactStore::from_env();
    }
    config.workers = workers;
    config.default_scale = Scale::kTiny;
    if (scale_name.empty()) {
      if (const char* env = std::getenv("REPRO_SCALE")) scale_name = env;
    }
    if (!scale_name.empty()) {
      const auto parsed = parse_scale(scale_name);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "repro-serve: unknown scale '%s'\n",
                     scale_name.c_str());
        return 2;
      }
      config.default_scale = *parsed;
    }

    serve::ReportService service(std::move(config));

    if (mode == Mode::kOneShot) {
      const serve::QueryResponse response = service.handle_line(query);
      std::printf("%s\n", response.json.c_str());
      if (!render_out.empty()) {
        // Raw render bytes, not the JSON-escaped field: directly diffable
        // against a batch full_report section body.
        write_file(render_out, response.render);
      }
      return response.ok ? 0 : 1;
    }
    if (mode == Mode::kSocket) {
      std::fprintf(stderr, "repro-serve: listening on %s\n",
                   socket_path.c_str());
      service.serve_unix_socket(socket_path);
      return 0;
    }
    service.serve_stream(std::cin, std::cout);
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "repro-serve: %s\n", error.what());
    return 1;
  }
}
