// Peering audit walkthrough (Section 4.2.1): issue traceroutes from inside
// Google's network towards a handful of ISPs, print the hop-by-hop output the
// way a measurement tool would show it, and run the inference that decides
// "peer" / "possible peer" / "no evidence" -- then compare against the
// planted ground truth.
#include <cstdio>

#include "core/pipeline.h"
#include "route/peering_inference.h"

namespace {

using namespace repro;

void print_traceroute(const Internet& net, const IxpRegistry& registry,
                      const Traceroute& trace) {
  int ttl = 1;
  for (const TracerouteHop& hop : trace.hops) {
    if (!hop.ip) {
      std::printf("    %2d  *\n", ttl++);
      continue;
    }
    std::string attribution = "unmapped";
    if (const auto mapping = registry.port_lookup(*hop.ip)) {
      attribution = "IXP port of AS" + std::to_string(mapping->member_asn);
    } else if (registry.is_ixp_lan(*hop.ip)) {
      attribution = "IXP LAN (port unknown)";
    } else if (const auto as = net.as_of_ip(*hop.ip)) {
      attribution = net.ases[*as].name;
    }
    std::printf("    %2d  %-15s  [%s]\n", ttl++, hop.ip->to_string().c_str(),
                attribution.c_str());
  }
}

}  // namespace

int main() {
  Pipeline pipeline(Scenario::small());
  const Internet& net = pipeline.internet();
  const AsIndex google = net.as_by_asn(kGoogleAsn);

  const TracerouteEngine tracer(net, pipeline.scenario().traceroute);
  const IxpRegistry ixp_registry =
      IxpRegistry::build(net, pipeline.scenario().ixp);
  const PeeringStudy study(net, tracer, ixp_registry,
                           pipeline.scenario().peering);

  // Audit a few offnet-hosting ISPs of different sizes.
  const auto& report = pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  std::vector<AsIndex> targets;
  for (const auto& [isp, ips] : report.footprint(Hypergiant::kGoogle).by_isp) {
    (void)ips;
    targets.push_back(isp);
  }
  std::printf("auditing 5 of %zu ISPs hosting Google offnets\n\n",
              targets.size());

  int shown = 0;
  for (const AsIndex target : targets) {
    if (shown >= 5) break;
    ++shown;
    const RoutingTable table = pipeline.routing().routes_to(target);
    const Ipv4 destination = net.ases[target].user_prefixes.front().at(1);
    std::printf("%s (%.0fk users) -> %s\n", net.ases[target].name.c_str(),
                net.ases[target].users / 1e3, destination.to_string().c_str());
    const Traceroute trace = tracer.trace(google, destination, table, shown);
    print_traceroute(net, ixp_registry, trace);

    const auto evidence = study.run(google, {&target, 1}, pipeline.routing());
    const IspPeeringEvidence& result = evidence.at(target);
    std::printf("  inference: %s%s%s   |   ground truth: %s\n\n",
                std::string(to_string(result.status)).c_str(),
                result.seen_via_ixp ? " (via IXP)" : "",
                result.seen_via_pni ? " (via PNI)" : "",
                net.has_peering(target, google) ? "peers with Google"
                                                : "no peering");
  }

  // Aggregate over everything.
  const auto evidence = study.run(google, targets, pipeline.routing());
  std::size_t peer = 0;
  std::size_t possible = 0;
  for (const auto& [isp, result] : evidence) {
    (void)isp;
    if (result.status == PeeringStatus::kPeer) ++peer;
    if (result.status == PeeringStatus::kPossiblePeer) ++possible;
  }
  std::printf("aggregate over %zu offnet ISPs: %.1f%% peer, %.1f%% possible, "
              "%.1f%% no evidence\n",
              targets.size(), 100.0 * peer / targets.size(),
              100.0 * possible / targets.size(),
              100.0 * (targets.size() - peer - possible) / targets.size());
  return 0;
}
