#include "core/analyses.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

class AnalysesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { pipeline_ = new Pipeline(Scenario::tiny()); }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* AnalysesTest::pipeline_ = nullptr;

constexpr double kXis[] = {0.1, 0.9};

TEST_F(AnalysesTest, Table1GrowthSignsMatchPaper) {
  const Table1Study study = table1_study(*pipeline_);
  ASSERT_EQ(study.rows.size(), kHypergiantCount);
  for (const Table1Row& row : study.rows) {
    switch (row.hg) {
      case Hypergiant::kGoogle:
      case Hypergiant::kNetflix:
      case Hypergiant::kMeta:
        EXPECT_GT(row.isps_2023, row.isps_2021) << to_string(row.hg);
        break;
      case Hypergiant::kAkamai:
        // Akamai held flat (modulo scan miss noise).
        EXPECT_NEAR(static_cast<double>(row.isps_2023),
                    static_cast<double>(row.isps_2021),
                    row.isps_2021 * 0.05 + 2.0);
        break;
    }
  }
  EXPECT_GT(study.total_offnet_ips_2023, 0u);
  EXPECT_GT(study.total_hosting_isps_2023, 0u);
}

TEST_F(AnalysesTest, Table1OldMethodologyCollapses) {
  const Table1Study study = table1_study(*pipeline_);
  for (const Table1Row& row : study.rows) {
    if (row.hg == Hypergiant::kGoogle || row.hg == Hypergiant::kMeta) {
      EXPECT_EQ(row.isps_2023_old_method, 0u) << to_string(row.hg);
    } else {
      EXPECT_GT(row.isps_2023_old_method, 0u) << to_string(row.hg);
    }
  }
}

TEST_F(AnalysesTest, Figure1FractionsValid) {
  const Figure1Study study = figure1_study(*pipeline_);
  EXPECT_GE(study.isps_ge1, study.isps_ge2);
  EXPECT_GE(study.isps_ge2, study.isps_ge3);
  EXPECT_GE(study.isps_ge3, study.isps_eq4);
  ASSERT_FALSE(study.countries.empty());
  for (const CountryHostingRow& row : study.countries) {
    EXPECT_GE(row.frac_ge2, row.frac_ge3);
    EXPECT_GE(row.frac_ge3, row.frac_eq4);
    EXPECT_GE(row.frac_eq4, 0.0);
    EXPECT_LE(row.frac_ge2, 1.0);
  }
  // Sorted by users descending.
  for (std::size_t i = 1; i < study.countries.size(); ++i) {
    EXPECT_GE(study.countries[i - 1].users_m, study.countries[i].users_m);
  }
}

TEST_F(AnalysesTest, Table2RowsSumToHundred) {
  const Table2Study study = table2_study(*pipeline_, kXis);
  ASSERT_EQ(study.rows.size(), kHypergiantCount * std::size(kXis));
  for (const Table2Row& row : study.rows) {
    if (row.isp_count == 0) continue;
    const double total = row.sole_pct + row.coloc_0_pct + row.coloc_mid_low_pct +
                         row.coloc_mid_high_pct + row.coloc_full_pct;
    EXPECT_NEAR(total, 100.0, 0.01) << to_string(row.hg) << " xi=" << row.xi;
  }
}

TEST_F(AnalysesTest, Table2CoarseXiShowsMoreColocation) {
  const Table2Study study = table2_study(*pipeline_, kXis);
  for (const Hypergiant hg : all_hypergiants()) {
    double full_fine = -1.0;
    double full_coarse = -1.0;
    for (const Table2Row& row : study.rows) {
      if (row.hg != hg) continue;
      if (row.xi == 0.1) full_fine = row.coloc_full_pct;
      if (row.xi == 0.9) full_coarse = row.coloc_full_pct;
    }
    ASSERT_GE(full_fine, 0.0);
    ASSERT_GE(full_coarse, 0.0);
    EXPECT_GE(full_coarse, full_fine) << to_string(hg);
  }
}

TEST_F(AnalysesTest, Figure2CcdfMonotone) {
  const Figure2Study study = figure2_study(*pipeline_, kXis);
  ASSERT_EQ(study.series.size(), 2u);
  for (const Figure2Series& series : study.series) {
    for (std::size_t i = 1; i < series.ccdf.size(); ++i) {
      EXPECT_GE(series.ccdf[i - 1].fraction, series.ccdf[i].fraction);
    }
    EXPECT_GE(series.users_frac_ge_quarter, 0.0);
    EXPECT_LE(series.users_frac_ge_quarter, 1.0);
    EXPECT_LE(series.users_frac_all_four, series.users_frac_ge_quarter + 1e-9);
  }
  EXPECT_GT(study.users_in_offnet_isps, 0.0);
  EXPECT_LE(study.users_in_offnet_isps, 1.0);
  EXPECT_LE(study.users_analyzable, study.users_in_offnet_isps + 1e-9);
}

TEST_F(AnalysesTest, BestFacilityFractionBounded) {
  const OffnetRegistry& registry = pipeline_->registry(Snapshot::k2023);
  for (const AsIndex isp : pipeline_->hosting_isps_2023()) {
    const IspClustering* clustering = pipeline_->clustering_of(0.9, isp);
    if (clustering == nullptr) continue;
    const double fraction = best_facility_fraction(*clustering, registry);
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 0.52 + 1e-9);
  }
}

TEST_F(AnalysesTest, ValidationStudyImprovesWithCorrections) {
  const ValidationStudy study = validation_study(*pipeline_, 0.1);
  EXPECT_GE(study.with_corrections.consistent_fraction(),
            study.without_corrections.consistent_fraction());
}

TEST_F(AnalysesTest, Section41CovidMatchesPaper) {
  const Section41Study study = section41_study(*pipeline_, kXis);
  EXPECT_NEAR(study.covid.offnet_increase_fraction(), 0.20, 0.01);
  EXPECT_GT(study.covid.interdomain_multiplier(), 2.0);
  ASSERT_EQ(study.single_site.size(), kHypergiantCount);
  for (const SingleSiteRow& row : study.single_site) {
    EXPECT_LE(row.single_site_frac_lo, row.single_site_frac_hi);
    EXPECT_GE(row.single_site_frac_lo, 0.0);
    EXPECT_LE(row.single_site_frac_hi, 1.0);
  }
  EXPECT_EQ(study.diurnal.size(), 24u);
}

TEST_F(AnalysesTest, Section421SharesSumToHundred) {
  const Section421Study study = section421_study(*pipeline_);
  EXPECT_GT(study.offnet_isps, 0u);
  EXPECT_NEAR(study.peer_pct + study.possible_pct + study.no_evidence_pct, 100.0,
              0.01);
  EXPECT_GE(study.via_ixp_pct, study.ixp_only_pct);
  EXPECT_GT(study.total_peers, 0u);
}

TEST_F(AnalysesTest, Section422CoversAllHypergiants) {
  const Section422Study study = section422_study(*pipeline_);
  ASSERT_EQ(study.per_hg.size(), kHypergiantCount);
  for (const PniUtilizationStats& stats : study.per_hg) {
    EXPECT_GT(stats.isps_with_pni, 0u) << to_string(stats.hg);
  }
}

TEST_F(AnalysesTest, Section43StudiesSomething) {
  const Section43Study study = section43_study(*pipeline_, 50);
  EXPECT_GT(study.isps_studied, 0u);
  EXPECT_GE(study.frac_shared_congestion, 0.0);
  EXPECT_LE(study.frac_shared_congestion, 1.0);
  EXPECT_GE(study.mean_interdomain_shift_gbps, 0.0);
}

TEST_F(AnalysesTest, Section33ChokepointsConsistent) {
  const Section33Study study = section33_study(*pipeline_);
  ASSERT_FALSE(study.countries.empty());
  for (const CountryChokepoints& row : study.countries) {
    EXPECT_GE(row.facilities_for_half, 1);
    EXPECT_GE(row.facilities_for_ninety, row.facilities_for_half);
    EXPECT_LE(row.facilities_for_ninety, row.facilities_total);
    EXPECT_GT(row.top_facility_share, 0.0);
    EXPECT_LE(row.top_facility_share, 1.0 + 1e-9);
    // A facility covering the top share bounds how many are needed for 50%.
    if (row.top_facility_share >= 0.5) {
      EXPECT_EQ(row.facilities_for_half, 1);
    }
    EXPECT_GT(row.offnet_served_traffic_share, 0.0);
    EXPECT_LE(row.offnet_served_traffic_share, 0.52 + 1e-9);
  }
  EXPECT_GE(study.median_facilities_for_half, 1.0);
}

TEST_F(AnalysesTest, Section6IsolationTradeoff) {
  const Section6Study study = section6_study(*pipeline_, 60);
  EXPECT_GT(study.isps_studied, 0u);
  // Isolation can only reduce collateral damage...
  EXPECT_LE(study.collateral_isolation, study.collateral_best_effort + 1e-9);
  // ...and can only increase the hypergiants' own degradation.
  EXPECT_GE(study.hg_degraded_isolation_gbps,
            study.hg_degraded_best_effort_gbps - 1e-9);
}

TEST_F(AnalysesTest, RenderersProduceReports) {
  EXPECT_NE(render(table1_study(*pipeline_)).find("Table 1"), std::string::npos);
  EXPECT_NE(render(figure1_study(*pipeline_)).find("Figure 1"), std::string::npos);
  EXPECT_NE(render(table2_study(*pipeline_, kXis)).find("Table 2"),
            std::string::npos);
  EXPECT_NE(render(figure2_study(*pipeline_, kXis)).find("CCDF"),
            std::string::npos);
  EXPECT_NE(render(validation_study(*pipeline_, 0.1)).find("Validation"),
            std::string::npos);
  EXPECT_NE(render(section41_study(*pipeline_, kXis)).find("Section 4.1"),
            std::string::npos);
  EXPECT_NE(render(section421_study(*pipeline_)).find("Section 4.2.1"),
            std::string::npos);
  EXPECT_NE(render(section422_study(*pipeline_)).find("Section 4.2.2"),
            std::string::npos);
  EXPECT_NE(render(section43_study(*pipeline_, 20)).find("Section 4.3"),
            std::string::npos);
  EXPECT_NE(render(section33_study(*pipeline_)).find("choke points"),
            std::string::npos);
  EXPECT_NE(render(section6_study(*pipeline_, 20)).find("isolation"),
            std::string::npos);
}

}  // namespace
}  // namespace repro
