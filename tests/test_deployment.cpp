#include "hypergiant/deployment.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/generator.h"

namespace repro {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    policy_ = new DeploymentPolicy(*net_, config);
    reg_2021_ = new OffnetRegistry(policy_->deploy(Snapshot::k2021));
    reg_2023_ = new OffnetRegistry(policy_->deploy(Snapshot::k2023));
  }
  static void TearDownTestSuite() {
    delete reg_2023_;
    delete reg_2021_;
    delete policy_;
    delete net_;
  }
  static Internet* net_;
  static DeploymentPolicy* policy_;
  static OffnetRegistry* reg_2021_;
  static OffnetRegistry* reg_2023_;
};

Internet* DeploymentTest::net_ = nullptr;
DeploymentPolicy* DeploymentTest::policy_ = nullptr;
OffnetRegistry* DeploymentTest::reg_2021_ = nullptr;
OffnetRegistry* DeploymentTest::reg_2023_ = nullptr;

TEST(HypergiantProfiles, PaperConstants) {
  EXPECT_NEAR(offnet_serveable_traffic_fraction(Hypergiant::kGoogle), 0.168, 1e-9);
  EXPECT_NEAR(offnet_serveable_traffic_fraction(Hypergiant::kNetflix), 0.0855, 1e-9);
  EXPECT_NEAR(offnet_serveable_traffic_fraction(Hypergiant::kMeta), 0.129, 1e-9);
  EXPECT_NEAR(offnet_serveable_traffic_fraction(Hypergiant::kAkamai), 0.13125, 1e-9);
  double total = 0.0;
  for (const Hypergiant hg : all_hypergiants()) {
    total += offnet_serveable_traffic_fraction(hg);
  }
  // A facility hosting all four can serve ~52% of a user's traffic.
  EXPECT_NEAR(total, 0.52, 0.01);
}

TEST(HypergiantProfiles, Table1Targets) {
  EXPECT_EQ(profile(Hypergiant::kGoogle).isps_2021, 3810);
  EXPECT_EQ(profile(Hypergiant::kGoogle).isps_2023, 4697);
  EXPECT_EQ(profile(Hypergiant::kNetflix).isps_2023, 2906);
  EXPECT_EQ(profile(Hypergiant::kMeta).isps_2023, 2588);
  EXPECT_EQ(profile(Hypergiant::kAkamai).isps_2021,
            profile(Hypergiant::kAkamai).isps_2023);
}

TEST_F(DeploymentTest, FootprintsHitScaledTargets) {
  for (const Hypergiant hg : all_hypergiants()) {
    for (const Snapshot snapshot : {Snapshot::k2021, Snapshot::k2023}) {
      const auto target =
          static_cast<std::size_t>(policy_->target_isps(hg, snapshot));
      const auto& registry =
          snapshot == Snapshot::k2021 ? *reg_2021_ : *reg_2023_;
      // Eligible pools are larger than targets in the tiny world.
      EXPECT_EQ(registry.isps_hosting(hg).size(), target)
          << to_string(hg) << " " << to_string(snapshot);
    }
  }
}

TEST_F(DeploymentTest, GrowthIsMonotone) {
  for (const Hypergiant hg : all_hypergiants()) {
    const auto isps_2021 = reg_2021_->isps_hosting(hg);
    const auto isps_2023 = reg_2023_->isps_hosting(hg);
    const std::set<AsIndex> later(isps_2023.begin(), isps_2023.end());
    for (const AsIndex isp : isps_2021) {
      EXPECT_TRUE(later.contains(isp))
          << to_string(hg) << ": 2021 host " << isp << " missing in 2023";
    }
  }
}

TEST_F(DeploymentTest, AkamaiFootprintUnchanged) {
  EXPECT_EQ(reg_2021_->isps_hosting(Hypergiant::kAkamai),
            reg_2023_->isps_hosting(Hypergiant::kAkamai));
}

TEST_F(DeploymentTest, ServersLiveInHostIspSpace) {
  for (const OffnetServer& server : reg_2023_->servers()) {
    const As& isp = net_->ases[server.isp];
    EXPECT_TRUE(isp.infra.pool().contains(server.ip)) << isp.name;
    EXPECT_EQ(net_->as_of_ip(server.ip), server.isp);
  }
}

TEST_F(DeploymentTest, ServerIpsUnique) {
  std::set<Ipv4> seen;
  for (const OffnetServer& server : reg_2023_->servers()) {
    EXPECT_TRUE(seen.insert(server.ip).second)
        << "duplicate " << server.ip.to_string();
  }
}

TEST_F(DeploymentTest, SitesMatchServerFacilities) {
  for (const auto& [key, deployment] : reg_2023_->deployments()) {
    (void)key;
    EXPECT_FALSE(deployment.sites.empty());
    EXPECT_GE(deployment.server_indices.size(), 2u);
    for (const std::size_t si : deployment.server_indices) {
      const OffnetServer& server = reg_2023_->servers()[si];
      EXPECT_NE(std::find(deployment.sites.begin(), deployment.sites.end(),
                          server.facility),
                deployment.sites.end());
      EXPECT_EQ(server.isp, deployment.isp);
      EXPECT_EQ(server.hg, deployment.hg);
    }
  }
}

TEST_F(DeploymentTest, FacilitiesAreHostableByIsp) {
  for (const auto& [key, deployment] : reg_2023_->deployments()) {
    (void)key;
    const As& isp = net_->ases[deployment.isp];
    for (const FacilityIndex fi : deployment.sites) {
      const Facility& facility = net_->facilities[fi];
      // Either a colo in a metro of presence or the ISP's own facility.
      const bool own = facility.owner_asn == isp.asn;
      const bool in_presence_metro =
          std::find(isp.metros.begin(), isp.metros.end(), facility.metro) !=
          isp.metros.end();
      EXPECT_TRUE(own || in_presence_metro) << isp.name;
    }
  }
}

TEST_F(DeploymentTest, RegistryHelpersConsistent) {
  const auto hosting = reg_2023_->hosting_isps();
  EXPECT_FALSE(hosting.empty());
  EXPECT_TRUE(std::is_sorted(hosting.begin(), hosting.end()));
  std::size_t total_servers = 0;
  for (const AsIndex isp : hosting) {
    const auto hgs = reg_2023_->hypergiants_at(isp);
    EXPECT_FALSE(hgs.empty());
    for (const Hypergiant hg : hgs) {
      EXPECT_NE(reg_2023_->find_deployment(isp, hg), nullptr);
    }
    total_servers += reg_2023_->servers_at(isp).size();
  }
  EXPECT_EQ(total_servers, reg_2023_->server_count());
}

TEST_F(DeploymentTest, FacilityMapCoversAllHostedHgs) {
  for (const AsIndex isp : reg_2023_->hosting_isps()) {
    const auto map = reg_2023_->facility_map(isp);
    std::set<Hypergiant> seen;
    for (const auto& [facility, hgs] : map) {
      (void)facility;
      seen.insert(hgs.begin(), hgs.end());
    }
    const auto hosted = reg_2023_->hypergiants_at(isp);
    EXPECT_EQ(seen.size(), hosted.size());
  }
}

TEST_F(DeploymentTest, DeterministicAcrossRuns) {
  const OffnetRegistry again = policy_->deploy(Snapshot::k2023);
  ASSERT_EQ(again.server_count(), reg_2023_->server_count());
  for (std::size_t i = 0; i < again.server_count(); ++i) {
    EXPECT_EQ(again.servers()[i].ip, reg_2023_->servers()[i].ip);
    EXPECT_EQ(again.servers()[i].facility, reg_2023_->servers()[i].facility);
    EXPECT_EQ(again.servers()[i].rack, reg_2023_->servers()[i].rack);
  }
}

TEST_F(DeploymentTest, MostMultiHgIspsColocateSomewhere) {
  // The paper: 81-95% of ISPs hosting multiple hypergiants colocate them.
  std::size_t multi = 0;
  std::size_t colocated = 0;
  for (const AsIndex isp : reg_2023_->hosting_isps()) {
    if (reg_2023_->hypergiants_at(isp).size() < 2) continue;
    ++multi;
    for (const auto& [facility, hgs] : reg_2023_->facility_map(isp)) {
      (void)facility;
      if (hgs.size() >= 2) {
        ++colocated;
        break;
      }
    }
  }
  ASSERT_GT(multi, 10u);
  const double fraction = static_cast<double>(colocated) / multi;
  EXPECT_GE(fraction, 0.75);
  EXPECT_LE(fraction, 1.0);
}

}  // namespace
}  // namespace repro
