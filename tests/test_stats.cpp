#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace repro {
namespace {

TEST(Mean, BasicAndEmpty) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Variance, KnownValues) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(values), 4.0);
  EXPECT_DOUBLE_EQ(stddev(values), 2.0);
}

TEST(Variance, DegenerateInputs) {
  const double one[] = {5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(Median, OddAndEven) {
  const double odd[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_THROW(median({}), Error);
}

TEST(Percentile, EndpointsAndInterpolation) {
  const double values[] = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(values, 12.5), 15.0);  // interpolated
}

TEST(Percentile, Validation) {
  const double values[] = {1.0};
  EXPECT_THROW(percentile(values, -1.0), Error);
  EXPECT_THROW(percentile(values, 101.0), Error);
  EXPECT_THROW(percentile({}, 50.0), Error);
}

TEST(WeightedCcdf, UnweightedBasics) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const auto ccdf = weighted_ccdf(values, {});
  ASSERT_EQ(ccdf.size(), 4u);
  EXPECT_DOUBLE_EQ(ccdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(ccdf.front().fraction, 1.0);
  EXPECT_DOUBLE_EQ(ccdf.back().x, 4.0);
  EXPECT_DOUBLE_EQ(ccdf.back().fraction, 0.25);
}

TEST(WeightedCcdf, MonotoneNonIncreasing) {
  const double values[] = {5.0, 1.0, 3.0, 3.0, 2.0, 8.0};
  const auto ccdf = weighted_ccdf(values, {});
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i - 1].x, ccdf[i].x);
    EXPECT_GE(ccdf[i - 1].fraction, ccdf[i].fraction);
  }
}

TEST(WeightedCcdf, WeightsShiftMass) {
  const double values[] = {1.0, 10.0};
  const double weights[] = {1.0, 3.0};
  const auto ccdf = weighted_ccdf(values, weights);
  ASSERT_EQ(ccdf.size(), 2u);
  EXPECT_DOUBLE_EQ(ccdf[1].fraction, 0.75);
}

TEST(WeightedCcdf, DuplicateValuesCollapse) {
  const double values[] = {2.0, 2.0, 2.0};
  const auto ccdf = weighted_ccdf(values, {});
  ASSERT_EQ(ccdf.size(), 1u);
  EXPECT_DOUBLE_EQ(ccdf[0].fraction, 1.0);
}

TEST(WeightedCcdf, Validation) {
  const double values[] = {1.0, 2.0};
  const double bad_size[] = {1.0};
  EXPECT_THROW(weighted_ccdf(values, bad_size), Error);
  const double negative[] = {1.0, -1.0};
  EXPECT_THROW(weighted_ccdf(values, negative), Error);
  EXPECT_TRUE(weighted_ccdf({}, {}).empty());
}

TEST(CcdfAt, EvaluatesBetweenPoints) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const auto ccdf = weighted_ccdf(values, {});
  EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 0.5), 1.0);   // everything >= 0.5
  EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 2.0), 0.75);  // 2,3,4
  EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 2.5), 0.5);   // 3,4
  EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 9.0), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);
  hist.add(9.5);
  hist.add(-3.0);   // clamps into first bucket
  hist.add(100.0);  // clamps into last bucket
  EXPECT_DOUBLE_EQ(hist.count(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.count(4), 2.0);
  EXPECT_DOUBLE_EQ(hist.total(), 4.0);
  EXPECT_DOUBLE_EQ(hist.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(hist.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bucket_high(1), 4.0);
}

TEST(Histogram, WeightsAndValidation) {
  Histogram hist(0.0, 1.0, 2);
  hist.add(0.25, 3.0);
  EXPECT_DOUBLE_EQ(hist.count(0), 3.0);
  EXPECT_THROW(Histogram(1.0, 0.0, 2), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(hist.count(5), Error);
}

TEST(RunningStats, MatchesBatchComputation) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (const double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), mean(values));
  EXPECT_NEAR(stats.variance(), variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

}  // namespace
}  // namespace repro
