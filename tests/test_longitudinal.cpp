#include "core/analyses.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

class LongitudinalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { pipeline_ = new Pipeline(Scenario::tiny()); }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* LongitudinalTest::pipeline_ = nullptr;

TEST_F(LongitudinalTest, YearTargetsAnchorOnTable1) {
  const DeploymentPolicy policy(pipeline_->internet(),
                                pipeline_->scenario().deployment);
  for (const Hypergiant hg : all_hypergiants()) {
    EXPECT_EQ(policy.target_isps_for_year(hg, 2021),
              policy.target_isps(hg, Snapshot::k2021))
        << to_string(hg);
    EXPECT_EQ(policy.target_isps_for_year(hg, 2023),
              policy.target_isps(hg, Snapshot::k2023))
        << to_string(hg);
  }
}

TEST_F(LongitudinalTest, AkamaiFlatOthersGrow) {
  const DeploymentPolicy policy(pipeline_->internet(),
                                pipeline_->scenario().deployment);
  for (int year = 2017; year <= 2025; ++year) {
    EXPECT_EQ(policy.target_isps_for_year(Hypergiant::kAkamai, year),
              policy.target_isps_for_year(Hypergiant::kAkamai, year - 1));
    for (const Hypergiant hg :
         {Hypergiant::kGoogle, Hypergiant::kNetflix, Hypergiant::kMeta}) {
      EXPECT_GE(policy.target_isps_for_year(hg, year),
                policy.target_isps_for_year(hg, year - 1))
          << to_string(hg) << " " << year;
    }
  }
}

TEST_F(LongitudinalTest, FootprintsMonotoneOverYears) {
  const DeploymentPolicy policy(pipeline_->internet(),
                                pipeline_->scenario().deployment);
  for (const Hypergiant hg : all_hypergiants()) {
    const auto earlier = policy.footprint_for_year(hg, 2018);
    const auto later = policy.footprint_for_year(hg, 2024);
    ASSERT_LE(earlier.size(), later.size());
    // Adoption order is stable, so earlier is a prefix of later.
    for (std::size_t i = 0; i < earlier.size(); ++i) {
      EXPECT_EQ(earlier[i], later[i]) << to_string(hg);
    }
  }
}

TEST_F(LongitudinalTest, DeployForYearMatchesSnapshots) {
  const DeploymentPolicy policy(pipeline_->internet(),
                                pipeline_->scenario().deployment);
  const OffnetRegistry by_year = policy.deploy_for_year(2023);
  const OffnetRegistry by_snapshot = policy.deploy(Snapshot::k2023);
  ASSERT_EQ(by_year.server_count(), by_snapshot.server_count());
  for (std::size_t i = 0; i < by_year.server_count(); ++i) {
    EXPECT_EQ(by_year.servers()[i].ip, by_snapshot.servers()[i].ip);
  }
}

TEST_F(LongitudinalTest, CohostingIncreasesMonotonically) {
  const LongitudinalStudy study = longitudinal_study(*pipeline_, 2016, 2025);
  ASSERT_EQ(study.rows.size(), 10u);
  for (std::size_t i = 1; i < study.rows.size(); ++i) {
    EXPECT_GE(study.rows[i].isps_ge2, study.rows[i - 1].isps_ge2);
    EXPECT_GE(study.rows[i].isps_ge3, study.rows[i - 1].isps_ge3);
    EXPECT_GE(study.rows[i].isps_eq4, study.rows[i - 1].isps_eq4);
    EXPECT_GE(study.rows[i].mean_hypergiants_per_hosting_isp,
              study.rows[i - 1].mean_hypergiants_per_hosting_isp - 1e-9);
  }
}

TEST_F(LongitudinalTest, RowInternalConsistency) {
  const LongitudinalStudy study = longitudinal_study(*pipeline_, 2020, 2023);
  for (const LongitudinalRow& row : study.rows) {
    EXPECT_GE(row.hosting_isps, row.isps_ge2);
    EXPECT_GE(row.isps_ge2, row.isps_ge3);
    EXPECT_GE(row.isps_ge3, row.isps_eq4);
    EXPECT_GE(row.mean_hypergiants_per_hosting_isp, 1.0);
    EXPECT_LE(row.mean_hypergiants_per_hosting_isp, 4.0);
    std::size_t max_single = 0;
    for (const std::size_t count : row.isps_per_hg) {
      max_single = std::max(max_single, count);
    }
    EXPECT_GE(row.hosting_isps, max_single);
  }
}

TEST_F(LongitudinalTest, RenderShowsAllYears) {
  const std::string out = render(longitudinal_study(*pipeline_, 2019, 2021));
  EXPECT_NE(out.find("2019"), std::string::npos);
  EXPECT_NE(out.find("2021"), std::string::npos);
}

}  // namespace
}  // namespace repro
