#include "traffic/capacity.h"

#include <gtest/gtest.h>

#include <set>

#include <cmath>

#include "topology/generator.h"

namespace repro {
namespace {

class CapacityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    demand_ = new DemandModel(*net_);
    capacity_ = new CapacityModel(*net_, *registry_, *demand_, CapacityConfig{});
  }
  static void TearDownTestSuite() {
    delete capacity_;
    delete demand_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static DemandModel* demand_;
  static CapacityModel* capacity_;
};

Internet* CapacityTest::net_ = nullptr;
OffnetRegistry* CapacityTest::registry_ = nullptr;
DemandModel* CapacityTest::demand_ = nullptr;
CapacityModel* CapacityTest::capacity_ = nullptr;

TEST_F(CapacityTest, ZeroWithoutDeployment) {
  for (const AsIndex isp : net_->access_isps()) {
    for (const Hypergiant hg : all_hypergiants()) {
      if (registry_->find_deployment(isp, hg) == nullptr) {
        EXPECT_DOUBLE_EQ(capacity_->offnet_capacity_gbps(isp, hg), 0.0);
        return;
      }
    }
  }
  GTEST_SKIP() << "every ISP hosts every hypergiant?";
}

TEST_F(CapacityTest, PositiveAndNearCacheableForDeployments) {
  int checked = 0;
  for (const auto& [key, deployment] : registry_->deployments()) {
    (void)deployment;
    const auto [isp, hg] = key;
    const double capacity = capacity_->offnet_capacity_gbps(isp, hg);
    const double cacheable = demand_->hypergiant_peak_demand_gbps(isp, hg) *
                             profile(hg).cache_efficiency;
    EXPECT_GT(capacity, 0.0);
    // Headroom median 1.2, sigma 0.12: stay within a loose band.
    EXPECT_GT(capacity, cacheable * 0.7);
    EXPECT_LT(capacity, cacheable * 2.2);
    if (++checked > 100) break;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(CapacityTest, SiteCapacitiesSumToDeploymentCapacity) {
  int checked = 0;
  for (const auto& [key, deployment] : registry_->deployments()) {
    const auto [isp, hg] = key;
    double site_total = 0.0;
    std::set<FacilityIndex> sites(deployment.sites.begin(),
                                  deployment.sites.end());
    for (const FacilityIndex site : sites) {
      site_total += capacity_->site_capacity_gbps(isp, hg, site);
    }
    EXPECT_NEAR(site_total, capacity_->offnet_capacity_gbps(isp, hg),
                1e-9 * std::max(1.0, site_total));
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(CapacityTest, SiteCapacityZeroForForeignFacility) {
  const auto& [key, deployment] = *registry_->deployments().begin();
  const auto [isp, hg] = key;
  // A facility not hosting this deployment contributes nothing.
  FacilityIndex foreign = 0;
  while (std::find(deployment.sites.begin(), deployment.sites.end(), foreign) !=
         deployment.sites.end()) {
    ++foreign;
  }
  EXPECT_DOUBLE_EQ(capacity_->site_capacity_gbps(isp, hg, foreign), 0.0);
}

TEST_F(CapacityTest, InterdomainCapacityMatchesLinks) {
  const AsIndex google = net_->as_by_asn(kGoogleAsn);
  for (const AsIndex isp : net_->access_isps()) {
    const InterdomainCapacity inter =
        capacity_->interdomain_capacity(isp, Hypergiant::kGoogle);
    double pni = 0.0;
    double ixp = 0.0;
    for (const LinkIndex li : net_->ases[isp].peer_links) {
      const InterdomainLink& link = net_->links[li];
      const AsIndex other = link.a == isp ? link.b : link.a;
      if (other != google) continue;
      if (link.kind == LinkKind::kPrivatePeering) pni += link.capacity_gbps;
      if (link.kind == LinkKind::kIxpPeering) ixp += link.capacity_gbps;
    }
    EXPECT_DOUBLE_EQ(inter.pni_gbps, pni);
    EXPECT_DOUBLE_EQ(inter.ixp_gbps, ixp);
    EXPECT_DOUBLE_EQ(inter.transit_gbps, capacity_->total_transit_gbps(isp));
  }
}

TEST_F(CapacityTest, TransitCapacityPositiveForAccess) {
  for (const AsIndex isp : net_->access_isps()) {
    EXPECT_GT(capacity_->total_transit_gbps(isp), 0.0);
  }
}

TEST_F(CapacityTest, Deterministic) {
  const CapacityModel again(*net_, *registry_, *demand_, CapacityConfig{});
  const auto& [key, deployment] = *registry_->deployments().begin();
  (void)deployment;
  const auto [isp, hg] = key;
  EXPECT_DOUBLE_EQ(again.offnet_capacity_gbps(isp, hg),
                   capacity_->offnet_capacity_gbps(isp, hg));
}

}  // namespace
}  // namespace repro
