// The scale fence (docs/SCALING.md): every way of spreading the clustering
// stage across processes or memory substrates is bit-identical to the plain
// single-process, in-memory pipeline.
//
//   * k-shard compute+merge (k in {1, 2, 4, 7}) == single process, for a
//     clean plan and for chaos(): clusterings, StageHealth, Table 1/2
//     renders, and every run-report domain counter.
//   * Shard-count invariance holds with the shared store warm or cold.
//   * The streamed matrix substrate (spill to .mmx, mmap back,
//     block-streamed pairwise distances) produces the same pipeline run as
//     the in-memory substrate, for any block height.
//
// Workers here run in-process (fresh ArtifactStore handle per worker over
// one shared root, metrics reset between phases) -- the same store-mediated
// protocol the forked repro-shard processes use, minus the fork; the real
// multi-process path is exercised by scripts/check.sh's shard tier.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/colocation.h"
#include "core/analyses.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "store/artifact_store.h"
#include "util/table.h"

namespace repro {
namespace {

namespace fs = std::filesystem;

class ScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID-unique so concurrent invocations of this suite (e.g. two CI jobs
    // on one host) can never tear down each other's stores mid-test.
    root_ = fs::temp_directory_path() /
            ("repro-scale-" + std::to_string(::getpid()) + "-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override {
    obs::metrics().reset();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  /// Fresh store handle over a per-k subdirectory (cold) or a shared one
  /// (warm reruns) -- one handle per Pipeline, like one per process.
  std::shared_ptr<store::ArtifactStore> open_store(const std::string& sub) {
    store::StoreConfig config;
    config.root = (root_ / sub).string();
    return std::make_shared<store::ArtifactStore>(config);
  }

  fs::path root_;
};

/// Domain counters only: store.* and pipeline.* describe the transport
/// (hits, spills, shard bookkeeping), which legitimately differs between
/// process layouts; everything else must not.
std::map<std::string, std::uint64_t> domain_counters() {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (name.rfind("store.", 0) == 0 || name.rfind("pipeline.", 0) == 0) {
      continue;
    }
    out[name] = value;
  }
  return out;
}

struct PipelineRun {
  std::vector<IspClustering> xi01;
  std::vector<IspClustering> xi09;
  std::map<std::string, fault::StageHealth> health;
  std::map<std::string, std::uint64_t> counters;
  std::string table1;
  std::string table2;
};

PipelineRun collect(const Pipeline& pipeline) {
  PipelineRun run;
  run.xi01 = pipeline.clusterings(0.1);
  run.xi09 = pipeline.clusterings(0.9);
  run.health = pipeline.stage_health();
  run.table1 = render(table1_study(pipeline));
  const double xis[] = {0.1, 0.9};
  run.table2 = render(table2_study(pipeline, xis));
  run.counters = domain_counters();
  return run;
}

void expect_identical(const IspClustering& a, const IspClustering& b,
                      const std::string& context) {
  EXPECT_EQ(a.isp, b.isp) << context;
  EXPECT_EQ(a.usable, b.usable) << context;
  EXPECT_EQ(a.registry_indices, b.registry_indices) << context;
  EXPECT_EQ(a.labels, b.labels) << context;
  EXPECT_EQ(a.cluster_count, b.cluster_count) << context;
  EXPECT_EQ(a.dropped_unresponsive, b.dropped_unresponsive) << context;
  EXPECT_EQ(a.dropped_impossible, b.dropped_impossible) << context;
  EXPECT_EQ(a.usable_sites, b.usable_sites) << context;
}

void expect_identical_outputs(const PipelineRun& a, const PipelineRun& b,
                              const std::string& context) {
  ASSERT_EQ(a.xi01.size(), b.xi01.size()) << context;
  ASSERT_EQ(a.xi09.size(), b.xi09.size()) << context;
  for (std::size_t i = 0; i < a.xi01.size(); ++i) {
    expect_identical(a.xi01[i], b.xi01[i],
                     context + " xi=0.1 #" + std::to_string(i));
  }
  for (std::size_t i = 0; i < a.xi09.size(); ++i) {
    expect_identical(a.xi09[i], b.xi09[i],
                     context + " xi=0.9 #" + std::to_string(i));
  }
  ASSERT_EQ(a.health.size(), b.health.size()) << context;
  for (const auto& [stage, health] : a.health) {
    ASSERT_TRUE(b.health.count(stage)) << context << " stage " << stage;
    const fault::StageHealth& other = b.health.at(stage);
    EXPECT_EQ(health.status, other.status) << context << " " << stage;
    EXPECT_EQ(health.dropped, other.dropped) << context << " " << stage;
    EXPECT_EQ(health.total, other.total) << context << " " << stage;
    EXPECT_EQ(health.reasons, other.reasons) << context << " " << stage;
  }
  EXPECT_EQ(a.table1, b.table1) << context;
  EXPECT_EQ(a.table2, b.table2) << context;
}

void expect_identical_runs(const PipelineRun& a, const PipelineRun& b,
                           const std::string& context) {
  expect_identical_outputs(a, b, context);
  EXPECT_EQ(a.counters, b.counters) << context;
}

class ShardModeTest : public ScaleTest {
 protected:
  /// Single-process baseline over `sub`. A throwaway pipeline first
  /// publishes the shared stage artifacts (topology, population, scan) so
  /// the measured run is warm for those stages and cold only for
  /// clustering -- the exact stage temperature of a shard-mode parent,
  /// whose workers published the same artifacts. Without this the baseline
  /// would carry stage counters (scan.*, tls.*) no shard parent ever sees.
  PipelineRun run_single(const fault::FaultPlan& plan, const std::string& sub) {
    {
      Pipeline prewarm(Scenario::tiny(), plan, open_store(sub));
      prewarm.hosting_isps_2023();
    }
    obs::metrics().reset();
    Pipeline pipeline(Scenario::tiny(), plan, open_store(sub));
    return collect(pipeline);
  }

  /// k workers then a merging parent, each with its own Pipeline and store
  /// handle over the shared root; metrics are reset per phase so each
  /// in-process "process" sees its own registry, like real processes do.
  PipelineRun run_sharded(std::size_t shards, const fault::FaultPlan& plan,
                  const std::string& sub) {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      obs::metrics().reset();
      Pipeline worker(Scenario::tiny(), plan, open_store(sub));
      worker.compute_clustering_shard(shard, shards, 0.1);
    }
    obs::metrics().reset();
    Pipeline parent(Scenario::tiny(), plan, open_store(sub));
    parent.merge_clustering_shards(shards, 0.1);
    return collect(parent);
  }
};

TEST_F(ShardModeTest, ShardOfIsDeterministicAndCoversRange) {
  const std::uint64_t digest = measurement_digest(Scenario::tiny());
  std::set<std::size_t> seen;
  for (AsIndex isp = 0; isp < 1000; ++isp) {
    const std::size_t shard = Pipeline::shard_of(digest, isp, 7);
    EXPECT_LT(shard, 7u);
    EXPECT_EQ(shard, Pipeline::shard_of(digest, isp, 7)) << "unstable";
    seen.insert(shard);
  }
  // A 7-way split of 1000 ISPs that leaves shards empty would mean the
  // partition is degenerate, not just unlucky.
  EXPECT_EQ(seen.size(), 7u);
  // Different measurement digests shuffle the assignment (the partition is
  // keyed, not positional), and shard_count<=1 collapses to shard 0.
  EXPECT_EQ(Pipeline::shard_of(digest, 3, 1), 0u);
  EXPECT_EQ(Pipeline::shard_of(digest, 3, 0), 0u);
  bool any_differs = false;
  for (AsIndex isp = 0; isp < 1000 && !any_differs; ++isp) {
    any_differs = Pipeline::shard_of(digest, isp, 7) !=
                  Pipeline::shard_of(digest + 1, isp, 7);
  }
  EXPECT_TRUE(any_differs);
}

TEST_F(ShardModeTest, CleanShardCountsBitIdenticalToSingle) {
  const fault::FaultPlan clean = fault::FaultPlan::none();
  const PipelineRun single = run_single(clean, "single");
  ASSERT_FALSE(single.xi01.empty());
  for (const std::size_t k : {1u, 2u, 4u, 7u}) {
    const PipelineRun sharded = run_sharded(k, clean, "k" + std::to_string(k));
    expect_identical_runs(single, sharded,
                          "clean k=" + std::to_string(k));
  }
}

TEST_F(ShardModeTest, ChaosShardCountsBitIdenticalToSingle) {
  // Under chaos() the fault injections (and the store's own corruption
  // chaos, deterministic per filename) land identically no matter which
  // process clusters which ISP.
  const fault::FaultPlan plan = fault::FaultPlan::chaos();
  const PipelineRun single = run_single(plan, "single");
  ASSERT_FALSE(single.xi01.empty());
  for (const std::size_t k : {1u, 2u, 4u, 7u}) {
    const PipelineRun sharded = run_sharded(k, plan, "k" + std::to_string(k));
    expect_identical_runs(single, sharded,
                          "chaos k=" + std::to_string(k));
  }
}

TEST_F(ShardModeTest, WarmStoreShardCountInvariance) {
  // One shared root: the k=4 pass computes everything cold; the k=2 and
  // k=7 reruns find the matrices (and stage artifacts) warm. Warm reruns
  // must agree with each other on every fence dimension, and with the cold
  // run on outputs -- counters legitimately lose the measurement-stage
  // entries once matrices come from disk instead of being measured.
  const fault::FaultPlan clean = fault::FaultPlan::none();
  const PipelineRun cold = run_sharded(4, clean, "shared");
  const PipelineRun warm2 = run_sharded(2, clean, "shared");
  const PipelineRun warm7 = run_sharded(7, clean, "shared");
  expect_identical_runs(warm2, warm7, "warm k=2 vs warm k=7");
  expect_identical_outputs(cold, warm2, "cold k=4 vs warm k=2");
}

using StreamedSubstrateTest = ScaleTest;

TEST_F(StreamedSubstrateTest, StreamedPipelineBitIdenticalToInMemory) {
  // The streamed substrate spills each per-ISP matrix to an .mmx file,
  // maps it back, and block-streams the pairwise pass; every output and
  // domain counter must match the in-memory run, at any block height
  // (1 = degenerate single-row blocks, 3 = partial tail, 0 = whole
  // matrix in one block).
  obs::metrics().reset();
  Pipeline inmem(Scenario::tiny());
  const PipelineRun baseline = collect(inmem);
  ASSERT_FALSE(baseline.xi01.empty());

  for (const std::size_t block_rows : {std::size_t{1}, std::size_t{3},
                                       std::size_t{0}}) {
    obs::metrics().reset();
    Scenario scenario = Scenario::tiny();
    scenario.stream_matrices = true;
    scenario.stream_block_rows = block_rows;
    Pipeline streamed(scenario);
    expect_identical_runs(baseline, collect(streamed),
                          "block_rows=" + std::to_string(block_rows));
  }
}

TEST_F(StreamedSubstrateTest, StreamedSpillsPersistUnderStore) {
  // With a writable store attached the spill directory lives under the
  // store root and survives the pipeline; the rerun reuses the .mmx files
  // (no respill) and still matches bit-exactly.
  Scenario scenario = Scenario::tiny();
  scenario.stream_matrices = true;

  obs::metrics().reset();
  Pipeline first(scenario, fault::FaultPlan::none(), open_store("store"));
  const PipelineRun cold = collect(first);
  const fs::path stream_dir = root_ / "store" / "stream";
  ASSERT_TRUE(fs::exists(stream_dir));
  std::size_t spills = 0;
  for (const auto& entry : fs::directory_iterator(stream_dir)) {
    if (entry.path().extension() == ".mmx") ++spills;
  }
  EXPECT_GT(spills, 0u);

  // Drop the clustering artifacts so the rerun actually re-clusters -- now
  // reading the persisted spills instead of measuring and respilling.
  for (const auto& entry : fs::directory_iterator(root_ / "store")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("clustering-v", 0) == 0) fs::remove(entry.path());
  }

  obs::metrics().reset();
  Pipeline second(scenario, fault::FaultPlan::none(), open_store("store"));
  const PipelineRun warm = collect(second);
  // A warm run reports health only for the stages it actually replayed, so
  // compare the result surfaces: clusterings and the rendered tables.
  ASSERT_EQ(warm.xi01.size(), cold.xi01.size());
  for (std::size_t i = 0; i < cold.xi01.size(); ++i) {
    expect_identical(warm.xi01[i], cold.xi01[i],
                     "streamed warm xi=0.1 #" + std::to_string(i));
  }
  for (std::size_t i = 0; i < cold.xi09.size(); ++i) {
    expect_identical(warm.xi09[i], cold.xi09[i],
                     "streamed warm xi=0.9 #" + std::to_string(i));
  }
  EXPECT_EQ(warm.table1, cold.table1);
  EXPECT_EQ(warm.table2, cold.table2);
}

}  // namespace
}  // namespace repro
