#include "util/table.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/error.h"

namespace repro {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"name", "count"});
  table.add_row({"alpha", "10"});
  table.add_row({"b", "2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(TextTable, RejectsWideRows) {
  TextTable table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, AlignmentRightPadsLeft) {
  TextTable table({"h", "v"});
  table.add_row({"x", "1"});
  table.add_row({"yy", "22"});
  const std::string out = table.render();
  // Right-aligned numeric column: " 1" appears (padded on the left).
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(TextTable, SetAlignValidation) {
  TextTable table({"a"});
  EXPECT_THROW(table.set_align(1, Align::kLeft), Error);
  EXPECT_NO_THROW(table.set_align(0, Align::kLeft));
}

TEST(TextTable, CsvEscaping) {
  TextTable table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  table.add_row({"plain", "line1\nline2"});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TextTable, CsvHeaderFirstLine) {
  TextTable table({"x", "y"});
  const std::string csv = table.render_csv();
  EXPECT_EQ(csv.substr(0, 4), "x,y\n");
}

TEST(WriteFile, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "repro_table_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "deep" / "out.csv";
  write_file(path.string(), "hello");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace repro
