// The persistent artifact store's contract (ctest -L store):
//   * serde round trips are lossless for every artifact family, including
//     NaN markers and exact double bit patterns (randomized property tests);
//   * corruption -- truncation, bit flips, stale schema versions, type
//     mismatches -- is detected at load time and reported as kCorrupt, and
//     the pipeline responds by recomputing with a degraded StageHealth,
//     never by crashing or serving garbage;
//   * a warm start is bit-identical to a cold (storeless) run, clean and
//     under a chaos fault plan;
//   * the disk budget is enforced with LRU eviction that survives process
//     restarts via file mtimes;
//   * concurrent loads and saves are data-race free (the clustering fan-out
//     hits the store from pool workers; TSan tier of scripts/check.sh).
#include "store/artifact_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "store/matrix_file.h"
#include "store/serde.h"
#include "topology/generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro {
namespace {

namespace fs = std::filesystem;

/// Fresh store root per test, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The PID keeps concurrent runs of this binary (e.g. a sanitizer build
    // alongside the plain one) from sharing roots and racing remove_all.
    root_ = fs::temp_directory_path() /
            ("repro-store-test-" + std::to_string(::getpid()) + "-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override {
    fs::remove_all(root_);
    set_default_thread_count(0);
  }

  store::StoreConfig config(double budget_mb = 0.0,
                            bool read_only = false) const {
    store::StoreConfig config;
    config.root = root_.string();
    config.budget_mb = budget_mb;
    config.read_only = read_only;
    return config;
  }

  fs::path root_;
};

// --- randomized serde round trips -----------------------------------------

std::string random_name(Rng& rng) {
  static const char* kParts[] = {"edge", "cdn", "static", "media", "www",
                                 "example", "net", "org", "com", "io"};
  std::string out;
  const int parts = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < parts; ++i) {
    if (i > 0) out += '.';
    out += kParts[rng.uniform_int(0, 9)];
  }
  if (rng.chance(0.2)) out = "*." + out;
  return out;
}

TlsCertificate random_cert(Rng& rng) {
  TlsCertificate cert;
  cert.subject.common_name = random_name(rng);
  if (rng.chance(0.7)) cert.subject.organization = random_name(rng);
  cert.subject.country = rng.chance(0.5) ? "US" : "DE";
  cert.issuer.common_name = random_name(rng);
  cert.issuer.organization = random_name(rng);
  const int sans = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < sans; ++i) cert.san_dns.push_back(random_name(rng));
  cert.not_before_year = static_cast<int>(rng.uniform_int(2015, 2023));
  cert.not_after_year = cert.not_before_year + 2;
  cert.serial = rng.next();
  return cert;
}

TEST_F(StoreTest, ScanRecordsRoundTripRandomized) {
  Rng rng(20230707);
  for (int round = 0; round < 20; ++round) {
    std::vector<ScanRecord> records;
    const int count = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < count; ++i) {
      ScanRecord record;
      record.ip = Ipv4(static_cast<std::uint32_t>(rng.next()));
      record.cert = random_cert(rng);
      records.push_back(std::move(record));
    }
    store::ByteWriter writer;
    store::encode(writer, records);
    store::ByteReader reader(writer.bytes());
    const std::vector<ScanRecord> decoded = store::decode_scan_records(reader);
    EXPECT_TRUE(reader.exhausted());
    ASSERT_EQ(decoded.size(), records.size()) << "round " << round;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(decoded[i].ip, records[i].ip);
      EXPECT_EQ(decoded[i].cert, records[i].cert);
    }
  }
}

TEST_F(StoreTest, PopulationRoundTripRandomized) {
  Rng rng(424242);
  for (int round = 0; round < 10; ++round) {
    CertStore population;
    const int count = static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < count; ++i) {
      population.install(Ipv4(static_cast<std::uint32_t>(rng.next())),
                         random_cert(rng));
    }
    store::ByteWriter writer;
    store::encode(writer, population);
    store::ByteReader reader(writer.bytes());
    const CertStore decoded = store::decode_population(reader);
    EXPECT_TRUE(reader.exhausted());
    ASSERT_EQ(decoded.size(), population.size()) << "round " << round;
    for (const TlsEndpoint& endpoint : population.all_sorted()) {
      const auto cert = decoded.lookup(endpoint.ip);
      ASSERT_TRUE(cert.has_value());
      EXPECT_EQ(*cert, endpoint.cert);
    }
  }
}

TEST_F(StoreTest, LatencyMatrixRoundTripPreservesEveryBit) {
  Rng rng(1611);
  for (int round = 0; round < 10; ++round) {
    LatencyMatrix matrix;
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(0, 12));
    matrix.vp_count = static_cast<std::size_t>(rng.uniform_int(0, 8));
    for (std::size_t i = 0; i < rows; ++i) {
      matrix.ips.push_back(Ipv4(static_cast<std::uint32_t>(rng.next())));
      matrix.server_indices.push_back(rng.next() % 100000);
    }
    for (std::size_t i = 0; i < rows * matrix.vp_count; ++i) {
      // Mix plain RTTs, NaN failure markers, infinities and denormals: the
      // wire format must preserve the exact bit pattern of each.
      const int kind = static_cast<int>(rng.uniform_int(0, 3));
      double value = rng.uniform(0.1, 300.0);
      if (kind == 1) value = std::numeric_limits<double>::quiet_NaN();
      if (kind == 2) value = std::numeric_limits<double>::infinity();
      if (kind == 3) value = std::numeric_limits<double>::denorm_min();
      matrix.rtt.push_back(value);
    }
    store::ByteWriter writer;
    store::encode(writer, matrix);
    store::ByteReader reader(writer.bytes());
    const LatencyMatrix decoded = store::decode_latency_matrix(reader);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(decoded.ips, matrix.ips);
    EXPECT_EQ(decoded.server_indices, matrix.server_indices);
    EXPECT_EQ(decoded.vp_count, matrix.vp_count);
    ASSERT_EQ(decoded.rtt.size(), matrix.rtt.size());
    for (std::size_t i = 0; i < matrix.rtt.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.rtt[i]),
                std::bit_cast<std::uint64_t>(matrix.rtt[i]))
          << "cell " << i;
    }
  }
}

TEST_F(StoreTest, ClusteringsAndHealthRoundTripRandomized) {
  Rng rng(90210);
  for (int round = 0; round < 10; ++round) {
    std::vector<IspClustering> clusterings;
    const int count = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < count; ++i) {
      IspClustering clustering;
      clustering.isp = static_cast<AsIndex>(rng.next());
      clustering.usable = rng.chance(0.8);
      const int ips = static_cast<int>(rng.uniform_int(0, 30));
      for (int j = 0; j < ips; ++j) {
        clustering.registry_indices.push_back(rng.next() % 100000);
        clustering.labels.push_back(
            static_cast<int>(rng.uniform_int(-1, 5)));
      }
      clustering.cluster_count = static_cast<int>(rng.uniform_int(0, 6));
      clustering.dropped_unresponsive = rng.next() % 1000;
      clustering.dropped_impossible = rng.next() % 1000;
      clustering.usable_sites = rng.next() % 200;
      clusterings.push_back(std::move(clustering));
    }
    fault::StageHealth health;
    health.status = static_cast<fault::StageStatus>(rng.uniform_int(0, 2));
    health.dropped = rng.next() % 500;
    health.total = health.dropped + rng.next() % 500;
    const int reasons = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < reasons; ++i) health.reasons.push_back(random_name(rng));

    store::ByteWriter writer;
    store::encode(writer, health);
    store::encode(writer, clusterings);
    store::ByteReader reader(writer.bytes());
    const fault::StageHealth decoded_health = store::decode_stage_health(reader);
    const std::vector<IspClustering> decoded = store::decode_clusterings(reader);
    EXPECT_TRUE(reader.exhausted());

    EXPECT_EQ(decoded_health.status, health.status);
    EXPECT_EQ(decoded_health.dropped, health.dropped);
    EXPECT_EQ(decoded_health.total, health.total);
    EXPECT_EQ(decoded_health.reasons, health.reasons);
    ASSERT_EQ(decoded.size(), clusterings.size());
    for (std::size_t i = 0; i < clusterings.size(); ++i) {
      EXPECT_EQ(decoded[i].isp, clusterings[i].isp);
      EXPECT_EQ(decoded[i].usable, clusterings[i].usable);
      EXPECT_EQ(decoded[i].registry_indices, clusterings[i].registry_indices);
      EXPECT_EQ(decoded[i].labels, clusterings[i].labels);
      EXPECT_EQ(decoded[i].cluster_count, clusterings[i].cluster_count);
      EXPECT_EQ(decoded[i].dropped_unresponsive,
                clusterings[i].dropped_unresponsive);
      EXPECT_EQ(decoded[i].dropped_impossible,
                clusterings[i].dropped_impossible);
      EXPECT_EQ(decoded[i].usable_sites, clusterings[i].usable_sites);
    }
  }
}

TEST_F(StoreTest, InternetRoundTripIsStructurallyIdentical) {
  const Internet original =
      InternetGenerator(GeneratorConfig::tiny()).generate();
  store::ByteWriter writer;
  store::encode(writer, original);
  store::ByteReader reader(writer.bytes());
  const Internet decoded = store::decode_internet(reader);
  EXPECT_TRUE(reader.exhausted());

  // Re-encode equality covers every encoded field at once: the encoding is
  // deterministic, so a lossless decode must reproduce the exact bytes.
  store::ByteWriter again;
  store::encode(again, decoded);
  ASSERT_EQ(writer.bytes(), again.bytes());

  // Spot-check the state the wire format carries only *indirectly*:
  // adjacency lists (rebuilt by replaying add_link), allocator positions,
  // the ASN index and the IP->AS trie.
  ASSERT_EQ(decoded.ases.size(), original.ases.size());
  for (std::size_t i = 0; i < original.ases.size(); ++i) {
    const As& a = original.ases[i];
    const As& b = decoded.ases[i];
    EXPECT_EQ(b.asn, a.asn);
    EXPECT_EQ(b.provider_links, a.provider_links);
    EXPECT_EQ(b.customer_links, a.customer_links);
    EXPECT_EQ(b.peer_links, a.peer_links);
    EXPECT_EQ(b.infra.pool(), a.infra.pool());
    EXPECT_EQ(b.infra.next_offset(), a.infra.next_offset());
    EXPECT_EQ(b.infra.remaining(), a.infra.remaining());
    EXPECT_EQ(decoded.as_by_asn(a.asn), original.as_by_asn(a.asn));
  }
  for (const As& as : original.ases) {
    for (const Prefix& prefix : as.user_prefixes) {
      EXPECT_EQ(decoded.as_of_ip(prefix.first()),
                original.as_of_ip(prefix.first()));
    }
  }
  ASSERT_EQ(decoded.ixps.size(), original.ixps.size());
  for (const auto& [address, info] : original.ixp_ports()) {
    const auto port = decoded.ixp_port_of_ip(address);
    ASSERT_TRUE(port.has_value());
    EXPECT_EQ(port->ixp, info.ixp);
    EXPECT_EQ(port->member, info.member);
  }
  EXPECT_EQ(decoded.access_isps(), original.access_isps());
  EXPECT_EQ(decoded.total_access_users(), original.total_access_users());
}

TEST_F(StoreTest, PipelineSharesWarmTopologyAcrossMeasurementConfigs) {
  // The Internet artifact is keyed by topology_digest alone: a scenario
  // differing only in measurement settings must still warm-hit it.
  Scenario scenario = Scenario::tiny();
  auto cold_store = std::make_shared<store::ArtifactStore>(config());
  Pipeline cold(scenario, fault::FaultPlan::none(), cold_store);
  EXPECT_GT(cold_store->stats().saved, 0u);

  Scenario other = scenario;
  other.vantage_seed += 1;  // different world digest, same topology
  ASSERT_NE(measurement_digest(other), measurement_digest(scenario));
  ASSERT_EQ(topology_digest(other.topology), topology_digest(scenario.topology));

  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  Pipeline warm(other, fault::FaultPlan::none(), warm_store);
  EXPECT_GE(warm_store->stats().hits, 1u);
  EXPECT_EQ(warm_store->stats().corrupt, 0u);
  // Same topology bytes on both sides.
  store::ByteWriter cold_bytes, warm_bytes;
  store::encode(cold_bytes, cold.internet());
  store::encode(warm_bytes, warm.internet());
  EXPECT_EQ(cold_bytes.bytes(), warm_bytes.bytes());
}

TEST_F(StoreTest, TruncatedInputThrowsSerdeErrorAtEveryLength) {
  Rng rng(777);
  std::vector<ScanRecord> records;
  for (int i = 0; i < 3; ++i) {
    ScanRecord record;
    record.ip = Ipv4(static_cast<std::uint32_t>(rng.next()));
    record.cert = random_cert(rng);
    records.push_back(std::move(record));
  }
  store::ByteWriter writer;
  store::encode(writer, records);
  const std::vector<std::uint8_t>& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    store::ByteReader reader(prefix);
    // Either the decode notices mid-way (SerdeError) or a length prefix
    // happens to terminate early -- it must never read out of bounds, and
    // it must never return the full input from a strict prefix.
    try {
      const auto decoded = store::decode_scan_records(reader);
      EXPECT_LT(decoded.size(), records.size()) << "cut " << cut;
    } catch (const store::SerdeError&) {
      // expected for most cut points
    }
  }
}

TEST_F(StoreTest, ImplausibleElementCountRejectedBeforeAllocating) {
  store::ByteWriter writer;
  writer.u64(std::numeric_limits<std::uint64_t>::max());  // records "count"
  store::ByteReader reader(writer.bytes());
  EXPECT_THROW(store::decode_scan_records(reader), store::SerdeError);
}

// --- artifact store basics -------------------------------------------------

store::ArtifactKey test_key(const char* type, std::uint32_t schema,
                            std::uint64_t salt) {
  return store::ArtifactKey{
      type, schema,
      store::Fnv1a().mix(std::string_view(type)).mix(schema).mix(salt).digest()};
}

std::vector<std::uint8_t> test_payload(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

TEST_F(StoreTest, SaveThenLoadRoundTrips) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("scan", 1, 1);
  EXPECT_FALSE(artifacts.load(key).hit());  // cold miss

  const std::vector<std::uint8_t> payload = test_payload(1000, 0xab);
  EXPECT_TRUE(artifacts.save(key, payload));
  const store::LoadResult result = artifacts.load(key);
  EXPECT_TRUE(result.hit());
  EXPECT_EQ(result.payload, payload);

  EXPECT_EQ(artifacts.stats().misses, 1u);
  EXPECT_EQ(artifacts.stats().saved, 1u);
  EXPECT_EQ(artifacts.stats().hits, 1u);
  EXPECT_EQ(artifacts.object_count(), 1u);
  EXPECT_TRUE(fs::exists(root_ / key.filename()));
  EXPECT_EQ(key.filename().find("scan-v1-"), 0u);
}

TEST_F(StoreTest, PersistsAcrossInstances) {
  const store::ArtifactKey key = test_key("population", 1, 7);
  const std::vector<std::uint8_t> payload = test_payload(512, 0x5a);
  {
    store::ArtifactStore first(config());
    EXPECT_TRUE(first.save(key, payload));
  }
  store::ArtifactStore second(config());
  EXPECT_EQ(second.object_count(), 1u);
  const store::LoadResult result = second.load(key);
  EXPECT_TRUE(result.hit());
  EXPECT_EQ(result.payload, payload);
}

TEST_F(StoreTest, FromEnvHonorsToggles) {
  ASSERT_EQ(::unsetenv("REPRO_STORE"), 0);
  EXPECT_EQ(store::ArtifactStore::from_env(), nullptr);

  ASSERT_EQ(::setenv("REPRO_STORE", root_.string().c_str(), 1), 0);
  ASSERT_EQ(::setenv("REPRO_STORE_READONLY", "1", 1), 0);
  ASSERT_EQ(::setenv("REPRO_STORE_BUDGET_MB", "12.5", 1), 0);
  const std::shared_ptr<store::ArtifactStore> artifacts =
      store::ArtifactStore::from_env();
  ASSERT_NE(artifacts, nullptr);
  EXPECT_EQ(artifacts->config().root, root_.string());
  EXPECT_TRUE(artifacts->config().read_only);
  EXPECT_DOUBLE_EQ(artifacts->config().budget_mb, 12.5);
  ASSERT_EQ(::unsetenv("REPRO_STORE"), 0);
  ASSERT_EQ(::unsetenv("REPRO_STORE_READONLY"), 0);
  ASSERT_EQ(::unsetenv("REPRO_STORE_BUDGET_MB"), 0);
}

TEST_F(StoreTest, KeyParseInvertsFilename) {
  const store::ArtifactKey keys[] = {
      test_key("scan", 1, 1), test_key("clustering", 2, 0),
      {"multi-word-type", 12, 0xfedcba9876543210ULL}};
  for (const store::ArtifactKey& key : keys) {
    const std::optional<store::ArtifactKey> parsed =
        store::ArtifactKey::parse(key.filename());
    ASSERT_TRUE(parsed.has_value()) << key.filename();
    EXPECT_EQ(parsed->type, key.type);
    EXPECT_EQ(parsed->schema, key.schema);
    EXPECT_EQ(parsed->digest, key.digest);
    EXPECT_EQ(parsed->filename(), key.filename());
  }
  for (const char* stray :
       {"", "x.bin", "scan-v1-00ff.bin", "scan-v1-00112233445566zz.bin",
        "scan-v1-00112233445566AA.bin", "-v1-0011223344556677.bin",
        "scanv1-0011223344556677.bin", "scan-v-0011223344556677.bin",
        ".tmp-1-scan-v1-0011223344556677.bin", "scan-v1-0011223344556677"}) {
    EXPECT_FALSE(store::ArtifactKey::parse(stray).has_value()) << stray;
  }
}

TEST_F(StoreTest, ListReportsMostRecentlyUsedFirst) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey a = test_key("scan", 1, 1);
  const store::ArtifactKey b = test_key("matrix", 1, 2);
  ASSERT_TRUE(artifacts.save(a, test_payload(100, 0x11)));
  ASSERT_TRUE(artifacts.save(b, test_payload(200, 0x22)));
  ASSERT_TRUE(artifacts.load(a).hit());  // refreshes a's recency past b's

  const std::vector<store::ArtifactInfo> listed = artifacts.list();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].filename, a.filename());
  EXPECT_EQ(listed[1].filename, b.filename());
  EXPECT_EQ(listed[0].key.type, "scan");
  EXPECT_GT(listed[0].bytes, 100u);  // container header + checksum overhead
}

TEST_F(StoreTest, PruneToBudgetEvictsLeastRecentlyUsed) {
  store::ArtifactStore artifacts(config());  // no configured budget
  const store::ArtifactKey old_key = test_key("scan", 1, 1);
  const store::ArtifactKey fresh = test_key("scan", 1, 2);
  ASSERT_TRUE(artifacts.save(old_key, test_payload(600000, 0x01)));
  ASSERT_TRUE(artifacts.save(fresh, test_payload(600000, 0x02)));

  EXPECT_EQ(artifacts.prune_to_budget(10.0), 0u);  // already under budget
  EXPECT_EQ(artifacts.prune_to_budget(1.0), 1u);
  EXPECT_FALSE(fs::exists(root_ / old_key.filename()));
  EXPECT_TRUE(fs::exists(root_ / fresh.filename()));
  EXPECT_EQ(artifacts.prune_to_budget(0.0), 1u);  // <= 0 empties the store
  EXPECT_EQ(artifacts.object_count(), 0u);

  store::ArtifactStore read_only(config(0.0, /*read_only=*/true));
  EXPECT_EQ(read_only.prune_to_budget(0.0), 0u);
}

// --- corruption corpus -----------------------------------------------------

void corrupt_file(const fs::path& path, std::size_t offset,
                  std::uint8_t xor_mask) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ xor_mask);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST_F(StoreTest, TruncatedFileIsCorruptThenQuarantined) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("scan", 1, 2);
  ASSERT_TRUE(artifacts.save(key, test_payload(4096, 0x11)));

  fs::resize_file(root_ / key.filename(), 100);
  const store::LoadResult result = artifacts.load(key);
  EXPECT_TRUE(result.corrupt());
  EXPECT_FALSE(result.detail.empty());
  // Quarantined by deletion: next load is a clean miss, not corrupt again.
  EXPECT_FALSE(fs::exists(root_ / key.filename()));
  EXPECT_FALSE(artifacts.load(key).hit());
  EXPECT_EQ(artifacts.stats().corrupt, 1u);
  EXPECT_EQ(artifacts.stats().misses, 1u);
}

TEST_F(StoreTest, FlippedPayloadByteFailsChecksum) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("matrix", 1, 3);
  ASSERT_TRUE(artifacts.save(key, test_payload(2048, 0x42)));

  const std::uint64_t size = fs::file_size(root_ / key.filename());
  corrupt_file(root_ / key.filename(), size / 2, 0x01);
  const store::LoadResult result = artifacts.load(key);
  EXPECT_TRUE(result.corrupt());
  EXPECT_NE(result.detail.find("checksum"), std::string::npos) << result.detail;
}

TEST_F(StoreTest, FlippedHeaderByteFailsMagic) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("clustering", 1, 4);
  ASSERT_TRUE(artifacts.save(key, test_payload(64, 0x99)));
  corrupt_file(root_ / key.filename(), 0, 0xff);
  EXPECT_TRUE(artifacts.load(key).corrupt());
}

TEST_F(StoreTest, StaleSchemaVersionIsCorruptNotServed) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey old_key = test_key("scan", 1, 5);
  ASSERT_TRUE(artifacts.save(old_key, test_payload(128, 0x21)));

  // Simulate a leftover v1 file sitting where a v2 reader looks (e.g. a
  // hand-renamed or mangled store): the header schema must be checked, not
  // just the filename.
  store::ArtifactKey new_key = old_key;
  new_key.schema = 2;
  fs::rename(root_ / old_key.filename(), root_ / new_key.filename());
  const store::LoadResult result = artifacts.load(new_key);
  EXPECT_TRUE(result.corrupt());
  EXPECT_NE(result.detail.find("stale schema"), std::string::npos)
      << result.detail;
}

TEST_F(StoreTest, TypeMismatchIsCorruptNotServed) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey scan_key = test_key("scan", 1, 6);
  ASSERT_TRUE(artifacts.save(scan_key, test_payload(128, 0x22)));
  store::ArtifactKey population_key = scan_key;
  population_key.type = "population";
  fs::rename(root_ / scan_key.filename(),
             root_ / population_key.filename());
  const store::LoadResult result = artifacts.load(population_key);
  EXPECT_TRUE(result.corrupt());
  EXPECT_NE(result.detail.find("type mismatch"), std::string::npos)
      << result.detail;
}

TEST_F(StoreTest, ReadOnlyStoreNeverWritesNorDeletes) {
  const store::ArtifactKey key = test_key("scan", 1, 8);
  {
    store::ArtifactStore writable(config());
    ASSERT_TRUE(writable.save(key, test_payload(256, 0x77)));
  }
  store::StoreConfig ro = config();
  ro.read_only = true;
  store::ArtifactStore artifacts(ro);
  EXPECT_TRUE(artifacts.load(key).hit());
  EXPECT_FALSE(artifacts.save(test_key("scan", 1, 9), test_payload(16, 0)));
  EXPECT_EQ(artifacts.stats().saved, 0u);

  // A corrupt artifact is reported but NOT quarantined in read-only mode.
  corrupt_file(root_ / key.filename(), fs::file_size(root_ / key.filename()) - 1,
               0x01);
  EXPECT_TRUE(artifacts.load(key).corrupt());
  EXPECT_TRUE(fs::exists(root_ / key.filename()));
}

// --- LRU disk budget -------------------------------------------------------

TEST_F(StoreTest, BudgetEvictsLeastRecentlyUsed) {
  // ~1100 bytes per artifact (header + payload + checksum); budget of
  // 0.004 MB = 4000 bytes holds three.
  store::ArtifactStore artifacts(config(0.004));
  const store::ArtifactKey a = test_key("scan", 1, 10);
  const store::ArtifactKey b = test_key("scan", 1, 11);
  const store::ArtifactKey c = test_key("scan", 1, 12);
  const store::ArtifactKey d = test_key("scan", 1, 13);
  ASSERT_TRUE(artifacts.save(a, test_payload(1000, 1)));
  ASSERT_TRUE(artifacts.save(b, test_payload(1000, 2)));
  ASSERT_TRUE(artifacts.save(c, test_payload(1000, 3)));
  EXPECT_EQ(artifacts.object_count(), 3u);

  // Touch `a` so `b` becomes the LRU victim when `d` arrives.
  EXPECT_TRUE(artifacts.load(a).hit());
  ASSERT_TRUE(artifacts.save(d, test_payload(1000, 4)));

  EXPECT_EQ(artifacts.stats().evicted, 1u);
  EXPECT_EQ(artifacts.object_count(), 3u);
  EXPECT_TRUE(artifacts.load(a).hit());
  EXPECT_FALSE(artifacts.load(b).hit()) << "LRU victim must be b";
  EXPECT_TRUE(artifacts.load(c).hit());
  EXPECT_TRUE(artifacts.load(d).hit());
  EXPECT_LE(artifacts.used_mb(), 0.004);
}

TEST_F(StoreTest, OversizedPayloadRefusedWithoutFlushingStore) {
  store::ArtifactStore artifacts(config(0.004));
  const store::ArtifactKey small = test_key("scan", 1, 14);
  ASSERT_TRUE(artifacts.save(small, test_payload(1000, 1)));
  // A payload that alone exceeds the budget must be refused up front, not
  // evict everything else first.
  EXPECT_FALSE(artifacts.save(test_key("scan", 1, 15), test_payload(8000, 2)));
  EXPECT_TRUE(artifacts.load(small).hit());
  EXPECT_EQ(artifacts.stats().evicted, 0u);
}

TEST_F(StoreTest, ConcurrentLoadsAndSavesAreSafe) {
  store::ArtifactStore artifacts(config(0.02));
  constexpr std::size_t kOps = 200;
  parallel_for(
      kOps,
      [&](std::size_t i) {
        const store::ArtifactKey key = test_key("matrix", 1, i % 16);
        if (i % 3 == 0) {
          artifacts.save(key, test_payload(500 + i % 7, static_cast<std::uint8_t>(i)));
        } else {
          const store::LoadResult result = artifacts.load(key);
          if (result.hit()) EXPECT_GE(result.payload.size(), 500u);
          EXPECT_FALSE(result.corrupt());
        }
      },
      8);
  const store::StoreStats stats = artifacts.stats();
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_GT(stats.saved, 0u);
}

// --- warm start == cold start (the tentpole contract) ----------------------

void expect_identical(const IspClustering& a, const IspClustering& b,
                      const std::string& context) {
  EXPECT_EQ(a.isp, b.isp) << context;
  EXPECT_EQ(a.usable, b.usable) << context;
  EXPECT_EQ(a.registry_indices, b.registry_indices) << context;
  EXPECT_EQ(a.labels, b.labels) << context;
  EXPECT_EQ(a.cluster_count, b.cluster_count) << context;
  EXPECT_EQ(a.dropped_unresponsive, b.dropped_unresponsive) << context;
  EXPECT_EQ(a.dropped_impossible, b.dropped_impossible) << context;
  EXPECT_EQ(a.usable_sites, b.usable_sites) << context;
}

struct PipelineOutputs {
  std::vector<ScanRecord> scan;
  std::vector<IspClustering> xi01;
  std::vector<IspClustering> xi09;
  std::map<std::string, fault::StageHealth> health;
};

PipelineOutputs run_pipeline(const fault::FaultPlan& plan,
                             std::shared_ptr<store::ArtifactStore> artifacts) {
  Pipeline pipeline(Scenario::tiny(), plan, std::move(artifacts));
  PipelineOutputs out;
  out.scan = pipeline.scan_records(Snapshot::k2023);
  out.xi01 = pipeline.clusterings(0.1);
  out.xi09 = pipeline.clusterings(0.9);
  out.health = pipeline.stage_health();
  return out;
}

void expect_identical_outputs(const PipelineOutputs& cold,
                              const PipelineOutputs& warm,
                              const std::string& context) {
  ASSERT_EQ(warm.scan.size(), cold.scan.size()) << context;
  for (std::size_t i = 0; i < cold.scan.size(); ++i) {
    ASSERT_EQ(warm.scan[i].ip, cold.scan[i].ip) << context << " record " << i;
    ASSERT_EQ(warm.scan[i].cert, cold.scan[i].cert) << context << " record " << i;
  }
  ASSERT_EQ(warm.xi01.size(), cold.xi01.size()) << context;
  ASSERT_EQ(warm.xi09.size(), cold.xi09.size()) << context;
  for (std::size_t i = 0; i < cold.xi01.size(); ++i) {
    expect_identical(warm.xi01[i], cold.xi01[i],
                     context + " xi=0.1 #" + std::to_string(i));
  }
  for (std::size_t i = 0; i < cold.xi09.size(); ++i) {
    expect_identical(warm.xi09[i], cold.xi09[i],
                     context + " xi=0.9 #" + std::to_string(i));
  }
}

TEST_F(StoreTest, WarmStartBitIdenticalClean) {
  obs::metrics().reset();
  const fault::FaultPlan plan = fault::FaultPlan::none();
  // Reference: no store at all (the pre-persistence pipeline).
  const PipelineOutputs reference = run_pipeline(plan, nullptr);

  auto artifacts = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs cold = run_pipeline(plan, artifacts);
  expect_identical_outputs(reference, cold, "cold-with-store vs storeless");
  EXPECT_GT(artifacts->stats().saved, 0u);

  // Fresh pipeline, same store root: everything heavy comes from disk.
  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs warm = run_pipeline(plan, warm_store);
  expect_identical_outputs(reference, warm, "warm vs storeless");
  EXPECT_GT(warm_store->stats().hits, 0u);
  EXPECT_EQ(warm_store->stats().corrupt, 0u);
  // The warm clustering stage reports the health verdict the cold run earned.
  ASSERT_TRUE(warm.health.count("clustering"));
  EXPECT_EQ(warm.health.at("clustering").status,
            cold.health.at("clustering").status);
}

TEST_F(StoreTest, WarmStartBitIdenticalUnderChaos) {
  obs::metrics().reset();
  const fault::FaultPlan plan = fault::FaultPlan::chaos().scaled_by(0.5);
  const PipelineOutputs reference = run_pipeline(plan, nullptr);

  auto artifacts = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs cold = run_pipeline(plan, artifacts);
  expect_identical_outputs(reference, cold, "chaos cold vs storeless");

  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs warm = run_pipeline(plan, warm_store);
  expect_identical_outputs(reference, warm, "chaos warm vs storeless");
  EXPECT_GT(warm_store->stats().hits, 0u);
  // Degraded verdicts ride along with the artifacts.
  ASSERT_TRUE(warm.health.count("scan"));
  EXPECT_EQ(warm.health.at("scan").status, cold.health.at("scan").status);
  EXPECT_EQ(warm.health.at("scan").dropped, cold.health.at("scan").dropped);
  EXPECT_EQ(warm.health.at("scan").reasons, cold.health.at("scan").reasons);
}

TEST_F(StoreTest, DifferentFaultPlansNeverShareArtifacts) {
  const fault::FaultPlan clean = fault::FaultPlan::none();
  const fault::FaultPlan chaos = fault::FaultPlan::chaos().scaled_by(0.5);
  auto artifacts = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs clean_cold = run_pipeline(clean, artifacts);

  // A chaos run over the same store must MISS every measurement artifact
  // (its world digest differs) and reproduce the storeless chaos outputs.
  // The one legitimate hit is the Internet artifact: topology generation is
  // independent of the fault plan, so it is keyed by the topology digest
  // alone and shared on purpose.
  auto chaos_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs chaos_warm = run_pipeline(chaos, chaos_store);
  EXPECT_EQ(chaos_store->stats().hits, 1u);
  const PipelineOutputs chaos_reference = run_pipeline(chaos, nullptr);
  expect_identical_outputs(chaos_reference, chaos_warm,
                           "chaos over clean-populated store");
  (void)clean_cold;
}

TEST_F(StoreTest, CorruptArtifactRecomputedWithDegradedHealth) {
  obs::metrics().reset();
  const fault::FaultPlan plan = fault::FaultPlan::none();
  const PipelineOutputs reference = run_pipeline(plan, nullptr);
  {
    auto artifacts = std::make_shared<store::ArtifactStore>(config());
    run_pipeline(plan, artifacts);
  }

  // Flip one byte in the scan artifact's payload region.
  bool corrupted = false;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("scan-v1-")) {
      corrupt_file(entry.path(), fs::file_size(entry.path()) / 2, 0x80);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "no scan artifact found to corrupt";

  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  Pipeline pipeline(Scenario::tiny(), plan, warm_store);
  PipelineOutputs warm;
  warm.scan = pipeline.scan_records(Snapshot::k2023);
  warm.xi01 = pipeline.clusterings(0.1);
  warm.xi09 = pipeline.clusterings(0.9);
  warm.health = pipeline.stage_health();

  // The output is recomputed and correct...
  expect_identical_outputs(reference, warm, "recompute after corruption");
  EXPECT_EQ(warm_store->stats().corrupt, 1u);
  // ...but the run is flagged degraded, with the store named as the cause.
  EXPECT_EQ(pipeline.overall_status(), fault::StageStatus::kDegraded);
  ASSERT_TRUE(warm.health.count("scan"));
  bool noted = false;
  for (const std::string& reason : warm.health.at("scan").reasons) {
    if (reason.find("store:") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "degraded reason must name the store";

  // The corrupt file was quarantined and republished: a third run hits.
  auto healed_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs healed = run_pipeline(plan, healed_store);
  expect_identical_outputs(reference, healed, "healed store");
  EXPECT_EQ(healed_store->stats().corrupt, 0u);
  EXPECT_GT(healed_store->stats().hits, 0u);
}

TEST_F(StoreTest, CorruptMatrixArtifactDegradesClusteringOnly) {
  const fault::FaultPlan plan = fault::FaultPlan::none();
  const PipelineOutputs reference = run_pipeline(plan, nullptr);
  {
    auto artifacts = std::make_shared<store::ArtifactStore>(config());
    run_pipeline(plan, artifacts);
  }

  // Corrupt one per-ISP matrix and delete the clustering artifacts so the
  // clustering stage recomputes and actually consults the matrices.
  bool corrupted = false;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (!corrupted && name.starts_with("matrix-v1-")) {
      corrupt_file(entry.path(), fs::file_size(entry.path()) - 3, 0x40);
      corrupted = true;
    }
    if (name.starts_with("clustering-v")) fs::remove(entry.path());
  }
  ASSERT_TRUE(corrupted) << "no matrix artifact found to corrupt";

  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  Pipeline pipeline(Scenario::tiny(), plan, warm_store);
  PipelineOutputs warm;
  warm.scan = pipeline.scan_records(Snapshot::k2023);
  warm.xi01 = pipeline.clusterings(0.1);
  warm.xi09 = pipeline.clusterings(0.9);
  warm.health = pipeline.stage_health();

  expect_identical_outputs(reference, warm, "recompute after matrix corruption");
  EXPECT_EQ(warm_store->stats().corrupt, 1u);
  ASSERT_TRUE(warm.health.count("clustering"));
  EXPECT_EQ(warm.health.at("clustering").status, fault::StageStatus::kDegraded);
}

TEST_F(StoreTest, ReadOnlyWarmStartHitsWithoutWriting) {
  const fault::FaultPlan plan = fault::FaultPlan::none();
  {
    auto artifacts = std::make_shared<store::ArtifactStore>(config());
    run_pipeline(plan, artifacts);
  }
  const std::size_t files_before =
      static_cast<std::size_t>(std::distance(fs::directory_iterator(root_),
                                             fs::directory_iterator()));

  store::StoreConfig ro = config();
  ro.read_only = true;
  auto ro_store = std::make_shared<store::ArtifactStore>(ro);
  const PipelineOutputs warm = run_pipeline(plan, ro_store);
  const PipelineOutputs reference = run_pipeline(plan, nullptr);
  expect_identical_outputs(reference, warm, "read-only warm");
  EXPECT_GT(ro_store->stats().hits, 0u);
  EXPECT_EQ(ro_store->stats().saved, 0u);
  const std::size_t files_after =
      static_cast<std::size_t>(std::distance(fs::directory_iterator(root_),
                                             fs::directory_iterator()));
  EXPECT_EQ(files_after, files_before);
}

TEST_F(StoreTest, InMemoryCacheCountersDistinctFromStoreHits) {
  obs::metrics().reset();
  Pipeline pipeline(Scenario::tiny(), fault::FaultPlan::none(), nullptr);
  pipeline.scan_records(Snapshot::k2023);  // computes (and builds population)
  pipeline.scan_records(Snapshot::k2023);  // memo hit
  pipeline.population(Snapshot::k2023);    // memo hit (built during the scan)
  std::uint64_t scan_hits = 0, population_hits = 0, store_hits = 0;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (name == "pipeline.scan_cache_hit") scan_hits = value;
    if (name == "pipeline.population_cache_hit") population_hits = value;
    if (name == "store.hit") store_hits = value;
  }
  EXPECT_GE(scan_hits, 1u);
  EXPECT_GE(population_hits, 1u);
  EXPECT_EQ(store_hits, 0u) << "no store attached: store.hit must stay 0";
}

// --- live store chaos + single-flight fetch --------------------------------

TEST_F(StoreTest, ChaosGarblesAtMostOncePerArtifact) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("scan", 1, 33);
  ASSERT_TRUE(artifacts.save(key, test_payload(4096, 0x22)));

  store::StoreChaos chaos;
  chaos.seed = 7;
  chaos.corrupt_rate = 1.0;  // every artifact selected
  artifacts.set_chaos(chaos);

  // First load takes the injected corruption (and quarantines the file).
  const store::LoadResult first = artifacts.load(key);
  EXPECT_TRUE(first.corrupt());
  EXPECT_EQ(artifacts.stats().chaos_injected, 1u);

  // Republishing heals it for good: the one-shot ledger keeps even a
  // rate-1.0 chaos from touching the same filename twice.
  ASSERT_TRUE(artifacts.save(key, test_payload(4096, 0x22)));
  const store::LoadResult second = artifacts.load(key);
  EXPECT_TRUE(second.hit());
  EXPECT_EQ(artifacts.stats().chaos_injected, 1u);

  // Disarming stops injection for artifacts not yet selected.
  artifacts.set_chaos(store::StoreChaos{});
  const store::ArtifactKey other = test_key("scan", 1, 34);
  ASSERT_TRUE(artifacts.save(other, test_payload(512, 0x01)));
  EXPECT_TRUE(artifacts.load(other).hit());
  EXPECT_EQ(artifacts.stats().chaos_injected, 1u);
}

TEST_F(StoreTest, ChaosInjectionDeterministicPerSeedAndFilename) {
  // Two stores over identical contents and knobs corrupt the same subset.
  const auto victims = [&](const fs::path& root) {
    store::StoreConfig cfg;
    cfg.root = root.string();
    store::ArtifactStore artifacts(cfg);
    for (std::uint64_t i = 0; i < 16; ++i) {
      artifacts.save(test_key("scan", 1, i), test_payload(1024, 0x33));
    }
    store::StoreChaos chaos;
    chaos.seed = 4242;
    chaos.corrupt_rate = 0.5;
    artifacts.set_chaos(chaos);
    std::vector<std::uint64_t> corrupted;
    for (std::uint64_t i = 0; i < 16; ++i) {
      if (artifacts.load(test_key("scan", 1, i)).corrupt()) {
        corrupted.push_back(i);
      }
    }
    return corrupted;
  };
  const auto a = victims(root_ / "a");
  const auto b = victims(root_ / "b");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), 16u);  // rate 0.5: some survive, some do not
}

TEST_F(StoreTest, LoadOrComputeSingleFlightUnderConcurrentReaders) {
  obs::metrics().reset();
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("matrix", 1, 5);
  ASSERT_TRUE(artifacts.save(key, test_payload(2048, 0x44)));

  // Garble the artifact while concurrent warm readers race for it: the
  // fetch must heal it with exactly one recompute, not one per reader.
  store::StoreChaos chaos;
  chaos.seed = 11;
  chaos.corrupt_rate = 1.0;
  artifacts.set_chaos(chaos);

  constexpr std::size_t kReaders = 8;  // >= 4 per the robustness contract
  std::atomic<std::uint64_t> computes{0};
  std::vector<store::FetchResult> results(kReaders);
  parallel_for(
      kReaders,
      [&](std::size_t i) {
        results[i] = artifacts.load_or_compute(key, [&]() {
          computes.fetch_add(1, std::memory_order_relaxed);
          return test_payload(2048, 0x44);
        });
      },
      kReaders);

  for (std::size_t i = 0; i < kReaders; ++i) {
    ASSERT_TRUE(results[i].load.hit()) << "reader " << i;
    EXPECT_EQ(results[i].load.payload, test_payload(2048, 0x44));
  }
  // At most one recompute per corrupted artifact.
  EXPECT_EQ(computes.load(), 1u);
  std::size_t computed_flags = 0;
  bool recovered = false;
  for (const store::FetchResult& result : results) {
    if (result.computed) ++computed_flags;
    recovered |= result.recovered_corrupt;
  }
  EXPECT_EQ(computed_flags, 1u);
  EXPECT_TRUE(recovered) << "someone must observe the pre-heal corruption";
  const store::StoreStats stats = artifacts.stats();
  EXPECT_EQ(stats.chaos_injected, 1u);
  EXPECT_EQ(stats.recomputed, 1u);
  // The healed artifact stays healed: a later fetch is a plain hit.
  const store::FetchResult again = artifacts.load_or_compute(key, [&]() {
    computes.fetch_add(1, std::memory_order_relaxed);
    return test_payload(2048, 0x44);
  });
  EXPECT_TRUE(again.load.hit());
  EXPECT_FALSE(again.computed);
  EXPECT_EQ(computes.load(), 1u);
}

TEST_F(StoreTest, LoadOrComputeMissComputesAndPublishes) {
  store::ArtifactStore artifacts(config());
  const store::ArtifactKey key = test_key("matrix", 1, 9);
  const store::FetchResult fetched =
      artifacts.load_or_compute(key, [&]() { return test_payload(256, 0x55); });
  EXPECT_TRUE(fetched.computed);
  EXPECT_FALSE(fetched.recovered_corrupt);
  EXPECT_EQ(fetched.load.payload, test_payload(256, 0x55));
  // Published: a second store over the same root hits.
  store::ArtifactStore again(config());
  EXPECT_TRUE(again.load(key).hit());
}

TEST_F(StoreTest, ChaosUnderConcurrentWarmPipelineReadersSelfHeals) {
  obs::metrics().reset();
  const fault::FaultPlan clean = fault::FaultPlan::none();
  const PipelineOutputs reference = run_pipeline(clean, nullptr);
  {
    auto artifacts = std::make_shared<store::ArtifactStore>(config());
    run_pipeline(clean, artifacts);
  }
  // Delete the clustering artifacts so the warm run consults the per-ISP
  // matrices (fan-out across pool workers) instead of short-circuiting.
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("clustering-v")) fs::remove(entry.path());
  }

  // Store chaos garbles warm matrices while those workers load them. The
  // plan is measurement-identical to clean, so every output must match the
  // storeless reference bit for bit -- corruption is healed, never served.
  fault::FaultPlan chaos = clean;
  chaos.store.corrupt_rate = 0.9;
  auto chaos_store = std::make_shared<store::ArtifactStore>(config());
  set_default_thread_count(4);  // >= 4 concurrent warm readers
  const PipelineOutputs warm = run_pipeline(chaos, chaos_store);
  expect_identical_outputs(reference, warm, "chaos under warm readers");

  const store::StoreStats stats = chaos_store->stats();
  EXPECT_GT(stats.chaos_injected, 0u) << "chaos must actually fire";
  // Bounded self-heal: matrices fetch through load_or_compute, so their
  // recomputes cannot exceed the garbled-artifact count (at most one
  // recompute per corrupted artifact; the non-matrix artifacts heal through
  // the plain consult-then-publish path, which recomputes outside this
  // counter).
  EXPECT_GT(stats.recomputed, 0u);
  EXPECT_LE(stats.recomputed, stats.chaos_injected);
  ASSERT_TRUE(warm.health.count("clustering"));
  EXPECT_EQ(warm.health.at("clustering").status, fault::StageStatus::kDegraded);

  // A third, chaos-free run over the healed store is warm and clean.
  auto healed_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs healed = run_pipeline(clean, healed_store);
  expect_identical_outputs(reference, healed, "healed after chaos");
  EXPECT_EQ(healed_store->stats().corrupt, 0u);
}

// --- .mmx matrix spill files (store/matrix_file.h) -------------------------

LatencyMatrix random_matrix(Rng& rng, std::size_t rows, std::size_t vps) {
  LatencyMatrix matrix;
  matrix.vp_count = vps;
  for (std::size_t i = 0; i < rows; ++i) {
    matrix.ips.push_back(Ipv4(static_cast<std::uint32_t>(rng.next())));
    matrix.server_indices.push_back(rng.next() % 100000);
  }
  for (std::size_t i = 0; i < rows * vps; ++i) {
    // Plain RTTs, NaN failure markers, both infinities and denormals: the
    // spill must hand every bit pattern back unchanged.
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    double value = rng.uniform(0.1, 300.0);
    if (kind == 1) value = std::numeric_limits<double>::quiet_NaN();
    if (kind == 2) value = std::numeric_limits<double>::infinity();
    if (kind == 3) value = -std::numeric_limits<double>::infinity();
    if (kind == 4) value = std::numeric_limits<double>::denorm_min();
    matrix.rtt.push_back(value);
  }
  return matrix;
}

TEST_F(StoreTest, MatrixFileRoundTripPreservesEveryBit) {
  fs::create_directories(root_);
  Rng rng(0x33a1);
  for (int round = 0; round < 12; ++round) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(0, 12));
    const std::size_t vps = static_cast<std::size_t>(rng.uniform_int(0, 8));
    const LatencyMatrix matrix = random_matrix(rng, rows, vps);
    const std::string path = (root_ / "spill.mmx").string();
    store::write_matrix_file(path, matrix);
    ASSERT_EQ(fs::file_size(path), store::matrix_file_size(rows, vps));

    // The mmap view serves the exact written bits through every accessor...
    const store::MappedLatencyMatrix mapped =
        store::MappedLatencyMatrix::open(path);
    ASSERT_EQ(mapped.row_count(), rows);
    ASSERT_EQ(mapped.vp_count(), vps);
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(mapped.ip(i), matrix.ips[i]) << "row " << i;
      EXPECT_EQ(mapped.server_index(i), matrix.server_indices[i]) << "row " << i;
      const double* row = mapped.row(i);
      for (std::size_t j = 0; j < vps; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(row[j]),
                  std::bit_cast<std::uint64_t>(matrix.rtt[i * vps + j]))
            << "cell (" << i << "," << j << ")";
      }
    }
    // ...and the full-load copy is ulp-exact too (mmap view == full load).
    const LatencyMatrix copy = mapped.to_matrix();
    EXPECT_EQ(copy.ips, matrix.ips);
    EXPECT_EQ(copy.server_indices, matrix.server_indices);
    EXPECT_EQ(copy.vp_count, matrix.vp_count);
    ASSERT_EQ(copy.rtt.size(), matrix.rtt.size());
    for (std::size_t i = 0; i < matrix.rtt.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(copy.rtt[i]),
                std::bit_cast<std::uint64_t>(matrix.rtt[i]))
          << "cell " << i;
    }
  }
  // Publication is atomic temp+rename: only the spill itself remains (the
  // loop above also proves rewriting over an existing spill works).
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(root_)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".mmx") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(StoreTest, MatrixFileEveryTruncationAndByteFlipDetected) {
  fs::create_directories(root_);
  Rng rng(0x77);
  const LatencyMatrix matrix = random_matrix(rng, 5, 4);
  const std::string good = (root_ / "good.mmx").string();
  store::write_matrix_file(good, matrix);
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_EQ(bytes.size(), store::matrix_file_size(5, 4));

  const std::string victim = (root_ / "victim.mmx").string();
  const auto rewrite = [&](const std::vector<char>& content) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  };

  // Truncation at every cut, including the empty file: SerdeError, never a
  // crash or a partially-served matrix.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    rewrite(std::vector<char>(bytes.begin(),
                              bytes.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_THROW(store::MappedLatencyMatrix::open(victim), store::SerdeError)
        << "cut at " << cut;
  }
  // A flip of any single byte -- header, arrays, or the checksum itself --
  // fails validation.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<char> flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    rewrite(flipped);
    EXPECT_THROW(store::MappedLatencyMatrix::open(victim), store::SerdeError)
        << "flip at " << i;
  }
  // Missing files are a miss, not an error, through open_if_exists.
  fs::remove(victim);
  EXPECT_FALSE(store::MappedLatencyMatrix::open_if_exists(victim).has_value());
  // And the pristine spill still opens after all that.
  EXPECT_EQ(store::MappedLatencyMatrix::open(good).row_count(), 5u);
}

TEST_F(StoreTest, MatrixFileReleaseRowsKeepsDataReadable) {
  fs::create_directories(root_);
  Rng rng(0x4e1e);
  const LatencyMatrix matrix = random_matrix(rng, 64, 40);
  const std::string path = (root_ / "big.mmx").string();
  store::write_matrix_file(path, matrix);
  const store::MappedLatencyMatrix mapped =
      store::MappedLatencyMatrix::open(path);
  // Touch everything, drop the middle from the resident set, then reread:
  // released pages reload from disk with the same bits.
  for (std::size_t i = 0; i < 64; ++i) (void)mapped.row(i)[0];
  mapped.release_rows(8, 56);
  mapped.release_rows(0, 64);
  mapped.release_rows(10, 10);  // empty range: no-op
  for (std::size_t i = 0; i < 64; ++i) {
    const double* row = mapped.row(i);
    for (std::size_t j = 0; j < 40; ++j) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(row[j]),
                std::bit_cast<std::uint64_t>(matrix.rtt[i * 40 + j]))
          << "cell (" << i << "," << j << ") after release";
    }
  }
}

TEST_F(StoreTest, CorruptSpillSelfHealsWithDegradedHealth) {
  // A garbled .mmx spill behaves like any corrupt artifact: the streamed
  // clustering recomputes (bit-identical outputs), flags the run degraded
  // with a "store:" reason, republishes the spill, and the next run is
  // clean.
  Scenario scenario = Scenario::tiny();
  scenario.stream_matrices = true;
  const fault::FaultPlan plan = fault::FaultPlan::none();
  const auto run = [&](std::shared_ptr<store::ArtifactStore> artifacts) {
    Pipeline pipeline(scenario, plan, std::move(artifacts));
    PipelineOutputs out;
    out.scan = pipeline.scan_records(Snapshot::k2023);
    out.xi01 = pipeline.clusterings(0.1);
    out.xi09 = pipeline.clusterings(0.9);
    out.health = pipeline.stage_health();
    return out;
  };

  const PipelineOutputs reference = run(nullptr);
  {
    auto artifacts = std::make_shared<store::ArtifactStore>(config());
    const PipelineOutputs cold = run(artifacts);
    expect_identical_outputs(reference, cold, "streamed cold");
  }
  const fs::path stream_dir = root_ / "stream";
  ASSERT_TRUE(fs::exists(stream_dir));

  // Garble every spill (truncate one, flip a byte in the rest) and delete
  // the clustering artifacts so the warm run actually consults them.
  std::size_t garbled = 0;
  for (const auto& entry : fs::directory_iterator(stream_dir)) {
    if (entry.path().extension() != ".mmx") continue;
    if (garbled == 0) {
      fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
    } else {
      corrupt_file(entry.path(), fs::file_size(entry.path()) - 9, 0x20);
    }
    ++garbled;
  }
  ASSERT_GT(garbled, 0u);
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("clustering-v")) fs::remove(entry.path());
  }

  auto warm_store = std::make_shared<store::ArtifactStore>(config());
  const PipelineOutputs warm = run(warm_store);
  expect_identical_outputs(reference, warm, "recompute after spill garbling");
  ASSERT_TRUE(warm.health.count("clustering"));
  EXPECT_EQ(warm.health.at("clustering").status,
            fault::StageStatus::kDegraded);
  bool noted = false;
  for (const std::string& reason : warm.health.at("clustering").reasons) {
    if (reason.find("store:") != std::string::npos &&
        reason.find("corrupt latency matrices") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted) << "degraded reason must name the spill corruption";

  // Self-heal: the spills were republished, so a clean-store rerun (minus
  // the clustering artifacts again) finds them valid.
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("clustering-v")) fs::remove(entry.path());
  }
  auto healed_store = std::make_shared<store::ArtifactStore>(config());
  Pipeline healed_pipeline(scenario, plan, healed_store);
  healed_pipeline.clusterings(0.1);
  const auto healed_health = healed_pipeline.stage_health();
  ASSERT_TRUE(healed_health.count("clustering"));
  EXPECT_EQ(healed_health.at("clustering").status, fault::StageStatus::kOk);
}

}  // namespace
}  // namespace repro
