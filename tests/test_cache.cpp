#include "cache/simulator.h"

#include <gtest/gtest.h>

#include <set>

namespace repro {
namespace {

TEST(LruCache, HitAfterInsert) {
  LruCache cache(100.0);
  EXPECT_FALSE(cache.access(1, 10.0));
  EXPECT_TRUE(cache.access(1, 10.0));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(30.0);
  cache.access(1, 10.0);
  cache.access(2, 10.0);
  cache.access(3, 10.0);
  cache.access(1, 10.0);  // refresh 1; LRU is now 2
  cache.access(4, 10.0);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruCache, ByteCapacityRespected) {
  LruCache cache(25.0);
  cache.access(1, 10.0);
  cache.access(2, 10.0);
  cache.access(3, 10.0);  // evicts 1 (10+10+10 > 25)
  EXPECT_LE(cache.used_mb(), 25.0);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.object_count(), 2u);
}

TEST(LruCache, OversizedObjectNeverAdmitted) {
  LruCache cache(5.0);
  EXPECT_FALSE(cache.access(1, 10.0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.object_count(), 0u);
}

TEST(LruCache, ResetClearsEverything) {
  LruCache cache(100.0);
  cache.access(1, 10.0);
  cache.access(1, 10.0);
  cache.reset();
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 0.0);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCache, Validation) {
  EXPECT_THROW(LruCache(0.0), Error);
  LruCache cache(10.0);
  EXPECT_THROW(cache.access(1, -1.0), Error);
}

TEST(RequestStream, RespectsCatalogBounds) {
  const CatalogProfile& profile = catalog_profile(Hypergiant::kNetflix);
  RequestStream stream(profile, 1);
  std::uint64_t ephemeral = 0;
  for (int i = 0; i < 20000; ++i) {
    const ObjectId object = stream.next();
    if (object >= profile.object_count) ++ephemeral;
  }
  // Ephemeral ids appear at roughly the uncacheable fraction.
  EXPECT_NEAR(static_cast<double>(ephemeral) / 20000.0,
              profile.uncacheable_fraction, 0.01);
}

TEST(RequestStream, PopularObjectsDominante) {
  const CatalogProfile& profile = catalog_profile(Hypergiant::kNetflix);
  RequestStream stream(profile, 2);
  std::size_t top_hundred = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (stream.next() < 100) ++top_hundred;
  }
  // Zipf 1.22 over 60k objects: the top 100 objects draw a large share.
  EXPECT_GT(static_cast<double>(top_hundred) / n, 0.3);
}

TEST(CacheSimulator, ReproducesPaperEfficiencies) {
  // The headline calibration: at the reference deployment size, simulated
  // steady-state hit rates approximate the paper's Section 2.1 constants.
  const double expected[] = {0.80, 0.95, 0.86, 0.75};
  for (const Hypergiant hg : all_hypergiants()) {
    const CacheSimResult result = simulate_cache(hg, reference_cache_mb(hg));
    EXPECT_NEAR(result.hit_rate, expected[static_cast<std::size_t>(hg)], 0.035)
        << to_string(hg);
  }
}

TEST(CacheSimulator, EfficiencyOrderingMatchesPaper) {
  // Netflix > Meta > Google > Akamai.
  std::array<double, kHypergiantCount> rates{};
  for (const Hypergiant hg : all_hypergiants()) {
    rates[static_cast<std::size_t>(hg)] =
        simulate_cache(hg, reference_cache_mb(hg)).hit_rate;
  }
  EXPECT_GT(rates[1], rates[2]);  // Netflix > Meta
  EXPECT_GT(rates[2], rates[0]);  // Meta > Google
  EXPECT_GT(rates[0], rates[3]);  // Google > Akamai
}

TEST(CacheSimulator, HitRateMonotoneInCapacity) {
  const double capacities[] = {200'000.0, 1'000'000.0, 5'000'000.0};
  const auto curve = hit_rate_curve(Hypergiant::kGoogle, capacities);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LT(curve[0].second.hit_rate, curve[1].second.hit_rate);
  EXPECT_LT(curve[1].second.hit_rate, curve[2].second.hit_rate);
}

TEST(CacheSimulator, Deterministic) {
  const CacheSimResult a = simulate_cache(Hypergiant::kMeta, 500'000.0);
  const CacheSimResult b = simulate_cache(Hypergiant::kMeta, 500'000.0);
  EXPECT_DOUBLE_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.cached_objects, b.cached_objects);
}

TEST(CacheSimulator, UncacheableBoundsHitRate) {
  // Even an infinite cache cannot beat 1 - uncacheable_fraction.
  const CatalogProfile& profile = catalog_profile(Hypergiant::kMeta);
  const CacheSimResult result = simulate_cache(Hypergiant::kMeta, 1e12);
  EXPECT_LT(result.hit_rate, 1.0 - profile.uncacheable_fraction + 0.01);
}

TEST(CacheSimulator, Validation) {
  EXPECT_THROW(simulate_cache(Hypergiant::kGoogle, 0.0), Error);
  CacheSimConfig config;
  config.measured_requests = 0;
  EXPECT_THROW(simulate_cache(Hypergiant::kGoogle, 1.0, config), Error);
}

}  // namespace
}  // namespace repro
