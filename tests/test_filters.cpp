#include "mlab/filters.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/generator.h"

namespace repro {
namespace {

/// Builds a vantage point set over a tiny world for geometry-aware tests.
class FiltersTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    vps_ = new VantagePointSet(*net_, 30, 7);
  }
  static void TearDownTestSuite() {
    delete vps_;
    delete net_;
  }
  static Internet* net_;
  static VantagePointSet* vps_;
};

Internet* FiltersTest::net_ = nullptr;
VantagePointSet* FiltersTest::vps_ = nullptr;

TEST_F(FiltersTest, PhysicalRttsPassSpeedOfLight) {
  // RTTs derived from an actual location can never violate the check.
  const GeoPoint server = net_->metros.front().location;
  std::vector<double> rtts(vps_->size());
  for (std::size_t v = 0; v < vps_->size(); ++v) {
    rtts[v] = min_rtt_ms((*vps_)[v].location, server) * 1.3 + 2.0;
  }
  EXPECT_FALSE(violates_speed_of_light(rtts, *vps_, FilterConfig{}));
}

TEST_F(FiltersTest, SplitPersonalityDetected) {
  // Half the VPs see a server in metro A, half in a far metro B: some pair
  // must violate the triangle bound.
  const Metro* far = nullptr;
  const Metro& home = net_->metros.front();
  for (const Metro& metro : net_->metros) {
    if (haversine_km(home.location, metro.location) > 8000.0) {
      far = &metro;
      break;
    }
  }
  ASSERT_NE(far, nullptr) << "tiny world lacks far metro pair";
  std::vector<double> rtts(vps_->size());
  for (std::size_t v = 0; v < vps_->size(); ++v) {
    const GeoPoint& loc = v % 2 == 0 ? home.location : far->location;
    rtts[v] = min_rtt_ms((*vps_)[v].location, loc) * 1.05 + 0.5;
  }
  EXPECT_TRUE(violates_speed_of_light(rtts, *vps_, FilterConfig{}));
}

TEST_F(FiltersTest, TooFewMeasurementsNeverViolate) {
  std::vector<double> rtts(vps_->size(), kNoMeasurement);
  EXPECT_FALSE(violates_speed_of_light(rtts, *vps_, FilterConfig{}));
  rtts[0] = 1.0;
  EXPECT_FALSE(violates_speed_of_light(rtts, *vps_, FilterConfig{}));
}

LatencyMatrix make_matrix(std::size_t rows, std::size_t cols, double value) {
  LatencyMatrix matrix;
  matrix.vp_count = cols;
  for (std::size_t r = 0; r < rows; ++r) {
    matrix.ips.push_back(Ipv4(static_cast<std::uint32_t>(r + 1)));
    matrix.server_indices.push_back(r);
  }
  matrix.rtt.assign(rows * cols, value);
  return matrix;
}

TEST_F(FiltersTest, CleanMatrixDropsAllNanRows) {
  // 500 ms everywhere is physically consistent from any vantage geometry
  // (constant *low* RTTs would trip the speed-of-light filter).
  LatencyMatrix matrix = make_matrix(3, vps_->size(), 500.0);
  for (std::size_t c = 0; c < matrix.vp_count; ++c) {
    matrix.rtt[1 * matrix.vp_count + c] = kNoMeasurement;
  }
  FilterConfig config;
  config.min_usable_sites = 5;
  const FilteredMatrix cleaned = clean_matrix(matrix, *vps_, config);
  EXPECT_EQ(cleaned.dropped_unresponsive, 1u);
  ASSERT_EQ(cleaned.kept_rows.size(), 2u);
  EXPECT_EQ(cleaned.kept_rows[0], 0u);
  EXPECT_EQ(cleaned.kept_rows[1], 2u);
  EXPECT_TRUE(cleaned.usable);
}

TEST_F(FiltersTest, CleanMatrixKeepsOnlyFullyResponsiveColumns) {
  LatencyMatrix matrix = make_matrix(2, vps_->size(), 500.0);
  matrix.rtt[0 * matrix.vp_count + 3] = kNoMeasurement;  // col 3 fails row 0
  FilterConfig config;
  config.min_usable_sites = 5;
  const FilteredMatrix cleaned = clean_matrix(matrix, *vps_, config);
  EXPECT_EQ(cleaned.kept_cols.size(), vps_->size() - 1);
  for (const std::size_t col : cleaned.kept_cols) EXPECT_NE(col, 3u);
  // Compact matrix is fully finite.
  for (const double rtt : cleaned.rtt) EXPECT_TRUE(std::isfinite(rtt));
}

TEST_F(FiltersTest, UnusableWhenBelowThreshold) {
  LatencyMatrix matrix = make_matrix(2, vps_->size(), 500.0);
  // Kill most columns on row 0.
  for (std::size_t c = 0; c + 4 < matrix.vp_count; ++c) {
    matrix.rtt[c] = kNoMeasurement;
  }
  FilterConfig config;
  config.min_usable_sites = 10;
  const FilteredMatrix cleaned = clean_matrix(matrix, *vps_, config);
  EXPECT_FALSE(cleaned.usable);
  EXPECT_LT(cleaned.kept_cols.size(), 10u);
}

TEST_F(FiltersTest, EmptyMatrixUnusable) {
  LatencyMatrix matrix;
  matrix.vp_count = vps_->size();
  const FilteredMatrix cleaned = clean_matrix(matrix, *vps_, FilterConfig{});
  EXPECT_FALSE(cleaned.usable);
  EXPECT_TRUE(cleaned.kept_rows.empty());
}

TEST_F(FiltersTest, ToleranceSuppressesViolation) {
  const Metro& home = net_->metros.front();
  const Metro* far = nullptr;
  for (const Metro& metro : net_->metros) {
    if (haversine_km(home.location, metro.location) > 8000.0) {
      far = &metro;
      break;
    }
  }
  ASSERT_NE(far, nullptr);
  std::vector<double> rtts(vps_->size());
  for (std::size_t v = 0; v < vps_->size(); ++v) {
    const GeoPoint& loc = v % 2 == 0 ? home.location : far->location;
    rtts[v] = min_rtt_ms((*vps_)[v].location, loc) * 1.05 + 0.5;
  }
  FilterConfig tolerant;
  tolerant.sol_tolerance_ms = 1e6;  // absurd slack: nothing violates
  EXPECT_FALSE(violates_speed_of_light(rtts, *vps_, tolerant));
}

}  // namespace
}  // namespace repro
