#include "route/peering_inference.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class PeeringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    routing_ = new RoutingEngine(*net_);
    tracer_ = new TracerouteEngine(*net_, TracerouteConfig{});
    registry_ = new IxpRegistry(IxpRegistry::build(*net_, IxpRegistryConfig{}));
    PeeringStudyConfig config;
    config.vm_count = 6;
    config.slash24s_per_target = 2;
    study_ = new PeeringStudy(*net_, *tracer_, *registry_, config);
    google_ = net_->as_by_asn(kGoogleAsn);
  }
  static void TearDownTestSuite() {
    delete study_;
    delete registry_;
    delete tracer_;
    delete routing_;
    delete net_;
  }
  static Internet* net_;
  static RoutingEngine* routing_;
  static TracerouteEngine* tracer_;
  static IxpRegistry* registry_;
  static PeeringStudy* study_;
  static AsIndex google_;
};

Internet* PeeringTest::net_ = nullptr;
RoutingEngine* PeeringTest::routing_ = nullptr;
TracerouteEngine* PeeringTest::tracer_ = nullptr;
IxpRegistry* PeeringTest::registry_ = nullptr;
PeeringStudy* PeeringTest::study_ = nullptr;
AsIndex PeeringTest::google_ = 0;

/// Synthetic traceroute builder for unit-level classification tests.
Traceroute make_trace(std::vector<TracerouteHop> hops) {
  Traceroute trace;
  trace.hops = std::move(hops);
  return trace;
}

TracerouteHop hop(std::optional<Ipv4> ip, AsIndex owner) {
  TracerouteHop h;
  h.ip = ip;
  h.true_owner = owner;
  return h;
}

TEST_F(PeeringTest, DirectAdjacencyIsPeer) {
  const AsIndex target = net_->access_isps().front();
  const Ipv4 google_router = tracer_->router_ip(google_, 0);
  const Ipv4 isp_router = tracer_->router_ip(target, 0);
  const auto trace = make_trace({hop(google_router, google_),
                                 hop(isp_router, target)});
  const auto evidence = study_->classify_traceroute(trace, google_, target);
  EXPECT_EQ(evidence.status, PeeringStatus::kPeer);
  EXPECT_TRUE(evidence.seen_via_pni);
  EXPECT_FALSE(evidence.seen_via_ixp);
}

TEST_F(PeeringTest, StarsBetweenYieldPossible) {
  const AsIndex target = net_->access_isps().front();
  const auto trace = make_trace({hop(tracer_->router_ip(google_, 0), google_),
                                 hop(std::nullopt, target),
                                 hop(tracer_->router_ip(target, 1), target)});
  const auto evidence = study_->classify_traceroute(trace, google_, target);
  EXPECT_EQ(evidence.status, PeeringStatus::kPossiblePeer);
}

TEST_F(PeeringTest, InterveningNetworkMeansNoEvidence) {
  const AsIndex target = net_->access_isps().front();
  AsIndex transit = kInvalidIndex;
  for (const As& as : net_->ases) {
    if (as.tier == AsTier::kTransit) {
      transit = as.index;
      break;
    }
  }
  ASSERT_NE(transit, kInvalidIndex);
  const auto trace = make_trace({hop(tracer_->router_ip(google_, 0), google_),
                                 hop(tracer_->router_ip(transit, 0), transit),
                                 hop(tracer_->router_ip(target, 0), target)});
  const auto evidence = study_->classify_traceroute(trace, google_, target);
  EXPECT_EQ(evidence.status, PeeringStatus::kNoEvidence);
}

TEST_F(PeeringTest, IxpLanAddressMarksViaIxp) {
  // Use a real registered port of some member.
  for (const Ixp& ixp : net_->ixps) {
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const Ipv4 address = ixp.peering_lan.at(offset);
      const auto truth = net_->ixp_port_of_ip(address);
      if (!truth) continue;
      if (!registry_->port_lookup(address)) continue;  // needs DB coverage
      const AsIndex member = truth->member;
      if (net_->ases[member].tier != AsTier::kAccess) continue;
      const auto trace = make_trace(
          {hop(tracer_->router_ip(google_, 0), google_), hop(address, member)});
      const auto evidence = study_->classify_traceroute(trace, google_, member);
      EXPECT_EQ(evidence.status, PeeringStatus::kPeer);
      EXPECT_TRUE(evidence.seen_via_ixp);
      EXPECT_FALSE(evidence.seen_via_pni);
      return;
    }
  }
  GTEST_SKIP() << "no registered access-ISP IXP port in tiny world";
}

TEST_F(PeeringTest, UnknownHopBreaksAdjacency) {
  const AsIndex target = net_->access_isps().front();
  // An address outside any announced prefix (unmapped).
  const Ipv4 mystery = Ipv4::parse("203.0.113.77");
  const auto trace = make_trace({hop(tracer_->router_ip(google_, 0), google_),
                                 hop(mystery, kInvalidIndex),
                                 hop(tracer_->router_ip(target, 0), target)});
  const auto evidence = study_->classify_traceroute(trace, google_, target);
  EXPECT_EQ(evidence.status, PeeringStatus::kNoEvidence);
}

TEST_F(PeeringTest, EmptyTracerouteNoEvidence) {
  const AsIndex target = net_->access_isps().front();
  const auto evidence =
      study_->classify_traceroute(make_trace({}), google_, target);
  EXPECT_EQ(evidence.status, PeeringStatus::kNoEvidence);
}

TEST_F(PeeringTest, StudyPrecisionAgainstGroundTruth) {
  // Inferred "peer" must (almost) always be a true peer: the methodology's
  // false-positive rate should be negligible.
  std::vector<AsIndex> targets = net_->access_isps();
  targets.resize(std::min<std::size_t>(targets.size(), 60));
  const auto results = study_->run(google_, targets, *routing_);
  std::size_t inferred = 0;
  std::size_t correct = 0;
  std::size_t true_peers = 0;
  std::size_t recalled = 0;
  for (const auto& [isp, evidence] : results) {
    const bool truth = net_->has_peering(isp, google_);
    if (truth) ++true_peers;
    if (evidence.status == PeeringStatus::kPeer) {
      ++inferred;
      if (truth) ++correct;
      if (truth) ++recalled;
    }
  }
  ASSERT_GT(inferred, 5u);
  EXPECT_EQ(correct, inferred) << "false positive peering inference";
  ASSERT_GT(true_peers, 10u);
  // Recall is high but below 1 (silent routers/ASes hide some adjacencies).
  EXPECT_GT(static_cast<double>(recalled) / true_peers, 0.6);
}

TEST_F(PeeringTest, StudyDeterministic) {
  std::vector<AsIndex> targets = net_->access_isps();
  targets.resize(10);
  const auto a = study_->run(google_, targets, *routing_);
  const auto b = study_->run(google_, targets, *routing_);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [isp, evidence] : a) {
    EXPECT_EQ(b.at(isp).status, evidence.status);
  }
}

// ----------------------------------------------------- flap instability --

TEST_F(PeeringTest, StableStudyReportsNoInstability) {
  std::vector<AsIndex> targets = net_->access_isps();
  targets.resize(std::min<std::size_t>(targets.size(), 30));
  PeeringStudyOutcome outcome;
  study_->run(google_, targets, *routing_, &outcome);
  EXPECT_EQ(outcome.targets, targets.size());
  EXPECT_GT(outcome.probes, 0u);
  EXPECT_EQ(outcome.unstable_targets, 0u);
  EXPECT_EQ(outcome.downgraded_peers, 0u);
}

TEST_F(PeeringTest, FlappedEngineSurfacesInstabilityAndDowngrades) {
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.5;
  config.flap_period = 2;
  const TracerouteEngine flapped(*net_, config);
  PeeringStudyConfig study_config;
  study_config.vm_count = 6;
  study_config.slash24s_per_target = 2;
  const PeeringStudy flapped_study(*net_, flapped, *registry_, study_config);

  std::vector<AsIndex> targets = net_->access_isps();
  targets.resize(std::min<std::size_t>(targets.size(), 60));
  PeeringStudyOutcome outcome;
  const auto results = flapped_study.run(google_, targets, *routing_, &outcome);

  EXPECT_GT(outcome.unstable_targets, 0u)
      << "half the ASes flapping every other epoch surfaced no disagreement";
  EXPECT_LE(outcome.unstable_targets, outcome.targets);
  EXPECT_LE(outcome.downgraded_peers, outcome.unstable_targets);

  // The per-target evidence agrees with the aggregate: downgraded targets
  // are flagged unstable and never keep a hard kPeer verdict.
  std::size_t unstable_seen = 0;
  for (const auto& [isp, evidence] : results) {
    if (!evidence.unstable) continue;
    ++unstable_seen;
    EXPECT_NE(evidence.status, PeeringStatus::kPeer)
        << "unstable target kept a hard peer verdict";
  }
  EXPECT_EQ(unstable_seen, outcome.unstable_targets);
}

}  // namespace
}  // namespace repro
