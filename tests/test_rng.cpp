#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace repro {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -1);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, LognormalMedian) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 50001; ++i) values.push_back(rng.lognormal(std::log(3.0), 0.5));
  std::nth_element(values.begin(), values.begin() + 25000, values.end());
  EXPECT_NEAR(values[25000], 3.0, 0.15);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, ParetoBoundsAndTail) {
  Rng rng(31);
  int above_double = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 2.0);
    EXPECT_GE(x, 1.0);
    if (x > 2.0) ++above_double;
  }
  // P(X > 2) = (1/2)^alpha = 0.25 for alpha = 2.
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.25, 0.01);
  EXPECT_THROW(rng.pareto(0.0, 1.0), Error);
  EXPECT_THROW(rng.pareto(1.0, 0.0), Error);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(37);
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsDegenerateInputs) {
  Rng rng(37);
  EXPECT_THROW(rng.weighted_index({}), Error);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), Error);
  const double negative[] = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), Error);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t index : sample) EXPECT_LT(index, 100u);
  EXPECT_THROW(rng.sample_indices(3, 4), Error);
}

TEST(Rng, SampleIndicesFull) {
  Rng rng(43);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(values.begin(), values.end(), shuffled.begin()));
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(53);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child1.next() == child2.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Mix64, StatelessAndSpreading) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(ZipfSampler, RankOneMostPopular) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(59);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(61);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int rank = 1; rank <= 4; ++rank) {
    EXPECT_NEAR(counts[rank] / static_cast<double>(n), 0.25, 0.01);
  }
}

TEST(ZipfSampler, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
}

}  // namespace
}  // namespace repro
