// Seed-parameterized property tests: the structural invariants of the
// generated world, the routing policy, and the measurement pipeline must
// hold for *any* seed, not just the default ones.
#include <gtest/gtest.h>

#include <set>

#include "hypergiant/deployment.h"
#include "route/bgp.h"
#include "topology/generator.h"

namespace repro {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Internet make_world() const {
    GeneratorConfig config = GeneratorConfig::tiny();
    config.seed = GetParam();
    return InternetGenerator(config).generate();
  }
};

TEST_P(SeedSweep, AddressPlanIsDisjoint) {
  const Internet net = make_world();
  // No two ASes' announced blocks overlap; LPM of any infra address
  // resolves to its owner.
  std::vector<std::pair<Prefix, AsIndex>> blocks;
  for (const As& as : net.ases) {
    blocks.emplace_back(as.infra.pool(), as.index);
    for (const Prefix& prefix : as.user_prefixes) {
      blocks.emplace_back(prefix, as.index);
    }
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].first.contains(blocks[j].first) ||
                   blocks[j].first.contains(blocks[i].first))
          << blocks[i].first.to_string() << " vs " << blocks[j].first.to_string();
    }
  }
}

TEST_P(SeedSweep, EveryAccessIspHasUpstreamPath) {
  const Internet net = make_world();
  const RoutingEngine engine(net);
  const RoutingTable table = engine.routes_to(net.as_by_asn(kGoogleAsn));
  for (const AsIndex isp : net.access_isps()) {
    EXPECT_TRUE(table.entry(isp).reachable);
  }
}

TEST_P(SeedSweep, LinksNeverSelfOrDangling) {
  const Internet net = make_world();
  for (const InterdomainLink& link : net.links) {
    EXPECT_NE(link.a, link.b);
    EXPECT_LT(link.a, net.ases.size());
    EXPECT_LT(link.b, net.ases.size());
    if (link.kind == LinkKind::kIxpPeering) {
      EXPECT_LT(link.ixp, net.ixps.size());
    }
  }
}

TEST_P(SeedSweep, IxpMembersArePresentInMetro) {
  const Internet net = make_world();
  for (const Ixp& ixp : net.ixps) {
    for (const AsIndex member : ixp.members) {
      const As& as = net.ases[member];
      EXPECT_NE(std::find(as.metros.begin(), as.metros.end(), ixp.metro),
                as.metros.end())
          << as.name << " member of " << ixp.name;
    }
  }
}

TEST_P(SeedSweep, DeploymentInvariants) {
  const Internet net = make_world();
  DeploymentConfig config;
  config.seed = GetParam() * 3 + 1;
  config.footprint_scale = GeneratorConfig::tiny().scale;
  const DeploymentPolicy policy(net, config);
  const OffnetRegistry registry = policy.deploy(Snapshot::k2023);

  std::set<Ipv4> ips;
  for (const OffnetServer& server : registry.servers()) {
    EXPECT_TRUE(ips.insert(server.ip).second);
    EXPECT_EQ(net.as_of_ip(server.ip), server.isp);
    EXPECT_LT(server.facility, net.facilities.size());
    EXPECT_GE(server.rack, 0);
  }
  // Akamai never grows.
  const OffnetRegistry earlier = policy.deploy(Snapshot::k2021);
  EXPECT_EQ(earlier.isps_hosting(Hypergiant::kAkamai),
            registry.isps_hosting(Hypergiant::kAkamai));
}

TEST_P(SeedSweep, RoutingDeterministicPerSeed) {
  const Internet net = make_world();
  const RoutingEngine engine(net);
  const AsIndex dst = net.access_isps().front();
  const RoutingTable a = engine.routes_to(dst);
  const RoutingTable b = engine.routes_to(dst);
  for (const As& as : net.ases) {
    EXPECT_EQ(a.entry(as.index).next_hop, b.entry(as.index).next_hop);
    EXPECT_EQ(a.entry(as.index).path_length, b.entry(as.index).path_length);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace repro
