#include "tls/cert_store.h"

#include <gtest/gtest.h>

#include "tls/certificate.h"

namespace repro {
namespace {

TlsCertificate sample_cert() {
  TlsCertificate cert;
  cert.subject.common_name = "*.example.com";
  cert.subject.organization = "Example Org";
  cert.issuer.common_name = "Example CA";
  cert.san_dns = {"*.example.com", "example.com"};
  cert.serial = 42;
  return cert;
}

TEST(TlsCertificate, MatchesNameGlobOverCnAndSans) {
  TlsCertificate cert = sample_cert();
  EXPECT_TRUE(cert.matches_name_glob("*.example.com"));
  EXPECT_TRUE(cert.matches_name_glob("example.com"));
  EXPECT_FALSE(cert.matches_name_glob("*.other.com"));
}

TEST(TlsCertificate, HasExactNameCaseInsensitive) {
  TlsCertificate cert = sample_cert();
  EXPECT_TRUE(cert.has_exact_name("*.EXAMPLE.com"));
  EXPECT_TRUE(cert.has_exact_name("example.com"));
  EXPECT_FALSE(cert.has_exact_name("www.example.com"));
}

TEST(Fingerprint, StableForEqualCerts) {
  EXPECT_EQ(fingerprint(sample_cert()), fingerprint(sample_cert()));
}

TEST(Fingerprint, SensitiveToEveryField) {
  const std::uint64_t base = fingerprint(sample_cert());
  TlsCertificate cert = sample_cert();
  cert.subject.common_name = "other";
  EXPECT_NE(fingerprint(cert), base);
  cert = sample_cert();
  cert.subject.organization = "";
  EXPECT_NE(fingerprint(cert), base);
  cert = sample_cert();
  cert.san_dns.push_back("x.example.com");
  EXPECT_NE(fingerprint(cert), base);
  cert = sample_cert();
  cert.serial = 43;
  EXPECT_NE(fingerprint(cert), base);
}

TEST(CertStore, InstallLookupRemove) {
  CertStore store;
  const Ipv4 ip = Ipv4::parse("10.0.0.1");
  EXPECT_FALSE(store.contains(ip));
  EXPECT_EQ(store.lookup(ip), std::nullopt);
  store.install(ip, sample_cert());
  EXPECT_TRUE(store.contains(ip));
  ASSERT_TRUE(store.lookup(ip).has_value());
  EXPECT_EQ(store.lookup(ip)->subject.common_name, "*.example.com");
  store.remove(ip);
  EXPECT_FALSE(store.contains(ip));
  EXPECT_NO_THROW(store.remove(ip));  // idempotent
}

TEST(CertStore, InstallReplaces) {
  CertStore store;
  const Ipv4 ip = Ipv4::parse("10.0.0.1");
  store.install(ip, sample_cert());
  TlsCertificate updated = sample_cert();
  updated.subject.common_name = "new.example.com";
  store.install(ip, updated);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup(ip)->subject.common_name, "new.example.com");
}

TEST(CertStore, AllSortedByIp) {
  CertStore store;
  store.install(Ipv4::parse("9.9.9.9"), sample_cert());
  store.install(Ipv4::parse("1.1.1.1"), sample_cert());
  store.install(Ipv4::parse("5.5.5.5"), sample_cert());
  const auto endpoints = store.all_sorted();
  ASSERT_EQ(endpoints.size(), 3u);
  EXPECT_EQ(endpoints[0].ip.to_string(), "1.1.1.1");
  EXPECT_EQ(endpoints[1].ip.to_string(), "5.5.5.5");
  EXPECT_EQ(endpoints[2].ip.to_string(), "9.9.9.9");
}

}  // namespace
}  // namespace repro
