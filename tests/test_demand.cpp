#include "traffic/demand.h"

#include <gtest/gtest.h>

#include <cmath>

namespace repro {
namespace {

TEST(Diurnal, BoundsAndShape) {
  for (double hour = 0.0; hour < 24.0; hour += 0.5) {
    const double m = diurnal_multiplier(hour);
    EXPECT_GE(m, 0.35 - 1e-9) << hour;
    EXPECT_LE(m, 1.0 + 1e-9) << hour;
  }
  EXPECT_NEAR(diurnal_multiplier(21.0), 1.0, 1e-9);   // evening peak
  EXPECT_NEAR(diurnal_multiplier(9.0), 0.35, 1e-9);   // morning trough
  EXPECT_GT(diurnal_multiplier(20.0), diurnal_multiplier(10.0));
}

class DiurnalHourSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiurnalHourSweep, SymmetricAroundPeak) {
  // The curve is a cosine in distance from 21:00: f(21+d) == f(21-d).
  const int d = GetParam();
  const double up = diurnal_multiplier(std::fmod(21.0 + d, 24.0));
  const double down = diurnal_multiplier(std::fmod(21.0 - d + 24.0, 24.0));
  EXPECT_NEAR(up, down, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Hours, DiurnalHourSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 11));

TEST(LocalHour, LongitudeOffsets) {
  EXPECT_NEAR(local_hour(12.0, 0.0), 12.0, 1e-9);
  EXPECT_NEAR(local_hour(12.0, 15.0), 13.0, 1e-9);   // UTC+1
  EXPECT_NEAR(local_hour(12.0, -75.0), 7.0, 1e-9);   // ~New York
  EXPECT_NEAR(local_hour(23.0, 30.0), 1.0, 1e-9);    // wraps
  EXPECT_NEAR(local_hour(1.0, -30.0), 23.0, 1e-9);   // wraps negative
}

TEST(HypergiantShare, SumMatchesPaper) {
  // 21% + 9% + 15% + 17.5% = 62.5% of Internet traffic.
  EXPECT_NEAR(total_hypergiant_share(), 0.625, 1e-9);
}

TEST(DemandModel, SharesAndPeaks) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const DemandModel demand(net);
  const AsIndex isp = net.access_isps().front();

  const double peak = demand.isp_peak_demand_gbps(isp);
  EXPECT_GT(peak, 0.0);
  EXPECT_DOUBLE_EQ(peak, peak_demand_gbps(net.ases[isp].users));

  // Hypergiant + other shares add to the total at any hour.
  for (const double hour : {0.0, 6.0, 12.0, 20.0}) {
    const double total = demand.isp_demand_gbps(isp, hour);
    double parts = demand.other_demand_gbps(isp, hour);
    for (const Hypergiant hg : all_hypergiants()) {
      parts += demand.hypergiant_demand_gbps(isp, hg, hour);
    }
    EXPECT_NEAR(parts, total, total * 1e-9);
    EXPECT_LE(total, peak * (1.0 + 1e-9));
    EXPECT_GE(total, peak * 0.35 * (1.0 - 1e-9));
  }
}

TEST(DemandModel, GoogleLargestHypergiantShare) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const DemandModel demand(net);
  const AsIndex isp = net.access_isps().front();
  const double google = demand.hypergiant_peak_demand_gbps(isp, Hypergiant::kGoogle);
  for (const Hypergiant hg :
       {Hypergiant::kNetflix, Hypergiant::kMeta, Hypergiant::kAkamai}) {
    EXPECT_GT(google, demand.hypergiant_peak_demand_gbps(isp, hg));
  }
}

TEST(DemandModel, ValidatesIndices) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const DemandModel demand(net);
  EXPECT_THROW(demand.isp_peak_demand_gbps(kInvalidIndex), Error);
}

}  // namespace
}  // namespace repro
