#include "cluster/optics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/rng.h"

namespace repro {
namespace {

/// Builds a distance matrix from 1-D point positions (Euclidean).
DistanceMatrix from_positions(const std::vector<double>& positions) {
  DistanceMatrix matrix(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      matrix.set(i, j, std::fabs(positions[i] - positions[j]));
    }
  }
  return matrix;
}

/// A "dense" 1-D blob: near-evenly spaced points (spacing 1, tiny jitter),
/// so that intra-blob nearest-neighbor distances are flat -- the OPTICS-xi
/// notion of a cluster. (Uniformly random positions are NOT a blob in this
/// sense: their nearest-neighbor distances fluctuate by orders of magnitude
/// and legitimately fragment at any xi.)
void add_blob(std::vector<double>& positions, double start, std::size_t count,
              Rng& rng, double jitter = 0.02) {
  for (std::size_t i = 0; i < count; ++i) {
    positions.push_back(start + static_cast<double>(i) +
                        rng.uniform(-jitter, jitter));
  }
}

/// Two dense 1-D blobs far apart.
std::vector<double> two_blobs(std::size_t per_blob, double separation, Rng& rng) {
  std::vector<double> positions;
  add_blob(positions, 0.0, per_blob, rng);
  add_blob(positions, separation, per_blob, rng);
  return positions;
}

TEST(OpticsOrder, OutputsValidPermutation) {
  Rng rng(1);
  const auto positions = two_blobs(10, 100.0, rng);
  OpticsResult result;
  optics_order(from_positions(positions), 2, result);
  ASSERT_EQ(result.ordering.size(), positions.size());
  std::set<std::size_t> seen(result.ordering.begin(), result.ordering.end());
  EXPECT_EQ(seen.size(), positions.size());
  EXPECT_TRUE(std::isinf(result.reachability.front()));
}

TEST(OpticsOrder, CoreDistanceIsNearestNeighborForMinPts2) {
  const std::vector<double> positions{0.0, 1.0, 10.0};
  OpticsResult result;
  optics_order(from_positions(positions), 2, result);
  EXPECT_DOUBLE_EQ(result.core_distance[0], 1.0);
  EXPECT_DOUBLE_EQ(result.core_distance[1], 1.0);
  EXPECT_DOUBLE_EQ(result.core_distance[2], 9.0);
}

TEST(OpticsOrder, ReachabilityJumpsAtBlobBoundary) {
  Rng rng(2);
  const auto positions = two_blobs(15, 1000.0, rng);
  OpticsResult result;
  optics_order(from_positions(positions), 2, result);
  // Exactly one reachability value (besides the first) should be huge.
  int jumps = 0;
  for (std::size_t k = 1; k < result.reachability.size(); ++k) {
    if (result.reachability[k] > 500.0) ++jumps;
  }
  EXPECT_EQ(jumps, 1);
}

TEST(OpticsXi, TwoBlobsTwoClusters) {
  Rng rng(3);
  const auto positions = two_blobs(15, 100.0, rng);
  for (const double xi : {0.1, 0.5, 0.9}) {
    const OpticsResult result = optics_xi(from_positions(positions), 2, xi);
    // Every point of blob 0 shares a label distinct from blob 1's label.
    std::set<int> blob0;
    std::set<int> blob1;
    for (std::size_t i = 0; i < 15; ++i) blob0.insert(result.labels[i]);
    for (std::size_t i = 15; i < 30; ++i) blob1.insert(result.labels[i]);
    EXPECT_EQ(blob0.size(), 1u) << "xi=" << xi;
    EXPECT_EQ(blob1.size(), 1u) << "xi=" << xi;
    EXPECT_NE(*blob0.begin(), -1) << "xi=" << xi;
    EXPECT_NE(*blob1.begin(), -1) << "xi=" << xi;
    EXPECT_NE(*blob0.begin(), *blob1.begin()) << "xi=" << xi;
  }
}

TEST(OpticsXi, HierarchyResolvedByXi) {
  // Two sub-blobs with a 5x gap inside a super-blob; second super-blob far
  // away. Small xi splits at the 5x gap; xi = 0.9 (needs a 10x drop) merges
  // the sub-blobs but still splits the huge gap.
  Rng rng(4);
  std::vector<double> positions;
  add_blob(positions, 0.0, 10, rng);
  add_blob(positions, 15.0, 10, rng);  // gap of ~5x the intra-blob spacing
  add_blob(positions, 10000.0, 10, rng);

  const OpticsResult fine = optics_xi(from_positions(positions), 2, 0.1);
  std::set<int> fine_labels;
  for (int i = 0; i < 30; ++i) fine_labels.insert(fine.labels[i]);
  fine_labels.erase(-1);
  EXPECT_GE(fine_labels.size(), 3u);

  const OpticsResult coarse = optics_xi(from_positions(positions), 2, 0.9);
  // At xi=0.9 the two nearby sub-blobs share a label.
  std::set<int> super0;
  for (int i = 0; i < 20; ++i) super0.insert(coarse.labels[i]);
  std::set<int> super1;
  for (int i = 20; i < 30; ++i) super1.insert(coarse.labels[i]);
  EXPECT_EQ(super0.size(), 1u);
  EXPECT_EQ(super1.size(), 1u);
  EXPECT_NE(*super0.begin(), *super1.begin());
}

TEST(OpticsXi, UniformDataOneClusterAtHighXi) {
  // Grid-spaced points with +-20% jitter: noisy, but no 10x drops, so
  // xi = 0.9 sees one cluster.
  Rng rng(5);
  std::vector<double> positions;
  add_blob(positions, 0.0, 40, rng, /*jitter=*/0.2);
  const OpticsResult result = optics_xi(from_positions(positions), 2, 0.9);
  std::set<int> labels(result.labels.begin(), result.labels.end());
  labels.erase(-1);
  EXPECT_EQ(labels.size(), 1u);
  // And (nearly) all points belong to it.
  int noise = 0;
  for (const int label : result.labels) noise += label == -1 ? 1 : 0;
  EXPECT_LE(noise, 2);
}

TEST(OpticsXi, IsolatedPointIsNoise) {
  Rng rng(6);
  std::vector<double> positions;
  add_blob(positions, 0.0, 10, rng);
  positions.push_back(1e6);  // lone outlier
  const OpticsResult result = optics_xi(from_positions(positions), 2, 0.5);
  EXPECT_EQ(result.labels.back(), -1);
  EXPECT_NE(result.labels.front(), -1);
}

TEST(OpticsXi, PairIsAValidCluster) {
  // n_min = 2 means two isolated-but-mutually-close IPs form a cluster.
  const std::vector<double> positions{0.0, 0.5, 1000.0, 1000.5};
  const OpticsResult result = optics_xi(from_positions(positions), 2, 0.5);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[2], result.labels[3]);
  EXPECT_NE(result.labels[0], -1);
  EXPECT_NE(result.labels[2], -1);
  EXPECT_NE(result.labels[0], result.labels[2]);
}

TEST(OpticsXi, SinglePoint) {
  const OpticsResult result = optics_xi(DistanceMatrix(1), 2, 0.5);
  ASSERT_EQ(result.labels.size(), 1u);
  EXPECT_EQ(result.labels[0], -1);
  EXPECT_EQ(result.cluster_count, 0);
}

TEST(OpticsXi, Deterministic) {
  Rng rng(8);
  const auto positions = two_blobs(20, 50.0, rng);
  const OpticsResult a = optics_xi(from_positions(positions), 2, 0.3);
  const OpticsResult b = optics_xi(from_positions(positions), 2, 0.3);
  EXPECT_EQ(a.ordering, b.ordering);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(OpticsXi, Validation) {
  EXPECT_THROW(optics_xi(DistanceMatrix(3), 1, 0.5), Error);
  EXPECT_THROW(optics_xi(DistanceMatrix(3), 2, 0.0), Error);
  EXPECT_THROW(optics_xi(DistanceMatrix(3), 2, 1.0), Error);
}

TEST(OpticsXi, LabelsConsistentWithClusterCount) {
  Rng rng(9);
  const auto positions = two_blobs(12, 30.0, rng);
  const OpticsResult result = optics_xi(from_positions(positions), 2, 0.2);
  for (const int label : result.labels) {
    EXPECT_GE(label, -1);
    EXPECT_LT(label, result.cluster_count);
  }
  // Every label in [0, count) is used by at least min_pts points.
  std::map<int, int> sizes;
  for (const int label : result.labels) {
    if (label >= 0) ++sizes[label];
  }
  EXPECT_EQ(static_cast<int>(sizes.size()), result.cluster_count);
  for (const auto& [label, size] : sizes) {
    (void)label;
    EXPECT_GE(size, 2);
  }
}

TEST(ReextractXi, MatchesFreshComputation) {
  Rng rng(10);
  const auto positions = two_blobs(15, 80.0, rng);
  const DistanceMatrix matrix = from_positions(positions);
  OpticsResult shared;
  optics_order(matrix, 2, shared);
  for (const double xi : {0.1, 0.5, 0.9}) {
    reextract_xi(shared, 2, xi);
    const OpticsResult fresh = optics_xi(matrix, 2, xi);
    EXPECT_EQ(shared.labels, fresh.labels) << "xi=" << xi;
    EXPECT_EQ(shared.cluster_count, fresh.cluster_count) << "xi=" << xi;
  }
}

class XiSweep : public ::testing::TestWithParam<double> {};

TEST_P(XiSweep, ClusterCountNonIncreasingInXiOnNestedData) {
  // Property: on hierarchical data, a larger xi can only merge clusters.
  Rng rng(11);
  std::vector<double> positions;
  for (int blob = 0; blob < 4; ++blob) {
    add_blob(positions, blob * 50.0, 8, rng);
  }
  const double xi = GetParam();
  if (xi + 0.2 >= 1.0) return;
  const OpticsResult fine = optics_xi(from_positions(positions), 2, xi);
  const OpticsResult coarse = optics_xi(from_positions(positions), 2, xi + 0.2);
  EXPECT_GE(fine.cluster_count, coarse.cluster_count);
}

INSTANTIATE_TEST_SUITE_P(Sweep, XiSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5, 0.7));

}  // namespace
}  // namespace repro
