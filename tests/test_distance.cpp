#include "cluster/distance.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(TrimmedManhattan, NoTrimIsPlainMean) {
  const double a[] = {1.0, 2.0, 3.0, 4.0};
  const double b[] = {2.0, 2.0, 5.0, 0.0};
  // |diffs| = {1, 0, 2, 4}, mean = 1.75
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.0), 1.75);
}

TEST(TrimmedManhattan, TrimDropsLargestDiscrepancies) {
  const double a[] = {0.0, 0.0, 0.0, 0.0, 0.0};
  const double b[] = {1.0, 1.0, 1.0, 1.0, 100.0};
  // 20% trim drops one coordinate: the 100 outlier.
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.2), 1.0);
}

TEST(TrimmedManhattan, IdenticalVectorsZero) {
  const double a[] = {5.0, 6.0, 7.0};
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, a, 0.2), 0.0);
}

TEST(TrimmedManhattan, Symmetric) {
  const double a[] = {1.0, 5.0, 9.0, 2.0};
  const double b[] = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.2), trimmed_manhattan(b, a, 0.2));
}

TEST(TrimmedManhattan, Validation) {
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW(trimmed_manhattan(a, b, 0.2), Error);
  EXPECT_THROW(trimmed_manhattan({}, {}, 0.2), Error);
  EXPECT_THROW(trimmed_manhattan(a, a, 1.0), Error);
  EXPECT_THROW(trimmed_manhattan(a, a, -0.1), Error);
}

class TrimSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrimSweep, MoreTrimNeverIncreasesDistance) {
  // Property: trimming removes the largest diffs, so the trimmed mean is
  // non-increasing in the trim fraction.
  const double a[] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const double b[] = {1.0, 3.0, 2.0, 9.0, 4.0, 2.5, 8.0, 0.5, 1.5, 6.0};
  const double trim = GetParam();
  if (trim + 0.1 >= 1.0) return;
  EXPECT_GE(trimmed_manhattan(a, b, trim), trimmed_manhattan(a, b, trim + 0.1));
}

INSTANTIATE_TEST_SUITE_P(Fractions, TrimSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8));

TEST(DistanceMatrix, SymmetricStorage) {
  DistanceMatrix matrix(4);
  matrix.set(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(3, 1), 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(2, 2), 0.0);
}

TEST(DistanceMatrix, Validation) {
  DistanceMatrix matrix(3);
  EXPECT_THROW(matrix.at(0, 3), Error);
  EXPECT_THROW(matrix.set(1, 1, 1.0), Error);
  EXPECT_THROW(matrix.set(0, 1, -1.0), Error);
  EXPECT_THROW(DistanceMatrix(0), Error);
}

TEST(DistanceMatrix, AllPairsIndependent) {
  DistanceMatrix matrix(5);
  double value = 1.0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) matrix.set(i, j, value++);
  }
  value = 1.0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), value++);
    }
  }
}

TEST(PairwiseDistances, MatchesDirectComputation) {
  // 3 rows x 4 cols.
  const std::vector<double> table{
      1.0, 2.0, 3.0, 4.0,   // row 0
      1.0, 2.0, 3.0, 4.0,   // row 1 (identical to 0)
      5.0, 5.0, 5.0, 5.0};  // row 2
  const DistanceMatrix matrix = pairwise_distances(table, 3, 4, 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 2), (4.0 + 3.0 + 2.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(matrix.at(1, 2), matrix.at(0, 2));
}

TEST(PairwiseDistances, Validation) {
  const std::vector<double> table{1.0, 2.0};
  EXPECT_THROW(pairwise_distances(table, 2, 2, 0.2), Error);
  EXPECT_THROW(pairwise_distances(table, 0, 2, 0.2), Error);
}

}  // namespace
}  // namespace repro
