#include "cluster/distance.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace repro {
namespace {

TEST(TrimmedManhattan, NoTrimIsPlainMean) {
  const double a[] = {1.0, 2.0, 3.0, 4.0};
  const double b[] = {2.0, 2.0, 5.0, 0.0};
  // |diffs| = {1, 0, 2, 4}, mean = 1.75
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.0), 1.75);
}

TEST(TrimmedManhattan, TrimDropsLargestDiscrepancies) {
  const double a[] = {0.0, 0.0, 0.0, 0.0, 0.0};
  const double b[] = {1.0, 1.0, 1.0, 1.0, 100.0};
  // 20% trim drops one coordinate: the 100 outlier.
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.2), 1.0);
}

TEST(TrimmedManhattan, IdenticalVectorsZero) {
  const double a[] = {5.0, 6.0, 7.0};
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, a, 0.2), 0.0);
}

TEST(TrimmedManhattan, Symmetric) {
  const double a[] = {1.0, 5.0, 9.0, 2.0};
  const double b[] = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(trimmed_manhattan(a, b, 0.2), trimmed_manhattan(b, a, 0.2));
}

TEST(TrimmedManhattan, Validation) {
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW(trimmed_manhattan(a, b, 0.2), Error);
  EXPECT_THROW(trimmed_manhattan({}, {}, 0.2), Error);
  EXPECT_THROW(trimmed_manhattan(a, a, 1.0), Error);
  EXPECT_THROW(trimmed_manhattan(a, a, -0.1), Error);
}

class TrimSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrimSweep, MoreTrimNeverIncreasesDistance) {
  // Property: trimming removes the largest diffs, so the trimmed mean is
  // non-increasing in the trim fraction.
  const double a[] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const double b[] = {1.0, 3.0, 2.0, 9.0, 4.0, 2.5, 8.0, 0.5, 1.5, 6.0};
  const double trim = GetParam();
  if (trim + 0.1 >= 1.0) return;
  EXPECT_GE(trimmed_manhattan(a, b, trim), trimmed_manhattan(a, b, trim + 0.1));
}

INSTANTIATE_TEST_SUITE_P(Fractions, TrimSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8));

// Randomized property tests: the distance must behave like a (pseudo-)metric
// on arbitrary latency-like vectors, not just the hand-picked cases above.
TEST(TrimmedManhattan, RandomizedProperties) {
  Rng rng(20230711);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.next() % 64);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(0.0, 300.0);
      b[i] = rng.uniform(0.0, 300.0);
    }
    const double trim = rng.uniform(0.0, 0.9);

    const double d = trimmed_manhattan(a, b, trim);
    // Non-negativity, symmetry (bit-exact: same diffs, same order), and
    // identity of indiscernibles.
    EXPECT_GE(d, 0.0);
    EXPECT_EQ(d, trimmed_manhattan(b, a, trim));
    EXPECT_EQ(trimmed_manhattan(a, a, trim), 0.0);

    // Monotone non-increasing in the trim fraction: more trimming can only
    // remove the largest coordinate discrepancies.
    double previous = trimmed_manhattan(a, b, 0.0);
    for (double t = 0.1; t < 0.95; t += 0.1) {
      const double current = trimmed_manhattan(a, b, t);
      EXPECT_LE(current, previous + 1e-12) << "trim " << t;
      previous = current;
    }
  }
}

TEST(TrimmedManhattan, ScratchVariantBitIdenticalToAllocating) {
  Rng rng(4242);
  std::vector<double> scratch;  // reused across calls, like the hot path
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next() % 96);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(0.0, 300.0);
      b[i] = rng.uniform(0.0, 300.0);
    }
    const double trim = rng.uniform(0.0, 0.9);
    // Exact equality, not near: the allocating overload is specified to be
    // bit-identical to the scratch one (it delegates to the same kernel).
    EXPECT_EQ(trimmed_manhattan(a, b, trim),
              trimmed_manhattan(a, b, trim, scratch));
  }
}

TEST(DistanceMatrix, SymmetricStorage) {
  DistanceMatrix matrix(4);
  matrix.set(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(3, 1), 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(2, 2), 0.0);
}

TEST(DistanceMatrix, Validation) {
  DistanceMatrix matrix(3);
  EXPECT_THROW(matrix.at(0, 3), Error);
  EXPECT_THROW(matrix.set(1, 1, 1.0), Error);
  EXPECT_THROW(matrix.set(0, 1, -1.0), Error);
  EXPECT_THROW(DistanceMatrix(0), Error);
}

TEST(DistanceMatrix, AllPairsIndependent) {
  DistanceMatrix matrix(5);
  double value = 1.0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) matrix.set(i, j, value++);
  }
  value = 1.0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), value++);
    }
  }
}

TEST(PairwiseDistances, MatchesDirectComputation) {
  // 3 rows x 4 cols.
  const std::vector<double> table{
      1.0, 2.0, 3.0, 4.0,   // row 0
      1.0, 2.0, 3.0, 4.0,   // row 1 (identical to 0)
      5.0, 5.0, 5.0, 5.0};  // row 2
  const DistanceMatrix matrix = pairwise_distances(table, 3, 4, 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 2), (4.0 + 3.0 + 2.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(matrix.at(1, 2), matrix.at(0, 2));
}

TEST(PairwiseDistances, Validation) {
  const std::vector<double> table{1.0, 2.0};
  EXPECT_THROW(pairwise_distances(table, 2, 2, 0.2), Error);
  EXPECT_THROW(pairwise_distances(table, 0, 2, 0.2), Error);
}

}  // namespace
}  // namespace repro
