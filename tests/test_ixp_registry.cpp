#include "route/ixp_registry.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class IxpRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    registry_ = new IxpRegistry(IxpRegistry::build(*net_, IxpRegistryConfig{}));
  }
  static void TearDownTestSuite() {
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static IxpRegistry* registry_;
};

Internet* IxpRegistryTest::net_ = nullptr;
IxpRegistry* IxpRegistryTest::registry_ = nullptr;

TEST_F(IxpRegistryTest, PeeringLansRecognized) {
  for (const Ixp& ixp : net_->ixps) {
    EXPECT_TRUE(registry_->is_ixp_lan(ixp.peering_lan.at(0)));
    EXPECT_TRUE(registry_->is_ixp_lan(ixp.peering_lan.last()));
  }
}

TEST_F(IxpRegistryTest, NonLanAddressesRejected) {
  EXPECT_FALSE(registry_->is_ixp_lan(Ipv4::parse("8.8.8.8")));
  for (const AsIndex isp : net_->access_isps()) {
    EXPECT_FALSE(registry_->is_ixp_lan(net_->ases[isp].infra.pool().at(5)));
    break;
  }
}

TEST_F(IxpRegistryTest, PortLookupsMatchGroundTruth) {
  std::size_t checked = 0;
  for (const Ixp& ixp : net_->ixps) {
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const Ipv4 address = ixp.peering_lan.at(offset);
      const auto truth = net_->ixp_port_of_ip(address);
      const auto mapped = registry_->port_lookup(address);
      if (!truth) {
        EXPECT_FALSE(mapped.has_value());
        continue;
      }
      if (mapped) {
        EXPECT_EQ(mapped->ixp, truth->ixp);
        EXPECT_EQ(mapped->member_asn, net_->ases[truth->member].asn);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST_F(IxpRegistryTest, CoverageBetweenSources) {
  std::size_t ports = 0;
  std::size_t known = 0;
  std::size_t euroix = 0;
  for (const Ixp& ixp : net_->ixps) {
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const Ipv4 address = ixp.peering_lan.at(offset);
      if (!net_->ixp_port_of_ip(address)) continue;
      ++ports;
      const auto mapped = registry_->port_lookup(address);
      if (!mapped) continue;
      ++known;
      if (mapped->source == IxpDataSource::kEuroIx) ++euroix;
    }
  }
  ASSERT_GT(ports, 30u);
  const double coverage = static_cast<double>(known) / ports;
  // euroix 0.85 + peeringdb 0.6 of the rest => ~0.94 total.
  EXPECT_GT(coverage, 0.85);
  EXPECT_LT(coverage, 1.0);
  // Euro-IX takes precedence and covers the bulk.
  EXPECT_GT(static_cast<double>(euroix) / known, 0.7);
}

TEST_F(IxpRegistryTest, FullCoverageConfig) {
  IxpRegistryConfig config;
  config.euroix_coverage = 1.0;
  const IxpRegistry complete = IxpRegistry::build(*net_, config);
  for (const Ixp& ixp : net_->ixps) {
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const Ipv4 address = ixp.peering_lan.at(offset);
      if (!net_->ixp_port_of_ip(address)) continue;
      EXPECT_TRUE(complete.port_lookup(address).has_value());
    }
  }
}

TEST_F(IxpRegistryTest, DeterministicBuild) {
  const IxpRegistry again = IxpRegistry::build(*net_, IxpRegistryConfig{});
  EXPECT_EQ(again.known_ports(), registry_->known_ports());
}

}  // namespace
}  // namespace repro
