#include "topology/internet.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

/// Minimal hand-assembled world for container-level tests.
class InternetContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metro metro;
    metro.name = "test-metro";
    metro.iata = "tst";
    metro.country = 0;
    metro_ = net_.add_metro(metro);

    Facility facility;
    facility.name = "test-colo";
    facility.kind = FacilityKind::kColocation;
    facility.metro = metro_;
    facility_ = net_.add_facility(facility);

    as_a_ = add_as(65001, AsTier::kAccess);
    as_b_ = add_as(65002, AsTier::kTransit);
  }

  AsIndex add_as(AsNumber asn, AsTier tier) {
    As as;
    as.asn = asn;
    as.name = "AS" + std::to_string(asn);
    as.tier = tier;
    as.country = 0;
    as.metros = {metro_};
    as.primary_metro = metro_;
    as.infra = PrefixAllocator(Prefix(Ipv4(0x0a000000u + asn * 0x10000u), 16));
    const AsIndex index = net_.add_as(std::move(as));
    net_.announce(index, net_.ases[index].infra.pool());
    return index;
  }

  Internet net_;
  MetroIndex metro_{};
  FacilityIndex facility_{};
  AsIndex as_a_{};
  AsIndex as_b_{};
};

TEST_F(InternetContainerTest, IndicesAssignedSequentially) {
  EXPECT_EQ(net_.metros[metro_].index, metro_);
  EXPECT_EQ(net_.facilities[facility_].index, facility_);
  EXPECT_EQ(net_.ases[as_a_].index, as_a_);
}

TEST_F(InternetContainerTest, DuplicateAsnRejected) {
  As duplicate;
  duplicate.asn = 65001;
  duplicate.name = "dup";
  duplicate.country = 0;
  EXPECT_THROW(net_.add_as(std::move(duplicate)), Error);
}

TEST_F(InternetContainerTest, ZeroAsnRejected) {
  As zero;
  zero.asn = 0;
  zero.country = 0;
  EXPECT_THROW(net_.add_as(std::move(zero)), Error);
}

TEST_F(InternetContainerTest, SelfLinkRejected) {
  InterdomainLink link;
  link.a = as_a_;
  link.b = as_a_;
  EXPECT_THROW(net_.add_link(link), Error);
}

TEST_F(InternetContainerTest, DanglingLinkRejected) {
  InterdomainLink link;
  link.a = as_a_;
  link.b = 999;
  EXPECT_THROW(net_.add_link(link), Error);
}

TEST_F(InternetContainerTest, TransitLinkWiresRoles) {
  InterdomainLink link;
  link.kind = LinkKind::kTransit;
  link.a = as_a_;  // customer
  link.b = as_b_;  // provider
  const LinkIndex li = net_.add_link(link);
  ASSERT_EQ(net_.ases[as_a_].provider_links.size(), 1u);
  EXPECT_EQ(net_.ases[as_a_].provider_links.front(), li);
  ASSERT_EQ(net_.ases[as_b_].customer_links.size(), 1u);
  EXPECT_TRUE(net_.ases[as_a_].peer_links.empty());
}

TEST_F(InternetContainerTest, PeerLinkWiresBothSides) {
  InterdomainLink link;
  link.kind = LinkKind::kPrivatePeering;
  link.a = as_a_;
  link.b = as_b_;
  net_.add_link(link);
  EXPECT_TRUE(net_.has_peering(as_a_, as_b_));
  EXPECT_TRUE(net_.has_peering(as_b_, as_a_));
  EXPECT_EQ(net_.peers_of(as_a_), std::vector<AsIndex>{as_b_});
}

TEST_F(InternetContainerTest, PeeringLinksBetweenFindsParallels) {
  InterdomainLink pni;
  pni.kind = LinkKind::kPrivatePeering;
  pni.a = as_a_;
  pni.b = as_b_;
  const LinkIndex first = net_.add_link(pni);
  const LinkIndex second = net_.add_link(pni);
  const auto parallel = net_.peering_links_between(as_a_, as_b_);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(parallel[0], first);
  EXPECT_EQ(parallel[1], second);
  EXPECT_TRUE(net_.peering_links_between(as_a_, as_a_).empty());
}

TEST_F(InternetContainerTest, IpToAsAttribution) {
  EXPECT_EQ(net_.as_of_ip(net_.ases[as_a_].infra.pool().at(5)), as_a_);
  EXPECT_EQ(net_.as_of_ip(Ipv4::parse("203.0.113.1")), std::nullopt);
}

TEST_F(InternetContainerTest, AsnLookup) {
  EXPECT_EQ(net_.as_by_asn(65001), as_a_);
  EXPECT_EQ(net_.find_as_by_asn(65001), as_a_);
  EXPECT_EQ(net_.find_as_by_asn(1), std::nullopt);
  EXPECT_THROW(net_.as_by_asn(1), NotFoundError);
}

TEST_F(InternetContainerTest, IxpPortRegistration) {
  Ixp ixp;
  ixp.name = "test-ix";
  ixp.metro = metro_;
  ixp.facility = facility_;
  ixp.peering_lan = Prefix::parse("198.32.0.0/22");
  const IxpIndex ii = net_.add_ixp(ixp);
  const Ipv4 port = Ipv4::parse("198.32.0.7");
  net_.register_ixp_port(port, ii, as_a_);
  const auto info = net_.ixp_port_of_ip(port);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->ixp, ii);
  EXPECT_EQ(info->member, as_a_);
  EXPECT_EQ(net_.ixp_port_of_ip(Ipv4::parse("198.32.0.8")), std::nullopt);
  EXPECT_THROW(net_.register_ixp_port(port, 99, as_a_), Error);
}

TEST_F(InternetContainerTest, HostingOptionsIncludeOwnAndColo) {
  Facility own;
  own.name = "own-pop";
  own.kind = FacilityKind::kIspOwned;
  own.metro = metro_;
  own.owner_asn = 65001;
  const FacilityIndex fi = net_.add_facility(own);
  net_.ases[as_a_].facilities.push_back(fi);

  const auto options = net_.hosting_options(as_a_, metro_);
  ASSERT_EQ(options.size(), 2u);
  EXPECT_EQ(options[0], facility_);  // colo created first
  EXPECT_EQ(options[1], fi);
}

TEST_F(InternetContainerTest, BadIndicesThrow) {
  EXPECT_THROW(net_.country_of_as(12345), Error);
  EXPECT_THROW(net_.metro_of_facility(12345), Error);
  EXPECT_THROW(net_.hosting_options(12345, metro_), Error);
  EXPECT_THROW(net_.peers_of(12345), Error);
  Facility bad;
  bad.metro = 42;
  EXPECT_THROW(net_.add_facility(bad), Error);
}

TEST_F(InternetContainerTest, AccessIspEnumeration) {
  const auto access = net_.access_isps();
  ASSERT_EQ(access.size(), 1u);
  EXPECT_EQ(access.front(), as_a_);
  net_.ases[as_a_].users = 1000.0;
  EXPECT_DOUBLE_EQ(net_.total_access_users(), 1000.0);
}

}  // namespace
}  // namespace repro
