#include "route/traceroute.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    engine_ = new RoutingEngine(*net_);
    TracerouteConfig config;
    tracer_ = new TracerouteEngine(*net_, config);
    google_ = net_->as_by_asn(kGoogleAsn);
  }
  static void TearDownTestSuite() {
    delete tracer_;
    delete engine_;
    delete net_;
  }
  static Internet* net_;
  static RoutingEngine* engine_;
  static TracerouteEngine* tracer_;
  static AsIndex google_;
};

Internet* TracerouteTest::net_ = nullptr;
RoutingEngine* TracerouteTest::engine_ = nullptr;
TracerouteEngine* TracerouteTest::tracer_ = nullptr;
AsIndex TracerouteTest::google_ = 0;

Ipv4 user_ip(const Internet& net, AsIndex isp) {
  return net.ases[isp].user_prefixes.front().at(1);
}

TEST_F(TracerouteTest, HopsFollowAsPathOrder) {
  const AsIndex target = net_->access_isps().front();
  const RoutingTable table = engine_->routes_to(target);
  const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
  ASSERT_FALSE(trace.hops.empty());

  // True owners must appear in AS-path order (with repeats for intra-AS).
  const auto as_path = table.as_path(google_);
  std::size_t position = 0;
  for (const TracerouteHop& hop : trace.hops) {
    while (position < as_path.size() && as_path[position] != hop.true_owner) {
      ++position;
    }
    ASSERT_LT(position, as_path.size())
        << "hop owner not on (or out of order with) the AS path";
  }
}

TEST_F(TracerouteTest, ResponsiveHopsCarryOwnersAddress) {
  int checked = 0;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
    for (const TracerouteHop& hop : trace.hops) {
      if (!hop.ip) continue;
      const auto ixp = net_->ixp_port_of_ip(*hop.ip);
      if (ixp) {
        EXPECT_EQ(ixp->member, hop.true_owner);
      } else {
        const auto owner = net_->as_of_ip(*hop.ip);
        ASSERT_TRUE(owner.has_value());
        EXPECT_EQ(*owner, hop.true_owner);
      }
      ++checked;
    }
    if (checked > 100) break;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(TracerouteTest, IxpCrossingsShowPeeringLanAddress) {
  // Find a target whose best path from Google crosses an IXP link.
  int found = 0;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const auto links = table.link_path(google_);
    bool crosses_ixp = false;
    for (const LinkIndex li : links) {
      if (net_->links[li].kind == LinkKind::kIxpPeering) crosses_ixp = true;
    }
    if (!crosses_ixp) continue;
    const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
    bool saw_lan_address = false;
    for (const TracerouteHop& hop : trace.hops) {
      if (hop.ip && net_->ixp_port_of_ip(*hop.ip)) saw_lan_address = true;
    }
    // The LAN address only shows if that router responds; count across
    // multiple targets.
    found += saw_lan_address ? 1 : 0;
    if (found >= 3) break;
  }
  EXPECT_GE(found, 1) << "no IXP crossing surfaced a peering-LAN address";
}

TEST_F(TracerouteTest, SilentAsYieldsAllStars) {
  // Find an AS the engine marks silent that appears on some path.
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const auto as_path = table.as_path(google_);
    for (const AsIndex as : as_path) {
      if (as == google_ || as == target) continue;
      if (!tracer_->as_silent(as)) continue;
      const Traceroute trace =
          tracer_->trace(google_, user_ip(*net_, target), table);
      for (const TracerouteHop& hop : trace.hops) {
        if (hop.true_owner == as) EXPECT_FALSE(hop.ip.has_value());
      }
      return;
    }
  }
  GTEST_SKIP() << "no silent AS on probed paths in tiny world";
}

TEST_F(TracerouteTest, UnreachableDestinationYieldsEmpty) {
  // A routing table towards an AS gives empty paths only if unreachable;
  // in the generated world everything is reachable, so simulate by asking
  // for a path from an AS to itself -- the traceroute is just the host.
  const AsIndex target = net_->access_isps().front();
  const RoutingTable table = engine_->routes_to(target);
  const Traceroute self = tracer_->trace(target, user_ip(*net_, target), table);
  ASSERT_GE(self.hops.size(), 1u);
  EXPECT_EQ(self.hops.back().true_owner, target);
}

TEST_F(TracerouteTest, DestinationRespondsPersistently) {
  const AsIndex target = net_->access_isps()[1];
  const RoutingTable table = engine_->routes_to(target);
  const Ipv4 dst = user_ip(*net_, target);
  const Traceroute a = tracer_->trace(google_, dst, table, 1);
  const Traceroute b = tracer_->trace(google_, dst, table, 2);
  EXPECT_EQ(a.destination_reached, b.destination_reached);
}

TEST_F(TracerouteTest, FlowsVaryRouterInterfaces) {
  const AsIndex target = net_->access_isps()[2];
  const RoutingTable table = engine_->routes_to(target);
  const Ipv4 dst = user_ip(*net_, target);
  bool any_difference = false;
  for (std::uint64_t flow = 1; flow <= 8 && !any_difference; ++flow) {
    const Traceroute a = tracer_->trace(google_, dst, table, 0);
    const Traceroute b = tracer_->trace(google_, dst, table, flow);
    if (a.hops.size() != b.hops.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < a.hops.size(); ++i) {
      if (a.hops[i].ip != b.hops[i].ip) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TracerouteTest, RouterIpsComeFromInfraBlock) {
  const AsIndex as = net_->access_isps().front();
  for (std::uint64_t slot = 0; slot < 10; ++slot) {
    EXPECT_TRUE(net_->ases[as].infra.pool().contains(tracer_->router_ip(as, slot)));
  }
}

TEST_F(TracerouteTest, RouterSilenceDeterministic) {
  const AsIndex as = net_->access_isps().front();
  const Ipv4 router = tracer_->router_ip(as, 3);
  EXPECT_EQ(tracer_->router_silent(as, router), tracer_->router_silent(as, router));
}

// ---------------------------------------------------------- flap faults --

bool same_trace(const Traceroute& a, const Traceroute& b) {
  if (a.destination_reached != b.destination_reached) return false;
  if (a.flap_detoured != b.flap_detoured) return false;
  if (a.flap_truncated != b.flap_truncated) return false;
  if (a.hops.size() != b.hops.size()) return false;
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    if (a.hops[i].ip != b.hops[i].ip) return false;
    if (a.hops[i].true_owner != b.hops[i].true_owner) return false;
  }
  return true;
}

TEST_F(TracerouteTest, ZeroFlapRateBitIdenticalToCleanEngine) {
  // A nonzero fault seed with a zero flap rate must not perturb a single
  // hop: the fault path is only entered when the rate is positive.
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.0;
  const TracerouteEngine armed(*net_, config);
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const Ipv4 dst = user_ip(*net_, target);
    for (std::uint64_t flow = 0; flow < 3; ++flow) {
      EXPECT_TRUE(same_trace(tracer_->trace(google_, dst, table, flow),
                             armed.trace(google_, dst, table, flow)));
    }
  }
}

TEST_F(TracerouteTest, FlapWalkMatchesCleanTraceWhenNothingFlaps) {
  // The flapped walk is a different code path (hop-by-hop forwarding walk
  // instead of a materialized path); on a path with no flap-prone AS it
  // must still emit exactly what trace() emits.
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.3;
  const TracerouteEngine flapped(*net_, config);
  int compared = 0;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    bool any_flapping = flapped.as_flapping(target);
    for (const AsIndex as : table.as_path(google_)) {
      if (flapped.as_flapping(as)) any_flapping = true;
    }
    if (any_flapping) continue;
    const Ipv4 dst = user_ip(*net_, target);
    EXPECT_TRUE(same_trace(tracer_->trace(google_, dst, table, 7),
                           flapped.trace(google_, dst, table, 7)));
    ++compared;
  }
  EXPECT_GT(compared, 0) << "every probed path had a flap-prone AS";
}

TEST_F(TracerouteTest, FlapVariesPathsAcrossProbeTimes) {
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.9;
  config.flap_period = 2;
  const TracerouteEngine flapped(*net_, config);
  bool saw_flap_effect = false;
  bool saw_disagreement = false;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const Ipv4 dst = user_ip(*net_, target);
    Traceroute first;
    for (std::uint64_t t = 0; t < 8; ++t) {
      const Traceroute probe = flapped.trace(google_, dst, table, 7, t);
      if (probe.flap_detoured || probe.flap_truncated) saw_flap_effect = true;
      if (t == 0) {
        first = probe;
      } else if (!same_trace(first, probe)) {
        saw_disagreement = true;
      }
    }
    if (saw_flap_effect && saw_disagreement) break;
  }
  EXPECT_TRUE(saw_flap_effect) << "no probe detoured or blackholed at 0.9";
  EXPECT_TRUE(saw_disagreement) << "paths never disagreed across epochs";
}

TEST_F(TracerouteTest, FlapDeterministicPerFlowAndProbeTime) {
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.9;
  const TracerouteEngine flapped(*net_, config);
  const AsIndex target = net_->access_isps()[1];
  const RoutingTable table = engine_->routes_to(target);
  const Ipv4 dst = user_ip(*net_, target);
  for (std::uint64_t t = 0; t < 4; ++t) {
    EXPECT_TRUE(same_trace(flapped.trace(google_, dst, table, 3, t),
                           flapped.trace(google_, dst, table, 3, t)));
  }
}

TEST_F(TracerouteTest, FlappingDestinationWithdrawsAndBlackholes) {
  // A flap-down *destination* withdraws its announcement: no probe can
  // cross the final interdomain hop during a down epoch, even when every
  // forwarding AS is healthy. This is the direct-peering case -- one AS
  // hop, no intermediate AS to flap.
  TracerouteConfig config;
  config.fault_seed = 4242;
  config.flap_rate = 0.9;
  config.flap_period = 1;  // every probe_time is its own epoch
  const TracerouteEngine flapped(*net_, config);
  for (const AsIndex target : net_->access_isps()) {
    if (!flapped.as_flapping(target)) continue;
    std::uint64_t down_time = 0;
    bool found = false;
    for (std::uint64_t t = 0; t < 16 && !found; ++t) {
      if (flapped.flap_down(target, t)) {
        down_time = t;
        found = true;
      }
    }
    if (!found) continue;
    const RoutingTable table = engine_->routes_to(target);
    const Traceroute probe =
        flapped.trace(google_, user_ip(*net_, target), table, 0, down_time);
    EXPECT_FALSE(probe.destination_reached);
    EXPECT_TRUE(probe.flap_truncated);
    return;
  }
  GTEST_SKIP() << "no flap-prone destination at rate 0.9 in tiny world";
}

}  // namespace
}  // namespace repro
