#include "route/traceroute.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    engine_ = new RoutingEngine(*net_);
    TracerouteConfig config;
    tracer_ = new TracerouteEngine(*net_, config);
    google_ = net_->as_by_asn(kGoogleAsn);
  }
  static void TearDownTestSuite() {
    delete tracer_;
    delete engine_;
    delete net_;
  }
  static Internet* net_;
  static RoutingEngine* engine_;
  static TracerouteEngine* tracer_;
  static AsIndex google_;
};

Internet* TracerouteTest::net_ = nullptr;
RoutingEngine* TracerouteTest::engine_ = nullptr;
TracerouteEngine* TracerouteTest::tracer_ = nullptr;
AsIndex TracerouteTest::google_ = 0;

Ipv4 user_ip(const Internet& net, AsIndex isp) {
  return net.ases[isp].user_prefixes.front().at(1);
}

TEST_F(TracerouteTest, HopsFollowAsPathOrder) {
  const AsIndex target = net_->access_isps().front();
  const RoutingTable table = engine_->routes_to(target);
  const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
  ASSERT_FALSE(trace.hops.empty());

  // True owners must appear in AS-path order (with repeats for intra-AS).
  const auto as_path = table.as_path(google_);
  std::size_t position = 0;
  for (const TracerouteHop& hop : trace.hops) {
    while (position < as_path.size() && as_path[position] != hop.true_owner) {
      ++position;
    }
    ASSERT_LT(position, as_path.size())
        << "hop owner not on (or out of order with) the AS path";
  }
}

TEST_F(TracerouteTest, ResponsiveHopsCarryOwnersAddress) {
  int checked = 0;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
    for (const TracerouteHop& hop : trace.hops) {
      if (!hop.ip) continue;
      const auto ixp = net_->ixp_port_of_ip(*hop.ip);
      if (ixp) {
        EXPECT_EQ(ixp->member, hop.true_owner);
      } else {
        const auto owner = net_->as_of_ip(*hop.ip);
        ASSERT_TRUE(owner.has_value());
        EXPECT_EQ(*owner, hop.true_owner);
      }
      ++checked;
    }
    if (checked > 100) break;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(TracerouteTest, IxpCrossingsShowPeeringLanAddress) {
  // Find a target whose best path from Google crosses an IXP link.
  int found = 0;
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const auto links = table.link_path(google_);
    bool crosses_ixp = false;
    for (const LinkIndex li : links) {
      if (net_->links[li].kind == LinkKind::kIxpPeering) crosses_ixp = true;
    }
    if (!crosses_ixp) continue;
    const Traceroute trace = tracer_->trace(google_, user_ip(*net_, target), table);
    bool saw_lan_address = false;
    for (const TracerouteHop& hop : trace.hops) {
      if (hop.ip && net_->ixp_port_of_ip(*hop.ip)) saw_lan_address = true;
    }
    // The LAN address only shows if that router responds; count across
    // multiple targets.
    found += saw_lan_address ? 1 : 0;
    if (found >= 3) break;
  }
  EXPECT_GE(found, 1) << "no IXP crossing surfaced a peering-LAN address";
}

TEST_F(TracerouteTest, SilentAsYieldsAllStars) {
  // Find an AS the engine marks silent that appears on some path.
  for (const AsIndex target : net_->access_isps()) {
    const RoutingTable table = engine_->routes_to(target);
    const auto as_path = table.as_path(google_);
    for (const AsIndex as : as_path) {
      if (as == google_ || as == target) continue;
      if (!tracer_->as_silent(as)) continue;
      const Traceroute trace =
          tracer_->trace(google_, user_ip(*net_, target), table);
      for (const TracerouteHop& hop : trace.hops) {
        if (hop.true_owner == as) EXPECT_FALSE(hop.ip.has_value());
      }
      return;
    }
  }
  GTEST_SKIP() << "no silent AS on probed paths in tiny world";
}

TEST_F(TracerouteTest, UnreachableDestinationYieldsEmpty) {
  // A routing table towards an AS gives empty paths only if unreachable;
  // in the generated world everything is reachable, so simulate by asking
  // for a path from an AS to itself -- the traceroute is just the host.
  const AsIndex target = net_->access_isps().front();
  const RoutingTable table = engine_->routes_to(target);
  const Traceroute self = tracer_->trace(target, user_ip(*net_, target), table);
  ASSERT_GE(self.hops.size(), 1u);
  EXPECT_EQ(self.hops.back().true_owner, target);
}

TEST_F(TracerouteTest, DestinationRespondsPersistently) {
  const AsIndex target = net_->access_isps()[1];
  const RoutingTable table = engine_->routes_to(target);
  const Ipv4 dst = user_ip(*net_, target);
  const Traceroute a = tracer_->trace(google_, dst, table, 1);
  const Traceroute b = tracer_->trace(google_, dst, table, 2);
  EXPECT_EQ(a.destination_reached, b.destination_reached);
}

TEST_F(TracerouteTest, FlowsVaryRouterInterfaces) {
  const AsIndex target = net_->access_isps()[2];
  const RoutingTable table = engine_->routes_to(target);
  const Ipv4 dst = user_ip(*net_, target);
  bool any_difference = false;
  for (std::uint64_t flow = 1; flow <= 8 && !any_difference; ++flow) {
    const Traceroute a = tracer_->trace(google_, dst, table, 0);
    const Traceroute b = tracer_->trace(google_, dst, table, flow);
    if (a.hops.size() != b.hops.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < a.hops.size(); ++i) {
      if (a.hops[i].ip != b.hops[i].ip) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TracerouteTest, RouterIpsComeFromInfraBlock) {
  const AsIndex as = net_->access_isps().front();
  for (std::uint64_t slot = 0; slot < 10; ++slot) {
    EXPECT_TRUE(net_->ases[as].infra.pool().contains(tracer_->router_ip(as, slot)));
  }
}

TEST_F(TracerouteTest, RouterSilenceDeterministic) {
  const AsIndex as = net_->access_isps().front();
  const Ipv4 router = tracer_->router_ip(as, 3);
  EXPECT_EQ(tracer_->router_silent(as, router), tracer_->router_silent(as, router));
}

}  // namespace
}  // namespace repro
