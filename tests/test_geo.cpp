#include "util/geo.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

const GeoPoint kNewYork{40.71, -74.01};
const GeoPoint kLondon{51.51, -0.13};
const GeoPoint kSydney{-33.87, 151.21};

TEST(Haversine, KnownDistances) {
  // NYC <-> London is ~5570 km.
  EXPECT_NEAR(haversine_km(kNewYork, kLondon), 5570.0, 60.0);
  // London <-> Sydney is ~17000 km.
  EXPECT_NEAR(haversine_km(kLondon, kSydney), 16994.0, 170.0);
}

TEST(Haversine, ZeroAndSymmetry) {
  EXPECT_DOUBLE_EQ(haversine_km(kNewYork, kNewYork), 0.0);
  EXPECT_DOUBLE_EQ(haversine_km(kNewYork, kLondon),
                   haversine_km(kLondon, kNewYork));
}

TEST(Haversine, AntipodalIsBounded) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  // Half the Earth's circumference, ~20015 km.
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 30.0);
}

TEST(Propagation, FiberSpeed) {
  EXPECT_DOUBLE_EQ(propagation_ms(200.0), 1.0);
  EXPECT_DOUBLE_EQ(propagation_ms(0.0), 0.0);
}

TEST(MinRtt, RoundTripOfPropagation) {
  const double distance = haversine_km(kNewYork, kLondon);
  EXPECT_DOUBLE_EQ(min_rtt_ms(kNewYork, kLondon),
                   2.0 * propagation_ms(distance));
  // NYC-London light bound is ~55.7 ms RTT.
  EXPECT_NEAR(min_rtt_ms(kNewYork, kLondon), 55.7, 1.0);
}

TEST(RttPhysicallyPossible, RespectsBound) {
  const double bound = min_rtt_ms(kNewYork, kLondon);
  EXPECT_TRUE(rtt_physically_possible(kNewYork, kLondon, bound + 1.0));
  EXPECT_FALSE(rtt_physically_possible(kNewYork, kLondon, bound - 1.0));
  EXPECT_TRUE(rtt_physically_possible(kNewYork, kLondon, bound - 1.0, 2.0));
}

TEST(JitterPoint, StaysWithinRadius) {
  for (double u1 : {0.0, 0.3, 0.99}) {
    for (double u2 : {0.0, 0.5, 0.99}) {
      const GeoPoint jittered = jitter_point(kLondon, 50.0, u1, u2);
      EXPECT_LE(haversine_km(kLondon, jittered), 51.0);  // 2% slack
    }
  }
}

TEST(JitterPoint, ZeroRadiusIsIdentity) {
  const GeoPoint p = jitter_point(kSydney, 0.0, 0.7, 0.2);
  EXPECT_NEAR(p.latitude_deg, kSydney.latitude_deg, 1e-9);
  EXPECT_NEAR(p.longitude_deg, kSydney.longitude_deg, 1e-9);
}

TEST(JitterPoint, DeterministicInDraws) {
  const GeoPoint a = jitter_point(kLondon, 30.0, 0.4, 0.6);
  const GeoPoint b = jitter_point(kLondon, 30.0, 0.4, 0.6);
  EXPECT_EQ(a, b);
}

TEST(GeoToString, Format) {
  EXPECT_EQ(to_string(GeoPoint{1.5, -2.25}), "1.5000,-2.2500");
}

}  // namespace
}  // namespace repro
