// Tests for the observability layer: span nesting/ordering, histogram
// percentile correctness on known distributions, counter thread-safety
// under a std::thread fan-out, and the run_report.json round-trip through
// the bundled JSON parser.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace repro::obs {
namespace {

/// Enables tracing and clears global state around each test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing(true);
    tracer().reset();
    metrics().reset();
  }
  void TearDown() override {
    set_tracing(false);
    tracer().reset();
    metrics().reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOrdering) {
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan first("first-child");
      ScopedSpan grandchild("grandchild");
    }
    ScopedSpan second("second-child");
  }
  ScopedSpan root2("second-root");

  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 5u);

  // Ids are assigned in open order and parents always precede children.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[0].depth, 0);

  EXPECT_EQ(spans[1].name, "first-child");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1);

  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2);

  EXPECT_EQ(spans[3].name, "second-child");
  EXPECT_EQ(spans[3].parent, 0u);
  EXPECT_EQ(spans[3].depth, 1);

  EXPECT_EQ(spans[4].name, "second-root");
  EXPECT_EQ(spans[4].parent, kNoSpan);

  // The first four spans are closed with sane timings; the fifth is open.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(spans[i].closed) << i;
    EXPECT_GE(spans[i].wall_ms, 0.0) << i;
  }
  EXPECT_FALSE(spans[4].closed);
  // A child cannot outlast its parent.
  EXPECT_LE(spans[1].wall_ms, spans[0].wall_ms + 1e-6);
  EXPECT_LE(spans[2].wall_ms, spans[1].wall_ms + 1e-6);
  // Siblings are ordered in time.
  EXPECT_LE(spans[1].start_ms, spans[3].start_ms);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  set_tracing(false);
  {
    ScopedSpan span("invisible");
    ScopedTimer timer("invisible_ms");
  }
  EXPECT_TRUE(tracer().spans().empty());
  EXPECT_EQ(metrics().snapshot().histograms.size(), 0u);
}

TEST_F(ObsTest, SpanDurationsFeedHistogramApi) {
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("repeated-stage");
  }
  Histogram& h = metrics().histogram("span.repeated-stage");
  EXPECT_EQ(h.count(), 5u);
  EXPECT_GE(h.p50(), 0.0);
  EXPECT_GE(h.p99(), h.p50());
}

TEST_F(ObsTest, HistogramPercentilesUniform) {
  // 1..1000 with unit-width buckets: percentiles must be near-exact.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1000.0; b += 1.0) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0 * 1001.0 / 2.0);
  EXPECT_NEAR(h.percentile(50.0), 500.0, 2.0);
  EXPECT_NEAR(h.percentile(90.0), 900.0, 2.0);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 2.0);
  // The extremes are exact (clamped to observed min/max).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
}

TEST_F(ObsTest, HistogramPercentilesConstantAndEmpty) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.percentile(50.0), 0.0);  // empty

  for (int i = 0; i < 50; ++i) h.record(42.0);
  // All mass in one bucket, min == max == 42: every percentile is exact.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
}

TEST_F(ObsTest, HistogramBucketsAndOverflow) {
  Histogram h({1.0, 2.0});
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(1.5);   // bucket 1 (<= 2)
  h.record(99.0);  // overflow bucket
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_EQ(snap.buckets[0].second, 1u);
  EXPECT_EQ(snap.buckets[1].second, 1u);
  EXPECT_EQ(snap.buckets[2].second, 1u);
  EXPECT_TRUE(std::isinf(snap.buckets[2].first));
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST_F(ObsTest, CountersAndHistogramsAreThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Lookup through the registry on purpose: the lookup path must be
        // thread-safe too, not just the increment.
        metrics().counter("threads.ops").add(1);
        metrics().histogram("threads.latency_ms").record(0.5);
      }
      metrics().gauge("threads.done").set(1.0);
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(metrics().counter("threads.ops").value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(metrics().histogram("threads.latency_ms").count(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(metrics().gauge("threads.done").value(), 1.0);
}

TEST_F(ObsTest, CachedCounterSurvivesResetAndThreads) {
  CachedCounter cached("cached.hits");
  cached.add(2);
  EXPECT_EQ(metrics().counter("cached.hits").value(), 2u);

  // reset() drops the underlying counter; the handle must re-resolve into
  // the new one instead of writing through the stale pointer.
  metrics().reset();
  cached.add(3);
  EXPECT_EQ(metrics().counter("cached.hits").value(), 3u);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cached] {
      for (int i = 0; i < kOpsPerThread; ++i) cached.add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(metrics().counter("cached.hits").value(),
            3u + static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST_F(ObsTest, ProductionCountersExactUnderParallelFor) {
  // Regression test for the counters bumped on thread-pool workers during
  // the clustering fan-out (mlab/filters and the ping-mesh reprobe path):
  // concurrent increments through CachedCounter handles must never lose an
  // add, so the totals are invariant under any interleaving.
  CachedCounter nonfinite("filters.nonfinite_leaked");
  CachedCounter reprobe_rounds("mlab.reprobe_rounds");
  CachedCounter reprobe_recovered("mlab.reprobe_recovered");

  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kOpsPerTask = 5000;
  parallel_for(
      kTasks,
      [&](std::size_t) {
        for (std::uint64_t i = 0; i < kOpsPerTask; ++i) {
          nonfinite.add(1);
          reprobe_rounds.add(2);
        }
        reprobe_recovered.add(1);
      },
      8);

  EXPECT_EQ(metrics().counter("filters.nonfinite_leaked").value(),
            kTasks * kOpsPerTask);
  EXPECT_EQ(metrics().counter("mlab.reprobe_rounds").value(),
            2 * kTasks * kOpsPerTask);
  EXPECT_EQ(metrics().counter("mlab.reprobe_recovered").value(), kTasks);
}

TEST_F(ObsTest, BenchJsonLineCarriesHealthVerdicts) {
  // The bench harness footer splices StageHealth verdicts into every
  // BENCH_<name>.json line; the line must stay parseable and the fields
  // must reflect the worst stage.
  std::map<std::string, fault::StageHealth> stages;
  stages["ping_mesh"] = fault::StageHealth{};
  fault::StageHealth degraded;
  degraded.status = fault::StageStatus::kDegraded;
  degraded.dropped = 3;
  degraded.total = 10;
  stages["clustering"] = degraded;

  const std::string line =
      bench::bench_json_line("smoke", 1.25, bench::health_json_fields(stages));
  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.at("bench").str(), "smoke");
  ASSERT_TRUE(doc.contains("health"));
  EXPECT_EQ(doc.at("health").str(), "degraded");
  ASSERT_TRUE(doc.contains("stages"));
  EXPECT_EQ(doc.at("stages").at("ping_mesh").str(), "ok");
  EXPECT_EQ(doc.at("stages").at("clustering").str(), "degraded");

  // An empty map (harness without a pipeline) reads as a clean run.
  const JsonValue clean =
      parse_json(bench::bench_json_line("smoke", 0.5, bench::health_json_fields({})));
  EXPECT_EQ(clean.at("health").str(), "ok");
  EXPECT_EQ(clean.at("stages").size(), 0u);
}

TEST_F(ObsTest, SpansAcrossThreadsBecomeRoots) {
  {
    ScopedSpan main_span("main-thread");
    std::thread([] { ScopedSpan worker("worker-thread"); }).join();
  }
  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 2u);
  // The worker did not inherit the main thread's open span.
  EXPECT_EQ(spans[1].name, "worker-thread");
  EXPECT_EQ(spans[1].parent, kNoSpan);
}

TEST_F(ObsTest, JsonParserHandlesTheBasics) {
  const JsonValue doc = parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": "va\"l\nue"}, "t": true,
          "f": false, "n": null})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).number(), 2.5);
  EXPECT_DOUBLE_EQ(doc.at("a").at(2).number(), -300.0);
  EXPECT_EQ(doc.at("b").at("nested").str(), "va\"l\nue");
  EXPECT_TRUE(doc.at("t").boolean());
  EXPECT_FALSE(doc.at("f").boolean());
  EXPECT_TRUE(doc.at("n").is_null());
  EXPECT_FALSE(doc.contains("missing"));

  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{} trailing"), ParseError);
  EXPECT_THROW(parse_json("nul"), ParseError);

  // Escape round-trip through our own emitter.
  const std::string ugly = "quote\" slash\\ newline\n tab\t ctrl\x01";
  const JsonValue echoed =
      parse_json("{\"s\": \"" + json_escape(ugly) + "\"}");
  EXPECT_EQ(echoed.at("s").str(), ugly);
}

TEST_F(ObsTest, RunReportJsonRoundTrip) {
  {
    ScopedSpan stage("report-stage");
    ScopedSpan inner("report-inner");
  }
  metrics().counter("report.widgets").add(7);
  metrics().gauge("report.level").set(2.5);
  Histogram& h = metrics().histogram("report.latency_ms", {1.0, 10.0, 100.0});
  h.record(5.0);
  h.record(50.0);

  const std::string json = run_report_json();
  const JsonValue doc = parse_json(json);

  EXPECT_EQ(doc.at("schema").str(), "repro.run_report.v1");

  ASSERT_EQ(doc.at("spans").size(), 2u);
  EXPECT_EQ(doc.at("spans").at(0).at("name").str(), "report-stage");
  EXPECT_DOUBLE_EQ(doc.at("spans").at(0).at("parent").number(), -1.0);
  EXPECT_EQ(doc.at("spans").at(1).at("name").str(), "report-inner");
  EXPECT_DOUBLE_EQ(doc.at("spans").at(1).at("parent").number(), 0.0);
  EXPECT_GE(doc.at("spans").at(0).at("wall_ms").number(), 0.0);

  EXPECT_DOUBLE_EQ(doc.at("counters").at("report.widgets").number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("report.level").number(), 2.5);

  const JsonValue& hist = doc.at("histograms").at("report.latency_ms");
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 55.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 50.0);
  EXPECT_GT(hist.at("p99").number(), hist.at("p50").number());
  ASSERT_EQ(hist.at("buckets").size(), 4u);  // 3 bounds + overflow
  EXPECT_DOUBLE_EQ(hist.at("buckets").at(1).at("count").number(), 1.0);

  // The span histograms written by end_span are also in the report.
  EXPECT_TRUE(doc.at("histograms").contains("span.report-stage"));
}

TEST_F(ObsTest, ReportSectionsAppearAsTopLevelKeys) {
  clear_report_sections();
  set_report_section("fault", "{\"overall\":\"degraded\"}");
  set_report_section("extra", "[1,2,3]");
  set_report_section("fault", "{\"overall\":\"ok\"}");  // replaces, not appends

  const JsonValue doc = parse_json(run_report_json());
  EXPECT_EQ(doc.at("schema").str(), "repro.run_report.v1");
  EXPECT_EQ(doc.at("fault").at("overall").str(), "ok");
  ASSERT_EQ(doc.at("extra").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("extra").at(2).number(), 3.0);

  clear_report_sections();
  const JsonValue clean = parse_json(run_report_json());
  EXPECT_FALSE(clean.contains("fault"));
  EXPECT_FALSE(clean.contains("extra"));
}

TEST_F(ObsTest, TablesRenderEveryEntry) {
  {
    ScopedSpan outer("table-stage");
    ScopedSpan inner("table-inner");
  }
  metrics().counter("table.count").add(3);
  const std::string spans = span_table();
  EXPECT_NE(spans.find("table-stage"), std::string::npos);
  EXPECT_NE(spans.find("  table-inner"), std::string::npos);  // indented
  const std::string table = metrics_table();
  EXPECT_NE(table.find("table.count"), std::string::npos);
  EXPECT_NE(table.find("span.table-inner"), std::string::npos);
}

TEST_F(ObsTest, ResetInvalidatesOpenSpans) {
  auto orphan = std::make_unique<ScopedSpan>("pre-reset");
  tracer().reset();
  {
    ScopedSpan fresh("post-reset");
  }
  orphan.reset();  // closes a span from a dead generation: must be ignored
  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "post-reset");
  EXPECT_TRUE(spans[0].closed);
}

}  // namespace
}  // namespace repro::obs
