// Tests for the observability layer: span nesting/ordering (including
// cross-thread stitching through the thread pool), log-linear histogram
// percentile accuracy and snapshot merging, counter thread-safety under a
// std::thread fan-out, the run_report.json / trace.json round-trips
// through the bundled JSON parser, and the bench-trend diff logic.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/trend.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace repro::obs {
namespace {

/// Enables tracing and clears global state around each test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing(true);
    tracer().reset();
    metrics().reset();
  }
  void TearDown() override {
    set_tracing(false);
    tracer().reset();
    metrics().reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOrdering) {
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan first("first-child");
      ScopedSpan grandchild("grandchild");
    }
    ScopedSpan second("second-child");
  }
  ScopedSpan root2("second-root");

  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 5u);

  // Ids are assigned in open order and parents always precede children.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[0].depth, 0);

  EXPECT_EQ(spans[1].name, "first-child");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1);

  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2);

  EXPECT_EQ(spans[3].name, "second-child");
  EXPECT_EQ(spans[3].parent, 0u);
  EXPECT_EQ(spans[3].depth, 1);

  EXPECT_EQ(spans[4].name, "second-root");
  EXPECT_EQ(spans[4].parent, kNoSpan);

  // The first four spans are closed with sane timings; the fifth is open.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(spans[i].closed) << i;
    EXPECT_GE(spans[i].wall_ms, 0.0) << i;
  }
  EXPECT_FALSE(spans[4].closed);
  // A child cannot outlast its parent.
  EXPECT_LE(spans[1].wall_ms, spans[0].wall_ms + 1e-6);
  EXPECT_LE(spans[2].wall_ms, spans[1].wall_ms + 1e-6);
  // Siblings are ordered in time.
  EXPECT_LE(spans[1].start_ms, spans[3].start_ms);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  set_tracing(false);
  {
    ScopedSpan span("invisible");
    ScopedTimer timer("invisible_ms");
  }
  EXPECT_TRUE(tracer().spans().empty());
  EXPECT_EQ(metrics().snapshot().histograms.size(), 0u);
}

TEST_F(ObsTest, SpanDurationsFeedHistogramApi) {
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("repeated-stage");
  }
  Histogram& h = metrics().histogram("span.repeated-stage");
  EXPECT_EQ(h.count(), 5u);
  EXPECT_GE(h.p50(), 0.0);
  EXPECT_GE(h.p99(), h.p50());
}

TEST_F(ObsTest, HistogramPercentilesUniform) {
  // 1..1000 ms uniform: percentiles must land within one (~3% log-linear)
  // bucket width of the exact values.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 1000.0 * 1001.0 / 2.0, 1e-6);
  for (const double p : {50.0, 90.0, 99.0}) {
    const double exact = p * 10.0;  // percentile p of 1..1000
    const std::size_t idx = Histogram::bucket_index(exact);
    const double width =
        Histogram::bucket_upper_ms(idx) - Histogram::bucket_lower_ms(idx);
    EXPECT_NEAR(h.percentile(p), exact, width) << "p" << p;
  }
  // The extremes are exact (clamped to observed min/max).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
}

TEST_F(ObsTest, HistogramPercentilesConstantAndEmpty) {
  Histogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);  // empty

  for (int i = 0; i < 50; ++i) h.record(42.0);
  // All mass in one bucket, min == max == 42: every percentile is exact.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
}

TEST_F(ObsTest, HistogramBucketIndexIsConsistent) {
  // Every recorded value must fall inside its bucket's [lo, hi) range, and
  // bucket boundaries must tile the axis without gaps or overlaps.
  const double values[] = {0.0, -3.0,   1e-7, 1e-6,    5e-5, 0.001, 0.5,
                           1.0, 42.0, 1000.0, 12345.6, 1e7,  3.7e11};
  for (const double v : values) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBucketCount) << v;
    const double lo = Histogram::bucket_lower_ms(idx);
    const double hi = Histogram::bucket_upper_ms(idx);
    EXPECT_LT(lo, hi) << v;
    if (v > 0.0) {
      EXPECT_GE(v, lo - 1e-12) << v;
      EXPECT_LT(v, hi * (1.0 + 1e-12)) << v;
    }
  }
  // Values beyond ~104 days saturate into the last reachable bucket rather
  // than overflow; everything larger shares that bucket.
  const std::size_t last =
      Histogram::bucket_index(std::numeric_limits<double>::infinity());
  ASSERT_LT(last, Histogram::kBucketCount);
  EXPECT_EQ(Histogram::bucket_index(9e15), last);
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper_ms(i),
                     Histogram::bucket_lower_ms(i + 1))
        << i;
    // A bucket midpoint maps back to the same index (bijection check, valid
    // up to the saturation bucket).
    if (i >= last) continue;
    const double mid =
        0.5 * (Histogram::bucket_lower_ms(i) + Histogram::bucket_upper_ms(i));
    EXPECT_EQ(Histogram::bucket_index(mid), i) << i;
  }
}

TEST_F(ObsTest, HistogramRandomizedPercentilesMonotoneAndAccurate) {
  // Lognormal latencies spanning several decades, fixed seed. Percentiles
  // must be monotone in p and within one containing-bucket width of the
  // exact order statistics.
  Rng rng(0xC0FFEE);
  std::vector<double> values;
  values.reserve(5000);
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(1.0, 2.0);  // ~e^1 ms median, heavy tail
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());

  double previous = -1.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double estimate = h.percentile(p);
    EXPECT_GE(estimate, previous) << "non-monotone at p=" << p;
    previous = estimate;

    const std::size_t rank = static_cast<std::size_t>(std::min(
        static_cast<double>(values.size()) - 1.0,
        std::max(0.0, std::ceil(p / 100.0 * values.size()) - 1.0)));
    const double exact = values[rank];
    const std::size_t idx = Histogram::bucket_index(exact);
    const double width =
        Histogram::bucket_upper_ms(idx) - Histogram::bucket_lower_ms(idx);
    EXPECT_NEAR(estimate, exact, width + 1e-9) << "p=" << p;
  }
}

TEST_F(ObsTest, HistogramSnapshotMergeEqualsSingleProcess) {
  // The same value stream partitioned across three shards and merged must
  // be indistinguishable from one histogram fed everything: bit-exact
  // bucket counts at identical boundaries, same count/min/max.
  Rng rng(42);
  Histogram all;
  Histogram shards[3];
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.lognormal(0.0, 1.5);
    all.record(v);
    shards[i % 3].record(v);
  }

  HistogramSnapshot merged = shards[0].snapshot();
  merged.merge(shards[1].snapshot());
  merged.merge(shards[2].snapshot());
  const HistogramSnapshot single = all.snapshot();

  EXPECT_EQ(merged.count, single.count);
  EXPECT_DOUBLE_EQ(merged.min, single.min);
  EXPECT_DOUBLE_EQ(merged.max, single.max);
  ASSERT_EQ(merged.buckets.size(), single.buckets.size());
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i].index, single.buckets[i].index) << i;
    EXPECT_EQ(merged.buckets[i].count, single.buckets[i].count) << i;
    EXPECT_DOUBLE_EQ(merged.buckets[i].lo_ms, single.buckets[i].lo_ms) << i;
    EXPECT_DOUBLE_EQ(merged.buckets[i].hi_ms, single.buckets[i].hi_ms) << i;
  }
  // sum is float-accumulated (not bit-exact across orders), but close.
  EXPECT_NEAR(merged.sum, single.sum, 1e-6 * std::abs(single.sum));
  // Percentiles recomputed from identical buckets are identical.
  EXPECT_DOUBLE_EQ(merged.p50, single.p50);
  EXPECT_DOUBLE_EQ(merged.p99, single.p99);
  // Merging an empty snapshot is a no-op on the distribution.
  HistogramSnapshot empty;
  merged.merge(empty);
  EXPECT_EQ(merged.count, single.count);
  EXPECT_DOUBLE_EQ(merged.min, single.min);
}

TEST_F(ObsTest, CountersAndHistogramsAreThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Lookup through the registry on purpose: the lookup path must be
        // thread-safe too, not just the increment.
        metrics().counter("threads.ops").add(1);
        metrics().histogram("threads.latency_ms").record(0.5);
      }
      metrics().gauge("threads.done").set(1.0);
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(metrics().counter("threads.ops").value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(metrics().histogram("threads.latency_ms").count(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(metrics().gauge("threads.done").value(), 1.0);
}

TEST_F(ObsTest, CachedCounterSurvivesResetAndThreads) {
  CachedCounter cached("cached.hits");
  cached.add(2);
  EXPECT_EQ(metrics().counter("cached.hits").value(), 2u);

  // reset() drops the underlying counter; the handle must re-resolve into
  // the new one instead of writing through the stale pointer.
  metrics().reset();
  cached.add(3);
  EXPECT_EQ(metrics().counter("cached.hits").value(), 3u);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cached] {
      for (int i = 0; i < kOpsPerThread; ++i) cached.add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(metrics().counter("cached.hits").value(),
            3u + static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST_F(ObsTest, ProductionCountersExactUnderParallelFor) {
  // Regression test for the counters bumped on thread-pool workers during
  // the clustering fan-out (mlab/filters and the ping-mesh reprobe path):
  // concurrent increments through CachedCounter handles must never lose an
  // add, so the totals are invariant under any interleaving.
  CachedCounter nonfinite("filters.nonfinite_leaked");
  CachedCounter reprobe_rounds("mlab.reprobe_rounds");
  CachedCounter reprobe_recovered("mlab.reprobe_recovered");

  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kOpsPerTask = 5000;
  parallel_for(
      kTasks,
      [&](std::size_t) {
        for (std::uint64_t i = 0; i < kOpsPerTask; ++i) {
          nonfinite.add(1);
          reprobe_rounds.add(2);
        }
        reprobe_recovered.add(1);
      },
      8);

  EXPECT_EQ(metrics().counter("filters.nonfinite_leaked").value(),
            kTasks * kOpsPerTask);
  EXPECT_EQ(metrics().counter("mlab.reprobe_rounds").value(),
            2 * kTasks * kOpsPerTask);
  EXPECT_EQ(metrics().counter("mlab.reprobe_recovered").value(), kTasks);
}

TEST_F(ObsTest, BenchJsonLineCarriesHealthVerdicts) {
  // The bench harness footer splices StageHealth verdicts into every
  // BENCH_<name>.json line; the line must stay parseable and the fields
  // must reflect the worst stage.
  std::map<std::string, fault::StageHealth> stages;
  stages["ping_mesh"] = fault::StageHealth{};
  fault::StageHealth degraded;
  degraded.status = fault::StageStatus::kDegraded;
  degraded.dropped = 3;
  degraded.total = 10;
  stages["clustering"] = degraded;

  const std::string line =
      bench::bench_json_line("smoke", 1.25, bench::health_json_fields(stages));
  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.at("bench").str(), "smoke");
  ASSERT_TRUE(doc.contains("health"));
  EXPECT_EQ(doc.at("health").str(), "degraded");
  ASSERT_TRUE(doc.contains("stages"));
  EXPECT_EQ(doc.at("stages").at("ping_mesh").str(), "ok");
  EXPECT_EQ(doc.at("stages").at("clustering").str(), "degraded");

  // An empty map (harness without a pipeline) reads as a clean run.
  const JsonValue clean =
      parse_json(bench::bench_json_line("smoke", 0.5, bench::health_json_fields({})));
  EXPECT_EQ(clean.at("health").str(), "ok");
  EXPECT_EQ(clean.at("stages").size(), 0u);
}

TEST_F(ObsTest, SpansAcrossThreadsBecomeRoots) {
  {
    ScopedSpan main_span("main-thread");
    std::thread([] { ScopedSpan worker("worker-thread"); }).join();
  }
  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 2u);
  // The worker did not inherit the main thread's open span.
  EXPECT_EQ(spans[1].name, "worker-thread");
  EXPECT_EQ(spans[1].parent, kNoSpan);
}

TEST_F(ObsTest, JsonParserHandlesTheBasics) {
  const JsonValue doc = parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": "va\"l\nue"}, "t": true,
          "f": false, "n": null})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).number(), 2.5);
  EXPECT_DOUBLE_EQ(doc.at("a").at(2).number(), -300.0);
  EXPECT_EQ(doc.at("b").at("nested").str(), "va\"l\nue");
  EXPECT_TRUE(doc.at("t").boolean());
  EXPECT_FALSE(doc.at("f").boolean());
  EXPECT_TRUE(doc.at("n").is_null());
  EXPECT_FALSE(doc.contains("missing"));

  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{} trailing"), ParseError);
  EXPECT_THROW(parse_json("nul"), ParseError);

  // Escape round-trip through our own emitter.
  const std::string ugly = "quote\" slash\\ newline\n tab\t ctrl\x01";
  const JsonValue echoed =
      parse_json("{\"s\": \"" + json_escape(ugly) + "\"}");
  EXPECT_EQ(echoed.at("s").str(), ugly);
}

TEST_F(ObsTest, RunReportJsonRoundTrip) {
  {
    ScopedSpan stage("report-stage");
    ScopedSpan inner("report-inner");
  }
  metrics().counter("report.widgets").add(7);
  metrics().gauge("report.level").set(2.5);
  Histogram& h = metrics().histogram("report.latency_ms");
  h.record(5.0);
  h.record(50.0);

  const std::string json = run_report_json();
  const JsonValue doc = parse_json(json);

  EXPECT_EQ(doc.at("schema").str(), "repro.run_report.v1");

  ASSERT_EQ(doc.at("spans").size(), 2u);
  EXPECT_EQ(doc.at("spans").at(0).at("name").str(), "report-stage");
  EXPECT_DOUBLE_EQ(doc.at("spans").at(0).at("parent").number(), -1.0);
  EXPECT_EQ(doc.at("spans").at(1).at("name").str(), "report-inner");
  EXPECT_DOUBLE_EQ(doc.at("spans").at(1).at("parent").number(), 0.0);
  EXPECT_GE(doc.at("spans").at(0).at("wall_ms").number(), 0.0);

  EXPECT_DOUBLE_EQ(doc.at("counters").at("report.widgets").number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("report.level").number(), 2.5);

  const JsonValue& hist = doc.at("histograms").at("report.latency_ms");
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 55.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 50.0);
  EXPECT_GT(hist.at("p99").number(), hist.at("p50").number());
  // Sparse buckets: the two distinct values land in two distinct buckets,
  // each serialized with its index and [lo, le) bounds.
  ASSERT_EQ(hist.at("buckets").size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const JsonValue& bucket = hist.at("buckets").at(i);
    EXPECT_DOUBLE_EQ(bucket.at("count").number(), 1.0);
    EXPECT_LT(bucket.at("lo").number(), bucket.at("le").number());
  }
  EXPECT_DOUBLE_EQ(
      hist.at("buckets").at(0).at("index").number(),
      static_cast<double>(Histogram::bucket_index(5.0)));

  // The span histograms written by end_span are also in the report.
  EXPECT_TRUE(doc.at("histograms").contains("span.report-stage"));
}

TEST_F(ObsTest, ReportSectionsAppearAsTopLevelKeys) {
  clear_report_sections();
  set_report_section("fault", "{\"overall\":\"degraded\"}");
  set_report_section("extra", "[1,2,3]");
  set_report_section("fault", "{\"overall\":\"ok\"}");  // replaces, not appends

  const JsonValue doc = parse_json(run_report_json());
  EXPECT_EQ(doc.at("schema").str(), "repro.run_report.v1");
  EXPECT_EQ(doc.at("fault").at("overall").str(), "ok");
  ASSERT_EQ(doc.at("extra").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("extra").at(2).number(), 3.0);

  clear_report_sections();
  const JsonValue clean = parse_json(run_report_json());
  EXPECT_FALSE(clean.contains("fault"));
  EXPECT_FALSE(clean.contains("extra"));
}

TEST_F(ObsTest, TablesRenderEveryEntry) {
  {
    ScopedSpan outer("table-stage");
    ScopedSpan inner("table-inner");
  }
  metrics().counter("table.count").add(3);
  const std::string spans = span_table();
  EXPECT_NE(spans.find("table-stage"), std::string::npos);
  EXPECT_NE(spans.find("  table-inner"), std::string::npos);  // indented
  const std::string table = metrics_table();
  EXPECT_NE(table.find("table.count"), std::string::npos);
  EXPECT_NE(table.find("span.table-inner"), std::string::npos);
}

TEST_F(ObsTest, ResetInvalidatesOpenSpans) {
  auto orphan = std::make_unique<ScopedSpan>("pre-reset");
  tracer().reset();
  {
    ScopedSpan fresh("post-reset");
  }
  orphan.reset();  // closes a span from a dead generation: must be ignored
  const std::vector<Span> spans = tracer().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "post-reset");
  EXPECT_TRUE(spans[0].closed);
  // The stale close is a checked no-op, and it is counted.
  EXPECT_EQ(metrics().counter("trace.dropped_spans").value(), 1u);
}

// ---------------------------------------------------------------------------
// Cross-thread span stitching through the thread pool.
// ---------------------------------------------------------------------------

/// Waits until every "pool.task" span is closed. The wrapper's on_run_end
/// hook fires after the task body signals completion, so pool.task spans can
/// still be open the instant parallel_for returns.
void wait_for_pool_spans_to_close() {
  for (int i = 0; i < 2000; ++i) {
    bool open = false;
    for (const Span& span : tracer().spans()) {
      if (span.name == "pool.task" && !span.closed) open = true;
    }
    if (!open) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST_F(ObsTest, ParallelForStitchesWorkerSpansUnderSubmitter) {
  {
    ScopedSpan stage("stitch-stage");
    parallel_for(
        64, [](std::size_t) { ScopedSpan work("work"); }, 8);
  }
  wait_for_pool_spans_to_close();

  const std::vector<Span> spans = tracer().spans();
  std::size_t stage_id = kNoSpan;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "stitch-stage") stage_id = static_cast<std::size_t>(i);
  }
  ASSERT_NE(stage_id, kNoSpan);

  const auto chain_reaches_stage = [&](std::size_t id) {
    for (int hops = 0; hops < 64 && id != kNoSpan; ++hops) {
      if (id == stage_id) return true;
      id = spans[id].parent;
    }
    return id == stage_id;
  };

  std::size_t work_spans = 0;
  std::size_t task_spans = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "work") {
      ++work_spans;
      EXPECT_TRUE(chain_reaches_stage(static_cast<std::size_t>(i)))
          << "orphan work span " << i;
    } else if (spans[i].name == "pool.task") {
      ++task_spans;
      EXPECT_TRUE(chain_reaches_stage(static_cast<std::size_t>(i)))
          << "orphan pool.task span " << i;
    }
  }
  EXPECT_EQ(work_spans, 64u);
  EXPECT_GE(task_spans, 1u);  // pool tasks adopted the submitter's context

  // Flow events pair a submit ('s') with an adoption ('f') by shared id.
  std::map<std::uint64_t, int> submits;
  std::map<std::uint64_t, int> adopts;
  for (const FlowEvent& flow : tracer().flow_events()) {
    if (flow.phase == 's') ++submits[flow.id];
    else if (flow.phase == 'f') ++adopts[flow.id];
  }
  EXPECT_GE(adopts.size(), 1u);
  for (const auto& [id, n] : adopts) {
    EXPECT_EQ(n, 1) << "flow id " << id;
    EXPECT_EQ(submits[id], 1) << "flow id " << id;
  }
}

TEST_F(ObsTest, TaskContextSurvivesOnlyWithinGeneration) {
  // A task context captured before reset() must not stitch after it: the
  // adoption is a counted no-op instead of a crash or a wrong parent.
  std::uint64_t token = 0;
  {
    ScopedSpan stage("doomed-stage");
    token = tracer().capture_task_context();
    ASSERT_NE(token, 0u);
  }
  tracer().reset();
  EXPECT_EQ(tracer().adopt_task_context(token), kNoSpan);
  EXPECT_EQ(metrics().counter("trace.dropped_spans").value(), 1u);
}

// ---------------------------------------------------------------------------
// Perfetto trace export.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceEventsJsonHasSlicesFlowsAndCounters) {
  {
    ScopedSpan stage("export-stage");
    parallel_for(
        16, [](std::size_t) { ScopedSpan work("export-work"); }, 4);
  }
  ScopedSpan open_root("still-open");
  wait_for_pool_spans_to_close();

  std::vector<ResourceSample> samples;
  samples.push_back(read_resource_sample());
  samples.push_back(read_resource_sample());

  const std::string json =
      trace_events_json(tracer().spans(), tracer().flow_events(), samples);
  const JsonValue doc = parse_json(json);
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");

  std::size_t complete = 0, begins = 0, flow_s = 0, flow_f = 0, counters = 0,
              metadata = 0;
  std::set<std::string> counter_names;
  const JsonValue& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const std::string& ph = event.at("ph").str();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(event.at("dur").number(), 0.0);
    } else if (ph == "B") {
      ++begins;
    } else if (ph == "s") {
      ++flow_s;
    } else if (ph == "f") {
      ++flow_f;
      EXPECT_EQ(event.at("bp").str(), "e");
    } else if (ph == "C") {
      ++counters;
      counter_names.insert(event.at("name").str());
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_GE(complete, 17u);  // stage + 16 work spans at least
  EXPECT_EQ(begins, 1u);     // the still-open root
  EXPECT_GE(flow_s, 1u);
  EXPECT_GE(flow_f, 1u);
  EXPECT_GE(metadata, 2u);  // process_name + at least one thread_name
  EXPECT_EQ(counters, samples.size() * 5);
  EXPECT_TRUE(counter_names.count("sampler.rss_mb"));
  EXPECT_TRUE(counter_names.count("sampler.utime_ms"));
}

// ---------------------------------------------------------------------------
// Resource sampler.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SamplerCollectsMonotoneSeries) {
  sampler().reset();
  sampler().start(200.0);
  EXPECT_TRUE(sampler().running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler().stop();
  EXPECT_FALSE(sampler().running());

  const std::vector<ResourceSample> samples = sampler().samples();
  ASSERT_GE(samples.size(), 2u);  // one at start + one final at stop
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_ms, samples[i - 1].t_ms) << i;
    EXPECT_GE(samples[i].utime_ms + samples[i].stime_ms,
              samples[i - 1].utime_ms + samples[i - 1].stime_ms)
        << i;
  }
  EXPECT_GT(samples.back().rss_kb, 0u);

  // The series lands in run_report.json as a "sampler" section.
  const std::string path = "test_obs_sampler_report.json";
  write_run_report(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(in));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  ASSERT_TRUE(doc.contains("sampler"));
  EXPECT_DOUBLE_EQ(doc.at("sampler").at("samples").number(),
                   static_cast<double>(samples.size()));
  EXPECT_EQ(doc.at("sampler").at("t_ms").size(), samples.size());
  EXPECT_EQ(doc.at("sampler").at("rss_kb").size(), samples.size());

  std::remove(path.c_str());
  sampler().reset();
  clear_report_sections();  // drop the injected "sampler" section
}

// ---------------------------------------------------------------------------
// JSON edge cases: nesting depth, unicode escapes, non-finite doubles, and
// truncated input.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, JsonParserEnforcesDepthLimit) {
  const auto nested = [](int depth) {
    std::string s;
    for (int i = 0; i < depth; ++i) s += '[';
    s += "1";
    for (int i = 0; i < depth; ++i) s += ']';
    return s;
  };
  EXPECT_NO_THROW(parse_json(nested(100)));
  EXPECT_THROW(parse_json(nested(300)), ParseError);

  // Deep objects hit the same guard as deep arrays.
  std::string deep_object;
  for (int i = 0; i < 300; ++i) deep_object += "{\"k\":";
  deep_object += "1";
  for (int i = 0; i < 300; ++i) deep_object += '}';
  EXPECT_THROW(parse_json(deep_object), ParseError);
}

TEST_F(ObsTest, JsonParserDecodesUnicodeEscapes) {
  EXPECT_EQ(parse_json("{\"s\":\"\\u0041\"}").at("s").str(), "A");
  // U+00E9 encodes as two UTF-8 bytes.
  EXPECT_EQ(parse_json("{\"s\":\"\\u00e9\"}").at("s").str(), "\xc3\xa9");
  // U+2603 (snowman) encodes as three.
  EXPECT_EQ(parse_json("{\"s\":\"\\u2603\"}").at("s").str(),
            "\xe2\x98\x83");
  EXPECT_THROW(parse_json("{\"s\":\"\\u00zz\"}"), ParseError);
  EXPECT_THROW(parse_json("{\"s\":\"\\u12\"}"), ParseError);
}

TEST_F(ObsTest, JsonNumberNeverEmitsNonFiniteTokens) {
  // NaN and infinity are not valid JSON; the emitter must clamp them to
  // parseable stand-ins rather than poison the document.
  EXPECT_EQ(json_number(std::nan("")), "0");
  const std::string pos = json_number(std::numeric_limits<double>::infinity());
  const std::string neg = json_number(-std::numeric_limits<double>::infinity());
  const JsonValue doc =
      parse_json("{\"pos\": " + pos + ", \"neg\": " + neg + "}");
  EXPECT_GT(doc.at("pos").number(), 1e300);
  EXPECT_LT(doc.at("neg").number(), -1e300);
}

TEST_F(ObsTest, JsonParserRejectsEveryTruncationOfAValidReport) {
  // Fuzz-style corpus: every proper prefix of a real run_report.json must
  // throw ParseError (never crash, never parse successfully).
  metrics().counter("trunc.count").add(3);
  {
    ScopedSpan span("trunc-span");
  }
  const std::string json = run_report_json();
  ASSERT_FALSE(json.empty());
  EXPECT_NO_THROW(parse_json(json));
  for (std::size_t len = 0; len < json.size(); ++len) {
    EXPECT_THROW(parse_json(json.substr(0, len)), ParseError)
        << "prefix length " << len;
  }
}

// ---------------------------------------------------------------------------
// Bench-trend parsing and regression diffs.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TrendParsesBenchLinesAndHistory) {
  const BenchRecord record = parse_bench_line(
      R"({"bench": "perf_micro", "scale": "tiny", "seconds": 1.5,)"
      R"( "pairwise_serial_seconds": 0.012, "health": "ok",)"
      R"( "stages": {"clustering": "ok"}, "threads": 8})");
  EXPECT_EQ(record.bench, "perf_micro");
  EXPECT_EQ(record.scale, "tiny");
  EXPECT_DOUBLE_EQ(record.numbers.at("seconds"), 1.5);
  EXPECT_DOUBLE_EQ(record.numbers.at("threads"), 8.0);
  EXPECT_EQ(record.strings.at("health"), "ok");
  EXPECT_FALSE(record.numbers.count("stages"));  // nested objects skipped

  const std::vector<BenchRecord> history = parse_history(
      "{\"bench\": \"a\", \"seconds\": 1.0}\n"
      "\n"
      "   \n"
      "{\"bench\": \"b\", \"seconds\": 2.0}\n");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].bench, "a");
  EXPECT_EQ(history[1].bench, "b");
}

TEST_F(ObsTest, TrendDiffFlagsRegressionsOnTimeFieldsOnly) {
  BenchRecord before;
  before.bench = "perf_micro";
  before.numbers = {{"seconds", 1.0},
                    {"pairwise_serial_seconds", 0.010},
                    {"isp_count", 100.0}};
  BenchRecord after = before;
  after.numbers["pairwise_serial_seconds"] = 0.014;  // 1.4x: regression
  after.numbers["isp_count"] = 200.0;  // 2x but not a time field: fine
  after.numbers["seconds"] = 0.9;      // faster: fine

  const TrendDiff diff = diff_records(before, after, 1.25);
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressed_fields.size(), 1u);
  EXPECT_EQ(diff.regressed_fields[0], "pairwise_serial_seconds");
  const std::string rendered = render_diff(diff);
  EXPECT_NE(rendered.find("pairwise_serial_seconds"), std::string::npos);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);

  // Below the gate: no regression.
  after.numbers["pairwise_serial_seconds"] = 0.012;
  EXPECT_FALSE(diff_records(before, after, 1.25).regressed());

  // gate_fields restricts which fields may fail the gate.
  after.numbers["pairwise_serial_seconds"] = 0.050;
  EXPECT_FALSE(diff_records(before, after, 1.25, {"seconds"}).regressed());
  EXPECT_TRUE(
      diff_records(before, after, 1.25, {"pairwise_serial_seconds"})
          .regressed());

  // is_time_field drives the gate.
  EXPECT_TRUE(is_time_field("seconds"));
  EXPECT_TRUE(is_time_field("warm_seconds"));
  EXPECT_TRUE(is_time_field("p99_ms"));
  EXPECT_TRUE(is_time_field("pairwise_ns_op"));
  EXPECT_FALSE(is_time_field("isp_count"));
  EXPECT_FALSE(is_time_field("threads"));
}

TEST_F(ObsTest, JsonParserRejectsDuplicateKeys) {
  // "Which copy wins" is parser-dependent, so a duplicate key is a
  // ParseError -- the report service relies on this to turn ambiguous
  // requests into structured errors instead of guessing.
  EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), ParseError);
  EXPECT_THROW(parse_json(R"({"x":{"k":true,"k":false}})"), ParseError);
  EXPECT_THROW(parse_json(R"([{"q":"t","q":"t"}])"), ParseError);
  // Same key in *different* objects stays legal.
  const JsonValue ok = parse_json(R"({"a":{"k":1},"b":{"k":2}})");
  EXPECT_DOUBLE_EQ(ok.object().at("b").object().at("k").number(), 2.0);
}

TEST_F(ObsTest, AppendFileCappedKeepsNewestLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("repro-test-history-" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  std::filesystem::remove(path);

  // Cap 0: plain unbounded append.
  for (int i = 0; i < 5; ++i) {
    append_file_capped(path, "line" + std::to_string(i) + "\n", 0);
  }
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "line0\nline1\nline2\nline3\nline4\n");
  }

  // Cap 3: the next append trims to the newest three lines.
  append_file_capped(path, "line5\n", 3);
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "line3\nline4\nline5\n");
  }

  // At or under the cap: nothing is trimmed.
  append_file_capped(path, "line6\n", 4);
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "line3\nline4\nline5\nline6\n");
  }

  // An unterminated tail still counts as a line for the cap.
  append_file_capped(path, "tail-no-newline", 2);
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "line6\ntail-no-newline");
  }
  std::filesystem::remove(path);
}

TEST_F(ObsTest, HistoryMaxLinesFromEnvParsing) {
  const char* saved = std::getenv("REPRO_HISTORY_MAX_LINES");
  const std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("REPRO_HISTORY_MAX_LINES");
  EXPECT_EQ(history_max_lines_from_env(), 0u);
  ::setenv("REPRO_HISTORY_MAX_LINES", "250", 1);
  EXPECT_EQ(history_max_lines_from_env(), 250u);
  ::setenv("REPRO_HISTORY_MAX_LINES", "0", 1);
  EXPECT_EQ(history_max_lines_from_env(), 0u);
  // Garbage and trailing junk fall back to unbounded rather than throwing:
  // a bad env var must never break a bench run's footer.
  ::setenv("REPRO_HISTORY_MAX_LINES", "abc", 1);
  EXPECT_EQ(history_max_lines_from_env(), 0u);
  ::setenv("REPRO_HISTORY_MAX_LINES", "12x", 1);
  EXPECT_EQ(history_max_lines_from_env(), 0u);
  ::setenv("REPRO_HISTORY_MAX_LINES", "", 1);
  EXPECT_EQ(history_max_lines_from_env(), 0u);

  if (saved == nullptr) {
    ::unsetenv("REPRO_HISTORY_MAX_LINES");
  } else {
    ::setenv("REPRO_HISTORY_MAX_LINES", saved_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace repro::obs
