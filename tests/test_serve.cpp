// The resident report service's contract (ctest -L serve):
//   * warm service renders are byte-identical to batch pipeline renders for
//     the same world -- clean AND under a chaos fault plan -- and a repeat
//     query is served from the render cache without changing a byte;
//   * recompute is incremental: an xi-only change against a warm store
//     re-extracts clusters (one clustering miss, one save) without
//     re-scanning or re-measuring a single matrix, and a plan change that
//     preserves measurement_json() is served entirely warm (zero misses,
//     zero saves, zero recomputes);
//   * >= 8 concurrent readers over one shared store all get correct answers
//     (the TSan tier of scripts/check.sh runs this label);
//   * the daemon loop survives hostile input -- malformed, truncated,
//     duplicate-key, oversized and absurdly nested JSON all produce
//     structured {"ok":false,...} responses, never a dead loop;
//   * the ndjson protocol works over both serve_stream and a Unix socket,
//     and "shutdown" stops either loop at the next boundary.
#include "serve/service.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyses.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "serve/resolver.h"
#include "store/artifact_store.h"
#include "store/serde.h"

namespace repro {
namespace {

namespace fs = std::filesystem;

using serve::ArtifactResolver;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ReportService;
using serve::ServiceConfig;

/// Fresh store root per test, removed on teardown. gtest_discover_tests
/// runs every TEST in its own process, so the process-global serve.* and
/// store.* counters start from zero in each one.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("repro-serve-test-" + std::to_string(::getpid()) + "-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::shared_ptr<store::ArtifactStore> make_store() const {
    store::StoreConfig config;
    config.root = (root_ / "store").string();
    return std::make_shared<store::ArtifactStore>(config);
  }

  ServiceConfig service_config() const {
    ServiceConfig config;
    config.artifacts = make_store();
    config.default_scale = Scale::kTiny;
    return config;
  }

  fs::path root_;
};

std::uint64_t counter(const char* name) {
  return obs::metrics().counter(name).value();
}

/// Every report query's expected render, computed by the batch path the
/// examples use: one storeless Pipeline per world, render(<study>(...)).
struct BatchRenders {
  std::string table1, figure1, table2, figure2, section421, section43;
};

BatchRenders batch_renders(const fault::FaultPlan& plan,
                           const std::vector<double>& xis) {
  const Pipeline pipeline(Scenario::at_scale(Scale::kTiny), plan, nullptr);
  BatchRenders out;
  out.table1 = render(table1_study(pipeline));
  out.figure1 = render(figure1_study(pipeline));
  out.table2 = render(table2_study(pipeline, xis));
  out.figure2 = render(figure2_study(pipeline, xis));
  out.section421 = render(section421_study(pipeline));
  out.section43 = render(section43_study(pipeline));
  return out;
}

QueryRequest report_request(const std::string& query,
                            const fault::FaultPlan& plan,
                            std::vector<double> xis = {}) {
  QueryRequest request;
  request.query = query;
  request.scale = Scale::kTiny;
  request.plan = plan;
  request.xis = std::move(xis);
  return request;
}

void expect_byte_identical_world(ServeTest* fixture, ReportService& service,
                                 const fault::FaultPlan& plan) {
  (void)fixture;
  const std::vector<double> xis = {0.1, 0.9};
  const BatchRenders expected = batch_renders(plan, xis);
  const std::pair<const char*, const std::string*> cases[] = {
      {"table1", &expected.table1},       {"figure1", &expected.figure1},
      {"table2", &expected.table2},       {"figure2", &expected.figure2},
      {"section421", &expected.section421}, {"section43", &expected.section43},
  };
  for (const auto& [query, body] : cases) {
    const bool takes_xis = std::string_view(query) == "table2" ||
                           std::string_view(query) == "figure2";
    const QueryRequest request =
        report_request(query, plan, takes_xis ? xis : std::vector<double>{});
    const QueryResponse first = service.execute(request);
    ASSERT_TRUE(first.ok) << query << ": " << first.json;
    EXPECT_EQ(first.render, *body) << query << " differs from batch render";
    // The repeat must come from the render cache, byte-identical.
    const QueryResponse again = service.execute(request);
    ASSERT_TRUE(again.ok) << query;
    EXPECT_TRUE(again.cached) << query << " repeat was not cached";
    EXPECT_EQ(again.render, *body) << query << " cached render differs";
  }
  EXPECT_GE(counter("serve.hit"), 6u);
}

TEST_F(ServeTest, WarmRendersMatchBatchClean) {
  ReportService service(service_config());
  expect_byte_identical_world(this, service, fault::FaultPlan::none());
}

TEST_F(ServeTest, WarmRendersMatchBatchUnderChaos) {
  ReportService service(service_config());
  expect_byte_identical_world(this, service, fault::FaultPlan::chaos());
}

TEST_F(ServeTest, XiOnlyChangeRecomputesOnlyClusterExtraction) {
  // Warm the store with the standard xi batch through service A.
  {
    ReportService service(service_config());
    const QueryResponse cold = service.execute(
        report_request("table2", fault::FaultPlan::none(), {0.1, 0.9}));
    ASSERT_TRUE(cold.ok) << cold.json;
    EXPECT_FALSE(cold.cached);
  }

  // A fresh service over a fresh store instance on the same root: per-
  // instance StoreStats start at zero, so the deltas below are exact.
  ServiceConfig config = service_config();
  const std::shared_ptr<store::ArtifactStore> artifacts = config.artifacts;
  ReportService service(std::move(config));
  const QueryResponse incremental = service.execute(
      report_request("table2", fault::FaultPlan::none(), {0.3}));
  ASSERT_TRUE(incremental.ok) << incremental.json;

  const store::StoreStats stats = artifacts->stats();
  // The only cold artifact is the xi=0.3 clustering: one miss, one save.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.saved, 1u);
  // No matrix was re-measured: every load_or_compute hit warm bytes.
  EXPECT_EQ(stats.recomputed, 0u);
  // Scan, population, topology and every per-ISP matrix came from the store.
  EXPECT_GE(stats.hits, 4u);

  // Cross-check against the batch answer for the same xi.
  const Pipeline batch(Scenario::at_scale(Scale::kTiny),
                       fault::FaultPlan::none(), nullptr);
  const std::vector<double> xis = {0.3};
  EXPECT_EQ(incremental.render, render(table2_study(batch, xis)));
}

TEST_F(ServeTest, MeasurementPreservingPlanChangeServesEntirelyWarm) {
  // Warm the clean world.
  std::string clean_table1, clean_table2;
  {
    ReportService service(service_config());
    const QueryResponse t1 =
        service.execute(report_request("table1", fault::FaultPlan::none()));
    const QueryResponse t2 = service.execute(
        report_request("table2", fault::FaultPlan::none(), {0.1, 0.9}));
    ASSERT_TRUE(t1.ok && t2.ok);
    clean_table1 = t1.render;
    clean_table2 = t2.render;
  }

  // A route-flap-only plan shares measurement_json() with clean, so its
  // world digest -- and therefore every persisted artifact -- is identical.
  fault::FaultPlan flappy = fault::FaultPlan::none();
  flappy.route.flap_rate = 0.3;
  ASSERT_EQ(flappy.measurement_json(), fault::FaultPlan::none().measurement_json());

  ServiceConfig config = service_config();
  const std::shared_ptr<store::ArtifactStore> artifacts = config.artifacts;
  ReportService service(std::move(config));
  const QueryResponse t1 = service.execute(report_request("table1", flappy));
  const QueryResponse t2 =
      service.execute(report_request("table2", flappy, {0.1, 0.9}));
  ASSERT_TRUE(t1.ok && t2.ok);

  const store::StoreStats stats = artifacts->stats();
  EXPECT_EQ(stats.misses, 0u) << "a measurement-preserving plan went cold";
  EXPECT_EQ(stats.saved, 0u);
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_GT(stats.hits, 0u);

  // Measurement-derived reports are byte-identical to the clean world; only
  // the live route/rdns engines (section421 et al) may differ.
  EXPECT_EQ(t1.render, clean_table1);
  EXPECT_EQ(t2.render, clean_table2);

  // And the resolver still treats it as a distinct resident world.
  EXPECT_NE(ArtifactResolver::world_key(Scenario::at_scale(Scale::kTiny),
                                        fault::FaultPlan::none()),
            ArtifactResolver::world_key(Scenario::at_scale(Scale::kTiny),
                                        flappy));
}

TEST_F(ServeTest, ConcurrentReadersShareOneService) {
  ReportService service(service_config());
  constexpr std::size_t kReaders = 8;
  constexpr std::size_t kQueriesPerReader = 6;
  const fault::FaultPlan plans[] = {fault::FaultPlan::none(),
                                    fault::FaultPlan::chaos().scaled_by(0.5)};
  const char* queries[] = {"table1", "figure1", "table2"};

  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      for (std::size_t i = 0; i < kQueriesPerReader; ++i) {
        const std::size_t pick = (i * 5 + t) % 6;
        const char* query = queries[pick % 3];
        const QueryRequest request = report_request(
            query, plans[pick / 3],
            std::string_view(query) == "table2" ? std::vector<double>{0.1, 0.9}
                                                : std::vector<double>{});
        const QueryResponse response = service.execute(request);
        if (!response.ok) failures[t] = response.json;
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");

  // Single-flight held at both layers: two worlds were built, no more, and
  // the storm was overwhelmingly warm.
  EXPECT_EQ(counter("serve.pipeline_built"), 2u);
  EXPECT_GT(counter("serve.hit") + counter("serve.inflight_waits"), 0u);
  EXPECT_EQ(counter("serve.errors"), 0u);
}

TEST_F(ServeTest, HostileInputNeverKillsTheLoop) {
  ServiceConfig config;  // no store: parse errors never touch a pipeline
  config.artifacts = nullptr;
  ReportService service(std::move(config));

  std::string nested(300, '[');
  nested += std::string(300, ']');
  const std::string hostile[] = {
      "not json at all",
      "{\"query\":\"table1\"",                     // truncated
      "{\"query\":\"table1\",\"query\":\"t\"}",    // duplicate key
      "[\"query\",\"table1\"]",                    // non-object root
      "{\"query\":\"nope\"}",                      // unknown query
      "{\"query\":\"table1\",\"scale\":\"huge\"}", // unknown scale
      "{\"query\":\"table1\",\"bogus\":1}",        // unknown field
      "{\"query\":\"table2\",\"xi\":1.5}",         // xi out of range
      "{\"query\":\"table2\",\"xi\":\"x\"}",       // xi wrong type
      "{\"query\":\"table2\",\"xi\":0.5,\"xis\":[0.5]}",  // both forms
      "{\"query\":\"table1\",\"xi\":0.5}",         // xi on a non-xi query
      "{\"query\":\"ping\",\"id\":[1]}",           // unsupported id type
      nested,                                      // past the depth cap
      std::string(2 << 20, 'x'),                   // oversized line
  };
  for (const std::string& line : hostile) {
    const QueryResponse response = service.handle_line(line);
    EXPECT_FALSE(response.ok) << line.substr(0, 60);
    EXPECT_NE(response.json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(response.json.find("\"error\":"), std::string::npos);
  }
  EXPECT_EQ(counter("serve.errors"), std::size(hostile));

  // The daemon is still alive and answering.
  const QueryResponse ping = service.handle_line("{\"query\":\"ping\"}");
  EXPECT_TRUE(ping.ok);
  EXPECT_NE(ping.json.find("\"scale\":\"tiny\""), std::string::npos);
  EXPECT_FALSE(service.shutdown_requested());

  // The same corpus through serve_stream: one response line per request
  // line, and the loop reaches the trailing ping.
  std::string input;
  for (const std::string& line : hostile) input += line + "\n";
  input += "{\"id\":7,\"query\":\"ping\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  service.serve_stream(in, out);
  std::size_t lines = 0;
  for (const char c : out.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, std::size(hostile) + 1);
  EXPECT_NE(out.str().find("{\"id\":7,\"ok\":true,\"query\":\"ping\""),
            std::string::npos);
}

TEST_F(ServeTest, StreamServesStatsAndStopsOnShutdown) {
  ServiceConfig config;
  config.artifacts = make_store();
  ReportService service(std::move(config));

  std::istringstream in(
      "{\"id\":\"a\",\"query\":\"ping\"}\n"
      "\n"
      "{\"id\":\"b\",\"query\":\"stats\"}\n"
      "{\"id\":\"c\",\"query\":\"shutdown\"}\n"
      "{\"id\":\"d\",\"query\":\"ping\"}\n");
  std::ostringstream out;
  service.serve_stream(in, out);

  const std::string text = out.str();
  EXPECT_NE(text.find("{\"id\":\"a\",\"ok\":true"), std::string::npos);
  EXPECT_NE(text.find("\"serve\":{"), std::string::npos);
  EXPECT_NE(text.find("\"store\":{"), std::string::npos);
  EXPECT_NE(text.find("\"query_ms\":{"), std::string::npos);
  EXPECT_NE(text.find("{\"id\":\"c\",\"ok\":true"), std::string::npos);
  // The loop stopped at the shutdown boundary: "d" was never served.
  EXPECT_EQ(text.find("\"id\":\"d\""), std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST_F(ServeTest, UnixSocketRoundTrip) {
  ServiceConfig config;
  config.artifacts = nullptr;
  config.workers = 2;
  ReportService service(std::move(config));

  const std::string path = (root_ / "serve.sock").string();
  fs::create_directories(root_);
  std::thread daemon([&]() { service.serve_unix_socket(path); });

  // Wait for the socket to be bound and connectable.
  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  const std::string request =
      "{\"id\":1,\"query\":\"ping\"}\n"
      "{\"id\":2,\"query\":\"bogus\"}\n"
      "{\"id\":3,\"query\":\"shutdown\"}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ::shutdown(fd, SHUT_WR);

  std::string reply;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  daemon.join();

  EXPECT_NE(reply.find("{\"id\":1,\"ok\":true,\"query\":\"ping\""),
            std::string::npos);
  // A request that fails validation still gets a structured error line
  // (the id may be dropped when parsing aborts before reaching it).
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.find("unknown query 'bogus'"), std::string::npos);
  EXPECT_NE(reply.find("{\"id\":3,\"ok\":true,\"query\":\"shutdown\""),
            std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
  EXPECT_FALSE(fs::exists(path)) << "socket file not cleaned up";
}

TEST_F(ServeTest, ResolverBoundsResidencyAndRenderCacheEvicts) {
  // Pipelines are lazy, so residency mechanics are cheap to exercise: no
  // stage computes until a render asks for it.
  ArtifactResolver resolver(nullptr, /*max_resident=*/1);
  const Scenario tiny = Scenario::at_scale(Scale::kTiny);
  const std::shared_ptr<Pipeline> clean =
      resolver.pipeline(tiny, fault::FaultPlan::none());
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(resolver.resident_count(), 1u);
  // Warm repeat: the same instance comes back.
  EXPECT_EQ(resolver.pipeline(tiny, fault::FaultPlan::none()).get(),
            clean.get());

  const std::shared_ptr<Pipeline> chaos =
      resolver.pipeline(tiny, fault::FaultPlan::chaos());
  EXPECT_EQ(resolver.resident_count(), 1u) << "LRU bound not enforced";
  EXPECT_EQ(counter("serve.pipeline_evicted"), 1u);
  // The clean world was evicted; re-resolving builds a fresh instance while
  // the old shared_ptr stays valid for in-flight readers.
  const std::shared_ptr<Pipeline> rebuilt =
      resolver.pipeline(tiny, fault::FaultPlan::none());
  EXPECT_NE(rebuilt.get(), clean.get());
  EXPECT_EQ(clean->scenario().scale, Scale::kTiny);
  EXPECT_NE(chaos, nullptr);

  // Render-cache LRU: with room for one render, alternating queries evict
  // each other and the repeat is a recompute, not a cache hit.
  ServiceConfig config = service_config();
  config.max_cached_renders = 1;
  ReportService service(std::move(config));
  const QueryRequest table1 =
      report_request("table1", fault::FaultPlan::none());
  const QueryRequest figure1 =
      report_request("figure1", fault::FaultPlan::none());
  ASSERT_TRUE(service.execute(table1).ok);
  ASSERT_TRUE(service.execute(figure1).ok);
  const QueryResponse repeat = service.execute(table1);
  ASSERT_TRUE(repeat.ok);
  EXPECT_FALSE(repeat.cached) << "evicted render reported as cached";
  EXPECT_GE(counter("serve.render_evicted"), 2u);
}

TEST_F(ServeTest, IspMatrixIsIndividuallyAddressable) {
  const Scenario tiny = Scenario::at_scale(Scale::kTiny);
  std::vector<std::uint8_t> cold_bytes;
  AsIndex isp = 0;
  {
    const Pipeline pipeline(tiny, fault::FaultPlan::none(), make_store());
    isp = pipeline.hosting_isps_2023().front();
    const LatencyMatrix cold = pipeline.isp_latency_matrix(isp);
    EXPECT_GT(cold.row_count(), 0u);
    store::ByteWriter writer;
    store::encode(writer, cold);
    cold_bytes = writer.take();
  }

  // A fresh pipeline over the same root serves the matrix from the store
  // without recomputing -- the per-ISP artifact is individually warm even
  // though no clustering pass ever ran.
  ServiceConfig config = service_config();
  const std::shared_ptr<store::ArtifactStore> artifacts = config.artifacts;
  const Pipeline warm(tiny, fault::FaultPlan::none(), artifacts);
  const LatencyMatrix matrix = warm.isp_latency_matrix(isp);
  store::ByteWriter writer;
  store::encode(writer, matrix);
  EXPECT_EQ(writer.bytes(), cold_bytes);
  const store::StoreStats stats = artifacts->stats();
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace repro
