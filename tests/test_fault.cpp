#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "core/analyses.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "fault/stage_health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "scan/scanner.h"
#include "topology/generator.h"

namespace repro {
namespace {

// ------------------------------------------------------------ FaultPlan --

TEST(FaultPlan, NoneIsInactiveAndChaosIsActive) {
  EXPECT_FALSE(fault::FaultPlan::none().active());
  EXPECT_FALSE(fault::FaultPlan{}.active());
  EXPECT_TRUE(fault::FaultPlan::chaos().active());
  EXPECT_FALSE(fault::FaultPlan::chaos().scaled_by(0.0).active());
}

TEST(FaultPlan, ScaledByClampsRatesAndKeepsSeed) {
  const fault::FaultPlan huge = fault::FaultPlan::chaos().scaled_by(1000.0);
  EXPECT_LE(huge.scan.burst_miss_rate, 0.95);
  EXPECT_LE(huge.ping.vp_outage_rate, 0.95);
  EXPECT_LE(huge.cert.garbled_cn_rate, 0.95);
  EXPECT_EQ(huge.seed, fault::FaultPlan::chaos().seed);
  // Severities are not rates and must not scale.
  EXPECT_DOUBLE_EQ(huge.ping.icmp_storm_failure,
                   fault::FaultPlan::chaos().ping.icmp_storm_failure);

  const fault::FaultPlan half = fault::FaultPlan::chaos().scaled_by(0.5);
  EXPECT_DOUBLE_EQ(half.scan.burst_coverage,
                   fault::FaultPlan::chaos().scan.burst_coverage * 0.5);
}

TEST(FaultPlan, ToJsonParses) {
  const obs::JsonValue parsed =
      obs::parse_json(fault::FaultPlan::chaos().to_json());
  EXPECT_EQ(parsed.at("seed").number(), 4242.0);
  EXPECT_GT(parsed.at("ping.vp_outage_rate").number(), 0.0);
  EXPECT_GT(parsed.at("route.flap_rate").number(), 0.0);
  EXPECT_GT(parsed.at("rdns.missing_ptr_rate").number(), 0.0);
  EXPECT_EQ(parsed.at("store.corrupt_rate").number(), 0.0);
}

TEST(FaultPlan, ScaledByZeroAndSaturation) {
  // Factor 0 zeroes every rate family, including the new ones.
  const fault::FaultPlan zero = fault::FaultPlan::chaos().scaled_by(0.0);
  EXPECT_FALSE(zero.active());
  EXPECT_DOUBLE_EQ(zero.route.flap_rate, 0.0);
  EXPECT_DOUBLE_EQ(zero.rdns.missing_ptr_rate, 0.0);
  EXPECT_DOUBLE_EQ(zero.rdns.stale_ptr_rate, 0.0);
  EXPECT_DOUBLE_EQ(zero.rdns.garbled_ptr_rate, 0.0);
  EXPECT_DOUBLE_EQ(zero.store.corrupt_rate, 0.0);
  // A negative factor behaves like 0, not like a sign flip.
  EXPECT_FALSE(fault::FaultPlan::chaos().scaled_by(-2.0).active());

  // Factor >> 1 saturates every rate at the clamp, never above.
  fault::FaultPlan storeful = fault::FaultPlan::chaos();
  storeful.store.corrupt_rate = 0.5;
  const fault::FaultPlan huge = storeful.scaled_by(1000.0);
  EXPECT_DOUBLE_EQ(huge.route.flap_rate, 0.95);
  EXPECT_DOUBLE_EQ(huge.rdns.missing_ptr_rate, 0.95);
  EXPECT_DOUBLE_EQ(huge.store.corrupt_rate, 0.95);
  // Non-rate knobs never scale: periods, severities, fractions.
  EXPECT_EQ(huge.route.flap_period, fault::FaultPlan::chaos().route.flap_period);
  EXPECT_DOUBLE_EQ(huge.store.truncate_fraction,
                   fault::FaultPlan::chaos().store.truncate_fraction);

  // Scaling composes: (x * 0.5) * 2 == x for rates under the clamp.
  const fault::FaultPlan half = fault::FaultPlan::chaos().scaled_by(0.5);
  EXPECT_DOUBLE_EQ(half.scaled_by(2.0).route.flap_rate,
                   fault::FaultPlan::chaos().route.flap_rate);
}

TEST(FaultPlan, SanitizedRepairsGarbageInputs) {
  obs::metrics().reset();
  fault::FaultPlan plan = fault::FaultPlan::chaos();
  plan.scan.shard_truncation = -0.5;                            // negative
  plan.rdns.missing_ptr_rate = 3.0;                             // > 1
  plan.route.flap_rate = std::nan("");                          // NaN
  plan.ping.icmp_storm_failure = 42.0;                          // severity > 1
  plan.store.truncate_fraction = -1.0;                          // fraction < 0
  plan.route.flap_period = 0;                                   // period 0
  const fault::FaultPlan fixed = plan.sanitized();
  EXPECT_DOUBLE_EQ(fixed.scan.shard_truncation, 0.0);
  EXPECT_LE(fixed.rdns.missing_ptr_rate, 0.95);
  EXPECT_DOUBLE_EQ(fixed.route.flap_rate, 0.0);  // NaN repairs to inactive
  EXPECT_LE(fixed.ping.icmp_storm_failure, 1.0);
  EXPECT_GE(fixed.store.truncate_fraction, 0.0);
  EXPECT_GE(fixed.route.flap_period, 1u);
  std::uint64_t clamped = 0;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (name == "fault.plan_clamped") clamped = value;
  }
  EXPECT_GE(clamped, 6u) << "every repair must be counted";

  // A plan that is already sane is returned untouched and uncounted.
  obs::metrics().reset();
  const fault::FaultPlan sane = fault::FaultPlan::chaos().sanitized();
  EXPECT_DOUBLE_EQ(sane.route.flap_rate,
                   fault::FaultPlan::chaos().route.flap_rate);
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (name == "fault.plan_clamped") {
      EXPECT_EQ(value, 0u);
    }
  }
}

TEST(FaultPlan, MeasurementJsonExcludesNonMeasurementFamilies) {
  // Route, rDNS and store knobs must not move the measurement digest: they
  // change observations (or persisted bytes), never the measurement
  // artifacts, so plans differing only there share warm artifacts.
  fault::FaultPlan plan = fault::FaultPlan::none();
  const std::string clean = plan.measurement_json();
  plan.route.flap_rate = 0.5;
  plan.rdns.stale_ptr_rate = 0.5;
  plan.store.corrupt_rate = 0.5;
  EXPECT_EQ(plan.measurement_json(), clean);
  EXPECT_NE(plan.to_json(), fault::FaultPlan::none().to_json());

  // Measurement knobs move it.
  plan.scan.shard_truncation = 0.1;
  EXPECT_NE(plan.measurement_json(), clean);

  // to_json embeds measurement_json as a prefix (same fields, same order),
  // so pre-existing stores keyed on the old to_json stay warm for clean
  // plans.
  const std::string full = fault::FaultPlan::chaos().to_json();
  const std::string measurement = fault::FaultPlan::chaos().measurement_json();
  EXPECT_EQ(full.rfind(measurement.substr(0, measurement.size() - 1), 0), 0u);
}

TEST(FaultPlan, FromEnvParsesAndSanitizes) {
  const auto with_env = [](const char* fault, const char* intensity,
                           const char* store_rate) {
    if (fault != nullptr) ::setenv("REPRO_FAULT", fault, 1);
    if (intensity != nullptr) ::setenv("REPRO_FAULT_INTENSITY", intensity, 1);
    if (store_rate != nullptr) ::setenv("REPRO_FAULT_STORE", store_rate, 1);
    const fault::FaultPlan plan = fault::FaultPlan::from_env();
    ::unsetenv("REPRO_FAULT");
    ::unsetenv("REPRO_FAULT_INTENSITY");
    ::unsetenv("REPRO_FAULT_STORE");
    return plan;
  };

  EXPECT_FALSE(with_env(nullptr, nullptr, nullptr).active());
  EXPECT_TRUE(with_env("1", nullptr, nullptr).active());
  EXPECT_DOUBLE_EQ(with_env("chaos", nullptr, nullptr).route.flap_rate,
                   fault::FaultPlan::chaos().route.flap_rate);
  EXPECT_DOUBLE_EQ(with_env("0.5", nullptr, nullptr).scan.shard_truncation,
                   fault::FaultPlan::chaos().scan.shard_truncation * 0.5);
  // Garbage intensity is repaired, not trusted.
  EXPECT_LE(with_env("1", "999", nullptr).scan.burst_miss_rate, 0.95);
  EXPECT_FALSE(with_env("nan", nullptr, nullptr).active());
  // Store chaos is opt-in via its own knob and clamps like every rate.
  const fault::FaultPlan store_only = with_env(nullptr, nullptr, "0.4");
  EXPECT_DOUBLE_EQ(store_only.store.corrupt_rate, 0.4);
  EXPECT_DOUBLE_EQ(store_only.scan.shard_truncation, 0.0);
  EXPECT_LE(with_env(nullptr, nullptr, "7.0").store.corrupt_rate, 0.95);
}

// ---------------------------------------------------------- StageHealth --

TEST(StageHealth, MergeTakesWorstStatusAndAddsCounts) {
  fault::StageHealth a;
  a.status = fault::StageStatus::kDegraded;
  a.dropped = 3;
  a.total = 10;
  a.reasons = {"x"};
  fault::StageHealth b;
  b.status = fault::StageStatus::kOk;
  b.dropped = 0;
  b.total = 5;
  b.reasons = {"x", "y"};
  a.merge(b);
  EXPECT_EQ(a.status, fault::StageStatus::kDegraded);
  EXPECT_EQ(a.dropped, 3u);
  EXPECT_EQ(a.total, 15u);
  EXPECT_EQ(a.reasons, (std::vector<std::string>{"x", "y"}));
}

TEST(StageHealth, OverallStatusIsWorstAcrossStages) {
  std::map<std::string, fault::StageHealth> stages;
  EXPECT_EQ(fault::overall_status(stages), fault::StageStatus::kOk);
  stages["a"].status = fault::StageStatus::kOk;
  stages["b"].status = fault::StageStatus::kFailed;
  stages["c"].status = fault::StageStatus::kDegraded;
  EXPECT_EQ(fault::overall_status(stages), fault::StageStatus::kFailed);
}

TEST(StageHealth, SectionJsonParses) {
  std::map<std::string, fault::StageHealth> stages;
  stages["scan"].status = fault::StageStatus::kDegraded;
  stages["scan"].dropped = 7;
  stages["scan"].total = 100;
  stages["scan"].reasons = {"lost \"shard\" 3"};
  const obs::JsonValue parsed = obs::parse_json(
      fault::fault_section_json(fault::FaultPlan::chaos().to_json(), stages));
  EXPECT_EQ(parsed.at("overall").str(), "degraded");
  EXPECT_EQ(parsed.at("stages").at("scan").at("dropped").number(), 7.0);
  EXPECT_EQ(parsed.at("plan").at("seed").number(), 4242.0);
}

// -------------------------------------------------------- Scan injection --

/// A synthetic population spread over many /8 shards and /16 regions.
CertStore synthetic_population(std::size_t count) {
  CertStore store;
  for (std::size_t i = 0; i < count; ++i) {
    TlsCertificate cert;
    cert.subject.common_name = "host-" + std::to_string(i) + ".example.net";
    cert.san_dns = {cert.subject.common_name};
    cert.serial = 1000 + i;
    // Spread across 64 /8s and 16 /16s within each.
    const std::uint32_t ip = static_cast<std::uint32_t>(
        ((i % 64) << 24) | ((i % 16) << 16) | (i & 0xFFFF));
    store.install(Ipv4(ip), std::move(cert));
  }
  return store;
}

std::vector<ScanRecord> synthetic_records(std::size_t count) {
  std::vector<ScanRecord> records;
  for (const TlsEndpoint& endpoint : synthetic_population(count).all_sorted()) {
    records.push_back({endpoint.ip, endpoint.cert});
  }
  return records;
}

TEST(ScanFaults, InactivePlanIsIdentity) {
  const auto records = synthetic_records(500);
  fault::ScanFaultOutcome outcome;
  const auto out =
      fault::inject_scan_faults(records, fault::FaultPlan::none(), &outcome);
  EXPECT_EQ(out.size(), records.size());
  EXPECT_EQ(outcome.dropped(), 0u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ip, records[i].ip);
  }
}

TEST(ScanFaults, ShardTruncationDropsWholeShards) {
  const auto records = synthetic_records(2000);
  fault::FaultPlan plan;
  plan.scan.shard_truncation = 0.4;
  fault::ScanFaultOutcome outcome;
  const auto out = fault::inject_scan_faults(records, plan, &outcome);
  EXPECT_GT(outcome.truncated, 0u);
  EXPECT_EQ(outcome.burst_missed, 0u);
  EXPECT_EQ(out.size() + outcome.truncated, records.size());

  // All-or-nothing per /8: every surviving shard must be complete.
  std::map<std::uint32_t, std::size_t> before, after;
  for (const auto& record : records) ++before[record.ip.value() >> 24];
  for (const auto& record : out) ++after[record.ip.value() >> 24];
  for (const auto& [shard, count] : after) {
    EXPECT_EQ(count, before.at(shard)) << "shard " << shard << " truncated "
                                       << "partially, not wholesale";
  }

  // Deterministic replay.
  const auto again = fault::inject_scan_faults(records, plan);
  ASSERT_EQ(again.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(again[i].ip, out[i].ip);
  }
}

TEST(ScanFaults, MissBurstsConfinedToBurstRegions) {
  const auto records = synthetic_records(2000);
  fault::FaultPlan plan;
  plan.scan.burst_coverage = 0.5;
  plan.scan.burst_miss_rate = 1.0;  // every record in a bursty /16 is lost
  fault::ScanFaultOutcome outcome;
  const auto out = fault::inject_scan_faults(records, plan, &outcome);
  EXPECT_GT(outcome.burst_missed, 0u);
  EXPECT_EQ(outcome.truncated, 0u);

  // With miss rate 1.0 a /16 region is either untouched or emptied.
  std::map<std::uint32_t, std::size_t> before, after;
  for (const auto& record : records) ++before[record.ip.value() >> 16];
  for (const auto& record : out) ++after[record.ip.value() >> 16];
  for (const auto& [region, count] : after) {
    EXPECT_EQ(count, before.at(region));
  }
  EXPECT_LT(after.size(), before.size());
}

// -------------------------------------------------------- Cert injection --

TEST(CertFaults, GarbledCertsLoseNamesAndChurnedKeepThem) {
  CertStore store = synthetic_population(1000);
  const CertStore original = store;
  fault::FaultPlan plan;
  plan.cert.churn_rate = 0.3;
  plan.cert.garbled_cn_rate = 0.2;
  fault::CertFaultOutcome outcome;
  fault::inject_cert_faults(store, plan, &outcome);
  EXPECT_GT(outcome.churned, 0u);
  EXPECT_GT(outcome.garbled, 0u);
  EXPECT_EQ(store.size(), original.size());  // rewritten, never removed

  std::size_t garbled = 0;
  std::size_t churned = 0;
  for (const TlsEndpoint& endpoint : original.all_sorted()) {
    const TlsCertificate mutated = *store.lookup(endpoint.ip);
    if (mutated == endpoint.cert) continue;
    if (mutated.subject.common_name.starts_with("garbled-")) {
      ++garbled;
      EXPECT_TRUE(mutated.san_dns.empty());
      EXPECT_TRUE(mutated.subject.organization.empty());
    } else {
      // Churn: new serial/validity, names intact.
      ++churned;
      EXPECT_EQ(mutated.subject.common_name, endpoint.cert.subject.common_name);
      EXPECT_EQ(mutated.san_dns, endpoint.cert.san_dns);
      EXPECT_NE(mutated.serial, endpoint.cert.serial);
    }
  }
  EXPECT_EQ(garbled, outcome.garbled);
  EXPECT_EQ(churned, outcome.churned);
}

TEST(CertFaults, InactivePlanNeverMutates) {
  CertStore store = synthetic_population(200);
  const CertStore original = store;
  fault::inject_cert_faults(store, fault::FaultPlan::none());
  for (const TlsEndpoint& endpoint : original.all_sorted()) {
    EXPECT_EQ(*store.lookup(endpoint.ip), endpoint.cert);
  }
}

// ------------------------------------------------------- Scanner replay --

TEST(ScannerReplay, NonzeroMissRateIsDeterministic) {
  const CertStore population = synthetic_population(3000);
  ScannerConfig config;
  config.seed = 77;
  config.miss_rate = 0.3;
  const Scanner scanner(config);
  const auto a = scanner.scan(population);
  const auto b = scanner.scan(population);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(a.size(), population.size());  // misses actually happened
  EXPECT_GT(a.size(), population.size() / 2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ip, b[i].ip);
    EXPECT_EQ(a[i].cert, b[i].cert);
  }
  // A different seed must miss a different subset.
  config.seed = 78;
  const auto c = Scanner(config).scan(population);
  std::set<std::uint32_t> ips_a, ips_c;
  for (const auto& record : a) ips_a.insert(record.ip.value());
  for (const auto& record : c) ips_c.insert(record.ip.value());
  EXPECT_NE(ips_a, ips_c);
}

// ----------------------------------------------------------- Ping faults --

class PingFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    vps_ = new VantagePointSet(*net_, 40, 163163);
  }
  static void TearDownTestSuite() {
    delete vps_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static VantagePointSet* vps_;
};

Internet* PingFaultTest::net_ = nullptr;
OffnetRegistry* PingFaultTest::registry_ = nullptr;
VantagePointSet* PingFaultTest::vps_ = nullptr;

TEST_F(PingFaultTest, ZeroRatesNeverDarkOrStorming) {
  const PingMesh mesh(*net_, *vps_, PingConfig{});
  for (std::size_t vp = 0; vp < vps_->size(); ++vp) {
    EXPECT_FALSE(mesh.vp_dark(vp));
  }
  for (const AsIndex isp : registry_->hosting_isps()) {
    EXPECT_FALSE(mesh.isp_storm_limited(isp));
  }
}

TEST_F(PingFaultTest, DarkVantagePointsAnswerNothing) {
  PingConfig config;
  fault::FaultPlan plan;
  plan.ping.vp_outage_rate = 0.3;
  fault::apply_ping_faults(config, plan);
  const PingMesh mesh(*net_, *vps_, config);
  std::size_t dark = 0;
  for (std::size_t vp = 0; vp < vps_->size(); ++vp) {
    if (!mesh.vp_dark(vp)) continue;
    ++dark;
    for (std::size_t s = 0; s < 5; ++s) {
      EXPECT_TRUE(std::isnan(
          mesh.measure_once((*vps_)[vp], registry_->servers()[s])));
    }
  }
  EXPECT_GT(dark, 0u);
  EXPECT_LT(dark, vps_->size());
}

TEST_F(PingFaultTest, StormRaisesFailureRateForStormIsps) {
  PingConfig config;
  fault::FaultPlan plan;
  plan.ping.icmp_storm_rate = 0.5;
  plan.ping.icmp_storm_failure = 0.97;
  fault::apply_ping_faults(config, plan);
  const PingMesh mesh(*net_, *vps_, config);
  const PingMesh clean(*net_, *vps_, PingConfig{});

  std::size_t storm_nan = 0, storm_all = 0, calm_nan = 0, calm_all = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    // Skip ISPs with baseline pathologies so the storm effect is isolated.
    if (clean.isp_icmp_limited(isp)) continue;
    for (const std::size_t si : registry_->servers_at(isp)) {
      const OffnetServer& server = registry_->servers()[si];
      if (clean.ip_unresponsive(server.ip)) continue;
      for (std::size_t vp = 0; vp < 10; ++vp) {
        const bool failed =
            std::isnan(mesh.measure_once((*vps_)[vp], server));
        if (mesh.isp_storm_limited(isp)) {
          ++storm_all;
          storm_nan += failed ? 1 : 0;
        } else {
          ++calm_all;
          calm_nan += failed ? 1 : 0;
        }
      }
    }
  }
  ASSERT_GT(storm_all, 100u);
  ASSERT_GT(calm_all, 100u);
  const double storm_rate = static_cast<double>(storm_nan) / storm_all;
  const double calm_rate = static_cast<double>(calm_nan) / calm_all;
  EXPECT_GT(storm_rate, 0.5);
  EXPECT_LT(calm_rate, 0.2);
}

TEST_F(PingFaultTest, RetryBudgetRecoversTransientFailuresOnly) {
  PingConfig flaky;
  flaky.probe_loss = 0.75;  // most single rounds fail to get 2 responses
  const PingMesh once(*net_, *vps_, flaky);
  PingConfig retrying = flaky;
  retrying.retry_budget = 4;
  retrying.fault_seed = 4242;
  const PingMesh retried(*net_, *vps_, retrying);

  std::size_t recovered = 0;
  std::size_t checked = 0;
  for (std::size_t s = 0; s < 40 && s < registry_->server_count(); ++s) {
    const OffnetServer& server = registry_->servers()[s];
    for (std::size_t vp = 0; vp < 10; ++vp) {
      const double single = once.measure_once((*vps_)[vp], server);
      const double multi = retried.measure_once((*vps_)[vp], server);
      ++checked;
      if (!std::isnan(single)) {
        // A first-round success must be bit-identical with retries enabled.
        EXPECT_DOUBLE_EQ(single, multi);
      } else if (!std::isnan(multi)) {
        ++recovered;
      }
      if (once.ip_unresponsive(server.ip)) {
        // Deterministic outages are never retried back to life.
        EXPECT_TRUE(std::isnan(multi));
      }
    }
  }
  ASSERT_GT(checked, 100u);
  EXPECT_GT(recovered, 0u);
}

TEST_F(PingFaultTest, ExtraUnresponsiveAndImpossibleRatesRaiseBaseline) {
  PingConfig config;
  fault::FaultPlan plan;
  plan.ping.extra_unresponsive_rate = 0.2;
  plan.anycast.impossible_ip_rate = 0.05;
  fault::apply_ping_faults(config, plan);
  const PingMesh faulted(*net_, *vps_, config);
  const PingMesh clean(*net_, *vps_, PingConfig{});

  std::size_t clean_unresponsive = 0, faulted_unresponsive = 0;
  std::size_t clean_split = 0, faulted_split = 0;
  for (const OffnetServer& server : registry_->servers()) {
    clean_unresponsive += clean.ip_unresponsive(server.ip) ? 1 : 0;
    faulted_unresponsive += faulted.ip_unresponsive(server.ip) ? 1 : 0;
    clean_split += clean.ip_split_personality(server.ip) ? 1 : 0;
    faulted_split += faulted.ip_split_personality(server.ip) ? 1 : 0;
    // Threshold raising is monotone: baseline pathologies are preserved.
    if (clean.ip_unresponsive(server.ip)) {
      EXPECT_TRUE(faulted.ip_unresponsive(server.ip));
    }
  }
  EXPECT_GT(faulted_unresponsive, clean_unresponsive);
  EXPECT_GT(faulted_split, clean_split);
}

// ------------------------------------------------- Degraded pipeline ------

TEST(FaultPipeline, ZeroFaultPlanIsBitIdenticalToNoPlan) {
  const Pipeline bare(Scenario::tiny());
  const Pipeline with_plan(Scenario::tiny(), fault::FaultPlan::none());

  const auto& records_a = bare.scan_records(Snapshot::k2023);
  const auto& records_b = with_plan.scan_records(Snapshot::k2023);
  ASSERT_EQ(records_a.size(), records_b.size());
  for (std::size_t i = 0; i < records_a.size(); ++i) {
    ASSERT_EQ(records_a[i].ip, records_b[i].ip);
    ASSERT_EQ(records_a[i].cert, records_b[i].cert);
  }

  const Table1Study t1_a = table1_study(bare);
  const Table1Study t1_b = table1_study(with_plan);
  EXPECT_EQ(t1_a.total_offnet_ips_2023, t1_b.total_offnet_ips_2023);
  EXPECT_EQ(t1_a.total_hosting_isps_2023, t1_b.total_hosting_isps_2023);
  ASSERT_EQ(t1_a.rows.size(), t1_b.rows.size());
  for (std::size_t i = 0; i < t1_a.rows.size(); ++i) {
    EXPECT_EQ(t1_a.rows[i].isps_2021, t1_b.rows[i].isps_2021);
    EXPECT_EQ(t1_a.rows[i].isps_2023, t1_b.rows[i].isps_2023);
    EXPECT_EQ(t1_a.rows[i].isps_2023_old_method,
              t1_b.rows[i].isps_2023_old_method);
  }

  const Figure1Study f1_a = figure1_study(bare);
  const Figure1Study f1_b = figure1_study(with_plan);
  EXPECT_EQ(f1_a.isps_ge2, f1_b.isps_ge2);
  ASSERT_EQ(f1_a.countries.size(), f1_b.countries.size());
  for (std::size_t i = 0; i < f1_a.countries.size(); ++i) {
    EXPECT_DOUBLE_EQ(f1_a.countries[i].frac_ge2, f1_b.countries[i].frac_ge2);
  }

  // Ping campaign: identical measurements, and every stage reports ok.
  const OffnetRegistry& registry = bare.registry(Snapshot::k2023);
  for (std::size_t s = 0; s < 30 && s < registry.server_count(); ++s) {
    const double a = bare.ping_mesh().measure_once(
        bare.vantage_points()[0], registry.servers()[s]);
    const double b = with_plan.ping_mesh().measure_once(
        with_plan.vantage_points()[0], registry.servers()[s]);
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(b));
    } else {
      EXPECT_DOUBLE_EQ(a, b);
    }
  }
  EXPECT_EQ(with_plan.overall_status(), fault::StageStatus::kOk);
  for (const auto& [stage, health] : with_plan.stage_health()) {
    EXPECT_EQ(health.status, fault::StageStatus::kOk) << stage;
    EXPECT_EQ(health.dropped, 0u) << stage;
  }
}

TEST(FaultPipeline, ChaosPlanDegradesButCompletes) {
  const Pipeline pipeline(Scenario::tiny(), fault::FaultPlan::chaos());
  const Table1Study t1 = table1_study(pipeline);
  EXPECT_GT(t1.total_offnet_ips_2023, 0u);
  const Figure1Study f1 = figure1_study(pipeline);
  EXPECT_GT(f1.isps_ge2, 0u);
  pipeline.ping_mesh();

  EXPECT_EQ(pipeline.overall_status(), fault::StageStatus::kDegraded);
  const auto& health = pipeline.stage_health();
  ASSERT_TRUE(health.contains("scan"));
  EXPECT_EQ(health.at("scan").status, fault::StageStatus::kDegraded);
  EXPECT_GT(health.at("scan").dropped, 0u);
  ASSERT_TRUE(health.contains("tls_population"));
  EXPECT_GT(health.at("tls_population").total, 0u);
  ASSERT_TRUE(health.contains("ping_mesh"));
  EXPECT_FALSE(health.at("ping_mesh").reasons.empty());

  // The degraded run publishes a parseable "fault" report section.
  bool found = false;
  for (const auto& [key, json] : obs::report_sections()) {
    if (key != "fault") continue;
    found = true;
    const obs::JsonValue parsed = obs::parse_json(json);
    EXPECT_EQ(parsed.at("overall").str(), "degraded");
    EXPECT_TRUE(parsed.at("stages").contains("scan"));
  }
  EXPECT_TRUE(found);
}

TEST(FaultPipeline, PopulationAndScanCachedAcrossMethodologies) {
  const Pipeline pipeline(Scenario::tiny());
  const CertStore& population = pipeline.population(Snapshot::k2023);
  const auto& records = pipeline.scan_records(Snapshot::k2023);
  pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  pipeline.discovery(Snapshot::k2023, Methodology::k2021);
  // Both methodologies classified the same cached scan of the same cached
  // population -- no rebuild per (snapshot, methodology) pair.
  EXPECT_EQ(&population, &pipeline.population(Snapshot::k2023));
  EXPECT_EQ(&records, &pipeline.scan_records(Snapshot::k2023));
  // A different snapshot is a different campaign.
  EXPECT_NE(&population, &pipeline.population(Snapshot::k2021));
}

}  // namespace
}  // namespace repro
