#include "scan/classifier.h"

#include <gtest/gtest.h>

#include <set>

#include "hypergiant/background.h"
#include "scan/scanner.h"
#include "topology/generator.h"

namespace repro {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    PopulationConfig population;
    population.onnet_servers_per_hg = 25;
    population.decoy_count = 20;
    store_ = new CertStore(
        build_tls_population(*net_, *registry_, Snapshot::k2023, population));
  }
  static void TearDownTestSuite() {
    delete store_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static CertStore* store_;
};

Internet* ScanTest::net_ = nullptr;
OffnetRegistry* ScanTest::registry_ = nullptr;
CertStore* ScanTest::store_ = nullptr;

TEST_F(ScanTest, PopulationContainsAllGroundTruthServers) {
  for (const OffnetServer& server : registry_->servers()) {
    EXPECT_TRUE(store_->contains(server.ip));
  }
  // Plus onnet + background + decoys beyond the offnet population.
  EXPECT_GT(store_->size(), registry_->server_count());
}

TEST_F(ScanTest, ScannerMissRateZeroSeesEverything) {
  ScannerConfig config;
  config.miss_rate = 0.0;
  const auto records = Scanner(config).scan(*store_);
  EXPECT_EQ(records.size(), store_->size());
}

TEST_F(ScanTest, ScannerMissRateApproximate) {
  ScannerConfig config;
  config.miss_rate = 0.2;
  const auto records = Scanner(config).scan(*store_);
  const double observed =
      1.0 - static_cast<double>(records.size()) / store_->size();
  EXPECT_NEAR(observed, 0.2, 0.03);
}

TEST_F(ScanTest, ScannerOutputSortedDeterministic) {
  ScannerConfig config;
  const auto a = Scanner(config).scan(*store_);
  const auto b = Scanner(config).scan(*store_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1].ip, a[i].ip);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].ip, b[i].ip);
}

TEST_F(ScanTest, ClassifierRecallAndPrecisionPerfectWithoutMisses) {
  ScannerConfig config;
  config.miss_rate = 0.0;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport report =
      OffnetClassifier(*net_, Methodology::k2023).classify(records);

  // Ground truth sets per hypergiant.
  for (const Hypergiant hg : all_hypergiants()) {
    std::set<Ipv4> truth;
    for (const OffnetServer& server : registry_->servers()) {
      if (server.hg == hg) truth.insert(server.ip);
    }
    std::set<Ipv4> found;
    for (const auto& [isp, ips] : report.footprint(hg).by_isp) {
      (void)isp;
      found.insert(ips.begin(), ips.end());
    }
    EXPECT_EQ(found, truth) << to_string(hg);
  }
}

TEST_F(ScanTest, ClassifierAttributesToCorrectIsp) {
  ScannerConfig config;
  config.miss_rate = 0.0;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport report =
      OffnetClassifier(*net_, Methodology::k2023).classify(records);
  for (const Hypergiant hg : all_hypergiants()) {
    const auto hosting = registry_->isps_hosting(hg);
    std::set<AsIndex> truth_isps(hosting.begin(), hosting.end());
    std::set<AsIndex> found_isps;
    for (const auto& [isp, ips] : report.footprint(hg).by_isp) {
      (void)ips;
      found_isps.insert(isp);
    }
    EXPECT_EQ(found_isps, truth_isps) << to_string(hg);
  }
}

TEST_F(ScanTest, OnnetServersExcluded) {
  ScannerConfig config;
  config.miss_rate = 0.0;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport report =
      OffnetClassifier(*net_, Methodology::k2023).classify(records);
  for (const Hypergiant hg : all_hypergiants()) {
    const AsIndex hg_as = net_->as_by_asn(profile(hg).asn);
    for (const auto& footprint : report.footprints) {
      EXPECT_FALSE(footprint.by_isp.contains(hg_as))
          << "onnet servers of " << to_string(hg) << " leaked into discovery";
    }
  }
}

TEST_F(ScanTest, OutdatedMethodologyMissesGoogleAndMeta) {
  ScannerConfig config;
  config.miss_rate = 0.0;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport old_report =
      OffnetClassifier(*net_, Methodology::k2021).classify(records);
  EXPECT_EQ(old_report.footprint(Hypergiant::kGoogle).ip_count(), 0u);
  EXPECT_EQ(old_report.footprint(Hypergiant::kMeta).ip_count(), 0u);
  // Netflix and Akamai unaffected by the convention changes.
  EXPECT_GT(old_report.footprint(Hypergiant::kNetflix).ip_count(), 0u);
  EXPECT_GT(old_report.footprint(Hypergiant::kAkamai).ip_count(), 0u);
}

TEST_F(ScanTest, HostingCountsMonotone) {
  ScannerConfig config;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport report =
      OffnetClassifier(*net_, Methodology::k2023).classify(records);
  const auto ge1 = report.isps_hosting_at_least(1).size();
  const auto ge2 = report.isps_hosting_at_least(2).size();
  const auto ge3 = report.isps_hosting_at_least(3).size();
  const auto ge4 = report.isps_hosting_at_least(4).size();
  EXPECT_GE(ge1, ge2);
  EXPECT_GE(ge2, ge3);
  EXPECT_GE(ge3, ge4);
  EXPECT_GT(ge1, 0u);
}

TEST_F(ScanTest, HypergiantsAtConsistentWithFootprints) {
  ScannerConfig config;
  const auto records = Scanner(config).scan(*store_);
  const DiscoveryReport report =
      OffnetClassifier(*net_, Methodology::k2023).classify(records);
  for (const AsIndex isp : report.isps_hosting_at_least(1)) {
    int count = 0;
    for (const Hypergiant hg : all_hypergiants()) {
      if (report.footprint(hg).by_isp.contains(isp)) ++count;
    }
    EXPECT_EQ(report.hypergiants_at(isp), count);
  }
}

TEST(ScannerConfigValidation, RejectsBadMissRate) {
  ScannerConfig config;
  config.miss_rate = 1.0;
  EXPECT_THROW(Scanner{config}, Error);
  config.miss_rate = -0.1;
  EXPECT_THROW(Scanner{config}, Error);
}

}  // namespace
}  // namespace repro
