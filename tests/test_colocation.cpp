#include "cluster/colocation.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/generator.h"

namespace repro {
namespace {

class ColocationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    vps_ = new VantagePointSet(*net_, 40, 163163);
    mesh_ = new PingMesh(*net_, *vps_, PingConfig{});
    ColocationConfig cluster_config;
    cluster_config.filter.min_usable_sites = 25;
    clusterer_ = new ColocationClusterer(*registry_, *mesh_, *vps_, cluster_config);
  }
  static void TearDownTestSuite() {
    delete clusterer_;
    delete mesh_;
    delete vps_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static VantagePointSet* vps_;
  static PingMesh* mesh_;
  static ColocationClusterer* clusterer_;
};

Internet* ColocationTest::net_ = nullptr;
OffnetRegistry* ColocationTest::registry_ = nullptr;
VantagePointSet* ColocationTest::vps_ = nullptr;
PingMesh* ColocationTest::mesh_ = nullptr;
ColocationClusterer* ColocationTest::clusterer_ = nullptr;

TEST_F(ColocationTest, MostIspsUsable) {
  std::size_t usable = 0;
  std::size_t total = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    ++total;
    if (clusterer_->cluster_isp(isp).usable) ++usable;
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(usable) / total, 0.8);
}

TEST_F(ColocationTest, ClustersNeverSpanFacilities) {
  // Precision of the clustering: two IPs in the same cluster should be in
  // the same ground-truth facility (at the conservative xi).
  std::size_t pairs = 0;
  std::size_t agree = 0;
  int isps = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    if (!clustering.usable) continue;
    if (++isps > 25) break;
    std::map<int, std::set<FacilityIndex>> facilities_by_label;
    for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
      if (clustering.labels[i] < 0) continue;
      facilities_by_label[clustering.labels[i]].insert(
          registry_->servers()[clustering.registry_indices[i]].facility);
    }
    for (const auto& [label, facilities] : facilities_by_label) {
      (void)label;
      ++pairs;
      if (facilities.size() == 1) ++agree;
    }
  }
  ASSERT_GT(pairs, 20u);
  EXPECT_GT(static_cast<double>(agree) / pairs, 0.9);
}

TEST_F(ColocationTest, SameRackServersClusterTogether) {
  // Recall: servers of different hypergiants in the same facility and rack
  // should mostly land in the same cluster even at xi = 0.1.
  std::size_t same_rack_pairs = 0;
  std::size_t clustered_together = 0;
  int isps = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    if (!clustering.usable) continue;
    if (++isps > 20) break;
    for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
      const OffnetServer& a = registry_->servers()[clustering.registry_indices[i]];
      for (std::size_t j = i + 1; j < clustering.registry_indices.size(); ++j) {
        const OffnetServer& b =
            registry_->servers()[clustering.registry_indices[j]];
        if (a.facility != b.facility || a.rack != b.rack || a.hg == b.hg) continue;
        ++same_rack_pairs;
        if (clustering.labels[i] >= 0 &&
            clustering.labels[i] == clustering.labels[j]) {
          ++clustered_together;
        }
      }
    }
  }
  ASSERT_GT(same_rack_pairs, 50u);
  EXPECT_GT(static_cast<double>(clustered_together) / same_rack_pairs, 0.7);
}

TEST_F(ColocationTest, MultiXiMatchesSingleXi) {
  const AsIndex isp = registry_->hosting_isps().front();
  const double xis[] = {0.1, 0.9};
  const auto multi = clusterer_->cluster_isp_multi(isp, xis);
  ASSERT_EQ(multi.size(), 2u);
  ColocationConfig config_01;
  config_01.xi = 0.1;
  config_01.filter.min_usable_sites = 25;
  ColocationConfig config_09;
  config_09.xi = 0.9;
  config_09.filter.min_usable_sites = 25;
  const auto single_01 =
      ColocationClusterer(*registry_, *mesh_, *vps_, config_01).cluster_isp(isp);
  const auto single_09 =
      ColocationClusterer(*registry_, *mesh_, *vps_, config_09).cluster_isp(isp);
  EXPECT_EQ(multi[0].labels, single_01.labels);
  EXPECT_EQ(multi[1].labels, single_09.labels);
}

TEST_F(ColocationTest, HigherXiNeverFindsMoreClusters) {
  int checked = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    const double xis[] = {0.1, 0.9};
    const auto multi = clusterer_->cluster_isp_multi(isp, xis);
    if (!multi[0].usable) continue;
    EXPECT_GE(multi[0].cluster_count, multi[1].cluster_count)
        << net_->ases[isp].name;
    if (++checked > 30) break;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(ColocationTest, ColocationStatsConsistent) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    if (!clustering.usable) continue;
    std::size_t total = 0;
    for (const Hypergiant hg : all_hypergiants()) {
      const HgColocation stats = colocation_of(clustering, *registry_, hg);
      EXPECT_LE(stats.colocated_ips, stats.total_ips);
      EXPECT_GE(stats.fraction(), 0.0);
      EXPECT_LE(stats.fraction(), 1.0);
      total += stats.total_ips;
    }
    EXPECT_EQ(total, clustering.registry_indices.size());
    break;
  }
}

TEST_F(ColocationTest, SiteCountsPositiveForHostedHgs) {
  int checked = 0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    if (!clustering.usable) continue;
    for (const Hypergiant hg : surviving_hypergiants(clustering, *registry_)) {
      EXPECT_GT(inferred_site_count(clustering, *registry_, hg), 0);
    }
    if (++checked > 10) break;
  }
  EXPECT_GT(checked, 5);
}

TEST_F(ColocationTest, SingleHgIspHasNoColocation) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    if (registry_->hypergiants_at(isp).size() != 1) continue;
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    if (!clustering.usable) continue;
    const Hypergiant hg = registry_->hypergiants_at(isp).front();
    EXPECT_EQ(colocation_of(clustering, *registry_, hg).colocated_ips, 0u);
    return;
  }
  GTEST_SKIP() << "no single-hypergiant ISP in tiny world";
}

TEST_F(ColocationTest, UnusableIspReportsEmpty) {
  // ICMP-limited ISPs fall below the threshold and come back unusable.
  for (const AsIndex isp : registry_->hosting_isps()) {
    if (!mesh_->isp_icmp_limited(isp)) continue;
    const IspClustering clustering = clusterer_->cluster_isp(isp);
    EXPECT_FALSE(clustering.usable);
    EXPECT_TRUE(clustering.registry_indices.empty());
    for (const Hypergiant hg : all_hypergiants()) {
      EXPECT_EQ(colocation_of(clustering, *registry_, hg).total_ips, 0u);
      EXPECT_EQ(inferred_site_count(clustering, *registry_, hg), 0);
    }
    return;
  }
  GTEST_SKIP() << "no ICMP-limited hosting ISP in tiny world";
}

}  // namespace
}  // namespace repro
