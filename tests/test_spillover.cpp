#include "traffic/spillover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/generator.h"

namespace repro {
namespace {

class SpilloverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    demand_ = new DemandModel(*net_);
    capacity_ = new CapacityModel(*net_, *registry_, *demand_, CapacityConfig{});
    simulator_ = new SpilloverSimulator(*net_, *registry_, *demand_, *capacity_);
  }
  static void TearDownTestSuite() {
    delete simulator_;
    delete capacity_;
    delete demand_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static DemandModel* demand_;
  static CapacityModel* capacity_;
  static SpilloverSimulator* simulator_;
};

Internet* SpilloverTest::net_ = nullptr;
OffnetRegistry* SpilloverTest::registry_ = nullptr;
DemandModel* SpilloverTest::demand_ = nullptr;
CapacityModel* SpilloverTest::capacity_ = nullptr;
SpilloverSimulator* SpilloverTest::simulator_ = nullptr;

TEST_F(SpilloverTest, FlowConservation) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    SpilloverScenario scenario;
    scenario.utc_hour = simulator_->local_peak_utc_hour(isp);
    const SpilloverResult result = simulator_->simulate(isp, scenario);
    for (const Hypergiant hg : all_hypergiants()) {
      const HgFlow& flow = result.flow(hg);
      EXPECT_NEAR(flow.offnet + flow.pni + flow.ixp + flow.transit, flow.demand,
                  1e-9 * std::max(1.0, flow.demand))
          << net_->ases[isp].name << " " << to_string(hg);
      EXPECT_GE(flow.offnet, 0.0);
      EXPECT_GE(flow.pni, 0.0);
      EXPECT_LE(flow.degraded, flow.ixp + flow.transit + 1e-9);
    }
  }
}

TEST_F(SpilloverTest, OffnetServesMostAtPeakForHostedHgs) {
  std::size_t checked = 0;
  double offnet_fraction_sum = 0.0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    SpilloverScenario scenario;
    scenario.utc_hour = simulator_->local_peak_utc_hour(isp);
    const SpilloverResult result = simulator_->simulate(isp, scenario);
    for (const Hypergiant hg : registry_->hypergiants_at(isp)) {
      const HgFlow& flow = result.flow(hg);
      if (flow.demand <= 0.0) continue;
      offnet_fraction_sum += flow.offnet / flow.demand;
      ++checked;
    }
  }
  ASSERT_GT(checked, 20u);
  // Offnets serve 70-95% of their hypergiant's traffic on average.
  const double mean_fraction = offnet_fraction_sum / checked;
  EXPECT_GT(mean_fraction, 0.65);
  EXPECT_LT(mean_fraction, 1.0);
}

TEST_F(SpilloverTest, FailingAllSitesZeroesOffnet) {
  const AsIndex isp = registry_->hosting_isps().front();
  SpilloverScenario scenario;
  scenario.utc_hour = simulator_->local_peak_utc_hour(isp);
  for (const auto& [facility, hgs] : registry_->facility_map(isp)) {
    (void)hgs;
    scenario.failed_facilities.insert(facility);
  }
  const SpilloverResult result = simulator_->simulate(isp, scenario);
  for (const Hypergiant hg : all_hypergiants()) {
    EXPECT_DOUBLE_EQ(result.flow(hg).offnet, 0.0);
  }
}

TEST_F(SpilloverTest, SurgeIncreasesInterdomain) {
  const AsIndex isp = registry_->hosting_isps().front();
  SpilloverScenario base;
  base.utc_hour = simulator_->local_peak_utc_hour(isp);
  SpilloverScenario surge = base;
  for (auto& multiplier : surge.demand_multiplier) multiplier = 1.6;

  const SpilloverResult before = simulator_->simulate(isp, base);
  const SpilloverResult after = simulator_->simulate(isp, surge);
  double inter_before = 0.0;
  double inter_after = 0.0;
  double offnet_before = 0.0;
  double offnet_after = 0.0;
  for (const Hypergiant hg : all_hypergiants()) {
    inter_before += before.flow(hg).interdomain();
    inter_after += after.flow(hg).interdomain();
    offnet_before += before.flow(hg).offnet;
    offnet_after += after.flow(hg).offnet;
  }
  EXPECT_GT(inter_after, inter_before);
  // Offnets are capacity-limited: they cannot grow by the full surge.
  EXPECT_LT(offnet_after, offnet_before * 1.6);
}

TEST_F(SpilloverTest, DropFractionsWithinBounds) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    SpilloverScenario scenario;
    scenario.utc_hour = simulator_->local_peak_utc_hour(isp);
    for (auto& multiplier : scenario.demand_multiplier) multiplier = 3.0;
    const SpilloverResult result = simulator_->simulate(isp, scenario);
    EXPECT_GE(result.ixp_drop_fraction(), 0.0);
    EXPECT_LT(result.ixp_drop_fraction(), 1.0);
    EXPECT_GE(result.transit_drop_fraction(), 0.0);
    EXPECT_LT(result.transit_drop_fraction(), 1.0);
    EXPECT_GE(result.other_traffic_degraded_fraction(), 0.0);
    EXPECT_LE(result.other_traffic_degraded_fraction(), 1.0);
  }
}

TEST_F(SpilloverTest, LocalPeakMaximizesDemand) {
  const AsIndex isp = registry_->hosting_isps().front();
  const double peak_hour = simulator_->local_peak_utc_hour(isp);
  const double at_peak = demand_->isp_demand_gbps(isp, peak_hour);
  for (double offset : {3.0, 6.0, 9.0, 12.0}) {
    const double other = demand_->isp_demand_gbps(
        isp, std::fmod(peak_hour + offset, 24.0));
    EXPECT_GE(at_peak, other - 1e-9);
  }
}

TEST_F(SpilloverTest, IsolationProtectsOtherTraffic) {
  // Under heavy surge, best effort degrades other traffic somewhere;
  // isolation never does (other demand alone never exceeds the links).
  double best_effort_collateral = 0.0;
  for (const AsIndex isp : registry_->hosting_isps()) {
    SpilloverScenario scenario;
    scenario.utc_hour = simulator_->local_peak_utc_hour(isp);
    for (auto& multiplier : scenario.demand_multiplier) multiplier = 4.0;

    scenario.policy = SharedLinkPolicy::kBestEffort;
    const SpilloverResult be = simulator_->simulate(isp, scenario);
    best_effort_collateral += be.other_traffic_degraded_fraction();

    scenario.policy = SharedLinkPolicy::kIsolation;
    const SpilloverResult iso = simulator_->simulate(isp, scenario);
    EXPECT_DOUBLE_EQ(iso.other_traffic_degraded_fraction(), 0.0)
        << net_->ases[isp].name;
    // Isolation makes the hypergiants absorb at least as much degradation.
    double degraded_be = 0.0;
    double degraded_iso = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      degraded_be += be.flow(hg).degraded;
      degraded_iso += iso.flow(hg).degraded;
    }
    EXPECT_GE(degraded_iso, degraded_be - 1e-9) << net_->ases[isp].name;
  }
  EXPECT_GT(best_effort_collateral, 0.0)
      << "a 4x surge should congest something under best effort";
}

TEST_F(SpilloverTest, PolicyRecordedInResult) {
  const AsIndex isp = registry_->hosting_isps().front();
  SpilloverScenario scenario;
  scenario.policy = SharedLinkPolicy::kIsolation;
  EXPECT_EQ(simulator_->simulate(isp, scenario).policy,
            SharedLinkPolicy::kIsolation);
  EXPECT_EQ(std::string(to_string(SharedLinkPolicy::kBestEffort)),
            "best-effort");
}

TEST_F(SpilloverTest, FacilityFailurePushesTrafficInterdomain) {
  // Find an ISP whose busiest facility hosts at least one hypergiant.
  for (const AsIndex isp : registry_->hosting_isps()) {
    const auto facility_map = registry_->facility_map(isp);
    if (facility_map.empty()) continue;
    SpilloverScenario base;
    base.utc_hour = simulator_->local_peak_utc_hour(isp);
    SpilloverScenario failed = base;
    failed.failed_facilities.insert(facility_map.begin()->first);

    const SpilloverResult before = simulator_->simulate(isp, base);
    const SpilloverResult after = simulator_->simulate(isp, failed);
    double inter_before = 0.0;
    double inter_after = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      inter_before += before.flow(hg).interdomain();
      inter_after += after.flow(hg).interdomain();
    }
    EXPECT_GE(inter_after, inter_before);
    return;
  }
  FAIL() << "no hosting ISP with facilities";
}

}  // namespace
}  // namespace repro
