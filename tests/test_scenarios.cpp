#include "traffic/scenarios.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

TEST(CovidSurge, ReproducesPaperArithmetic) {
  // Paper (Section 4.1): offnets served 63% before lockdown; demand grew
  // 58%; offnet traffic rose only ~20% while interdomain more than doubled.
  const CovidSurgeResult result = covid_surge(CovidSurgeInput{});
  EXPECT_NEAR(result.offnet_increase_fraction(), 0.20, 0.005);
  EXPECT_GT(result.interdomain_multiplier(), 2.0);
  EXPECT_NEAR(result.interdomain_multiplier(), 2.23, 0.02);
}

TEST(CovidSurge, AmpleHeadroomAbsorbsSurge) {
  CovidSurgeInput input;
  input.offnet_headroom = 10.0;  // plenty of capacity
  const CovidSurgeResult result = covid_surge(input);
  // Offnets absorb up to cache efficiency; interdomain grows mildly.
  EXPECT_GT(result.offnet_increase_fraction(), 0.5);
  EXPECT_LT(result.interdomain_multiplier(), 2.0);
}

TEST(CovidSurge, NoSurgeNoChange) {
  CovidSurgeInput input;
  input.surge_multiplier = 1.0;
  const CovidSurgeResult result = covid_surge(input);
  EXPECT_NEAR(result.offnet_after, result.offnet_before, 1e-9);
  EXPECT_NEAR(result.interdomain_multiplier(), 1.0, 1e-9);
}

TEST(CovidSurge, Validation) {
  CovidSurgeInput input;
  input.offnet_share_before = 0.0;
  EXPECT_THROW(covid_surge(input), Error);
  input = CovidSurgeInput{};
  input.surge_multiplier = 0.5;
  EXPECT_THROW(covid_surge(input), Error);
}

TEST(DiurnalStudy, PeakShiftsTrafficToDistantServers) {
  const auto points = diurnal_study(DiurnalStudyConfig{});
  ASSERT_EQ(points.size(), 24u);
  // Find trough and peak hours by demand.
  const auto peak = std::max_element(
      points.begin(), points.end(),
      [](const DiurnalPoint& a, const DiurnalPoint& b) {
        return a.total_demand < b.total_demand;
      });
  const auto trough = std::min_element(
      points.begin(), points.end(),
      [](const DiurnalPoint& a, const DiurnalPoint& b) {
        return a.total_demand < b.total_demand;
      });
  // The paper's observation: at peak, a higher fraction comes from distant
  // servers because the local offnets saturate.
  EXPECT_GT(peak->far_fraction, trough->far_fraction);
  EXPECT_GT(trough->near_fraction, 0.5);
  for (const DiurnalPoint& point : points) {
    EXPECT_NEAR(point.near_fraction + point.far_fraction, 1.0, 1e-9);
  }
}

TEST(DiurnalStudy, GenerousOffnetNeverSaturates) {
  DiurnalStudyConfig config;
  config.offnet_headroom = 5.0;
  const auto points = diurnal_study(config);
  double near_min = 1.0;
  double near_max = 0.0;
  for (const DiurnalPoint& point : points) {
    near_min = std::min(near_min, point.near_fraction);
    near_max = std::max(near_max, point.near_fraction);
  }
  // Without saturation the near share is constant across the day.
  EXPECT_NEAR(near_min, near_max, 1e-9);
}

TEST(DiurnalStudy, Validation) {
  DiurnalStudyConfig config;
  config.apartments = 0;
  EXPECT_THROW(diurnal_study(config), Error);
}

class TrafficStudies : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    demand_ = new DemandModel(*net_);
    capacity_ = new CapacityModel(*net_, *registry_, *demand_, CapacityConfig{});
  }
  static void TearDownTestSuite() {
    delete capacity_;
    delete demand_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static DemandModel* demand_;
  static CapacityModel* capacity_;
};

Internet* TrafficStudies::net_ = nullptr;
OffnetRegistry* TrafficStudies::registry_ = nullptr;
DemandModel* TrafficStudies::demand_ = nullptr;
CapacityModel* TrafficStudies::capacity_ = nullptr;

TEST_F(TrafficStudies, PniUtilizationFieldsConsistent) {
  for (const Hypergiant hg : all_hypergiants()) {
    const PniUtilizationStats stats =
        pni_utilization(*net_, *registry_, *demand_, *capacity_, hg);
    EXPECT_EQ(stats.hg, hg);
    EXPECT_GE(stats.fraction_exceeded, 0.0);
    EXPECT_LE(stats.fraction_exceeded, 1.0);
    EXPECT_GE(stats.fraction_demand_2x, 0.0);
    EXPECT_LE(stats.fraction_demand_2x, stats.fraction_exceeded + 1e-9);
    EXPECT_GE(stats.mean_peak_exceedance, 0.0);
    EXPECT_GT(stats.isps_with_pni, 0u);
  }
}

TEST_F(TrafficStudies, SomePnisAreUnderProvisioned) {
  // The generator provisions PNIs with a heavy lower tail: at least some
  // should be exceeded at peak (the Section 4.2.2 claim).
  bool any = false;
  for (const Hypergiant hg : all_hypergiants()) {
    const PniUtilizationStats stats =
        pni_utilization(*net_, *registry_, *demand_, *capacity_, hg);
    if (stats.fraction_exceeded > 0.0) any = true;
  }
  EXPECT_TRUE(any);
}

TEST_F(TrafficStudies, CascadeStudyPicksBusiestFacility) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    if (registry_->hypergiants_at(isp).size() < 2) continue;
    const CascadeOutcome outcome =
        cascade_study(*net_, *registry_, *demand_, *capacity_, isp);
    ASSERT_NE(outcome.failed_facility, kInvalidIndex);
    // No other facility hosts more hypergiants.
    for (const auto& [facility, hgs] : registry_->facility_map(isp)) {
      (void)facility;
      EXPECT_LE(static_cast<int>(hgs.size()), outcome.hypergiants_in_facility);
    }
    // Failure can only push more traffic interdomain.
    double inter_base = 0.0;
    double inter_fail = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      inter_base += outcome.baseline.flow(hg).interdomain();
      inter_fail += outcome.failure.flow(hg).interdomain();
    }
    EXPECT_GE(inter_fail, inter_base - 1e-9);
    EXPECT_GE(outcome.collateral_degradation(), -1e-9);
    return;
  }
  GTEST_SKIP() << "no multi-hypergiant ISP in tiny world";
}

}  // namespace
}  // namespace repro
