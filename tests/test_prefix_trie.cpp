#include "ip/prefix_trie.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace repro {
namespace {

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(Ipv4::parse("10.1.2.3")), 3);
  EXPECT_EQ(trie.lookup(Ipv4::parse("10.1.9.9")), 2);
  EXPECT_EQ(trie.lookup(Ipv4::parse("10.9.9.9")), 1);
  EXPECT_EQ(trie.lookup(Ipv4::parse("11.0.0.0")), std::nullopt);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("0.0.0.0/0"), 99);
  EXPECT_EQ(trie.lookup(Ipv4::parse("203.0.113.7")), 99);
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4::parse("10.0.0.1")), 2);
}

TEST(PrefixTrie, ExactMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.exact(Prefix::parse("10.0.0.0/8")), 1);
  EXPECT_EQ(trie.exact(Prefix::parse("10.0.0.0/9")), std::nullopt);
  EXPECT_EQ(trie.exact(Prefix::parse("11.0.0.0/8")), std::nullopt);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("1.2.3.4/32"), 7);
  EXPECT_EQ(trie.lookup(Ipv4::parse("1.2.3.4")), 7);
  EXPECT_EQ(trie.lookup(Ipv4::parse("1.2.3.5")), std::nullopt);
}

TEST(PrefixTrie, EntriesSortedAndComplete) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("192.0.2.0/24"), 1);
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(Prefix::parse("10.128.0.0/9"), 3);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first.to_string(), "10.0.0.0/8");
  EXPECT_EQ(entries[1].first.to_string(), "10.128.0.0/9");
  EXPECT_EQ(entries[2].first.to_string(), "192.0.2.0/24");
}

TEST(PrefixTrie, EmptyBehaviour) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4::parse("1.1.1.1")), std::nullopt);
  EXPECT_TRUE(trie.entries().empty());
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  // Property test: trie LPM must agree with a brute-force scan.
  Rng rng(2024);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> prefixes;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto address = static_cast<std::uint32_t>(rng.next());
    const int length = static_cast<int>(rng.uniform_int(4, 28));
    const Prefix prefix(Ipv4(address), length);
    trie.insert(prefix, i);
    prefixes.push_back(prefix);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const Ipv4 probe(static_cast<std::uint32_t>(rng.next()));
    // Brute force: the longest containing prefix, latest insert wins ties.
    int best_len = -1;
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (!prefixes[i].contains(probe)) continue;
      if (prefixes[i].length() > best_len) {
        best_len = prefixes[i].length();
        best = i;
      } else if (prefixes[i].length() == best_len &&
                 prefixes[i] == prefixes[*best]) {
        best = i;  // overwrite: the later duplicate insert replaced the value
      }
    }
    const auto got = trie.lookup(probe);
    if (!best) {
      EXPECT_EQ(got, std::nullopt);
    } else {
      ASSERT_TRUE(got.has_value());
      // The trie stores the last-inserted value for duplicate prefixes;
      // compare prefix identity instead of insert order.
      EXPECT_EQ(prefixes[*got].length(), best_len);
      EXPECT_TRUE(prefixes[*got].contains(probe));
    }
  }
}

}  // namespace
}  // namespace repro
