#include "traffic/network_load.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace repro {
namespace {

class NetworkLoadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Scenario::tiny());
    model_ = new NetworkLoadModel(
        pipeline_->internet(), pipeline_->registry(Snapshot::k2023),
        pipeline_->demand(), pipeline_->capacity(), pipeline_->routing());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete pipeline_;
  }
  static Pipeline* pipeline_;
  static NetworkLoadModel* model_;
};

Pipeline* NetworkLoadTest::pipeline_ = nullptr;
NetworkLoadModel* NetworkLoadTest::model_ = nullptr;

TEST_F(NetworkLoadTest, LoadsCoverEveryLinkVector) {
  const NetworkLoadResult result = model_->evaluate(20.0);
  EXPECT_EQ(result.link_load.size(), pipeline_->internet().links.size());
  EXPECT_GT(result.total_interdomain_gbps, 0.0);
  EXPECT_EQ(result.isps_evaluated, pipeline_->internet().access_isps().size());
  for (const double load : result.link_load) EXPECT_GE(load, 0.0);
}

TEST_F(NetworkLoadTest, CongestedLinksAreActuallyOverCapacity) {
  const NetworkLoadResult result = model_->evaluate(20.0);
  for (const LinkIndex li : result.congested_links) {
    EXPECT_GT(result.link_load[li],
              pipeline_->internet().links[li].capacity_gbps);
  }
  EXPECT_LE(result.isps_on_congested_paths, result.isps_evaluated);
}

TEST_F(NetworkLoadTest, FacilityFailureIncreasesInterdomainLoad) {
  const auto radii = model_->blast_radii();
  ASSERT_FALSE(radii.empty());
  const NetworkLoadResult before = model_->evaluate(20.0);
  const NetworkLoadResult after =
      model_->evaluate(20.0, {radii.front().facility});
  EXPECT_GE(after.total_interdomain_gbps, before.total_interdomain_gbps);
}

TEST_F(NetworkLoadTest, StrideSamplesFewerIsps) {
  NetworkLoadConfig config;
  config.isp_stride = 4;
  const NetworkLoadModel sampled(
      pipeline_->internet(), pipeline_->registry(Snapshot::k2023),
      pipeline_->demand(), pipeline_->capacity(), pipeline_->routing(), config);
  const NetworkLoadResult full = model_->evaluate(20.0);
  const NetworkLoadResult sparse = sampled.evaluate(20.0);
  EXPECT_LT(sparse.isps_evaluated, full.isps_evaluated);
  EXPECT_LT(sparse.total_interdomain_gbps, full.total_interdomain_gbps);
}

TEST_F(NetworkLoadTest, BlastRadiiConsistent) {
  const auto radii = model_->blast_radii();
  ASSERT_FALSE(radii.empty());
  const OffnetRegistry& registry = pipeline_->registry(Snapshot::k2023);
  for (std::size_t i = 1; i < radii.size(); ++i) {
    EXPECT_GE(radii[i - 1].displaced_gbps, radii[i].displaced_gbps);
  }
  for (const FacilityBlastRadius& radius : radii) {
    EXPECT_GE(radius.isps, 1u);
    EXPECT_GE(radius.hypergiants, 1u);
    EXPECT_LE(radius.hypergiants, kHypergiantCount);
    EXPECT_GT(radius.users, 0.0);
    EXPECT_GT(radius.displaced_gbps, 0.0);
  }
  // Every deployment site appears.
  std::set<FacilityIndex> seen;
  for (const FacilityBlastRadius& radius : radii) seen.insert(radius.facility);
  for (const auto& [key, deployment] : registry.deployments()) {
    (void)key;
    for (const FacilityIndex site : deployment.sites) {
      EXPECT_TRUE(seen.contains(site));
    }
  }
}

TEST_F(NetworkLoadTest, MultiHgFacilitiesExist) {
  // The colocation thesis at the facility level: a solid share of offnet
  // facilities host more than one hypergiant.
  const auto radii = model_->blast_radii();
  std::size_t multi = 0;
  for (const FacilityBlastRadius& radius : radii) {
    if (radius.hypergiants >= 2) ++multi;
  }
  EXPECT_GT(static_cast<double>(multi) / radii.size(), 0.3);
}

TEST_F(NetworkLoadTest, Validation) {
  NetworkLoadConfig config;
  config.isp_stride = 0;
  EXPECT_THROW(NetworkLoadModel(pipeline_->internet(),
                                pipeline_->registry(Snapshot::k2023),
                                pipeline_->demand(), pipeline_->capacity(),
                                pipeline_->routing(), config),
               Error);
}

}  // namespace
}  // namespace repro
