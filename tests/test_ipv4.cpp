#include "ip/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/error.h"

namespace repro {
namespace {

TEST(Ipv4, ParseFormatsRoundTrip) {
  for (const char* text : {"0.0.0.0", "192.0.2.1", "255.255.255.255", "10.1.2.3"}) {
    EXPECT_EQ(Ipv4::parse(text).to_string(), text);
  }
}

TEST(Ipv4, ParseValue) {
  EXPECT_EQ(Ipv4::parse("1.2.3.4").value(), 0x01020304u);
}

TEST(Ipv4, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                           "1..2.3", "1.2.3.-4", "01x.2.3.4"}) {
    EXPECT_THROW(Ipv4::parse(text), ParseError) << text;
  }
}

TEST(Ipv4, OrderingAndHash) {
  EXPECT_LT(Ipv4::parse("1.0.0.0"), Ipv4::parse("2.0.0.0"));
  std::unordered_set<Ipv4> set;
  set.insert(Ipv4::parse("10.0.0.1"));
  set.insert(Ipv4::parse("10.0.0.1"));
  set.insert(Ipv4::parse("10.0.0.2"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Prefix, NormalizesHostBits) {
  const Prefix p(Ipv4::parse("10.1.2.3"), 24);
  EXPECT_EQ(p.network().to_string(), "10.1.2.0");
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, ParseAndValidation) {
  const Prefix p = Prefix::parse("192.168.0.0/16");
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.size(), 65536u);
  EXPECT_THROW(Prefix::parse("192.168.0.0"), ParseError);
  EXPECT_THROW(Prefix::parse("192.168.0.0/33"), ParseError);
  EXPECT_THROW(Prefix::parse("192.168.0.0/-1"), ParseError);
  EXPECT_THROW(Prefix::parse("192.168.0.0/1x"), ParseError);
  EXPECT_THROW(Prefix(Ipv4{}, 33), Error);
}

TEST(Prefix, MaskAndBounds) {
  const Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.mask(), 0xff000000u);
  EXPECT_EQ(p.first().to_string(), "10.0.0.0");
  EXPECT_EQ(p.last().to_string(), "10.255.255.255");
  const Prefix all = Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(all.mask(), 0u);
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse("192.0.2.0/24");
  EXPECT_TRUE(p.contains(Ipv4::parse("192.0.2.0")));
  EXPECT_TRUE(p.contains(Ipv4::parse("192.0.2.255")));
  EXPECT_FALSE(p.contains(Ipv4::parse("192.0.3.0")));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix outer = Prefix::parse("10.0.0.0/8");
  const Prefix inner = Prefix::parse("10.5.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Prefix, AtIndexing) {
  const Prefix p = Prefix::parse("192.0.2.0/30");
  EXPECT_EQ(p.at(0).to_string(), "192.0.2.0");
  EXPECT_EQ(p.at(3).to_string(), "192.0.2.3");
  EXPECT_THROW(p.at(4), Error);
}

TEST(Prefix, HostRoute) {
  const Prefix host = Prefix::parse("1.2.3.4/32");
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4::parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(Ipv4::parse("1.2.3.5")));
}

TEST(EnclosingSlash24, MasksLowOctet) {
  EXPECT_EQ(enclosing_slash24(Ipv4::parse("10.9.8.7")).to_string(), "10.9.8.0/24");
}

}  // namespace
}  // namespace repro
