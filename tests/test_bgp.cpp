#include "route/bgp.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

/// Hand-built 6-AS topology:
///
///        T1a ---peer--- T1b          (tier-1 mesh)
///        /  \            |
///      Tr1  Tr2         Tr3          (transits, customers of tier-1s)
///      /      \          |
///    Edge1   Edge2 --- Edge3(peer)   (access ISPs)
///
/// Built by hand so every preference rule is checkable.
class MiniTopology : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto add = [&](AsNumber asn, AsTier tier) {
      As as;
      as.asn = asn;
      as.name = "AS" + std::to_string(asn);
      as.tier = tier;
      as.country = 0;
      Metro metro;
      metro.name = as.name + "-metro";
      metro.iata = "zz" + std::string(1, static_cast<char>('a' + asn % 26));
      metro.country = 0;
      const MetroIndex mi = net_.add_metro(metro);
      as.metros = {mi};
      as.primary_metro = mi;
      Facility facility;
      facility.metro = mi;
      facility.kind = FacilityKind::kColocation;
      facility.name = as.name + "-colo";
      const FacilityIndex fi = net_.add_facility(facility);
      as.facilities = {fi};
      as.infra = PrefixAllocator(
          Prefix(Ipv4(0x0a000000u + asn * 0x10000u), 16));
      const AsIndex index = net_.add_as(std::move(as));
      net_.announce(index, net_.ases[index].infra.pool());
      return index;
    };
    t1a_ = add(1, AsTier::kTier1);
    t1b_ = add(2, AsTier::kTier1);
    tr1_ = add(11, AsTier::kTransit);
    tr2_ = add(12, AsTier::kTransit);
    tr3_ = add(13, AsTier::kTransit);
    e1_ = add(101, AsTier::kAccess);
    e2_ = add(102, AsTier::kAccess);
    e3_ = add(103, AsTier::kAccess);

    const auto link = [&](AsIndex a, AsIndex b, LinkKind kind) {
      InterdomainLink l;
      l.kind = kind;
      l.a = a;
      l.b = b;
      l.facility = net_.ases[a].facilities.front();
      return net_.add_link(l);
    };
    link(t1a_, t1b_, LinkKind::kPrivatePeering);
    link(tr1_, t1a_, LinkKind::kTransit);
    link(tr2_, t1a_, LinkKind::kTransit);
    link(tr3_, t1b_, LinkKind::kTransit);
    link(e1_, tr1_, LinkKind::kTransit);
    link(e2_, tr2_, LinkKind::kTransit);
    link(e3_, tr3_, LinkKind::kTransit);
    link(e2_, e3_, LinkKind::kPrivatePeering);
  }

  Internet net_;
  AsIndex t1a_{}, t1b_{}, tr1_{}, tr2_{}, tr3_{}, e1_{}, e2_{}, e3_{};
};

TEST_F(MiniTopology, CustomerRoutePreferredOverPeer) {
  // From tr3's perspective towards e3: customer route (direct).
  const RoutingEngine engine(net_);
  const RoutingTable table = engine.routes_to(e3_);
  EXPECT_EQ(table.entry(tr3_).kind, RouteKind::kCustomer);
  EXPECT_EQ(table.entry(tr3_).next_hop, e3_);
  // e2 reaches e3 via the direct peering, not via transit.
  EXPECT_EQ(table.entry(e2_).kind, RouteKind::kPeer);
  EXPECT_EQ(table.entry(e2_).next_hop, e3_);
}

TEST_F(MiniTopology, ProviderRouteWhenNothingElse) {
  const RoutingEngine engine(net_);
  const RoutingTable table = engine.routes_to(e3_);
  // e1 has no customer or peer path: must go up via tr1.
  EXPECT_EQ(table.entry(e1_).kind, RouteKind::kProvider);
  // Full path: e1 -> tr1 -> t1a -(peer)-> t1b -> tr3 -> e3.
  const auto path = table.as_path(e1_);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[0], e1_);
  EXPECT_EQ(path[1], tr1_);
  EXPECT_EQ(path[2], t1a_);
  EXPECT_EQ(path[3], t1b_);
  EXPECT_EQ(path[4], tr3_);
  EXPECT_EQ(path[5], e3_);
}

TEST_F(MiniTopology, PathsAreValleyFree) {
  const RoutingEngine engine(net_);
  for (const As& dst : net_.ases) {
    const RoutingTable table = engine.routes_to(dst.index);
    for (const As& src : net_.ases) {
      const auto path = table.as_path(src.index);
      if (path.empty()) continue;
      // entry(path[i]).kind says how path[i] reaches path[i+1]:
      //   kProvider = the edge goes UP, kPeer = flat, kCustomer = DOWN.
      // Valley-free means: up* peer? down* -- once the path turns flat or
      // down it never goes up again, with at most one peer edge.
      int peer_edges = 0;
      bool descended = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const RouteEntry& entry = table.entry(path[i]);
        switch (entry.kind) {
          case RouteKind::kProvider:
            EXPECT_FALSE(descended) << "up edge after down/peer";
            break;
          case RouteKind::kPeer:
            EXPECT_FALSE(descended) << "peer edge after down/peer";
            ++peer_edges;
            descended = true;
            break;
          case RouteKind::kCustomer:
            descended = true;
            break;
          case RouteKind::kSelf:
            ADD_FAILURE() << "self entry mid-path";
        }
      }
      EXPECT_LE(peer_edges, 1);
    }
  }
}

TEST_F(MiniTopology, LinkPathMatchesAsPath) {
  const RoutingEngine engine(net_);
  const RoutingTable table = engine.routes_to(e3_);
  const auto as_path = table.as_path(e1_);
  const auto link_path = table.link_path(e1_);
  ASSERT_EQ(link_path.size() + 1, as_path.size());
  for (std::size_t i = 0; i < link_path.size(); ++i) {
    const InterdomainLink& link = net_.links[link_path[i]];
    const bool forward = link.a == as_path[i] && link.b == as_path[i + 1];
    const bool backward = link.b == as_path[i] && link.a == as_path[i + 1];
    EXPECT_TRUE(forward || backward);
  }
}

TEST_F(MiniTopology, DestinationEntryIsSelf) {
  const RoutingEngine engine(net_);
  const RoutingTable table = engine.routes_to(e1_);
  EXPECT_EQ(table.entry(e1_).kind, RouteKind::kSelf);
  EXPECT_TRUE(table.entry(e1_).reachable);
  EXPECT_EQ(table.entry(e1_).path_length, 0);
  const auto path = table.as_path(e1_);
  ASSERT_EQ(path.size(), 1u);
}

TEST_F(MiniTopology, PeerRouteNotExportedToProviders) {
  // tr2 must not reach e3 via e2's peer link (valley-free): its route goes
  // up through t1a.
  const RoutingEngine engine(net_);
  const RoutingTable table = engine.routes_to(e3_);
  const auto path = table.as_path(tr2_);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path[1], e2_) << "peer-learned route leaked upward";
}

TEST(GeneratedTopologyRouting, EverybodyReachesHypergiants) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const RoutingEngine engine(net);
  for (const AsNumber asn : {kGoogleAsn, kNetflixAsn, kMetaAsn, kAkamaiAsn}) {
    const RoutingTable table = engine.routes_to(net.as_by_asn(asn));
    for (const As& as : net.ases) {
      EXPECT_TRUE(table.entry(as.index).reachable) << as.name;
      EXPECT_FALSE(table.as_path(as.index).empty()) << as.name;
    }
  }
}

TEST(GeneratedTopologyRouting, PathLengthsReasonable) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const RoutingEngine engine(net);
  const RoutingTable table = engine.routes_to(net.as_by_asn(kGoogleAsn));
  for (const AsIndex isp : net.access_isps()) {
    const auto path = table.as_path(isp);
    ASSERT_FALSE(path.empty());
    EXPECT_LE(path.size(), 6u);  // access -> transit -> tier1 -> HG at worst
  }
}

TEST(GeneratedTopologyRouting, ValleyFreeOnGeneratedGraph) {
  // Property check at tiny scale across several destinations.
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  const RoutingEngine engine(net);
  int destinations = 0;
  for (const AsIndex dst : net.access_isps()) {
    if (++destinations > 10) break;
    const RoutingTable table = engine.routes_to(dst);
    for (const As& src : net.ases) {
      const auto path = table.as_path(src.index);
      if (path.empty()) continue;
      bool descended = false;
      int peers = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const RouteKind kind = table.entry(path[i]).kind;
        if (kind == RouteKind::kProvider) {
          EXPECT_FALSE(descended);  // up edge after the path turned down
        } else if (kind == RouteKind::kPeer) {
          EXPECT_FALSE(descended);
          ++peers;
          descended = true;
        } else {
          descended = true;  // customer edge: downhill from here on
        }
      }
      EXPECT_LE(peers, 1);
    }
  }
}

}  // namespace
}  // namespace repro
