#include "topology/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/country.h"

namespace repro {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
  }
  static void TearDownTestSuite() {
    delete net_;
    net_ = nullptr;
  }
  static Internet* net_;
};

Internet* TopologyTest::net_ = nullptr;

TEST(CountryDb, NonEmptyAndQueryable) {
  EXPECT_GE(all_countries().size(), 90u);
  const CountryInfo& us = country_by_code("US");
  EXPECT_EQ(us.name, "United States");
  EXPECT_GT(us.internet_users_m, 100.0);
  EXPECT_THROW(country_by_code("XX"), NotFoundError);
  EXPECT_GT(total_internet_users_m(), 3000.0);
}

TEST(CountryDb, AllEntriesValid) {
  for (const CountryInfo& country : all_countries()) {
    EXPECT_EQ(country.code.size(), 2u);
    EXPECT_FALSE(country.name.empty());
    EXPECT_GT(country.internet_users_m, 0.0);
    EXPECT_GE(country.centroid.latitude_deg, -90.0);
    EXPECT_LE(country.centroid.latitude_deg, 90.0);
    EXPECT_GE(country.centroid.longitude_deg, -180.0);
    EXPECT_LE(country.centroid.longitude_deg, 180.0);
  }
}

TEST(CountryDb, CodesUnique) {
  std::set<std::string_view> codes;
  for (const CountryInfo& country : all_countries()) codes.insert(country.code);
  EXPECT_EQ(codes.size(), all_countries().size());
}

TEST_F(TopologyTest, EveryCountryHasAMetro) {
  std::set<CountryIndex> with_metro;
  for (const Metro& metro : net_->metros) with_metro.insert(metro.country);
  EXPECT_EQ(with_metro.size(), all_countries().size());
}

TEST_F(TopologyTest, MetroUsersSumToCountryUsers) {
  std::vector<double> per_country(all_countries().size(), 0.0);
  for (const Metro& metro : net_->metros) per_country[metro.country] += metro.users;
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    EXPECT_NEAR(per_country[ci], all_countries()[ci].internet_users_m * 1e6,
                all_countries()[ci].internet_users_m * 1e6 * 1e-6);
  }
}

TEST_F(TopologyTest, EveryMetroHasColocation) {
  for (const Metro& metro : net_->metros) {
    bool found = false;
    for (const Facility& facility : net_->facilities) {
      if (facility.metro == metro.index &&
          facility.kind == FacilityKind::kColocation) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << metro.name;
  }
}

TEST_F(TopologyTest, TiersPresent) {
  int tier1 = 0;
  int transit = 0;
  int access = 0;
  int hypergiant = 0;
  for (const As& as : net_->ases) {
    switch (as.tier) {
      case AsTier::kTier1: ++tier1; break;
      case AsTier::kTransit: ++transit; break;
      case AsTier::kAccess: ++access; break;
      case AsTier::kHypergiant: ++hypergiant; break;
    }
  }
  EXPECT_EQ(tier1, GeneratorConfig::tiny().tier1_count);
  EXPECT_GT(transit, 50);
  EXPECT_GT(access, 150);
  EXPECT_EQ(hypergiant, 4);
}

TEST_F(TopologyTest, HypergiantsHaveWellKnownAsns) {
  for (const AsNumber asn : {kGoogleAsn, kNetflixAsn, kMetaAsn, kAkamaiAsn}) {
    const AsIndex index = net_->as_by_asn(asn);
    EXPECT_EQ(net_->ases[index].tier, AsTier::kHypergiant);
  }
  EXPECT_THROW(net_->as_by_asn(4294900000u), NotFoundError);
}

TEST_F(TopologyTest, PrimaryMetroIsAPresenceMetro) {
  for (const As& as : net_->ases) {
    EXPECT_NE(as.primary_metro, kInvalidIndex) << as.name;
    EXPECT_NE(std::find(as.metros.begin(), as.metros.end(), as.primary_metro),
              as.metros.end())
        << as.name;
  }
}

TEST_F(TopologyTest, AccessIspsHaveUsersProvidersAndSpace) {
  for (const AsIndex isp : net_->access_isps()) {
    const As& as = net_->ases[isp];
    EXPECT_GT(as.users, 0.0) << as.name;
    EXPECT_FALSE(as.provider_links.empty()) << as.name;
    EXPECT_FALSE(as.user_prefixes.empty()) << as.name;
    EXPECT_GT(as.infra.pool().size(), 0u) << as.name;
    EXPECT_FALSE(as.facilities.empty()) << as.name;
  }
}

TEST_F(TopologyTest, AccessUsersMatchCountryTotalsRoughly) {
  // Zipf shares are normalized, so ISP users should sum to country users.
  std::vector<double> per_country(all_countries().size(), 0.0);
  for (const AsIndex isp : net_->access_isps()) {
    per_country[net_->ases[isp].country] += net_->ases[isp].users;
  }
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const double expected = all_countries()[ci].internet_users_m * 1e6;
    EXPECT_NEAR(per_country[ci], expected, expected * 0.01);
  }
}

TEST_F(TopologyTest, LinksWiredIntoBothEndpoints) {
  for (const InterdomainLink& link : net_->links) {
    const As& a = net_->ases[link.a];
    const As& b = net_->ases[link.b];
    if (link.kind == LinkKind::kTransit) {
      EXPECT_NE(std::find(a.provider_links.begin(), a.provider_links.end(),
                          link.index),
                a.provider_links.end());
      EXPECT_NE(std::find(b.customer_links.begin(), b.customer_links.end(),
                          link.index),
                b.customer_links.end());
    } else {
      EXPECT_NE(std::find(a.peer_links.begin(), a.peer_links.end(), link.index),
                a.peer_links.end());
      EXPECT_NE(std::find(b.peer_links.begin(), b.peer_links.end(), link.index),
                b.peer_links.end());
    }
    EXPECT_GT(link.capacity_gbps, 0.0);
  }
}

TEST_F(TopologyTest, TransitLinksPointUpward) {
  // Customers are never higher-tier than their providers.
  const auto rank = [](AsTier tier) {
    switch (tier) {
      case AsTier::kTier1: return 3;
      case AsTier::kTransit: return 2;
      case AsTier::kHypergiant: return 2;
      case AsTier::kAccess: return 1;
    }
    return 0;
  };
  for (const InterdomainLink& link : net_->links) {
    if (link.kind != LinkKind::kTransit) continue;
    EXPECT_LE(rank(net_->ases[link.a].tier), rank(net_->ases[link.b].tier));
  }
}

TEST_F(TopologyTest, AnnouncedSpaceResolvesToOwner) {
  for (const AsIndex isp : net_->access_isps()) {
    const As& as = net_->ases[isp];
    EXPECT_EQ(net_->as_of_ip(as.infra.pool().at(10)), isp);
    EXPECT_EQ(net_->as_of_ip(as.user_prefixes.front().at(0)), isp);
  }
}

TEST_F(TopologyTest, IxpPortsRegistered) {
  for (const Ixp& ixp : net_->ixps) {
    EXPECT_FALSE(ixp.members.empty()) << ixp.name;
    std::size_t registered = 0;
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const auto info = net_->ixp_port_of_ip(ixp.peering_lan.at(offset));
      if (!info) continue;
      EXPECT_EQ(info->ixp, ixp.index);
      ++registered;
    }
    EXPECT_GE(registered, ixp.members.size());
  }
}

TEST_F(TopologyTest, HostingOptionsIncludeColos) {
  for (const AsIndex isp : net_->access_isps()) {
    const As& as = net_->ases[isp];
    const auto options = net_->hosting_options(isp, as.primary_metro);
    EXPECT_FALSE(options.empty());
    for (const FacilityIndex fi : options) {
      EXPECT_EQ(net_->facilities[fi].metro, as.primary_metro);
    }
  }
}

TEST_F(TopologyTest, PeeringLookupSymmetric) {
  for (const InterdomainLink& link : net_->links) {
    if (link.kind == LinkKind::kTransit) continue;
    EXPECT_TRUE(net_->has_peering(link.a, link.b));
    EXPECT_TRUE(net_->has_peering(link.b, link.a));
  }
}

TEST(TopologyDeterminism, SameSeedSameWorld) {
  const Internet a = InternetGenerator(GeneratorConfig::tiny()).generate();
  const Internet b = InternetGenerator(GeneratorConfig::tiny()).generate();
  ASSERT_EQ(a.ases.size(), b.ases.size());
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.ases.size(); ++i) {
    EXPECT_EQ(a.ases[i].asn, b.ases[i].asn);
    EXPECT_DOUBLE_EQ(a.ases[i].users, b.ases[i].users);
    EXPECT_EQ(a.ases[i].primary_metro, b.ases[i].primary_metro);
  }
}

TEST(TopologyDeterminism, DifferentSeedDifferentWorld) {
  GeneratorConfig config = GeneratorConfig::tiny();
  config.seed = 12345;
  const Internet a = InternetGenerator(GeneratorConfig::tiny()).generate();
  const Internet b = InternetGenerator(config).generate();
  // Same structure sizes are possible, but link wiring should differ.
  bool different = a.links.size() != b.links.size();
  if (!different) {
    for (std::size_t i = 0; i < a.links.size() && !different; ++i) {
      different = a.links[i].a != b.links[i].a || a.links[i].b != b.links[i].b;
    }
  }
  EXPECT_TRUE(different);
}

TEST(PeakDemand, ScalesWithUsers) {
  EXPECT_GT(peak_demand_gbps(1e6), peak_demand_gbps(1e5));
  EXPECT_NEAR(peak_demand_gbps(1e5), 100.0, 1.0);
  EXPECT_GE(peak_demand_gbps(0.0), 0.5);  // floor
}

TEST(GeneratorConfigPresets, ScalesOrdered) {
  EXPECT_LT(GeneratorConfig::tiny().scale, GeneratorConfig::small().scale);
  EXPECT_LT(GeneratorConfig::small().scale, GeneratorConfig::paper().scale);
}

}  // namespace
}  // namespace repro
