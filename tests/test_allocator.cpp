#include "ip/allocator.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace repro {
namespace {

TEST(PrefixAllocator, SequentialDisjointBlocks) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/16"));
  const Prefix a = alloc.allocate_prefix(24);
  const Prefix b = alloc.allocate_prefix(24);
  EXPECT_EQ(a.to_string(), "10.0.0.0/24");
  EXPECT_EQ(b.to_string(), "10.0.1.0/24");
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(PrefixAllocator, AlignsMixedSizes) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/16"));
  const Ipv4 single = alloc.allocate_address();
  EXPECT_EQ(single.to_string(), "10.0.0.0");
  // Next /24 must skip ahead to an aligned boundary.
  const Prefix block = alloc.allocate_prefix(24);
  EXPECT_EQ(block.to_string(), "10.0.1.0/24");
  const Ipv4 next = alloc.allocate_address();
  EXPECT_EQ(next.to_string(), "10.0.2.0");
}

TEST(PrefixAllocator, AllAllocationsInsidePool) {
  const Prefix pool = Prefix::parse("172.16.0.0/20");
  PrefixAllocator alloc(pool);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(pool.contains(alloc.allocate_prefix(28)));
  }
}

TEST(PrefixAllocator, ExhaustionThrows) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/30"));
  alloc.allocate_prefix(31);
  alloc.allocate_prefix(31);
  EXPECT_THROW(alloc.allocate_prefix(31), Error);
}

TEST(PrefixAllocator, RemainingCountsDown) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(alloc.remaining(), 256u);
  alloc.allocate_prefix(26);
  EXPECT_EQ(alloc.remaining(), 192u);
  alloc.allocate_address();
  EXPECT_EQ(alloc.remaining(), 191u);
}

TEST(PrefixAllocator, RejectsRequestsWiderThanPool) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/24"));
  EXPECT_THROW(alloc.allocate_prefix(23), Error);
  EXPECT_THROW(alloc.allocate_prefix(33), Error);
}

TEST(PrefixAllocator, WholePoolAllocation) {
  PrefixAllocator alloc(Prefix::parse("10.0.0.0/24"));
  const Prefix all = alloc.allocate_prefix(24);
  EXPECT_EQ(all.to_string(), "10.0.0.0/24");
  EXPECT_EQ(alloc.remaining(), 0u);
}

}  // namespace
}  // namespace repro
