#include "scan/fingerprint.h"

#include <gtest/gtest.h>

#include "hypergiant/certs.h"

namespace repro {
namespace {

/// Every (hypergiant certificate, methodology) combination: an offnet cert
/// of hypergiant X issued at snapshot S must match exactly the fingerprints
/// the paper's methodology says it matches.
struct MatchCase {
  Hypergiant cert_of;
  Snapshot snapshot;
  Methodology methodology;
  bool expected;
};

class FingerprintMatrix : public ::testing::TestWithParam<MatchCase> {};

TEST_P(FingerprintMatrix, OffnetCertDetection) {
  const MatchCase& c = GetParam();
  Rng rng(99);
  const TlsCertificate cert =
      make_offnet_certificate(c.cert_of, c.snapshot, "nyc", 3, rng);
  EXPECT_EQ(certificate_matches(cert, c.cert_of, c.methodology), c.expected)
      << to_string(c.cert_of) << " snapshot " << to_string(c.snapshot)
      << " methodology " << to_string(c.methodology);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FingerprintMatrix,
    ::testing::Values(
        // Google: org-based 2021 methodology works on 2021 certs only.
        MatchCase{Hypergiant::kGoogle, Snapshot::k2021, Methodology::k2021, true},
        MatchCase{Hypergiant::kGoogle, Snapshot::k2023, Methodology::k2021, false},
        MatchCase{Hypergiant::kGoogle, Snapshot::k2021, Methodology::k2023, true},
        MatchCase{Hypergiant::kGoogle, Snapshot::k2023, Methodology::k2023, true},
        // Meta: exact-name 2021 methodology misses 2023 site-specific names.
        MatchCase{Hypergiant::kMeta, Snapshot::k2021, Methodology::k2021, true},
        MatchCase{Hypergiant::kMeta, Snapshot::k2023, Methodology::k2021, false},
        MatchCase{Hypergiant::kMeta, Snapshot::k2021, Methodology::k2023, true},
        MatchCase{Hypergiant::kMeta, Snapshot::k2023, Methodology::k2023, true},
        // Netflix and Akamai: unchanged across methodologies.
        MatchCase{Hypergiant::kNetflix, Snapshot::k2021, Methodology::k2021, true},
        MatchCase{Hypergiant::kNetflix, Snapshot::k2023, Methodology::k2021, true},
        MatchCase{Hypergiant::kNetflix, Snapshot::k2023, Methodology::k2023, true},
        MatchCase{Hypergiant::kAkamai, Snapshot::k2021, Methodology::k2021, true},
        MatchCase{Hypergiant::kAkamai, Snapshot::k2023, Methodology::k2021, true},
        MatchCase{Hypergiant::kAkamai, Snapshot::k2023, Methodology::k2023, true}));

TEST(Fingerprint, NoCrossHypergiantMatches) {
  Rng rng(7);
  for (const Hypergiant owner : all_hypergiants()) {
    for (const Snapshot snapshot : {Snapshot::k2021, Snapshot::k2023}) {
      const TlsCertificate cert =
          make_offnet_certificate(owner, snapshot, "lhr", 1, rng);
      for (const Hypergiant other : all_hypergiants()) {
        if (other == owner) continue;
        for (const Methodology methodology :
             {Methodology::k2021, Methodology::k2023}) {
          EXPECT_FALSE(certificate_matches(cert, other, methodology))
              << to_string(owner) << " cert matched " << to_string(other);
        }
      }
    }
  }
}

TEST(Fingerprint, DecoysRejected) {
  // Lookalike certificates with hypergiant-ish strings must not match.
  TlsCertificate decoy;
  decoy.subject.common_name = "cache.googlevideo.com.cdn-mirror.example";
  decoy.subject.organization = "Totally Not Google Ltd";
  decoy.issuer.organization = "Let's Encrypt";
  decoy.san_dns = {decoy.subject.common_name};
  for (const Methodology m : {Methodology::k2021, Methodology::k2023}) {
    EXPECT_FALSE(certificate_matches(decoy, Hypergiant::kGoogle, m));
  }

  decoy.subject.common_name = "*.fbcdn.net.phish.example";
  decoy.subject.organization = "";
  decoy.san_dns = {decoy.subject.common_name};
  for (const Methodology m : {Methodology::k2021, Methodology::k2023}) {
    EXPECT_FALSE(certificate_matches(decoy, Hypergiant::kMeta, m));
  }

  decoy.subject.common_name = "*.akamaized.example.org";
  decoy.subject.organization = "Akamai Technologies";  // missing ", Inc."
  decoy.san_dns = {decoy.subject.common_name};
  for (const Methodology m : {Methodology::k2021, Methodology::k2023}) {
    EXPECT_FALSE(certificate_matches(decoy, Hypergiant::kAkamai, m));
  }
}

TEST(Fingerprint, GoogleRequiresGoogleIssuer) {
  // Right names, wrong CA: a forged googlevideo cert must not match.
  TlsCertificate forged;
  forged.subject.common_name = "*.googlevideo.com";
  forged.subject.organization = "Google LLC";
  forged.issuer.organization = "Let's Encrypt";
  forged.san_dns = {"*.googlevideo.com"};
  EXPECT_FALSE(certificate_matches(forged, Hypergiant::kGoogle, Methodology::k2021));
  EXPECT_FALSE(certificate_matches(forged, Hypergiant::kGoogle, Methodology::k2023));
}

TEST(Fingerprint, OnnetCertsAlsoMatch) {
  // Onnet certs match fingerprints too -- exclusion happens via IP-to-AS,
  // not via the certificate itself.
  Rng rng(8);
  const TlsCertificate onnet =
      make_onnet_certificate(Hypergiant::kGoogle, Snapshot::k2023, rng);
  EXPECT_TRUE(certificate_matches(onnet, Hypergiant::kGoogle, Methodology::k2023));
}

}  // namespace
}  // namespace repro
