// The parallel clustering engine's load-bearing contract: for every thread
// count, parallel execution is bit-identical to serial -- the thread pool
// only changes which thread runs each index range, never what is computed.
// Covers the pool/parallel_for primitives, the vectorized pairwise-distance
// kernel, cluster_isp_multi, and the full Pipeline clustering stage (clean
// and under a nonzero FaultPlan), plus thread-count invariance of every
// run-report counter. Runs under ThreadSanitizer in scripts/check.sh
// (ctest -L parallel).
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/colocation.h"
#include "cluster/distance.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/generator.h"
#include "util/error.h"
#include "util/rng.h"

namespace repro {
namespace {

/// Restores the thread-count override after every test, so a failing
/// EXPECT cannot leak a forced count into later tests.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_default_thread_count(0); }
};

TEST_F(ParallelTest, DefaultThreadCountResolution) {
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3u);
  set_default_thread_count(0);
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_GE(hardware_thread_count(), 1u);
}

TEST_F(ParallelTest, SharedPoolCoversDeterminismTier) {
  // The determinism tests below ask for 8 threads; the shared pool must be
  // able to host them even on small machines.
  EXPECT_GE(ThreadPool::shared().worker_count(), 8u);
}

TEST_F(ParallelTest, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(
      kCount, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, BlocksPartitionTheRange) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_blocks(
      kCount, 7,
      [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, kCount);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      8);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  parallel_for_blocks(
      100, 10,
      [&](std::size_t begin, std::size_t end) {
        // Serial fallback: one body call covering the whole range, on the
        // calling thread, with no pool traffic.
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
        ++calls;
      },
      1);
  EXPECT_EQ(calls, 1u);
}

TEST_F(ParallelTest, NestedParallelForSerializes) {
  // A body that itself calls parallel_for (pairwise_distances inside the
  // per-ISP fan-out) must not deadlock the pool: the inner loop serializes.
  std::atomic<int> inner_total{0};
  parallel_for(
      4,
      [&](std::size_t) {
        EXPECT_TRUE(ThreadPool::in_parallel_region());
        const std::thread::id worker = std::this_thread::get_id();
        parallel_for(
            50,
            [&](std::size_t) {
              EXPECT_EQ(std::this_thread::get_id(), worker);
              inner_total.fetch_add(1);
            },
            8);
      },
      4);
  EXPECT_EQ(inner_total.load(), 4 * 50);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST_F(ParallelTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 617) throw Error("boom at 617");
          },
          8),
      Error);
  // The pool survives a throwing body and keeps scheduling work.
  std::atomic<int> count{0};
  parallel_for(
      100, [&](std::size_t) { count.fetch_add(1); }, 8);
  EXPECT_EQ(count.load(), 100);
}

std::vector<double> random_table(std::size_t rows, std::size_t cols,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> table(rows * cols);
  for (auto& value : table) value = rng.uniform(10.0, 200.0);
  return table;
}

TEST_F(ParallelTest, PairwiseDistancesBitIdenticalAcrossThreadCounts) {
  const std::size_t rows = 64;
  const std::size_t cols = 40;
  const std::vector<double> table = random_table(rows, cols, 7171);

  set_default_thread_count(1);
  const DistanceMatrix serial = pairwise_distances(table, rows, cols, 0.2);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    set_default_thread_count(threads);
    const DistanceMatrix parallel = pairwise_distances(table, rows, cols, 0.2);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = i + 1; j < rows; ++j) {
        // Exact equality: same kernel, same accumulation order, only the
        // executing thread differs.
        ASSERT_EQ(parallel.at(i, j), serial.at(i, j))
            << "threads=" << threads << " cell (" << i << "," << j << ")";
      }
    }
  }
}

TEST_F(ParallelTest, StreamedPairwiseBitIdenticalAcrossThreadCounts) {
  // The block-streamed pairwise pass schedules block pairs instead of rows,
  // so it has its own thread-count story to fence: for every block height,
  // 2/4/8 threads must reproduce the single-threaded result bit-for-bit
  // (and the single-threaded result equals the one-shot pass).
  const std::size_t rows = 64;
  const std::size_t cols = 40;
  const std::vector<double> table = random_table(rows, cols, 7171);
  const RowFiller fill = [&](std::size_t row, double* out) {
    std::copy(table.begin() + static_cast<std::ptrdiff_t>(row * cols),
              table.begin() + static_cast<std::ptrdiff_t>((row + 1) * cols),
              out);
  };

  set_default_thread_count(1);
  const DistanceMatrix oneshot = pairwise_distances(table, rows, cols, 0.2);

  for (const std::size_t block : {1u, 7u, 64u, 0u}) {
    set_default_thread_count(1);
    const DistanceMatrix serial =
        pairwise_distances_streamed(fill, rows, cols, 0.2, block);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      set_default_thread_count(threads);
      const DistanceMatrix parallel =
          pairwise_distances_streamed(fill, rows, cols, 0.2, block);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = i + 1; j < rows; ++j) {
          ASSERT_EQ(parallel.at(i, j), serial.at(i, j))
              << "block=" << block << " threads=" << threads << " cell ("
              << i << "," << j << ")";
          ASSERT_EQ(serial.at(i, j), oneshot.at(i, j))
              << "block=" << block << " cell (" << i << "," << j << ")";
        }
      }
    }
  }
}

void expect_identical(const IspClustering& a, const IspClustering& b,
                      const std::string& context) {
  EXPECT_EQ(a.isp, b.isp) << context;
  EXPECT_EQ(a.usable, b.usable) << context;
  EXPECT_EQ(a.registry_indices, b.registry_indices) << context;
  EXPECT_EQ(a.labels, b.labels) << context;
  EXPECT_EQ(a.cluster_count, b.cluster_count) << context;
  EXPECT_EQ(a.dropped_unresponsive, b.dropped_unresponsive) << context;
  EXPECT_EQ(a.dropped_impossible, b.dropped_impossible) << context;
  EXPECT_EQ(a.usable_sites, b.usable_sites) << context;
}

TEST_F(ParallelTest, ClusterIspMultiThreadInvariant) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  DeploymentConfig deploy_config;
  deploy_config.footprint_scale = GeneratorConfig::tiny().scale;
  const OffnetRegistry registry =
      DeploymentPolicy(net, deploy_config).deploy(Snapshot::k2023);
  const VantagePointSet vps(net, 40, 163163);
  const PingMesh mesh(net, vps, PingConfig{});
  ColocationConfig config;
  config.filter.min_usable_sites = 25;
  const ColocationClusterer clusterer(registry, mesh, vps, config);
  const double xis[] = {0.1, 0.9};

  int checked = 0;
  for (const AsIndex isp : registry.hosting_isps()) {
    set_default_thread_count(1);
    const auto serial = clusterer.cluster_isp_multi(isp, xis);
    for (const std::size_t threads : {2u, 8u}) {
      set_default_thread_count(threads);
      const auto parallel = clusterer.cluster_isp_multi(isp, xis);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t x = 0; x < serial.size(); ++x) {
        expect_identical(parallel[x], serial[x],
                         "isp " + std::to_string(isp) + " xi#" +
                             std::to_string(x) + " threads " +
                             std::to_string(threads));
      }
    }
    if (++checked >= 8) break;
  }
  EXPECT_GE(checked, 4);
}

void expect_identical_health(
    const std::map<std::string, fault::StageHealth>& a,
    const std::map<std::string, fault::StageHealth>& b,
    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (const auto& [stage, health] : a) {
    ASSERT_TRUE(b.count(stage)) << context << " stage " << stage;
    const fault::StageHealth& other = b.at(stage);
    EXPECT_EQ(health.status, other.status) << context << " " << stage;
    EXPECT_EQ(health.dropped, other.dropped) << context << " " << stage;
    EXPECT_EQ(health.total, other.total) << context << " " << stage;
    EXPECT_EQ(health.reasons, other.reasons) << context << " " << stage;
  }
}

/// Counter name -> value map from the registry (gauges and histograms are
/// deliberately excluded: cluster.threads and the shard timings legitimately
/// vary with the thread count; counters never may).
std::map<std::string, std::uint64_t> counter_map() {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    out[name] = value;
  }
  return out;
}

struct PipelineRun {
  std::vector<IspClustering> xi01;
  std::vector<IspClustering> xi09;
  std::map<std::string, fault::StageHealth> health;
  std::map<std::string, std::uint64_t> counters;
};

PipelineRun run_pipeline(std::size_t threads, const fault::FaultPlan& plan) {
  obs::metrics().reset();
  set_default_thread_count(threads);
  Pipeline pipeline(Scenario::tiny(), plan);
  PipelineRun run;
  run.xi01 = pipeline.clusterings(0.1);
  run.xi09 = pipeline.clusterings(0.9);
  run.health = pipeline.stage_health();
  run.counters = counter_map();
  set_default_thread_count(0);
  return run;
}

void expect_identical_runs(const PipelineRun& serial, const PipelineRun& other,
                           const std::string& context) {
  ASSERT_EQ(other.xi01.size(), serial.xi01.size()) << context;
  ASSERT_EQ(other.xi09.size(), serial.xi09.size()) << context;
  for (std::size_t i = 0; i < serial.xi01.size(); ++i) {
    expect_identical(other.xi01[i], serial.xi01[i],
                     context + " xi=0.1 #" + std::to_string(i));
  }
  for (std::size_t i = 0; i < serial.xi09.size(); ++i) {
    expect_identical(other.xi09[i], serial.xi09[i],
                     context + " xi=0.9 #" + std::to_string(i));
  }
  expect_identical_health(serial.health, other.health, context);
  // Every counter in the run report (mlab probes, filter drops, fault
  // injections, clustering progress, ...) must be thread-count invariant.
  EXPECT_EQ(serial.counters, other.counters) << context;
}

TEST_F(ParallelTest, PipelineClusteringBitIdenticalClean) {
  const fault::FaultPlan clean = fault::FaultPlan::none();
  const PipelineRun serial = run_pipeline(1, clean);
  ASSERT_FALSE(serial.xi01.empty());
  for (const std::size_t threads : {4u, 8u}) {
    const PipelineRun parallel = run_pipeline(threads, clean);
    expect_identical_runs(serial, parallel,
                          "clean threads=" + std::to_string(threads));
  }
}

TEST_F(ParallelTest, PipelineClusteringBitIdenticalUnderFaults) {
  const fault::FaultPlan plan = fault::FaultPlan::chaos().scaled_by(0.5);
  const PipelineRun serial = run_pipeline(1, plan);
  ASSERT_FALSE(serial.xi01.empty());
  const PipelineRun parallel = run_pipeline(8, plan);
  expect_identical_runs(serial, parallel, "chaos@0.5 threads=8");
}

TEST_F(ParallelTest, ClusteringSpansStitchUnderPipelineStage) {
  // End-to-end span stitching: with tracing on, every cluster.* span opened
  // on a pool worker during the clustering fan-out must re-parent (through
  // the adopted pool.task spans) under the submitting pipeline.clustering
  // stage span -- no orphan subtrees in the flight recording.
  obs::set_tracing(true);
  obs::tracer().reset();
  obs::metrics().reset();
  set_default_thread_count(4);
  {
    Pipeline pipeline(Scenario::tiny());
    pipeline.clusterings(0.1);
  }
  // pool.task wrapper spans can close a beat after the fan-out returns.
  for (int i = 0; i < 2000; ++i) {
    bool open = false;
    for (const obs::Span& span : obs::tracer().spans()) {
      if (span.name == "pool.task" && !span.closed) open = true;
    }
    if (!open) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::vector<obs::Span> spans = obs::tracer().spans();
  std::size_t stage_id = obs::kNoSpan;
  for (const obs::Span& span : spans) {
    if (span.name == "pipeline.clustering") stage_id = span.id;
  }
  ASSERT_NE(stage_id, obs::kNoSpan) << "clustering stage span missing";

  std::size_t cluster_spans = 0;
  for (const obs::Span& span : spans) {
    if (span.name.rfind("cluster.", 0) != 0) continue;
    ++cluster_spans;
    std::size_t id = span.id;
    bool reached = false;
    for (int hops = 0; hops < 64 && id != obs::kNoSpan; ++hops) {
      if (id == stage_id) {
        reached = true;
        break;
      }
      id = spans[id].parent;
    }
    EXPECT_TRUE(reached) << "orphan " << span.name << " span " << span.id;
  }
  EXPECT_GE(cluster_spans, 1u);
  obs::set_tracing(false);
  obs::tracer().reset();
  obs::metrics().reset();
}

}  // namespace
}  // namespace repro
