#include "mlab/ping_mesh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/generator.h"

namespace repro {
namespace {

class MlabTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    vps_ = new VantagePointSet(*net_, 40, 163163);
    mesh_ = new PingMesh(*net_, *vps_, PingConfig{});
  }
  static void TearDownTestSuite() {
    delete mesh_;
    delete vps_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static VantagePointSet* vps_;
  static PingMesh* mesh_;
};

Internet* MlabTest::net_ = nullptr;
OffnetRegistry* MlabTest::registry_ = nullptr;
VantagePointSet* MlabTest::vps_ = nullptr;
PingMesh* MlabTest::mesh_ = nullptr;

TEST_F(MlabTest, VantagePointsCountAndLocations) {
  EXPECT_EQ(vps_->size(), 40u);
  for (std::size_t i = 0; i < vps_->size(); ++i) {
    const VantagePoint& vp = (*vps_)[i];
    EXPECT_EQ(vp.index, i);
    EXPECT_LT(vp.metro, net_->metros.size());
    // Placed near its metro.
    EXPECT_LE(haversine_km(vp.location, net_->metros[vp.metro].location), 25.0);
  }
}

TEST_F(MlabTest, VantagePointsDeterministic) {
  const VantagePointSet again(*net_, 40, 163163);
  for (std::size_t i = 0; i < vps_->size(); ++i) {
    EXPECT_EQ(again[i].metro, (*vps_)[i].metro);
    EXPECT_EQ(again[i].location, (*vps_)[i].location);
  }
}

TEST_F(MlabTest, MeasurementsDeterministic) {
  const OffnetServer& server = registry_->servers().front();
  const double a = mesh_->measure_once((*vps_)[0], server);
  const double b = mesh_->measure_once((*vps_)[0], server);
  if (std::isnan(a)) {
    EXPECT_TRUE(std::isnan(b));
  } else {
    EXPECT_DOUBLE_EQ(a, b);
  }
}

TEST_F(MlabTest, RttRespectsSpeedOfLight) {
  // For responsive, non-split IPs the RTT must exceed the physical bound.
  int checked = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (mesh_->ip_unresponsive(server.ip) ||
        mesh_->ip_split_personality(server.ip)) {
      continue;
    }
    for (std::size_t v = 0; v < 5; ++v) {
      const double rtt = mesh_->measure_once((*vps_)[v], server);
      if (std::isnan(rtt)) continue;
      const GeoPoint& loc = net_->facilities[server.facility].location;
      EXPECT_GE(rtt, min_rtt_ms((*vps_)[v].location, loc) - 1e-9);
      ++checked;
    }
    if (checked > 200) break;
  }
  EXPECT_GT(checked, 50);
}

TEST_F(MlabTest, UnresponsiveIpsNeverAnswer) {
  int found = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (!mesh_->ip_unresponsive(server.ip)) continue;
    ++found;
    for (std::size_t v = 0; v < 3; ++v) {
      EXPECT_TRUE(std::isnan(mesh_->measure_once((*vps_)[v], server)));
    }
    if (found > 20) break;
  }
  EXPECT_GT(found, 0);
}

TEST_F(MlabTest, PathologyRatesApproximateConfig) {
  std::size_t unresponsive = 0;
  std::size_t split = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (mesh_->ip_unresponsive(server.ip)) ++unresponsive;
    if (mesh_->ip_split_personality(server.ip)) ++split;
  }
  const double n = static_cast<double>(registry_->server_count());
  EXPECT_NEAR(unresponsive / n, mesh_->config().unresponsive_ip_rate, 0.02);
  EXPECT_NEAR(split / n, mesh_->config().split_personality_rate, 0.01);
}

TEST_F(MlabTest, MatrixShapeMatchesIspServers) {
  const AsIndex isp = registry_->hosting_isps().front();
  const LatencyMatrix matrix = mesh_->measure_isp(*registry_, isp);
  EXPECT_EQ(matrix.row_count(), registry_->servers_at(isp).size());
  EXPECT_EQ(matrix.vp_count, vps_->size());
  EXPECT_EQ(matrix.rtt.size(), matrix.row_count() * matrix.vp_count);
  for (std::size_t row = 0; row < matrix.row_count(); ++row) {
    EXPECT_EQ(matrix.ips[row],
              registry_->servers()[matrix.server_indices[row]].ip);
  }
}

TEST_F(MlabTest, SameFacilityPairsCloserThanCrossMetro) {
  // The core property OPTICS relies on: same-facility latency vectors are
  // much closer than cross-metro ones.
  const OffnetServer* a = nullptr;
  const OffnetServer* b = nullptr;  // same facility as a
  const OffnetServer* c = nullptr;  // different metro, same ISP size class
  for (const OffnetServer& server : registry_->servers()) {
    if (mesh_->ip_unresponsive(server.ip) ||
        mesh_->ip_split_personality(server.ip)) {
      continue;
    }
    if (a == nullptr) {
      a = &server;
      continue;
    }
    if (b == nullptr && server.facility == a->facility) {
      b = &server;
      continue;
    }
    if (c == nullptr &&
        net_->facilities[server.facility].metro !=
            net_->facilities[a->facility].metro) {
      c = &server;
    }
    if (b != nullptr && c != nullptr) break;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);

  double same = 0.0;
  double cross = 0.0;
  int count = 0;
  for (std::size_t v = 0; v < vps_->size(); ++v) {
    const double ra = mesh_->measure_once((*vps_)[v], *a);
    const double rb = mesh_->measure_once((*vps_)[v], *b);
    const double rc = mesh_->measure_once((*vps_)[v], *c);
    if (std::isnan(ra) || std::isnan(rb) || std::isnan(rc)) continue;
    same += std::fabs(ra - rb);
    cross += std::fabs(ra - rc);
    ++count;
  }
  ASSERT_GT(count, 10);
  EXPECT_LT(same / count, cross / count);
}

TEST(PingConfigValidation, Rejected) {
  Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  VantagePointSet vps(net, 5, 1);
  PingConfig config;
  config.probes = 1;
  EXPECT_THROW(PingMesh(net, vps, config), Error);
  config = PingConfig{};
  config.inflation_min = 0.5;
  EXPECT_THROW(PingMesh(net, vps, config), Error);
}

}  // namespace
}  // namespace repro
