#include "rdns/validation.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class RdnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    ptr_ = new PtrStore(PtrStore::build(*net_, *registry_, PtrConfig{}));
  }
  static void TearDownTestSuite() {
    delete ptr_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static PtrStore* ptr_;
};

Internet* RdnsTest::net_ = nullptr;
OffnetRegistry* RdnsTest::registry_ = nullptr;
PtrStore* RdnsTest::ptr_ = nullptr;

TEST_F(RdnsTest, CoverageApproximatesConfig) {
  std::size_t named = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (ptr_->lookup(server.ip)) ++named;
  }
  const double coverage =
      static_cast<double>(named) / registry_->server_count();
  EXPECT_NEAR(coverage, PtrConfig{}.coverage, 0.05);
}

TEST_F(RdnsTest, UnknownIpHasNoRecord) {
  EXPECT_EQ(ptr_->lookup(Ipv4::parse("203.0.113.200")), std::nullopt);
}

TEST_F(RdnsTest, HostnamesEmbedHostIspAsn) {
  int checked = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = ptr_->lookup(server.ip);
    if (!hostname) continue;
    const std::string expected =
        "as" + std::to_string(net_->ases[server.isp].asn);
    EXPECT_NE(hostname->find(expected), std::string::npos) << *hostname;
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(RdnsTest, LocatedNamesUsuallyCarryTrueMetroCode) {
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  std::size_t located = 0;
  std::size_t correct = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = ptr_->lookup(server.ip);
    if (!hostname) continue;
    const auto hint = hoiho.extract(*hostname);
    if (!hint) continue;
    ++located;
    const MetroIndex truth = net_->facilities[server.facility].metro;
    if (hint->metro == truth) ++correct;
  }
  ASSERT_GT(located, 100u);
  EXPECT_GT(static_cast<double>(correct) / located, 0.95);
}

TEST(Hoiho, ExtractsMetroCodes) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  const Metro& metro = net.metros.front();
  const auto hint =
      hoiho.extract("cache-ggc-" + metro.iata + "-123.as65000.example.net");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->metro, metro.index);
  EXPECT_FALSE(hint->suburb);
}

TEST(Hoiho, ExtractsAliasAsSuburb) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  const Metro& metro = net.metros.front();
  const auto hint = hoiho.extract("cache-oca-" + metro_alias_code(metro.iata) +
                                  "-9.as65000.example.net");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->metro, metro.index);
  EXPECT_TRUE(hint->suburb);
  // The suburb location is near, but not at, the metro center.
  const double distance = haversine_km(hint->location, metro.location);
  EXPECT_GT(distance, 1.0);
  EXPECT_LT(distance, 40.0);
}

TEST(Hoiho, AmbiguousTokenCorrectedAway) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  // Before correction, "host" is misread as Hostert, LU.
  const auto bogus = hoiho.extract("host-442.as65001.example.net");
  ASSERT_TRUE(bogus.has_value());
  EXPECT_EQ(bogus->metro, kInvalidIndex);
  const std::size_t before = hoiho.dictionary_size();
  hoiho.apply_manual_corrections();
  EXPECT_LT(hoiho.dictionary_size(), before);
  EXPECT_EQ(hoiho.extract("host-442.as65001.example.net"), std::nullopt);
}

TEST(Hoiho, NoFalseExtractionFromPlainNames) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  hoiho.apply_manual_corrections();
  EXPECT_EQ(hoiho.extract("static-17.as65001.example.net"), std::nullopt);
  EXPECT_EQ(hoiho.extract(""), std::nullopt);
}

TEST(MetroAliasCode, DistinctNamespace) {
  // Aliases are 4 characters; main codes are 3, so they can never collide.
  EXPECT_EQ(metro_alias_code("usa"), "usa2");
  EXPECT_NE(metro_alias_code("usa"), "usb");
}

TEST_F(RdnsTest, ValidationMostlyConsistentAfterCorrections) {
  // End-to-end validation over real clusterings of the tiny world.
  VantagePointSet vps(*net_, 40, 163163);
  PingMesh mesh(*net_, vps, PingConfig{});
  ColocationConfig config;
  config.filter.min_usable_sites = 25;
  ColocationClusterer clusterer(*registry_, mesh, vps, config);
  std::vector<IspClustering> clusterings;
  for (const AsIndex isp : registry_->hosting_isps()) {
    clusterings.push_back(clusterer.cluster_isp(isp));
  }
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  const ValidationSummary summary =
      validate_clusters(*net_, *registry_, clusterings, *ptr_, hoiho);
  ASSERT_GT(summary.clusters_with_hints, 20u);
  EXPECT_GT(summary.consistent_fraction(), 0.8);
  EXPECT_EQ(summary.single_city + summary.single_metro_area +
                summary.multi_city_same_country + summary.multi_country,
            summary.clusters_with_hints);
}

}  // namespace
}  // namespace repro
