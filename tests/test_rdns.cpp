#include "rdns/validation.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class RdnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    ptr_ = new PtrStore(PtrStore::build(*net_, *registry_, PtrConfig{}));
  }
  static void TearDownTestSuite() {
    delete ptr_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static PtrStore* ptr_;
};

Internet* RdnsTest::net_ = nullptr;
OffnetRegistry* RdnsTest::registry_ = nullptr;
PtrStore* RdnsTest::ptr_ = nullptr;

TEST_F(RdnsTest, CoverageApproximatesConfig) {
  std::size_t named = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (ptr_->lookup(server.ip)) ++named;
  }
  const double coverage =
      static_cast<double>(named) / registry_->server_count();
  EXPECT_NEAR(coverage, PtrConfig{}.coverage, 0.05);
}

TEST_F(RdnsTest, UnknownIpHasNoRecord) {
  EXPECT_EQ(ptr_->lookup(Ipv4::parse("203.0.113.200")), std::nullopt);
}

TEST_F(RdnsTest, HostnamesEmbedHostIspAsn) {
  int checked = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = ptr_->lookup(server.ip);
    if (!hostname) continue;
    const std::string expected =
        "as" + std::to_string(net_->ases[server.isp].asn);
    EXPECT_NE(hostname->find(expected), std::string::npos) << *hostname;
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(RdnsTest, LocatedNamesUsuallyCarryTrueMetroCode) {
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  std::size_t located = 0;
  std::size_t correct = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = ptr_->lookup(server.ip);
    if (!hostname) continue;
    const auto hint = hoiho.extract(*hostname);
    if (!hint) continue;
    ++located;
    const MetroIndex truth = net_->facilities[server.facility].metro;
    if (hint->metro == truth) ++correct;
  }
  ASSERT_GT(located, 100u);
  EXPECT_GT(static_cast<double>(correct) / located, 0.95);
}

TEST(Hoiho, ExtractsMetroCodes) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  const Metro& metro = net.metros.front();
  const auto hint =
      hoiho.extract("cache-ggc-" + metro.iata + "-123.as65000.example.net");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->metro, metro.index);
  EXPECT_FALSE(hint->suburb);
}

TEST(Hoiho, ExtractsAliasAsSuburb) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  const Metro& metro = net.metros.front();
  const auto hint = hoiho.extract("cache-oca-" + metro_alias_code(metro.iata) +
                                  "-9.as65000.example.net");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->metro, metro.index);
  EXPECT_TRUE(hint->suburb);
  // The suburb location is near, but not at, the metro center.
  const double distance = haversine_km(hint->location, metro.location);
  EXPECT_GT(distance, 1.0);
  EXPECT_LT(distance, 40.0);
}

TEST(Hoiho, AmbiguousTokenCorrectedAway) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  // Before correction, "host" is misread as Hostert, LU.
  const auto bogus = hoiho.extract("host-442.as65001.example.net");
  ASSERT_TRUE(bogus.has_value());
  EXPECT_EQ(bogus->metro, kInvalidIndex);
  const std::size_t before = hoiho.dictionary_size();
  hoiho.apply_manual_corrections();
  EXPECT_LT(hoiho.dictionary_size(), before);
  EXPECT_EQ(hoiho.extract("host-442.as65001.example.net"), std::nullopt);
}

TEST(Hoiho, NoFalseExtractionFromPlainNames) {
  const Internet net = InternetGenerator(GeneratorConfig::tiny()).generate();
  Hoiho hoiho(net);
  hoiho.apply_manual_corrections();
  EXPECT_EQ(hoiho.extract("static-17.as65001.example.net"), std::nullopt);
  EXPECT_EQ(hoiho.extract(""), std::nullopt);
}

TEST(MetroAliasCode, DistinctNamespace) {
  // Aliases are 4 characters; main codes are 3, so they can never collide.
  EXPECT_EQ(metro_alias_code("usa"), "usa2");
  EXPECT_NE(metro_alias_code("usa"), "usb");
}

// --------------------------------------------------------- rdns faults --

TEST_F(RdnsTest, ZeroFaultRatesBitIdenticalToFaultFreeBuild) {
  // A nonzero fault seed with all rates zero must not move a single
  // record: the fault draws come from their own hash streams, never from
  // the synthesis Rng.
  PtrConfig config;
  config.fault_seed = 4242;
  PtrFaultCounts counts;
  const PtrStore armed = PtrStore::build(*net_, *registry_, config, &counts);
  EXPECT_EQ(counts.total(), 0u);
  ASSERT_EQ(armed.size(), ptr_->size());
  for (const OffnetServer& server : registry_->servers()) {
    EXPECT_EQ(armed.lookup(server.ip), ptr_->lookup(server.ip));
  }
}

TEST_F(RdnsTest, MissingPtrRateWithdrawsRecordsOnly) {
  PtrConfig config;
  config.fault_seed = 4242;
  config.missing_ptr_rate = 0.3;
  PtrFaultCounts counts;
  const PtrStore faulted = PtrStore::build(*net_, *registry_, config, &counts);
  EXPECT_GT(counts.missing, 0u);
  EXPECT_EQ(counts.stale, 0u);
  EXPECT_EQ(counts.garbled, 0u);
  // Withdrawal is purely subtractive: every surviving record is byte-equal
  // to the fault-free build's, and the arithmetic accounts for every loss.
  EXPECT_EQ(faulted.size() + counts.missing, ptr_->size());
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = faulted.lookup(server.ip);
    if (!hostname) continue;
    EXPECT_EQ(hostname, ptr_->lookup(server.ip));
  }
}

TEST_F(RdnsTest, GarbledPtrYieldsNoHoihoHints) {
  PtrConfig config;
  config.fault_seed = 4242;
  config.garbled_ptr_rate = 0.5;
  PtrFaultCounts counts;
  const PtrStore faulted = PtrStore::build(*net_, *registry_, config, &counts);
  EXPECT_GT(counts.garbled, 0u);
  EXPECT_EQ(faulted.size(), ptr_->size());  // records exist, hints do not
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  std::size_t damaged = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = faulted.lookup(server.ip);
    if (!hostname || hostname == ptr_->lookup(server.ip)) continue;
    ++damaged;
    EXPECT_EQ(hoiho.extract(*hostname), std::nullopt)
        << "garbled record still yielded a hint: " << *hostname;
  }
  EXPECT_EQ(damaged, counts.garbled);
}

TEST_F(RdnsTest, StalePtrNamesWrongMetro) {
  PtrConfig config;
  config.fault_seed = 4242;
  config.stale_ptr_rate = 0.4;
  PtrFaultCounts counts;
  const PtrStore faulted = PtrStore::build(*net_, *registry_, config, &counts);
  EXPECT_GT(counts.stale, 0u);
  EXPECT_EQ(faulted.size(), ptr_->size());
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  std::size_t checked = 0;
  for (const OffnetServer& server : registry_->servers()) {
    const auto hostname = faulted.lookup(server.ip);
    if (!hostname || hostname == ptr_->lookup(server.ip)) continue;
    // A stale record still parses -- it names a real metro, just not the
    // server's: exactly the defect the validation study must absorb.
    const auto hint = hoiho.extract(*hostname);
    ASSERT_TRUE(hint.has_value()) << *hostname;
    if (hint->metro == kInvalidIndex) continue;  // country-less token
    EXPECT_NE(hint->metro, net_->facilities[server.facility].metro)
        << "stale record kept the true metro: " << *hostname;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  EXPECT_LE(checked, counts.stale);
}

TEST_F(RdnsTest, FaultDrawsDeterministicPerSeed) {
  PtrConfig config;
  config.fault_seed = 4242;
  config.missing_ptr_rate = 0.2;
  config.stale_ptr_rate = 0.2;
  config.garbled_ptr_rate = 0.2;
  PtrFaultCounts a_counts;
  PtrFaultCounts b_counts;
  const PtrStore a = PtrStore::build(*net_, *registry_, config, &a_counts);
  const PtrStore b = PtrStore::build(*net_, *registry_, config, &b_counts);
  EXPECT_EQ(a_counts.missing, b_counts.missing);
  EXPECT_EQ(a_counts.stale, b_counts.stale);
  EXPECT_EQ(a_counts.garbled, b_counts.garbled);
  EXPECT_GT(a_counts.total(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (const OffnetServer& server : registry_->servers()) {
    EXPECT_EQ(a.lookup(server.ip), b.lookup(server.ip));
  }
  // A different seed picks a different victim set.
  config.fault_seed = 1717;
  PtrFaultCounts other_counts;
  const PtrStore other = PtrStore::build(*net_, *registry_, config, &other_counts);
  std::size_t disagreements = 0;
  for (const OffnetServer& server : registry_->servers()) {
    if (a.lookup(server.ip) != other.lookup(server.ip)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0u);
}

TEST_F(RdnsTest, ValidationMostlyConsistentAfterCorrections) {
  // End-to-end validation over real clusterings of the tiny world.
  VantagePointSet vps(*net_, 40, 163163);
  PingMesh mesh(*net_, vps, PingConfig{});
  ColocationConfig config;
  config.filter.min_usable_sites = 25;
  ColocationClusterer clusterer(*registry_, mesh, vps, config);
  std::vector<IspClustering> clusterings;
  for (const AsIndex isp : registry_->hosting_isps()) {
    clusterings.push_back(clusterer.cluster_isp(isp));
  }
  Hoiho hoiho(*net_);
  hoiho.apply_manual_corrections();
  const ValidationSummary summary =
      validate_clusters(*net_, *registry_, clusterings, *ptr_, hoiho);
  ASSERT_GT(summary.clusters_with_hints, 20u);
  EXPECT_GT(summary.consistent_fraction(), 0.8);
  EXPECT_EQ(summary.single_city + summary.single_metro_area +
                summary.multi_city_same_country + summary.multi_country,
            summary.clusters_with_hints);
}

}  // namespace
}  // namespace repro
