#include "traffic/timeline.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    demand_ = new DemandModel(*net_);
    capacity_ = new CapacityModel(*net_, *registry_, *demand_, CapacityConfig{});
    simulator_ = new SpilloverSimulator(*net_, *registry_, *demand_, *capacity_);
    // A multi-hypergiant ISP with a busiest facility.
    for (const AsIndex isp : registry_->hosting_isps()) {
      if (registry_->hypergiants_at(isp).size() >= 2) {
        isp_ = isp;
        break;
      }
    }
    facility_ = registry_->facility_map(isp_).begin()->first;
  }
  static void TearDownTestSuite() {
    delete simulator_;
    delete capacity_;
    delete demand_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static DemandModel* demand_;
  static CapacityModel* capacity_;
  static SpilloverSimulator* simulator_;
  static AsIndex isp_;
  static FacilityIndex facility_;
};

Internet* TimelineTest::net_ = nullptr;
OffnetRegistry* TimelineTest::registry_ = nullptr;
DemandModel* TimelineTest::demand_ = nullptr;
CapacityModel* TimelineTest::capacity_ = nullptr;
SpilloverSimulator* TimelineTest::simulator_ = nullptr;
AsIndex TimelineTest::isp_ = kInvalidIndex;
FacilityIndex TimelineTest::facility_ = kInvalidIndex;

TEST_F(TimelineTest, StepCountAndClock) {
  const TimelineSimulator timeline(*simulator_);
  const auto points = timeline.run(isp_, {}, 48.0, 1.0, 5.0);
  ASSERT_EQ(points.size(), 48u);
  EXPECT_DOUBLE_EQ(points[0].utc_hour, 5.0);
  EXPECT_DOUBLE_EQ(points[20].utc_hour, 1.0);  // wraps at 24
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].hour, points[i - 1].hour + 1.0);
  }
}

TEST_F(TimelineTest, QuietTimelineHasDiurnalShape) {
  const TimelineSimulator timeline(*simulator_);
  const auto points = timeline.run(isp_, {}, 24.0);
  double low = 1e18;
  double high = 0.0;
  for (const TimelinePoint& point : points) {
    double total = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      total += point.state.flow(hg).demand;
    }
    low = std::min(low, total);
    high = std::max(high, total);
  }
  EXPECT_GT(high, low * 2.0);  // trough is 0.35x of peak
}

TEST_F(TimelineTest, FlashCrowdRaisesDemandOnlyDuringEvent) {
  const TimelineSimulator timeline(*simulator_);
  const auto quiet = timeline.run(isp_, {}, 24.0);
  const TimelineEvent crowd = flash_crowd(Hypergiant::kGoogle, 10.0, 4.0, 2.0);
  const auto stormy = timeline.run(isp_, {&crowd, 1}, 24.0);
  ASSERT_EQ(quiet.size(), stormy.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    const double before = quiet[i].state.flow(Hypergiant::kGoogle).demand;
    const double after = stormy[i].state.flow(Hypergiant::kGoogle).demand;
    if (quiet[i].hour >= 10.0 && quiet[i].hour < 14.0) {
      EXPECT_NEAR(after, before * 2.0, before * 1e-9);
    } else {
      EXPECT_NEAR(after, before, before * 1e-9);
    }
    // Other services untouched.
    EXPECT_NEAR(stormy[i].state.flow(Hypergiant::kNetflix).demand,
                quiet[i].state.flow(Hypergiant::kNetflix).demand, 1e-9);
  }
}

TEST_F(TimelineTest, FacilityFailureCutsOffnetDuringEvent) {
  const TimelineSimulator timeline(*simulator_);
  const TimelineEvent failure = facility_failure(facility_, 6.0, 6.0);
  const auto quiet = timeline.run(isp_, {}, 24.0);
  const auto broken = timeline.run(isp_, {&failure, 1}, 24.0);
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    double offnet_quiet = 0.0;
    double offnet_broken = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      offnet_quiet += quiet[i].state.flow(hg).offnet;
      offnet_broken += broken[i].state.flow(hg).offnet;
    }
    if (quiet[i].hour >= 6.0 && quiet[i].hour < 12.0) {
      EXPECT_LT(offnet_broken, offnet_quiet);
    } else {
      EXPECT_NEAR(offnet_broken, offnet_quiet, 1e-9);
    }
  }
}

TEST_F(TimelineTest, OverlappingEventsCompose) {
  const TimelineSimulator timeline(*simulator_);
  const std::vector<TimelineEvent> events{
      flash_crowd(Hypergiant::kGoogle, 8.0, 4.0, 1.5),
      flash_crowd(Hypergiant::kGoogle, 10.0, 4.0, 2.0),
  };
  const auto points = timeline.run(isp_, events, 16.0);
  const auto quiet = timeline.run(isp_, {}, 16.0);
  // In the overlap (hours 10-12) multipliers multiply: 3x.
  const double at11 = points[11].state.flow(Hypergiant::kGoogle).demand;
  const double base11 = quiet[11].state.flow(Hypergiant::kGoogle).demand;
  EXPECT_NEAR(at11, base11 * 3.0, base11 * 1e-9);
}

TEST_F(TimelineTest, AggregateHelpers) {
  const TimelineSimulator timeline(*simulator_);
  const TimelineEvent failure = facility_failure(facility_, 0.0, 24.0);
  const auto points = timeline.run(isp_, {&failure, 1}, 24.0);
  EXPECT_GE(peak_collateral(points), 0.0);
  EXPECT_GE(total_degraded_gbps_hours(points), 0.0);
  EXPECT_DOUBLE_EQ(peak_collateral({}), 0.0);
}

TEST_F(TimelineTest, Validation) {
  const TimelineSimulator timeline(*simulator_);
  EXPECT_THROW(timeline.run(isp_, {}, 0.0), Error);
  EXPECT_THROW(timeline.run(isp_, {}, 10.0, 0.0), Error);
  EXPECT_THROW(flash_crowd(Hypergiant::kGoogle, 0.0, 1.0, 0.5), Error);
}

TEST_F(TimelineTest, IsolationPolicyNeverHurtsOtherTraffic) {
  const TimelineSimulator timeline(*simulator_);
  const std::vector<TimelineEvent> events{
      flash_crowd(Hypergiant::kGoogle, 0.0, 24.0, 3.0),
      facility_failure(facility_, 0.0, 24.0),
  };
  const auto isolated = timeline.run(isp_, events, 24.0, 1.0, 0.0,
                                     SharedLinkPolicy::kIsolation);
  for (const TimelinePoint& point : isolated) {
    EXPECT_DOUBLE_EQ(point.state.other_traffic_degraded_fraction(), 0.0);
  }
}

TEST_F(TimelineTest, IsolationShiftsPainToHypergiants) {
  const TimelineSimulator timeline(*simulator_);
  const std::vector<TimelineEvent> events{
      flash_crowd(Hypergiant::kGoogle, 0.0, 24.0, 4.0),
      facility_failure(facility_, 0.0, 24.0),
  };
  const auto best_effort = timeline.run(isp_, events, 24.0);
  const auto isolated = timeline.run(isp_, events, 24.0, 1.0, 0.0,
                                     SharedLinkPolicy::kIsolation);
  EXPECT_GE(total_degraded_gbps_hours(isolated),
            total_degraded_gbps_hours(best_effort) - 1e-9);
  EXPECT_LE(peak_collateral(isolated), peak_collateral(best_effort) + 1e-9);
}

}  // namespace
}  // namespace repro
