// Contract tests for the single-core hot path (ISSUE 5): the fast
// lane-parallel distance kernel must match the sorted-sum oracle
// bit-for-bit at every SIMD dispatch level, the sorting networks must sort,
// and the DistanceMatrix packed layout must agree with its row accessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "cluster/distance.h"
#include "cluster/distance_kernel.h"
#include "cluster/sort_network.h"
#include "util/rng.h"
#include "util/simd.h"

namespace repro {
namespace {

/// Levels actually reachable on this machine: distinct KernelOps at or
/// below highest_supported(). On a machine without AVX-512 the kAvx512
/// request dispatches to the same ops as kAvx2; deduplicate so each test
/// runs once per distinct implementation.
std::vector<simd::SimdLevel> reachable_levels() {
  std::vector<simd::SimdLevel> levels;
  const cluster::KernelOps* last = nullptr;
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kSse2,
        simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    if (level > simd::highest_supported()) break;
    const cluster::KernelOps* ops = &cluster::kernel_ops(level);
    if (ops != last) levels.push_back(level);
    last = ops;
  }
  return levels;
}

/// RAII guard so a failing ASSERT cannot leak a pinned level into later
/// tests.
struct LevelGuard {
  explicit LevelGuard(simd::SimdLevel level) { simd::set_level_override(level); }
  ~LevelGuard() { simd::clear_level_override(); }
};

std::vector<double> random_table(Rng& rng, std::size_t rows, std::size_t cols,
                                 bool tie_heavy) {
  std::vector<double> table(rows * cols);
  for (double& v : table) {
    // Tie-heavy tables draw from a handful of values, so many |a-b| diffs
    // collide exactly -- the adversarial case for ordering contracts.
    v = tie_heavy ? static_cast<double>(rng.uniform_int(0, 4)) * 25.0
                  : rng.uniform(10.0, 200.0);
  }
  return table;
}

TEST(TrimKeepCount, MatchesDefinition) {
  EXPECT_EQ(trim_keep_count(1, 0.2), 1u);
  EXPECT_EQ(trim_keep_count(10, 0.0), 10u);
  EXPECT_EQ(trim_keep_count(10, 0.2), 8u);
  EXPECT_EQ(trim_keep_count(163, 0.2), 131u);
  EXPECT_EQ(trim_keep_count(5, 0.99), 1u);   // floor(4.95) = 4 -> keep 1
  EXPECT_EQ(trim_keep_count(2, 0.9), 1u);    // clamped to >= 1
}

TEST(SortNetwork, SortsRandomAndTieHeavyInputs) {
  Rng rng(0x5e71);
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 40u, 163u}) {
    for (const std::size_t keep : {std::size_t{1}, (n + 1) / 2, n}) {
      const auto pairs = cluster::sort_network_pairs(n, keep);
      for (int trial = 0; trial < 40; ++trial) {
        std::vector<double> values(n);
        const bool tie_heavy = trial % 2 == 1;
        for (double& v : values) {
          v = tie_heavy ? static_cast<double>(rng.uniform_int(0, 3))
                        : rng.uniform(0.0, 1.0);
        }
        std::vector<double> expected(values);
        std::sort(expected.begin(), expected.end());
        for (const auto& [i, j] : pairs) {
          if (values[j] < values[i]) std::swap(values[i], values[j]);
        }
        // Only the kept prefix is contractually sorted; the rest is
        // whatever the pruned comparators left behind.
        for (std::size_t k = 0; k < keep; ++k) {
          ASSERT_EQ(values[k], expected[k])
              << "n=" << n << " keep=" << keep << " k=" << k;
        }
      }
    }
  }
}

TEST(SortNetwork, LayersNeverReuseAPositionWithinALayer) {
  // The layering contract: comparators are grouped so that within one
  // dependency layer no scratch row appears twice -- that is what makes the
  // reorder legal (independent compare-exchanges commute).
  const auto pairs = cluster::sort_network_pairs(163, 131);
  std::vector<std::uint32_t> depth(163, 0);
  std::uint32_t current_layer = 0;
  std::vector<char> used(163, 0);
  for (const auto& [i, j] : pairs) {
    const std::uint32_t d = std::max(depth[i], depth[j]) + 1;
    if (d > current_layer) {
      std::fill(used.begin(), used.end(), 0);
      current_layer = d;
    }
    ASSERT_GE(d, current_layer) << "comparator out of layer order";
    ASSERT_FALSE(used[i]) << "row " << i << " reused within layer " << d;
    ASSERT_FALSE(used[j]) << "row " << j << " reused within layer " << d;
    used[i] = used[j] = 1;
    depth[i] = depth[j] = d;
  }
}

TEST(SortNetworkCache, ScalesOffsetsByLaneCount) {
  const auto& net1 = cluster::sort_network_for(40, 32, 1);
  const auto& net8 = cluster::sort_network_for(40, 32, 8);
  ASSERT_EQ(net1.comparators, net8.comparators);
  for (std::size_t k = 0; k < net1.byte_offsets.size(); ++k) {
    EXPECT_EQ(net8.byte_offsets[k], net1.byte_offsets[k] * 8);
  }
  // Cached: same reference back.
  EXPECT_EQ(&cluster::sort_network_for(40, 32, 8), &net8);
}

TEST(TrimmedManhattan, MatchesOracleBitForBit) {
  Rng rng(0xd157);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 7u, 10u, 16u, 40u, 163u, 200u}) {
    for (const double trim : {0.0, 0.1, 0.2, 0.5, 0.9, 0.99}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_table(rng, 1, n, trial % 2 == 1);
        const auto b = random_table(rng, 1, n, trial % 2 == 1);
        const double oracle = trimmed_manhattan_oracle(a, b, trim);
        const double fast = trimmed_manhattan(a, b, trim);
        ASSERT_EQ(oracle, fast) << "n=" << n << " trim=" << trim;
      }
    }
  }
}

TEST(PairwiseDistances, MatchesOracleBitForBitAtEveryLevel) {
  Rng rng(0xace5);
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    for (const std::size_t rows : {2u, 3u, 9u, 17u}) {
      for (const std::size_t cols : {1u, 2u, 5u, 8u, 40u, 163u}) {
        for (const double trim : {0.0, 0.2, 0.5}) {
          const bool tie_heavy = cols % 2 == 0;
          const auto table = random_table(rng, rows, cols, tie_heavy);
          const DistanceMatrix matrix =
              pairwise_distances(table, rows, cols, trim);
          for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = i + 1; j < rows; ++j) {
              const std::span<const double> a(table.data() + i * cols, cols);
              const std::span<const double> b(table.data() + j * cols, cols);
              ASSERT_EQ(matrix.at(i, j), trimmed_manhattan_oracle(a, b, trim))
                  << simd::to_string(level) << " rows=" << rows
                  << " cols=" << cols << " trim=" << trim << " (" << i << ","
                  << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PairwiseDistances, AllLevelsBitIdenticalOnLargeTable) {
  Rng rng(0xbeef);
  const std::size_t rows = 37, cols = 163;
  const auto table = random_table(rng, rows, cols, false);

  std::vector<std::vector<double>> flattened;
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    const DistanceMatrix matrix = pairwise_distances(table, rows, cols, 0.2);
    std::vector<double> flat;
    for (std::size_t i = 0; i < rows; ++i) {
      const auto row = matrix.row_span(i);
      flat.insert(flat.end(), row.begin(), row.end());
    }
    flattened.push_back(std::move(flat));
  }
  ASSERT_FALSE(flattened.empty());
  for (std::size_t k = 1; k < flattened.size(); ++k) {
    ASSERT_EQ(flattened[k].size(), flattened[0].size());
    for (std::size_t v = 0; v < flattened[0].size(); ++v) {
      ASSERT_EQ(flattened[k][v], flattened[0][v])
          << "level index " << k << " value " << v;
    }
  }
}

TEST(PairwiseDistancesStreamed, EveryBlockSizeMatchesOneShotAtEveryLevel) {
  // The block-streamed pass visits cell (i, j) exactly once with the same
  // kernel call the one-shot pass uses, so any block height -- degenerate
  // single-row blocks, a prime that never divides the row count, blocks
  // larger than the matrix, and 0 (whole matrix in one block) -- must
  // reproduce pairwise_distances bit-for-bit at every dispatch level.
  Rng rng(0x57ea);
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    for (const std::size_t rows : {3u, 17u, 40u}) {
      for (const std::size_t cols : {5u, 40u, 163u}) {
        const bool tie_heavy = cols % 2 == 0;
        const auto table = random_table(rng, rows, cols, tie_heavy);
        const DistanceMatrix oneshot =
            pairwise_distances(table, rows, cols, 0.2);
        const RowFiller fill = [&](std::size_t row, double* out) {
          std::copy_n(table.data() + row * cols, cols, out);
        };
        for (const std::size_t block : {1u, 7u, 64u, 0u}) {
          const DistanceMatrix streamed =
              pairwise_distances_streamed(fill, rows, cols, 0.2, block);
          for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = i + 1; j < rows; ++j) {
              ASSERT_EQ(streamed.at(i, j), oneshot.at(i, j))
                  << simd::to_string(level) << " rows=" << rows
                  << " cols=" << cols << " block=" << block << " (" << i
                  << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PairwiseDistancesStreamed, FillerSeesEachBlockRowOnDemand) {
  // The streamed pass may stage a row more than once (a row participates
  // in every block pair that touches its block) but must always ask for
  // whole valid rows; the filler is the only data source, so out-of-range
  // requests would read garbage.
  Rng rng(0xb10c);
  const std::size_t rows = 11, cols = 8;
  const auto table = random_table(rng, rows, cols, false);
  std::vector<std::atomic<int>> requests(rows);
  const RowFiller fill = [&](std::size_t row, double* out) {
    ASSERT_LT(row, rows);
    requests[row].fetch_add(1);
    std::copy_n(table.data() + row * cols, cols, out);
  };
  const DistanceMatrix streamed =
      pairwise_distances_streamed(fill, rows, cols, 0.2, 4);
  const DistanceMatrix oneshot = pairwise_distances(table, rows, cols, 0.2);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_GE(requests[i].load(), 1) << "row " << i << " never staged";
    for (std::size_t j = i + 1; j < rows; ++j) {
      ASSERT_EQ(streamed.at(i, j), oneshot.at(i, j));
    }
  }
}

TEST(DistanceMatrix, PackedOffsetProperties) {
  for (const std::size_t n : {2u, 3u, 5u, 17u, 64u}) {
    // Bijection: every (i, j < i) pair maps to a distinct offset in
    // [0, n(n-1)/2), symmetric in its arguments, and row-major contiguous.
    std::vector<char> seen(n * (n - 1) / 2, 0);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t off = DistanceMatrix::packed_offset(n, i, j);
        ASSERT_EQ(off, expected) << "n=" << n;  // row-major, no gaps
        ASSERT_EQ(off, DistanceMatrix::packed_offset(n, j, i));
        ASSERT_LT(off, seen.size());
        ASSERT_FALSE(seen[off]);
        seen[off] = 1;
        ++expected;
      }
    }
    EXPECT_EQ(expected, seen.size());
  }
}

TEST(DistanceMatrix, RowSpanAliasesPackedCells) {
  const std::size_t n = 9;
  DistanceMatrix matrix(n);
  double next = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) matrix.set(i, j, next++);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = matrix.row_span(i);
    ASSERT_EQ(row.size(), n - 1 - i);
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(row[j - i - 1], matrix.at(i, j));
    }
  }
  // Writes through the span land in the same cells at() reads.
  matrix.row_span(3)[2] = 999.0;
  EXPECT_EQ(matrix.at(3, 6), 999.0);
}

TEST(DistanceMatrix, CopyRowMatchesAt) {
  Rng rng(0xc0de);
  const std::size_t n = 23;
  DistanceMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, rng.uniform(0.0, 10.0));
    }
  }
  std::vector<double> full(n);
  std::vector<double> others(n - 1);
  for (std::size_t p = 0; p < n; ++p) {
    matrix.copy_row(p, full.data());
    matrix.copy_row_without_self(p, others.data());
    for (std::size_t o = 0; o < n; ++o) {
      ASSERT_EQ(full[o], matrix.at(p, o)) << "p=" << p << " o=" << o;
    }
    std::size_t k = 0;
    for (std::size_t o = 0; o < n; ++o) {
      if (o == p) continue;
      ASSERT_EQ(others[k++], matrix.at(p, o)) << "p=" << p << " o=" << o;
    }
  }
}

TEST(SimdDispatch, OverrideClampsAndParses) {
  EXPECT_EQ(simd::parse_level("avx2"), simd::SimdLevel::kAvx2);
  EXPECT_EQ(simd::parse_level("bogus"), std::nullopt);
  {
    LevelGuard guard(simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::active_level(), simd::SimdLevel::kScalar);
  }
  // Requests above hardware support clamp down.
  {
    LevelGuard guard(simd::SimdLevel::kAvx512);
    EXPECT_LE(simd::active_level(), simd::highest_supported());
  }
  EXPECT_LE(simd::active_level(), simd::highest_supported());
}

TEST(KernelPhaseProfile, ReportsActiveLevelAndPositiveTimings) {
  const KernelPhaseProfile profile = profile_kernel_phases(163, 0.2, 50);
  EXPECT_EQ(profile.simd_level, simd::to_string(simd::active_level()));
  EXPECT_GT(profile.diff_ns_op, 0.0);
  EXPECT_GT(profile.select_ns_op, 0.0);
  EXPECT_GT(profile.sum_ns_op, 0.0);
}

}  // namespace
}  // namespace repro
