// Contract tests for the single-core hot path (ISSUE 5): the fast
// lane-parallel distance kernel must match the sorted-sum oracle
// bit-for-bit at every SIMD dispatch level -- under both select strategies
// (the default rank-select program and the flat Batcher network fallback)
// and across an adversarial tie/denormal corpus -- the sorting networks
// must sort, the select programs must decode and execute correctly, and
// the DistanceMatrix packed layout must agree with its row accessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <vector>

#include "cluster/distance.h"
#include "cluster/distance_kernel.h"
#include "cluster/select_program.h"
#include "cluster/sort_network.h"
#include "util/rng.h"
#include "util/simd.h"

namespace repro {
namespace {

/// Levels actually reachable on this machine: distinct KernelOps at or
/// below highest_supported(). On a machine without AVX-512 the kAvx512
/// request dispatches to the same ops as kAvx2; deduplicate so each test
/// runs once per distinct implementation.
std::vector<simd::SimdLevel> reachable_levels() {
  std::vector<simd::SimdLevel> levels;
  const cluster::KernelOps* last = nullptr;
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kSse2,
        simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    if (level > simd::highest_supported()) break;
    const cluster::KernelOps* ops = &cluster::kernel_ops(level);
    if (ops != last) levels.push_back(level);
    last = ops;
  }
  return levels;
}

/// RAII guard so a failing ASSERT cannot leak a pinned level into later
/// tests.
struct LevelGuard {
  explicit LevelGuard(simd::SimdLevel level) { simd::set_level_override(level); }
  ~LevelGuard() { simd::clear_level_override(); }
};

/// Same for the select strategy (rank-select program vs Batcher fallback).
struct StrategyGuard {
  explicit StrategyGuard(cluster::SelectStrategy strategy) {
    cluster::set_select_strategy_override(strategy);
  }
  ~StrategyGuard() { cluster::set_select_strategy_override(std::nullopt); }
};

std::vector<double> random_table(Rng& rng, std::size_t rows, std::size_t cols,
                                 bool tie_heavy) {
  std::vector<double> table(rows * cols);
  for (double& v : table) {
    // Tie-heavy tables draw from a handful of values, so many |a-b| diffs
    // collide exactly -- the adversarial case for ordering contracts.
    v = tie_heavy ? static_cast<double>(rng.uniform_int(0, 4)) * 25.0
                  : rng.uniform(10.0, 200.0);
  }
  return table;
}

TEST(TrimKeepCount, MatchesDefinition) {
  EXPECT_EQ(trim_keep_count(1, 0.2), 1u);
  EXPECT_EQ(trim_keep_count(10, 0.0), 10u);
  EXPECT_EQ(trim_keep_count(10, 0.2), 8u);
  EXPECT_EQ(trim_keep_count(163, 0.2), 131u);
  EXPECT_EQ(trim_keep_count(5, 0.99), 1u);   // floor(4.95) = 4 -> keep 1
  EXPECT_EQ(trim_keep_count(2, 0.9), 1u);    // clamped to >= 1
}

TEST(SortNetwork, SortsRandomAndTieHeavyInputs) {
  Rng rng(0x5e71);
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 40u, 163u}) {
    for (const std::size_t keep : {std::size_t{1}, (n + 1) / 2, n}) {
      const auto pairs = cluster::sort_network_pairs(n, keep);
      for (int trial = 0; trial < 40; ++trial) {
        std::vector<double> values(n);
        const bool tie_heavy = trial % 2 == 1;
        for (double& v : values) {
          v = tie_heavy ? static_cast<double>(rng.uniform_int(0, 3))
                        : rng.uniform(0.0, 1.0);
        }
        std::vector<double> expected(values);
        std::sort(expected.begin(), expected.end());
        for (const auto& [i, j] : pairs) {
          if (values[j] < values[i]) std::swap(values[i], values[j]);
        }
        // Only the kept prefix is contractually sorted; the rest is
        // whatever the pruned comparators left behind.
        for (std::size_t k = 0; k < keep; ++k) {
          ASSERT_EQ(values[k], expected[k])
              << "n=" << n << " keep=" << keep << " k=" << k;
        }
      }
    }
  }
}

TEST(SortNetwork, LayersNeverReuseAPositionWithinALayer) {
  // The layering contract: comparators are grouped so that within one
  // dependency layer no scratch row appears twice -- that is what makes the
  // reorder legal (independent compare-exchanges commute).
  const auto pairs = cluster::sort_network_pairs(163, 131);
  std::vector<std::uint32_t> depth(163, 0);
  std::uint32_t current_layer = 0;
  std::vector<char> used(163, 0);
  for (const auto& [i, j] : pairs) {
    const std::uint32_t d = std::max(depth[i], depth[j]) + 1;
    if (d > current_layer) {
      std::fill(used.begin(), used.end(), 0);
      current_layer = d;
    }
    ASSERT_GE(d, current_layer) << "comparator out of layer order";
    ASSERT_FALSE(used[i]) << "row " << i << " reused within layer " << d;
    ASSERT_FALSE(used[j]) << "row " << j << " reused within layer " << d;
    used[i] = used[j] = 1;
    depth[i] = depth[j] = d;
  }
}

TEST(SortNetworkCache, ScalesOffsetsByLaneCount) {
  // Below the first 4 KiB alias period (63 rows at 8 lanes) the padded row
  // mapping is the identity, so offsets scale linearly with the lane count.
  const auto& net1 = cluster::sort_network_for(40, 32, 1);
  const auto& net8 = cluster::sort_network_for(40, 32, 8);
  ASSERT_EQ(net1.comparators, net8.comparators);
  for (std::size_t k = 0; k < net1.byte_offsets.size(); ++k) {
    EXPECT_EQ(net8.byte_offsets[k], net1.byte_offsets[k] * 8);
  }
  // Cached: same reference back.
  EXPECT_EQ(&cluster::sort_network_for(40, 32, 8), &net8);
}

TEST(SortNetworkCache, PaddedOffsetsNeverAliasAcrossAPage) {
  // The whole point of the padded row mapping: at the paper shape no
  // comparator's two rows may sit exactly one 4 KiB page apart (the false
  // store-forwarding alias the flat network otherwise trips over), and
  // every offset must land on a real (non-pad) row inside the sized
  // scratch.
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    const std::size_t row_bytes = lanes * sizeof(double);
    const std::size_t period = 4096 / row_bytes;
    const auto& net = cluster::sort_network_for(163, 131, lanes);
    const std::size_t scratch_bytes =
        cluster::kernel_scratch_doubles(163, lanes) * sizeof(double);
    for (std::size_t k = 0; k + 1 < net.byte_offsets.size(); k += 2) {
      const std::uint32_t lo = net.byte_offsets[k];
      const std::uint32_t hi = net.byte_offsets[k + 1];
      ASSERT_NE(hi - lo, 4096u) << "lanes=" << lanes << " comparator " << k / 2;
      for (const std::uint32_t off : {lo, hi}) {
        ASSERT_EQ(off % row_bytes, 0u);
        ASSERT_LT(off, scratch_bytes);
        // Pad rows sit at padded index period-1 (mod period) and must never
        // be addressed.
        ASSERT_NE((off / row_bytes) % period, period - 1)
            << "lanes=" << lanes << " offset " << off << " hits a pad row";
      }
    }
  }
}

TEST(TrimmedManhattan, MatchesOracleBitForBit) {
  Rng rng(0xd157);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 7u, 10u, 16u, 40u, 163u, 200u}) {
    for (const double trim : {0.0, 0.1, 0.2, 0.5, 0.9, 0.99}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_table(rng, 1, n, trial % 2 == 1);
        const auto b = random_table(rng, 1, n, trial % 2 == 1);
        const double oracle = trimmed_manhattan_oracle(a, b, trim);
        const double fast = trimmed_manhattan(a, b, trim);
        ASSERT_EQ(oracle, fast) << "n=" << n << " trim=" << trim;
      }
    }
  }
}

TEST(PairwiseDistances, MatchesOracleBitForBitAtEveryLevel) {
  Rng rng(0xace5);
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    for (const std::size_t rows : {2u, 3u, 9u, 17u}) {
      for (const std::size_t cols : {1u, 2u, 5u, 8u, 40u, 163u}) {
        for (const double trim : {0.0, 0.2, 0.5}) {
          const bool tie_heavy = cols % 2 == 0;
          const auto table = random_table(rng, rows, cols, tie_heavy);
          const DistanceMatrix matrix =
              pairwise_distances(table, rows, cols, trim);
          for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = i + 1; j < rows; ++j) {
              const std::span<const double> a(table.data() + i * cols, cols);
              const std::span<const double> b(table.data() + j * cols, cols);
              ASSERT_EQ(matrix.at(i, j), trimmed_manhattan_oracle(a, b, trim))
                  << simd::to_string(level) << " rows=" << rows
                  << " cols=" << cols << " trim=" << trim << " (" << i << ","
                  << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PairwiseDistances, AllLevelsBitIdenticalOnLargeTable) {
  Rng rng(0xbeef);
  const std::size_t rows = 37, cols = 163;
  const auto table = random_table(rng, rows, cols, false);

  std::vector<std::vector<double>> flattened;
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    const DistanceMatrix matrix = pairwise_distances(table, rows, cols, 0.2);
    std::vector<double> flat;
    for (std::size_t i = 0; i < rows; ++i) {
      const auto row = matrix.row_span(i);
      flat.insert(flat.end(), row.begin(), row.end());
    }
    flattened.push_back(std::move(flat));
  }
  ASSERT_FALSE(flattened.empty());
  for (std::size_t k = 1; k < flattened.size(); ++k) {
    ASSERT_EQ(flattened[k].size(), flattened[0].size());
    for (std::size_t v = 0; v < flattened[0].size(); ++v) {
      ASSERT_EQ(flattened[k][v], flattened[0][v])
          << "level index " << k << " value " << v;
    }
  }
}

TEST(PairwiseDistancesStreamed, EveryBlockSizeMatchesOneShotAtEveryLevel) {
  // The block-streamed pass visits cell (i, j) exactly once with the same
  // kernel call the one-shot pass uses, so any block height -- degenerate
  // single-row blocks, a prime that never divides the row count, blocks
  // larger than the matrix, and 0 (whole matrix in one block) -- must
  // reproduce pairwise_distances bit-for-bit at every dispatch level.
  Rng rng(0x57ea);
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard guard(level);
    for (const std::size_t rows : {3u, 17u, 40u}) {
      for (const std::size_t cols : {5u, 40u, 163u}) {
        const bool tie_heavy = cols % 2 == 0;
        const auto table = random_table(rng, rows, cols, tie_heavy);
        const DistanceMatrix oneshot =
            pairwise_distances(table, rows, cols, 0.2);
        const RowFiller fill = [&](std::size_t row, double* out) {
          std::copy_n(table.data() + row * cols, cols, out);
        };
        for (const std::size_t block : {1u, 7u, 64u, 0u}) {
          const DistanceMatrix streamed =
              pairwise_distances_streamed(fill, rows, cols, 0.2, block);
          for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = i + 1; j < rows; ++j) {
              ASSERT_EQ(streamed.at(i, j), oneshot.at(i, j))
                  << simd::to_string(level) << " rows=" << rows
                  << " cols=" << cols << " block=" << block << " (" << i
                  << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PairwiseDistancesStreamed, FillerSeesEachBlockRowOnDemand) {
  // The streamed pass may stage a row more than once (a row participates
  // in every block pair that touches its block) but must always ask for
  // whole valid rows; the filler is the only data source, so out-of-range
  // requests would read garbage.
  Rng rng(0xb10c);
  const std::size_t rows = 11, cols = 8;
  const auto table = random_table(rng, rows, cols, false);
  std::vector<std::atomic<int>> requests(rows);
  const RowFiller fill = [&](std::size_t row, double* out) {
    ASSERT_LT(row, rows);
    requests[row].fetch_add(1);
    std::copy_n(table.data() + row * cols, cols, out);
  };
  const DistanceMatrix streamed =
      pairwise_distances_streamed(fill, rows, cols, 0.2, 4);
  const DistanceMatrix oneshot = pairwise_distances(table, rows, cols, 0.2);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_GE(requests[i].load(), 1) << "row " << i << " never staged";
    for (std::size_t j = i + 1; j < rows; ++j) {
      ASSERT_EQ(streamed.at(i, j), oneshot.at(i, j));
    }
  }
}

TEST(DistanceMatrix, PackedOffsetProperties) {
  for (const std::size_t n : {2u, 3u, 5u, 17u, 64u}) {
    // Bijection: every (i, j < i) pair maps to a distinct offset in
    // [0, n(n-1)/2), symmetric in its arguments, and row-major contiguous.
    std::vector<char> seen(n * (n - 1) / 2, 0);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t off = DistanceMatrix::packed_offset(n, i, j);
        ASSERT_EQ(off, expected) << "n=" << n;  // row-major, no gaps
        ASSERT_EQ(off, DistanceMatrix::packed_offset(n, j, i));
        ASSERT_LT(off, seen.size());
        ASSERT_FALSE(seen[off]);
        seen[off] = 1;
        ++expected;
      }
    }
    EXPECT_EQ(expected, seen.size());
  }
}

TEST(DistanceMatrix, RowSpanAliasesPackedCells) {
  const std::size_t n = 9;
  DistanceMatrix matrix(n);
  double next = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) matrix.set(i, j, next++);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = matrix.row_span(i);
    ASSERT_EQ(row.size(), n - 1 - i);
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(row[j - i - 1], matrix.at(i, j));
    }
  }
  // Writes through the span land in the same cells at() reads.
  matrix.row_span(3)[2] = 999.0;
  EXPECT_EQ(matrix.at(3, 6), 999.0);
}

TEST(DistanceMatrix, CopyRowMatchesAt) {
  Rng rng(0xc0de);
  const std::size_t n = 23;
  DistanceMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, rng.uniform(0.0, 10.0));
    }
  }
  std::vector<double> full(n);
  std::vector<double> others(n - 1);
  for (std::size_t p = 0; p < n; ++p) {
    matrix.copy_row(p, full.data());
    matrix.copy_row_without_self(p, others.data());
    for (std::size_t o = 0; o < n; ++o) {
      ASSERT_EQ(full[o], matrix.at(p, o)) << "p=" << p << " o=" << o;
    }
    std::size_t k = 0;
    for (std::size_t o = 0; o < n; ++o) {
      if (o == p) continue;
      ASSERT_EQ(others[k++], matrix.at(p, o)) << "p=" << p << " o=" << o;
    }
  }
}

TEST(SimdDispatch, OverrideClampsAndParses) {
  EXPECT_EQ(simd::parse_level("avx2"), simd::SimdLevel::kAvx2);
  EXPECT_EQ(simd::parse_level("bogus"), std::nullopt);
  {
    LevelGuard guard(simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::active_level(), simd::SimdLevel::kScalar);
  }
  // Requests above hardware support clamp down.
  {
    LevelGuard guard(simd::SimdLevel::kAvx512);
    EXPECT_LE(simd::active_level(), simd::highest_supported());
  }
  EXPECT_LE(simd::active_level(), simd::highest_supported());
}

TEST(KernelPhaseProfile, ReportsActiveLevelStrategyAndPositiveTimings) {
  const KernelPhaseProfile profile = profile_kernel_phases(163, 0.2, 50);
  EXPECT_EQ(profile.simd_level, simd::to_string(simd::active_level()));
  EXPECT_EQ(profile.select_strategy,
            cluster::to_string(cluster::select_strategy()));
  EXPECT_GT(profile.diff_ns_op, 0.0);
  EXPECT_GT(profile.select_ns_op, 0.0);
  EXPECT_GT(profile.sum_ns_op, 0.0);
  // Both strategies are timed each run so the bench can name the winner;
  // select_ns_op mirrors whichever one is active.
  EXPECT_GT(profile.select_ranksel_ns_op, 0.0);
  EXPECT_GT(profile.select_network_ns_op, 0.0);
  EXPECT_EQ(profile.select_ns_op,
            cluster::select_strategy() == cluster::SelectStrategy::kRankSelect
                ? profile.select_ranksel_ns_op
                : profile.select_network_ns_op);
  {
    StrategyGuard guard(cluster::SelectStrategy::kNetwork);
    const KernelPhaseProfile fallback = profile_kernel_phases(163, 0.2, 10);
    EXPECT_EQ(fallback.select_strategy, "network");
    EXPECT_EQ(fallback.select_ns_op, fallback.select_network_ns_op);
  }
}

TEST(SelectProgram, StreamDecodesCleanlyAndStaysOnRealRows) {
  // Structural validation of the RLE opcode stream for every (n, keep)
  // shape the Batcher generator supported: runs have sane lengths, every
  // byte offset is row-aligned, inside the sized scratch, and never a pad
  // row, and the stream ends exactly at code.size().
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    const std::size_t row_bytes = lanes * sizeof(double);
    const std::size_t period = 4096 / row_bytes;
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 40u, 163u}) {
      for (const std::size_t keep : {std::size_t{1}, (n + 1) / 2, n}) {
        const cluster::SelectProgram program =
            cluster::build_select_program(n, keep, lanes);
        EXPECT_EQ(program.n, n);
        EXPECT_EQ(program.keep, keep);
        EXPECT_EQ(program.lanes, lanes);
        const std::size_t scratch_bytes =
            cluster::kernel_scratch_doubles(n, lanes) * sizeof(double);
        const auto check_offset = [&](std::uint32_t off) {
          ASSERT_EQ(off % row_bytes, 0u);
          ASSERT_LT(off, scratch_bytes);
          ASSERT_NE((off / row_bytes) % period, period - 1) << "pad row hit";
        };
        std::size_t full = 0, min_only = 0, max_only = 0;
        std::size_t sort16 = 0, merge16 = 0;
        const std::vector<std::uint32_t>& code = program.code;
        std::size_t pc = 0;
        while (pc < code.size()) {
          ASSERT_LT(pc, code.size());
          const std::uint32_t op = code[pc++];
          switch (op) {
            case cluster::kSelectFlat:
            case cluster::kSelectFlatMin:
            case cluster::kSelectFlatMax: {
              ASSERT_LT(pc, code.size());
              const std::uint32_t count = code[pc++];
              ASSERT_GE(count, 1u);
              ASSERT_LE(pc + 2 * count, code.size());
              for (std::uint32_t c = 0; c < count; ++c) {
                check_offset(code[pc]);
                check_offset(code[pc + 1]);
                ASSERT_NE(code[pc + 1] - code[pc], 4096u) << "page alias";
                pc += 2;
              }
              (op == cluster::kSelectFlat
                   ? full
                   : op == cluster::kSelectFlatMin ? min_only : max_only) +=
                  count;
              break;
            }
            case cluster::kSelectSort16: {
              ASSERT_LE(pc + 17, code.size());
              const std::uint32_t live = code[pc++];
              ASSERT_GE(live, 1u);
              ASSERT_LE(live, 16u);
              for (int s = 0; s < 16; ++s) {
                if (static_cast<std::uint32_t>(s) < live) check_offset(code[pc]);
                ++pc;
              }
              ++sort16;
              break;
            }
            case cluster::kSelectMerge16: {
              ASSERT_LE(pc + 16, code.size());
              for (int s = 0; s < 16; ++s) check_offset(code[pc++]);
              ++merge16;
              break;
            }
            default:
              FAIL() << "unknown opcode " << op << " at pc " << pc - 1;
          }
        }
        EXPECT_EQ(pc, code.size());
        EXPECT_EQ(full, program.full_comparators);
        EXPECT_EQ(min_only, program.min_only_comparators);
        EXPECT_EQ(max_only, program.max_only_comparators);
        EXPECT_EQ(sort16, program.sort16_tiles);
        EXPECT_EQ(merge16, program.merge16_tiles);
      }
    }
  }
  // The paper shape actually uses the tiled forms (otherwise the register
  // tiling is dead code), and the cache hands back a stable reference.
  const cluster::SelectProgram& paper = cluster::select_program_for(163, 131, 8);
  EXPECT_GT(paper.sort16_tiles, 0u);
  EXPECT_GT(paper.merge16_tiles, 0u);
  EXPECT_GT(paper.min_only_comparators, 0u);
  EXPECT_EQ(&cluster::select_program_for(163, 131, 8), &paper);
}

TEST(SelectProgramExec, KeptPrefixMatchesSortBothStrategiesEveryLevel) {
  // Direct execution of run_select / run_network on a hand-filled padded
  // scratch: for every reachable level and every (n, keep) shape, the kept
  // prefix must equal the per-lane ascending sort of the inputs,
  // bit-for-bit, for random, tie-heavy, and denormal lane columns.
  Rng rng(0x3e1e);
  const double denormals[] = {0.0,
                              std::numeric_limits<double>::denorm_min(),
                              1e-310,
                              std::numeric_limits<double>::min(),
                              1.0};
  cluster::AlignedScratch scratch_buf;
  for (const simd::SimdLevel level : reachable_levels()) {
    const cluster::KernelOps& ops = cluster::kernel_ops(level);
    const std::size_t lanes = ops.lanes;
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 40u, 64u, 163u}) {
      for (const std::size_t keep : {std::size_t{1}, (n + 1) / 2, n}) {
        const cluster::SelectProgram& program =
            cluster::select_program_for(n, keep, lanes);
        const cluster::SortNetwork& network =
            cluster::sort_network_for(n, keep, lanes);
        double* scratch =
            scratch_buf.ensure(cluster::kernel_scratch_doubles(n, lanes));
        for (int trial = 0; trial < 6; ++trial) {
          std::vector<double> values(n * lanes);
          for (double& v : values) {
            v = trial % 3 == 0   ? rng.uniform(0.0, 1.0)
                : trial % 3 == 1 ? static_cast<double>(rng.uniform_int(0, 3))
                                 : denormals[rng.uniform_int(0, 4)];
          }
          const auto fill = [&] {
            for (std::size_t d = 0; d < n; ++d) {
              for (std::size_t l = 0; l < lanes; ++l) {
                scratch[cluster::padded_row_index(d, lanes) * lanes + l] =
                    values[d * lanes + l];
              }
            }
          };
          std::vector<double> expected(values);
          for (std::size_t l = 0; l < lanes; ++l) {
            std::vector<double> column(n);
            for (std::size_t d = 0; d < n; ++d) column[d] = values[d * lanes + l];
            std::sort(column.begin(), column.end());
            for (std::size_t d = 0; d < n; ++d) expected[d * lanes + l] = column[d];
          }
          fill();
          ops.run_select(scratch, program.code.data(), program.code.size());
          for (std::size_t k = 0; k < keep; ++k) {
            for (std::size_t l = 0; l < lanes; ++l) {
              ASSERT_EQ(
                  scratch[cluster::padded_row_index(k, lanes) * lanes + l],
                  expected[k * lanes + l])
                  << simd::to_string(level) << " ranksel n=" << n
                  << " keep=" << keep << " trial=" << trial << " k=" << k
                  << " lane=" << l;
            }
          }
          fill();
          ops.run_network(scratch, network.byte_offsets.data(),
                          network.comparators);
          for (std::size_t k = 0; k < keep; ++k) {
            for (std::size_t l = 0; l < lanes; ++l) {
              ASSERT_EQ(
                  scratch[cluster::padded_row_index(k, lanes) * lanes + l],
                  expected[k * lanes + l])
                  << simd::to_string(level) << " network n=" << n
                  << " keep=" << keep << " trial=" << trial << " k=" << k
                  << " lane=" << l;
            }
          }
        }
      }
    }
  }
}

/// Adversarial latency-vector pairs for the rank-select corpus. Each kind
/// stresses a different failure mode of a selection that must keep the
/// *exact* kept set and its ascending order:
///   0  all |a-b| equal (every comparator is a tie)
///   1  two distinct diff values, duplicates straddling every rank boundary
///   2  denormal / zero / min-normal mixes (gradual-underflow arithmetic)
///   3  duplicate plateaus of three around the k-th rank
///   4  random control
void adversarial_pair(int kind, std::size_t n, Rng& rng,
                      std::vector<double>& a, std::vector<double>& b) {
  a.resize(n);
  b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0:
        a[i] = 7.5;
        b[i] = 3.5;
        break;
      case 1:
        a[i] = rng.uniform_int(0, 1) == 0 ? 1.0 : 2.0;
        b[i] = 0.0;
        break;
      case 2: {
        const double pool[] = {0.0,
                               std::numeric_limits<double>::denorm_min(),
                               4.5e-320,
                               std::numeric_limits<double>::min(),
                               1.5e-308};
        a[i] = pool[rng.uniform_int(0, 4)];
        b[i] = pool[rng.uniform_int(0, 4)];
        break;
      }
      case 3:
        a[i] = static_cast<double>(i / 3);
        b[i] = 0.0;
        break;
      default:
        a[i] = rng.uniform(10.0, 200.0);
        b[i] = rng.uniform(10.0, 200.0);
        break;
    }
  }
  if (kind == 3) {
    // Shuffle so the plateaus are not pre-sorted.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(a[i - 1], a[static_cast<std::size_t>(
                              rng.uniform_int(0, static_cast<int>(i) - 1))]);
    }
  }
}

TEST(RankSelectCorpus, AdversarialPairsMatchOracleEveryLevelAndStrategy) {
  Rng rng(0xc0a5);
  for (const simd::SimdLevel level : reachable_levels()) {
    LevelGuard level_guard(level);
    for (const cluster::SelectStrategy strategy :
         {cluster::SelectStrategy::kRankSelect,
          cluster::SelectStrategy::kNetwork}) {
      StrategyGuard strategy_guard(strategy);
      for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 40u, 163u}) {
        for (const double trim : {0.0, 0.2, 0.5, 0.9}) {
          for (int kind = 0; kind < 5; ++kind) {
            std::vector<double> a, b;
            adversarial_pair(kind, n, rng, a, b);
            const double oracle = trimmed_manhattan_oracle(a, b, trim);
            // Single-pair scalar path.
            ASSERT_EQ(trimmed_manhattan(a, b, trim), oracle)
                << simd::to_string(level) << " " << cluster::to_string(strategy)
                << " n=" << n << " trim=" << trim << " kind=" << kind;
            // Batched kernel path (2-row table through pairwise_distances).
            std::vector<double> table(a);
            table.insert(table.end(), b.begin(), b.end());
            const DistanceMatrix matrix = pairwise_distances(table, 2, n, trim);
            ASSERT_EQ(matrix.at(0, 1), oracle)
                << simd::to_string(level) << " " << cluster::to_string(strategy)
                << " n=" << n << " trim=" << trim << " kind=" << kind;
          }
        }
      }
    }
  }
}

TEST(SelectStrategy, OverrideAndNames) {
  EXPECT_STREQ(cluster::to_string(cluster::SelectStrategy::kRankSelect),
               "ranksel");
  EXPECT_STREQ(cluster::to_string(cluster::SelectStrategy::kNetwork),
               "network");
  {
    StrategyGuard guard(cluster::SelectStrategy::kNetwork);
    EXPECT_EQ(cluster::select_strategy(), cluster::SelectStrategy::kNetwork);
  }
  if (std::getenv("REPRO_SELECT") == nullptr) {
    EXPECT_EQ(cluster::select_strategy(), cluster::SelectStrategy::kRankSelect);
  }
}

}  // namespace
}  // namespace repro
