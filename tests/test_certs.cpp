#include "hypergiant/certs.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace repro {
namespace {

TEST(GoogleCerts, OrganizationDroppedIn2023) {
  Rng rng(1);
  const TlsCertificate cert_2021 =
      make_offnet_certificate(Hypergiant::kGoogle, Snapshot::k2021, "nyc", 0, rng);
  const TlsCertificate cert_2023 =
      make_offnet_certificate(Hypergiant::kGoogle, Snapshot::k2023, "nyc", 0, rng);
  EXPECT_EQ(cert_2021.subject.organization, "Google LLC");
  EXPECT_TRUE(cert_2023.subject.organization.empty());
  // The CN remains googlevideo in both eras (the 2023 methodology's anchor).
  EXPECT_TRUE(glob_match("*.googlevideo.com", cert_2023.subject.common_name));
  EXPECT_EQ(cert_2023.issuer.organization, "Google Trust Services LLC");
}

TEST(MetaCerts, SiteSpecificNamesIn2023) {
  Rng rng(2);
  const TlsCertificate cert_2021 =
      make_offnet_certificate(Hypergiant::kMeta, Snapshot::k2021, "han", 4, rng);
  const TlsCertificate cert_2023 =
      make_offnet_certificate(Hypergiant::kMeta, Snapshot::k2023, "han", 4, rng);
  EXPECT_EQ(cert_2021.subject.common_name, "*.fna.fbcdn.net");
  EXPECT_NE(cert_2023.subject.common_name, "*.fna.fbcdn.net");
  // Site names look like *.fhan14-4.fna.fbcdn.net: metro code embedded.
  EXPECT_NE(cert_2023.subject.common_name.find("fhan"), std::string::npos);
  EXPECT_TRUE(ends_with(cert_2023.subject.common_name, ".fna.fbcdn.net"));
}

TEST(MetaSiteName, Format) {
  EXPECT_EQ(meta_site_name("han", 14, 4), "*.fhan14-4.fna.fbcdn.net");
  EXPECT_EQ(meta_site_name("bhx", 2, 2), "*.fbhx2-2.fna.fbcdn.net");
}

TEST(NetflixCerts, ConventionStableAcrossSnapshots) {
  Rng rng(3);
  for (const Snapshot snapshot : {Snapshot::k2021, Snapshot::k2023}) {
    const TlsCertificate cert =
        make_offnet_certificate(Hypergiant::kNetflix, snapshot, "ams", 0, rng);
    EXPECT_EQ(cert.subject.common_name, "*.oca.nflxvideo.net");
    EXPECT_EQ(cert.subject.organization, "Netflix, Inc.");
  }
}

TEST(AkamaiCerts, OrganizationAnchored) {
  Rng rng(4);
  const TlsCertificate cert =
      make_offnet_certificate(Hypergiant::kAkamai, Snapshot::k2023, "fra", 0, rng);
  EXPECT_EQ(cert.subject.organization, "Akamai Technologies, Inc.");
}

TEST(OnnetCerts, DifferFromOffnetForMeta2023) {
  Rng rng(5);
  const TlsCertificate onnet =
      make_onnet_certificate(Hypergiant::kMeta, Snapshot::k2023, rng);
  const TlsCertificate offnet =
      make_offnet_certificate(Hypergiant::kMeta, Snapshot::k2023, "han", 1, rng);
  EXPECT_EQ(onnet.subject.common_name, "*.fna.fbcdn.net");
  EXPECT_NE(onnet.subject.common_name, offnet.subject.common_name);
}

TEST(OnnetCerts, GoogleOrgFollowsEra) {
  Rng rng(6);
  EXPECT_EQ(make_onnet_certificate(Hypergiant::kGoogle, Snapshot::k2021, rng)
                .subject.organization,
            "Google LLC");
  EXPECT_TRUE(make_onnet_certificate(Hypergiant::kGoogle, Snapshot::k2023, rng)
                  .subject.organization.empty());
}

TEST(Certs, ValidityCoversSnapshotYear) {
  Rng rng(7);
  for (const Hypergiant hg : all_hypergiants()) {
    for (const Snapshot snapshot : {Snapshot::k2021, Snapshot::k2023}) {
      const TlsCertificate cert =
          make_offnet_certificate(hg, snapshot, "nyc", 0, rng);
      EXPECT_LE(cert.not_before_year, snapshot_year(snapshot));
      EXPECT_GE(cert.not_after_year, snapshot_year(snapshot));
    }
  }
}

TEST(Certs, SerialsVary) {
  Rng rng(8);
  const auto a = make_offnet_certificate(Hypergiant::kGoogle, Snapshot::k2023,
                                         "nyc", 0, rng);
  const auto b = make_offnet_certificate(Hypergiant::kGoogle, Snapshot::k2023,
                                         "nyc", 0, rng);
  EXPECT_NE(a.serial, b.serial);
}

}  // namespace
}  // namespace repro
