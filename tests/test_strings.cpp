#include "util/strings.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("FbCdN.NeT"), "fbcdn.net");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("googlevideo.com", "google"));
  EXPECT_FALSE(starts_with("go", "google"));
  EXPECT_TRUE(ends_with("cache.fbcdn.net", ".fbcdn.net"));
  EXPECT_FALSE(ends_with("fbcdn.net.evil", ".fbcdn.net"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Join, RoundTripWithSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expected)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatchTest,
    ::testing::Values(
        GlobCase{"*.googlevideo.com", "r4---sn.googlevideo.com", true},
        GlobCase{"*.googlevideo.com", "googlevideo.com", false},
        GlobCase{"*.googlevideo.com", "x.googlevideo.com.evil", false},
        GlobCase{"*.fbcdn.net", "scontent.fhan14-1.fna.fbcdn.net", true},
        GlobCase{"*", "anything", true},
        GlobCase{"*", "", true},
        GlobCase{"a*b", "ab", true},
        GlobCase{"a*b", "aXXXb", true},
        GlobCase{"a*b", "aXXXc", false},
        GlobCase{"a?c", "abc", true},
        GlobCase{"a?c", "ac", false},
        GlobCase{"ABC", "abc", true},  // case-insensitive
        GlobCase{"a**b", "ab", true},
        GlobCase{"", "", true},
        GlobCase{"", "x", false}));

struct TlsNameCase {
  const char* pattern;
  const char* name;
  bool expected;
};

class TlsNameMatchTest : public ::testing::TestWithParam<TlsNameCase> {};

TEST_P(TlsNameMatchTest, Matches) {
  const TlsNameCase& c = GetParam();
  EXPECT_EQ(tls_name_match(c.pattern, c.name), c.expected)
      << c.pattern << " vs " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Rules, TlsNameMatchTest,
    ::testing::Values(
        // A TLS wildcard covers exactly one extra label.
        TlsNameCase{"*.fbcdn.net", "scontent.fbcdn.net", true},
        TlsNameCase{"*.fbcdn.net", "a.b.fbcdn.net", false},
        TlsNameCase{"*.fbcdn.net", "fbcdn.net", false},
        TlsNameCase{"www.example.com", "www.example.com", true},
        TlsNameCase{"www.example.com", "WWW.EXAMPLE.COM", true},
        TlsNameCase{"www.example.com", "example.com", false},
        TlsNameCase{"*.x.com", ".x.com", false}));

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(FormatPercent, FractionToPercent) {
  EXPECT_EQ(format_percent(0.3821), "38.2%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.005, 1), "0.5%");
}

}  // namespace
}  // namespace repro
