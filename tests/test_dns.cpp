#include "dns/mapping_study.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace repro {
namespace {

class DnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new Internet(InternetGenerator(GeneratorConfig::tiny()).generate());
    DeploymentConfig config;
    config.footprint_scale = GeneratorConfig::tiny().scale;
    registry_ = new OffnetRegistry(
        DeploymentPolicy(*net_, config).deploy(Snapshot::k2023));
    router_ = new RequestRouter(*net_, *registry_);
  }
  static void TearDownTestSuite() {
    delete router_;
    delete registry_;
    delete net_;
  }
  static Internet* net_;
  static OffnetRegistry* registry_;
  static RequestRouter* router_;

  static Ipv4 client_in(AsIndex isp) {
    return net_->ases[isp].user_prefixes.front().at(7);
  }
};

Internet* DnsTest::net_ = nullptr;
OffnetRegistry* DnsTest::registry_ = nullptr;
RequestRouter* DnsTest::router_ = nullptr;

TEST_F(DnsTest, HostedClientsServedFromTheirIspOffnet) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    for (const Hypergiant hg : registry_->hypergiants_at(isp)) {
      const Ipv4 serving = router_->serving_ip(hg, client_in(isp));
      EXPECT_EQ(net_->as_of_ip(serving), isp);
      EXPECT_TRUE(router_->serves_from_offnet(hg, client_in(isp)));
    }
    return;  // one ISP suffices
  }
  FAIL() << "no hosting ISP";
}

TEST_F(DnsTest, UnhostedClientsServedOnnet) {
  for (const AsIndex isp : net_->access_isps()) {
    for (const Hypergiant hg : all_hypergiants()) {
      if (registry_->find_deployment(isp, hg) != nullptr) continue;
      const Ipv4 serving = router_->serving_ip(hg, client_in(isp));
      EXPECT_EQ(net_->as_of_ip(serving), net_->as_by_asn(profile(hg).asn));
      EXPECT_FALSE(router_->serves_from_offnet(hg, client_in(isp)));
      return;
    }
  }
  GTEST_SKIP() << "every ISP hosts every hypergiant";
}

TEST_F(DnsTest, EmbeddedHostnamesRoundTrip) {
  for (const AsIndex isp : registry_->hosting_isps()) {
    const Hypergiant hg = registry_->hypergiants_at(isp).front();
    const auto hostname = router_->embedded_hostname(hg, client_in(isp));
    ASSERT_TRUE(hostname.has_value());
    const auto ip = router_->ip_of_embedded_hostname(*hostname);
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(net_->as_of_ip(*ip), isp);
    return;
  }
  FAIL() << "no hosting ISP";
}

TEST_F(DnsTest, GeoDnsAnswersFollowEcs) {
  const AuthoritativeDns dns(*router_, Hypergiant::kGoogle,
                             RedirectionPolicy::kGeoDns2013);
  for (const AsIndex isp : registry_->isps_hosting(Hypergiant::kGoogle)) {
    const Prefix ecs = enclosing_slash24(client_in(isp));
    const auto answer =
        dns.resolve(dns.canonical_hostname(), Ipv4::parse("8.8.8.8"), ecs);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(net_->as_of_ip(answer->ip), isp)
        << "geo DNS should answer with the client ISP's offnet";
    return;
  }
  FAIL() << "no Google host";
}

TEST_F(DnsTest, EmbeddedUrlPolicyHidesOffnets) {
  const AuthoritativeDns dns(*router_, Hypergiant::kGoogle,
                             RedirectionPolicy::kEmbeddedUrl2023);
  const AsIndex isp = registry_->isps_hosting(Hypergiant::kGoogle).front();
  const Prefix ecs = enclosing_slash24(client_in(isp));
  const auto answer =
      dns.resolve(dns.canonical_hostname(), Ipv4::parse("8.8.8.8"), ecs);
  ASSERT_TRUE(answer.has_value());
  // Canonical name resolves onnet regardless of the client.
  EXPECT_EQ(net_->as_of_ip(answer->ip), net_->as_by_asn(kGoogleAsn));
  // ...but the embedded hostname (in-band knowledge) still reaches the
  // offnet.
  const auto hostname =
      router_->embedded_hostname(Hypergiant::kGoogle, client_in(isp));
  ASSERT_TRUE(hostname.has_value());
  const auto embedded = dns.resolve(*hostname, Ipv4::parse("8.8.8.8"), ecs);
  ASSERT_TRUE(embedded.has_value());
  EXPECT_EQ(net_->as_of_ip(embedded->ip), isp);
}

TEST_F(DnsTest, AllowlistPolicyDependsOnResolver) {
  const Ipv4 trusted = Ipv4::parse("9.9.9.9");
  const AuthoritativeDns dns(*router_, Hypergiant::kAkamai,
                             RedirectionPolicy::kEcsAllowlist, {trusted});
  const auto hosts = registry_->isps_hosting(Hypergiant::kAkamai);
  ASSERT_FALSE(hosts.empty());
  const AsIndex isp = hosts.front();
  const Prefix ecs = enclosing_slash24(client_in(isp));

  const auto allowed = dns.resolve(dns.canonical_hostname(), trusted, ecs);
  ASSERT_TRUE(allowed.has_value());
  EXPECT_EQ(net_->as_of_ip(allowed->ip), isp);

  const auto denied =
      dns.resolve(dns.canonical_hostname(), Ipv4::parse("8.8.8.8"), ecs);
  ASSERT_TRUE(denied.has_value());
  EXPECT_EQ(net_->as_of_ip(denied->ip), net_->as_by_asn(kAkamaiAsn));
}

TEST_F(DnsTest, UnknownHostnameGetsNoAnswer) {
  const AuthoritativeDns dns(*router_, Hypergiant::kGoogle,
                             RedirectionPolicy::kGeoDns2013);
  EXPECT_EQ(dns.resolve("nonexistent.example.org", Ipv4::parse("8.8.8.8"),
                        std::nullopt),
            std::nullopt);
}

TEST_F(DnsTest, MappingStudyWorksAgainst2013Policy) {
  const AuthoritativeDns dns(*router_, Hypergiant::kGoogle,
                             RedirectionPolicy::kGeoDns2013);
  const EcsMappingResult result =
      ecs_mapping_study(*net_, *registry_, *router_, dns);
  EXPECT_EQ(result.hg, Hypergiant::kGoogle);
  EXPECT_GT(result.prefixes_mapped_to_offnet, 0u);
  EXPECT_GT(result.isp_recall, 0.95);
  EXPECT_GT(result.prefix_recall, 0.95);
}

TEST_F(DnsTest, MappingStudyCollapsesAgainst2023Policy) {
  const AuthoritativeDns dns(*router_, Hypergiant::kGoogle,
                             RedirectionPolicy::kEmbeddedUrl2023);
  const EcsMappingResult result =
      ecs_mapping_study(*net_, *registry_, *router_, dns);
  EXPECT_EQ(result.prefixes_mapped_to_offnet, 0u);
  EXPECT_DOUBLE_EQ(result.isp_recall, 0.0);
}

TEST_F(DnsTest, MappingStudyAgainstAllowlistDependsOnVantage) {
  const Ipv4 trusted = Ipv4::parse("9.9.9.9");
  const AuthoritativeDns dns(*router_, Hypergiant::kAkamai,
                             RedirectionPolicy::kEcsAllowlist, {trusted});
  EcsMappingConfig from_trusted;
  from_trusted.resolver = trusted;
  const EcsMappingResult good =
      ecs_mapping_study(*net_, *registry_, *router_, dns, from_trusted);
  EXPECT_GT(good.isp_recall, 0.95);

  EcsMappingConfig from_public;
  from_public.resolver = Ipv4::parse("8.8.8.8");
  const EcsMappingResult bad =
      ecs_mapping_study(*net_, *registry_, *router_, dns, from_public);
  EXPECT_DOUBLE_EQ(bad.isp_recall, 0.0);
}

}  // namespace
}  // namespace repro
