#include "core/pipeline.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { pipeline_ = new Pipeline(Scenario::tiny()); }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, WorldBuilt) {
  EXPECT_GT(pipeline_->internet().ases.size(), 100u);
  EXPECT_GT(pipeline_->internet().metros.size(), 50u);
}

TEST_F(PipelineTest, RegistriesCachedAndDistinct) {
  const OffnetRegistry& a = pipeline_->registry(Snapshot::k2023);
  const OffnetRegistry& b = pipeline_->registry(Snapshot::k2023);
  EXPECT_EQ(&a, &b);  // cached
  const OffnetRegistry& earlier = pipeline_->registry(Snapshot::k2021);
  EXPECT_LT(earlier.server_count(), a.server_count());
}

TEST_F(PipelineTest, DiscoveryFindsDeployments) {
  const DiscoveryReport& report =
      pipeline_->discovery(Snapshot::k2023, Methodology::k2023);
  const OffnetRegistry& registry = pipeline_->registry(Snapshot::k2023);
  for (const Hypergiant hg : all_hypergiants()) {
    // Scan misses a percent of endpoints, so discovered <= ground truth and
    // close to it.
    const std::size_t truth = registry.isps_hosting(hg).size();
    const std::size_t found = report.footprint(hg).isp_count();
    EXPECT_LE(found, truth);
    EXPECT_GE(found, truth * 9 / 10);
  }
}

TEST_F(PipelineTest, DiscoveryCached) {
  const DiscoveryReport& a =
      pipeline_->discovery(Snapshot::k2023, Methodology::k2023);
  const DiscoveryReport& b =
      pipeline_->discovery(Snapshot::k2023, Methodology::k2023);
  EXPECT_EQ(&a, &b);
}

TEST_F(PipelineTest, VantagePointsMatchScenario) {
  EXPECT_EQ(pipeline_->vantage_points().size(),
            pipeline_->scenario().vantage_points);
}

TEST_F(PipelineTest, ClusteringsCoverHostingIsps) {
  const auto& clusterings = pipeline_->clusterings(0.1);
  EXPECT_EQ(clusterings.size(), pipeline_->hosting_isps_2023().size());
  // Both standard xi values are materialized by the shared pass.
  const auto& coarse = pipeline_->clusterings(0.9);
  EXPECT_EQ(coarse.size(), clusterings.size());
}

TEST_F(PipelineTest, ClusteringLookupByIsp) {
  const auto hosting = pipeline_->hosting_isps_2023();
  ASSERT_FALSE(hosting.empty());
  const IspClustering* clustering = pipeline_->clustering_of(0.1, hosting.front());
  ASSERT_NE(clustering, nullptr);
  EXPECT_EQ(clustering->isp, hosting.front());
  // Not a hosting ISP -> no clustering.
  for (const AsIndex isp : pipeline_->internet().access_isps()) {
    if (std::find(hosting.begin(), hosting.end(), isp) == hosting.end()) {
      EXPECT_EQ(pipeline_->clustering_of(0.1, isp), nullptr);
      break;
    }
  }
}

TEST_F(PipelineTest, TrafficModelsAvailable) {
  const AsIndex isp = pipeline_->hosting_isps_2023().front();
  EXPECT_GT(pipeline_->demand().isp_peak_demand_gbps(isp), 0.0);
  const Hypergiant hg =
      pipeline_->registry(Snapshot::k2023).hypergiants_at(isp).front();
  EXPECT_GT(pipeline_->capacity().offnet_capacity_gbps(isp, hg), 0.0);
}

TEST_F(PipelineTest, RoutingReachesHypergiants) {
  const AsIndex google = pipeline_->internet().as_by_asn(kGoogleAsn);
  const RoutingTable table = pipeline_->routing().routes_to(google);
  for (const AsIndex isp : pipeline_->internet().access_isps()) {
    EXPECT_TRUE(table.entry(isp).reachable);
  }
}

}  // namespace
}  // namespace repro
