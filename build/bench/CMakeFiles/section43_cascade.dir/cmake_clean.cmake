file(REMOVE_RECURSE
  "CMakeFiles/section43_cascade.dir/section43_cascade.cpp.o"
  "CMakeFiles/section43_cascade.dir/section43_cascade.cpp.o.d"
  "section43_cascade"
  "section43_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section43_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
