# Empty compiler generated dependencies file for section43_cascade.
# This may be replaced when dependencies are built.
