file(REMOVE_RECURSE
  "CMakeFiles/figure2_facility_share.dir/figure2_facility_share.cpp.o"
  "CMakeFiles/figure2_facility_share.dir/figure2_facility_share.cpp.o.d"
  "figure2_facility_share"
  "figure2_facility_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_facility_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
