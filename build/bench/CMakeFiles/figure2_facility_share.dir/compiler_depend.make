# Empty compiler generated dependencies file for figure2_facility_share.
# This may be replaced when dependencies are built.
