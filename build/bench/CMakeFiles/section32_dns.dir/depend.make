# Empty dependencies file for section32_dns.
# This may be replaced when dependencies are built.
