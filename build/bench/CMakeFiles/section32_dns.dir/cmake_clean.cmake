file(REMOVE_RECURSE
  "CMakeFiles/section32_dns.dir/section32_dns.cpp.o"
  "CMakeFiles/section32_dns.dir/section32_dns.cpp.o.d"
  "section32_dns"
  "section32_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section32_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
