# Empty compiler generated dependencies file for section422_pni.
# This may be replaced when dependencies are built.
