file(REMOVE_RECURSE
  "CMakeFiles/section422_pni.dir/section422_pni.cpp.o"
  "CMakeFiles/section422_pni.dir/section422_pni.cpp.o.d"
  "section422_pni"
  "section422_pni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section422_pni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
