file(REMOVE_RECURSE
  "CMakeFiles/cache_efficiency.dir/cache_efficiency.cpp.o"
  "CMakeFiles/cache_efficiency.dir/cache_efficiency.cpp.o.d"
  "cache_efficiency"
  "cache_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
