# Empty dependencies file for cache_efficiency.
# This may be replaced when dependencies are built.
