file(REMOVE_RECURSE
  "CMakeFiles/table2_colocation.dir/table2_colocation.cpp.o"
  "CMakeFiles/table2_colocation.dir/table2_colocation.cpp.o.d"
  "table2_colocation"
  "table2_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
