# Empty compiler generated dependencies file for table2_colocation.
# This may be replaced when dependencies are built.
