file(REMOVE_RECURSE
  "CMakeFiles/validation_rdns.dir/validation_rdns.cpp.o"
  "CMakeFiles/validation_rdns.dir/validation_rdns.cpp.o.d"
  "validation_rdns"
  "validation_rdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_rdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
