# Empty dependencies file for validation_rdns.
# This may be replaced when dependencies are built.
