file(REMOVE_RECURSE
  "CMakeFiles/section33_chokepoints.dir/section33_chokepoints.cpp.o"
  "CMakeFiles/section33_chokepoints.dir/section33_chokepoints.cpp.o.d"
  "section33_chokepoints"
  "section33_chokepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section33_chokepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
