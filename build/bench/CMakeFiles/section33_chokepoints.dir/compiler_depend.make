# Empty compiler generated dependencies file for section33_chokepoints.
# This may be replaced when dependencies are built.
