# Empty compiler generated dependencies file for longitudinal_growth.
# This may be replaced when dependencies are built.
