file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_growth.dir/longitudinal_growth.cpp.o"
  "CMakeFiles/longitudinal_growth.dir/longitudinal_growth.cpp.o.d"
  "longitudinal_growth"
  "longitudinal_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
