file(REMOVE_RECURSE
  "CMakeFiles/facility_blast_radius.dir/facility_blast_radius.cpp.o"
  "CMakeFiles/facility_blast_radius.dir/facility_blast_radius.cpp.o.d"
  "facility_blast_radius"
  "facility_blast_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_blast_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
