# Empty dependencies file for facility_blast_radius.
# This may be replaced when dependencies are built.
