file(REMOVE_RECURSE
  "CMakeFiles/section41_capacity.dir/section41_capacity.cpp.o"
  "CMakeFiles/section41_capacity.dir/section41_capacity.cpp.o.d"
  "section41_capacity"
  "section41_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section41_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
