# Empty dependencies file for section41_capacity.
# This may be replaced when dependencies are built.
