file(REMOVE_RECURSE
  "CMakeFiles/figure1_country_maps.dir/figure1_country_maps.cpp.o"
  "CMakeFiles/figure1_country_maps.dir/figure1_country_maps.cpp.o.d"
  "figure1_country_maps"
  "figure1_country_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_country_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
