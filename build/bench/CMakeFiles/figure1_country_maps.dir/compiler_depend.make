# Empty compiler generated dependencies file for figure1_country_maps.
# This may be replaced when dependencies are built.
