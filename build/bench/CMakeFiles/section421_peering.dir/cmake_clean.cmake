file(REMOVE_RECURSE
  "CMakeFiles/section421_peering.dir/section421_peering.cpp.o"
  "CMakeFiles/section421_peering.dir/section421_peering.cpp.o.d"
  "section421_peering"
  "section421_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section421_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
