# Empty compiler generated dependencies file for section421_peering.
# This may be replaced when dependencies are built.
