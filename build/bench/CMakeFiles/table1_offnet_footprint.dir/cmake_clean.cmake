file(REMOVE_RECURSE
  "CMakeFiles/table1_offnet_footprint.dir/table1_offnet_footprint.cpp.o"
  "CMakeFiles/table1_offnet_footprint.dir/table1_offnet_footprint.cpp.o.d"
  "table1_offnet_footprint"
  "table1_offnet_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_offnet_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
