# Empty compiler generated dependencies file for table1_offnet_footprint.
# This may be replaced when dependencies are built.
