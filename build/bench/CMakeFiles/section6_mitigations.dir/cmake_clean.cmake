file(REMOVE_RECURSE
  "CMakeFiles/section6_mitigations.dir/section6_mitigations.cpp.o"
  "CMakeFiles/section6_mitigations.dir/section6_mitigations.cpp.o.d"
  "section6_mitigations"
  "section6_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section6_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
