# Empty dependencies file for section6_mitigations.
# This may be replaced when dependencies are built.
