file(REMOVE_RECURSE
  "CMakeFiles/peering_audit.dir/peering_audit.cpp.o"
  "CMakeFiles/peering_audit.dir/peering_audit.cpp.o.d"
  "peering_audit"
  "peering_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
