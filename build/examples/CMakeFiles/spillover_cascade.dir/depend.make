# Empty dependencies file for spillover_cascade.
# This may be replaced when dependencies are built.
