file(REMOVE_RECURSE
  "CMakeFiles/spillover_cascade.dir/spillover_cascade.cpp.o"
  "CMakeFiles/spillover_cascade.dir/spillover_cascade.cpp.o.d"
  "spillover_cascade"
  "spillover_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spillover_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
