file(REMOVE_RECURSE
  "CMakeFiles/test_spillover.dir/test_spillover.cpp.o"
  "CMakeFiles/test_spillover.dir/test_spillover.cpp.o.d"
  "test_spillover"
  "test_spillover.pdb"
  "test_spillover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spillover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
