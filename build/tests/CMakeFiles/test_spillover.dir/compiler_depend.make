# Empty compiler generated dependencies file for test_spillover.
# This may be replaced when dependencies are built.
