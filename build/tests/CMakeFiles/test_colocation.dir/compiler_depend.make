# Empty compiler generated dependencies file for test_colocation.
# This may be replaced when dependencies are built.
