file(REMOVE_RECURSE
  "CMakeFiles/test_certs.dir/test_certs.cpp.o"
  "CMakeFiles/test_certs.dir/test_certs.cpp.o.d"
  "test_certs"
  "test_certs.pdb"
  "test_certs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
