
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/repro_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/rdns/CMakeFiles/repro_rdns.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/repro_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/repro_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/repro_route.dir/DependInfo.cmake"
  "/root/repo/build/src/mlab/CMakeFiles/repro_mlab.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergiant/CMakeFiles/repro_hypergiant.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
