# Empty dependencies file for test_mlab.
# This may be replaced when dependencies are built.
