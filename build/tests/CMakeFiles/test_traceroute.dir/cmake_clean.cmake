file(REMOVE_RECURSE
  "CMakeFiles/test_traceroute.dir/test_traceroute.cpp.o"
  "CMakeFiles/test_traceroute.dir/test_traceroute.cpp.o.d"
  "test_traceroute"
  "test_traceroute.pdb"
  "test_traceroute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
