file(REMOVE_RECURSE
  "CMakeFiles/test_rdns.dir/test_rdns.cpp.o"
  "CMakeFiles/test_rdns.dir/test_rdns.cpp.o.d"
  "test_rdns"
  "test_rdns.pdb"
  "test_rdns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
