# Empty compiler generated dependencies file for test_rdns.
# This may be replaced when dependencies are built.
