# Empty dependencies file for test_peering.
# This may be replaced when dependencies are built.
