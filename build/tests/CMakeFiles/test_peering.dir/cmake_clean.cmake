file(REMOVE_RECURSE
  "CMakeFiles/test_peering.dir/test_peering.cpp.o"
  "CMakeFiles/test_peering.dir/test_peering.cpp.o.d"
  "test_peering"
  "test_peering.pdb"
  "test_peering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
