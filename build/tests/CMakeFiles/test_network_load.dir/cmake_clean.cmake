file(REMOVE_RECURSE
  "CMakeFiles/test_network_load.dir/test_network_load.cpp.o"
  "CMakeFiles/test_network_load.dir/test_network_load.cpp.o.d"
  "test_network_load"
  "test_network_load.pdb"
  "test_network_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
