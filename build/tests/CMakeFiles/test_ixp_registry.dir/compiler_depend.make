# Empty compiler generated dependencies file for test_ixp_registry.
# This may be replaced when dependencies are built.
