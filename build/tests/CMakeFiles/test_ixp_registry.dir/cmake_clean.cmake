file(REMOVE_RECURSE
  "CMakeFiles/test_ixp_registry.dir/test_ixp_registry.cpp.o"
  "CMakeFiles/test_ixp_registry.dir/test_ixp_registry.cpp.o.d"
  "test_ixp_registry"
  "test_ixp_registry.pdb"
  "test_ixp_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ixp_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
