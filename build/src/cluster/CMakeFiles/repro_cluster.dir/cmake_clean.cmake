file(REMOVE_RECURSE
  "CMakeFiles/repro_cluster.dir/colocation.cpp.o"
  "CMakeFiles/repro_cluster.dir/colocation.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/distance.cpp.o"
  "CMakeFiles/repro_cluster.dir/distance.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/optics.cpp.o"
  "CMakeFiles/repro_cluster.dir/optics.cpp.o.d"
  "librepro_cluster.a"
  "librepro_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
