
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergiant/background.cpp" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/background.cpp.o" "gcc" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/background.cpp.o.d"
  "/root/repo/src/hypergiant/certs.cpp" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/certs.cpp.o" "gcc" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/certs.cpp.o.d"
  "/root/repo/src/hypergiant/deployment.cpp" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/deployment.cpp.o" "gcc" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/deployment.cpp.o.d"
  "/root/repo/src/hypergiant/profile.cpp" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/profile.cpp.o" "gcc" "src/hypergiant/CMakeFiles/repro_hypergiant.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
