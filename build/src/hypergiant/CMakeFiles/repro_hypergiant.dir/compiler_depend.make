# Empty compiler generated dependencies file for repro_hypergiant.
# This may be replaced when dependencies are built.
