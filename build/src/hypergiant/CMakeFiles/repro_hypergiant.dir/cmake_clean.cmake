file(REMOVE_RECURSE
  "CMakeFiles/repro_hypergiant.dir/background.cpp.o"
  "CMakeFiles/repro_hypergiant.dir/background.cpp.o.d"
  "CMakeFiles/repro_hypergiant.dir/certs.cpp.o"
  "CMakeFiles/repro_hypergiant.dir/certs.cpp.o.d"
  "CMakeFiles/repro_hypergiant.dir/deployment.cpp.o"
  "CMakeFiles/repro_hypergiant.dir/deployment.cpp.o.d"
  "CMakeFiles/repro_hypergiant.dir/profile.cpp.o"
  "CMakeFiles/repro_hypergiant.dir/profile.cpp.o.d"
  "librepro_hypergiant.a"
  "librepro_hypergiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_hypergiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
