file(REMOVE_RECURSE
  "librepro_hypergiant.a"
)
