# Empty dependencies file for repro_mlab.
# This may be replaced when dependencies are built.
