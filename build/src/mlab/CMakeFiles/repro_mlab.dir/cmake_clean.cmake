file(REMOVE_RECURSE
  "CMakeFiles/repro_mlab.dir/filters.cpp.o"
  "CMakeFiles/repro_mlab.dir/filters.cpp.o.d"
  "CMakeFiles/repro_mlab.dir/ping_mesh.cpp.o"
  "CMakeFiles/repro_mlab.dir/ping_mesh.cpp.o.d"
  "CMakeFiles/repro_mlab.dir/vantage_points.cpp.o"
  "CMakeFiles/repro_mlab.dir/vantage_points.cpp.o.d"
  "librepro_mlab.a"
  "librepro_mlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
