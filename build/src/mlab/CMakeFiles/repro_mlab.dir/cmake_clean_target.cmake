file(REMOVE_RECURSE
  "librepro_mlab.a"
)
