# Empty compiler generated dependencies file for repro_mlab.
# This may be replaced when dependencies are built.
