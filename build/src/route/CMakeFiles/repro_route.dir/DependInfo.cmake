
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/bgp.cpp" "src/route/CMakeFiles/repro_route.dir/bgp.cpp.o" "gcc" "src/route/CMakeFiles/repro_route.dir/bgp.cpp.o.d"
  "/root/repo/src/route/ixp_registry.cpp" "src/route/CMakeFiles/repro_route.dir/ixp_registry.cpp.o" "gcc" "src/route/CMakeFiles/repro_route.dir/ixp_registry.cpp.o.d"
  "/root/repo/src/route/peering_inference.cpp" "src/route/CMakeFiles/repro_route.dir/peering_inference.cpp.o" "gcc" "src/route/CMakeFiles/repro_route.dir/peering_inference.cpp.o.d"
  "/root/repo/src/route/traceroute.cpp" "src/route/CMakeFiles/repro_route.dir/traceroute.cpp.o" "gcc" "src/route/CMakeFiles/repro_route.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
