file(REMOVE_RECURSE
  "CMakeFiles/repro_route.dir/bgp.cpp.o"
  "CMakeFiles/repro_route.dir/bgp.cpp.o.d"
  "CMakeFiles/repro_route.dir/ixp_registry.cpp.o"
  "CMakeFiles/repro_route.dir/ixp_registry.cpp.o.d"
  "CMakeFiles/repro_route.dir/peering_inference.cpp.o"
  "CMakeFiles/repro_route.dir/peering_inference.cpp.o.d"
  "CMakeFiles/repro_route.dir/traceroute.cpp.o"
  "CMakeFiles/repro_route.dir/traceroute.cpp.o.d"
  "librepro_route.a"
  "librepro_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
