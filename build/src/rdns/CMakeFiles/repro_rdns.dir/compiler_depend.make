# Empty compiler generated dependencies file for repro_rdns.
# This may be replaced when dependencies are built.
