file(REMOVE_RECURSE
  "CMakeFiles/repro_rdns.dir/hoiho.cpp.o"
  "CMakeFiles/repro_rdns.dir/hoiho.cpp.o.d"
  "CMakeFiles/repro_rdns.dir/ptr_store.cpp.o"
  "CMakeFiles/repro_rdns.dir/ptr_store.cpp.o.d"
  "CMakeFiles/repro_rdns.dir/validation.cpp.o"
  "CMakeFiles/repro_rdns.dir/validation.cpp.o.d"
  "librepro_rdns.a"
  "librepro_rdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_rdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
