file(REMOVE_RECURSE
  "librepro_rdns.a"
)
