file(REMOVE_RECURSE
  "CMakeFiles/repro_topology.dir/country.cpp.o"
  "CMakeFiles/repro_topology.dir/country.cpp.o.d"
  "CMakeFiles/repro_topology.dir/entities.cpp.o"
  "CMakeFiles/repro_topology.dir/entities.cpp.o.d"
  "CMakeFiles/repro_topology.dir/generator.cpp.o"
  "CMakeFiles/repro_topology.dir/generator.cpp.o.d"
  "CMakeFiles/repro_topology.dir/internet.cpp.o"
  "CMakeFiles/repro_topology.dir/internet.cpp.o.d"
  "librepro_topology.a"
  "librepro_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
