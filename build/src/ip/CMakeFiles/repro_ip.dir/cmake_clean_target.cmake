file(REMOVE_RECURSE
  "librepro_ip.a"
)
