# Empty compiler generated dependencies file for repro_ip.
# This may be replaced when dependencies are built.
