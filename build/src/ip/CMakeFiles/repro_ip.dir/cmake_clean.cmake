file(REMOVE_RECURSE
  "CMakeFiles/repro_ip.dir/allocator.cpp.o"
  "CMakeFiles/repro_ip.dir/allocator.cpp.o.d"
  "CMakeFiles/repro_ip.dir/ipv4.cpp.o"
  "CMakeFiles/repro_ip.dir/ipv4.cpp.o.d"
  "CMakeFiles/repro_ip.dir/prefix_trie.cpp.o"
  "CMakeFiles/repro_ip.dir/prefix_trie.cpp.o.d"
  "librepro_ip.a"
  "librepro_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
