
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/allocator.cpp" "src/ip/CMakeFiles/repro_ip.dir/allocator.cpp.o" "gcc" "src/ip/CMakeFiles/repro_ip.dir/allocator.cpp.o.d"
  "/root/repo/src/ip/ipv4.cpp" "src/ip/CMakeFiles/repro_ip.dir/ipv4.cpp.o" "gcc" "src/ip/CMakeFiles/repro_ip.dir/ipv4.cpp.o.d"
  "/root/repo/src/ip/prefix_trie.cpp" "src/ip/CMakeFiles/repro_ip.dir/prefix_trie.cpp.o" "gcc" "src/ip/CMakeFiles/repro_ip.dir/prefix_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
