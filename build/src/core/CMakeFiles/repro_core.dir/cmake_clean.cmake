file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/analyses.cpp.o"
  "CMakeFiles/repro_core.dir/analyses.cpp.o.d"
  "CMakeFiles/repro_core.dir/pipeline.cpp.o"
  "CMakeFiles/repro_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/repro_core.dir/scenario.cpp.o"
  "CMakeFiles/repro_core.dir/scenario.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
