file(REMOVE_RECURSE
  "librepro_traffic.a"
)
