file(REMOVE_RECURSE
  "CMakeFiles/repro_traffic.dir/capacity.cpp.o"
  "CMakeFiles/repro_traffic.dir/capacity.cpp.o.d"
  "CMakeFiles/repro_traffic.dir/demand.cpp.o"
  "CMakeFiles/repro_traffic.dir/demand.cpp.o.d"
  "CMakeFiles/repro_traffic.dir/network_load.cpp.o"
  "CMakeFiles/repro_traffic.dir/network_load.cpp.o.d"
  "CMakeFiles/repro_traffic.dir/scenarios.cpp.o"
  "CMakeFiles/repro_traffic.dir/scenarios.cpp.o.d"
  "CMakeFiles/repro_traffic.dir/spillover.cpp.o"
  "CMakeFiles/repro_traffic.dir/spillover.cpp.o.d"
  "CMakeFiles/repro_traffic.dir/timeline.cpp.o"
  "CMakeFiles/repro_traffic.dir/timeline.cpp.o.d"
  "librepro_traffic.a"
  "librepro_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
