# Empty dependencies file for repro_traffic.
# This may be replaced when dependencies are built.
