
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/capacity.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/capacity.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/capacity.cpp.o.d"
  "/root/repo/src/traffic/demand.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/demand.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/demand.cpp.o.d"
  "/root/repo/src/traffic/network_load.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/network_load.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/network_load.cpp.o.d"
  "/root/repo/src/traffic/scenarios.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/scenarios.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/scenarios.cpp.o.d"
  "/root/repo/src/traffic/spillover.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/spillover.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/spillover.cpp.o.d"
  "/root/repo/src/traffic/timeline.cpp" "src/traffic/CMakeFiles/repro_traffic.dir/timeline.cpp.o" "gcc" "src/traffic/CMakeFiles/repro_traffic.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergiant/CMakeFiles/repro_hypergiant.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/repro_route.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
