file(REMOVE_RECURSE
  "librepro_scan.a"
)
