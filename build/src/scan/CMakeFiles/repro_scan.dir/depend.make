# Empty dependencies file for repro_scan.
# This may be replaced when dependencies are built.
