file(REMOVE_RECURSE
  "CMakeFiles/repro_scan.dir/classifier.cpp.o"
  "CMakeFiles/repro_scan.dir/classifier.cpp.o.d"
  "CMakeFiles/repro_scan.dir/fingerprint.cpp.o"
  "CMakeFiles/repro_scan.dir/fingerprint.cpp.o.d"
  "CMakeFiles/repro_scan.dir/scanner.cpp.o"
  "CMakeFiles/repro_scan.dir/scanner.cpp.o.d"
  "librepro_scan.a"
  "librepro_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
