
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/classifier.cpp" "src/scan/CMakeFiles/repro_scan.dir/classifier.cpp.o" "gcc" "src/scan/CMakeFiles/repro_scan.dir/classifier.cpp.o.d"
  "/root/repo/src/scan/fingerprint.cpp" "src/scan/CMakeFiles/repro_scan.dir/fingerprint.cpp.o" "gcc" "src/scan/CMakeFiles/repro_scan.dir/fingerprint.cpp.o.d"
  "/root/repo/src/scan/scanner.cpp" "src/scan/CMakeFiles/repro_scan.dir/scanner.cpp.o" "gcc" "src/scan/CMakeFiles/repro_scan.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergiant/CMakeFiles/repro_hypergiant.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/repro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
