file(REMOVE_RECURSE
  "CMakeFiles/repro_cache.dir/catalog.cpp.o"
  "CMakeFiles/repro_cache.dir/catalog.cpp.o.d"
  "CMakeFiles/repro_cache.dir/lru.cpp.o"
  "CMakeFiles/repro_cache.dir/lru.cpp.o.d"
  "CMakeFiles/repro_cache.dir/simulator.cpp.o"
  "CMakeFiles/repro_cache.dir/simulator.cpp.o.d"
  "librepro_cache.a"
  "librepro_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
