# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ip")
subdirs("topology")
subdirs("tls")
subdirs("cache")
subdirs("dns")
subdirs("hypergiant")
subdirs("scan")
subdirs("mlab")
subdirs("cluster")
subdirs("rdns")
subdirs("route")
subdirs("traffic")
subdirs("core")
