
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/cert_store.cpp" "src/tls/CMakeFiles/repro_tls.dir/cert_store.cpp.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/cert_store.cpp.o.d"
  "/root/repo/src/tls/certificate.cpp" "src/tls/CMakeFiles/repro_tls.dir/certificate.cpp.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/certificate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/repro_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
