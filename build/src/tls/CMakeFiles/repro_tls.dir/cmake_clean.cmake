file(REMOVE_RECURSE
  "CMakeFiles/repro_tls.dir/cert_store.cpp.o"
  "CMakeFiles/repro_tls.dir/cert_store.cpp.o.d"
  "CMakeFiles/repro_tls.dir/certificate.cpp.o"
  "CMakeFiles/repro_tls.dir/certificate.cpp.o.d"
  "librepro_tls.a"
  "librepro_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
