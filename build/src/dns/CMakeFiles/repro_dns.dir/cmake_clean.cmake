file(REMOVE_RECURSE
  "CMakeFiles/repro_dns.dir/authoritative.cpp.o"
  "CMakeFiles/repro_dns.dir/authoritative.cpp.o.d"
  "CMakeFiles/repro_dns.dir/mapping_study.cpp.o"
  "CMakeFiles/repro_dns.dir/mapping_study.cpp.o.d"
  "CMakeFiles/repro_dns.dir/request_routing.cpp.o"
  "CMakeFiles/repro_dns.dir/request_routing.cpp.o.d"
  "librepro_dns.a"
  "librepro_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
