#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass over the fault tests.
#
#   ./scripts/check.sh             tier-1 build + full ctest, then an
#                                  ASan build of test_fault (label `fault`)
#   SKIP_ASAN=1 ./scripts/check.sh tier-1 only
#
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan: fault tests =="
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_fault
  (cd build-asan && ctest -L fault --output-on-failure -j"$(nproc)")
fi

echo "== all checks passed =="
