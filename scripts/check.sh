#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: AddressSanitizer over the fault
# and store tests, ThreadSanitizer over the concurrency-sensitive tiers (the
# parallel clustering engine, the obs registry, degraded-mode runs, and
# concurrent artifact-store access from the clustering fan-out), and a
# warm-equals-cold smoke test of the persistent store.
#
#   ./scripts/check.sh             tier-1 build + full ctest, then an
#                                  ASan build of the `fault`, `store` and
#                                  `serve` labels, a TSan build of the
#                                  `parallel`, `obs`, `fault`, `store` and
#                                  `serve` labels, a UBSan build of the
#                                  `perf` label (the SIMD kernels), a TSan
#                                  store-chaos smoke (live corruption under
#                                  concurrent warm readers), the warm-start
#                                  smoke, an ASan multi-process shard smoke
#                                  (repro-shard vs --single), a report-
#                                  service smoke + latency gate (repro-serve
#                                  cold/warm byte-identity, warm hits > 0,
#                                  load-bench warm_p99_ms vs the committed
#                                  baseline), and a perf-regression gate
#   SKIP_ASAN=1 ./scripts/check.sh  skip the ASan pass
#   SKIP_TSAN=1 ./scripts/check.sh  skip the TSan pass
#   SKIP_CHAOS=1 ./scripts/check.sh skip the store-chaos smoke
#   SKIP_UBSAN=1 ./scripts/check.sh skip the UBSan pass
#   SKIP_WARM=1 ./scripts/check.sh  skip the warm-equals-cold smoke
#   SKIP_TRACE=1 ./scripts/check.sh skip the trace-export smoke
#   SKIP_PERF=1 ./scripts/check.sh  skip the perf-regression gate
#   SKIP_SHARD=1 ./scripts/check.sh skip the multi-process shard smoke
#   SKIP_SERVE=1 ./scripts/check.sh skip the report-service smoke + gate
#
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan: fault + store + serve tests =="
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_fault test_store test_serve
  (cd build-asan && ctest -L 'fault|store|serve' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: parallel + obs + fault + store + serve tests =="
  cmake -B build-tsan -S . -DREPRO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target test_parallel test_obs test_fault test_store test_serve
  (cd build-tsan && ctest -L 'parallel|obs|fault|store|serve' --output-on-failure -j"$(nproc)")

  if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
    echo "== tsan: store-chaos smoke (concurrent warm readers + live corruption) =="
    # A clean cold run populates the store; a second run arms store chaos so
    # artifacts are garbled *as* the pool's warm readers load them. The run
    # must self-heal (corrupt -> quarantine -> recompute -> republish) to a
    # report byte-identical to the cold one -- the chaos report only adds
    # the Stage health appendix, which any active fault plan emits -- and
    # the store must actually have injected and recomputed something, all
    # with ThreadSanitizer watching the reader/injector races.
    cmake --build build-tsan -j"$(nproc)" --target full_report
    chaos_dir="$(mktemp -d)"
    trap 'rm -rf "${smoke_dir:-}" "${trace_dir:-}" "${perf_dir:-}" "${chaos_dir:-}"' EXIT
    REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_THREADS=8 REPRO_STORE="$chaos_dir/store" \
      ./build-tsan/examples/full_report "$chaos_dir/cold.md" >/dev/null
    REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_THREADS=8 REPRO_STORE="$chaos_dir/store" \
      REPRO_FAULT_STORE=0.9 \
      ./build-tsan/examples/full_report "$chaos_dir/chaos.md" | tee "$chaos_dir/chaos.out"
    sed '/^## Stage health/,$d' "$chaos_dir/chaos.md" >"$chaos_dir/chaos_body.md"
    diff "$chaos_dir/cold.md" "$chaos_dir/chaos_body.md"
    injected="$(sed -n 's/.*[^0-9]\([0-9]\{1,\}\) chaos_injected.*/\1/p' "$chaos_dir/chaos.out")"
    recomputed="$(sed -n 's/.*[^0-9]\([0-9]\{1,\}\) recomputed.*/\1/p' "$chaos_dir/chaos.out")"
    if [[ -z "$injected" || "$injected" -eq 0 || -z "$recomputed" || "$recomputed" -eq 0 ]]; then
      echo "FAIL: chaos run injected '$injected' corruptions, recomputed '$recomputed'"
      exit 1
    fi
    echo "chaos report byte-identical to cold ($injected garbled, $recomputed recomputed)"
  fi
fi

if [[ "${SKIP_UBSAN:-0}" != "1" ]]; then
  echo "== ubsan: perf tests (SIMD kernels) =="
  cmake -B build-ubsan -S . -DREPRO_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j"$(nproc)" --target test_perf_kernel
  (cd build-ubsan && ctest -L 'perf' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_WARM:-0}" != "1" ]]; then
  echo "== warm-equals-cold smoke (tiny scale) =="
  # Two full_report runs over one artifact store: the second starts warm and
  # must produce a byte-identical report (REPRO_TRACE=0 keeps timing tables
  # out of the output, which legitimately differ between runs).
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${perf_dir:-}"' EXIT
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/cold.md" >/dev/null
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/warm.md" >/dev/null
  diff "$smoke_dir/cold.md" "$smoke_dir/warm.md"
  echo "warm report byte-identical to cold"
fi

if [[ "${SKIP_TRACE:-0}" != "1" ]]; then
  echo "== trace-export smoke (tiny scale) =="
  # A traced full_report run must produce a structurally valid trace.json:
  # at least one enqueue->run flow event (cross-thread stitching) and one
  # sampler counter track. repro-bench trace-check does the validation.
  trace_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${trace_dir:-}" "${perf_dir:-}"' EXIT
  # REPRO_THREADS forces the pool fan-out even on single-core hosts, so the
  # enqueue->run flow events actually exist to be checked.
  REPRO_SCALE=tiny REPRO_TRACE=1 REPRO_SAMPLE_HZ=50 REPRO_THREADS=8 \
    REPRO_TRACE_OUT="$trace_dir/run_report.json" \
    REPRO_TRACE_EVENTS="$trace_dir/trace.json" \
    ./build/examples/full_report "$trace_dir/report.md" >/dev/null
  ./build/examples/repro-bench trace-check "$trace_dir/trace.json"
fi

if [[ "${SKIP_SHARD:-0}" != "1" ]]; then
  echo "== asan: multi-process shard smoke (3 shards vs single, tiny scale) =="
  # The repro-shard driver forks 3 workers over a shared artifact store and
  # merges; a --single run over its own store is the baseline. The two
  # summaries (clusterings digests, stage health, domain counters, Table 1/2
  # renders) must be byte-identical -- docs/SCALING.md's bit-identity
  # contract crossing real process boundaries, with ASan watching the
  # worker/merge paths. Shard-transport gauges (store.*, pipeline.*) are
  # excluded from the summary by the driver itself.
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target repro-shard
  shard_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${trace_dir:-}" "${perf_dir:-}" "${chaos_dir:-}" "${shard_dir:-}"' EXIT
  ./build-asan/examples/repro-shard --shards 3 --scale tiny \
    --store "$shard_dir/sharded.store" --out "$shard_dir/sharded.txt" >/dev/null
  ./build-asan/examples/repro-shard --single --scale tiny \
    --store "$shard_dir/single.store" --out "$shard_dir/single.txt" >/dev/null
  diff "$shard_dir/sharded.txt" "$shard_dir/single.txt"
  echo "3-shard merge byte-identical to single process"
fi

if [[ "${SKIP_SERVE:-0}" != "1" ]]; then
  echo "== report-service smoke + latency gate (tiny scale) =="
  # Cold one-shot query populates a store; a second process over the same
  # store must render byte-identically from warm artifacts. Then a short
  # stdio daemon session proves the render cache actually hits, and the
  # load bench's warm p99 is gated against the committed baseline with
  # repro-bench naming the regressed field. Shared CI hosts are noisy, so
  # the gate takes the best of up to three attempts before failing.
  serve_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${trace_dir:-}" "${perf_dir:-}" "${chaos_dir:-}" "${shard_dir:-}" "${serve_dir:-}"' EXIT
  ./build/examples/repro-serve --store "$serve_dir/store" --scale tiny \
    --render-out "$serve_dir/cold.txt" --query '{"query":"table1"}' >/dev/null
  ./build/examples/repro-serve --store "$serve_dir/store" --scale tiny \
    --render-out "$serve_dir/warm.txt" --query '{"query":"table1"}' >/dev/null
  diff "$serve_dir/cold.txt" "$serve_dir/warm.txt"
  echo "warm service render byte-identical to cold"

  printf '%s\n%s\n%s\n' '{"query":"table1"}' '{"query":"table1"}' '{"query":"stats"}' \
    | ./build/examples/repro-serve --stdio --store "$serve_dir/store" --scale tiny \
    >"$serve_dir/stdio.out"
  hits="$(sed -n 's/.*"hit":\([0-9]\{1,\}\).*/\1/p' "$serve_dir/stdio.out" | tail -1)"
  if [[ -z "$hits" || "$hits" -eq 0 ]]; then
    echo "FAIL: stdio daemon reported '$hits' render-cache hits"
    exit 1
  fi
  echo "stdio daemon warm ($hits render-cache hits)"

  serve_ok=0
  for attempt in 1 2 3; do
    REPRO_SCALE=tiny REPRO_BENCH_OUT="$serve_dir" \
      ./build/bench/report_service_load >/dev/null
    if ./build/examples/repro-bench diff \
        --baseline bench_output/BENCH_report_service.json \
        --gate 2.0 --gate-fields warm_p99_ms \
        "$serve_dir/BENCH_report_service.json"
    then serve_ok=1; break; fi
    echo "attempt $attempt over gate; retrying"
  done
  if [[ "$serve_ok" != "1" ]]; then
    echo "FAIL: warm service p99 regressed more than 2x vs baseline"
    exit 1
  fi
fi

if [[ "${SKIP_PERF:-0}" != "1" ]]; then
  echo "== perf-regression gate: pairwise_distances + kernel phases vs committed baseline =="
  # Rerun the perf_micro headline measurement (the google-benchmark suite is
  # filtered out for speed; the pairwise timing is hand-rolled in main) into
  # a scratch dir, then diff against the committed
  # bench_output/BENCH_perf_micro.json with repro-bench, which names the
  # regressed field. Two gates per attempt: the end-to-end serial pairwise
  # time regressing more than 20% (time > 1.25x baseline) fails, and the
  # per-phase kernel timings (diff/select/sum ns per pair) plus the OPTICS
  # xi-extraction cost fail at 1.6x -- the phase loops run for microseconds
  # each, so they see proportionally more scheduler noise than the
  # second-long pairwise measurement and get a looser gate. Shared CI hosts
  # are noisy, so the gate takes the best of up to three attempts before
  # failing.
  perf_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${trace_dir:-}" "${perf_dir:-}" "${chaos_dir:-}" "${shard_dir:-}" "${serve_dir:-}"' EXIT
  perf_ok=0
  for attempt in 1 2 3; do
    REPRO_SCALE=tiny REPRO_BENCH_OUT="$perf_dir" \
      ./build/bench/perf_micro --benchmark_filter='NONE' >/dev/null
    if ./build/examples/repro-bench diff \
        --baseline bench_output/BENCH_perf_micro.json \
        --gate 1.25 --gate-fields pairwise_serial_seconds \
        "$perf_dir/BENCH_perf_micro.json" \
      && ./build/examples/repro-bench diff \
        --baseline bench_output/BENCH_perf_micro.json \
        --gate 1.6 \
        --gate-fields kernel_diff_ns_op,kernel_select_ns_op,kernel_sum_ns_op,optics_extract_ns_op \
        "$perf_dir/BENCH_perf_micro.json"
    then perf_ok=1; break; fi
    echo "attempt $attempt over gate; retrying"
  done
  if [[ "$perf_ok" != "1" ]]; then
    echo "FAIL: pairwise throughput or kernel phase cost regressed vs baseline"
    exit 1
  fi
fi

echo "== all checks passed =="
