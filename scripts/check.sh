#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: AddressSanitizer over the fault
# and store tests, ThreadSanitizer over the concurrency-sensitive tiers (the
# parallel clustering engine, the obs registry, degraded-mode runs, and
# concurrent artifact-store access from the clustering fan-out), and a
# warm-equals-cold smoke test of the persistent store.
#
#   ./scripts/check.sh             tier-1 build + full ctest, then an
#                                  ASan build of the `fault` and `store`
#                                  labels, a TSan build of the `parallel`,
#                                  `obs`, `fault` and `store` labels, and
#                                  the warm-start smoke
#   SKIP_ASAN=1 ./scripts/check.sh skip the ASan pass
#   SKIP_TSAN=1 ./scripts/check.sh skip the TSan pass
#   SKIP_WARM=1 ./scripts/check.sh skip the warm-equals-cold smoke
#
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan: fault + store tests =="
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_fault test_store
  (cd build-asan && ctest -L 'fault|store' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: parallel + obs + fault + store tests =="
  cmake -B build-tsan -S . -DREPRO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target test_parallel test_obs test_fault test_store
  (cd build-tsan && ctest -L 'parallel|obs|fault|store' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_WARM:-0}" != "1" ]]; then
  echo "== warm-equals-cold smoke (tiny scale) =="
  # Two full_report runs over one artifact store: the second starts warm and
  # must produce a byte-identical report (REPRO_TRACE=0 keeps timing tables
  # out of the output, which legitimately differ between runs).
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/cold.md" >/dev/null
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/warm.md" >/dev/null
  diff "$smoke_dir/cold.md" "$smoke_dir/warm.md"
  echo "warm report byte-identical to cold"
fi

echo "== all checks passed =="
