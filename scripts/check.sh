#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: AddressSanitizer over the fault
# tests and ThreadSanitizer over the concurrency-sensitive tiers (the
# parallel clustering engine, the obs registry, and degraded-mode runs).
#
#   ./scripts/check.sh             tier-1 build + full ctest, then an
#                                  ASan build of test_fault (label `fault`)
#                                  and a TSan build of the `parallel`, `obs`
#                                  and `fault` labels
#   SKIP_ASAN=1 ./scripts/check.sh skip the ASan pass
#   SKIP_TSAN=1 ./scripts/check.sh skip the TSan pass
#
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan: fault tests =="
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_fault
  (cd build-asan && ctest -L fault --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: parallel + obs + fault tests =="
  cmake -B build-tsan -S . -DREPRO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target test_parallel test_obs test_fault
  (cd build-tsan && ctest -L 'parallel|obs|fault' --output-on-failure -j"$(nproc)")
fi

echo "== all checks passed =="
