#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: AddressSanitizer over the fault
# and store tests, ThreadSanitizer over the concurrency-sensitive tiers (the
# parallel clustering engine, the obs registry, degraded-mode runs, and
# concurrent artifact-store access from the clustering fan-out), and a
# warm-equals-cold smoke test of the persistent store.
#
#   ./scripts/check.sh             tier-1 build + full ctest, then an
#                                  ASan build of the `fault` and `store`
#                                  labels, a TSan build of the `parallel`,
#                                  `obs`, `fault` and `store` labels, a
#                                  UBSan build of the `perf` label (the
#                                  SIMD kernels), the warm-start smoke,
#                                  and a perf-regression gate
#   SKIP_ASAN=1 ./scripts/check.sh  skip the ASan pass
#   SKIP_TSAN=1 ./scripts/check.sh  skip the TSan pass
#   SKIP_UBSAN=1 ./scripts/check.sh skip the UBSan pass
#   SKIP_WARM=1 ./scripts/check.sh  skip the warm-equals-cold smoke
#   SKIP_PERF=1 ./scripts/check.sh  skip the perf-regression gate
#
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan: fault + store tests =="
  cmake -B build-asan -S . -DREPRO_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_fault test_store
  (cd build-asan && ctest -L 'fault|store' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: parallel + obs + fault + store tests =="
  cmake -B build-tsan -S . -DREPRO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target test_parallel test_obs test_fault test_store
  (cd build-tsan && ctest -L 'parallel|obs|fault|store' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_UBSAN:-0}" != "1" ]]; then
  echo "== ubsan: perf tests (SIMD kernels) =="
  cmake -B build-ubsan -S . -DREPRO_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j"$(nproc)" --target test_perf_kernel
  (cd build-ubsan && ctest -L 'perf' --output-on-failure -j"$(nproc)")
fi

if [[ "${SKIP_WARM:-0}" != "1" ]]; then
  echo "== warm-equals-cold smoke (tiny scale) =="
  # Two full_report runs over one artifact store: the second starts warm and
  # must produce a byte-identical report (REPRO_TRACE=0 keeps timing tables
  # out of the output, which legitimately differ between runs).
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${perf_dir:-}"' EXIT
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/cold.md" >/dev/null
  REPRO_SCALE=tiny REPRO_TRACE=0 REPRO_STORE="$smoke_dir/store" \
    ./build/examples/full_report "$smoke_dir/warm.md" >/dev/null
  diff "$smoke_dir/cold.md" "$smoke_dir/warm.md"
  echo "warm report byte-identical to cold"
fi

if [[ "${SKIP_PERF:-0}" != "1" ]]; then
  echo "== perf-regression gate: pairwise_distances vs committed baseline =="
  # Rerun the perf_micro headline measurement (the google-benchmark suite is
  # filtered out for speed; the pairwise timing is hand-rolled in main) into
  # a scratch dir, then compare the serial pairwise time to the committed
  # bench_output/BENCH_perf_micro.json. Throughput regressing more than 20%
  # (time > 1.25x baseline) fails the check. Shared CI hosts are noisy, so
  # the gate takes the best of up to three attempts before failing.
  perf_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir:-}" "${perf_dir:-}"' EXIT
  perf_ok=0
  for attempt in 1 2 3; do
    REPRO_SCALE=tiny REPRO_BENCH_OUT="$perf_dir" \
      ./build/bench/perf_micro --benchmark_filter='NONE' >/dev/null
    if python3 - "$perf_dir/BENCH_perf_micro.json" \
        bench_output/BENCH_perf_micro.json <<'EOF'
import json, sys
current = json.load(open(sys.argv[1]))["pairwise_serial_seconds"]
baseline = json.load(open(sys.argv[2]))["pairwise_serial_seconds"]
ratio = current / baseline if baseline > 0 else float("inf")
print(f"pairwise serial: {current:.4f} s vs baseline {baseline:.4f} s "
      f"({ratio:.2f}x, gate 1.25x)")
sys.exit(0 if ratio <= 1.25 else 1)
EOF
    then perf_ok=1; break; fi
    echo "attempt $attempt over gate; retrying"
  done
  if [[ "$perf_ok" != "1" ]]; then
    echo "FAIL: pairwise throughput regressed more than 20% vs baseline"
    exit 1
  fi
fi

echo "== all checks passed =="
