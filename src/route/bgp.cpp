#include "route/bgp.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "util/error.h"

namespace repro {

std::string_view to_string(RouteKind kind) noexcept {
  switch (kind) {
    case RouteKind::kSelf: return "self";
    case RouteKind::kCustomer: return "customer";
    case RouteKind::kPeer: return "peer";
    case RouteKind::kProvider: return "provider";
  }
  return "?";
}

RoutingTable::RoutingTable(AsIndex destination, std::vector<RouteEntry> entries,
                           std::vector<RouteEntry> alternates)
    : destination_(destination),
      entries_(std::move(entries)),
      alternates_(std::move(alternates)) {}

const RouteEntry& RoutingTable::entry(AsIndex source) const {
  require(source < entries_.size(), "RoutingTable::entry: bad AS index");
  return entries_[source];
}

const RouteEntry& RoutingTable::alternate(AsIndex source) const {
  static const RouteEntry kNoRoute{};
  require(source < entries_.size(), "RoutingTable::alternate: bad AS index");
  if (source >= alternates_.size()) return kNoRoute;
  return alternates_[source];
}

std::vector<AsIndex> RoutingTable::as_path(AsIndex source) const {
  std::vector<AsIndex> path;
  AsIndex current = source;
  while (true) {
    const RouteEntry& e = entry(current);
    if (!e.reachable) return {};
    path.push_back(current);
    if (current == destination_) return path;
    require(path.size() <= entries_.size(), "RoutingTable: path loop");
    current = e.next_hop;
  }
}

std::vector<LinkIndex> RoutingTable::link_path(AsIndex source) const {
  std::vector<LinkIndex> links;
  AsIndex current = source;
  while (current != destination_) {
    const RouteEntry& e = entry(current);
    if (!e.reachable) return {};
    links.push_back(e.via_link);
    require(links.size() <= entries_.size(), "RoutingTable: link loop");
    current = e.next_hop;
  }
  return links;
}

RoutingEngine::RoutingEngine(const Internet& internet) : internet_(internet) {}

RoutingTable RoutingEngine::routes_to(AsIndex destination) const {
  obs::ScopedTimer timer("route.routes_to_ms");
  // routes_to is called once per destination across whole-mesh studies, so
  // skip the registry map lookup on every call.
  static obs::CachedCounter tables_computed("route.tables_computed");
  tables_computed.add(1);
  const auto& ases = internet_.ases;
  const auto& links = internet_.links;
  require(destination < ases.size(), "routes_to: bad destination");

  const std::size_t n = ases.size();
  std::vector<RouteEntry> best(n);
  best[destination] =
      RouteEntry{true, RouteKind::kSelf, destination, kInvalidIndex, 0};

  // Deterministic preference: shorter path first, then lower next-hop ASN.
  const auto better = [&](const RouteEntry& candidate, const RouteEntry& current) {
    if (!current.reachable) return true;
    if (candidate.path_length != current.path_length) {
      return candidate.path_length < current.path_length;
    }
    return ases[candidate.next_hop].asn < ases[current.next_hop].asn;
  };

  // Phase 1: customer routes. The destination's announcement climbs
  // provider chains; an AS that hears it from a customer installs a
  // customer route. BFS by path length for shortest-first.
  {
    std::queue<AsIndex> frontier;
    frontier.push(destination);
    while (!frontier.empty()) {
      const AsIndex current = frontier.front();
      frontier.pop();
      for (const LinkIndex li : ases[current].provider_links) {
        const auto& link = links[li];
        const AsIndex provider = link.b;
        const RouteEntry candidate{true, RouteKind::kCustomer, current, li,
                                   best[current].path_length + 1};
        if (best[provider].reachable &&
            best[provider].kind == RouteKind::kCustomer &&
            !better(candidate, best[provider])) {
          continue;
        }
        if (best[provider].kind == RouteKind::kSelf && best[provider].reachable) {
          continue;  // never displace the destination itself
        }
        const bool first_time = !best[provider].reachable;
        best[provider] = candidate;
        if (first_time) frontier.push(provider);
        // Re-push on improvement to propagate shorter lengths. Path lengths
        // only shrink, and the graph is a DAG upward, so this terminates.
        else frontier.push(provider);
      }
    }
  }

  // Phase 2: peer routes. An AS with a customer route (or the destination)
  // exports it to peers; a peer without a customer route may use it.
  {
    std::vector<RouteEntry> peer_routes(n);
    for (AsIndex current = 0; current < n; ++current) {
      if (!best[current].reachable) continue;
      if (best[current].kind != RouteKind::kSelf &&
          best[current].kind != RouteKind::kCustomer) {
        continue;
      }
      for (const LinkIndex li : ases[current].peer_links) {
        const auto& link = links[li];
        const AsIndex neighbor = link.a == current ? link.b : link.a;
        if (best[neighbor].reachable) continue;  // has customer route or self
        const RouteEntry candidate{true, RouteKind::kPeer, current, li,
                                   best[current].path_length + 1};
        if (better(candidate, peer_routes[neighbor])) {
          peer_routes[neighbor] = candidate;
        }
      }
    }
    for (AsIndex i = 0; i < n; ++i) {
      if (peer_routes[i].reachable) best[i] = peer_routes[i];
    }
  }

  // Phase 3: provider routes. Any AS with a route exports it to customers;
  // customers without one install provider routes, cascading downward.
  {
    // BFS over customer links from all routed ASes, shortest-first by level.
    std::queue<AsIndex> frontier;
    for (AsIndex i = 0; i < n; ++i) {
      if (best[i].reachable) frontier.push(i);
    }
    while (!frontier.empty()) {
      const AsIndex current = frontier.front();
      frontier.pop();
      for (const LinkIndex li : ases[current].customer_links) {
        const auto& link = links[li];
        const AsIndex customer = link.a;
        const RouteEntry candidate{true, RouteKind::kProvider, current, li,
                                   best[current].path_length + 1};
        if (best[customer].reachable) {
          // Provider routes never displace customer/peer/self routes, and a
          // provider route is only replaced by a strictly better one.
          if (best[customer].kind != RouteKind::kProvider) continue;
          if (!better(candidate, best[customer])) continue;
        }
        best[customer] = candidate;
        frontier.push(customer);
      }
    }
  }

  // Post-pass: second-best routes. Every AS re-offers its installed route to
  // every neighbor the Gao-Rexford export rules allow; a neighbor keeps the
  // best offer arriving through a different next hop than its installed
  // route. O(E), and purely additive -- the best routes above are untouched.
  std::vector<RouteEntry> alternates(n);
  const auto exportable_upward = [](const RouteEntry& route) {
    // Customer and self routes are exported to peers and providers; peer and
    // provider routes are exported to customers only.
    return route.kind == RouteKind::kSelf || route.kind == RouteKind::kCustomer;
  };
  const auto full_better = [&](const RouteEntry& candidate,
                               const RouteEntry& current) {
    if (!current.reachable) return true;
    if (candidate.kind != current.kind) {
      return candidate.kind < current.kind;  // enum order is the preference
    }
    if (candidate.path_length != current.path_length) {
      return candidate.path_length < current.path_length;
    }
    return ases[candidate.next_hop].asn < ases[current.next_hop].asn;
  };
  const auto offer = [&](AsIndex to, const RouteEntry& candidate) {
    if (to == destination) return;
    if (!best[to].reachable) return;  // nothing to flap away from
    if (candidate.next_hop == best[to].next_hop) return;  // same next hop
    // Refuse an alternate whose first hop immediately routes back through
    // us; longer transient loops are possible (as on the real Internet) and
    // are the traceroute walker's TTL cap to absorb.
    if (best[candidate.next_hop].next_hop == to) return;
    if (full_better(candidate, alternates[to])) alternates[to] = candidate;
  };
  for (AsIndex current = 0; current < n; ++current) {
    const RouteEntry& route = best[current];
    if (!route.reachable) continue;
    const int length = route.path_length + 1;
    if (exportable_upward(route)) {
      for (const LinkIndex li : ases[current].provider_links) {
        offer(links[li].b,
              RouteEntry{true, RouteKind::kCustomer, current, li, length});
      }
      for (const LinkIndex li : ases[current].peer_links) {
        const auto& link = links[li];
        const AsIndex neighbor = link.a == current ? link.b : link.a;
        offer(neighbor, RouteEntry{true, RouteKind::kPeer, current, li, length});
      }
    }
    for (const LinkIndex li : ases[current].customer_links) {
      offer(links[li].a,
            RouteEntry{true, RouteKind::kProvider, current, li, length});
    }
  }

  return RoutingTable(destination, std::move(best), std::move(alternates));
}

}  // namespace repro
