// The Section 4.2.1 peering study: issue traceroutes from VMs inside a
// hypergiant's network towards addresses in target ISPs, map hops to
// networks with BGP (IP-to-AS) and IXP databases, and infer peering when a
// hypergiant hop is directly followed by a hop mapped to the ISP.
// Unresponsive hops between the two yield only "possible peering".
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "route/ixp_registry.h"
#include "route/traceroute.h"

namespace repro {

enum class PeeringStatus : std::uint8_t {
  kPeer = 0,       // direct hypergiant -> ISP adjacency observed
  kPossiblePeer,   // only unresponsive hops separate hypergiant and ISP
  kNoEvidence,     // another network appears in between (or nothing maps)
};

std::string_view to_string(PeeringStatus status) noexcept;

/// Aggregated evidence for one target ISP.
struct IspPeeringEvidence {
  AsIndex isp = kInvalidIndex;
  PeeringStatus status = PeeringStatus::kNoEvidence;
  bool seen_via_ixp = false;  // >= 1 adjacency crossed an IXP peering LAN
  bool seen_via_pni = false;  // >= 1 adjacency on a non-IXP address
  std::size_t traceroutes = 0;
  /// Probes towards the same destination observed disagreeing paths (path
  /// signature instability, e.g. a BGP flap mid-study). A kPeer verdict for
  /// an unstable target is downgraded to kPossiblePeer: the adjacency may
  /// have been a transient detour, not a standing interconnect.
  bool unstable = false;
};

/// What the study observed about its own data quality, for StageHealth.
struct PeeringStudyOutcome {
  std::size_t targets = 0;
  std::size_t probes = 0;
  std::size_t unstable_targets = 0;
  std::size_t downgraded_peers = 0;  // kPeer verdicts demoted by instability
};

struct PeeringStudyConfig {
  std::uint64_t seed = 20230800;
  /// Distinct vantage VMs inside the hypergiant (the paper uses 112 Google
  /// Cloud regions); each probes with a different flow id, so it can enter
  /// the target via different router interfaces.
  std::size_t vm_count = 8;
  /// Destination /24s probed per target ISP (the paper probes every
  /// announced /24; a handful per ISP gives the same AS-level evidence).
  std::size_t slash24s_per_target = 3;
};

/// Runs the study for one hypergiant over target ASes.
class PeeringStudy {
 public:
  PeeringStudy(const Internet& internet, const TracerouteEngine& engine,
               const IxpRegistry& ixp_registry, PeeringStudyConfig config);

  /// Classifies a single traceroute with respect to hypergiant AS `hg_as`
  /// and target ISP `target`. Uses only public data (IP-to-AS longest
  /// prefix match + IXP databases), never ground-truth link information.
  IspPeeringEvidence classify_traceroute(const Traceroute& traceroute,
                                         AsIndex hg_as, AsIndex target) const;

  /// Full study: traceroutes from `hg_as` to every target, aggregated.
  /// Probes are issued on a campaign timeline (probe_time ticks once per
  /// traceroute) so routing faults that evolve during the study surface as
  /// per-destination path disagreement; stable paths are unaffected.
  std::map<AsIndex, IspPeeringEvidence> run(
      AsIndex hg_as, std::span<const AsIndex> targets,
      const RoutingEngine& routing,
      PeeringStudyOutcome* outcome = nullptr) const;

  const PeeringStudyConfig& config() const noexcept { return config_; }

 private:
  const Internet& internet_;
  const TracerouteEngine& engine_;
  const IxpRegistry& ixp_registry_;
  PeeringStudyConfig config_;
};

}  // namespace repro
