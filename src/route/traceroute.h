// IP-level traceroute simulation over AS-level BGP paths.
//
// Each AS on the path contributes 1-3 router hops numbered from its infra
// block. Interdomain handoffs are visible the way they are on the real
// Internet: a private interconnect shows the neighbor's router address,
// while an IXP crossing shows the neighbor's port address on the IXP
// peering LAN -- which is exactly what the Euro-IX/PeeringDB mapping keys
// on. Routers may be persistently unresponsive ('*' hops), and whole ASes
// may filter traceroute.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "route/bgp.h"
#include "util/rng.h"

namespace repro {

/// One traceroute hop. `ip` is empty for an unresponsive hop ('*').
/// `true_owner` is ground truth for tests; inference code must not use it.
struct TracerouteHop {
  std::optional<Ipv4> ip;
  AsIndex true_owner = kInvalidIndex;
};

struct Traceroute {
  AsIndex src = kInvalidIndex;
  Ipv4 destination;
  bool destination_reached = false;
  std::vector<TracerouteHop> hops;
};

struct TracerouteConfig {
  std::uint64_t seed = 31337;
  /// Probability that an individual router never answers TTL-exceeded.
  double silent_router_rate = 0.18;
  /// Probability that an AS filters traceroute entirely (all hops silent).
  double silent_as_rate = 0.06;
  /// Probability the destination host answers the final probe.
  double destination_responds = 0.85;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const Internet& internet, TracerouteConfig config);

  /// Traces from a host in `src` to `destination`, using `table` (which
  /// must be the routing table towards the destination's AS). `flow`
  /// distinguishes source hosts / flow ids: different flows traverse
  /// different router interfaces inside each AS (ECMP-style), which is how
  /// probing from many VMs gains extra visibility.
  Traceroute trace(AsIndex src, Ipv4 destination, const RoutingTable& table,
                   std::uint64_t flow = 0) const;

  /// Ground-truth helpers for tests.
  bool router_silent(AsIndex as, Ipv4 router_ip) const noexcept;
  bool as_silent(AsIndex as) const noexcept;

  /// Deterministic router interface address `slot` of an AS (carved from
  /// the reserved low range of its infra block).
  Ipv4 router_ip(AsIndex as, std::uint64_t slot) const;

 private:
  const Internet& internet_;
  TracerouteConfig config_;
};

}  // namespace repro
