// IP-level traceroute simulation over AS-level BGP paths.
//
// Each AS on the path contributes 1-3 router hops numbered from its infra
// block. Interdomain handoffs are visible the way they are on the real
// Internet: a private interconnect shows the neighbor's router address,
// while an IXP crossing shows the neighbor's port address on the IXP
// peering LAN -- which is exactly what the Euro-IX/PeeringDB mapping keys
// on. Routers may be persistently unresponsive ('*' hops), and whole ASes
// may filter traceroute.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "route/bgp.h"
#include "util/rng.h"

namespace repro {

/// One traceroute hop. `ip` is empty for an unresponsive hop ('*').
/// `true_owner` is ground truth for tests; inference code must not use it.
struct TracerouteHop {
  std::optional<Ipv4> ip;
  AsIndex true_owner = kInvalidIndex;
};

struct Traceroute {
  AsIndex src = kInvalidIndex;
  Ipv4 destination;
  bool destination_reached = false;
  std::vector<TracerouteHop> hops;
  /// Ground truth for tests: this probe crossed a flap detour / was cut by
  /// a flap blackhole or transient loop. Inference code must not use these.
  bool flap_detoured = false;
  bool flap_truncated = false;
};

struct TracerouteConfig {
  std::uint64_t seed = 31337;
  /// Probability that an individual router never answers TTL-exceeded.
  double silent_router_rate = 0.18;
  /// Probability that an AS filters traceroute entirely (all hops silent).
  double silent_as_rate = 0.06;
  /// Probability the destination host answers the final probe.
  double destination_responds = 0.85;

  // BGP flap faults (FaultPlan::route, folded in by apply_route_faults).
  // Zero flap_rate is guaranteed bit-identical to the pre-fault engine.
  /// Seed for the flap hash stream, independent of the ECMP/silence seeds.
  std::uint64_t fault_seed = 0;
  /// Per-AS probability of being flap-prone for the whole campaign.
  double flap_rate = 0.0;
  /// Probes per flap epoch: a flap-prone AS withdraws its best route on
  /// (deterministically) half of the epochs.
  std::uint64_t flap_period = 4;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const Internet& internet, TracerouteConfig config);

  /// Traces from a host in `src` to `destination`, using `table` (which
  /// must be the routing table towards the destination's AS). `flow`
  /// distinguishes source hosts / flow ids: different flows traverse
  /// different router interfaces inside each AS (ECMP-style), which is how
  /// probing from many VMs gains extra visibility. `probe_time` is the
  /// probe's position on the campaign timeline; with flap faults active it
  /// selects the flap epoch, so probes issued at different times can
  /// observe disagreeing paths. Clean configs ignore it.
  Traceroute trace(AsIndex src, Ipv4 destination, const RoutingTable& table,
                   std::uint64_t flow = 0, std::uint64_t probe_time = 0) const;

  /// Ground-truth helpers for tests.
  bool router_silent(AsIndex as, Ipv4 router_ip) const noexcept;
  bool as_silent(AsIndex as) const noexcept;
  /// True when `as` is flap-prone under this config's fault knobs.
  bool as_flapping(AsIndex as) const noexcept;
  /// True when a flap-prone AS has withdrawn its best route at
  /// `probe_time` (epoch = probe_time / flap_period).
  bool flap_down(AsIndex as, std::uint64_t probe_time) const noexcept;

  /// Deterministic router interface address `slot` of an AS (carved from
  /// the reserved low range of its infra block).
  Ipv4 router_ip(AsIndex as, std::uint64_t slot) const;

 private:
  Traceroute trace_flapped(AsIndex src, Ipv4 destination,
                           const RoutingTable& table, std::uint64_t flow,
                           std::uint64_t probe_time) const;

  const Internet& internet_;
  TracerouteConfig config_;
};

}  // namespace repro
