#include "route/ixp_registry.h"

#include "util/rng.h"

namespace repro {

namespace {

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace

IxpRegistry IxpRegistry::build(const Internet& internet,
                               const IxpRegistryConfig& config) {
  IxpRegistry registry;
  for (const Ixp& ixp : internet.ixps) {
    // Peering LANs themselves are well known (every source lists them).
    registry.lans_.insert(ixp.peering_lan, ixp.index);
    for (std::uint64_t offset = 0; offset < ixp.peering_lan.size(); ++offset) {
      const Ipv4 address = ixp.peering_lan.at(offset);
      const auto info = internet.ixp_port_of_ip(address);
      if (!info) continue;
      const AsNumber asn = internet.ases[info->member].asn;
      const std::uint64_t key = mix64(config.seed ^ address.value());
      if (hash_uniform(key) < config.euroix_coverage) {
        registry.ports_[address] =
            IxpMapping{info->ixp, asn, IxpDataSource::kEuroIx};
      } else if (hash_uniform(mix64(key)) < config.peeringdb_coverage) {
        registry.ports_[address] =
            IxpMapping{info->ixp, asn, IxpDataSource::kPeeringDb};
      }
    }
  }
  return registry;
}

bool IxpRegistry::is_ixp_lan(Ipv4 address) const {
  return lans_.lookup(address).has_value();
}

std::optional<IxpMapping> IxpRegistry::port_lookup(Ipv4 address) const {
  const auto it = ports_.find(address);
  if (it == ports_.end()) return std::nullopt;
  return it->second;
}

}  // namespace repro
