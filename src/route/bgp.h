// Valley-free interdomain routing (Gao-Rexford policies): for a destination
// AS, compute every AS's best route under the standard preference
// customer > peer > provider, then shortest AS path, then lowest next-hop
// ASN. Used by the traceroute simulator and the traffic/spillover model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/internet.h"

namespace repro {

/// How a route was learned (determines export policy and preference).
enum class RouteKind : std::uint8_t {
  kSelf = 0,   // the destination itself
  kCustomer,   // learned from a customer
  kPeer,       // learned from a peer
  kProvider,   // learned from a provider
};

std::string_view to_string(RouteKind kind) noexcept;

/// One AS's best route towards the table's destination.
struct RouteEntry {
  bool reachable = false;
  RouteKind kind = RouteKind::kSelf;
  AsIndex next_hop = kInvalidIndex;
  LinkIndex via_link = kInvalidIndex;
  int path_length = 0;  // AS hops to the destination
};

/// Routing table for one destination AS.
class RoutingTable {
 public:
  RoutingTable(AsIndex destination, std::vector<RouteEntry> entries,
               std::vector<RouteEntry> alternates = {});

  AsIndex destination() const noexcept { return destination_; }

  const RouteEntry& entry(AsIndex source) const;

  /// The source's best valley-free route through a *different* next hop
  /// than entry(source) -- what the AS falls back to when its best route
  /// is withdrawn mid-study (BGP flap). Not reachable when the AS has no
  /// policy-valid second route (a flap then blackholes its traffic).
  const RouteEntry& alternate(AsIndex source) const;

  /// AS-level path source -> destination (inclusive); empty if unreachable.
  std::vector<AsIndex> as_path(AsIndex source) const;

  /// Links traversed along the path (size = path length).
  std::vector<LinkIndex> link_path(AsIndex source) const;

 private:
  AsIndex destination_;
  std::vector<RouteEntry> entries_;
  std::vector<RouteEntry> alternates_;
};

/// Computes routing tables over an Internet's AS graph.
class RoutingEngine {
 public:
  explicit RoutingEngine(const Internet& internet);

  /// Best valley-free routes of every AS towards `destination`.
  RoutingTable routes_to(AsIndex destination) const;

  const Internet& internet() const noexcept { return internet_; }

 private:
  const Internet& internet_;
};

}  // namespace repro
