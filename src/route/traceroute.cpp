#include "route/traceroute.h"

#include "util/error.h"

namespace repro {

namespace {

/// Router interfaces live in the low 256 addresses of each AS's infra
/// block (offnet servers start above; see hypergiant/deployment.cpp).
constexpr std::uint64_t kRouterSlots = 256;

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace

TracerouteEngine::TracerouteEngine(const Internet& internet,
                                   TracerouteConfig config)
    : internet_(internet), config_(config) {}

Ipv4 TracerouteEngine::router_ip(AsIndex as, std::uint64_t slot) const {
  require(as < internet_.ases.size(), "router_ip: bad AS index");
  const Prefix& infra = internet_.ases[as].infra.pool();
  return infra.at(slot % kRouterSlots);
}

bool TracerouteEngine::as_silent(AsIndex as) const noexcept {
  return hash_uniform(mix64(config_.seed ^ 0xA5) ^ mix64(as)) <
         config_.silent_as_rate;
}

bool TracerouteEngine::router_silent(AsIndex as, Ipv4 router_address) const noexcept {
  if (as_silent(as)) return true;
  return hash_uniform(mix64(config_.seed ^ 0x5A) ^
                      mix64(router_address.value())) < config_.silent_router_rate;
}

Traceroute TracerouteEngine::trace(AsIndex src, Ipv4 destination,
                                   const RoutingTable& table,
                                   std::uint64_t flow) const {
  Traceroute result;
  result.src = src;
  result.destination = destination;

  const std::vector<AsIndex> as_path = table.as_path(src);
  if (as_path.empty()) return result;  // unreachable: all probes time out

  const auto push_router = [&](AsIndex as, Ipv4 address) {
    TracerouteHop hop;
    hop.true_owner = as;
    if (!router_silent(as, address)) hop.ip = address;
    result.hops.push_back(hop);
  };

  for (std::size_t i = 0; i < as_path.size(); ++i) {
    const AsIndex as = as_path[i];
    // Intra-AS hops: deterministic count of 1-3 from the AS identity.
    const auto intra =
        1 + mix64(mix64(config_.seed ^ 0x77) ^ mix64(as)) % 3;
    for (std::uint64_t k = 0; k < intra; ++k) {
      // Skip the source AS's ingress (the probe starts inside it) and give
      // each position a stable interface slot.
      if (i == 0 && k == 0) continue;
      push_router(as, router_ip(as, mix64(as * 131ULL + k ^ mix64(flow)) % 199));
    }

    if (i + 1 >= as_path.size()) break;
    // Interdomain handoff to the next AS. BGP picks one best route, but the
    // *link* used depends on where the flow enters the border (hot-potato /
    // ECMP across parallel interconnects); model that by letting the flow id
    // choose among the parallel peering links of the pair.
    const AsIndex next = as_path[i + 1];
    const RouteEntry& entry = table.entry(as);
    LinkIndex via = entry.via_link;
    if (entry.kind == RouteKind::kPeer) {
      const auto parallel = internet_.peering_links_between(as, next);
      if (parallel.size() > 1) {
        via = parallel[mix64(flow ^ mix64(as * 31ULL + next)) % parallel.size()];
      }
    }
    const InterdomainLink& link = internet_.links[via];
    if (link.kind == LinkKind::kIxpPeering) {
      // The next hop is the neighbor's port on the IXP peering LAN.
      const Ixp& ixp = internet_.ixps[link.ixp];
      Ipv4 port_address = ixp.peering_lan.at(2);  // fallback
      // Find the registered port of `next` on this fabric.
      for (std::uint64_t offset = 2; offset < ixp.peering_lan.size(); ++offset) {
        const auto info = internet_.ixp_port_of_ip(ixp.peering_lan.at(offset));
        if (info && info->ixp == link.ixp && info->member == next) {
          port_address = ixp.peering_lan.at(offset);
          break;
        }
      }
      push_router(next, port_address);
    } else {
      // PNI / transit handoff: the neighbor's border interface.
      push_router(next, router_ip(next, mix64(next * 131ULL ^ mix64(flow)) % 199));
    }
  }

  // Destination host.
  TracerouteHop final_hop;
  final_hop.true_owner = as_path.back();
  const bool responds =
      hash_uniform(mix64(config_.seed ^ 0xD0) ^ mix64(destination.value())) <
      config_.destination_responds;
  if (responds) final_hop.ip = destination;
  result.hops.push_back(final_hop);
  result.destination_reached = responds;
  return result;
}

}  // namespace repro
