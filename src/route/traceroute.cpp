#include "route/traceroute.h"

#include "util/error.h"

namespace repro {

namespace {

/// Router interfaces live in the low 256 addresses of each AS's infra
/// block (offnet servers start above; see hypergiant/deployment.cpp).
constexpr std::uint64_t kRouterSlots = 256;

/// TTL budget of the flap walk in AS hops: flap detours can form transient
/// forwarding loops (as on the real Internet during convergence), and the
/// walk cuts them the way a real traceroute does -- by running out of TTL.
constexpr std::size_t kMaxAsHops = 32;

// Flap hash-stream salts, independent of the ECMP/silence streams.
constexpr std::uint64_t kFlapAsSalt = 0xF1A9;
constexpr std::uint64_t kFlapEpochSalt = 0xE70C;

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace

TracerouteEngine::TracerouteEngine(const Internet& internet,
                                   TracerouteConfig config)
    : internet_(internet), config_(config) {}

Ipv4 TracerouteEngine::router_ip(AsIndex as, std::uint64_t slot) const {
  require(as < internet_.ases.size(), "router_ip: bad AS index");
  const Prefix& infra = internet_.ases[as].infra.pool();
  return infra.at(slot % kRouterSlots);
}

bool TracerouteEngine::as_silent(AsIndex as) const noexcept {
  return hash_uniform(mix64(config_.seed ^ 0xA5) ^ mix64(as)) <
         config_.silent_as_rate;
}

bool TracerouteEngine::router_silent(AsIndex as, Ipv4 router_address) const noexcept {
  if (as_silent(as)) return true;
  return hash_uniform(mix64(config_.seed ^ 0x5A) ^
                      mix64(router_address.value())) < config_.silent_router_rate;
}

bool TracerouteEngine::as_flapping(AsIndex as) const noexcept {
  return hash_uniform(mix64(config_.fault_seed ^ kFlapAsSalt) ^ mix64(as)) <
         config_.flap_rate;
}

bool TracerouteEngine::flap_down(AsIndex as,
                                 std::uint64_t probe_time) const noexcept {
  const std::uint64_t period = config_.flap_period == 0 ? 1 : config_.flap_period;
  const std::uint64_t epoch = probe_time / period;
  return (mix64(mix64(config_.fault_seed ^ kFlapEpochSalt) ^ mix64(as) ^
                mix64(epoch)) &
          1) != 0;
}

Traceroute TracerouteEngine::trace(AsIndex src, Ipv4 destination,
                                   const RoutingTable& table,
                                   std::uint64_t flow,
                                   std::uint64_t probe_time) const {
  if (config_.flap_rate > 0.0) {
    return trace_flapped(src, destination, table, flow, probe_time);
  }
  Traceroute result;
  result.src = src;
  result.destination = destination;

  const std::vector<AsIndex> as_path = table.as_path(src);
  if (as_path.empty()) return result;  // unreachable: all probes time out

  const auto push_router = [&](AsIndex as, Ipv4 address) {
    TracerouteHop hop;
    hop.true_owner = as;
    if (!router_silent(as, address)) hop.ip = address;
    result.hops.push_back(hop);
  };

  for (std::size_t i = 0; i < as_path.size(); ++i) {
    const AsIndex as = as_path[i];
    // Intra-AS hops: deterministic count of 1-3 from the AS identity.
    const auto intra =
        1 + mix64(mix64(config_.seed ^ 0x77) ^ mix64(as)) % 3;
    for (std::uint64_t k = 0; k < intra; ++k) {
      // Skip the source AS's ingress (the probe starts inside it) and give
      // each position a stable interface slot.
      if (i == 0 && k == 0) continue;
      push_router(as, router_ip(as, mix64(as * 131ULL + k ^ mix64(flow)) % 199));
    }

    if (i + 1 >= as_path.size()) break;
    // Interdomain handoff to the next AS. BGP picks one best route, but the
    // *link* used depends on where the flow enters the border (hot-potato /
    // ECMP across parallel interconnects); model that by letting the flow id
    // choose among the parallel peering links of the pair.
    const AsIndex next = as_path[i + 1];
    const RouteEntry& entry = table.entry(as);
    LinkIndex via = entry.via_link;
    if (entry.kind == RouteKind::kPeer) {
      const auto parallel = internet_.peering_links_between(as, next);
      if (parallel.size() > 1) {
        via = parallel[mix64(flow ^ mix64(as * 31ULL + next)) % parallel.size()];
      }
    }
    const InterdomainLink& link = internet_.links[via];
    if (link.kind == LinkKind::kIxpPeering) {
      // The next hop is the neighbor's port on the IXP peering LAN.
      const Ixp& ixp = internet_.ixps[link.ixp];
      Ipv4 port_address = ixp.peering_lan.at(2);  // fallback
      // Find the registered port of `next` on this fabric.
      for (std::uint64_t offset = 2; offset < ixp.peering_lan.size(); ++offset) {
        const auto info = internet_.ixp_port_of_ip(ixp.peering_lan.at(offset));
        if (info && info->ixp == link.ixp && info->member == next) {
          port_address = ixp.peering_lan.at(offset);
          break;
        }
      }
      push_router(next, port_address);
    } else {
      // PNI / transit handoff: the neighbor's border interface.
      push_router(next, router_ip(next, mix64(next * 131ULL ^ mix64(flow)) % 199));
    }
  }

  // Destination host.
  TracerouteHop final_hop;
  final_hop.true_owner = as_path.back();
  const bool responds =
      hash_uniform(mix64(config_.seed ^ 0xD0) ^ mix64(destination.value())) <
      config_.destination_responds;
  if (responds) final_hop.ip = destination;
  result.hops.push_back(final_hop);
  result.destination_reached = responds;
  return result;
}

Traceroute TracerouteEngine::trace_flapped(AsIndex src, Ipv4 destination,
                                           const RoutingTable& table,
                                           std::uint64_t flow,
                                           std::uint64_t probe_time) const {
  Traceroute result;
  result.src = src;
  result.destination = destination;
  if (!table.entry(src).reachable) return result;

  const auto push_router = [&](AsIndex as, Ipv4 address) {
    TracerouteHop hop;
    hop.true_owner = as;
    if (!router_silent(as, address)) hop.ip = address;
    result.hops.push_back(hop);
  };

  // Walk the forwarding graph hop by hop instead of materializing the best
  // path up front: a flap-down AS forwards via its alternate route (path
  // divergence) or, with no second route, blackholes the probe. With no AS
  // flap-down this emits exactly what trace() emits.
  AsIndex current = src;
  std::size_t visited = 0;
  while (true) {
    const auto intra =
        1 + mix64(mix64(config_.seed ^ 0x77) ^ mix64(current)) % 3;
    for (std::uint64_t k = 0; k < intra; ++k) {
      if (visited == 0 && k == 0) continue;
      push_router(current,
                  router_ip(current, mix64(current * 131ULL + k ^ mix64(flow)) % 199));
    }

    if (current == table.destination()) {
      TracerouteHop final_hop;
      final_hop.true_owner = current;
      const bool responds =
          hash_uniform(mix64(config_.seed ^ 0xD0) ^ mix64(destination.value())) <
          config_.destination_responds;
      if (responds) final_hop.ip = destination;
      result.hops.push_back(final_hop);
      result.destination_reached = responds;
      return result;
    }
    if (++visited > kMaxAsHops) {
      result.flap_truncated = true;  // transient loop: probe ran out of TTL
      return result;
    }

    const RouteEntry* route = &table.entry(current);
    if (as_flapping(current) && flap_down(current, probe_time)) {
      const RouteEntry& fallback = table.alternate(current);
      if (!fallback.reachable) {
        result.flap_truncated = true;  // withdrawn, no second route: blackhole
        return result;
      }
      route = &fallback;
      result.flap_detoured = true;
    }

    const AsIndex next = route->next_hop;
    // A flapping *destination* AS withdraws its announcement during down
    // epochs: the upstream border loses the route and the probe dies here
    // instead of crossing the last interdomain hop. Without this, targets
    // one AS hop from the source (the common direct-peering case) could
    // never exhibit instability -- no intermediate AS exists to flap.
    if (next == table.destination() && as_flapping(next) &&
        flap_down(next, probe_time)) {
      result.flap_truncated = true;
      return result;
    }
    LinkIndex via = route->via_link;
    if (route->kind == RouteKind::kPeer) {
      const auto parallel = internet_.peering_links_between(current, next);
      if (parallel.size() > 1) {
        via = parallel[mix64(flow ^ mix64(current * 31ULL + next)) % parallel.size()];
      }
    }
    const InterdomainLink& link = internet_.links[via];
    if (link.kind == LinkKind::kIxpPeering) {
      const Ixp& ixp = internet_.ixps[link.ixp];
      Ipv4 port_address = ixp.peering_lan.at(2);  // fallback
      for (std::uint64_t offset = 2; offset < ixp.peering_lan.size(); ++offset) {
        const auto info = internet_.ixp_port_of_ip(ixp.peering_lan.at(offset));
        if (info && info->ixp == link.ixp && info->member == next) {
          port_address = ixp.peering_lan.at(offset);
          break;
        }
      }
      push_router(next, port_address);
    } else {
      push_router(next, router_ip(next, mix64(next * 131ULL ^ mix64(flow)) % 199));
    }
    current = next;
  }
}

}  // namespace repro
