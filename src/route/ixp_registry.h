// The public IXP databases (Euro-IX IXPDB, PeeringDB): map IXP peering-LAN
// addresses to the member networks using them. Real databases are
// incomplete; coverage is configurable per source, and the Euro-IX entries
// take precedence (the paper prioritizes Euro-IX over PeeringDB following
// Marder et al.).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "ip/prefix_trie.h"
#include "topology/internet.h"

namespace repro {

enum class IxpDataSource : std::uint8_t { kEuroIx, kPeeringDb };

struct IxpMapping {
  IxpIndex ixp = kInvalidIndex;
  AsNumber member_asn = 0;
  IxpDataSource source = IxpDataSource::kEuroIx;
};

struct IxpRegistryConfig {
  std::uint64_t seed = 60606;
  /// Fraction of ports present in the Euro-IX dump.
  double euroix_coverage = 0.85;
  /// Fraction of the remaining ports recoverable from PeeringDB.
  double peeringdb_coverage = 0.6;
};

/// A lookup service built from the (simulated) public databases.
class IxpRegistry {
 public:
  static IxpRegistry build(const Internet& internet,
                           const IxpRegistryConfig& config);

  /// True if the address falls in any known IXP peering LAN.
  bool is_ixp_lan(Ipv4 address) const;

  /// Member using this port address, if the databases know it.
  std::optional<IxpMapping> port_lookup(Ipv4 address) const;

  std::size_t known_ports() const noexcept { return ports_.size(); }

 private:
  PrefixTrie<IxpIndex> lans_;
  std::unordered_map<Ipv4, IxpMapping> ports_;
};

}  // namespace repro
