#include "route/peering_inference.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace repro {

namespace {

/// Public-data attribution of a hop address: IXP databases first (peering
/// LANs are not announced in BGP), then IP-to-AS longest prefix match.
struct HopAttribution {
  bool mapped = false;
  AsIndex owner = kInvalidIndex;
  bool on_ixp_lan = false;
};

HopAttribution attribute(const Internet& internet, const IxpRegistry& registry,
                         Ipv4 address) {
  HopAttribution out;
  if (registry.is_ixp_lan(address)) {
    out.on_ixp_lan = true;
    const auto mapping = registry.port_lookup(address);
    if (!mapping) return out;  // LAN known, port not in the databases
    const auto as = internet.find_as_by_asn(mapping->member_asn);
    if (!as) return out;
    out.mapped = true;
    out.owner = *as;
    return out;
  }
  const auto as = internet.as_of_ip(address);
  if (!as) return out;
  out.mapped = true;
  out.owner = *as;
  return out;
}

}  // namespace

std::string_view to_string(PeeringStatus status) noexcept {
  switch (status) {
    case PeeringStatus::kPeer: return "peer";
    case PeeringStatus::kPossiblePeer: return "possible";
    case PeeringStatus::kNoEvidence: return "no-evidence";
  }
  return "?";
}

PeeringStudy::PeeringStudy(const Internet& internet,
                           const TracerouteEngine& engine,
                           const IxpRegistry& ixp_registry,
                           PeeringStudyConfig config)
    : internet_(internet),
      engine_(engine),
      ixp_registry_(ixp_registry),
      config_(config) {
  require(config_.vm_count >= 1, "PeeringStudyConfig: need >= 1 VM");
  require(config_.slash24s_per_target >= 1,
          "PeeringStudyConfig: need >= 1 target /24");
}

IspPeeringEvidence PeeringStudy::classify_traceroute(const Traceroute& traceroute,
                                                     AsIndex hg_as,
                                                     AsIndex target) const {
  IspPeeringEvidence evidence;
  evidence.isp = target;
  evidence.traceroutes = 1;

  // Attribute every responsive hop.
  struct Attributed {
    HopAttribution attribution;
    bool responsive = false;
  };
  std::vector<Attributed> hops;
  hops.reserve(traceroute.hops.size());
  for (const TracerouteHop& hop : traceroute.hops) {
    Attributed a;
    a.responsive = hop.ip.has_value();
    if (a.responsive) a.attribution = attribute(internet_, ixp_registry_, *hop.ip);
    hops.push_back(a);
  }

  // Find each hypergiant hop; inspect what follows.
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (!hops[i].responsive || !hops[i].attribution.mapped) continue;
    if (hops[i].attribution.owner != hg_as) continue;
    // Walk forward: stars may only license a "possible" inference.
    std::size_t stars = 0;
    for (std::size_t j = i + 1; j < hops.size(); ++j) {
      if (!hops[j].responsive) {
        ++stars;
        continue;
      }
      if (!hops[j].attribution.mapped) break;  // unknown network in between
      if (hops[j].attribution.owner == hg_as) break;  // still inside the HG
      if (hops[j].attribution.owner == target) {
        if (stars == 0) {
          evidence.status = PeeringStatus::kPeer;
          if (hops[j].attribution.on_ixp_lan) evidence.seen_via_ixp = true;
          else evidence.seen_via_pni = true;
        } else if (evidence.status == PeeringStatus::kNoEvidence) {
          evidence.status = PeeringStatus::kPossiblePeer;
        }
      }
      break;  // only the first mapped hop after the HG matters
    }
    if (evidence.status == PeeringStatus::kPeer) break;
  }
  return evidence;
}

std::map<AsIndex, IspPeeringEvidence> PeeringStudy::run(
    AsIndex hg_as, std::span<const AsIndex> targets,
    const RoutingEngine& routing, PeeringStudyOutcome* outcome) const {
  obs::ScopedSpan span("route.peering_study");
  static obs::CachedCounter probes_counter("route.traceroutes");
  static obs::CachedCounter unstable_counter("route.unstable_targets");
  static obs::CachedCounter downgrade_counter("route.peer_downgrades");
  PeeringStudyOutcome local;
  // One clock for the whole campaign: consecutive probes land in adjacent
  // flap epochs, so the same destination is revisited under evolving
  // routing state. Clean engines ignore the clock entirely.
  std::uint64_t probe_time = 0;
  std::map<AsIndex, IspPeeringEvidence> results;
  for (const AsIndex target : targets) {
    const RoutingTable table = routing.routes_to(target);
    IspPeeringEvidence aggregate;
    aggregate.isp = target;

    const As& as = internet_.ases[target];
    // Destination addresses: one per announced /24, round-robin over the
    // ISP's user prefixes, capped by config.
    std::vector<Ipv4> destinations;
    for (const Prefix& prefix : as.user_prefixes) {
      const std::uint64_t slash24s = prefix.size() / 256;
      for (std::uint64_t s = 0;
           s < slash24s && destinations.size() < config_.slash24s_per_target;
           ++s) {
        destinations.push_back(prefix.at(s * 256 + 1));
      }
    }
    if (destinations.empty() && !as.user_prefixes.empty()) {
      destinations.push_back(as.user_prefixes.front().at(1));
    }
    if (destinations.empty()) {
      destinations.push_back(as.infra.pool().at(255));
    }

    // Per-destination path signature from *observations only* (hop count +
    // whether the destination answered). Under stable routing every probe
    // to one destination agrees on both regardless of VM/flow; disagreement
    // means the path itself changed under the study.
    std::vector<std::pair<std::size_t, bool>> first_signature(
        destinations.size(), {0, false});
    std::vector<bool> signature_seen(destinations.size(), false);

    for (std::size_t vm = 0; vm < config_.vm_count; ++vm) {
      for (std::size_t d = 0; d < destinations.size(); ++d) {
        const Ipv4 destination = destinations[d];
        const Traceroute traceroute =
            engine_.trace(hg_as, destination, table,
                          mix64(config_.seed ^ (vm + 1)), probe_time++);
        const IspPeeringEvidence one =
            classify_traceroute(traceroute, hg_as, target);
        ++aggregate.traceroutes;
        aggregate.seen_via_ixp |= one.seen_via_ixp;
        aggregate.seen_via_pni |= one.seen_via_pni;
        if (one.status == PeeringStatus::kPeer) {
          aggregate.status = PeeringStatus::kPeer;
        } else if (one.status == PeeringStatus::kPossiblePeer &&
                   aggregate.status == PeeringStatus::kNoEvidence) {
          aggregate.status = PeeringStatus::kPossiblePeer;
        }
        const std::pair<std::size_t, bool> signature{
            traceroute.hops.size(), traceroute.destination_reached};
        if (!signature_seen[d]) {
          signature_seen[d] = true;
          first_signature[d] = signature;
        } else if (first_signature[d] != signature) {
          aggregate.unstable = true;
        }
      }
    }
    if (aggregate.unstable) {
      ++local.unstable_targets;
      if (aggregate.status == PeeringStatus::kPeer) {
        aggregate.status = PeeringStatus::kPossiblePeer;
        ++local.downgraded_peers;
      }
    }
    results.emplace(target, aggregate);
  }
  local.targets = targets.size();
  local.probes = probe_time;
  probes_counter.add(local.probes);
  unstable_counter.add(local.unstable_targets);
  downgrade_counter.add(local.downgraded_peers);
  if (outcome != nullptr) *outcome = local;
  return results;
}

}  // namespace repro
