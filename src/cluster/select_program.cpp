#include "cluster/select_program.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "util/error.h"

namespace repro::cluster {

namespace {

using Comparator = std::pair<std::uint32_t, std::uint32_t>;

/// Batcher's odd-even merge of the chain lo, lo+r, lo+2r, ... within
/// [lo, lo+m): both sorted halves interleave, then adjacent odd pairs are
/// fixed up (Knuth 5.2.2M).
void odd_even_merge(std::vector<Comparator>& out, std::uint32_t lo,
                    std::uint32_t m, std::uint32_t r) {
  const std::uint32_t step = r * 2;
  if (step < m) {
    odd_even_merge(out, lo, m, step);
    odd_even_merge(out, lo + r, m, step);
    for (std::uint32_t i = lo + r; i + r < lo + m; i += step) {
      out.emplace_back(i, i + r);
    }
  } else {
    out.emplace_back(lo, lo + r);
  }
}

void odd_even_sort(std::vector<Comparator>& out, std::uint32_t lo,
                   std::uint32_t m) {
  if (m <= 1) return;
  const std::uint32_t half = m / 2;
  odd_even_sort(out, lo, half);
  odd_even_sort(out, lo + half, half);
  odd_even_merge(out, lo, m, 1);
}

/// One structural item of the program before encoding: either a single
/// compare-exchange or a 16-row register tile.
struct Item {
  enum Kind : std::uint8_t { kFlat, kFlatMin, kFlatMax, kSort16, kMerge16 };
  Kind kind;
  std::uint32_t a;  // flat: low row.  sort16/merge16: base row.
  std::uint32_t b;  // flat: high row. sort16: live rows. merge16: stride.
};

/// Re-derives the Batcher recursion, but peels register-sized subproblems:
/// a sort of exactly 16 rows becomes one kSort16 tile, a merge whose chain
/// is exactly 16 in-range rows becomes one kMerge16 tile. Everything else
/// recurses down to flat compare-exchanges, clamped to n exactly like
/// batcher_comparators (a comparator whose high row holds a virtual +inf
/// is an identity and is dropped).
struct TiledBuilder {
  std::uint32_t n;
  std::vector<Item>& out;

  void sort(std::uint32_t lo, std::uint32_t m) {
    if (m <= 1 || lo >= n) return;
    if (m == 16) {
      out.push_back({Item::kSort16, lo, std::min<std::uint32_t>(n - lo, 16)});
      return;
    }
    const std::uint32_t half = m / 2;
    sort(lo, half);
    sort(lo + half, half);
    merge(lo, m, 1);
  }

  void merge(std::uint32_t lo, std::uint32_t m, std::uint32_t r) {
    if (lo >= n) return;
    if (m / r == 16 && lo + 15 * r < n) {
      out.push_back({Item::kMerge16, lo, r});
      return;
    }
    const std::uint32_t step = r * 2;
    if (step < m) {
      merge(lo, m, step);
      merge(lo + r, m, step);
      for (std::uint32_t i = lo + r; i + r < lo + m; i += step) {
        if (i + r < n) out.push_back({Item::kFlat, i, i + r});
      }
    } else if (lo + r < n) {
      out.push_back({Item::kFlat, lo, lo + r});
    }
  }
};

/// Rows a tile touches: base + k * stride for sort16 (stride 1, b live
/// rows) or merge16 (stride b, 16 rows).
template <typename Fn>
void for_each_tile_row(const Item& item, Fn&& fn) {
  if (item.kind == Item::kSort16) {
    for (std::uint32_t k = 0; k < item.b; ++k) fn(item.a + k);
  } else {
    for (std::uint32_t k = 0; k < 16; ++k) fn(item.a + k * item.b);
  }
}

/// Backward per-wire liveness from the keep boundary. A flat comparator
/// with both outputs dead disappears; with one dead output it degrades to
/// a one-sided min- or max-store. A tile survives if any of its rows is
/// live (its comparators are not split -- the rank boundary crosses at
/// most a handful of tiles, and splitting them would forfeit the
/// in-register execution that makes them cheap).
std::vector<Item> prune_items(std::vector<Item> items, std::uint32_t n,
                              std::uint32_t keep) {
  std::vector<char> live(n, 0);
  for (std::uint32_t k = 0; k < keep; ++k) live[k] = 1;
  std::vector<Item> kept;
  kept.reserve(items.size());
  for (std::size_t c = items.size(); c-- > 0;) {
    Item item = items[c];
    if (item.kind == Item::kSort16 || item.kind == Item::kMerge16) {
      bool any = false;
      for_each_tile_row(item, [&](std::uint32_t r) { any = any || live[r]; });
      if (!any) continue;
      for_each_tile_row(item, [&](std::uint32_t r) { live[r] = 1; });
      kept.push_back(item);
      continue;
    }
    const bool lo_live = live[item.a] != 0;
    const bool hi_live = live[item.b] != 0;
    if (!lo_live && !hi_live) continue;
    if (!hi_live) {
      item.kind = Item::kFlatMin;
    } else if (!lo_live) {
      item.kind = Item::kFlatMax;
    }
    live[item.a] = live[item.b] = 1;
    kept.push_back(item);
  }
  std::reverse(kept.begin(), kept.end());
  return kept;
}

/// Reorders each maximal stretch of consecutive flat comparators by
/// dependency depth (stable), so dependent accesses to the same scratch row
/// sit a whole layer apart in program order -- the same store-to-load
/// spacing argument as the flat network's layering, applied locally so
/// tile boundaries (real dependencies) are never crossed.
void layer_flat_stretches(std::vector<Item>& items, std::uint32_t n) {
  std::vector<std::uint32_t> depth(n, 0);
  std::size_t i = 0;
  while (i < items.size()) {
    if (items[i].kind == Item::kSort16 || items[i].kind == Item::kMerge16) {
      std::uint32_t d = 0;
      for_each_tile_row(items[i],
                        [&](std::uint32_t r) { d = std::max(d, depth[r]); });
      ++d;
      for_each_tile_row(items[i], [&](std::uint32_t r) { depth[r] = d; });
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < items.size() && items[end].kind != Item::kSort16 &&
           items[end].kind != Item::kMerge16) {
      ++end;
    }
    std::vector<std::pair<std::uint32_t, std::size_t>> order;
    order.reserve(end - i);
    for (std::size_t c = i; c < end; ++c) {
      const std::uint32_t d =
          std::max(depth[items[c].a], depth[items[c].b]) + 1;
      depth[items[c].a] = depth[items[c].b] = d;
      order.emplace_back(d, c);
    }
    std::stable_sort(
        order.begin(), order.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Item> layered(end - i);
    for (std::size_t c = 0; c < order.size(); ++c) {
      layered[c] = items[order[c].second];
    }
    std::copy(layered.begin(), layered.end(),
              items.begin() + static_cast<std::ptrdiff_t>(i));
    i = end;
  }
}

struct CacheKey {
  std::size_t n, keep, lanes;
  bool operator<(const CacheKey& other) const {
    return std::tie(n, keep, lanes) <
           std::tie(other.n, other.keep, other.lanes);
  }
};

SelectStrategy env_strategy() noexcept {
  const char* value = std::getenv("REPRO_SELECT");
  if (value != nullptr && std::strcmp(value, "network") == 0) {
    return SelectStrategy::kNetwork;
  }
  return SelectStrategy::kRankSelect;
}

std::optional<SelectStrategy>& strategy_override() noexcept {
  static std::optional<SelectStrategy> forced;
  return forced;
}

}  // namespace

const char* to_string(SelectStrategy strategy) noexcept {
  return strategy == SelectStrategy::kNetwork ? "network" : "ranksel";
}

SelectStrategy select_strategy() noexcept {
  if (strategy_override().has_value()) return *strategy_override();
  static const SelectStrategy from_env = env_strategy();
  return from_env;
}

void set_select_strategy_override(std::optional<SelectStrategy> strategy) {
  strategy_override() = strategy;
}

std::vector<Comparator> batcher_comparators(std::size_t n) {
  require(n >= 1 && n <= 0xffffffffu / 2, "select_program: bad size");
  if (n == 1) return {};
  std::uint32_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  std::vector<Comparator> full;
  odd_even_sort(full, 0, pow2);
  // Clamp to n: positions >= n hold a virtual +inf. A compare-exchange
  // writes min to the low index and max to the high index, so +inf can
  // never leave a high slot and real values never enter one -- comparators
  // touching those slots are identity operations.
  std::vector<Comparator> clamped;
  clamped.reserve(full.size());
  for (const auto& [i, j] : full) {
    if (i < n && j < n) clamped.emplace_back(i, j);
  }
  return clamped;
}

SelectProgram build_select_program(std::size_t n, std::size_t keep,
                                   std::size_t lanes) {
  require(n >= 1 && n <= 0xffffffffu / 2, "select_program: bad size");
  require(keep >= 1 && keep <= n, "select_program: bad keep count");
  require(lanes >= 1 && lanes <= 16, "select_program: bad lane count");
  require(kernel_scratch_doubles(n, lanes) * sizeof(double) <= 0xffffffffu,
          "select_program: scratch offsets overflow 32 bits");

  SelectProgram program;
  program.n = n;
  program.keep = keep;
  program.lanes = lanes;
  if (n == 1) return program;

  std::uint32_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  std::vector<Item> items;
  TiledBuilder builder{static_cast<std::uint32_t>(n), items};
  builder.sort(0, pow2);
  items = prune_items(std::move(items), static_cast<std::uint32_t>(n),
                      static_cast<std::uint32_t>(keep));
  layer_flat_stretches(items, static_cast<std::uint32_t>(n));

  const auto offset_of = [lanes](std::uint32_t row) {
    return static_cast<std::uint32_t>(padded_row_index(row, lanes) * lanes *
                                      sizeof(double));
  };

  // Run-length encoding: consecutive flat items of one kind share a single
  // opcode + count header, so the interpreter dispatches per run.
  std::size_t i = 0;
  while (i < items.size()) {
    const Item& item = items[i];
    if (item.kind == Item::kSort16) {
      program.code.push_back(kSelectSort16);
      program.code.push_back(item.b);
      for (std::uint32_t k = 0; k < 16; ++k) {
        program.code.push_back(k < item.b ? offset_of(item.a + k) : 0);
      }
      program.sort16_tiles++;
      ++i;
      continue;
    }
    if (item.kind == Item::kMerge16) {
      program.code.push_back(kSelectMerge16);
      for (std::uint32_t k = 0; k < 16; ++k) {
        program.code.push_back(offset_of(item.a + k * item.b));
      }
      program.merge16_tiles++;
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < items.size() && items[end].kind == item.kind) ++end;
    switch (item.kind) {
      case Item::kFlat:
        program.code.push_back(kSelectFlat);
        program.full_comparators += end - i;
        break;
      case Item::kFlatMin:
        program.code.push_back(kSelectFlatMin);
        program.min_only_comparators += end - i;
        break;
      default:
        program.code.push_back(kSelectFlatMax);
        program.max_only_comparators += end - i;
        break;
    }
    program.code.push_back(static_cast<std::uint32_t>(end - i));
    for (std::size_t c = i; c < end; ++c) {
      program.code.push_back(offset_of(items[c].a));
      program.code.push_back(offset_of(items[c].b));
    }
    i = end;
  }
  return program;
}

const SelectProgram& select_program_for(std::size_t n, std::size_t keep,
                                        std::size_t lanes) {
  static std::mutex mutex;
  static std::map<CacheKey, std::unique_ptr<SelectProgram>> cache;

  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[CacheKey{n, keep, lanes}];
  if (slot == nullptr) {
    slot = std::make_unique<SelectProgram>(
        build_select_program(n, keep, lanes));
  }
  return *slot;
}

}  // namespace repro::cluster
