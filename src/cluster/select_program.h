// Rank-select programs for the trimmed-distance kernel's select phase.
//
// The kernel only needs the k smallest |a-b| values per lane, in ascending
// order, so their sequential IEEE sum is canonical (k = the trim keep
// count). The original select phase ran a flat keep-pruned Batcher network
// (sort_network.h). A SelectProgram computes the exact same kept prefix --
// bit-identical, still fully data-independent -- but restructures the work
// around what actually costs time on real cores:
//
//   * rank pruning with one-sided comparators: per-wire liveness is
//     tracked backward from the keep boundary. A comparator whose high
//     (max) output is never read again and lies past the k-th rank stores
//     only its min; symmetrically for a dead low output. The classic
//     pruning (both outputs dead => drop) is kept; one-sided ops cut the
//     store traffic of the survivors near the rank boundary.
//   * anti-aliasing row padding: a [n][lanes] scratch has rows of
//     lanes * 8 bytes, so comparators whose row distance is the 4 KiB
//     alias period (64 rows at 8 lanes) hit the same store-buffer set and
//     serialize on false store-forwarding conflicts. One pad row is
//     inserted every period-1 rows; all byte offsets (and the fill /
//     reduce phases, see distance_kernel.h) use the padded mapping. Pure
//     layout -- values and their order are untouched.
//   * register tiling: Batcher's recursion decomposes into sort-16 leaves
//     and merge-16 chains whose 16 rows fit in registers; those run as
//     fully unrolled in-register tiles (2 ops per comparator instead of a
//     load/min/max/store round trip through memory per comparator). The
//     irreducible cross-chain fixups remain flat compare-exchanges.
//
// The program is encoded as a run-length opcode stream so the interpreter
// dispatches once per run, not once per comparator. The flat Batcher
// network remains available as the fallback strategy (REPRO_SELECT=network)
// for A/B measurement; see docs/PERFORMANCE.md for the full argument and
// the measured crossover.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace repro::cluster {

/// Which implementation the select phase runs. Both produce bit-identical
/// kept prefixes; kRankSelect is the default, kNetwork the flat Batcher
/// fallback. Overridden by REPRO_SELECT=ranksel|network.
enum class SelectStrategy { kRankSelect, kNetwork };

const char* to_string(SelectStrategy strategy) noexcept;

/// Strategy in effect: the test override if set, else REPRO_SELECT from the
/// environment (read once), else kRankSelect.
SelectStrategy select_strategy() noexcept;

/// Test hook mirroring simd::set_level_override: forces the strategy (or
/// clears the force with nullopt). Not thread-safe against concurrent
/// pairwise calls; tests serialize.
void set_select_strategy_override(std::optional<SelectStrategy> strategy);

/// Opcodes of the run-length-encoded select program stream. Layout:
///   kFlat      count, then count (lo, hi) byte-offset pairs
///   kFlatMin   count, then count (lo, hi) pairs; stores min(lo,hi) to lo
///              only (the max output is provably dead)
///   kFlatMax   count, then count (lo, hi) pairs; stores max to hi only
///   kSort16    live row count (1..16), then 16 byte offsets (dead slots 0)
///   kMerge16   16 byte offsets (always fully live)
/// All offsets are padded-row byte offsets into the kernel scratch.
enum SelectOp : std::uint32_t {
  kSelectFlat = 0,
  kSelectFlatMin = 1,
  kSelectFlatMax = 2,
  kSelectSort16 = 3,
  kSelectMerge16 = 4,
};

struct SelectProgram {
  std::size_t n = 0;
  std::size_t keep = 0;
  std::size_t lanes = 0;
  /// Compare-exchange counts by kind, for the structure tests and the
  /// bench's strategy line.
  std::size_t full_comparators = 0;
  std::size_t min_only_comparators = 0;
  std::size_t max_only_comparators = 0;
  std::size_t sort16_tiles = 0;
  std::size_t merge16_tiles = 0;
  std::vector<std::uint32_t> code;
};

/// Anti-alias padded row index for a scratch with `lanes` doubles per row:
/// one pad row is inserted every (4096 / (lanes * 8)) - 1 data rows, so no
/// two rows a power-of-two Batcher stride apart are ever exactly 4 KiB
/// apart. Monotone, identity until the first alias period.
constexpr std::size_t padded_row_index(std::size_t row,
                                       std::size_t lanes) noexcept {
  const std::size_t period = 4096 / (lanes * sizeof(double));
  return row + row / (period - 1);
}

/// Doubles a kernel scratch must hold for n rows at `lanes` lanes,
/// including pad rows.
constexpr std::size_t kernel_scratch_doubles(std::size_t n,
                                             std::size_t lanes) noexcept {
  return n == 0 ? 0 : (padded_row_index(n - 1, lanes) + 1) * lanes;
}

/// Clamped Batcher odd-even comparator list for n inputs (no pruning, no
/// reordering): the next-power-of-two network with comparators touching
/// virtual rows >= n dropped. Shared by the program builder, the flat
/// fallback and the property tests.
std::vector<std::pair<std::uint32_t, std::uint32_t>> batcher_comparators(
    std::size_t n);

/// Builds the rank-select program for (n, keep); offsets scaled and padded
/// for `lanes`. Exposed for the structure tests; hot paths use the cache.
SelectProgram build_select_program(std::size_t n, std::size_t keep,
                                   std::size_t lanes);

/// Cached program for (n, keep, lanes). Thread-safe; the reference lives
/// for the process lifetime.
const SelectProgram& select_program_for(std::size_t n, std::size_t keep,
                                        std::size_t lanes);

}  // namespace repro::cluster
