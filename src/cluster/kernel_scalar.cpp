// Scalar reference kernel (lanes = 1). Always compiled; the floor of the
// dispatch chain and the portable path on non-x86 builds.
#include <cmath>
#include <limits>

#include "cluster/distance_kernel.h"
#include "cluster/select_program.h"

namespace repro::cluster {

namespace {

void fill_diffs(const double* a, const double* const* bs, std::size_t n,
                double* scratch) {
  const double* b = bs[0];
  for (std::size_t d = 0; d < n; ++d) {
    scratch[padded_row_index(d, 1)] = std::fabs(a[d] - b[d]);
  }
}

void run_network(double* scratch, const std::uint32_t* byte_offsets,
                 std::size_t comparators) {
  char* base = reinterpret_cast<char*>(scratch);
  for (std::size_t c = 0; c < comparators; ++c) {
    double* lo = reinterpret_cast<double*>(base + byte_offsets[2 * c]);
    double* hi = reinterpret_cast<double*>(base + byte_offsets[2 * c + 1]);
    const double x = *lo;
    const double y = *hi;
    // min to the low slot, max to the high slot; ties keep identical bits
    // either way, matching the vector min/max semantics exactly.
    *lo = y < x ? y : x;
    *hi = y < x ? x : y;
  }
}

#define REPRO_SELECT_VEC double
#define REPRO_SELECT_LOAD(p) (*(p))
#define REPRO_SELECT_STORE(p, v) (void)(*(p) = (v))
#define REPRO_SELECT_MIN(x, y) ((y) < (x) ? (y) : (x))
#define REPRO_SELECT_MAX(x, y) ((y) < (x) ? (x) : (y))
#define REPRO_SELECT_INF (std::numeric_limits<double>::infinity())
#include "cluster/kernel_select.inl"
#undef REPRO_SELECT_VEC
#undef REPRO_SELECT_LOAD
#undef REPRO_SELECT_STORE
#undef REPRO_SELECT_MIN
#undef REPRO_SELECT_MAX
#undef REPRO_SELECT_INF

void reduce_mean(const double* scratch, std::size_t keep, double* out) {
  double total = 0.0;
  for (std::size_t r = 0; r < keep; ++r) {
    total += scratch[padded_row_index(r, 1)];
  }
  out[0] = total / static_cast<double>(keep);
}

const KernelOps kOps{simd::SimdLevel::kScalar, 1,           &fill_diffs,
                     &run_network,             &run_select, &reduce_mean};

}  // namespace

const KernelOps* scalar_ops() noexcept { return &kOps; }

}  // namespace repro::cluster
