#include "cluster/distance.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace repro {

namespace {

/// Shared kernel of both trimmed_manhattan variants. `diffs` is the caller's
/// scratch buffer; the two entry points only differ in who owns it, so the
/// allocating and scratch variants are bit-identical by construction.
double trimmed_manhattan_kernel(const double* a, const double* b,
                                std::size_t n, double trim_fraction,
                                std::vector<double>& diffs) {
  diffs.resize(n);
  double* d = diffs.data();
  // Branch-light pass the compiler can vectorize: no per-element control
  // flow, just |a_i - b_i| into a dense buffer.
  for (std::size_t i = 0; i < n; ++i) d[i] = std::fabs(a[i] - b[i]);

  const auto keep = std::max<std::size_t>(
      1, n - static_cast<std::size_t>(
                 std::floor(trim_fraction * static_cast<double>(n))));
  if (keep < n) {
    std::nth_element(diffs.begin(),
                     diffs.begin() + static_cast<std::ptrdiff_t>(keep) - 1,
                     diffs.end());
  }
  // Partial sums over four independent accumulators: breaks the loop-carried
  // dependence so the sum vectorizes too. The accumulation order is fixed,
  // so the result is deterministic for a given input.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= keep; i += 4) {
    s0 += d[i];
    s1 += d[i + 1];
    s2 += d[i + 2];
    s3 += d[i + 3];
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < keep; ++i) total += d[i];
  return total / static_cast<double>(keep);
}

void check_trimmed_manhattan_args(std::span<const double> a,
                                  std::span<const double> b,
                                  double trim_fraction) {
  require(a.size() == b.size(), "trimmed_manhattan: size mismatch");
  require(!a.empty(), "trimmed_manhattan: empty vectors");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "trimmed_manhattan: trim_fraction outside [0, 1)");
}

}  // namespace

double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction) {
  std::vector<double> diffs;
  return trimmed_manhattan(a, b, trim_fraction, diffs);
}

double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction, std::vector<double>& scratch) {
  check_trimmed_manhattan_args(a, b, trim_fraction);
  return trimmed_manhattan_kernel(a.data(), b.data(), a.size(), trim_fraction,
                                  scratch);
}

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n) {
  require(n >= 1, "DistanceMatrix: need at least one point");
  values_.assign(n * (n - 1) / 2, 0.0);
}

std::size_t DistanceMatrix::offset(std::size_t i, std::size_t j) const {
  require(i < n_ && j < n_ && i != j, "DistanceMatrix: bad indices");
  if (i > j) std::swap(i, j);
  // Upper-triangle packed index for (i, j), i < j.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return values_[offset(i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double value) {
  require(value >= 0.0, "DistanceMatrix: negative distance");
  values_[offset(i, j)] = value;
}

DistanceMatrix pairwise_distances(std::span<const double> table,
                                  std::size_t rows, std::size_t cols,
                                  double trim_fraction) {
  require(rows >= 1 && cols >= 1, "pairwise_distances: empty table");
  require(table.size() == rows * cols, "pairwise_distances: size mismatch");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "pairwise_distances: trim_fraction outside [0, 1)");
  DistanceMatrix matrix(rows);
  if (rows == 1) return matrix;

  // Row-block sharding: a worker owning rows [begin, end) computes every
  // (i, j > i) pair for its rows, so row i stays cache-hot across its whole
  // j sweep and no two workers ever touch the same matrix cell. Small
  // blocks + the dynamic scheduler in parallel_for_blocks balance the
  // shrinking upper-triangle cost of later rows.
  const std::size_t threads =
      std::min(default_thread_count(), std::max<std::size_t>(rows / 2, 1));
  const std::size_t block = std::max<std::size_t>(1, rows / (threads * 8));
  const double* data = table.data();
  parallel_for_blocks(
      rows, block,
      [&matrix, data, rows, cols, trim_fraction](std::size_t begin,
                                                 std::size_t end) {
        // One scratch buffer per worker thread for the whole shard: kills
        // the per-pair allocation of the naive trimmed_manhattan loop.
        thread_local std::vector<double> scratch;
        for (std::size_t i = begin; i < end; ++i) {
          const std::span<const double> row_i(data + i * cols, cols);
          for (std::size_t j = i + 1; j < rows; ++j) {
            const std::span<const double> row_j(data + j * cols, cols);
            matrix.set(i, j,
                       trimmed_manhattan(row_i, row_j, trim_fraction, scratch));
          }
        }
      },
      threads);
  return matrix;
}

}  // namespace repro
