#include "cluster/distance.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cluster/distance_kernel.h"
#include "cluster/select_program.h"
#include "cluster/sort_network.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace repro {

namespace {

/// Shared kernel of both trimmed_manhattan variants. `diffs` is the caller's
/// scratch buffer; the two entry points only differ in who owns it, so the
/// allocating and scratch variants are bit-identical by construction.
/// partial_sort leaves the kept prefix in ascending order, so the sequential
/// sum below is the canonical ascending-order sum (bit-identical to the full
/// std::sort of the oracle: the sorted value sequence is unique, ties carry
/// identical bit patterns).
double trimmed_manhattan_kernel(const double* a, const double* b,
                                std::size_t n, double trim_fraction,
                                std::vector<double>& diffs) {
  diffs.resize(n);
  double* d = diffs.data();
  for (std::size_t i = 0; i < n; ++i) d[i] = std::fabs(a[i] - b[i]);

  const std::size_t keep = trim_keep_count(n, trim_fraction);
  std::partial_sort(diffs.begin(),
                    diffs.begin() + static_cast<std::ptrdiff_t>(keep),
                    diffs.end());
  double total = 0.0;
  for (std::size_t i = 0; i < keep; ++i) total += d[i];
  return total / static_cast<double>(keep);
}

void check_trimmed_manhattan_args(std::span<const double> a,
                                  std::span<const double> b,
                                  double trim_fraction) {
  require(a.size() == b.size(), "trimmed_manhattan: size mismatch");
  require(!a.empty(), "trimmed_manhattan: empty vectors");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "trimmed_manhattan: trim_fraction outside [0, 1)");
}

/// The select phase resolved once per matrix: either the rank-select
/// program (default) or the flat Batcher network (REPRO_SELECT=network).
/// Both are cached for the process lifetime and bit-identical, so workers
/// share the resolved plan read-only.
struct SelectPlan {
  const std::uint32_t* data;
  std::size_t len;  // code length (ranksel) or comparator count (network)
  bool ranksel;

  static SelectPlan resolve(std::size_t cols, std::size_t keep,
                            std::size_t lanes) {
    if (cluster::select_strategy() == cluster::SelectStrategy::kRankSelect) {
      const cluster::SelectProgram& program =
          cluster::select_program_for(cols, keep, lanes);
      return {program.code.data(), program.code.size(), true};
    }
    const cluster::SortNetwork& net =
        cluster::sort_network_for(cols, keep, lanes);
    return {net.byte_offsets.data(), net.comparators, false};
  }

  void run(const cluster::KernelOps& ops, double* scratch) const {
    if (ranksel) {
      ops.run_select(scratch, data, len);
    } else {
      ops.run_network(scratch, data, len);
    }
  }
};

}  // namespace

std::size_t trim_keep_count(std::size_t n, double trim_fraction) noexcept {
  return std::max<std::size_t>(
      1, n - static_cast<std::size_t>(
                 std::floor(trim_fraction * static_cast<double>(n))));
}

double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction) {
  std::vector<double> diffs;
  return trimmed_manhattan(a, b, trim_fraction, diffs);
}

double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction, std::vector<double>& scratch) {
  check_trimmed_manhattan_args(a, b, trim_fraction);
  return trimmed_manhattan_kernel(a.data(), b.data(), a.size(), trim_fraction,
                                  scratch);
}

double trimmed_manhattan_oracle(std::span<const double> a,
                                std::span<const double> b,
                                double trim_fraction) {
  check_trimmed_manhattan_args(a, b, trim_fraction);
  std::vector<double> diffs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diffs[i] = std::fabs(a[i] - b[i]);
  }
  std::sort(diffs.begin(), diffs.end());
  const std::size_t keep = trim_keep_count(a.size(), trim_fraction);
  double total = 0.0;
  for (std::size_t i = 0; i < keep; ++i) total += diffs[i];
  return total / static_cast<double>(keep);
}

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n) {
  require(n >= 1, "DistanceMatrix: need at least one point");
  values_.assign(n * (n - 1) / 2, 0.0);
}

std::size_t DistanceMatrix::packed_offset(std::size_t n, std::size_t i,
                                          std::size_t j) {
  require(i < n && j < n && i != j, "DistanceMatrix: bad indices");
  if (i > j) std::swap(i, j);
  // Upper-triangle packed index for (i, j), i < j.
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

std::size_t DistanceMatrix::offset(std::size_t i, std::size_t j) const {
  return packed_offset(n_, i, j);
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return values_[offset(i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double value) {
  require(value >= 0.0, "DistanceMatrix: negative distance");
  values_[offset(i, j)] = value;
}

std::span<double> DistanceMatrix::row_span(std::size_t i) {
  require(i < n_, "DistanceMatrix: bad row");
  return {values_.data() + row_start(i), n_ - 1 - i};
}

std::span<const double> DistanceMatrix::row_span(std::size_t i) const {
  require(i < n_, "DistanceMatrix: bad row");
  return {values_.data() + row_start(i), n_ - 1 - i};
}

void DistanceMatrix::copy_row(std::size_t p, double* out) const {
  require(p < n_, "DistanceMatrix: bad row");
  // Cells (o, p) for o < p live one per packed row; successive rows shrink
  // by one, so the stride from row o to o + 1 is n_ - o - 2.
  std::size_t off = p >= 1 ? p - 1 : 0;  // packed_offset(0, p)
  for (std::size_t o = 0; o < p; ++o) {
    out[o] = values_[off];
    off += n_ - o - 2;
  }
  out[p] = 0.0;
  if (p + 1 < n_) {
    const double* row = values_.data() + row_start(p);
    std::copy(row, row + (n_ - 1 - p), out + p + 1);
  }
}

void DistanceMatrix::copy_row_without_self(std::size_t p, double* out) const {
  require(p < n_, "DistanceMatrix: bad row");
  std::size_t off = p >= 1 ? p - 1 : 0;  // packed_offset(0, p)
  for (std::size_t o = 0; o < p; ++o) {
    out[o] = values_[off];
    off += n_ - o - 2;
  }
  if (p + 1 < n_) {
    const double* row = values_.data() + row_start(p);
    std::copy(row, row + (n_ - 1 - p), out + p);
  }
}

DistanceMatrix pairwise_distances(std::span<const double> table,
                                  std::size_t rows, std::size_t cols,
                                  double trim_fraction) {
  require(rows >= 1 && cols >= 1, "pairwise_distances: empty table");
  require(table.size() == rows * cols, "pairwise_distances: size mismatch");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "pairwise_distances: trim_fraction outside [0, 1)");
  DistanceMatrix matrix(rows);
  if (rows == 1) return matrix;
  // Stage-level span: the row-block tasks below propagate it as their
  // parent, so kernels account to the right subtree in the trace.
  obs::ScopedSpan span("cluster.pairwise_distances");

  // Everything loop-invariant is resolved here, once: kernel level, lane
  // count, trim boundary, and the select plan for (cols, keep, lanes).
  const cluster::KernelOps& ops = cluster::kernel_ops(simd::active_level());
  const std::size_t lanes = ops.lanes;
  const std::size_t keep = trim_keep_count(cols, trim_fraction);
  const SelectPlan plan = SelectPlan::resolve(cols, keep, lanes);
  const double* data = table.data();

  // Row-block sharding: a worker owning rows [begin, end) computes every
  // (i, j > i) pair for its rows, so row i stays cache-hot across its whole
  // j sweep and no two workers ever touch the same matrix cell. Small
  // blocks + the dynamic scheduler in parallel_for_blocks balance the
  // shrinking upper-triangle cost of later rows.
  const std::size_t threads =
      std::min(default_thread_count(), std::max<std::size_t>(rows / 2, 1));
  const std::size_t block = std::max<std::size_t>(1, rows / (threads * 8));
  parallel_for_blocks(
      rows, block,
      [&matrix, &ops, &plan, data, rows, cols, keep, lanes](std::size_t begin,
                                                            std::size_t end) {
        // One aligned scratch per worker thread for the whole shard.
        thread_local cluster::AlignedScratch scratch_owner;
        double* scratch =
            scratch_owner.ensure(cluster::kernel_scratch_doubles(cols, lanes));
        const double* batch[cluster::kMaxKernelLanes];
        double results[cluster::kMaxKernelLanes];
        for (std::size_t i = begin; i < end; ++i) {
          const double* row_i = data + i * cols;
          const std::span<double> out_row = matrix.row_span(i);
          const std::size_t count = rows - 1 - i;
          for (std::size_t jb = 0; jb < count; jb += lanes) {
            const std::size_t live = std::min(lanes, count - jb);
            // Tail batches pad the spare lanes with the last live row; the
            // duplicate results are simply not written back.
            for (std::size_t l = 0; l < lanes; ++l) {
              const std::size_t j = i + 1 + jb + (l < live ? l : live - 1);
              batch[l] = data + j * cols;
            }
            ops.fill_diffs(row_i, batch, cols, scratch);
            plan.run(ops, scratch);
            ops.reduce_mean(scratch, keep, results);
            for (std::size_t l = 0; l < live; ++l) {
              out_row[jb + l] = results[l];
            }
          }
        }
      },
      threads);
  return matrix;
}

DistanceMatrix pairwise_distances_streamed(const RowFiller& fill_row,
                                           std::size_t rows, std::size_t cols,
                                           double trim_fraction,
                                           std::size_t block_rows) {
  require(rows >= 1 && cols >= 1, "pairwise_distances_streamed: empty table");
  require(static_cast<bool>(fill_row),
          "pairwise_distances_streamed: null fill_row");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "pairwise_distances_streamed: trim_fraction outside [0, 1)");
  DistanceMatrix matrix(rows);
  if (rows == 1) return matrix;
  obs::ScopedSpan span("cluster.pairwise_distances_streamed");

  const cluster::KernelOps& ops = cluster::kernel_ops(simd::active_level());
  const std::size_t lanes = ops.lanes;
  const std::size_t keep = trim_keep_count(cols, trim_fraction);
  const SelectPlan plan = SelectPlan::resolve(cols, keep, lanes);

  const std::size_t block =
      block_rows == 0 ? rows : std::min(block_rows, rows);
  const std::size_t blocks = (rows + block - 1) / block;
  // Upper-triangle block pairs (bi, bj), bi <= bj, flattened in row-major
  // order so task t maps back to its pair with one scan (blocks is small).
  const std::size_t tasks = blocks * (blocks + 1) / 2;

  const std::size_t threads = std::min(default_thread_count(), tasks);
  parallel_for_blocks(
      tasks, 1,
      [&](std::size_t task_begin, std::size_t task_end) {
        // Per-worker staging: the two blocks under the current task plus
        // the kernel scratch. Reused across every task the worker drains.
        thread_local std::vector<double> stage_i;
        thread_local std::vector<double> stage_j;
        thread_local cluster::AlignedScratch scratch_owner;
        double* scratch =
            scratch_owner.ensure(cluster::kernel_scratch_doubles(cols, lanes));
        const double* batch[cluster::kMaxKernelLanes];
        double results[cluster::kMaxKernelLanes];

        for (std::size_t task = task_begin; task < task_end; ++task) {
          // Invert the row-major flattening: task -> (bi, bj).
          std::size_t bi = 0;
          std::size_t remaining = task;
          while (remaining >= blocks - bi) {
            remaining -= blocks - bi;
            ++bi;
          }
          const std::size_t bj = bi + remaining;

          const std::size_t i_begin = bi * block;
          const std::size_t i_end = std::min(i_begin + block, rows);
          const std::size_t j_begin = bj * block;
          const std::size_t j_end = std::min(j_begin + block, rows);

          stage_i.resize((i_end - i_begin) * cols);
          for (std::size_t i = i_begin; i < i_end; ++i) {
            fill_row(i, stage_i.data() + (i - i_begin) * cols);
          }
          const double* rows_j = stage_i.data();
          std::size_t rows_j_base = i_begin;
          if (bj != bi) {
            stage_j.resize((j_end - j_begin) * cols);
            for (std::size_t j = j_begin; j < j_end; ++j) {
              fill_row(j, stage_j.data() + (j - j_begin) * cols);
            }
            rows_j = stage_j.data();
            rows_j_base = j_begin;
          }

          for (std::size_t i = i_begin; i < i_end; ++i) {
            const double* row_i = stage_i.data() + (i - i_begin) * cols;
            const std::size_t lo = std::max(i + 1, j_begin);
            if (lo >= j_end) continue;
            const std::span<double> out_row = matrix.row_span(i);
            const std::size_t count = j_end - lo;
            for (std::size_t jb = 0; jb < count; jb += lanes) {
              const std::size_t live = std::min(lanes, count - jb);
              for (std::size_t l = 0; l < lanes; ++l) {
                const std::size_t j = lo + jb + (l < live ? l : live - 1);
                batch[l] = rows_j + (j - rows_j_base) * cols;
              }
              ops.fill_diffs(row_i, batch, cols, scratch);
              plan.run(ops, scratch);
              ops.reduce_mean(scratch, keep, results);
              for (std::size_t l = 0; l < live; ++l) {
                // Cell (i, lo + jb + l) belongs to exactly this block pair,
                // so no other worker ever writes this slot.
                out_row[lo + jb + l - (i + 1)] = results[l];
              }
            }
          }
        }
      },
      threads);
  return matrix;
}

KernelPhaseProfile profile_kernel_phases(std::size_t n, double trim_fraction,
                                         std::size_t iterations) {
  require(n >= 1, "profile_kernel_phases: empty vectors");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "profile_kernel_phases: trim_fraction outside [0, 1)");
  require(iterations >= 1, "profile_kernel_phases: need iterations");

  const cluster::KernelOps& ops = cluster::kernel_ops(simd::active_level());
  const std::size_t lanes = ops.lanes;
  const std::size_t keep = trim_keep_count(n, trim_fraction);
  const cluster::SelectProgram& program =
      cluster::select_program_for(n, keep, lanes);
  const cluster::SortNetwork& net = cluster::sort_network_for(n, keep, lanes);

  Rng rng(0x9d15);
  std::vector<double> a(n);
  std::vector<double> b(n * lanes);
  for (double& v : a) v = rng.uniform(10.0, 200.0);
  for (double& v : b) v = rng.uniform(10.0, 200.0);
  const double* batch[cluster::kMaxKernelLanes];
  for (std::size_t l = 0; l < lanes; ++l) batch[l] = b.data() + l * n;

  cluster::AlignedScratch scratch_owner;
  double* scratch =
      scratch_owner.ensure(cluster::kernel_scratch_doubles(n, lanes));
  double results[cluster::kMaxKernelLanes];

  const auto time_phase = [&](auto&& body) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t it = 0; it < iterations; ++it) body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    // Per pair: each invocation covers `lanes` pairs.
    return ns / (static_cast<double>(iterations) * static_cast<double>(lanes));
  };

  KernelPhaseProfile profile;
  profile.simd_level = std::string(simd::to_string(ops.level));
  profile.diff_ns_op =
      time_phase([&] { ops.fill_diffs(a.data(), batch, n, scratch); });
  // Both select strategies are data-independent compare-exchange
  // sequences, so re-running them on the already sorted scratch exercises
  // the exact same instruction stream; timing each keeps the A/B honest
  // and lets the bench line name the measured winner.
  profile.select_ranksel_ns_op = time_phase([&] {
    ops.run_select(scratch, program.code.data(), program.code.size());
  });
  profile.select_network_ns_op = time_phase([&] {
    ops.run_network(scratch, net.byte_offsets.data(), net.comparators);
  });
  const bool ranksel_active =
      cluster::select_strategy() == cluster::SelectStrategy::kRankSelect;
  profile.select_strategy =
      cluster::to_string(ranksel_active ? cluster::SelectStrategy::kRankSelect
                                        : cluster::SelectStrategy::kNetwork);
  profile.select_ns_op = ranksel_active ? profile.select_ranksel_ns_op
                                        : profile.select_network_ns_op;
  profile.sum_ns_op =
      time_phase([&] { ops.reduce_mean(scratch, keep, results); });
  return profile;
}

}  // namespace repro
