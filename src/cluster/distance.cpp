#include "cluster/distance.h"

#include <algorithm>
#include <cmath>

namespace repro {

double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction) {
  require(a.size() == b.size(), "trimmed_manhattan: size mismatch");
  require(!a.empty(), "trimmed_manhattan: empty vectors");
  require(trim_fraction >= 0.0 && trim_fraction < 1.0,
          "trimmed_manhattan: trim_fraction outside [0, 1)");
  std::vector<double> diffs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diffs[i] = std::fabs(a[i] - b[i]);
  const auto keep = std::max<std::size_t>(
      1, a.size() - static_cast<std::size_t>(
                        std::floor(trim_fraction * static_cast<double>(a.size()))));
  std::nth_element(diffs.begin(), diffs.begin() + static_cast<std::ptrdiff_t>(keep) - 1,
                   diffs.end());
  double total = 0.0;
  for (std::size_t i = 0; i < keep; ++i) total += diffs[i];
  return total / static_cast<double>(keep);
}

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n) {
  require(n >= 1, "DistanceMatrix: need at least one point");
  values_.assign(n * (n - 1) / 2, 0.0);
}

std::size_t DistanceMatrix::offset(std::size_t i, std::size_t j) const {
  require(i < n_ && j < n_ && i != j, "DistanceMatrix: bad indices");
  if (i > j) std::swap(i, j);
  // Upper-triangle packed index for (i, j), i < j.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return values_[offset(i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double value) {
  require(value >= 0.0, "DistanceMatrix: negative distance");
  values_[offset(i, j)] = value;
}

DistanceMatrix pairwise_distances(std::span<const double> table,
                                  std::size_t rows, std::size_t cols,
                                  double trim_fraction) {
  require(rows >= 1 && cols >= 1, "pairwise_distances: empty table");
  require(table.size() == rows * cols, "pairwise_distances: size mismatch");
  DistanceMatrix matrix(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto row_i = table.subspan(i * cols, cols);
    for (std::size_t j = i + 1; j < rows; ++j) {
      const auto row_j = table.subspan(j * cols, cols);
      matrix.set(i, j, trimmed_manhattan(row_i, row_j, trim_fraction));
    }
  }
  return matrix;
}

}  // namespace repro
