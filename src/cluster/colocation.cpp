#include "cluster/colocation.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "obs/metrics.h"

namespace repro {

namespace {

/// Counter name for a per-xi statistic, e.g. "cluster.clusters.xi0.1".
std::string xi_counter_name(const char* prefix, double xi) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s.xi%g", prefix, xi);
  return buffer;
}

}  // namespace

ColocationClusterer::ColocationClusterer(const OffnetRegistry& registry,
                                         const PingMesh& mesh,
                                         const VantagePointSet& vps,
                                         ColocationConfig config)
    : registry_(registry), mesh_(mesh), vps_(vps), config_(std::move(config)) {
  require(config_.xi > 0.0 && config_.xi < 1.0,
          "ColocationConfig: xi outside (0, 1)");
}

IspClustering ColocationClusterer::cluster_isp(AsIndex isp) const {
  const double xi = config_.xi;
  return cluster_isp_multi(isp, std::span<const double>(&xi, 1)).front();
}

std::vector<IspClustering> ColocationClusterer::cluster_isp_multi(
    AsIndex isp, std::span<const double> xis) const {
  return cluster_isp_multi(isp, xis, mesh_.measure_isp(registry_, isp));
}

std::vector<IspClustering> ColocationClusterer::cluster_isp_multi(
    AsIndex isp, std::span<const double> xis, LatencyMatrix premeasured) const {
  const LatencyMatrix raw = std::move(premeasured);
  return cluster_rows(isp, xis, LatencyMatrixRows(raw), /*streamed=*/false, 0);
}

std::vector<IspClustering> ColocationClusterer::cluster_isp_multi(
    AsIndex isp, std::span<const double> xis, const LatencyRows& rows,
    std::size_t block_rows) const {
  return cluster_rows(isp, xis, rows, /*streamed=*/true, block_rows);
}

std::vector<IspClustering> ColocationClusterer::cluster_rows(
    AsIndex isp, std::span<const double> xis, const LatencyRows& rows,
    bool streamed, std::size_t block_rows) const {
  require(!xis.empty(), "cluster_isp_multi: need at least one xi");
  IspClustering base;
  base.isp = isp;

  bool done = rows.row_count() == 0;

  FilteredMatrix cleaned;
  if (!done) {
    cleaned = clean_matrix(rows, vps_, config_.filter,
                           /*materialize=*/!streamed);
    base.dropped_unresponsive = cleaned.dropped_unresponsive;
    base.dropped_impossible = cleaned.dropped_impossible;
    base.usable_sites = cleaned.col_count();
    done = !cleaned.usable;
  }
  if (!done) {
    base.usable = true;
    base.registry_indices.reserve(cleaned.row_count());
    for (const std::size_t row : cleaned.kept_rows) {
      base.registry_indices.push_back(rows.server_index(row));
    }
  }

  std::vector<IspClustering> out;
  if (done || cleaned.row_count() == 1) {
    if (!done) base.labels.assign(1, -1);
    out.assign(xis.size(), base);
    return out;
  }

  const DistanceMatrix distances = [&] {
    obs::ScopedTimer timer("cluster.distance_ms");
    if (streamed) {
      return pairwise_distances_streamed(
          [&rows, &cleaned](std::size_t compact_row, double* out_row) {
            fill_compact_row(rows, cleaned, compact_row, out_row);
          },
          cleaned.row_count(), cleaned.col_count(), config_.trim_fraction,
          block_rows);
    }
    return pairwise_distances(cleaned.rtt, cleaned.row_count(),
                              cleaned.col_count(), config_.trim_fraction);
  }();
  OpticsResult optics;
  {
    obs::ScopedTimer timer("cluster.optics_order_ms");
    optics_order(distances, config_.min_pts, optics);
  }
  out.reserve(xis.size());
  for (const double xi : xis) {
    require(xi > 0.0 && xi < 1.0, "cluster_isp_multi: xi outside (0, 1)");
    {
      obs::ScopedTimer timer("cluster.xi_extract_ms");
      reextract_xi(optics, config_.min_pts, xi);
    }
    IspClustering clustering = base;
    clustering.labels = optics.labels;
    clustering.cluster_count = optics.cluster_count;
    obs::metrics()
        .counter(xi_counter_name("cluster.clusters", xi))
        .add(static_cast<std::uint64_t>(std::max(0, optics.cluster_count)));
    out.push_back(std::move(clustering));
  }
  return out;
}

HgColocation colocation_of(const IspClustering& clustering,
                           const OffnetRegistry& registry, Hypergiant hg) {
  HgColocation out;
  if (!clustering.usable) return out;

  // Which hypergiants appear in each cluster.
  std::map<int, std::set<Hypergiant>> cluster_members;
  for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
    const int label = clustering.labels[i];
    if (label < 0) continue;
    cluster_members[label].insert(
        registry.servers()[clustering.registry_indices[i]].hg);
  }

  for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
    const OffnetServer& server =
        registry.servers()[clustering.registry_indices[i]];
    if (server.hg != hg) continue;
    ++out.total_ips;
    const int label = clustering.labels[i];
    if (label < 0) continue;
    const auto& members = cluster_members[label];
    if (members.size() > 1) ++out.colocated_ips;
  }
  return out;
}

int inferred_site_count(const IspClustering& clustering,
                        const OffnetRegistry& registry, Hypergiant hg) {
  if (!clustering.usable) return 0;
  std::set<int> cluster_labels;
  int noise = 0;
  bool any = false;
  for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
    const OffnetServer& server =
        registry.servers()[clustering.registry_indices[i]];
    if (server.hg != hg) continue;
    any = true;
    if (clustering.labels[i] < 0) ++noise;
    else cluster_labels.insert(clustering.labels[i]);
  }
  if (!any) return 0;
  return static_cast<int>(cluster_labels.size()) + noise;
}

std::vector<Hypergiant> surviving_hypergiants(const IspClustering& clustering,
                                              const OffnetRegistry& registry) {
  std::set<Hypergiant> seen;
  for (const std::size_t ri : clustering.registry_indices) {
    seen.insert(registry.servers()[ri].hg);
  }
  std::vector<Hypergiant> out;
  for (const Hypergiant hg : all_hypergiants()) {
    if (seen.contains(hg)) out.push_back(hg);
  }
  return out;
}

}  // namespace repro
