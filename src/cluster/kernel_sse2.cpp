// SSE2 kernel (lanes = 2). SSE2 is the x86-64 baseline, so this is the
// guaranteed vector floor on any x86-64 host; no extra compile flags needed.
#include "cluster/distance_kernel.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cmath>
#include <limits>

#include "cluster/select_program.h"

namespace repro::cluster {

namespace {

void fill_diffs(const double* a, const double* const* bs, std::size_t n,
                double* scratch) {
  const double* b0 = bs[0];
  const double* b1 = bs[1];
  for (std::size_t d = 0; d < n; ++d) {
    double* row = scratch + padded_row_index(d, 2) * 2;
    row[0] = std::fabs(a[d] - b0[d]);
    row[1] = std::fabs(a[d] - b1[d]);
  }
}

void run_network(double* scratch, const std::uint32_t* byte_offsets,
                 std::size_t comparators) {
  char* base = reinterpret_cast<char*>(scratch);
  for (std::size_t c = 0; c < comparators; ++c) {
    double* lo = reinterpret_cast<double*>(base + byte_offsets[2 * c]);
    double* hi = reinterpret_cast<double*>(base + byte_offsets[2 * c + 1]);
    const __m128d x = _mm_load_pd(lo);
    const __m128d y = _mm_load_pd(hi);
    _mm_store_pd(lo, _mm_min_pd(x, y));
    _mm_store_pd(hi, _mm_max_pd(x, y));
  }
}

#define REPRO_SELECT_VEC __m128d
#define REPRO_SELECT_LOAD(p) _mm_load_pd(p)
#define REPRO_SELECT_STORE(p, v) _mm_store_pd((p), (v))
#define REPRO_SELECT_MIN(x, y) _mm_min_pd((x), (y))
#define REPRO_SELECT_MAX(x, y) _mm_max_pd((x), (y))
#define REPRO_SELECT_INF \
  _mm_set1_pd(std::numeric_limits<double>::infinity())
#include "cluster/kernel_select.inl"
#undef REPRO_SELECT_VEC
#undef REPRO_SELECT_LOAD
#undef REPRO_SELECT_STORE
#undef REPRO_SELECT_MIN
#undef REPRO_SELECT_MAX
#undef REPRO_SELECT_INF

void reduce_mean(const double* scratch, std::size_t keep, double* out) {
  __m128d acc = _mm_setzero_pd();
  for (std::size_t r = 0; r < keep; ++r) {
    acc = _mm_add_pd(acc, _mm_load_pd(scratch + padded_row_index(r, 2) * 2));
  }
  acc = _mm_div_pd(acc, _mm_set1_pd(static_cast<double>(keep)));
  _mm_storeu_pd(out, acc);
}

const KernelOps kOps{simd::SimdLevel::kSse2, 2,           &fill_diffs,
                     &run_network,           &run_select, &reduce_mean};

}  // namespace

const KernelOps* sse2_ops() noexcept { return &kOps; }

}  // namespace repro::cluster

#else  // non-x86 build: level unavailable, dispatch falls through to scalar.

namespace repro::cluster {
const KernelOps* sse2_ops() noexcept { return nullptr; }
}  // namespace repro::cluster

#endif
