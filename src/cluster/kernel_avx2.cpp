// AVX2 kernel (lanes = 4). Compiled with -mavx2 (set per-file in CMake) and
// only ever reached through the dispatch table after a runtime cpuid check.
#include "cluster/distance_kernel.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <limits>

#include "cluster/select_program.h"

namespace repro::cluster {

namespace {

void fill_diffs(const double* a, const double* const* bs, std::size_t n,
                double* scratch) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t d = 0;
  // 4x4 blocks: four |a-b| row vectors, transposed into four scratch rows
  // (one dimension each, all four lanes) with unpacks + 128-bit permutes.
  for (; d + 4 <= n; d += 4) {
    const __m256d av = _mm256_loadu_pd(a + d);
    const __m256d r0 =
        _mm256_andnot_pd(sign, _mm256_sub_pd(av, _mm256_loadu_pd(bs[0] + d)));
    const __m256d r1 =
        _mm256_andnot_pd(sign, _mm256_sub_pd(av, _mm256_loadu_pd(bs[1] + d)));
    const __m256d r2 =
        _mm256_andnot_pd(sign, _mm256_sub_pd(av, _mm256_loadu_pd(bs[2] + d)));
    const __m256d r3 =
        _mm256_andnot_pd(sign, _mm256_sub_pd(av, _mm256_loadu_pd(bs[3] + d)));
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_store_pd(scratch + padded_row_index(d + 0, 4) * 4,
                    _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_store_pd(scratch + padded_row_index(d + 1, 4) * 4,
                    _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_store_pd(scratch + padded_row_index(d + 2, 4) * 4,
                    _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_store_pd(scratch + padded_row_index(d + 3, 4) * 4,
                    _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; d < n; ++d) {
    double* row = scratch + padded_row_index(d, 4) * 4;
    for (std::size_t l = 0; l < 4; ++l) {
      row[l] = std::fabs(a[d] - bs[l][d]);
    }
  }
}

void run_network(double* scratch, const std::uint32_t* byte_offsets,
                 std::size_t comparators) {
  char* base = reinterpret_cast<char*>(scratch);
  for (std::size_t c = 0; c < comparators; ++c) {
    double* lo = reinterpret_cast<double*>(base + byte_offsets[2 * c]);
    double* hi = reinterpret_cast<double*>(base + byte_offsets[2 * c + 1]);
    const __m256d x = _mm256_load_pd(lo);
    const __m256d y = _mm256_load_pd(hi);
    _mm256_store_pd(lo, _mm256_min_pd(x, y));
    _mm256_store_pd(hi, _mm256_max_pd(x, y));
  }
}

#define REPRO_SELECT_VEC __m256d
#define REPRO_SELECT_LOAD(p) _mm256_load_pd(p)
#define REPRO_SELECT_STORE(p, v) _mm256_store_pd((p), (v))
#define REPRO_SELECT_MIN(x, y) _mm256_min_pd((x), (y))
#define REPRO_SELECT_MAX(x, y) _mm256_max_pd((x), (y))
#define REPRO_SELECT_INF \
  _mm256_set1_pd(std::numeric_limits<double>::infinity())
#include "cluster/kernel_select.inl"
#undef REPRO_SELECT_VEC
#undef REPRO_SELECT_LOAD
#undef REPRO_SELECT_STORE
#undef REPRO_SELECT_MIN
#undef REPRO_SELECT_MAX
#undef REPRO_SELECT_INF

void reduce_mean(const double* scratch, std::size_t keep, double* out) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t r = 0; r < keep; ++r) {
    acc = _mm256_add_pd(acc,
                        _mm256_load_pd(scratch + padded_row_index(r, 4) * 4));
  }
  acc = _mm256_div_pd(acc, _mm256_set1_pd(static_cast<double>(keep)));
  _mm256_storeu_pd(out, acc);
}

const KernelOps kOps{simd::SimdLevel::kAvx2, 4,           &fill_diffs,
                     &run_network,           &run_select, &reduce_mean};

}  // namespace

const KernelOps* avx2_ops() noexcept { return &kOps; }

}  // namespace repro::cluster

#else  // ISA not compiled in: dispatch falls through to the next level down.

namespace repro::cluster {
const KernelOps* avx2_ops() noexcept { return nullptr; }
}  // namespace repro::cluster

#endif
