#include "cluster/distance_kernel.h"

namespace repro::cluster {

const KernelOps& kernel_ops(simd::SimdLevel level) noexcept {
  using simd::SimdLevel;
  if (level >= SimdLevel::kAvx512) {
    if (const KernelOps* ops = avx512_ops()) return *ops;
  }
  if (level >= SimdLevel::kAvx2) {
    if (const KernelOps* ops = avx2_ops()) return *ops;
  }
  if (level >= SimdLevel::kSse2) {
    if (const KernelOps* ops = sse2_ops()) return *ops;
  }
  return *scalar_ops();
}

}  // namespace repro::cluster
