#include "cluster/sort_network.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "util/error.h"

namespace repro::cluster {

namespace {

using Comparator = std::pair<std::uint32_t, std::uint32_t>;

/// Batcher's odd-even merge of the chain lo, lo+r, lo+2r, ... within
/// [lo, lo+m): both sorted halves interleave, then adjacent odd pairs are
/// fixed up (Knuth 5.2.2M).
void odd_even_merge(std::vector<Comparator>& out, std::uint32_t lo,
                    std::uint32_t m, std::uint32_t r) {
  const std::uint32_t step = r * 2;
  if (step < m) {
    odd_even_merge(out, lo, m, step);
    odd_even_merge(out, lo + r, m, step);
    for (std::uint32_t i = lo + r; i + r < lo + m; i += step) {
      out.emplace_back(i, i + r);
    }
  } else {
    out.emplace_back(lo, lo + r);
  }
}

void odd_even_sort(std::vector<Comparator>& out, std::uint32_t lo,
                   std::uint32_t m) {
  if (m <= 1) return;
  const std::uint32_t half = m / 2;
  odd_even_sort(out, lo, half);
  odd_even_sort(out, lo + half, half);
  odd_even_merge(out, lo, m, 1);
}

struct CacheKey {
  std::size_t n, keep, lanes;
  bool operator<(const CacheKey& other) const {
    return std::tie(n, keep, lanes) <
           std::tie(other.n, other.keep, other.lanes);
  }
};

}  // namespace

std::vector<Comparator> sort_network_pairs(std::size_t n, std::size_t keep) {
  require(n >= 1 && n <= 0xffffffffu / 2, "sort_network: bad size");
  require(keep >= 1 && keep <= n, "sort_network: bad keep count");
  if (n == 1) return {};

  std::uint32_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  std::vector<Comparator> full;
  odd_even_sort(full, 0, pow2);

  // Clamp to n: positions >= n hold a virtual +inf. A compare-exchange
  // writes min to the low index and max to the high index, so +inf can
  // never leave a high slot and real values never enter one -- comparators
  // touching those slots are identity operations.
  std::vector<Comparator> clamped;
  clamped.reserve(full.size());
  for (const auto& [i, j] : full) {
    if (i < n && j < n) clamped.emplace_back(i, j);
  }

  // Backward prune against the trim boundary: outputs at positions >= keep
  // are discarded by the trimmed mean, so a comparator whose both outputs
  // are dead is dead; a live output makes both of its inputs live.
  std::vector<char> needed(n, 0);
  for (std::size_t k = 0; k < keep; ++k) needed[k] = 1;
  std::vector<Comparator> pruned;
  pruned.reserve(clamped.size());
  for (std::size_t c = clamped.size(); c-- > 0;) {
    const auto [i, j] = clamped[c];
    if (needed[i] || needed[j]) {
      needed[i] = needed[j] = 1;
      pruned.push_back(clamped[c]);
    }
  }
  std::reverse(pruned.begin(), pruned.end());

  // Layering: group comparators by dependency depth so dependent accesses
  // to the same scratch row sit a whole layer apart in program order.
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> order(pruned.size());
  for (std::size_t c = 0; c < pruned.size(); ++c) {
    const auto [i, j] = pruned[c];
    const std::uint32_t d = std::max(depth[i], depth[j]) + 1;
    depth[i] = depth[j] = d;
    order[c] = {d, c};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Comparator> layered(pruned.size());
  for (std::size_t c = 0; c < pruned.size(); ++c) {
    layered[c] = pruned[order[c].second];
  }
  return layered;
}

const SortNetwork& sort_network_for(std::size_t n, std::size_t keep,
                                    std::size_t lanes) {
  require(lanes >= 1 && lanes <= 16, "sort_network: bad lane count");
  static std::mutex mutex;
  static std::map<CacheKey, std::unique_ptr<SortNetwork>> cache;

  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[CacheKey{n, keep, lanes}];
  if (slot == nullptr) {
    auto network = std::make_unique<SortNetwork>();
    network->n = n;
    network->keep = keep;
    network->lanes = lanes;
    const std::vector<Comparator> pairs = sort_network_pairs(n, keep);
    network->comparators = pairs.size();
    network->byte_offsets.reserve(pairs.size() * 2);
    const std::uint32_t stride =
        static_cast<std::uint32_t>(lanes * sizeof(double));
    for (const auto& [i, j] : pairs) {
      network->byte_offsets.push_back(i * stride);
      network->byte_offsets.push_back(j * stride);
    }
    slot = std::move(network);
  }
  return *slot;
}

}  // namespace repro::cluster
