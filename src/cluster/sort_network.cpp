#include "cluster/sort_network.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "cluster/select_program.h"
#include "util/error.h"

namespace repro::cluster {

namespace {

using Comparator = std::pair<std::uint32_t, std::uint32_t>;

struct CacheKey {
  std::size_t n, keep, lanes;
  bool operator<(const CacheKey& other) const {
    return std::tie(n, keep, lanes) <
           std::tie(other.n, other.keep, other.lanes);
  }
};

}  // namespace

std::vector<Comparator> sort_network_pairs(std::size_t n, std::size_t keep) {
  require(keep >= 1 && keep <= n, "sort_network: bad keep count");
  // Batcher generation and clamping live in select_program.cpp now -- the
  // rank-select program builder and this flat fallback share one source of
  // comparators, so the two strategies cannot drift structurally.
  std::vector<Comparator> clamped = batcher_comparators(n);

  // Backward prune against the trim boundary: outputs at positions >= keep
  // are discarded by the trimmed mean, so a comparator whose both outputs
  // are dead is dead; a live output makes both of its inputs live.
  std::vector<char> needed(n, 0);
  for (std::size_t k = 0; k < keep; ++k) needed[k] = 1;
  std::vector<Comparator> pruned;
  pruned.reserve(clamped.size());
  for (std::size_t c = clamped.size(); c-- > 0;) {
    const auto [i, j] = clamped[c];
    if (needed[i] || needed[j]) {
      needed[i] = needed[j] = 1;
      pruned.push_back(clamped[c]);
    }
  }
  std::reverse(pruned.begin(), pruned.end());

  // Layering: group comparators by dependency depth so dependent accesses
  // to the same scratch row sit a whole layer apart in program order.
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> order(pruned.size());
  for (std::size_t c = 0; c < pruned.size(); ++c) {
    const auto [i, j] = pruned[c];
    const std::uint32_t d = std::max(depth[i], depth[j]) + 1;
    depth[i] = depth[j] = d;
    order[c] = {d, c};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Comparator> layered(pruned.size());
  for (std::size_t c = 0; c < pruned.size(); ++c) {
    layered[c] = pruned[order[c].second];
  }
  return layered;
}

const SortNetwork& sort_network_for(std::size_t n, std::size_t keep,
                                    std::size_t lanes) {
  require(lanes >= 1 && lanes <= 16, "sort_network: bad lane count");
  static std::mutex mutex;
  static std::map<CacheKey, std::unique_ptr<SortNetwork>> cache;

  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[CacheKey{n, keep, lanes}];
  if (slot == nullptr) {
    auto network = std::make_unique<SortNetwork>();
    network->n = n;
    network->keep = keep;
    network->lanes = lanes;
    const std::vector<Comparator> pairs = sort_network_pairs(n, keep);
    network->comparators = pairs.size();
    network->byte_offsets.reserve(pairs.size() * 2);
    const std::uint32_t stride =
        static_cast<std::uint32_t>(lanes * sizeof(double));
    // Offsets go through the shared anti-alias pad mapping: the scratch
    // layout belongs to the kernel contract (distance_kernel.h), not to
    // the select strategy, so the fallback network addresses the exact
    // same padded rows the rank-select program does.
    for (const auto& [i, j] : pairs) {
      network->byte_offsets.push_back(
          static_cast<std::uint32_t>(padded_row_index(i, lanes)) * stride);
      network->byte_offsets.push_back(
          static_cast<std::uint32_t>(padded_row_index(j, lanes)) * stride);
    }
    slot = std::move(network);
  }
  return *slot;
}

}  // namespace repro::cluster
