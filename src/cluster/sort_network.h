// Flat Batcher odd-even networks: the select phase's *fallback* strategy.
//
// The default select phase is the rank-select program (select_program.h);
// this flat form is kept behind REPRO_SELECT=network for A/B measurement
// and as the simplest possible reference execution of the same comparator
// sequence. Both strategies share one Batcher generator
// (batcher_comparators) and the same padded scratch layout, and are
// bit-identical by construction.
//
// A network for (n, keep) is the clamped next-power-of-two Batcher network
// (positions >= n hold a virtual +inf that provably never moves, so
// comparators touching them are no-ops and are dropped), then:
//
//   * pruned backward against the trim boundary: positions >= keep are
//     discarded by the trimmed mean, so comparators feeding only those
//     outputs are removed;
//   * reordered into parallel layers (comparators of equal dependency
//     depth grouped together), which keeps dependent memory accesses far
//     apart -- without this the store-to-load forwarding chains between
//     adjacent comparators dominate the kernel's runtime.
//
// Networks are cached per (n, keep, lanes); the cached form is a flat list
// of byte-offset pairs into the kernel's padded [n][lanes] scratch so the
// inner loop is two loads, min, max, two stores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace repro::cluster {

struct SortNetwork {
  std::size_t n = 0;
  std::size_t keep = 0;
  std::size_t lanes = 0;
  std::size_t comparators = 0;
  /// 2 * comparators entries: byte offsets of each comparator's (low, high)
  /// row in the kernel's padded [n][lanes] double scratch (row stride =
  /// lanes * 8 bytes, rows mapped through padded_row_index).
  std::vector<std::uint32_t> byte_offsets;
};

/// Raw comparator index pairs (layered, pruned) for (n, keep); exposed for
/// the property tests, which replay the network on scalars against
/// std::sort.
std::vector<std::pair<std::uint32_t, std::uint32_t>> sort_network_pairs(
    std::size_t n, std::size_t keep);

/// Cached network for (n, keep) with offsets scaled for `lanes` lanes.
/// Thread-safe; the returned reference lives for the process lifetime.
const SortNetwork& sort_network_for(std::size_t n, std::size_t keep,
                                    std::size_t lanes);

}  // namespace repro::cluster
