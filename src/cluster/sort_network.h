// Batcher odd-even mergesort networks for the trimmed-distance kernel.
//
// The kernel sorts one |a-b| difference vector per SIMD lane; a sorting
// network makes that possible because its compare-exchange sequence is
// data-independent -- every lane runs the same comparators, each a single
// min/max pair, with no branches and no lane crossing. Networks are
// generated for arbitrary n by clamping the next-power-of-two Batcher
// network (positions >= n hold a virtual +inf that provably never moves, so
// comparators touching them are no-ops and are dropped), then:
//
//   * pruned backward against the trim boundary: positions >= keep are
//     discarded by the trimmed mean, so comparators feeding only those
//     outputs are removed;
//   * reordered into parallel layers (comparators of equal dependency
//     depth grouped together), which keeps dependent memory accesses far
//     apart -- without this the store-to-load forwarding chains between
//     adjacent comparators dominate the kernel's runtime.
//
// Networks are cached per (n, keep, lanes); the cached form is a flat list
// of byte-offset pairs into the kernel's [n][lanes] scratch so the inner
// loop is two loads, min, max, two stores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace repro::cluster {

struct SortNetwork {
  std::size_t n = 0;
  std::size_t keep = 0;
  std::size_t lanes = 0;
  std::size_t comparators = 0;
  /// 2 * comparators entries: byte offsets of each comparator's (low, high)
  /// row in a [n][lanes] double scratch (row stride = lanes * 8 bytes).
  std::vector<std::uint32_t> byte_offsets;
};

/// Raw comparator index pairs (layered, pruned) for (n, keep); exposed for
/// the property tests, which replay the network on scalars against
/// std::sort.
std::vector<std::pair<std::uint32_t, std::uint32_t>> sort_network_pairs(
    std::size_t n, std::size_t keep);

/// Cached network for (n, keep) with offsets scaled for `lanes` lanes.
/// Thread-safe; the returned reference lives for the process lifetime.
const SortNetwork& sort_network_for(std::size_t n, std::size_t keep,
                                    std::size_t lanes);

}  // namespace repro::cluster
