#include "cluster/optics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace repro {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Steepness predicates on the reachability plot. Both are false when the
/// two values are both infinite (a flat stretch of component starts is not
/// steep).
bool steep_down_at(const std::vector<double>& r, std::size_t i,
                   double xi_complement) noexcept {
  if (std::isinf(r[i]) && std::isinf(r[i + 1])) return false;
  return r[i] * xi_complement >= r[i + 1];
}

bool steep_up_at(const std::vector<double>& r, std::size_t i,
                 double xi_complement) noexcept {
  if (std::isinf(r[i]) && std::isinf(r[i + 1])) return false;
  return r[i] <= r[i + 1] * xi_complement;
}

bool down_at(const std::vector<double>& r, std::size_t i) noexcept {
  return r[i] >= r[i + 1];
}

bool up_at(const std::vector<double>& r, std::size_t i) noexcept {
  return r[i] <= r[i + 1];
}

/// Per-thread scratch for extract_xi_clusters: the xi sweeps and the
/// resident report service re-extract clusters over the same ordering for
/// many xi values, so the working buffers are reused across calls instead
/// of reallocated (the reachability copy plus sentinel, the prefix-max
/// array behind the tail correction, and the per-steep-up-area cluster
/// staging).
struct XiScratch {
  std::vector<double> r;
  std::vector<double> prefix_max;
  std::vector<std::pair<std::size_t, std::size_t>> u_clusters;
};

XiScratch& xi_scratch() {
  thread_local XiScratch scratch;
  return scratch;
}

/// Extends a steep region starting at `start` (Ankerst Definition 11 /
/// sklearn _extend_region): the region continues through weakly-monotonic
/// points, tolerating at most min_pts consecutive non-steep points, and ends
/// at the last steep point seen.
template <typename SteepFn, typename MonoFn>
std::size_t extend_region(const std::vector<double>& r, std::size_t start,
                          std::size_t last, std::size_t min_pts, SteepFn steep,
                          MonoFn mono) {
  std::size_t non_steep = 0;
  std::size_t end = start;
  for (std::size_t index = start; index < last; ++index) {
    if (steep(index)) {
      non_steep = 0;
      end = index;
    } else if (mono(index)) {
      ++non_steep;
      if (non_steep > min_pts) break;
    } else {
      break;
    }
  }
  return end;
}

struct SteepDownArea {
  std::size_t start = 0;
  std::size_t end = 0;
  double mib = 0.0;  // maximum reachability seen after the area closed
};

/// Drops steep-down areas invalidated by the running maximum `mib` and
/// refreshes the survivors' mib values (sklearn _update_filter_sdas).
void update_filter_sdas(std::vector<SteepDownArea>& sdas, double mib,
                        double xi_complement, const std::vector<double>& r) {
  if (std::isinf(mib)) {
    sdas.clear();
    return;
  }
  std::erase_if(sdas, [&](const SteepDownArea& sda) {
    return mib > r[sda.start] * xi_complement;
  });
  for (auto& sda : sdas) sda.mib = std::max(sda.mib, mib);
}

}  // namespace

void optics_order(const DistanceMatrix& distances, std::size_t min_pts,
                  OpticsResult& result) {
  const std::size_t n = distances.size();
  result.ordering.clear();
  result.reachability.clear();
  result.ordering.reserve(n);
  result.reachability.reserve(n);
  result.core_distance.assign(n, kInf);

  // Core distance: distance to the (min_pts)-th closest point, counting the
  // point itself (sklearn's min_samples convention; min_pts = 2 means the
  // nearest other point). One scratch row reused across all points, filled
  // row-wise from the packed triangle instead of n per-element at() calls.
  // nth_element is kept: the *value* at the rank is uniquely determined, so
  // unlike a prefix sum it cannot depend on the stdlib's partition order.
  if (n >= min_pts) {
    std::vector<double> row(n - 1);
    for (std::size_t p = 0; p < n; ++p) {
      distances.copy_row_without_self(p, row.data());
      const std::size_t rank = min_pts - 2;  // 0-based among *other* points
      std::nth_element(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(rank),
                       row.end());
      result.core_distance[p] = row[rank];
    }
  }

  std::vector<char> processed(n, 0);   // byte flags beat vector<bool> bit ops
  std::vector<double> reach(n, kInf);
  std::vector<double> current_row(n);  // reused: distances from `current`

  // Compacted list of unprocessed point ids, swap-removed as points enter
  // the ordering. The reach-update and next-point scans walk only this list,
  // so the per-expansion work shrinks with the frontier instead of staying
  // O(n) with a processed[] branch per point -- and the two scans fuse into
  // one pass, since every survivor's reach is final for the step once its
  // update lands.
  std::vector<std::uint32_t> remaining(n);
  std::vector<std::uint32_t> slot(n);  // slot[id] = index of id in remaining
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = static_cast<std::uint32_t>(i);
    slot[i] = static_cast<std::uint32_t>(i);
  }
  const auto remove_remaining = [&](std::uint32_t id) {
    const std::uint32_t at = slot[id];
    const std::uint32_t moved = remaining.back();
    remaining[at] = moved;
    slot[moved] = at;
    remaining.pop_back();
  };

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (processed[seed]) continue;
    std::size_t current = seed;
    while (true) {
      processed[current] = 1;
      remove_remaining(static_cast<std::uint32_t>(current));
      result.ordering.push_back(current);
      result.reachability.push_back(reach[current]);

      // Next: unprocessed point with the smallest reachability (ties to the
      // smallest index -- the order of `remaining` is scan-order dependent,
      // so the tie-break keys on the id, which is deterministic).
      std::uint32_t next = static_cast<std::uint32_t>(n);
      double next_reach = kInf;
      if (std::isfinite(result.core_distance[current])) {
        // One row-wise copy from the packed triangle, then direct indexing:
        // the per-element at() recomputed the packed offset (with bounds
        // checks) for every neighbor on every expansion.
        distances.copy_row(current, current_row.data());
        const double core = result.core_distance[current];
        for (const std::uint32_t o : remaining) {
          const double candidate = std::max(core, current_row[o]);
          const double updated = std::min(reach[o], candidate);
          reach[o] = updated;
          if (updated < next_reach || (updated == next_reach && o < next)) {
            next = o;
            next_reach = updated;
          }
        }
      } else {
        for (const std::uint32_t o : remaining) {
          const double value = reach[o];
          if (value < next_reach || (value == next_reach && o < next)) {
            next = o;
            next_reach = value;
          }
        }
      }
      if (next == n || std::isinf(next_reach)) break;  // component exhausted
      current = next;
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> extract_xi_clusters(
    const std::vector<double>& reachability, std::size_t min_pts, double xi,
    std::size_t min_cluster_size) {
  require(xi > 0.0 && xi < 1.0, "extract_xi_clusters: xi outside (0, 1)");
  const double xi_complement = 1.0 - xi;
  const std::size_t n = reachability.size();
  std::vector<std::pair<std::size_t, std::size_t>> clusters;
  if (n < 2) return clusters;

  // Sentinel: an infinite value after the end lets the final steep-up close.
  // The copy lives in per-thread scratch: xi sweeps re-extract over the same
  // ordering dozens of times, and the copy's only job is to carry the
  // sentinel without mutating the caller's buffer.
  XiScratch& scratch = xi_scratch();
  std::vector<double>& r = scratch.r;
  r.resize(n + 1);
  std::copy(reachability.begin(), reachability.end(), r.begin());
  r[n] = kInf;
  const std::size_t last = n;  // valid comparisons are r[i] vs r[i+1], i < n

  std::vector<SteepDownArea> sdas;
  std::size_t index = 0;
  double mib = 0.0;
  const auto steep_down = [&](std::size_t i) {
    return steep_down_at(r, i, xi_complement);
  };
  const auto steep_up = [&](std::size_t i) { return steep_up_at(r, i, xi_complement); };
  const auto down = [&](std::size_t i) { return down_at(r, i); };
  const auto up = [&](std::size_t i) { return up_at(r, i); };

  while (index < last) {
    mib = std::max(mib, r[index]);
    if (steep_down(index)) {
      update_filter_sdas(sdas, mib, xi_complement, r);
      const std::size_t d_start = index;
      const std::size_t d_end =
          extend_region(r, d_start, last, min_pts, steep_down, down);
      sdas.push_back(SteepDownArea{d_start, d_end, 0.0});
      index = d_end + 1;
      mib = index <= last ? r[index] : 0.0;
    } else if (steep_up(index)) {
      update_filter_sdas(sdas, mib, xi_complement, r);
      const std::size_t u_start = index;
      const std::size_t u_end = extend_region(r, u_start, last, min_pts, steep_up, up);
      index = u_end + 1;
      mib = index <= last ? r[index] : 0.0;

      std::vector<std::pair<std::size_t, std::size_t>>& u_clusters =
          scratch.u_clusters;
      u_clusters.clear();
      std::vector<double>& prefix_max = scratch.prefix_max;
      for (const SteepDownArea& sda : sdas) {
        std::size_t c_start = sda.start;
        std::size_t c_end = u_end;
        // Reject if reachability rose too much between the areas (4b).
        if (sda.mib > r[c_end + 1] * xi_complement) continue;
        // Boundary adjustment (condition 4 of Ankerst et al.).
        const double d_max = r[sda.start];
        if (std::isinf(d_max) ||
            d_max * xi_complement >= r[c_end + 1]) {
          while (c_start < sda.end && r[c_start + 1] > r[c_end + 1]) ++c_start;
        } else if (r[c_end + 1] * xi_complement >= d_max) {
          while (c_end > u_start && r[c_end] > d_max) --c_end;
        }
        // Tail correction (the role of sklearn's predecessor correction):
        // drop trailing points whose reachability rises steeply above the
        // cluster's internal level -- e.g. a lone outlier swallowed because
        // the sentinel makes the final rise look steep-up. The internal
        // maximum over (c_start, c_end) shrinks from the right as the tail
        // peels, so one prefix-max pass answers every trim test in O(1)
        // instead of rescanning the interior per dropped point.
        if (c_end > c_start + 1) {
          prefix_max.resize(c_end);
          prefix_max[c_start] = 0.0;
          for (std::size_t k = c_start + 1; k < c_end; ++k) {
            prefix_max[k] = std::max(prefix_max[k - 1], r[k]);
          }
          while (c_end > c_start + 1) {
            const double internal_max = prefix_max[c_end - 1];
            const bool tail_is_steep_rise =
                !std::isfinite(r[c_end]) ||
                r[c_end] * xi_complement > internal_max;
            if (!tail_is_steep_rise) break;
            --c_end;
          }
        }
        if (c_end < c_start || c_end - c_start + 1 < min_cluster_size) continue;
        if (c_start > sda.end) continue;
        if (c_end < u_start) continue;
        u_clusters.emplace_back(c_start, c_end);
      }
      // Innermost first: newer steep-down areas start later.
      std::reverse(u_clusters.begin(), u_clusters.end());
      clusters.insert(clusters.end(), u_clusters.begin(), u_clusters.end());
    } else {
      ++index;
    }
  }
  return clusters;
}

void reextract_xi(OpticsResult& base, std::size_t min_pts, double xi) {
  require(min_pts >= 2, "reextract_xi: min_pts must be >= 2");
  base.clusters = extract_xi_clusters(base.reachability, min_pts, xi, min_pts);

  // Flat labels, innermost-first. A cluster claims the points inside it that
  // no smaller cluster has taken -- but only when those are the majority of
  // its extent. The majority rule keeps the hierarchy honest: a rack-level
  // cluster with one tiny sub-fragment still becomes a cluster (fragment
  // excluded), while an enclosing facility- or ISP-level cluster whose
  // children are already labeled does not swallow the stragglers between
  // them.
  const std::size_t n = base.ordering.size();
  base.labels.assign(n, -1);
  std::vector<int> position_labels(n, -1);
  int next_label = 0;
  for (const auto& [start, end] : base.clusters) {
    std::size_t unlabeled = 0;
    for (std::size_t k = start; k <= end; ++k) {
      if (position_labels[k] == -1) ++unlabeled;
    }
    const std::size_t extent = end - start + 1;
    if (unlabeled < min_pts || 2 * unlabeled < extent) continue;
    for (std::size_t k = start; k <= end; ++k) {
      if (position_labels[k] == -1) position_labels[k] = next_label;
    }
    ++next_label;
  }
  for (std::size_t k = 0; k < n; ++k) {
    base.labels[base.ordering[k]] = position_labels[k];
  }
  base.cluster_count = next_label;
}

OpticsResult optics_xi(const DistanceMatrix& distances, std::size_t min_pts,
                       double xi) {
  require(min_pts >= 2, "optics_xi: min_pts must be >= 2");
  OpticsResult result;
  optics_order(distances, min_pts, result);
  reextract_xi(result, min_pts, xi);
  return result;
}

}  // namespace repro
