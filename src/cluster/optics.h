// OPTICS (Ankerst, Breunig, Kriegel, Sander -- SIGMOD '99) with xi-based
// cluster extraction, over a precomputed distance matrix.
//
// The paper clusters each ISP's offnet IPs with OPTICS (n_min = 2) at two
// steepness settings (xi = 0.1 and xi = 0.9) that bound the true amount of
// colocation: small xi cuts the reachability plot at shallow dents (fine
// clusters, conservative about colocation), large xi only at cliffs (coarse
// clusters, liberal about colocation).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "cluster/distance.h"

namespace repro {

struct OpticsResult {
  /// Point indices in OPTICS output order.
  std::vector<std::size_t> ordering;
  /// Reachability distance of ordering[k] (infinity for the first point of
  /// each connected component).
  std::vector<double> reachability;
  /// Core distance per *point index* (not per position).
  std::vector<double> core_distance;
  /// Extracted clusters as [start, end] positions in `ordering`, innermost
  /// first (the flat labeling below uses first-fit over this order).
  std::vector<std::pair<std::size_t, std::size_t>> clusters;
  /// Flat cluster label per *point index*; -1 = noise / not clustered.
  std::vector<int> labels;
  int cluster_count = 0;
};

/// Runs OPTICS with eps = infinity and extracts xi clusters.
/// Requires min_pts >= 2 and 0 < xi < 1.
OpticsResult optics_xi(const DistanceMatrix& distances, std::size_t min_pts,
                       double xi);

/// Re-extracts clusters and labels for a different xi on an already-computed
/// ordering (the expensive O(n^2) ordering phase is xi-independent).
/// `base` must contain a valid ordering/reachability (from optics_order or
/// optics_xi); clusters, labels and cluster_count are overwritten.
void reextract_xi(OpticsResult& base, std::size_t min_pts, double xi);

/// Computes only the ordering / reachability plot (first half of optics_xi).
/// Exposed for tests and the reachability-plot benchmarks.
void optics_order(const DistanceMatrix& distances, std::size_t min_pts,
                  OpticsResult& result);

/// Extracts xi clusters from an existing reachability plot. `reachability`
/// is indexed by output position. Returns [start, end] position pairs.
std::vector<std::pair<std::size_t, std::size_t>> extract_xi_clusters(
    const std::vector<double>& reachability, std::size_t min_pts, double xi,
    std::size_t min_cluster_size);

}  // namespace repro
