// AVX-512 kernel (lanes = 8). Compiled with -mavx512f (set per-file in
// CMake); only AVX512F intrinsics are used, and the code is only reached
// through the dispatch table after a runtime cpuid check for avx512f.
#include "cluster/distance_kernel.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX512F__)

#include <immintrin.h>

#include <limits>

#include "cluster/select_program.h"

namespace repro::cluster {

namespace {

/// In-register 8x8 double transpose: unpack pairs within 128-bit halves,
/// then two rounds of 128-bit-chunk shuffles.
inline void transpose8(__m512d r[8]) {
  const __m512d t0 = _mm512_unpacklo_pd(r[0], r[1]);
  const __m512d t1 = _mm512_unpackhi_pd(r[0], r[1]);
  const __m512d t2 = _mm512_unpacklo_pd(r[2], r[3]);
  const __m512d t3 = _mm512_unpackhi_pd(r[2], r[3]);
  const __m512d t4 = _mm512_unpacklo_pd(r[4], r[5]);
  const __m512d t5 = _mm512_unpackhi_pd(r[4], r[5]);
  const __m512d t6 = _mm512_unpacklo_pd(r[6], r[7]);
  const __m512d t7 = _mm512_unpackhi_pd(r[6], r[7]);
  const __m512d u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
  const __m512d u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
  const __m512d u2 = _mm512_shuffle_f64x2(t0, t2, 0xdd);
  const __m512d u3 = _mm512_shuffle_f64x2(t1, t3, 0xdd);
  const __m512d u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
  const __m512d u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
  const __m512d u6 = _mm512_shuffle_f64x2(t4, t6, 0xdd);
  const __m512d u7 = _mm512_shuffle_f64x2(t5, t7, 0xdd);
  r[0] = _mm512_shuffle_f64x2(u0, u4, 0x88);
  r[1] = _mm512_shuffle_f64x2(u1, u5, 0x88);
  r[2] = _mm512_shuffle_f64x2(u2, u6, 0x88);
  r[3] = _mm512_shuffle_f64x2(u3, u7, 0x88);
  r[4] = _mm512_shuffle_f64x2(u0, u4, 0xdd);
  r[5] = _mm512_shuffle_f64x2(u1, u5, 0xdd);
  r[6] = _mm512_shuffle_f64x2(u2, u6, 0xdd);
  r[7] = _mm512_shuffle_f64x2(u3, u7, 0xdd);
}

void fill_diffs(const double* a, const double* const* bs, std::size_t n,
                double* scratch) {
  // _mm512_abs_pd (AVX512F; plain andnot_pd needs DQ) clears the sign bit,
  // bit-identical to std::fabs.
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m512d av = _mm512_loadu_pd(a + d);
    __m512d rows[8];
    for (std::size_t l = 0; l < 8; ++l) {
      rows[l] = _mm512_abs_pd(_mm512_sub_pd(av, _mm512_loadu_pd(bs[l] + d)));
    }
    transpose8(rows);
    for (std::size_t r = 0; r < 8; ++r) {
      _mm512_store_pd(scratch + padded_row_index(d + r, 8) * 8, rows[r]);
    }
  }
  if (d < n) {
    // Dimension tail: masked loads zero the missing elements; only the
    // first n - d transposed rows are real, so only those are stored.
    const __mmask8 mask =
        static_cast<__mmask8>((1u << (n - d)) - 1u);
    const __m512d av = _mm512_maskz_loadu_pd(mask, a + d);
    __m512d rows[8];
    for (std::size_t l = 0; l < 8; ++l) {
      rows[l] = _mm512_abs_pd(
          _mm512_sub_pd(av, _mm512_maskz_loadu_pd(mask, bs[l] + d)));
    }
    transpose8(rows);
    for (std::size_t r = 0; d + r < n; ++r) {
      _mm512_store_pd(scratch + padded_row_index(d + r, 8) * 8, rows[r]);
    }
  }
}

void run_network(double* scratch, const std::uint32_t* byte_offsets,
                 std::size_t comparators) {
  char* base = reinterpret_cast<char*>(scratch);
  for (std::size_t c = 0; c < comparators; ++c) {
    double* lo = reinterpret_cast<double*>(base + byte_offsets[2 * c]);
    double* hi = reinterpret_cast<double*>(base + byte_offsets[2 * c + 1]);
    const __m512d x = _mm512_load_pd(lo);
    const __m512d y = _mm512_load_pd(hi);
    _mm512_store_pd(lo, _mm512_min_pd(x, y));
    _mm512_store_pd(hi, _mm512_max_pd(x, y));
  }
}

#define REPRO_SELECT_VEC __m512d
#define REPRO_SELECT_LOAD(p) _mm512_load_pd(p)
#define REPRO_SELECT_STORE(p, v) _mm512_store_pd((p), (v))
#define REPRO_SELECT_MIN(x, y) _mm512_min_pd((x), (y))
#define REPRO_SELECT_MAX(x, y) _mm512_max_pd((x), (y))
#define REPRO_SELECT_INF \
  _mm512_set1_pd(std::numeric_limits<double>::infinity())
#include "cluster/kernel_select.inl"
#undef REPRO_SELECT_VEC
#undef REPRO_SELECT_LOAD
#undef REPRO_SELECT_STORE
#undef REPRO_SELECT_MIN
#undef REPRO_SELECT_MAX
#undef REPRO_SELECT_INF

void reduce_mean(const double* scratch, std::size_t keep, double* out) {
  // One independent sequential-ascending chain per lane; the vector adds
  // run eight chains in parallel while each lane's order stays canonical.
  __m512d acc = _mm512_setzero_pd();
  for (std::size_t r = 0; r < keep; ++r) {
    acc = _mm512_add_pd(acc,
                        _mm512_load_pd(scratch + padded_row_index(r, 8) * 8));
  }
  acc = _mm512_div_pd(acc, _mm512_set1_pd(static_cast<double>(keep)));
  _mm512_storeu_pd(out, acc);
}

const KernelOps kOps{simd::SimdLevel::kAvx512, 8,           &fill_diffs,
                     &run_network,             &run_select, &reduce_mean};

}  // namespace

const KernelOps* avx512_ops() noexcept { return &kOps; }

}  // namespace repro::cluster

#else  // ISA not compiled in: dispatch falls through to the next level down.

namespace repro::cluster {
const KernelOps* avx512_ops() noexcept { return nullptr; }
}  // namespace repro::cluster

#endif
