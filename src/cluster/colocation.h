// Per-ISP colocation clustering (Section 3.2): run the ping campaign through
// the Appendix-A filters, cluster the surviving offnet IPs with OPTICS, and
// derive the paper's colocation statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/optics.h"
#include "hypergiant/deployment.h"
#include "mlab/filters.h"
#include "mlab/ping_mesh.h"

namespace repro {

/// Outcome of clustering one ISP at one xi setting.
struct IspClustering {
  AsIndex isp = kInvalidIndex;
  /// False when the ISP failed the >= min_usable_sites filter.
  bool usable = false;

  /// Per surviving offnet IP: its registry server index and cluster label
  /// (-1 = not assigned to any cluster, i.e. not colocated with anything).
  std::vector<std::size_t> registry_indices;
  std::vector<int> labels;
  int cluster_count = 0;

  std::size_t dropped_unresponsive = 0;
  std::size_t dropped_impossible = 0;
  std::size_t usable_sites = 0;
};

/// Colocation of one hypergiant's offnets within one ISP.
struct HgColocation {
  std::size_t total_ips = 0;      // surviving IPs of this hypergiant
  std::size_t colocated_ips = 0;  // in a cluster with another hypergiant's IP

  double fraction() const noexcept {
    return total_ips == 0 ? 0.0
                          : static_cast<double>(colocated_ips) /
                                static_cast<double>(total_ips);
  }
};

struct ColocationConfig {
  double xi = 0.1;
  std::size_t min_pts = 2;       // n_min of the paper's Appendix A
  double trim_fraction = 0.2;    // discrepant-VP trimming in the distance
  FilterConfig filter;
};

/// Runs the per-ISP clustering pipeline.
class ColocationClusterer {
 public:
  ColocationClusterer(const OffnetRegistry& registry, const PingMesh& mesh,
                      const VantagePointSet& vps, ColocationConfig config);

  /// Clusters one ISP's offnet IPs at the configured xi. Deterministic.
  IspClustering cluster_isp(AsIndex isp) const;

  /// Clusters one ISP at several xi values in one pass, sharing the ping
  /// matrix, the distance matrix and the OPTICS ordering (all of which are
  /// xi-independent). Much cheaper than calling cluster_isp per xi.
  std::vector<IspClustering> cluster_isp_multi(AsIndex isp,
                                               std::span<const double> xis) const;

  /// Same, but from an already-measured latency matrix for `isp` (the
  /// pipeline's warm path feeds store-loaded matrices here). Because the
  /// measurement is deterministic and the store round-trip preserves every
  /// bit (including NaN markers), the result is bit-identical to measuring.
  std::vector<IspClustering> cluster_isp_multi(AsIndex isp,
                                               std::span<const double> xis,
                                               LatencyMatrix premeasured) const;

  /// Streamed variant over a row view (typically a store::MappedLatencyMatrix
  /// spill): the cleaned compact matrix is never materialized; pairwise
  /// distances are computed block-by-block with `block_rows` staging rows
  /// per worker (0 = whole matrix in one block). Bit-identical to the
  /// in-memory overloads -- same filters, same kernels, same canonical
  /// ordering (docs/SCALING.md).
  std::vector<IspClustering> cluster_isp_multi(AsIndex isp,
                                               std::span<const double> xis,
                                               const LatencyRows& rows,
                                               std::size_t block_rows) const;

  const ColocationConfig& config() const noexcept { return config_; }

 private:
  /// Shared implementation of every overload above. `streamed` selects
  /// whether the compact matrix is materialized once (false) or compact
  /// rows are reconstructed on demand in block_rows-sized tiles (true).
  std::vector<IspClustering> cluster_rows(AsIndex isp,
                                          std::span<const double> xis,
                                          const LatencyRows& rows,
                                          bool streamed,
                                          std::size_t block_rows) const;

  const OffnetRegistry& registry_;
  const PingMesh& mesh_;
  const VantagePointSet& vps_;
  ColocationConfig config_;
};

/// Colocation stats of `hg` inside a clustered ISP: an IP is colocated when
/// its cluster also contains an IP of a different hypergiant.
HgColocation colocation_of(const IspClustering& clustering,
                           const OffnetRegistry& registry, Hypergiant hg);

/// Number of inferred sites for `hg` in the ISP: distinct cluster labels
/// among its IPs, with each noise IP counting as its own site. Returns 0
/// when the hypergiant has no surviving IPs there.
int inferred_site_count(const IspClustering& clustering,
                        const OffnetRegistry& registry, Hypergiant hg);

/// Distinct hypergiants with at least one surviving IP in the clustering.
std::vector<Hypergiant> surviving_hypergiants(const IspClustering& clustering,
                                              const OffnetRegistry& registry);

}  // namespace repro
