// Internal lane-parallel kernel interface for pairwise_distances.
//
// One kernel invocation computes `lanes` trimmed-Manhattan distances at
// once: a fixed row `a` against `lanes` other rows. The kernel works on a
// transposed scratch of shape [n][lanes] (64-byte aligned), in three phases
// matching the bench's per-phase timings:
//
//   fill_diffs   scratch[d][l] = |a[d] - bs[l][d]|
//   run_select   rank-select program pass (select_program.h) or, under
//                REPRO_SELECT=network, the flat Batcher network pass
//                (sort_network.h): each lane's kept prefix ends ascending
//   reduce_mean  per lane, sequential sum of rows [0, keep) ascending,
//                divided by keep
//
// Scratch rows live at the *padded* row index (padded_row_index in
// select_program.h): one pad row per 4 KiB alias period keeps comparators
// a power-of-two stride apart from ever being exactly one page apart,
// which otherwise serializes the select phase on false store-forwarding
// conflicts. fill_diffs, both select variants and reduce_mean all address
// rows through the same mapping; callers size the scratch with
// kernel_scratch_doubles. Pad rows are never read or written.
//
// Every instruction-set level implements the same three phases and is
// bit-identical by contract: |a-b| is exact sign-bit clearing everywhere,
// min/max on distinct values pick the same value, on ties the operand bits
// are identical, and the ascending sequence of kept values is unique as a
// value sequence -- so the sequential IEEE sum matches no matter how the
// sort was carried out. The slow oracle (trimmed_manhattan_oracle) anchors
// the contract; tests/test_perf_kernel.cpp enforces it per level.
//
// Levels above what a translation unit was compiled for return nullptr from
// their accessor; kernel_ops() falls back down the chain, so a kernel is
// only ever reached through a pointer obtained after the runtime check and
// no illegal instruction can leak onto an older CPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "util/simd.h"

namespace repro::cluster {

/// Widest lane count any level uses (AVX-512: 8 doubles).
inline constexpr std::size_t kMaxKernelLanes = 8;

struct KernelOps {
  simd::SimdLevel level;
  std::size_t lanes;
  /// scratch is [n][lanes]; bs holds `lanes` row pointers (callers duplicate
  /// the last row to pad a tail batch).
  void (*fill_diffs)(const double* a, const double* const* bs, std::size_t n,
                     double* scratch);
  /// byte_offsets: 2*comparators offsets into scratch, pre-scaled and
  /// pad-mapped for this lane count (from sort_network_for(n, keep,
  /// lanes)). Fallback select strategy.
  void (*run_network)(double* scratch, const std::uint32_t* byte_offsets,
                      std::size_t comparators);
  /// Runs a rank-select program stream (select_program_for(n, keep,
  /// lanes).code). Default select strategy; bit-identical to run_network.
  void (*run_select)(double* scratch, const std::uint32_t* code,
                     std::size_t code_len);
  /// Writes `lanes` means to out.
  void (*reduce_mean)(const double* scratch, std::size_t keep, double* out);
};

/// Per-level accessors; nullptr when the level was not compiled in (non-x86
/// builds, or a toolchain without the ISA).
const KernelOps* scalar_ops() noexcept;
const KernelOps* sse2_ops() noexcept;
const KernelOps* avx2_ops() noexcept;
const KernelOps* avx512_ops() noexcept;

/// Best available ops at or below `level` (scalar always exists).
const KernelOps& kernel_ops(simd::SimdLevel level) noexcept;

/// Reusable 64-byte-aligned buffer for the kernel scratch; one per worker
/// thread, grown monotonically like the old thread_local diff vector.
class AlignedScratch {
 public:
  AlignedScratch() = default;
  AlignedScratch(const AlignedScratch&) = delete;
  AlignedScratch& operator=(const AlignedScratch&) = delete;
  ~AlignedScratch() { release(); }

  double* ensure(std::size_t count) {
    if (count > capacity_) {
      release();
      data_ = static_cast<double*>(
          ::operator new[](count * sizeof(double), std::align_val_t{64}));
      capacity_ = count;
    }
    return data_;
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{64});
      data_ = nullptr;
    }
  }
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace repro::cluster
