// The latency-vector distance from Calder et al. (IMC '13), used by the
// paper's clustering: for a pair of IPs, exclude the 20% of vantage points
// with the largest latency discrepancy between the two, then take the
// normalized Manhattan distance over the rest.
//
// Canonical ordering contract: the trimmed mean is defined as the
// *ascending-order sequential sum* of the kept |a_i - b_i| values, divided
// by the kept count. An earlier version summed the nth_element prefix in
// whatever order the host stdlib's partition left it, so results silently
// depended on the stdlib; the canonical definition is stdlib-independent
// and every implementation here (slow oracle, scalar kernel, each SIMD
// level) matches it bit-for-bit. See docs/PERFORMANCE.md for the rationale
// and the one-time golden-baseline bump this change required.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace repro {

/// Number of values kept after trimming: max(1, n - floor(trim * n)).
std::size_t trim_keep_count(std::size_t n, double trim_fraction) noexcept;

/// Normalized trimmed Manhattan distance between two equally-sized latency
/// vectors: mean |a_i - b_i| after discarding the `trim_fraction` largest
/// absolute differences, summed in canonical ascending order. Requires equal
/// non-zero sizes and 0 <= trim_fraction < 1.
double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction = 0.2);

/// Scratch-buffer variant for hot loops: identical result bit-for-bit, but
/// the per-pair difference buffer lives in `scratch` (resized as needed), so
/// a caller that reuses one scratch vector per thread pays no allocation per
/// pair.
double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction, std::vector<double>& scratch);

/// Deliberately naive reference for the canonical contract: |a_i - b_i|
/// into a fresh buffer, full std::sort ascending, sequential sum of the
/// first keep values, divide by keep. The fast kernels must match this
/// bit-for-bit at every SIMD level (tests/test_perf_kernel.cpp).
double trimmed_manhattan_oracle(std::span<const double> a,
                                std::span<const double> b,
                                double trim_fraction = 0.2);

/// Dense symmetric distance matrix, stored as the packed upper triangle.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double value);

  /// Packed index of cell (i, j), i != j, in an n-point matrix:
  /// min(i,j) * n - min(i,j) * (min(i,j) + 1) / 2 + (max(i,j) - min(i,j) - 1).
  /// Exposed for the layout property tests.
  static std::size_t packed_offset(std::size_t n, std::size_t i,
                                   std::size_t j);

  /// The contiguous cells (i, j) for j in (i, n): length n - 1 - i. Writing
  /// through the mutable span skips the per-cell require() checks, which is
  /// what pairwise_distances uses on its hot path (every cell is written by
  /// exactly one worker, indices proven in the loop structure).
  std::span<double> row_span(std::size_t i);
  std::span<const double> row_span(std::size_t i) const;

  /// Copies row p -- distance from p to every point, diagonal included as
  /// 0.0 -- into out[0..n). Row-wise walk of the packed triangle: one
  /// strided pass for the column part (o < p) and one memcpy for the
  /// contiguous part (o > p). Replaces per-element at() calls in OPTICS.
  void copy_row(std::size_t p, double* out) const;

  /// Same but skips the diagonal: out[0..n-1) holds distances to the n - 1
  /// other points (order: o < p first, then o > p).
  void copy_row_without_self(std::size_t p, double* out) const;

 private:
  std::size_t n_;
  std::vector<double> values_;  // upper triangle, row-major
  std::size_t offset(std::size_t i, std::size_t j) const;
  std::size_t row_start(std::size_t i) const noexcept {
    return i * n_ - i * (i + 1) / 2;
  }
};

/// Builds the pairwise trimmed-Manhattan matrix over row vectors of a
/// row-major `rows x cols` latency table.
///
/// Single-core hot path: each worker processes its rows in lane-sized
/// batches (row i against `lanes` rows j at once) through the SIMD kernel
/// selected at runtime (util/simd.h; REPRO_SIMD caps the level). Argument
/// checks and matrix bounds checks are hoisted out of the loops; results
/// are written through unchecked row spans. The upper triangle is sharded
/// into row blocks and fanned across the shared thread pool exactly as
/// before (default_thread_count() workers, serial at 1 thread). Every cell
/// is computed independently and written to its own slot, so the result is
/// bit-identical for every thread count and every SIMD level.
DistanceMatrix pairwise_distances(std::span<const double> table,
                                  std::size_t rows, std::size_t cols,
                                  double trim_fraction = 0.2);

/// Fills `out[0..cols)` with row `row` of the virtual latency table.
/// Must be safe to call concurrently from several pool workers (const
/// reads of the backing storage only).
using RowFiller = std::function<void(std::size_t row, double* out)>;

/// Block-streamed variant of pairwise_distances for tables that never exist
/// contiguously in memory (mmap spills, lazily reconstructed compact rows).
/// The upper triangle is tiled into `block_rows` x `block_rows` block pairs;
/// each pool worker stages the two blocks it needs into thread-local
/// buffers via `fill_row` and runs the exact same SIMD kernel path as the
/// one-shot function. Peak staging memory is 2 * block_rows * cols doubles
/// per worker regardless of `rows`.
///
/// Bit-identity: every (i, j) pair flows through fill_diffs/run_network/
/// reduce_mean in its own lane, and lanes never interact, so cell values do
/// not depend on how pairs are grouped into batches or blocks -- the result
/// matches pairwise_distances bit-for-bit for every block size, SIMD level
/// and thread count (tests/test_perf_kernel.cpp, tests/test_parallel.cpp).
/// `block_rows` of 0 means "whole matrix" (one block, one staging pass).
DistanceMatrix pairwise_distances_streamed(const RowFiller& fill_row,
                                           std::size_t rows, std::size_t cols,
                                           double trim_fraction = 0.2,
                                           std::size_t block_rows = 0);

/// Per-phase kernel timings for bench/perf_micro: median-free best-of-run
/// ns per pair for the |a-b| fill, the select phase, and the ascending-sum
/// reduce, at the active SIMD level. Both select strategies are timed each
/// run: select_ns_op is the strategy actually in effect (REPRO_SELECT,
/// default ranksel) and select_strategy names it; the per-strategy fields
/// let the bench line name the measured winner.
struct KernelPhaseProfile {
  std::string simd_level;
  std::string select_strategy;
  double diff_ns_op = 0.0;
  double select_ns_op = 0.0;
  double sum_ns_op = 0.0;
  double select_ranksel_ns_op = 0.0;
  double select_network_ns_op = 0.0;
};

/// Times each kernel phase over `iterations` batched invocations on a
/// deterministic pseudo-random vector pair of length n. Requires n >= 1,
/// 0 <= trim_fraction < 1, iterations >= 1.
KernelPhaseProfile profile_kernel_phases(std::size_t n, double trim_fraction,
                                         std::size_t iterations);

}  // namespace repro
