// The latency-vector distance from Calder et al. (IMC '13), used by the
// paper's clustering: for a pair of IPs, exclude the 20% of vantage points
// with the largest latency discrepancy between the two, then take the
// normalized Manhattan distance over the rest.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"

namespace repro {

/// Normalized trimmed Manhattan distance between two equally-sized latency
/// vectors: mean |a_i - b_i| after discarding the `trim_fraction` largest
/// absolute differences. Requires equal non-zero sizes and
/// 0 <= trim_fraction < 1.
double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction = 0.2);

/// Scratch-buffer variant for hot loops: identical result bit-for-bit, but
/// the per-pair difference buffer lives in `scratch` (resized as needed), so
/// a caller that reuses one scratch vector per thread pays no allocation per
/// pair. The inner kernel is branch-light (no per-element conditionals) so
/// the compiler can vectorize the |a_i - b_i| pass and the partial sums.
double trimmed_manhattan(std::span<const double> a, std::span<const double> b,
                         double trim_fraction, std::vector<double>& scratch);

/// Dense symmetric distance matrix.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double value);

 private:
  std::size_t n_;
  std::vector<double> values_;  // upper triangle, row-major
  std::size_t offset(std::size_t i, std::size_t j) const;
};

/// Builds the pairwise trimmed-Manhattan matrix over row vectors of a
/// row-major `rows x cols` latency table.
///
/// The upper triangle is sharded into row blocks and fanned across the
/// shared thread pool (default_thread_count() workers; REPRO_THREADS /
/// set_default_thread_count override, serial at 1 thread or when already
/// inside a parallel region). Each worker reuses one scratch buffer for the
/// whole shard. Every cell is computed independently and written to its own
/// slot, so the result is bit-identical for every thread count.
DistanceMatrix pairwise_distances(std::span<const double> table,
                                  std::size_t rows, std::size_t cols,
                                  double trim_fraction = 0.2);

}  // namespace repro
