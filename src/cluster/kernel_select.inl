// Select-phase interpreter shared by every kernel translation unit.
//
// Included once per TU, inside `namespace repro::cluster { namespace {`,
// after the TU defines its vector layer:
//
//   REPRO_SELECT_VEC          one scratch row's worth of lanes
//   REPRO_SELECT_LOAD(p)      aligned row load from double*
//   REPRO_SELECT_STORE(p, v)  aligned row store
//   REPRO_SELECT_MIN(x, y)    lane-wise min, SSE semantics (y < x ? y : x)
//   REPRO_SELECT_MAX(x, y)    lane-wise max, SSE semantics (y < x ? x : y)
//   REPRO_SELECT_INF          +inf broadcast expression
//
// The interpreter walks the run-length opcode stream of a SelectProgram
// (select_program.h): flat compare-exchange runs (full / min-only /
// max-only) go through memory; sort16 and merge16 tiles keep their 16 rows
// in registers for the whole Batcher sub-network, which needs the bodies
// to be fully unrolled with compile-time register names -- an indexed
// register array would spill to the stack. The comparator sequences are
// Batcher's odd-even sort of 16 and odd-even merge of a 16-chain, in
// generation order; tests replay the whole program against std::sort.

#define REPRO_TILE_CMP(x, y)                         \
  {                                                  \
    const REPRO_SELECT_VEC t_ = REPRO_SELECT_MIN(x, y); \
    y = REPRO_SELECT_MAX(x, y);                      \
    x = t_;                                          \
  }

// 63 comparators
#define REPRO_SORT16_BODY \
  REPRO_TILE_CMP(r0, r1) \
  REPRO_TILE_CMP(r2, r3) \
  REPRO_TILE_CMP(r0, r2) \
  REPRO_TILE_CMP(r1, r3) \
  REPRO_TILE_CMP(r1, r2) \
  REPRO_TILE_CMP(r4, r5) \
  REPRO_TILE_CMP(r6, r7) \
  REPRO_TILE_CMP(r4, r6) \
  REPRO_TILE_CMP(r5, r7) \
  REPRO_TILE_CMP(r5, r6) \
  REPRO_TILE_CMP(r0, r4) \
  REPRO_TILE_CMP(r2, r6) \
  REPRO_TILE_CMP(r2, r4) \
  REPRO_TILE_CMP(r1, r5) \
  REPRO_TILE_CMP(r3, r7) \
  REPRO_TILE_CMP(r3, r5) \
  REPRO_TILE_CMP(r1, r2) \
  REPRO_TILE_CMP(r3, r4) \
  REPRO_TILE_CMP(r5, r6) \
  REPRO_TILE_CMP(r8, r9) \
  REPRO_TILE_CMP(r10, r11) \
  REPRO_TILE_CMP(r8, r10) \
  REPRO_TILE_CMP(r9, r11) \
  REPRO_TILE_CMP(r9, r10) \
  REPRO_TILE_CMP(r12, r13) \
  REPRO_TILE_CMP(r14, r15) \
  REPRO_TILE_CMP(r12, r14) \
  REPRO_TILE_CMP(r13, r15) \
  REPRO_TILE_CMP(r13, r14) \
  REPRO_TILE_CMP(r8, r12) \
  REPRO_TILE_CMP(r10, r14) \
  REPRO_TILE_CMP(r10, r12) \
  REPRO_TILE_CMP(r9, r13) \
  REPRO_TILE_CMP(r11, r15) \
  REPRO_TILE_CMP(r11, r13) \
  REPRO_TILE_CMP(r9, r10) \
  REPRO_TILE_CMP(r11, r12) \
  REPRO_TILE_CMP(r13, r14) \
  REPRO_TILE_CMP(r0, r8) \
  REPRO_TILE_CMP(r4, r12) \
  REPRO_TILE_CMP(r4, r8) \
  REPRO_TILE_CMP(r2, r10) \
  REPRO_TILE_CMP(r6, r14) \
  REPRO_TILE_CMP(r6, r10) \
  REPRO_TILE_CMP(r2, r4) \
  REPRO_TILE_CMP(r6, r8) \
  REPRO_TILE_CMP(r10, r12) \
  REPRO_TILE_CMP(r1, r9) \
  REPRO_TILE_CMP(r5, r13) \
  REPRO_TILE_CMP(r5, r9) \
  REPRO_TILE_CMP(r3, r11) \
  REPRO_TILE_CMP(r7, r15) \
  REPRO_TILE_CMP(r7, r11) \
  REPRO_TILE_CMP(r3, r5) \
  REPRO_TILE_CMP(r7, r9) \
  REPRO_TILE_CMP(r11, r13) \
  REPRO_TILE_CMP(r1, r2) \
  REPRO_TILE_CMP(r3, r4) \
  REPRO_TILE_CMP(r5, r6) \
  REPRO_TILE_CMP(r7, r8) \
  REPRO_TILE_CMP(r9, r10) \
  REPRO_TILE_CMP(r11, r12) \
  REPRO_TILE_CMP(r13, r14)

// 25 comparators
#define REPRO_MERGE16_BODY \
  REPRO_TILE_CMP(r0, r8) \
  REPRO_TILE_CMP(r4, r12) \
  REPRO_TILE_CMP(r4, r8) \
  REPRO_TILE_CMP(r2, r10) \
  REPRO_TILE_CMP(r6, r14) \
  REPRO_TILE_CMP(r6, r10) \
  REPRO_TILE_CMP(r2, r4) \
  REPRO_TILE_CMP(r6, r8) \
  REPRO_TILE_CMP(r10, r12) \
  REPRO_TILE_CMP(r1, r9) \
  REPRO_TILE_CMP(r5, r13) \
  REPRO_TILE_CMP(r5, r9) \
  REPRO_TILE_CMP(r3, r11) \
  REPRO_TILE_CMP(r7, r15) \
  REPRO_TILE_CMP(r7, r11) \
  REPRO_TILE_CMP(r3, r5) \
  REPRO_TILE_CMP(r7, r9) \
  REPRO_TILE_CMP(r11, r13) \
  REPRO_TILE_CMP(r1, r2) \
  REPRO_TILE_CMP(r3, r4) \
  REPRO_TILE_CMP(r5, r6) \
  REPRO_TILE_CMP(r7, r8) \
  REPRO_TILE_CMP(r9, r10) \
  REPRO_TILE_CMP(r11, r12) \
  REPRO_TILE_CMP(r13, r14)


/// Loads up to `count` rows (the rest pad with +inf, which a Batcher
/// network provably never moves below a real value), sorts all 16 in
/// registers, stores the live rows back.
inline void select_sort16_tile(char* base, const std::uint32_t* offs,
                               std::uint32_t count) {
  const REPRO_SELECT_VEC inf_ = REPRO_SELECT_INF;
  REPRO_SELECT_VEC r0 = inf_, r1 = inf_, r2 = inf_, r3 = inf_, r4 = inf_,
                   r5 = inf_, r6 = inf_, r7 = inf_, r8 = inf_, r9 = inf_,
                   r10 = inf_, r11 = inf_, r12 = inf_, r13 = inf_, r14 = inf_,
                   r15 = inf_;
#define REPRO_TILE_LOAD(k) \
  r##k = REPRO_SELECT_LOAD(reinterpret_cast<double*>(base + offs[k]));
  switch (count) {
    case 16: REPRO_TILE_LOAD(15) [[fallthrough]];
    case 15: REPRO_TILE_LOAD(14) [[fallthrough]];
    case 14: REPRO_TILE_LOAD(13) [[fallthrough]];
    case 13: REPRO_TILE_LOAD(12) [[fallthrough]];
    case 12: REPRO_TILE_LOAD(11) [[fallthrough]];
    case 11: REPRO_TILE_LOAD(10) [[fallthrough]];
    case 10: REPRO_TILE_LOAD(9) [[fallthrough]];
    case 9: REPRO_TILE_LOAD(8) [[fallthrough]];
    case 8: REPRO_TILE_LOAD(7) [[fallthrough]];
    case 7: REPRO_TILE_LOAD(6) [[fallthrough]];
    case 6: REPRO_TILE_LOAD(5) [[fallthrough]];
    case 5: REPRO_TILE_LOAD(4) [[fallthrough]];
    case 4: REPRO_TILE_LOAD(3) [[fallthrough]];
    case 3: REPRO_TILE_LOAD(2) [[fallthrough]];
    case 2: REPRO_TILE_LOAD(1) [[fallthrough]];
    default: REPRO_TILE_LOAD(0)
  }
#undef REPRO_TILE_LOAD
  REPRO_SORT16_BODY
#define REPRO_TILE_STORE(k) \
  REPRO_SELECT_STORE(reinterpret_cast<double*>(base + offs[k]), r##k);
  switch (count) {
    case 16: REPRO_TILE_STORE(15) [[fallthrough]];
    case 15: REPRO_TILE_STORE(14) [[fallthrough]];
    case 14: REPRO_TILE_STORE(13) [[fallthrough]];
    case 13: REPRO_TILE_STORE(12) [[fallthrough]];
    case 12: REPRO_TILE_STORE(11) [[fallthrough]];
    case 11: REPRO_TILE_STORE(10) [[fallthrough]];
    case 10: REPRO_TILE_STORE(9) [[fallthrough]];
    case 9: REPRO_TILE_STORE(8) [[fallthrough]];
    case 8: REPRO_TILE_STORE(7) [[fallthrough]];
    case 7: REPRO_TILE_STORE(6) [[fallthrough]];
    case 6: REPRO_TILE_STORE(5) [[fallthrough]];
    case 5: REPRO_TILE_STORE(4) [[fallthrough]];
    case 4: REPRO_TILE_STORE(3) [[fallthrough]];
    case 3: REPRO_TILE_STORE(2) [[fallthrough]];
    case 2: REPRO_TILE_STORE(1) [[fallthrough]];
    default: REPRO_TILE_STORE(0)
  }
#undef REPRO_TILE_STORE
}

/// Odd-even merge of a 16-row chain, all rows live, fully in registers.
inline void select_merge16_tile(char* base, const std::uint32_t* offs) {
#define REPRO_TILE_LOAD(k) \
  REPRO_SELECT_VEC r##k = \
      REPRO_SELECT_LOAD(reinterpret_cast<double*>(base + offs[k]));
  REPRO_TILE_LOAD(0) REPRO_TILE_LOAD(1) REPRO_TILE_LOAD(2) REPRO_TILE_LOAD(3)
  REPRO_TILE_LOAD(4) REPRO_TILE_LOAD(5) REPRO_TILE_LOAD(6) REPRO_TILE_LOAD(7)
  REPRO_TILE_LOAD(8) REPRO_TILE_LOAD(9) REPRO_TILE_LOAD(10)
  REPRO_TILE_LOAD(11) REPRO_TILE_LOAD(12) REPRO_TILE_LOAD(13)
  REPRO_TILE_LOAD(14) REPRO_TILE_LOAD(15)
#undef REPRO_TILE_LOAD
  REPRO_MERGE16_BODY
#define REPRO_TILE_STORE(k) \
  REPRO_SELECT_STORE(reinterpret_cast<double*>(base + offs[k]), r##k);
  REPRO_TILE_STORE(0) REPRO_TILE_STORE(1) REPRO_TILE_STORE(2)
  REPRO_TILE_STORE(3) REPRO_TILE_STORE(4) REPRO_TILE_STORE(5)
  REPRO_TILE_STORE(6) REPRO_TILE_STORE(7) REPRO_TILE_STORE(8)
  REPRO_TILE_STORE(9) REPRO_TILE_STORE(10) REPRO_TILE_STORE(11)
  REPRO_TILE_STORE(12) REPRO_TILE_STORE(13) REPRO_TILE_STORE(14)
  REPRO_TILE_STORE(15)
#undef REPRO_TILE_STORE
}

void run_select(double* scratch, const std::uint32_t* code,
                std::size_t code_len) {
  char* base = reinterpret_cast<char*>(scratch);
  const std::uint32_t* pc = code;
  const std::uint32_t* const end = code + code_len;
  while (pc < end) {
    switch (*pc++) {
      case kSelectFlat: {
        std::uint32_t count = *pc++;
        for (; count > 0; --count, pc += 2) {
          double* lo = reinterpret_cast<double*>(base + pc[0]);
          double* hi = reinterpret_cast<double*>(base + pc[1]);
          const REPRO_SELECT_VEC x = REPRO_SELECT_LOAD(lo);
          const REPRO_SELECT_VEC y = REPRO_SELECT_LOAD(hi);
          REPRO_SELECT_STORE(lo, REPRO_SELECT_MIN(x, y));
          REPRO_SELECT_STORE(hi, REPRO_SELECT_MAX(x, y));
        }
        break;
      }
      case kSelectFlatMin: {
        // The max output is dead past the rank boundary: one store, and the
        // high row keeps its stale value that nothing reads again.
        std::uint32_t count = *pc++;
        for (; count > 0; --count, pc += 2) {
          double* lo = reinterpret_cast<double*>(base + pc[0]);
          const double* hi = reinterpret_cast<const double*>(base + pc[1]);
          const REPRO_SELECT_VEC x = REPRO_SELECT_LOAD(lo);
          const REPRO_SELECT_VEC y = REPRO_SELECT_LOAD(hi);
          REPRO_SELECT_STORE(lo, REPRO_SELECT_MIN(x, y));
        }
        break;
      }
      case kSelectFlatMax: {
        std::uint32_t count = *pc++;
        for (; count > 0; --count, pc += 2) {
          const double* lo = reinterpret_cast<const double*>(base + pc[0]);
          double* hi = reinterpret_cast<double*>(base + pc[1]);
          const REPRO_SELECT_VEC x = REPRO_SELECT_LOAD(lo);
          const REPRO_SELECT_VEC y = REPRO_SELECT_LOAD(hi);
          REPRO_SELECT_STORE(hi, REPRO_SELECT_MAX(x, y));
        }
        break;
      }
      case kSelectSort16: {
        const std::uint32_t count = *pc++;
        select_sort16_tile(base, pc, count);
        pc += 16;
        break;
      }
      default: {
        select_merge16_tile(base, pc);
        pc += 16;
        break;
      }
    }
  }
}

#undef REPRO_TILE_CMP
#undef REPRO_SORT16_BODY
#undef REPRO_MERGE16_BODY
