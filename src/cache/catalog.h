// Content catalogs: what an offnet cache is asked to serve. The paper takes
// per-hypergiant cache efficiencies as given (Google 80%, Netflix 95%, Meta
// 86%, Akamai 75%); this module derives them mechanistically from catalog
// shape (size, popularity skew, churn) and cache capacity, so the constants
// can be ablated instead of assumed.
#pragma once

#include <cstdint>
#include <string_view>

#include "hypergiant/profile.h"
#include "util/rng.h"

namespace repro {

/// A content object id; objects are dense [0, size).
using ObjectId = std::uint64_t;

/// Statistical description of a service's content catalog.
struct CatalogProfile {
  /// Number of distinct objects in rotation.
  std::uint64_t object_count = 1'000'000;
  /// Zipf popularity exponent (video catalogs are highly skewed).
  double zipf_exponent = 1.0;
  /// Mean object size in megabytes (controls how many objects fit a cache).
  double mean_object_mb = 20.0;
  /// Fraction of requests that go to brand-new (never-cached) objects:
  /// live/ephemeral content and catalog churn; these cannot hit.
  double uncacheable_fraction = 0.02;
};

/// Per-hypergiant catalog profiles, qualitatively calibrated:
///   * Netflix: small curated catalog, extreme skew -> ~95% cacheable.
///   * Google/YouTube: enormous long-tailed catalog -> ~80%.
///   * Meta: large media pool, heavy churn -> ~86%.
///   * Akamai: multi-tenant mix, weakest locality -> ~75%.
const CatalogProfile& catalog_profile(Hypergiant hg) noexcept;

/// A sampled request stream over a catalog.
class RequestStream {
 public:
  RequestStream(const CatalogProfile& profile, std::uint64_t seed);

  /// Next requested object. Ids >= profile.object_count denote uncacheable
  /// one-off objects (each id unique).
  ObjectId next();

  const CatalogProfile& profile() const noexcept { return profile_; }

 private:
  CatalogProfile profile_;
  ZipfSampler zipf_;
  Rng rng_;
  ObjectId next_ephemeral_;
};

}  // namespace repro
