#include "cache/lru.h"

namespace repro {

LruCache::LruCache(double capacity_mb) : capacity_mb_(capacity_mb) {
  require(capacity_mb > 0.0, "LruCache: capacity must be positive");
}

bool LruCache::contains(ObjectId object) const noexcept {
  return index_.contains(object);
}

void LruCache::evict_to_fit(double incoming_mb) {
  while (used_mb_ + incoming_mb > capacity_mb_ && !recency_.empty()) {
    const Entry& victim = recency_.back();
    used_mb_ -= victim.size_mb;
    index_.erase(victim.object);
    recency_.pop_back();
  }
}

bool LruCache::access(ObjectId object, double size_mb) {
  require(size_mb >= 0.0, "LruCache: negative object size");
  const auto it = index_.find(object);
  if (it != index_.end()) {
    ++hits_;
    recency_.splice(recency_.begin(), recency_, it->second);
    return true;
  }
  ++misses_;
  if (size_mb > capacity_mb_) return false;  // never admissible
  evict_to_fit(size_mb);
  recency_.push_front(Entry{object, size_mb});
  index_[object] = recency_.begin();
  used_mb_ += size_mb;
  return false;
}

void LruCache::reset() {
  recency_.clear();
  index_.clear();
  used_mb_ = 0.0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace repro
