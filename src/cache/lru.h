// A byte-capacity LRU object cache: hash map into an intrusive recency list.
// O(1) lookup/insert/evict.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/catalog.h"
#include "util/error.h"

namespace repro {

class LruCache {
 public:
  /// Capacity in megabytes. Objects larger than the capacity are never
  /// admitted.
  explicit LruCache(double capacity_mb);

  /// Looks up `object`; on miss, admits it with `size_mb`, evicting LRU
  /// entries as needed. Returns true on hit.
  bool access(ObjectId object, double size_mb);

  /// True if the object is currently cached (no recency update).
  bool contains(ObjectId object) const noexcept;

  std::size_t object_count() const noexcept { return index_.size(); }
  double used_mb() const noexcept { return used_mb_; }
  double capacity_mb() const noexcept { return capacity_mb_; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Clears contents and statistics.
  void reset();

 private:
  struct Entry {
    ObjectId object;
    double size_mb;
  };

  void evict_to_fit(double incoming_mb);

  double capacity_mb_;
  double used_mb_ = 0.0;
  std::list<Entry> recency_;  // front = most recent
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace repro
