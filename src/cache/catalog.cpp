#include "cache/catalog.h"

#include <array>

#include "util/error.h"

namespace repro {

namespace {

// Qualitative catalog shapes; the reference cache sizes in simulator.cpp are
// calibrated against these to land near the paper's efficiency constants.
constexpr std::array<CatalogProfile, kHypergiantCount> kProfiles = {{
    // Google/YouTube: enormous long tail.
    {3'000'000, 1.05, 30.0, 0.05},
    // Netflix: small curated catalog, extreme skew.
    {60'000, 1.22, 200.0, 0.01},
    // Meta: large media pool, heavy churn.
    {1'500'000, 1.18, 5.0, 0.08},
    // Akamai: multi-tenant mix, weakest locality.
    {2'500'000, 1.02, 10.0, 0.08},
}};

}  // namespace

const CatalogProfile& catalog_profile(Hypergiant hg) noexcept {
  return kProfiles[static_cast<std::size_t>(hg)];
}

RequestStream::RequestStream(const CatalogProfile& profile, std::uint64_t seed)
    : profile_(profile),
      zipf_(profile.object_count, profile.zipf_exponent),
      rng_(seed),
      next_ephemeral_(profile.object_count) {
  require(profile_.object_count >= 1, "RequestStream: empty catalog");
  require(profile_.uncacheable_fraction >= 0.0 &&
              profile_.uncacheable_fraction < 1.0,
          "RequestStream: bad uncacheable fraction");
}

ObjectId RequestStream::next() {
  if (rng_.chance(profile_.uncacheable_fraction)) return next_ephemeral_++;
  return zipf_.sample(rng_) - 1;  // ranks are 1-based
}

}  // namespace repro
