#include "cache/simulator.h"

#include <array>
#include <cmath>

#include "util/error.h"

namespace repro {

namespace {

// Reference capacities (MB); tuned against the catalog profiles so that the
// simulated steady-state hit rates approximate the paper's constants.
constexpr std::array<double, kHypergiantCount> kReferenceMb = {
    12'000'000.0,  // Google: 12 TB of a 90 TB-equivalent long-tail catalog
    6'000'000.0,   // Netflix: 6 TB vs a 12 TB curated catalog
    2'500'000.0,   // Meta: 2.5 TB of hot media
    4'000'000.0,   // Akamai: 4 TB multi-tenant
};

/// Deterministic per-object size: mean * lognormal(0, sigma), keyed by the
/// object id so repeated requests agree on the size.
double object_size_mb(ObjectId object, double mean_mb, double sigma,
                      std::uint64_t seed) {
  double u1 = static_cast<double>(mix64(object ^ seed) >> 11) * 0x1.0p-53;
  const double u2 =
      static_cast<double>(mix64(object * 31 + seed) >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  return mean_mb * std::exp(sigma * z);
}

}  // namespace

double reference_cache_mb(Hypergiant hg) noexcept {
  return kReferenceMb[static_cast<std::size_t>(hg)];
}

CacheSimResult simulate_cache(Hypergiant hg, double capacity_mb,
                              const CacheSimConfig& config) {
  require(capacity_mb > 0.0, "simulate_cache: capacity must be positive");
  require(config.measured_requests > 0, "simulate_cache: nothing to measure");

  const CatalogProfile& profile = catalog_profile(hg);
  RequestStream stream(profile, config.seed);
  LruCache cache(capacity_mb);

  for (std::uint64_t i = 0; i < config.warmup_requests; ++i) {
    const ObjectId object = stream.next();
    cache.access(object, object_size_mb(object, profile.mean_object_mb,
                                        config.size_sigma, config.seed));
  }

  CacheSimResult result;
  double hit_mb = 0.0;
  double total_mb = 0.0;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < config.measured_requests; ++i) {
    const ObjectId object = stream.next();
    const double size = object_size_mb(object, profile.mean_object_mb,
                                       config.size_sigma, config.seed);
    const bool hit = cache.access(object, size);
    hits += hit ? 1 : 0;
    hit_mb += hit ? size : 0.0;
    total_mb += size;
  }
  result.requests = config.measured_requests;
  result.hit_rate = static_cast<double>(hits) / config.measured_requests;
  result.byte_hit_rate = total_mb > 0.0 ? hit_mb / total_mb : 0.0;
  result.cache_used_mb = cache.used_mb();
  result.cached_objects = cache.object_count();
  return result;
}

std::vector<std::pair<double, CacheSimResult>> hit_rate_curve(
    Hypergiant hg, std::span<const double> capacities_mb,
    const CacheSimConfig& config) {
  std::vector<std::pair<double, CacheSimResult>> curve;
  curve.reserve(capacities_mb.size());
  for (const double capacity : capacities_mb) {
    curve.emplace_back(capacity, simulate_cache(hg, capacity, config));
  }
  return curve;
}

}  // namespace repro
