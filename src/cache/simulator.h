// Offnet cache simulation: drive an LRU cache with a catalog request stream
// and measure the steady-state hit rate -- the mechanistic version of the
// paper's "% of the hypergiant's traffic an offnet can serve".
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cache/lru.h"

namespace repro {

struct CacheSimConfig {
  std::uint64_t seed = 4096;
  /// Requests used to warm the cache before measuring.
  std::uint64_t warmup_requests = 1'200'000;
  /// Requests measured for the steady-state hit rate.
  std::uint64_t measured_requests = 400'000;
  /// Per-object size jitter: size = mean * lognormal(0, sigma).
  double size_sigma = 0.5;
};

/// Reference deployed cache capacity (MB) of one offnet deployment of `hg`
/// -- calibrated so the simulated hit rates land near the paper's Section
/// 2.1 efficiencies (Google 80%, Netflix 95%, Meta 86%, Akamai 75%).
double reference_cache_mb(Hypergiant hg) noexcept;

struct CacheSimResult {
  double hit_rate = 0.0;        // fraction of measured requests served
  double byte_hit_rate = 0.0;   // fraction of measured megabytes served
  std::uint64_t requests = 0;
  double cache_used_mb = 0.0;
  std::size_t cached_objects = 0;
};

/// Simulates one cache of `capacity_mb` against `hg`'s catalog.
CacheSimResult simulate_cache(Hypergiant hg, double capacity_mb,
                              const CacheSimConfig& config = {});

/// Full hit-rate curve: one simulation per capacity point.
std::vector<std::pair<double, CacheSimResult>> hit_rate_curve(
    Hypergiant hg, std::span<const double> capacities_mb,
    const CacheSimConfig& config = {});

}  // namespace repro
