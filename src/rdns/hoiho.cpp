#include "rdns/hoiho.h"

#include "rdns/ptr_store.h"
#include "util/strings.h"

namespace repro {

Hoiho::Hoiho(const Internet& internet) {
  for (const Metro& metro : internet.metros) {
    dictionary_[metro.iata] = Entry{metro.index, metro.location, false, false};
    // The alternate code points ~30 km off the metro center (a suburb).
    const GeoPoint suburb = jitter_point(metro.location, 30.0, 0.81, 0.37);
    dictionary_[metro_alias_code(metro.iata)] =
        Entry{metro.index, suburb, true, false};
  }
  // Misinterpretation defect: a common hostname word that looks like a
  // location code (the paper's example: "host" interpreted as Hostert, LU).
  const GeoPoint hostert{49.75, 6.08};
  dictionary_["host"] = Entry{kInvalidIndex, hostert, false, true};
}

std::optional<Geohint> Hoiho::extract(const std::string& hostname) const {
  // Tokens are separated by '-' and '.'.
  std::string token;
  const auto flush = [&]() -> std::optional<Geohint> {
    if (token.empty()) return std::nullopt;
    const auto it = dictionary_.find(to_lower(token));
    token.clear();
    if (it == dictionary_.end()) return std::nullopt;
    return Geohint{it->second.metro, it->second.location, it->first,
                   it->second.suburb};
  };
  for (const char c : hostname) {
    if (c == '-' || c == '.') {
      if (auto hint = flush()) return hint;
    } else {
      token.push_back(c);
    }
  }
  return flush();
}

void Hoiho::apply_manual_corrections() {
  std::erase_if(dictionary_,
                [](const auto& item) { return item.second.ambiguous; });
}

}  // namespace repro
