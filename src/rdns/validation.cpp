#include "rdns/validation.h"

#include <map>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro {

namespace {

ClusterGeoConsistency classify(const Internet& internet,
                               const std::vector<Geohint>& hints) {
  // Same token (or same metro with no suburb involvement) => one city.
  std::set<std::string> tokens;
  for (const auto& hint : hints) tokens.insert(hint.token);
  if (tokens.size() == 1) return ClusterGeoConsistency::kSingleCity;

  // All pairwise locations close => one metropolitan area.
  bool all_close = true;
  for (std::size_t i = 0; i < hints.size() && all_close; ++i) {
    for (std::size_t j = i + 1; j < hints.size() && all_close; ++j) {
      all_close = haversine_km(hints[i].location, hints[j].location) <=
                  kMetroAreaRadiusKm;
    }
  }
  if (all_close) return ClusterGeoConsistency::kSingleMetroArea;

  // One country?
  std::set<CountryIndex> countries;
  bool unknown_metro = false;
  for (const auto& hint : hints) {
    if (hint.metro == kInvalidIndex) {
      unknown_metro = true;
      continue;
    }
    countries.insert(internet.metros[hint.metro].country);
  }
  if (!unknown_metro && countries.size() <= 1) {
    return ClusterGeoConsistency::kMultiCitySameCountry;
  }
  return ClusterGeoConsistency::kMultiCountry;
}

}  // namespace

ValidationSummary validate_clusters(
    const Internet& internet, const OffnetRegistry& registry,
    const std::vector<IspClustering>& clusterings, const PtrStore& ptr,
    const Hoiho& hoiho) {
  obs::ScopedSpan span("rdns.validate_clusters");
  static obs::CachedCounter validated_counter("rdns.clusters_validated");
  static obs::CachedCounter hints_counter("rdns.hints_extracted");
  ValidationSummary summary;
  for (const IspClustering& clustering : clusterings) {
    if (!clustering.usable) continue;
    // Hints per cluster label.
    std::map<int, std::vector<Geohint>> hints_by_cluster;
    std::set<int> labels_seen;
    for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
      const int label = clustering.labels[i];
      if (label < 0) continue;
      labels_seen.insert(label);
      ++summary.members_examined;
      const Ipv4 ip = registry.servers()[clustering.registry_indices[i]].ip;
      const auto hostname = ptr.lookup(ip);
      if (!hostname) continue;
      const auto hint = hoiho.extract(*hostname);
      if (!hint) continue;
      ++summary.hints_extracted;
      hints_by_cluster[label].push_back(*hint);
    }
    summary.clusters_total += labels_seen.size();
    for (const auto& [label, hints] : hints_by_cluster) {
      (void)label;
      if (hints.size() < 2) continue;
      ++summary.clusters_with_hints;
      switch (classify(internet, hints)) {
        case ClusterGeoConsistency::kSingleCity: ++summary.single_city; break;
        case ClusterGeoConsistency::kSingleMetroArea:
          ++summary.single_metro_area;
          break;
        case ClusterGeoConsistency::kMultiCitySameCountry:
          ++summary.multi_city_same_country;
          break;
        case ClusterGeoConsistency::kMultiCountry:
          ++summary.multi_country;
          break;
      }
    }
  }
  validated_counter.add(summary.clusters_with_hints);
  hints_counter.add(summary.hints_extracted);
  return summary;
}

}  // namespace repro
