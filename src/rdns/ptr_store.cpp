#include "rdns/ptr_store.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/strings.h"

namespace repro {

namespace {

std::string_view hg_tag(Hypergiant hg) noexcept {
  switch (hg) {
    case Hypergiant::kGoogle: return "ggc";
    case Hypergiant::kNetflix: return "oca";
    case Hypergiant::kMeta: return "fna";
    case Hypergiant::kAkamai: return "aka";
  }
  return "cdn";
}

// Fault hash-stream salts, independent of each other and of the synthesis
// Rng (which is keyed on PtrConfig::seed, not fault_seed).
constexpr std::uint64_t kMissingPtrSalt = 0x9199;
constexpr std::uint64_t kStalePtrSalt = 0x57A1;
constexpr std::uint64_t kGarblePtrSalt = 0x6B1D;

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

std::uint64_t ip_key(Ipv4 ip, std::uint64_t seed, std::uint64_t salt) noexcept {
  return mix64((std::uint64_t{ip.value()} << 8) ^ seed ^ salt);
}

/// Encoding-damaged hostname: full tokens of hex junk, so HOIHO's
/// whole-token dictionary can never read a location out of it.
std::string garbled_hostname(Ipv4 ip, std::uint64_t seed,
                             const std::string& domain) {
  char junk[32];
  std::snprintf(junk, sizeof(junk), "x%016llx",
                static_cast<unsigned long long>(
                    mix64(ip.value() ^ seed ^ kGarblePtrSalt)));
  return std::string(junk) + "." + domain;
}

}  // namespace

std::string metro_alias_code(const std::string& iata) {
  // A distinct 4-character namespace so aliases never collide with another
  // metro's main code.
  return iata + "2";
}

PtrStore PtrStore::build(const Internet& internet, const OffnetRegistry& registry,
                         const PtrConfig& config, PtrFaultCounts* faults) {
  obs::ScopedSpan span("rdns.build_ptr_store");
  static obs::CachedCounter records_counter("rdns.records");
  static obs::CachedCounter missing_counter("rdns.missing_ptr");
  static obs::CachedCounter stale_counter("rdns.stale_ptr");
  static obs::CachedCounter garbled_counter("rdns.garbled_ptr");
  PtrFaultCounts counts;
  PtrStore store;
  for (const OffnetServer& server : registry.servers()) {
    Rng rng(mix64(config.seed ^ (std::uint64_t{server.ip.value()} << 13)));
    if (!rng.chance(config.coverage)) continue;

    if (config.missing_ptr_rate > 0.0 &&
        hash_uniform(ip_key(server.ip, config.fault_seed, kMissingPtrSalt)) <
            config.missing_ptr_rate) {
      ++counts.missing;  // the zone withdrew this record mid-snapshot
      continue;
    }

    const As& isp = internet.ases[server.isp];
    const std::string domain = "as" + std::to_string(isp.asn) + ".example.net";
    const std::string host_id = std::to_string(server.ip.value() & 0xffff);

    const bool garbled =
        config.garbled_ptr_rate > 0.0 &&
        hash_uniform(ip_key(server.ip, config.fault_seed, kGarblePtrSalt)) <
            config.garbled_ptr_rate;

    if (rng.chance(config.generic_rate)) {
      // Generic name, no usable location information. "host-" names are the
      // trap HOIHO misreads as Hostert, LU before manual correction.
      static constexpr const char* kGenericPrefixes[] = {"static", "host",
                                                         "pool", "dyn"};
      const auto prefix = kGenericPrefixes[rng.uniform_int(0, 3)];
      std::string name = std::string(prefix) + "-" + host_id + "." + domain;
      if (garbled) {
        name = garbled_hostname(server.ip, config.fault_seed, domain);
        ++counts.garbled;
      }
      store.records_.emplace(server.ip, std::move(name));
      continue;
    }

    const Metro& true_metro =
        internet.metros[internet.facilities[server.facility].metro];
    std::string code = true_metro.iata;
    if (rng.chance(config.wrong_location_rate)) {
      // Stale record: the code of a random other metro.
      const auto other = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(internet.metros.size()) - 1));
      code = internet.metros[other].iata;
    } else if (rng.chance(config.alias_rate)) {
      code = metro_alias_code(true_metro.iata);
    }
    // Injected staleness rides on top of the baseline defects: the record
    // still names the metro this server occupied before a migration. Applied
    // after every Rng draw so the synthesis stream is untouched.
    if (!garbled && config.stale_ptr_rate > 0.0 && internet.metros.size() > 1 &&
        hash_uniform(ip_key(server.ip, config.fault_seed, kStalePtrSalt)) <
            config.stale_ptr_rate) {
      const std::size_t step =
          1 + mix64(ip_key(server.ip, config.fault_seed, kStalePtrSalt) ^
                    0x1DULL) %
                  (internet.metros.size() - 1);
      code = internet.metros[(true_metro.index + step) % internet.metros.size()]
                 .iata;
      ++counts.stale;
    }

    std::string name = "cache-" + std::string(hg_tag(server.hg)) + "-" + code +
                       "-" + host_id + "." + domain;
    if (garbled) {
      name = garbled_hostname(server.ip, config.fault_seed, domain);
      ++counts.garbled;
    }
    store.records_.emplace(server.ip, std::move(name));
  }
  records_counter.add(store.records_.size());
  missing_counter.add(counts.missing);
  stale_counter.add(counts.stale);
  garbled_counter.add(counts.garbled);
  if (faults != nullptr) *faults = counts;
  return store;
}

std::optional<std::string> PtrStore::lookup(Ipv4 ip) const {
  const auto it = records_.find(ip);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

}  // namespace repro
