#include "rdns/ptr_store.h"

#include "util/rng.h"
#include "util/strings.h"

namespace repro {

namespace {

std::string_view hg_tag(Hypergiant hg) noexcept {
  switch (hg) {
    case Hypergiant::kGoogle: return "ggc";
    case Hypergiant::kNetflix: return "oca";
    case Hypergiant::kMeta: return "fna";
    case Hypergiant::kAkamai: return "aka";
  }
  return "cdn";
}

}  // namespace

std::string metro_alias_code(const std::string& iata) {
  // A distinct 4-character namespace so aliases never collide with another
  // metro's main code.
  return iata + "2";
}

PtrStore PtrStore::build(const Internet& internet, const OffnetRegistry& registry,
                         const PtrConfig& config) {
  PtrStore store;
  for (const OffnetServer& server : registry.servers()) {
    Rng rng(mix64(config.seed ^ (std::uint64_t{server.ip.value()} << 13)));
    if (!rng.chance(config.coverage)) continue;

    const As& isp = internet.ases[server.isp];
    const std::string domain = "as" + std::to_string(isp.asn) + ".example.net";
    const std::string host_id = std::to_string(server.ip.value() & 0xffff);

    if (rng.chance(config.generic_rate)) {
      // Generic name, no usable location information. "host-" names are the
      // trap HOIHO misreads as Hostert, LU before manual correction.
      static constexpr const char* kGenericPrefixes[] = {"static", "host",
                                                         "pool", "dyn"};
      const auto prefix = kGenericPrefixes[rng.uniform_int(0, 3)];
      store.records_.emplace(server.ip,
                             std::string(prefix) + "-" + host_id + "." + domain);
      continue;
    }

    const Metro& true_metro =
        internet.metros[internet.facilities[server.facility].metro];
    std::string code = true_metro.iata;
    if (rng.chance(config.wrong_location_rate)) {
      // Stale record: the code of a random other metro.
      const auto other = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(internet.metros.size()) - 1));
      code = internet.metros[other].iata;
    } else if (rng.chance(config.alias_rate)) {
      code = metro_alias_code(true_metro.iata);
    }

    store.records_.emplace(server.ip, "cache-" + std::string(hg_tag(server.hg)) +
                                          "-" + code + "-" + host_id + "." +
                                          domain);
  }
  return store;
}

std::optional<std::string> PtrStore::lookup(Ipv4 ip) const {
  const auto it = records_.find(ip);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

}  // namespace repro
