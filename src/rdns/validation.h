// Cluster validation against rDNS location hints (Section 3.2, Validation):
// for clusters with two or more located hostnames, check whether all hints
// agree on one city, fall within one metropolitan area, or span cities.
#pragma once

#include <vector>

#include "cluster/colocation.h"
#include "rdns/hoiho.h"
#include "rdns/ptr_store.h"

namespace repro {

enum class ClusterGeoConsistency : std::uint8_t {
  kSingleCity,           // all hints name the same city
  kSingleMetroArea,      // multiple locations within one metropolitan area
  kMultiCitySameCountry, // different cities, one country
  kMultiCountry,         // different countries
};

struct ValidationSummary {
  std::size_t clusters_total = 0;           // clusters examined
  std::size_t clusters_with_hints = 0;      // >= 2 located hostnames
  std::size_t single_city = 0;
  std::size_t single_metro_area = 0;
  std::size_t multi_city_same_country = 0;
  std::size_t multi_country = 0;
  std::size_t members_examined = 0;         // clustered servers looked up
  std::size_t hints_extracted = 0;          // ...that yielded a location hint

  double consistent_fraction() const noexcept {
    return clusters_with_hints == 0
               ? 0.0
               : static_cast<double>(single_city + single_metro_area) /
                     static_cast<double>(clusters_with_hints);
  }

  /// Fraction of clustered servers whose PTR record yielded a usable
  /// location hint. Missing/generic/garbled records all lower it.
  double hint_coverage() const noexcept {
    return members_examined == 0
               ? 0.0
               : static_cast<double>(hints_extracted) /
                     static_cast<double>(members_examined);
  }

  /// How much the validation verdict should be trusted: agreement among the
  /// hints, discounted by how much of the population the hints cover. An
  /// rDNS snapshot that went mostly dark can still show perfect agreement
  /// on its survivors; the confidence stays low.
  double confidence() const noexcept {
    return consistent_fraction() * hint_coverage();
  }
};

/// Distance threshold under which distinct locations count as one
/// metropolitan area (the paper's "suburbs of London and Paris" cases).
inline constexpr double kMetroAreaRadiusKm = 80.0;

/// Validates the clusters of many ISPs' clusterings at once.
ValidationSummary validate_clusters(
    const Internet& internet, const OffnetRegistry& registry,
    const std::vector<IspClustering>& clusterings, const PtrStore& ptr,
    const Hoiho& hoiho);

}  // namespace repro
