// HOIHO-style geolocation from router/server hostnames (Luckie et al.,
// CoNEXT '21): a dictionary of location codes learned from hostnames, used
// to extract a location hint from a PTR name. The paper notes HOIHO
// occasionally misinterprets tokens (e.g. "host" as Hostert, LU) and that
// they manually corrected such cases -- we model both the defect and the
// correction.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "topology/internet.h"

namespace repro {

/// One extracted location hint.
struct Geohint {
  MetroIndex metro = kInvalidIndex;  // kInvalidIndex for bogus dictionary hits
  GeoPoint location;
  std::string token;   // the hostname token that matched
  bool suburb = false; // matched the metro's alternate (suburb) code
};

class Hoiho {
 public:
  /// Builds the dictionary from the world's metro codes (main + alias),
  /// plus deliberately ambiguous entries that collide with common hostname
  /// words (the misinterpretation defect).
  explicit Hoiho(const Internet& internet);

  /// Extracts a location from a hostname by scanning '-'/'.'-separated
  /// tokens against the dictionary. First match wins.
  std::optional<Geohint> extract(const std::string& hostname) const;

  /// Removes the ambiguous entries (the paper's manual correction step).
  void apply_manual_corrections();

  std::size_t dictionary_size() const noexcept { return dictionary_.size(); }

 private:
  struct Entry {
    MetroIndex metro = kInvalidIndex;
    GeoPoint location;
    bool suburb = false;
    bool ambiguous = false;  // a common-word collision, not a real code
  };
  std::unordered_map<std::string, Entry> dictionary_;
};

}  // namespace repro
