// Reverse-DNS synthesis (the paper uses Rapid7 Sonar PTR records): operator-
// style hostnames for a subset of offnet IPs, with location hints embedded
// as metro codes -- plus the real-world defects the paper reports: missing
// records, generic names without location, stale/wrong locations, and
// alternate codes for the same metro ("suburb" names).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "hypergiant/deployment.h"
#include "topology/internet.h"

namespace repro {

struct PtrConfig {
  std::uint64_t seed = 777;
  /// Fraction of offnet IPs with any PTR record at all.
  double coverage = 0.45;
  /// Among named IPs: fraction whose hostname carries no location token.
  double generic_rate = 0.35;
  /// Among located hostnames: fraction with a stale/wrong metro code.
  double wrong_location_rate = 0.008;
  /// Among located hostnames: fraction using the metro's alternate
  /// ("suburb") code instead of the main one.
  double alias_rate = 0.015;

  // rDNS snapshot faults (FaultPlan::rdns, folded in by apply_rdns_faults).
  // Drawn from stateless hashes on fault_seed -- never from the per-IP Rng
  // stream above -- so zero rates are bit-identical to a fault-free build.
  /// Seed for the fault hash streams.
  std::uint64_t fault_seed = 0;
  /// Among would-be records: fraction withdrawn entirely (zone outage).
  double missing_ptr_rate = 0.0;
  /// Among located hostnames: fraction naming the metro the server occupied
  /// before a migration (on top of the baseline wrong_location_rate).
  double stale_ptr_rate = 0.0;
  /// Among named IPs: fraction garbled in the snapshot -- the record exists
  /// but carries no extractable hint.
  double garbled_ptr_rate = 0.0;
};

/// What the fault knobs did to one build (ground truth for StageHealth).
struct PtrFaultCounts {
  std::size_t missing = 0;
  std::size_t stale = 0;
  std::size_t garbled = 0;
  std::size_t total() const noexcept { return missing + stale + garbled; }
};

/// IP -> PTR hostname map for the offnet population.
class PtrStore {
 public:
  /// Synthesizes PTR records for the registry's servers. Deterministic.
  static PtrStore build(const Internet& internet, const OffnetRegistry& registry,
                        const PtrConfig& config,
                        PtrFaultCounts* faults = nullptr);

  std::optional<std::string> lookup(Ipv4 ip) const;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<Ipv4, std::string> records_;
};

/// The alternate ("suburb") code of a metro: its IATA with the last letter
/// shifted, e.g. "usb" -> "usc". Shared between the PTR synthesizer and the
/// HOIHO dictionary builder.
std::string metro_alias_code(const std::string& iata);

}  // namespace repro
