// Reverse-DNS synthesis (the paper uses Rapid7 Sonar PTR records): operator-
// style hostnames for a subset of offnet IPs, with location hints embedded
// as metro codes -- plus the real-world defects the paper reports: missing
// records, generic names without location, stale/wrong locations, and
// alternate codes for the same metro ("suburb" names).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "hypergiant/deployment.h"
#include "topology/internet.h"

namespace repro {

struct PtrConfig {
  std::uint64_t seed = 777;
  /// Fraction of offnet IPs with any PTR record at all.
  double coverage = 0.45;
  /// Among named IPs: fraction whose hostname carries no location token.
  double generic_rate = 0.35;
  /// Among located hostnames: fraction with a stale/wrong metro code.
  double wrong_location_rate = 0.008;
  /// Among located hostnames: fraction using the metro's alternate
  /// ("suburb") code instead of the main one.
  double alias_rate = 0.015;
};

/// IP -> PTR hostname map for the offnet population.
class PtrStore {
 public:
  /// Synthesizes PTR records for the registry's servers. Deterministic.
  static PtrStore build(const Internet& internet, const OffnetRegistry& registry,
                        const PtrConfig& config);

  std::optional<std::string> lookup(Ipv4 ip) const;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<Ipv4, std::string> records_;
};

/// The alternate ("suburb") code of a metro: its IATA with the last letter
/// shifted, e.g. "usb" -> "usc". Shared between the PTR synthesizer and the
/// HOIHO dictionary builder.
std::string metro_alias_code(const std::string& iata);

}  // namespace repro
