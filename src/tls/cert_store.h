// The "state of port 443 on the IPv4 Internet" at one snapshot: a mapping
// from IP address to the certificate it serves. The scanner iterates it;
// the hypergiant deployment and the background-population synthesizer fill
// it in.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "ip/ipv4.h"
#include "tls/certificate.h"

namespace repro {

/// One TLS endpoint visible to the scanner.
struct TlsEndpoint {
  Ipv4 ip;
  TlsCertificate cert;
};

/// IP -> certificate map for one scan snapshot.
class CertStore {
 public:
  /// Installs (or replaces) the certificate served at `ip`.
  void install(Ipv4 ip, TlsCertificate cert);

  /// Removes the endpoint at `ip` (no-op if absent).
  void remove(Ipv4 ip) noexcept;

  /// Certificate served at `ip`, if any.
  std::optional<TlsCertificate> lookup(Ipv4 ip) const;

  bool contains(Ipv4 ip) const noexcept { return endpoints_.contains(ip); }

  std::size_t size() const noexcept { return endpoints_.size(); }

  /// All endpoints in ascending IP order (deterministic scan order).
  std::vector<TlsEndpoint> all_sorted() const;

 private:
  std::unordered_map<Ipv4, TlsCertificate> endpoints_;
};

}  // namespace repro
