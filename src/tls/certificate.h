// A simplified X.509 end-entity certificate: exactly the fields the offnet
// discovery methodology inspects (Subject CN/Organization, SAN dNSNames,
// Issuer), plus validity and serial for realism.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// Subject or issuer distinguished-name fields we model.
struct DistinguishedName {
  std::string common_name;    // CN
  std::string organization;   // O (may be empty; Google dropped it in 2023)
  std::string country;        // C

  bool operator==(const DistinguishedName&) const = default;
};

/// An end-entity TLS certificate as seen by an Internet-wide scanner.
struct TlsCertificate {
  DistinguishedName subject;
  DistinguishedName issuer;
  std::vector<std::string> san_dns;  // subjectAltName dNSName entries
  int not_before_year = 2020;
  int not_after_year = 2025;
  std::uint64_t serial = 0;

  /// True if `name_pattern` (glob, e.g. "*.fbcdn.net") matches the subject
  /// CN or any SAN entry.
  bool matches_name_glob(std::string_view name_pattern) const;

  /// True if the subject CN or any SAN entry equals `name` under TLS
  /// wildcard comparison rules (used by the 2021 exact-onnet-name check).
  bool has_exact_name(std::string_view name) const;

  bool operator==(const TlsCertificate&) const = default;
};

/// SHA-like stable fingerprint of the certificate contents (not
/// cryptographic; a deterministic 64-bit digest for dedup and logging).
std::uint64_t fingerprint(const TlsCertificate& cert) noexcept;

}  // namespace repro
