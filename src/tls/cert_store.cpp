#include "tls/cert_store.h"

#include <algorithm>

namespace repro {

void CertStore::install(Ipv4 ip, TlsCertificate cert) {
  endpoints_[ip] = std::move(cert);
}

void CertStore::remove(Ipv4 ip) noexcept { endpoints_.erase(ip); }

std::optional<TlsCertificate> CertStore::lookup(Ipv4 ip) const {
  const auto it = endpoints_.find(ip);
  if (it == endpoints_.end()) return std::nullopt;
  return it->second;
}

std::vector<TlsEndpoint> CertStore::all_sorted() const {
  std::vector<TlsEndpoint> out;
  out.reserve(endpoints_.size());
  for (const auto& [ip, cert] : endpoints_) out.push_back({ip, cert});
  std::sort(out.begin(), out.end(),
            [](const TlsEndpoint& a, const TlsEndpoint& b) { return a.ip < b.ip; });
  return out;
}

}  // namespace repro
