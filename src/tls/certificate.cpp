#include "tls/certificate.h"

#include "util/rng.h"
#include "util/strings.h"

namespace repro {

bool TlsCertificate::matches_name_glob(std::string_view name_pattern) const {
  if (glob_match(name_pattern, subject.common_name)) return true;
  for (const auto& san : san_dns) {
    if (glob_match(name_pattern, san)) return true;
  }
  return false;
}

bool TlsCertificate::has_exact_name(std::string_view name) const {
  if (to_lower(subject.common_name) == to_lower(name)) return true;
  for (const auto& san : san_dns) {
    if (to_lower(san) == to_lower(name)) return true;
  }
  return false;
}

std::uint64_t fingerprint(const TlsCertificate& cert) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  const auto fold = [&h](std::string_view text) {
    for (const char c : text) h = mix64(h ^ static_cast<std::uint64_t>(c));
    h = mix64(h ^ 0x1f);  // field separator
  };
  fold(cert.subject.common_name);
  fold(cert.subject.organization);
  fold(cert.subject.country);
  fold(cert.issuer.common_name);
  fold(cert.issuer.organization);
  for (const auto& san : cert.san_dns) fold(san);
  h = mix64(h ^ static_cast<std::uint64_t>(cert.not_before_year));
  h = mix64(h ^ static_cast<std::uint64_t>(cert.not_after_year));
  h = mix64(h ^ cert.serial);
  return h;
}

}  // namespace repro
