// Versioned binary serialization for the pipeline's heavy intermediates.
//
// The artifact store (artifact_store.h) persists four expensive artifact
// families across processes: scan-record vectors, TLS populations
// (CertStore), per-ISP ping-mesh latency matrices, and per-ISP clustering
// results. Each family has an explicit little-endian wire encoding and a
// per-type schema version (bump the constant whenever the struct or its
// encoding changes -- stale artifacts then miss instead of decoding
// garbage). Doubles travel as raw IEEE-754 bit patterns, so NaN markers
// (kNoMeasurement) and every last ulp survive the round trip: a warm start
// is bit-identical to a cold compute.
//
// Stage-health records ride along with each artifact so a warm run reports
// the same degraded/ok verdicts the cold run earned.
//
// See docs/PERSISTENCE.md for the format and versioning rules.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/colocation.h"
#include "fault/stage_health.h"
#include "mlab/ping_mesh.h"
#include "scan/scanner.h"
#include "tls/cert_store.h"
#include "topology/internet.h"
#include "util/error.h"

namespace repro::store {

/// Thrown by ByteReader on truncated or malformed input. The store treats
/// it as artifact corruption: recompute, never crash.
class SerdeError : public Error {
 public:
  explicit SerdeError(const std::string& what) : Error("serde: " + what) {}
};

// --- per-type schema versions (see docs/PERSISTENCE.md for bump rules) ---
inline constexpr std::uint32_t kScanRecordsSchema = 1;
inline constexpr std::uint32_t kPopulationSchema = 1;
inline constexpr std::uint32_t kLatencyMatrixSchema = 1;
// v2: the trimmed-Manhattan distance switched to the canonical
// ascending-order sum (docs/PERFORMANCE.md), changing clustering inputs in
// the last ulps; v1 artifacts would replay stdlib-dependent results.
inline constexpr std::uint32_t kClusteringSchema = 2;
inline constexpr std::uint32_t kInternetSchema = 1;
// Shard-transport payload of the multi-process clustering mode: per-ISP
// outcome slots plus the worker's domain-counter deltas (docs/SCALING.md).
inline constexpr std::uint32_t kClusterShardSchema = 1;

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  /// Raw IEEE-754 bit pattern (NaN-preserving).
  void f64(double value);
  /// u32 length prefix + raw bytes.
  void str(std::string_view value);

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a byte span. Every read throws
/// SerdeError once the input runs out.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t count) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// FNV-1a 64-bit hasher for artifact key derivation: mixes scalar config
/// fields, strings and doubles into one digest. Not cryptographic -- it only
/// needs to make distinct configurations land on distinct file names.
class Fnv1a {
 public:
  Fnv1a& mix(std::uint64_t value) noexcept;
  Fnv1a& mix(std::int64_t value) noexcept {
    return mix(static_cast<std::uint64_t>(value));
  }
  Fnv1a& mix(std::uint32_t value) noexcept {
    return mix(static_cast<std::uint64_t>(value));
  }
  Fnv1a& mix(int value) noexcept {
    return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  Fnv1a& mix(bool value) noexcept { return mix(std::uint64_t{value}); }
  /// Raw bit pattern, so -0.0 != +0.0 and NaNs mix deterministically.
  Fnv1a& mix(double value) noexcept;
  Fnv1a& mix(std::string_view value) noexcept;

  std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

// --- artifact encodings (encode appends to the writer; decode throws
// --- SerdeError on malformed input) ---

void encode(ByteWriter& out, const TlsCertificate& cert);
TlsCertificate decode_certificate(ByteReader& in);

void encode(ByteWriter& out, const std::vector<ScanRecord>& records);
std::vector<ScanRecord> decode_scan_records(ByteReader& in);

void encode(ByteWriter& out, const CertStore& population);
CertStore decode_population(ByteReader& in);

void encode(ByteWriter& out, const LatencyMatrix& matrix);
LatencyMatrix decode_latency_matrix(ByteReader& in);

void encode(ByteWriter& out, const IspClustering& clustering);
IspClustering decode_clustering(ByteReader& in);

void encode(ByteWriter& out, const std::vector<IspClustering>& clusterings);
std::vector<IspClustering> decode_clusterings(ByteReader& in);

void encode(ByteWriter& out, const fault::StageHealth& health);
fault::StageHealth decode_stage_health(ByteReader& in);

/// Full generated topology, for the warm-Internet artifact (keyed by
/// topology_digest). AS adjacency lists are not encoded: decode replays
/// add_link in link-index order, which rebuilds them exactly (add_link
/// appends), so the round trip is structurally identical without the
/// redundant bytes.
void encode(ByteWriter& out, const Internet& internet);
Internet decode_internet(ByteReader& in);

}  // namespace repro::store
