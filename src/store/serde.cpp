#include "store/serde.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace repro::store {

namespace {

/// Decode-side sanity cap on element counts: a corrupted length prefix must
/// not turn into a multi-gigabyte allocation before the checksum mismatch
/// is noticed. Generous (the paper-scale scan is ~300K records).
constexpr std::uint64_t kMaxElements = 1u << 28;

std::uint64_t checked_count(std::uint64_t count, const char* what) {
  if (count > kMaxElements) {
    throw SerdeError(std::string(what) + ": implausible element count " +
                     std::to_string(count));
  }
  return count;
}

}  // namespace

// --- ByteWriter ---

void ByteWriter::u8(std::uint8_t value) { bytes_.push_back(value); }

void ByteWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::i32(std::int32_t value) {
  u32(static_cast<std::uint32_t>(value));
}

void ByteWriter::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::str(std::string_view value) {
  if (value.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw SerdeError("string too long to encode");
  }
  u32(static_cast<std::uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

// --- ByteReader ---

void ByteReader::need(std::size_t count) const {
  if (remaining() < count) {
    throw SerdeError("truncated input: need " + std::to_string(count) +
                     " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(bytes_[cursor_++]) << shift;
  }
  return value;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(bytes_[cursor_++]) << shift;
  }
  return value;
}

std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t length = u32();
  need(length);
  std::string value(reinterpret_cast<const char*>(bytes_.data() + cursor_),
                    length);
  cursor_ += length;
  return value;
}

// --- Fnv1a ---

Fnv1a& Fnv1a::mix(std::uint64_t value) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    state_ ^= (value >> shift) & 0xff;
    state_ *= 0x100000001b3ULL;  // FNV prime
  }
  return *this;
}

Fnv1a& Fnv1a::mix(double value) noexcept {
  return mix(std::bit_cast<std::uint64_t>(value));
}

Fnv1a& Fnv1a::mix(std::string_view value) noexcept {
  mix(static_cast<std::uint64_t>(value.size()));
  for (const char c : value) {
    state_ ^= static_cast<std::uint8_t>(c);
    state_ *= 0x100000001b3ULL;
  }
  return *this;
}

// --- TlsCertificate ---

namespace {

void encode_dn(ByteWriter& out, const DistinguishedName& dn) {
  out.str(dn.common_name);
  out.str(dn.organization);
  out.str(dn.country);
}

DistinguishedName decode_dn(ByteReader& in) {
  DistinguishedName dn;
  dn.common_name = in.str();
  dn.organization = in.str();
  dn.country = in.str();
  return dn;
}

}  // namespace

void encode(ByteWriter& out, const TlsCertificate& cert) {
  encode_dn(out, cert.subject);
  encode_dn(out, cert.issuer);
  out.u32(static_cast<std::uint32_t>(cert.san_dns.size()));
  for (const std::string& san : cert.san_dns) out.str(san);
  out.i32(cert.not_before_year);
  out.i32(cert.not_after_year);
  out.u64(cert.serial);
}

TlsCertificate decode_certificate(ByteReader& in) {
  TlsCertificate cert;
  cert.subject = decode_dn(in);
  cert.issuer = decode_dn(in);
  const std::uint64_t sans = checked_count(in.u32(), "certificate SANs");
  cert.san_dns.reserve(sans);
  for (std::uint64_t i = 0; i < sans; ++i) cert.san_dns.push_back(in.str());
  cert.not_before_year = in.i32();
  cert.not_after_year = in.i32();
  cert.serial = in.u64();
  return cert;
}

// --- scan records ---

void encode(ByteWriter& out, const std::vector<ScanRecord>& records) {
  out.u64(records.size());
  for (const ScanRecord& record : records) {
    out.u32(record.ip.value());
    encode(out, record.cert);
  }
}

std::vector<ScanRecord> decode_scan_records(ByteReader& in) {
  const std::uint64_t count = checked_count(in.u64(), "scan records");
  std::vector<ScanRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ScanRecord record;
    record.ip = Ipv4(in.u32());
    record.cert = decode_certificate(in);
    records.push_back(std::move(record));
  }
  return records;
}

// --- TLS population ---

void encode(ByteWriter& out, const CertStore& population) {
  // all_sorted() gives a deterministic order, so equal populations encode
  // to equal bytes (the artifact digest relies on nothing but equality, but
  // determinism keeps corpus tests and dedup simple).
  const std::vector<TlsEndpoint> endpoints = population.all_sorted();
  out.u64(endpoints.size());
  for (const TlsEndpoint& endpoint : endpoints) {
    out.u32(endpoint.ip.value());
    encode(out, endpoint.cert);
  }
}

CertStore decode_population(ByteReader& in) {
  const std::uint64_t count = checked_count(in.u64(), "population endpoints");
  CertStore population;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Ipv4 ip(in.u32());
    population.install(ip, decode_certificate(in));
  }
  return population;
}

// --- latency matrices ---

void encode(ByteWriter& out, const LatencyMatrix& matrix) {
  out.u64(matrix.ips.size());
  for (const Ipv4 ip : matrix.ips) out.u32(ip.value());
  out.u64(matrix.server_indices.size());
  for (const std::size_t index : matrix.server_indices) out.u64(index);
  out.u64(matrix.vp_count);
  out.u64(matrix.rtt.size());
  for (const double rtt : matrix.rtt) out.f64(rtt);
}

LatencyMatrix decode_latency_matrix(ByteReader& in) {
  LatencyMatrix matrix;
  const std::uint64_t ips = checked_count(in.u64(), "matrix rows");
  matrix.ips.reserve(ips);
  for (std::uint64_t i = 0; i < ips; ++i) matrix.ips.push_back(Ipv4(in.u32()));
  const std::uint64_t servers = checked_count(in.u64(), "matrix servers");
  matrix.server_indices.reserve(servers);
  for (std::uint64_t i = 0; i < servers; ++i) {
    matrix.server_indices.push_back(in.u64());
  }
  matrix.vp_count = in.u64();
  const std::uint64_t cells = checked_count(in.u64(), "matrix cells");
  if (cells != ips * matrix.vp_count) {
    throw SerdeError("matrix shape mismatch: " + std::to_string(cells) +
                     " cells for " + std::to_string(ips) + "x" +
                     std::to_string(matrix.vp_count));
  }
  matrix.rtt.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) matrix.rtt.push_back(in.f64());
  return matrix;
}

// --- clusterings ---

void encode(ByteWriter& out, const IspClustering& clustering) {
  out.u32(clustering.isp);
  out.u8(clustering.usable ? 1 : 0);
  out.u64(clustering.registry_indices.size());
  for (const std::size_t index : clustering.registry_indices) out.u64(index);
  out.u64(clustering.labels.size());
  for (const int label : clustering.labels) out.i32(label);
  out.i32(clustering.cluster_count);
  out.u64(clustering.dropped_unresponsive);
  out.u64(clustering.dropped_impossible);
  out.u64(clustering.usable_sites);
}

IspClustering decode_clustering(ByteReader& in) {
  IspClustering clustering;
  clustering.isp = in.u32();
  clustering.usable = in.u8() != 0;
  const std::uint64_t indices = checked_count(in.u64(), "registry indices");
  clustering.registry_indices.reserve(indices);
  for (std::uint64_t i = 0; i < indices; ++i) {
    clustering.registry_indices.push_back(in.u64());
  }
  const std::uint64_t labels = checked_count(in.u64(), "cluster labels");
  clustering.labels.reserve(labels);
  for (std::uint64_t i = 0; i < labels; ++i) {
    clustering.labels.push_back(in.i32());
  }
  clustering.cluster_count = in.i32();
  clustering.dropped_unresponsive = in.u64();
  clustering.dropped_impossible = in.u64();
  clustering.usable_sites = in.u64();
  return clustering;
}

void encode(ByteWriter& out, const std::vector<IspClustering>& clusterings) {
  out.u64(clusterings.size());
  for (const IspClustering& clustering : clusterings) {
    encode(out, clustering);
  }
}

std::vector<IspClustering> decode_clusterings(ByteReader& in) {
  const std::uint64_t count = checked_count(in.u64(), "clusterings");
  std::vector<IspClustering> clusterings;
  clusterings.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    clusterings.push_back(decode_clustering(in));
  }
  return clusterings;
}

// --- stage health ---

void encode(ByteWriter& out, const fault::StageHealth& health) {
  out.u8(static_cast<std::uint8_t>(health.status));
  out.u64(health.dropped);
  out.u64(health.total);
  out.u32(static_cast<std::uint32_t>(health.reasons.size()));
  for (const std::string& reason : health.reasons) out.str(reason);
}

fault::StageHealth decode_stage_health(ByteReader& in) {
  fault::StageHealth health;
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(fault::StageStatus::kFailed)) {
    throw SerdeError("unknown stage status " + std::to_string(status));
  }
  health.status = static_cast<fault::StageStatus>(status);
  health.dropped = in.u64();
  health.total = in.u64();
  const std::uint64_t reasons = checked_count(in.u32(), "health reasons");
  health.reasons.reserve(reasons);
  for (std::uint64_t i = 0; i < reasons; ++i) {
    health.reasons.push_back(in.str());
  }
  return health;
}

// --- Internet topology ---

namespace {

void encode_prefix(ByteWriter& out, const Prefix& prefix) {
  out.u32(prefix.network().value());
  out.u8(static_cast<std::uint8_t>(prefix.length()));
}

Prefix decode_prefix(ByteReader& in) {
  const std::uint32_t network = in.u32();
  const std::uint8_t length = in.u8();
  if (length > 32) {
    throw SerdeError("prefix length " + std::to_string(length) + " > 32");
  }
  return Prefix(Ipv4(network), length);
}

std::uint32_t checked_index(std::uint32_t index, std::size_t limit,
                            const char* what) {
  // kInvalidIndex is a legal "absent" marker (e.g. an IXP link's facility).
  if (index != kInvalidIndex && index >= limit) {
    throw SerdeError(std::string(what) + ": index " + std::to_string(index) +
                     " out of range");
  }
  return index;
}

void encode_geo(ByteWriter& out, const GeoPoint& point) {
  out.f64(point.latitude_deg);
  out.f64(point.longitude_deg);
}

GeoPoint decode_geo(ByteReader& in) {
  GeoPoint point;
  point.latitude_deg = in.f64();
  point.longitude_deg = in.f64();
  return point;
}

}  // namespace

void encode(ByteWriter& out, const Internet& internet) {
  out.u64(internet.metros.size());
  for (const Metro& metro : internet.metros) {
    out.str(metro.name);
    out.str(metro.iata);
    out.u32(metro.country);
    encode_geo(out, metro.location);
    out.f64(metro.users);
  }

  out.u64(internet.facilities.size());
  for (const Facility& facility : internet.facilities) {
    out.str(facility.name);
    out.u8(static_cast<std::uint8_t>(facility.kind));
    out.u32(facility.metro);
    out.u32(facility.owner_asn);
    encode_geo(out, facility.location);
  }

  out.u64(internet.ixps.size());
  for (const Ixp& ixp : internet.ixps) {
    out.str(ixp.name);
    out.u32(ixp.metro);
    out.u32(ixp.facility);
    encode_prefix(out, ixp.peering_lan);
    out.u64(ixp.members.size());
    for (const AsIndex member : ixp.members) out.u32(member);
    out.f64(ixp.port_capacity_gbps);
  }

  // Adjacency (provider/customer/peer link lists) is deliberately omitted:
  // replaying add_link below rebuilds it in identical order.
  out.u64(internet.ases.size());
  for (const As& as : internet.ases) {
    out.u32(as.asn);
    out.str(as.name);
    out.u8(static_cast<std::uint8_t>(as.tier));
    out.u32(as.country);
    out.f64(as.users);
    out.u64(as.metros.size());
    for (const MetroIndex metro : as.metros) out.u32(metro);
    out.u64(as.facilities.size());
    for (const FacilityIndex facility : as.facilities) out.u32(facility);
    out.u32(as.primary_metro);
    encode_prefix(out, as.infra.pool());
    out.u64(as.infra.next_offset());
    out.u64(as.user_prefixes.size());
    for (const Prefix& prefix : as.user_prefixes) encode_prefix(out, prefix);
  }

  out.u64(internet.links.size());
  for (const InterdomainLink& link : internet.links) {
    out.u8(static_cast<std::uint8_t>(link.kind));
    out.u32(link.a);
    out.u32(link.b);
    out.u32(link.facility);
    out.u32(link.ixp);
    out.f64(link.capacity_gbps);
  }

  // Announcements: trie entries() is lexicographic, hence deterministic.
  const auto announcements = internet.ip_to_as().entries();
  out.u64(announcements.size());
  for (const auto& [prefix, as_index] : announcements) {
    encode_prefix(out, prefix);
    out.u32(as_index);
  }

  // Peering-LAN ports, sorted by address for a deterministic encoding.
  std::vector<std::pair<Ipv4, IxpPortInfo>> ports(
      internet.ixp_ports().begin(), internet.ixp_ports().end());
  std::sort(ports.begin(), ports.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(ports.size());
  for (const auto& [address, info] : ports) {
    out.u32(address.value());
    out.u32(info.ixp);
    out.u32(info.member);
  }
}

Internet decode_internet(ByteReader& in) {
  Internet internet;

  const std::uint64_t metros = checked_count(in.u64(), "metros");
  for (std::uint64_t m = 0; m < metros; ++m) {
    Metro metro;
    metro.name = in.str();
    metro.iata = in.str();
    metro.country = in.u32();
    metro.location = decode_geo(in);
    metro.users = in.f64();
    internet.add_metro(std::move(metro));
  }

  const std::uint64_t facilities = checked_count(in.u64(), "facilities");
  for (std::uint64_t f = 0; f < facilities; ++f) {
    Facility facility;
    facility.name = in.str();
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(FacilityKind::kColocation)) {
      throw SerdeError("unknown facility kind " + std::to_string(kind));
    }
    facility.kind = static_cast<FacilityKind>(kind);
    facility.metro = checked_index(in.u32(), metros, "facility metro");
    facility.owner_asn = in.u32();
    facility.location = decode_geo(in);
    internet.add_facility(std::move(facility));
  }

  const std::uint64_t ixps = checked_count(in.u64(), "ixps");
  for (std::uint64_t x = 0; x < ixps; ++x) {
    Ixp ixp;
    ixp.name = in.str();
    ixp.metro = checked_index(in.u32(), metros, "ixp metro");
    ixp.facility = checked_index(in.u32(), facilities, "ixp facility");
    ixp.peering_lan = decode_prefix(in);
    const std::uint64_t members = checked_count(in.u64(), "ixp members");
    ixp.members.reserve(members);
    for (std::uint64_t i = 0; i < members; ++i) ixp.members.push_back(in.u32());
    ixp.port_capacity_gbps = in.f64();
    internet.add_ixp(std::move(ixp));
  }

  const std::uint64_t ases = checked_count(in.u64(), "ases");
  for (std::uint64_t a = 0; a < ases; ++a) {
    As as;
    as.asn = in.u32();
    as.name = in.str();
    const std::uint8_t tier = in.u8();
    if (tier > static_cast<std::uint8_t>(AsTier::kHypergiant)) {
      throw SerdeError("unknown AS tier " + std::to_string(tier));
    }
    as.tier = static_cast<AsTier>(tier);
    as.country = in.u32();
    as.users = in.f64();
    const std::uint64_t as_metros = checked_count(in.u64(), "AS metros");
    as.metros.reserve(as_metros);
    for (std::uint64_t i = 0; i < as_metros; ++i) {
      as.metros.push_back(checked_index(in.u32(), metros, "AS metro"));
    }
    const std::uint64_t as_facilities = checked_count(in.u64(), "AS facilities");
    as.facilities.reserve(as_facilities);
    for (std::uint64_t i = 0; i < as_facilities; ++i) {
      as.facilities.push_back(
          checked_index(in.u32(), facilities, "AS facility"));
    }
    as.primary_metro = checked_index(in.u32(), metros, "AS primary metro");
    as.infra = PrefixAllocator(decode_prefix(in));
    const std::uint64_t next_offset = in.u64();
    if (next_offset > as.infra.pool().size()) {
      throw SerdeError("allocator offset outside pool");
    }
    as.infra.restore_next_offset(next_offset);
    const std::uint64_t user_prefixes =
        checked_count(in.u64(), "AS user prefixes");
    as.user_prefixes.reserve(user_prefixes);
    for (std::uint64_t i = 0; i < user_prefixes; ++i) {
      as.user_prefixes.push_back(decode_prefix(in));
    }
    internet.add_as(std::move(as));
  }

  const std::uint64_t links = checked_count(in.u64(), "links");
  for (std::uint64_t l = 0; l < links; ++l) {
    InterdomainLink link;
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(LinkKind::kIxpPeering)) {
      throw SerdeError("unknown link kind " + std::to_string(kind));
    }
    link.kind = static_cast<LinkKind>(kind);
    link.a = checked_index(in.u32(), ases, "link endpoint");
    link.b = checked_index(in.u32(), ases, "link endpoint");
    link.facility = checked_index(in.u32(), facilities, "link facility");
    link.ixp = checked_index(in.u32(), ixps, "link ixp");
    link.capacity_gbps = in.f64();
    internet.add_link(link);  // rebuilds both endpoints' adjacency in order
  }

  const std::uint64_t announcements = checked_count(in.u64(), "announcements");
  for (std::uint64_t i = 0; i < announcements; ++i) {
    const Prefix prefix = decode_prefix(in);
    const AsIndex as_index = checked_index(in.u32(), ases, "announcement AS");
    internet.announce(as_index, prefix);
  }

  const std::uint64_t ports = checked_count(in.u64(), "ixp ports");
  for (std::uint64_t i = 0; i < ports; ++i) {
    const Ipv4 address(in.u32());
    const IxpIndex ixp = checked_index(in.u32(), ixps, "port ixp");
    const AsIndex member = checked_index(in.u32(), ases, "port member");
    internet.register_ixp_port(address, ixp, member);
  }

  return internet;
}

}  // namespace repro::store
