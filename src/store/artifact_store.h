// Content-addressed persistent artifact store.
//
// Artifacts are flat files under one root directory, named
// `<type>-v<schema>-<digest>.bin` where the digest is an FNV-1a 64-bit hash
// over everything that determines the artifact's content: the per-type
// schema version, the scenario's measurement-relevant config fields, the
// fault plan (seed + every rate), and per-artifact parameters (snapshot,
// ISP, xi). Change any input and the key changes, so a stale artifact can
// never be served -- there is no invalidation protocol, only different
// names.
//
// Durability contract:
//   * writes are atomic: payload goes to a temp file in the root, then one
//     rename() publishes it -- readers never see a half-written artifact;
//   * every file carries a header (magic, container version, type, schema,
//     payload size) and a trailing FNV-1a checksum over the payload;
//     truncation, bit flips and stale schema versions are all detected at
//     load time and reported as kCorrupt, which callers treat as "recompute
//     and record a degraded StageHealth" -- never a crash;
//   * a disk budget (REPRO_STORE_BUDGET_MB) is enforced with LRU eviction
//     over file recency (same policy shape as cache/lru.h, with file mtimes
//     persisting the recency order across processes).
//
// All operations are thread-safe: the clustering fan-out loads and saves
// per-ISP matrices from pool workers concurrently.
//
// Env toggles (read by from_env(); all default off so the pipeline is
// bit-identical to a storeless build):
//   REPRO_STORE=/path        enable, rooted at /path (created if missing)
//   REPRO_STORE_READONLY=1   consult but never write, touch or evict
//   REPRO_STORE_BUDGET_MB=N  LRU-evict beyond N megabytes (0 = unlimited)
//
// See docs/PERSISTENCE.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "store/serde.h"

namespace repro::store {

/// Identity of one stored artifact. The digest must cover every input that
/// can change the payload (build it with Fnv1a).
struct ArtifactKey {
  std::string type;           // "scan", "population", "matrix", "clustering"
  std::uint32_t schema = 1;   // the per-type schema constant from serde.h
  std::uint64_t digest = 0;

  /// "<type>-v<schema>-<16 hex digits>.bin"
  std::string filename() const;

  /// Inverse of filename(): recovers the key from an on-disk name, or
  /// nullopt for temp files and strays. Round-trips exactly:
  /// parse(k.filename())->filename() == k.filename().
  static std::optional<ArtifactKey> parse(std::string_view filename);
};

/// One on-disk artifact as reported by ArtifactStore::list().
struct ArtifactInfo {
  ArtifactKey key;
  std::string filename;
  std::uint64_t bytes = 0;  // full file size (header + payload + checksum)
};

enum class LoadStatus {
  kHit,      // payload returned, checksum and schema verified
  kMiss,     // no such artifact
  kCorrupt,  // artifact present but unreadable (recompute; record degraded)
};

struct LoadResult {
  LoadStatus status = LoadStatus::kMiss;
  std::vector<std::uint8_t> payload;
  /// Human-readable corruption reason (empty unless kCorrupt).
  std::string detail;

  bool hit() const noexcept { return status == LoadStatus::kHit; }
  bool corrupt() const noexcept { return status == LoadStatus::kCorrupt; }
};

struct StoreConfig {
  std::string root;
  bool read_only = false;
  /// LRU disk budget in megabytes; <= 0 means unlimited.
  double budget_mb = 0.0;
};

/// Live-corruption chaos (FaultPlan::store): each artifact is, with
/// probability corrupt_rate, garbled on disk right before its first load --
/// while concurrent readers are live. Injection happens under the store
/// lock (TSan-clean), is deterministic per (seed, filename), and fires at
/// most once per filename, so a healed artifact stays healed and the
/// corrupt -> delete -> recompute -> republish path is provably bounded.
struct StoreChaos {
  std::uint64_t seed = 0;
  /// Per-artifact probability of being garbled before its first load.
  double corrupt_rate = 0.0;
  /// Of the garbled: fraction truncated (the rest get a mid-file bit flip).
  double truncate_fraction = 0.5;

  bool active() const noexcept { return corrupt_rate > 0.0; }
};

/// Cumulative per-instance statistics (process-global mirrors live in the
/// metrics registry as store.hit / store.miss / store.corrupt /
/// store.evicted / store.saved / store.chaos_injected / store.recomputed /
/// store.herd_waits).
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t evicted = 0;
  std::uint64_t saved = 0;
  std::uint64_t chaos_injected = 0;  // artifacts garbled by StoreChaos
  std::uint64_t recomputed = 0;      // load_or_compute ran its compute fn
  std::uint64_t herd_waits = 0;      // callers that parked behind a flight
};

/// Outcome of ArtifactStore::load_or_compute.
struct FetchResult {
  /// Always a hit on return (payload present); `detail` preserves the
  /// corruption reason when the fetch began with a corrupt artifact.
  LoadResult load;
  bool computed = false;           // this caller ran the compute fn
  bool recovered_corrupt = false;  // the artifact was corrupt before healing
};

class ArtifactStore {
 public:
  /// Opens (and creates, unless read-only) the store root, then indexes the
  /// existing artifacts by file recency. Throws repro::Error when the root
  /// cannot be created.
  explicit ArtifactStore(StoreConfig config);

  /// Store described by the REPRO_STORE* environment variables; nullptr
  /// when REPRO_STORE is unset or empty (the default: no persistence).
  static std::shared_ptr<ArtifactStore> from_env();

  /// Loads an artifact. A hit refreshes its LRU recency (and file mtime,
  /// unless read-only). Corrupt artifacts are deleted (unless read-only) so
  /// the next run takes a clean miss.
  LoadResult load(const ArtifactKey& key);

  /// Publishes an artifact atomically (write temp + rename), then enforces
  /// the disk budget by evicting least-recently-used files. Returns false
  /// when the store is read-only, the payload alone exceeds the budget, or
  /// the write fails (a full disk degrades to "no persistence", it never
  /// aborts the run).
  bool save(const ArtifactKey& key, const std::vector<std::uint8_t>& payload);

  /// Arms (or, with a zero rate, disarms) live-corruption chaos. The
  /// one-shot ledger survives re-arming with the same knobs, so a healed
  /// artifact is never re-corrupted within one store lifetime. Ignored on
  /// read-only stores (they cannot modify files).
  void set_chaos(const StoreChaos& chaos);

  /// Single-flight load-or-compute: a hit returns immediately; on a miss or
  /// corrupt artifact exactly one caller runs `compute` and republishes
  /// while concurrent callers for the same key park on a bounded
  /// escalating-backoff wait and then re-load the published bytes -- N
  /// workers hitting the same corrupt artifact cost one recompute, not N
  /// (stats().recomputed counts them; herd_waits counts the parked). The
  /// wait is bounded: if the flight holder stalls past the backoff budget,
  /// a waiter gives up waiting and computes too, so no caller can hang on a
  /// wedged peer. `compute` runs without any store lock held and must
  /// return the serialized payload; the returned FetchResult always carries
  /// a usable payload.
  FetchResult load_or_compute(
      const ArtifactKey& key,
      const std::function<std::vector<std::uint8_t>()>& compute);

  const StoreConfig& config() const noexcept { return config_; }
  StoreStats stats() const;
  std::size_t object_count() const;
  double used_mb() const;

  /// Snapshot of the indexed artifacts, most recently used first. Files
  /// whose names do not parse as artifact keys are skipped (the indexer
  /// already skips non-.bin strays).
  std::vector<ArtifactInfo> list() const;

  /// One-shot LRU eviction down to `mb` megabytes (<= 0 empties the store),
  /// independent of the configured budget. Returns the number of artifacts
  /// removed; 0 on a read-only store. For the repro-store CLI.
  std::uint64_t prune_to_budget(double mb);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

 private:
  struct Entry {
    std::string filename;
    std::uint64_t bytes = 0;
  };

  /// Moves `it` to the recency front (most recent). Caller holds the lock.
  void touch(std::unordered_map<std::string,
                                std::list<Entry>::iterator>::iterator it);
  /// Evicts from the recency back until `incoming` more bytes fit the
  /// budget. Never evicts `keep`. Caller holds the lock.
  void evict_to_fit(std::uint64_t incoming, const std::string& keep);
  void drop_entry(const std::string& filename);
  /// Garbles the on-disk file if armed chaos selects it and it has not been
  /// hit before. Caller holds the lock.
  void maybe_inject_chaos(const std::string& filename);

  StoreConfig config_;
  std::uint64_t budget_bytes_ = 0;  // 0 = unlimited

  mutable std::mutex mutex_;
  std::list<Entry> recency_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t used_bytes_ = 0;
  StoreStats stats_;
  std::uint64_t temp_counter_ = 0;
  StoreChaos chaos_;                             // guarded by mutex_
  std::unordered_set<std::string> chaos_done_;   // one-shot ledger

  // Single-flight state for load_or_compute (ordered after mutex_: never
  // hold flight_mutex_ while taking mutex_ via load/save).
  std::mutex flight_mutex_;
  std::condition_variable flight_cv_;
  std::unordered_set<std::string> inflight_;
};

/// One-line JSON describing the store's on-disk occupancy and session
/// stats: root, artifact count, bytes, per-type breakdown (sorted by type),
/// and the StoreStats counters. Shared by `repro-store stats --json` and
/// the report service's "stats" query, so scripts parse occupancy instead
/// of scraping the human tables.
std::string occupancy_json(const ArtifactStore& store);

}  // namespace repro::store
