// Memory-mapped spill format for per-ISP latency matrices (.mmx files).
//
// The .bin artifact container prefixes its payload with a variable-length
// header, which leaves the f64 block misaligned for direct SIMD loads; the
// spill format instead lays every array out at an 8-byte-aligned offset so
// a MappedLatencyMatrix can hand kernel code raw pointers into the mapping.
// Layout (little-endian, offsets in bytes):
//
//   0   u64  magic "RPROMMX1"
//   8   u32  container version (kMatrixFileVersion)
//   12  u32  schema (kLatencyMatrixSchema from serde.h)
//   16  u64  rows
//   24  u64  vp_count
//   32       u32 ips[rows], padded to the next 8-byte boundary
//   ...      u64 server_indices[rows]
//   ...      f64 rtt[rows * vp_count]   raw IEEE-754 bit patterns; NaN
//                                       markers and every ulp survive
//   ...  u64 FNV-1a checksum over all preceding bytes
//
// Durability mirrors the artifact store: writes go to a temp file in the
// same directory and one rename() publishes them, so readers never see a
// half-written matrix; open() validates magic, version, schema, exact file
// size and the trailing checksum, throwing SerdeError on any mismatch --
// truncation at every cut and bit flips are detected, never crash. The
// pipeline treats a malformed spill like a corrupt artifact: delete,
// recompute, republish, record a degraded "store:" StageHealth.
//
// Spill files live under <store-root>/stream/ (or a per-process temp
// directory when no store is attached) and are deliberately outside the
// .bin indexer: they are a rebuildable disk cache keyed like the "matrix"
// artifact family, not content the store's LRU budget manages. See
// docs/SCALING.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mlab/ping_mesh.h"
#include "store/serde.h"

namespace repro::store {

inline constexpr std::uint64_t kMatrixFileMagic = 0x31584d4d4f525052ULL;  // "RPROMMX1"
inline constexpr std::uint32_t kMatrixFileVersion = 1;

/// Exact on-disk size of a spill holding `rows` x `vp_count` measurements.
std::uint64_t matrix_file_size(std::uint64_t rows, std::uint64_t vp_count) noexcept;

/// Writes `matrix` to `path` atomically (temp file + rename). Throws
/// repro::Error when the file cannot be written.
void write_matrix_file(const std::string& path, const LatencyMatrix& matrix);

/// Read-only mmap view over a .mmx spill file, exposed through the
/// LatencyRows interface so the cleaning/clustering layers stream rows
/// straight out of the page cache. The mapping is validated up front
/// (magic, version, schema, size, checksum), so row() is an unchecked
/// pointer into clean bytes. Move-only; the mapping lives until
/// destruction. Concurrent const access is safe (the pages are immutable).
class MappedLatencyMatrix final : public LatencyRows {
 public:
  /// Maps and fully validates `path`. Throws SerdeError for malformed or
  /// truncated content and repro::Error when the file cannot be opened.
  static MappedLatencyMatrix open(const std::string& path);

  /// Like open(), but a missing file is nullopt instead of an error.
  static std::optional<MappedLatencyMatrix> open_if_exists(
      const std::string& path);

  MappedLatencyMatrix(MappedLatencyMatrix&& other) noexcept;
  MappedLatencyMatrix& operator=(MappedLatencyMatrix&& other) noexcept;
  MappedLatencyMatrix(const MappedLatencyMatrix&) = delete;
  MappedLatencyMatrix& operator=(const MappedLatencyMatrix&) = delete;
  ~MappedLatencyMatrix() override;

  std::size_t row_count() const noexcept override { return rows_; }
  std::size_t vp_count() const noexcept override { return vp_count_; }
  Ipv4 ip(std::size_t row) const override;
  std::size_t server_index(std::size_t row) const override;
  const double* row(std::size_t row) const override;

  /// Full in-memory copy, bit-identical to the matrix that was written
  /// (tests compare it against the original ulp-for-ulp).
  LatencyMatrix to_matrix() const;

  /// Best-effort MADV_DONTNEED over the RTT pages of rows [begin, end):
  /// drops them from the resident set once a streaming pass is done with
  /// them (they reload from disk on the next touch). Page-rounded inward,
  /// so neighboring rows are never evicted mid-use.
  void release_rows(std::size_t begin, std::size_t end) const noexcept;

 private:
  MappedLatencyMatrix() = default;

  void* base_ = nullptr;  // whole-file mapping
  std::uint64_t mapped_bytes_ = 0;
  std::size_t rows_ = 0;
  std::size_t vp_count_ = 0;
  const std::uint32_t* ips_ = nullptr;
  const std::uint64_t* server_indices_ = nullptr;
  const double* rtt_ = nullptr;
};

}  // namespace repro::store
