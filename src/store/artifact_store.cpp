#include "store/artifact_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace repro::store {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4f525052;  // "RPRO"
constexpr std::uint32_t kContainerVersion = 1;

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t state = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    state ^= b;
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t fnv1a_str(std::string_view text) noexcept {
  std::uint64_t state = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    state ^= static_cast<std::uint8_t>(c);
    state *= 0x100000001b3ULL;
  }
  return state;
}

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/// Escalating backoff budget for load_or_compute waiters: ~16 waits of
/// 1ms << min(n, 6) each (~0.5 s total) before a waiter stops trusting the
/// flight holder and computes for itself.
constexpr std::uint64_t kHerdMaxWaits = 16;

}  // namespace

std::string ArtifactKey::filename() const {
  return type + "-v" + std::to_string(schema) + "-" + hex16(digest) + ".bin";
}

std::optional<ArtifactKey> ArtifactKey::parse(std::string_view filename) {
  if (!filename.ends_with(".bin")) return std::nullopt;
  if (filename.starts_with(".")) return std::nullopt;  // ".tmp-*" spool files
  filename.remove_suffix(4);

  // The digest is always the last 17 characters: "-" + 16 hex digits. The
  // type may itself contain '-', so split from the right.
  if (filename.size() < 17) return std::nullopt;
  const std::string_view digest_hex = filename.substr(filename.size() - 16);
  if (filename[filename.size() - 17] != '-') return std::nullopt;
  std::uint64_t digest = 0;
  for (const char c : digest_hex) {
    int nibble = -1;
    if (c >= '0' && c <= '9') nibble = c - '0';
    if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    if (nibble < 0) return std::nullopt;  // uppercase is not canonical
    digest = (digest << 4) | static_cast<std::uint64_t>(nibble);
  }
  filename.remove_suffix(17);

  const std::size_t sep = filename.rfind("-v");
  if (sep == std::string_view::npos || sep == 0) return std::nullopt;
  const std::string_view schema_digits = filename.substr(sep + 2);
  if (schema_digits.empty() || schema_digits.size() > 9) return std::nullopt;
  std::uint32_t schema = 0;
  for (const char c : schema_digits) {
    if (c < '0' || c > '9') return std::nullopt;
    schema = schema * 10 + static_cast<std::uint32_t>(c - '0');
  }

  ArtifactKey key;
  key.type = std::string(filename.substr(0, sep));
  key.schema = schema;
  key.digest = digest;
  return key;
}

ArtifactStore::ArtifactStore(StoreConfig config) : config_(std::move(config)) {
  require(!config_.root.empty(), "ArtifactStore: empty root path");
  if (config_.budget_mb > 0.0) {
    budget_bytes_ = static_cast<std::uint64_t>(config_.budget_mb * 1e6);
  }

  std::error_code ec;
  if (!config_.read_only) {
    fs::create_directories(config_.root, ec);
    require(!ec, "ArtifactStore: cannot create root " + config_.root);
  }

  // Index the existing artifacts, oldest mtime first, so the in-memory
  // recency list continues the order previous processes left on disk.
  struct Found {
    std::string filename;
    std::uint64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  if (fs::is_directory(config_.root, ec)) {
    for (const auto& entry : fs::directory_iterator(config_.root, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string name = entry.path().filename().string();
      if (!name.ends_with(".bin")) continue;  // skip temp files and strays
      found.push_back({name, static_cast<std::uint64_t>(entry.file_size(ec)),
                       entry.last_write_time(ec)});
    }
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.filename < b.filename;
  });
  for (const Found& file : found) {
    recency_.push_front({file.filename, file.bytes});  // newest ends up front
    index_[file.filename] = recency_.begin();
    used_bytes_ += file.bytes;
  }
}

std::shared_ptr<ArtifactStore> ArtifactStore::from_env() {
  const char* root = std::getenv("REPRO_STORE");
  if (root == nullptr || root[0] == '\0') return nullptr;
  StoreConfig config;
  config.root = root;
  const char* read_only = std::getenv("REPRO_STORE_READONLY");
  config.read_only = read_only != nullptr && std::string(read_only) == "1";
  if (const char* budget = std::getenv("REPRO_STORE_BUDGET_MB")) {
    config.budget_mb = std::atof(budget);
  }
  return std::make_shared<ArtifactStore>(std::move(config));
}

void ArtifactStore::touch(
    std::unordered_map<std::string, std::list<Entry>::iterator>::iterator it) {
  recency_.splice(recency_.begin(), recency_, it->second);
  it->second = recency_.begin();
}

void ArtifactStore::drop_entry(const std::string& filename) {
  const auto it = index_.find(filename);
  if (it == index_.end()) return;
  used_bytes_ -= it->second->bytes;
  recency_.erase(it->second);
  index_.erase(it);
}

void ArtifactStore::evict_to_fit(std::uint64_t incoming,
                                 const std::string& keep) {
  if (budget_bytes_ == 0) return;
  while (used_bytes_ + incoming > budget_bytes_ && !recency_.empty()) {
    const Entry victim = recency_.back();
    if (victim.filename == keep) break;  // never evict the incoming artifact
    std::error_code ec;
    fs::remove(fs::path(config_.root) / victim.filename, ec);
    drop_entry(victim.filename);
    ++stats_.evicted;
    obs::metrics().counter("store.evicted").add(1);
  }
}

void ArtifactStore::set_chaos(const StoreChaos& chaos) {
  std::lock_guard<std::mutex> lock(mutex_);
  chaos_ = chaos;
  if (!(chaos_.corrupt_rate > 0.0)) chaos_.corrupt_rate = 0.0;  // NaN guard
}

void ArtifactStore::maybe_inject_chaos(const std::string& filename) {
  if (!chaos_.active() || config_.read_only) return;
  if (chaos_done_.contains(filename)) return;
  const std::uint64_t key = mix64(fnv1a_str(filename) ^
                                  chaos_.seed * 0x9E3779B97F4A7C15ULL);
  if (hash_uniform(key) >= chaos_.corrupt_rate) return;

  const fs::path path = fs::path(config_.root) / filename;
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size == 0) return;  // not on disk yet: nothing to garble

  if (hash_uniform(mix64(key ^ 0x7C7C)) < chaos_.truncate_fraction) {
    // Torn write: cut the file at a key-determined offset.
    fs::resize_file(path, mix64(key ^ 0x3A3A) % size, ec);
    if (ec) return;
  } else {
    // Disk fault: flip one bit somewhere in the file. The container format
    // detects a flip anywhere -- header fields mismatch, payload flips fail
    // the checksum, checksum flips fail against the intact payload.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    if (!file) return;
    const auto pos =
        static_cast<std::streamoff>(mix64(key ^ 0x5B5B) % size);
    file.seekg(pos);
    const int byte = file.get();
    if (byte == EOF) return;
    file.seekp(pos);
    file.put(static_cast<char>(byte ^ 0x40));
    if (!file) return;
  }
  chaos_done_.insert(filename);
  ++stats_.chaos_injected;
  obs::metrics().counter("store.chaos_injected").add(1);
}

LoadResult ArtifactStore::load(const ArtifactKey& key) {
  obs::ScopedTimer timer("store.load_ms");
  const std::string filename = key.filename();
  const fs::path path = fs::path(config_.root) / filename;

  std::lock_guard<std::mutex> lock(mutex_);
  maybe_inject_chaos(filename);
  LoadResult result;

  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++stats_.misses;
      obs::metrics().counter("store.miss").add(1);
      return result;  // kMiss
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(std::max<std::streamoff>(size, 0)));
    if (!bytes.empty()) {
      in.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    }
    if (!in) {
      result.status = LoadStatus::kCorrupt;
      result.detail = filename + ": short read";
    }
  }

  if (!result.corrupt()) {
    try {
      ByteReader reader(bytes);
      if (reader.u32() != kMagic) {
        throw SerdeError("bad magic");
      }
      if (const std::uint32_t container = reader.u32();
          container != kContainerVersion) {
        throw SerdeError("unknown container version " +
                         std::to_string(container));
      }
      if (const std::string type = reader.str(); type != key.type) {
        throw SerdeError("artifact type mismatch: file says '" + type + "'");
      }
      if (const std::uint32_t schema = reader.u32(); schema != key.schema) {
        throw SerdeError("stale schema version " + std::to_string(schema) +
                         " (want " + std::to_string(key.schema) + ")");
      }
      const std::uint64_t payload_size = reader.u64();
      if (payload_size != reader.remaining() - sizeof(std::uint64_t)) {
        throw SerdeError("payload size mismatch");
      }
      std::vector<std::uint8_t> payload(bytes.end() - reader.remaining(),
                                        bytes.end() - sizeof(std::uint64_t));
      ByteReader tail(std::span<const std::uint8_t>(
          bytes.data() + bytes.size() - sizeof(std::uint64_t),
          sizeof(std::uint64_t)));
      if (tail.u64() != fnv1a_bytes(payload)) {
        throw SerdeError("checksum mismatch");
      }
      result.status = LoadStatus::kHit;
      result.payload = std::move(payload);
    } catch (const Error& error) {
      result.status = LoadStatus::kCorrupt;
      result.detail = filename + ": " + error.what();
      result.payload.clear();
    }
  }

  if (result.corrupt()) {
    ++stats_.corrupt;
    obs::metrics().counter("store.corrupt").add(1);
    if (!config_.read_only) {
      // Quarantine by deletion: the next run takes a clean miss instead of
      // tripping over the same corrupt bytes forever.
      std::error_code ec;
      fs::remove(path, ec);
      drop_entry(filename);
    }
    return result;
  }

  ++stats_.hits;
  obs::metrics().counter("store.hit").add(1);
  const auto it = index_.find(filename);
  if (it != index_.end()) {
    touch(it);
  } else {
    // Present on disk but unknown to this instance (written by another
    // process since startup): adopt it.
    recency_.push_front({filename, static_cast<std::uint64_t>(bytes.size())});
    index_[filename] = recency_.begin();
    used_bytes_ += bytes.size();
  }
  if (!config_.read_only) {
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  return result;
}

bool ArtifactStore::save(const ArtifactKey& key,
                         const std::vector<std::uint8_t>& payload) {
  if (config_.read_only) return false;
  obs::ScopedTimer timer("store.save_ms");

  ByteWriter header;
  header.u32(kMagic);
  header.u32(kContainerVersion);
  header.str(key.type);
  header.u32(key.schema);
  header.u64(payload.size());

  const std::string filename = key.filename();
  const std::uint64_t total_bytes =
      header.bytes().size() + payload.size() + sizeof(std::uint64_t);

  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_bytes_ != 0 && total_bytes > budget_bytes_) {
    return false;  // would evict the entire store and still not fit
  }

  const fs::path dir(config_.root);
  const fs::path temp =
      dir / (".tmp-" + std::to_string(++temp_counter_) + "-" + filename);
  const fs::path target = dir / filename;
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    ByteWriter checksum;
    checksum.u64(fnv1a_bytes(payload));
    out.write(reinterpret_cast<const char*>(checksum.bytes().data()),
              static_cast<std::streamsize>(checksum.bytes().size()));
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(temp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }

  drop_entry(filename);  // replaced in place: refresh the accounting
  recency_.push_front({filename, total_bytes});
  index_[filename] = recency_.begin();
  used_bytes_ += total_bytes;
  evict_to_fit(0, filename);

  ++stats_.saved;
  obs::metrics().counter("store.saved").add(1);
  return true;
}

FetchResult ArtifactStore::load_or_compute(
    const ArtifactKey& key,
    const std::function<std::vector<std::uint8_t>()>& compute) {
  FetchResult result;
  result.load = load(key);
  if (result.load.hit()) return result;
  result.recovered_corrupt = result.load.corrupt();
  const std::string corrupt_detail = result.load.detail;
  const std::string filename = key.filename();

  std::uint64_t waits = 0;
  bool computed = false;
  while (true) {
    bool claimed = false;
    bool parked = false;
    {
      std::unique_lock<std::mutex> lock(flight_mutex_);
      if (!inflight_.contains(filename)) {
        inflight_.insert(filename);
        claimed = true;
      } else if (waits < kHerdMaxWaits) {
        ++waits;
        parked = true;
        flight_cv_.wait_for(lock, std::chrono::milliseconds(
                                      1LL << std::min<std::uint64_t>(waits, 6)));
      }
      // else: the flight holder outlived the whole backoff budget; fall
      // through and compute without claiming (duplicate work, no deadlock).
    }

    if (claimed) {
      std::vector<std::uint8_t> payload;
      try {
        payload = compute();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(flight_mutex_);
          inflight_.erase(filename);
        }
        flight_cv_.notify_all();
        throw;
      }
      save(key, payload);  // read-only / full disk degrade to no persistence
      {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        inflight_.erase(filename);
      }
      flight_cv_.notify_all();
      computed = true;
      result.load.status = LoadStatus::kHit;
      result.load.payload = std::move(payload);
      break;
    }

    if (parked) {
      LoadResult again = load(key);
      if (again.hit()) {
        result.load = std::move(again);
        break;
      }
      continue;  // holder not done (or its save failed): claim or park again
    }

    std::vector<std::uint8_t> payload = compute();
    save(key, payload);
    computed = true;
    result.load.status = LoadStatus::kHit;
    result.load.payload = std::move(payload);
    break;
  }

  result.computed = computed;
  if (result.recovered_corrupt) result.load.detail = corrupt_detail;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.herd_waits += waits;
    if (computed) ++stats_.recomputed;
  }
  if (waits > 0) obs::metrics().counter("store.herd_waits").add(waits);
  if (computed) obs::metrics().counter("store.recomputed").add(1);
  return result;
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ArtifactStore::object_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

double ArtifactStore::used_mb() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(used_bytes_) / 1e6;
}

std::vector<ArtifactInfo> ArtifactStore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ArtifactInfo> artifacts;
  artifacts.reserve(index_.size());
  for (const Entry& entry : recency_) {  // front = most recent
    std::optional<ArtifactKey> key = ArtifactKey::parse(entry.filename);
    if (!key.has_value()) continue;
    artifacts.push_back({std::move(*key), entry.filename, entry.bytes});
  }
  return artifacts;
}

std::uint64_t ArtifactStore::prune_to_budget(double mb) {
  if (config_.read_only) return 0;
  const std::uint64_t target_bytes =
      mb > 0.0 ? static_cast<std::uint64_t>(mb * 1e6) : 0;

  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t removed = 0;
  while (used_bytes_ > target_bytes && !recency_.empty()) {
    const Entry victim = recency_.back();
    std::error_code ec;
    fs::remove(fs::path(config_.root) / victim.filename, ec);
    drop_entry(victim.filename);
    ++removed;
    ++stats_.evicted;
    obs::metrics().counter("store.evicted").add(1);
  }
  return removed;
}

std::string occupancy_json(const ArtifactStore& store) {
  // Aggregate list() by artifact type; std::map keeps the breakdown sorted
  // so the output is stable run to run.
  struct TypeUse {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, TypeUse> by_type;
  std::uint64_t total_bytes = 0;
  for (const ArtifactInfo& info : store.list()) {
    TypeUse& use = by_type[info.key.type];
    ++use.count;
    use.bytes += info.bytes;
    total_bytes += info.bytes;
  }

  std::string out = "{\"root\":\"" + obs::json_escape(store.config().root) +
                    "\",\"read_only\":" +
                    (store.config().read_only ? "true" : "false") +
                    ",\"artifacts\":" + std::to_string(store.object_count()) +
                    ",\"bytes\":" + std::to_string(total_bytes);
  char mb[64];
  std::snprintf(mb, sizeof(mb), ",\"mb\":%.1f", store.used_mb());
  out += mb;
  out += ",\"types\":{";
  bool first = true;
  for (const auto& [type, use] : by_type) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json_escape(type) +
           "\":{\"count\":" + std::to_string(use.count) +
           ",\"bytes\":" + std::to_string(use.bytes) + "}";
  }
  out += "}";
  const StoreStats stats = store.stats();
  out += ",\"stats\":{\"hits\":" + std::to_string(stats.hits) +
         ",\"misses\":" + std::to_string(stats.misses) +
         ",\"corrupt\":" + std::to_string(stats.corrupt) +
         ",\"evicted\":" + std::to_string(stats.evicted) +
         ",\"saved\":" + std::to_string(stats.saved) +
         ",\"chaos_injected\":" + std::to_string(stats.chaos_injected) +
         ",\"recomputed\":" + std::to_string(stats.recomputed) +
         ",\"herd_waits\":" + std::to_string(stats.herd_waits) + "}}";
  return out;
}

}  // namespace repro::store
