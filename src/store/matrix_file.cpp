#include "store/matrix_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <limits>
#include <vector>

#include "util/error.h"

namespace repro::store {

// The format reinterprets mapped bytes as u32/u64/f64 arrays in place, so
// it is a little-endian on-disk format only a little-endian host can map.
// (Same bytes ByteWriter would emit; a big-endian port would need a
// byte-swapping reader, not a format change.)
static_assert(std::endian::native == std::endian::little,
              "matrix_file.cpp assumes a little-endian host");

namespace {

constexpr std::uint64_t kHeaderBytes = 32;

std::uint64_t pad8(std::uint64_t bytes) noexcept { return (bytes + 7) & ~7ULL; }

std::uint64_t ips_offset() noexcept { return kHeaderBytes; }

std::uint64_t servers_offset(std::uint64_t rows) noexcept {
  return kHeaderBytes + pad8(rows * 4);
}

std::uint64_t rtt_offset(std::uint64_t rows) noexcept {
  return servers_offset(rows) + rows * 8;
}

std::uint64_t checksum_offset(std::uint64_t rows,
                              std::uint64_t vp_count) noexcept {
  return rtt_offset(rows) + rows * vp_count * 8;
}

std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::uint64_t count) {
  std::uint64_t state = 0xcbf29ce484222325ULL;
  for (std::uint64_t i = 0; i < count; ++i) {
    state ^= data[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint64_t offset,
             std::uint32_t value) {
  std::memcpy(out.data() + offset, &value, sizeof value);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t offset,
             std::uint64_t value) {
  std::memcpy(out.data() + offset, &value, sizeof value);
}

}  // namespace

std::uint64_t matrix_file_size(std::uint64_t rows,
                               std::uint64_t vp_count) noexcept {
  return checksum_offset(rows, vp_count) + 8;
}

void write_matrix_file(const std::string& path, const LatencyMatrix& matrix) {
  const std::uint64_t rows = matrix.ips.size();
  require(matrix.server_indices.size() == rows,
          "write_matrix_file: server_indices size mismatch");
  require(matrix.rtt.size() == rows * matrix.vp_count,
          "write_matrix_file: rtt size mismatch");

  const std::uint64_t total = matrix_file_size(rows, matrix.vp_count);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(total), 0);
  put_u64(bytes, 0, kMatrixFileMagic);
  put_u32(bytes, 8, kMatrixFileVersion);
  put_u32(bytes, 12, kLatencyMatrixSchema);
  put_u64(bytes, 16, rows);
  put_u64(bytes, 24, matrix.vp_count);
  for (std::uint64_t i = 0; i < rows; ++i) {
    put_u32(bytes, ips_offset() + i * 4, matrix.ips[i].value());
    put_u64(bytes, servers_offset(rows) + i * 8, matrix.server_indices[i]);
  }
  if (!matrix.rtt.empty()) {
    std::memcpy(bytes.data() + rtt_offset(rows), matrix.rtt.data(),
                matrix.rtt.size() * sizeof(double));
  }
  put_u64(bytes, checksum_offset(rows, matrix.vp_count),
          fnv1a_bytes(bytes.data(), checksum_offset(rows, matrix.vp_count)));

  // Atomic publish: temp file next to the target, then one rename. The
  // temp name carries the PID so concurrent writers (two shard processes
  // warming unrelated ISPs in one directory) never collide; identical
  // inputs produce identical bytes, so a lost rename race is harmless.
  namespace fs = std::filesystem;
  const fs::path target(path);
  const fs::path temp =
      target.parent_path() /
      (".tmp-" + std::to_string(::getpid()) + "-" +
       target.filename().string());
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("write_matrix_file: open " + temp.string() + ": " +
                std::strerror(errno));
  }
  std::uint64_t written = 0;
  while (written < total) {
    const ssize_t n =
        ::write(fd, bytes.data() + written,
                static_cast<std::size_t>(total - written));
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      throw Error("write_matrix_file: write " + temp.string() + ": " +
                  std::strerror(err));
    }
    written += static_cast<std::uint64_t>(n);
  }
  ::close(fd);
  if (::rename(temp.c_str(), target.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    throw Error("write_matrix_file: rename to " + path + ": " +
                std::strerror(err));
  }
}

MappedLatencyMatrix MappedLatencyMatrix::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error("MappedLatencyMatrix: open " + path + ": " +
                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("MappedLatencyMatrix: stat " + path + ": " +
                std::strerror(err));
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderBytes + 8) {
    ::close(fd);
    throw SerdeError("matrix spill truncated below header: " + path);
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    throw Error("MappedLatencyMatrix: mmap " + path + ": " +
                std::strerror(errno));
  }

  MappedLatencyMatrix out;
  out.base_ = base;
  out.mapped_bytes_ = size;
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(base);
  const auto read_u64 = [bytes](std::uint64_t offset) {
    std::uint64_t value;
    std::memcpy(&value, bytes + offset, sizeof value);
    return value;
  };
  const auto read_u32 = [bytes](std::uint64_t offset) {
    std::uint32_t value;
    std::memcpy(&value, bytes + offset, sizeof value);
    return value;
  };
  // Validation order: fixed header fields first, then the size the header
  // implies, then the checksum over everything the size covers. The `out`
  // destructor unmaps on every throw below.
  if (read_u64(0) != kMatrixFileMagic) {
    throw SerdeError("matrix spill bad magic: " + path);
  }
  if (read_u32(8) != kMatrixFileVersion) {
    throw SerdeError("matrix spill bad container version: " + path);
  }
  if (read_u32(12) != kLatencyMatrixSchema) {
    throw SerdeError("matrix spill stale schema: " + path);
  }
  const std::uint64_t rows = read_u64(16);
  const std::uint64_t vps = read_u64(24);
  // Overflow guard before computing the expected size (mirrors serde's
  // kMaxElements cap: a garbled header must not wrap the arithmetic).
  constexpr std::uint64_t kMaxElements = 1ULL << 28;
  if (rows > kMaxElements || vps > kMaxElements ||
      (vps != 0 && rows > kMaxElements / vps)) {
    throw SerdeError("matrix spill implausible shape: " + path);
  }
  if (size != matrix_file_size(rows, vps)) {
    throw SerdeError("matrix spill size mismatch: " + path + ": " +
                     std::to_string(size) + " bytes for " +
                     std::to_string(rows) + "x" + std::to_string(vps));
  }
  const std::uint64_t body = checksum_offset(rows, vps);
  if (read_u64(body) != fnv1a_bytes(bytes, body)) {
    throw SerdeError("matrix spill checksum mismatch: " + path);
  }
  out.rows_ = static_cast<std::size_t>(rows);
  out.vp_count_ = static_cast<std::size_t>(vps);
  out.ips_ = reinterpret_cast<const std::uint32_t*>(bytes + ips_offset());
  out.server_indices_ =
      reinterpret_cast<const std::uint64_t*>(bytes + servers_offset(rows));
  out.rtt_ = reinterpret_cast<const double*>(bytes + rtt_offset(rows));
  return out;
}

std::optional<MappedLatencyMatrix> MappedLatencyMatrix::open_if_exists(
    const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) return std::nullopt;
  return open(path);
}

MappedLatencyMatrix::MappedLatencyMatrix(MappedLatencyMatrix&& other) noexcept {
  *this = std::move(other);
}

MappedLatencyMatrix& MappedLatencyMatrix::operator=(
    MappedLatencyMatrix&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) {
    ::munmap(base_, static_cast<std::size_t>(mapped_bytes_));
  }
  base_ = other.base_;
  mapped_bytes_ = other.mapped_bytes_;
  rows_ = other.rows_;
  vp_count_ = other.vp_count_;
  ips_ = other.ips_;
  server_indices_ = other.server_indices_;
  rtt_ = other.rtt_;
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
  other.rows_ = 0;
  other.vp_count_ = 0;
  other.ips_ = nullptr;
  other.server_indices_ = nullptr;
  other.rtt_ = nullptr;
  return *this;
}

MappedLatencyMatrix::~MappedLatencyMatrix() {
  if (base_ != nullptr) {
    ::munmap(base_, static_cast<std::size_t>(mapped_bytes_));
  }
}

Ipv4 MappedLatencyMatrix::ip(std::size_t row) const {
  require(row < rows_, "MappedLatencyMatrix: bad row");
  return Ipv4(ips_[row]);
}

std::size_t MappedLatencyMatrix::server_index(std::size_t row) const {
  require(row < rows_, "MappedLatencyMatrix: bad row");
  return static_cast<std::size_t>(server_indices_[row]);
}

const double* MappedLatencyMatrix::row(std::size_t row) const {
  require(row < rows_, "MappedLatencyMatrix: bad row");
  return rtt_ + row * vp_count_;
}

LatencyMatrix MappedLatencyMatrix::to_matrix() const {
  LatencyMatrix out;
  out.ips.reserve(rows_);
  out.server_indices.reserve(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    out.ips.push_back(Ipv4(ips_[i]));
    out.server_indices.push_back(static_cast<std::size_t>(server_indices_[i]));
  }
  out.vp_count = vp_count_;
  out.rtt.assign(rtt_, rtt_ + rows_ * vp_count_);
  return out;
}

void MappedLatencyMatrix::release_rows(std::size_t begin,
                                       std::size_t end) const noexcept {
  if (base_ == nullptr || begin >= end || end > rows_) return;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return;
  const std::uint64_t psize = static_cast<std::uint64_t>(page);
  const std::uint64_t lo_byte =
      rtt_offset(rows_) + static_cast<std::uint64_t>(begin) * vp_count_ * 8;
  const std::uint64_t hi_byte =
      rtt_offset(rows_) + static_cast<std::uint64_t>(end) * vp_count_ * 8;
  // Round inward: only pages fully covered by [begin, end) are dropped.
  const std::uint64_t lo = (lo_byte + psize - 1) / psize * psize;
  const std::uint64_t hi = hi_byte / psize * psize;
  if (lo >= hi) return;
  ::madvise(static_cast<std::uint8_t*>(base_) + lo,
            static_cast<std::size_t>(hi - lo), MADV_DONTNEED);
}

}  // namespace repro::store
