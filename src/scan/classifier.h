// The offnet discovery pipeline (Section 2.2): classify scanned certificates
// with the per-hypergiant fingerprints, attribute IPs to ASes, and keep only
// hypergiant certificates served from *other* organizations' networks.
#pragma once

#include <array>
#include <map>
#include <vector>

#include "scan/fingerprint.h"
#include "scan/scanner.h"
#include "topology/internet.h"

namespace repro {

/// Offnets found for one hypergiant: host ISP -> offnet IPs there.
struct HypergiantFootprint {
  Hypergiant hg = Hypergiant::kGoogle;
  std::map<AsIndex, std::vector<Ipv4>> by_isp;

  std::size_t isp_count() const noexcept { return by_isp.size(); }
  std::size_t ip_count() const noexcept;
};

/// Full discovery result for one scan.
struct DiscoveryReport {
  Methodology methodology = Methodology::k2023;
  std::array<HypergiantFootprint, kHypergiantCount> footprints;

  const HypergiantFootprint& footprint(Hypergiant hg) const noexcept {
    return footprints[static_cast<std::size_t>(hg)];
  }

  /// Total offnet IPs across hypergiants.
  std::size_t total_offnet_ips() const noexcept;

  /// ISPs hosting at least `min_hypergiants` distinct hypergiants.
  std::vector<AsIndex> isps_hosting_at_least(int min_hypergiants) const;

  /// Number of distinct hypergiants discovered at `isp`.
  int hypergiants_at(AsIndex isp) const noexcept;
};

/// Applies a methodology's fingerprints to scan records.
class OffnetClassifier {
 public:
  OffnetClassifier(const Internet& internet, Methodology methodology);

  DiscoveryReport classify(const std::vector<ScanRecord>& records) const;

 private:
  const Internet& internet_;
  Methodology methodology_;
};

}  // namespace repro
