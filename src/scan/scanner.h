// A Censys-style Internet-wide port-443 scan: walks the TLS population and
// emits certificate records, with configurable miss rate (real scans never
// see every host: firewalls, rate limits, churn).
#pragma once

#include <cstdint>
#include <vector>

#include "tls/cert_store.h"
#include "util/rng.h"

namespace repro {

/// One record of the scan output (one responsive IP:443).
struct ScanRecord {
  Ipv4 ip;
  TlsCertificate cert;
};

struct ScannerConfig {
  std::uint64_t seed = 1337;
  /// Probability that a live endpoint is missed by the scan.
  double miss_rate = 0.01;
};

/// Runs one scan over a snapshot's TLS population.
class Scanner {
 public:
  explicit Scanner(ScannerConfig config);

  std::vector<ScanRecord> scan(const CertStore& population) const;

 private:
  ScannerConfig config_;
};

}  // namespace repro
