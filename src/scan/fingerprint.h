// Certificate fingerprint rules: the per-hypergiant checks the 2021 (Gigis
// et al.) and updated 2023 methodologies apply to a scanned certificate.
//
// 2021 methodology:
//   * Google: Subject Organization == "Google LLC" + Google issuer.
//   * Meta:   certificate name exactly matches an onnet wildcard
//             (*.fna.fbcdn.net) + DigiCert issuer + Facebook/Meta org.
//   * Netflix: name matches *.oca.nflxvideo.net + Netflix org.
//   * Akamai: Subject Organization == "Akamai Technologies, Inc.".
//
// 2023 methodology (Section 2.2 updates):
//   * Google: CN matches *.googlevideo.com + Google Trust Services issuer
//             (the Organization entry is gone).
//   * Meta:   name matches the *.fbcdn.net pattern (site-specific names
//             like *.fhan14-4.fna.fbcdn.net no longer equal onnet names).
//   * Netflix, Akamai: unchanged.
#pragma once

#include <string_view>

#include "hypergiant/profile.h"
#include "tls/certificate.h"

namespace repro {

/// Which methodology's fingerprints to apply.
enum class Methodology : std::uint8_t { k2021 = 0, k2023 };

std::string_view to_string(Methodology methodology) noexcept;

/// True if `cert` matches hypergiant `hg`'s fingerprint under `methodology`.
bool certificate_matches(const TlsCertificate& cert, Hypergiant hg,
                         Methodology methodology) noexcept;

}  // namespace repro
