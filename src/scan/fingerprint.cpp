#include "scan/fingerprint.h"

#include "util/strings.h"

namespace repro {

namespace {

bool google_issuer(const TlsCertificate& cert) noexcept {
  return cert.issuer.organization == "Google Trust Services LLC";
}

bool match_google(const TlsCertificate& cert, Methodology methodology) noexcept {
  if (!google_issuer(cert)) return false;
  if (methodology == Methodology::k2021) {
    // Organization-based ownership inference.
    return cert.subject.organization == "Google LLC";
  }
  // 2023: the Organization entry is gone; use the CN field instead.
  return glob_match("*.googlevideo.com", cert.subject.common_name);
}

bool match_meta(const TlsCertificate& cert, Methodology methodology) noexcept {
  if (methodology == Methodology::k2021) {
    // Exact match against known onnet names.
    return cert.has_exact_name("*.fna.fbcdn.net") ||
           cert.has_exact_name("*.fbcdn.net");
  }
  // 2023: any name under fbcdn.net (site-specific offnet names included).
  // Note ends_with on the registered domain, not a one-label wildcard: the
  // offnet names have several labels (f<site>.fna.fbcdn.net).
  const auto name_ok = [](std::string_view name) {
    return ends_with(to_lower(name), ".fbcdn.net");
  };
  if (name_ok(cert.subject.common_name)) return true;
  for (const auto& san : cert.san_dns) {
    if (name_ok(san)) return true;
  }
  return false;
}

bool match_netflix(const TlsCertificate& cert) noexcept {
  return cert.subject.organization == "Netflix, Inc." &&
         cert.matches_name_glob("*.oca.nflxvideo.net");
}

bool match_akamai(const TlsCertificate& cert) noexcept {
  return cert.subject.organization == "Akamai Technologies, Inc.";
}

}  // namespace

std::string_view to_string(Methodology methodology) noexcept {
  return methodology == Methodology::k2021 ? "2021" : "2023";
}

bool certificate_matches(const TlsCertificate& cert, Hypergiant hg,
                         Methodology methodology) noexcept {
  switch (hg) {
    case Hypergiant::kGoogle: return match_google(cert, methodology);
    case Hypergiant::kNetflix: return match_netflix(cert);
    case Hypergiant::kMeta: return match_meta(cert, methodology);
    case Hypergiant::kAkamai: return match_akamai(cert);
  }
  return false;
}

}  // namespace repro
