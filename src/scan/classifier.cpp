#include "scan/classifier.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro {

std::size_t HypergiantFootprint::ip_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [isp, ips] : by_isp) {
    (void)isp;
    total += ips.size();
  }
  return total;
}

std::size_t DiscoveryReport::total_offnet_ips() const noexcept {
  std::size_t total = 0;
  for (const auto& footprint : footprints) total += footprint.ip_count();
  return total;
}

std::vector<AsIndex> DiscoveryReport::isps_hosting_at_least(
    int min_hypergiants) const {
  std::map<AsIndex, int> counts;
  for (const auto& footprint : footprints) {
    for (const auto& [isp, ips] : footprint.by_isp) {
      (void)ips;
      ++counts[isp];
    }
  }
  std::vector<AsIndex> out;
  for (const auto& [isp, count] : counts) {
    if (count >= min_hypergiants) out.push_back(isp);
  }
  return out;
}

int DiscoveryReport::hypergiants_at(AsIndex isp) const noexcept {
  int count = 0;
  for (const auto& footprint : footprints) {
    if (footprint.by_isp.contains(isp)) ++count;
  }
  return count;
}

OffnetClassifier::OffnetClassifier(const Internet& internet,
                                   Methodology methodology)
    : internet_(internet), methodology_(methodology) {}

DiscoveryReport OffnetClassifier::classify(
    const std::vector<ScanRecord>& records) const {
  obs::ScopedSpan span("scan.classify");
  DiscoveryReport report;
  report.methodology = methodology_;
  for (std::size_t i = 0; i < kHypergiantCount; ++i) {
    report.footprints[i].hg = static_cast<Hypergiant>(i);
  }
  std::array<std::uint64_t, kHypergiantCount> matched{};
  std::uint64_t unrouted = 0;
  std::uint64_t in_hg_as_count = 0;

  // Any hypergiant's own AS disqualifies an IP from being an offnet of any
  // hypergiant (the methodology looks for certs in *other* networks).
  std::array<AsIndex, kHypergiantCount> hg_as{};
  for (const Hypergiant hg : all_hypergiants()) {
    hg_as[static_cast<std::size_t>(hg)] = internet_.as_by_asn(profile(hg).asn);
  }

  for (const ScanRecord& record : records) {
    const auto owner = internet_.as_of_ip(record.ip);
    if (!owner) {  // unrouted space
      ++unrouted;
      continue;
    }
    const bool in_hypergiant_as =
        std::find(hg_as.begin(), hg_as.end(), *owner) != hg_as.end();
    if (in_hypergiant_as) {
      ++in_hg_as_count;
      continue;
    }
    for (const Hypergiant hg : all_hypergiants()) {
      if (!certificate_matches(record.cert, hg, methodology_)) continue;
      ++matched[static_cast<std::size_t>(hg)];
      report.footprints[static_cast<std::size_t>(hg)].by_isp[*owner].push_back(
          record.ip);
    }
  }
  for (const Hypergiant hg : all_hypergiants()) {
    obs::metrics()
        .counter("certs.matched." + std::string(to_string(hg)))
        .add(matched[static_cast<std::size_t>(hg)]);
  }
  obs::metrics().counter("classify.records_unrouted").add(unrouted);
  obs::metrics().counter("classify.records_in_hypergiant_as")
      .add(in_hg_as_count);
  return report;
}

}  // namespace repro
