#include "scan/classifier.h"

#include <algorithm>

namespace repro {

std::size_t HypergiantFootprint::ip_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [isp, ips] : by_isp) {
    (void)isp;
    total += ips.size();
  }
  return total;
}

std::size_t DiscoveryReport::total_offnet_ips() const noexcept {
  std::size_t total = 0;
  for (const auto& footprint : footprints) total += footprint.ip_count();
  return total;
}

std::vector<AsIndex> DiscoveryReport::isps_hosting_at_least(
    int min_hypergiants) const {
  std::map<AsIndex, int> counts;
  for (const auto& footprint : footprints) {
    for (const auto& [isp, ips] : footprint.by_isp) {
      (void)ips;
      ++counts[isp];
    }
  }
  std::vector<AsIndex> out;
  for (const auto& [isp, count] : counts) {
    if (count >= min_hypergiants) out.push_back(isp);
  }
  return out;
}

int DiscoveryReport::hypergiants_at(AsIndex isp) const noexcept {
  int count = 0;
  for (const auto& footprint : footprints) {
    if (footprint.by_isp.contains(isp)) ++count;
  }
  return count;
}

OffnetClassifier::OffnetClassifier(const Internet& internet,
                                   Methodology methodology)
    : internet_(internet), methodology_(methodology) {}

DiscoveryReport OffnetClassifier::classify(
    const std::vector<ScanRecord>& records) const {
  DiscoveryReport report;
  report.methodology = methodology_;
  for (std::size_t i = 0; i < kHypergiantCount; ++i) {
    report.footprints[i].hg = static_cast<Hypergiant>(i);
  }

  // Any hypergiant's own AS disqualifies an IP from being an offnet of any
  // hypergiant (the methodology looks for certs in *other* networks).
  std::array<AsIndex, kHypergiantCount> hg_as{};
  for (const Hypergiant hg : all_hypergiants()) {
    hg_as[static_cast<std::size_t>(hg)] = internet_.as_by_asn(profile(hg).asn);
  }

  for (const ScanRecord& record : records) {
    const auto owner = internet_.as_of_ip(record.ip);
    if (!owner) continue;  // unrouted space
    const bool in_hypergiant_as =
        std::find(hg_as.begin(), hg_as.end(), *owner) != hg_as.end();
    if (in_hypergiant_as) continue;
    for (const Hypergiant hg : all_hypergiants()) {
      if (!certificate_matches(record.cert, hg, methodology_)) continue;
      report.footprints[static_cast<std::size_t>(hg)].by_isp[*owner].push_back(
          record.ip);
    }
  }
  return report;
}

}  // namespace repro
