#include "scan/scanner.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace repro {

Scanner::Scanner(ScannerConfig config) : config_(config) {
  require(config_.miss_rate >= 0.0 && config_.miss_rate < 1.0,
          "ScannerConfig: miss_rate outside [0, 1)");
}

std::vector<ScanRecord> Scanner::scan(const CertStore& population) const {
  obs::ScopedSpan span("scan.scan");
  Rng rng(config_.seed);
  std::vector<ScanRecord> records;
  records.reserve(population.size());
  for (const TlsEndpoint& endpoint : population.all_sorted()) {
    if (rng.chance(config_.miss_rate)) continue;
    records.push_back({endpoint.ip, endpoint.cert});
  }
  obs::metrics().counter("scan.endpoints_total").add(population.size());
  obs::metrics().counter("scan.records_total").add(records.size());
  obs::metrics().counter("scan.missed").add(population.size() - records.size());
  return records;
}

}  // namespace repro
