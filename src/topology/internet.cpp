#include "topology/internet.h"

#include <algorithm>

#include "util/error.h"

namespace repro {

MetroIndex Internet::add_metro(Metro metro) {
  metro.index = static_cast<MetroIndex>(metros.size());
  metros.push_back(std::move(metro));
  return metros.back().index;
}

FacilityIndex Internet::add_facility(Facility facility) {
  facility.index = static_cast<FacilityIndex>(facilities.size());
  require(facility.metro < metros.size(), "add_facility: bad metro index");
  facilities.push_back(std::move(facility));
  return facilities.back().index;
}

IxpIndex Internet::add_ixp(Ixp ixp) {
  ixp.index = static_cast<IxpIndex>(ixps.size());
  require(ixp.metro < metros.size(), "add_ixp: bad metro index");
  ixps.push_back(std::move(ixp));
  return ixps.back().index;
}

AsIndex Internet::add_as(As as) {
  as.index = static_cast<AsIndex>(ases.size());
  require(as.asn != 0, "add_as: ASN must be nonzero");
  require(!asn_index_.contains(as.asn), "add_as: duplicate ASN");
  asn_index_.emplace(as.asn, as.index);
  ases.push_back(std::move(as));
  return ases.back().index;
}

LinkIndex Internet::add_link(InterdomainLink link) {
  link.index = static_cast<LinkIndex>(links.size());
  require(link.a < ases.size() && link.b < ases.size(), "add_link: bad AS index");
  require(link.a != link.b, "add_link: self-link");
  if (link.kind == LinkKind::kTransit) {
    ases[link.a].provider_links.push_back(link.index);
    ases[link.b].customer_links.push_back(link.index);
  } else {
    ases[link.a].peer_links.push_back(link.index);
    ases[link.b].peer_links.push_back(link.index);
  }
  links.push_back(link);
  return link.index;
}

void Internet::announce(AsIndex index, const Prefix& prefix) {
  require(index < ases.size(), "announce: bad AS index");
  ip_to_as_.insert(prefix, index);
}

void Internet::register_ixp_port(Ipv4 address, IxpIndex ixp, AsIndex member) {
  require(ixp < ixps.size() && member < ases.size(), "register_ixp_port: bad index");
  ixp_ports_[address] = IxpPortInfo{ixp, member};
}

AsIndex Internet::as_by_asn(AsNumber asn) const {
  const auto found = find_as_by_asn(asn);
  if (!found) throw NotFoundError("ASN " + std::to_string(asn));
  return *found;
}

std::optional<AsIndex> Internet::find_as_by_asn(AsNumber asn) const noexcept {
  const auto it = asn_index_.find(asn);
  if (it == asn_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<AsIndex> Internet::as_of_ip(Ipv4 address) const {
  return ip_to_as_.lookup(address);
}

std::optional<IxpPortInfo> Internet::ixp_port_of_ip(Ipv4 address) const {
  const auto it = ixp_ports_.find(address);
  if (it == ixp_ports_.end()) return std::nullopt;
  return it->second;
}

const CountryInfo& Internet::country_of_as(AsIndex index) const {
  require(index < ases.size(), "country_of_as: bad AS index");
  return all_countries()[ases[index].country];
}

const Metro& Internet::metro_of_facility(FacilityIndex index) const {
  require(index < facilities.size(), "metro_of_facility: bad facility index");
  return metros[facilities[index].metro];
}

std::vector<AsIndex> Internet::access_isps() const {
  std::vector<AsIndex> out;
  for (const auto& as : ases) {
    if (as.tier == AsTier::kAccess) out.push_back(as.index);
  }
  return out;
}

double Internet::total_access_users() const noexcept {
  double total = 0.0;
  for (const auto& as : ases) {
    if (as.tier == AsTier::kAccess) total += as.users;
  }
  return total;
}

std::vector<FacilityIndex> Internet::hosting_options(AsIndex as_index,
                                                     MetroIndex metro) const {
  require(as_index < ases.size(), "hosting_options: bad AS index");
  require(metro < metros.size(), "hosting_options: bad metro index");
  std::vector<FacilityIndex> out;
  for (const FacilityIndex fi : ases[as_index].facilities) {
    if (facilities[fi].metro == metro) out.push_back(fi);
  }
  for (const auto& facility : facilities) {
    if (facility.metro == metro && facility.kind == FacilityKind::kColocation) {
      out.push_back(facility.index);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<AsIndex> Internet::peers_of(AsIndex as_index) const {
  require(as_index < ases.size(), "peers_of: bad AS index");
  std::vector<AsIndex> out;
  for (const LinkIndex li : ases[as_index].peer_links) {
    const auto& link = links[li];
    out.push_back(link.a == as_index ? link.b : link.a);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<LinkIndex> Internet::peering_links_between(AsIndex a, AsIndex b) const {
  require(a < ases.size() && b < ases.size(),
          "peering_links_between: bad AS index");
  std::vector<LinkIndex> out;
  for (const LinkIndex li : ases[a].peer_links) {
    const auto& link = links[li];
    const AsIndex other = link.a == a ? link.b : link.a;
    if (other == b) out.push_back(li);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Internet::has_peering(AsIndex a, AsIndex b) const {
  require(a < ases.size() && b < ases.size(), "has_peering: bad AS index");
  for (const LinkIndex li : ases[a].peer_links) {
    const auto& link = links[li];
    const AsIndex other = link.a == a ? link.b : link.a;
    if (other == b) return true;
  }
  return false;
}

}  // namespace repro
