#include "topology/entities.h"

namespace repro {

std::string_view to_string(AsTier tier) noexcept {
  switch (tier) {
    case AsTier::kTier1: return "tier1";
    case AsTier::kTransit: return "transit";
    case AsTier::kAccess: return "access";
    case AsTier::kHypergiant: return "hypergiant";
  }
  return "?";
}

std::string_view to_string(LinkKind kind) noexcept {
  switch (kind) {
    case LinkKind::kTransit: return "transit";
    case LinkKind::kPrivatePeering: return "pni";
    case LinkKind::kIxpPeering: return "ixp";
  }
  return "?";
}

}  // namespace repro
