// The Internet model: owns all topology entities and provides the lookup
// indices the measurement substrates need (ASN resolution, IP-to-AS mapping,
// IXP peering-LAN address attribution).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ip/prefix_trie.h"
#include "topology/country.h"
#include "topology/entities.h"

namespace repro {

/// Attribution of an IXP peering-LAN address: which fabric, which member.
struct IxpPortInfo {
  IxpIndex ixp = kInvalidIndex;
  AsIndex member = kInvalidIndex;
};

/// Owns the generated world. Entities are stored in vectors and addressed by
/// index; indices are stable for the lifetime of the object.
class Internet {
 public:
  // --- entity storage (populated by InternetGenerator) ---
  std::vector<Metro> metros;
  std::vector<Facility> facilities;
  std::vector<Ixp> ixps;
  std::vector<As> ases;
  std::vector<InterdomainLink> links;

  // --- construction-time registration ---
  MetroIndex add_metro(Metro metro);
  FacilityIndex add_facility(Facility facility);
  IxpIndex add_ixp(Ixp ixp);
  AsIndex add_as(As as);
  /// Adds a link and wires it into both endpoint adjacency lists.
  LinkIndex add_link(InterdomainLink link);

  /// Registers `prefix` as announced by AS `index` (updates the IP->AS trie).
  void announce(AsIndex index, const Prefix& prefix);

  /// Registers an IXP peering-LAN port address for a member.
  void register_ixp_port(Ipv4 address, IxpIndex ixp, AsIndex member);

  // --- lookups ---
  /// AS index by ASN. Throws NotFoundError.
  AsIndex as_by_asn(AsNumber asn) const;
  /// AS index by ASN; nullopt when unknown.
  std::optional<AsIndex> find_as_by_asn(AsNumber asn) const noexcept;

  /// Longest-prefix-match attribution of an address to an AS.
  std::optional<AsIndex> as_of_ip(Ipv4 address) const;

  /// IXP port attribution; nullopt if the address is not on a peering LAN.
  std::optional<IxpPortInfo> ixp_port_of_ip(Ipv4 address) const;

  const CountryInfo& country_of_as(AsIndex index) const;
  const Metro& metro_of_facility(FacilityIndex index) const;

  /// All access-tier AS indices (the candidate offnet hosts).
  std::vector<AsIndex> access_isps() const;

  /// Total APNIC-style Internet users across access ISPs.
  double total_access_users() const noexcept;

  /// Facilities located in `metro` that `as_index` can host servers in
  /// (its own facilities there plus the metro's colocation facilities).
  std::vector<FacilityIndex> hosting_options(AsIndex as_index,
                                             MetroIndex metro) const;

  /// Neighbors of `as_index` reachable over peering links (PNI or IXP).
  std::vector<AsIndex> peers_of(AsIndex as_index) const;

  /// True if a peering (PNI or IXP) link exists between the two ASes.
  bool has_peering(AsIndex a, AsIndex b) const;

  /// All peering links (PNI and IXP) between two ASes, in index order.
  /// Parallel links are common between hypergiants and large ISPs.
  std::vector<LinkIndex> peering_links_between(AsIndex a, AsIndex b) const;

  // --- serialization access (store/serde.cpp) ---
  /// The IP->AS announcement trie; entries() is deterministic, which the
  /// Internet artifact encoding relies on.
  const PrefixTrie<AsIndex>& ip_to_as() const noexcept { return ip_to_as_; }
  /// All registered peering-LAN ports (unordered; serde sorts by address).
  const std::unordered_map<Ipv4, IxpPortInfo>& ixp_ports() const noexcept {
    return ixp_ports_;
  }

 private:
  std::unordered_map<AsNumber, AsIndex> asn_index_;
  PrefixTrie<AsIndex> ip_to_as_;
  std::unordered_map<Ipv4, IxpPortInfo> ixp_ports_;
};

}  // namespace repro
