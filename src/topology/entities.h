// Core topology entities: metros, facilities, IXPs, autonomous systems and
// interdomain links. These are plain data records owned by `Internet`;
// cross-references use stable integer indices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ip/allocator.h"
#include "ip/ipv4.h"
#include "util/geo.h"

namespace repro {

/// BGP autonomous system number.
using AsNumber = std::uint32_t;

/// Indices into the Internet's entity vectors.
using CountryIndex = std::uint32_t;
using MetroIndex = std::uint32_t;
using FacilityIndex = std::uint32_t;
using IxpIndex = std::uint32_t;
using AsIndex = std::uint32_t;
using LinkIndex = std::uint32_t;

inline constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

/// A metropolitan area: where facilities, IXPs and users live.
struct Metro {
  MetroIndex index = kInvalidIndex;
  std::string name;          // e.g. "US-newyork3"
  std::string iata;          // 3-letter code used in hostnames, e.g. "nyc"
  CountryIndex country = kInvalidIndex;
  GeoPoint location;
  double users = 0.0;        // Internet users attributed to this metro
};

enum class FacilityKind : std::uint8_t {
  kIspOwned,     // an ISP's own POP / central office
  kColocation,   // third-party colo offering space to many networks
};

/// A physical building that can host offnet servers.
struct Facility {
  FacilityIndex index = kInvalidIndex;
  std::string name;              // e.g. "Equinix-style NYC-1" or "AS65012 POP nyc"
  FacilityKind kind = FacilityKind::kColocation;
  MetroIndex metro = kInvalidIndex;
  AsNumber owner_asn = 0;        // 0 for third-party colocation facilities
  GeoPoint location;
};

/// An Internet exchange point with a shared peering LAN.
struct Ixp {
  IxpIndex index = kInvalidIndex;
  std::string name;              // e.g. "IX-nyc"
  MetroIndex metro = kInvalidIndex;
  FacilityIndex facility = kInvalidIndex;  // the colo hosting the fabric
  Prefix peering_lan;            // addresses assigned to member router ports
  std::vector<AsIndex> members;
  double port_capacity_gbps = 100.0;  // default member port size
};

enum class AsTier : std::uint8_t {
  kTier1,       // global transit-free backbone
  kTransit,     // regional/national transit provider
  kAccess,      // eyeball/access ISP (the offnet hosts)
  kHypergiant,  // content hypergiant (Google/Netflix/Meta/Akamai onnet)
};

std::string_view to_string(AsTier tier) noexcept;

/// An autonomous system. For access ISPs this is "the ISP" of the paper.
struct As {
  AsIndex index = kInvalidIndex;
  AsNumber asn = 0;
  std::string name;
  AsTier tier = AsTier::kAccess;
  CountryIndex country = kInvalidIndex;
  double users = 0.0;                 // APNIC-style user estimate
  std::vector<MetroIndex> metros;     // points of presence
  std::vector<FacilityIndex> facilities;  // facilities where it can host/hosts
  /// The metro where this ISP interconnects and preferentially hosts
  /// offnets (most smaller ISPs have exactly one such location).
  MetroIndex primary_metro = kInvalidIndex;

  /// Address space: infrastructure (routers, hosted offnet servers) and
  /// user space announced to the Internet.
  PrefixAllocator infra{Prefix{}};
  std::vector<Prefix> user_prefixes;

  /// Adjacency (filled by the generator): link indices by role.
  std::vector<LinkIndex> provider_links;  // links where this AS is customer
  std::vector<LinkIndex> customer_links;  // links where this AS is provider
  std::vector<LinkIndex> peer_links;      // settlement-free peering (PNI/IXP)
};

enum class LinkKind : std::uint8_t {
  kTransit,         // customer-provider
  kPrivatePeering,  // dedicated PNI in a facility
  kIxpPeering,      // public peering across an IXP fabric
};

std::string_view to_string(LinkKind kind) noexcept;

/// An interdomain link. For kTransit, `a` is the customer and `b` the
/// provider. For peering kinds the order carries no meaning.
struct InterdomainLink {
  LinkIndex index = kInvalidIndex;
  LinkKind kind = LinkKind::kTransit;
  AsIndex a = kInvalidIndex;
  AsIndex b = kInvalidIndex;
  /// Where the link lands: a facility for transit/PNI, or the IXP.
  FacilityIndex facility = kInvalidIndex;
  IxpIndex ixp = kInvalidIndex;
  double capacity_gbps = 10.0;
};

}  // namespace repro
