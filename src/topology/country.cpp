#include "topology/country.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace repro {

namespace {

using enum Continent;

// Internet-user estimates (millions) loosely follow public 2023 figures
// (ITU / APNIC-style); centroids are rough country centers. Exact values do
// not matter for the reproduction -- only the distributional shape does.
constexpr std::array<CountryInfo, 95> kCountries{{
    {"AE", "United Arab Emirates", kAsia, 9.4, {24.0, 54.0}},
    {"AR", "Argentina", kSouthAmerica, 40.0, {-34.0, -64.0}},
    {"AT", "Austria", kEurope, 8.2, {47.5, 14.5}},
    {"AU", "Australia", kOceania, 24.0, {-25.0, 134.0}},
    {"BD", "Bangladesh", kAsia, 66.0, {24.0, 90.0}},
    {"BE", "Belgium", kEurope, 10.8, {50.8, 4.5}},
    {"BG", "Bulgaria", kEurope, 5.3, {43.0, 25.0}},
    {"BO", "Bolivia", kSouthAmerica, 8.2, {-17.0, -65.0}},
    {"BR", "Brazil", kSouthAmerica, 181.0, {-10.0, -55.0}},
    {"CA", "Canada", kNorthAmerica, 36.0, {56.0, -106.0}},
    {"CH", "Switzerland", kEurope, 8.3, {47.0, 8.0}},
    {"CL", "Chile", kSouthAmerica, 17.0, {-30.0, -71.0}},
    {"CM", "Cameroon", kAfrica, 12.0, {6.0, 12.5}},
    {"CN", "China", kAsia, 1050.0, {35.0, 105.0}},
    {"CO", "Colombia", kSouthAmerica, 38.0, {4.0, -72.0}},
    {"CZ", "Czechia", kEurope, 9.3, {49.8, 15.5}},
    {"DE", "Germany", kEurope, 78.0, {51.0, 9.0}},
    {"DK", "Denmark", kEurope, 5.8, {56.0, 10.0}},
    {"DZ", "Algeria", kAfrica, 32.0, {28.0, 3.0}},
    {"EC", "Ecuador", kSouthAmerica, 13.0, {-2.0, -77.5}},
    {"EG", "Egypt", kAfrica, 80.0, {27.0, 30.0}},
    {"ES", "Spain", kEurope, 44.0, {40.0, -4.0}},
    {"ET", "Ethiopia", kAfrica, 21.0, {8.0, 38.0}},
    {"FI", "Finland", kEurope, 5.2, {64.0, 26.0}},
    {"FR", "France", kEurope, 60.0, {46.0, 2.0}},
    {"GB", "United Kingdom", kEurope, 66.0, {54.0, -2.0}},
    {"GH", "Ghana", kAfrica, 23.0, {8.0, -2.0}},
    {"GL", "Greenland", kNorthAmerica, 0.05, {72.0, -40.0}},
    {"GR", "Greece", kEurope, 8.5, {39.0, 22.0}},
    {"GT", "Guatemala", kNorthAmerica, 9.0, {15.5, -90.3}},
    {"HK", "Hong Kong", kAsia, 7.0, {22.3, 114.2}},
    {"HU", "Hungary", kEurope, 8.6, {47.0, 20.0}},
    {"ID", "Indonesia", kAsia, 212.0, {-2.0, 118.0}},
    {"IE", "Ireland", kEurope, 4.9, {53.0, -8.0}},
    {"IL", "Israel", kAsia, 8.3, {31.5, 34.8}},
    {"IN", "India", kAsia, 880.0, {21.0, 78.0}},
    {"IQ", "Iraq", kAsia, 32.0, {33.0, 44.0}},
    {"IR", "Iran", kAsia, 72.0, {32.0, 53.0}},
    {"IT", "Italy", kEurope, 51.0, {42.8, 12.8}},
    {"JP", "Japan", kAsia, 103.0, {36.0, 138.0}},
    {"KE", "Kenya", kAfrica, 23.0, {1.0, 38.0}},
    {"KH", "Cambodia", kAsia, 11.0, {12.5, 105.0}},
    {"KR", "South Korea", kAsia, 50.0, {36.0, 128.0}},
    {"KZ", "Kazakhstan", kAsia, 17.0, {48.0, 67.0}},
    {"LK", "Sri Lanka", kAsia, 11.0, {7.0, 81.0}},
    {"LU", "Luxembourg", kEurope, 0.6, {49.8, 6.1}},
    {"MA", "Morocco", kAfrica, 32.0, {32.0, -6.0}},
    {"MM", "Myanmar", kAsia, 24.0, {21.0, 96.0}},
    {"MN", "Mongolia", kAsia, 2.7, {46.9, 103.8}},
    {"MX", "Mexico", kNorthAmerica, 97.0, {23.0, -102.0}},
    {"MY", "Malaysia", kAsia, 31.0, {3.5, 102.0}},
    {"MZ", "Mozambique", kAfrica, 6.0, {-18.0, 35.0}},
    {"NG", "Nigeria", kAfrica, 103.0, {9.0, 8.0}},
    {"NL", "Netherlands", kEurope, 16.3, {52.2, 5.3}},
    {"NO", "Norway", kEurope, 5.3, {61.0, 8.0}},
    {"NP", "Nepal", kAsia, 15.0, {28.0, 84.0}},
    {"NZ", "New Zealand", kOceania, 4.7, {-41.0, 174.0}},
    {"PE", "Peru", kSouthAmerica, 24.0, {-10.0, -76.0}},
    {"PH", "Philippines", kAsia, 85.0, {13.0, 122.0}},
    {"PK", "Pakistan", kAsia, 87.0, {30.0, 70.0}},
    {"PL", "Poland", kEurope, 33.0, {52.0, 19.0}},
    {"PT", "Portugal", kEurope, 8.7, {39.5, -8.0}},
    {"PY", "Paraguay", kSouthAmerica, 5.6, {-23.0, -58.0}},
    {"QA", "Qatar", kAsia, 2.9, {25.3, 51.2}},
    {"RO", "Romania", kEurope, 17.0, {46.0, 25.0}},
    {"RS", "Serbia", kEurope, 6.2, {44.0, 21.0}},
    {"RU", "Russia", kEurope, 127.0, {60.0, 90.0}},
    {"SA", "Saudi Arabia", kAsia, 34.0, {24.0, 45.0}},
    {"SE", "Sweden", kEurope, 9.9, {62.0, 15.0}},
    {"SG", "Singapore", kAsia, 5.5, {1.35, 103.8}},
    {"SK", "Slovakia", kEurope, 4.9, {48.7, 19.5}},
    {"SN", "Senegal", kAfrica, 10.0, {14.5, -14.5}},
    {"TH", "Thailand", kAsia, 61.0, {15.0, 101.0}},
    {"TN", "Tunisia", kAfrica, 8.0, {34.0, 9.0}},
    {"TR", "Turkey", kAsia, 71.0, {39.0, 35.0}},
    {"TW", "Taiwan", kAsia, 21.0, {23.7, 121.0}},
    {"TZ", "Tanzania", kAfrica, 19.0, {-6.0, 35.0}},
    {"UA", "Ukraine", kEurope, 31.0, {49.0, 32.0}},
    {"UG", "Uganda", kAfrica, 13.0, {1.3, 32.3}},
    {"US", "United States", kNorthAmerica, 307.0, {39.8, -98.6}},
    {"UY", "Uruguay", kSouthAmerica, 3.1, {-33.0, -56.0}},
    {"UZ", "Uzbekistan", kAsia, 27.0, {41.0, 64.0}},
    {"VE", "Venezuela", kSouthAmerica, 21.0, {8.0, -66.0}},
    {"VN", "Vietnam", kAsia, 77.0, {16.0, 106.0}},
    {"ZA", "South Africa", kAfrica, 43.0, {-29.0, 24.0}},
    {"ZM", "Zambia", kAfrica, 6.0, {-13.5, 27.8}},
    {"ZW", "Zimbabwe", kAfrica, 5.5, {-19.0, 29.8}},
    {"AO", "Angola", kAfrica, 12.0, {-12.5, 18.5}},
    {"CI", "Ivory Coast", kAfrica, 12.0, {7.5, -5.5}},
    {"CR", "Costa Rica", kNorthAmerica, 4.2, {10.0, -84.2}},
    {"DO", "Dominican Republic", kNorthAmerica, 9.0, {19.0, -70.7}},
    {"HN", "Honduras", kNorthAmerica, 5.0, {15.0, -86.5}},
    {"JM", "Jamaica", kNorthAmerica, 2.4, {18.1, -77.3}},
    {"LB", "Lebanon", kAsia, 4.8, {33.9, 35.9}},
    {"OM", "Oman", kAsia, 4.4, {21.0, 57.0}},
}};

}  // namespace

std::string_view to_string(Continent continent) noexcept {
  switch (continent) {
    case kAfrica: return "Africa";
    case kAsia: return "Asia";
    case kEurope: return "Europe";
    case kNorthAmerica: return "North America";
    case kSouthAmerica: return "South America";
    case kOceania: return "Oceania";
  }
  return "?";
}

std::span<const CountryInfo> all_countries() noexcept { return kCountries; }

const CountryInfo& country_by_code(std::string_view code) {
  const auto it = std::find_if(kCountries.begin(), kCountries.end(),
                               [&](const CountryInfo& c) { return c.code == code; });
  if (it == kCountries.end()) throw NotFoundError("country code '" + std::string(code) + "'");
  return *it;
}

double total_internet_users_m() noexcept {
  double total = 0.0;
  for (const auto& country : kCountries) total += country.internet_users_m;
  return total;
}

}  // namespace repro
