#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.h"

namespace repro {

namespace {

constexpr double kMillion = 1e6;

/// Deterministic per-country sub-generator so that adding a country does not
/// reshuffle every other country's draws.
Rng country_rng(std::uint64_t seed, std::string_view code, std::uint64_t salt) {
  std::uint64_t h = seed ^ mix64(salt);
  for (const char c : code) h = mix64(h ^ static_cast<std::uint64_t>(c));
  return Rng(h);
}

int metro_count_for(const CountryInfo& country) {
  return static_cast<int>(
      std::clamp(1.0 + country.internet_users_m / 15.0, 1.0, 20.0));
}

std::string metro_iata(std::string_view country_code, int ordinal) {
  std::string code;
  code += static_cast<char>(std::tolower(country_code[0]));
  code += static_cast<char>(std::tolower(country_code[1]));
  code += static_cast<char>('a' + ordinal % 26);
  return code;
}

/// Metros of one country, sorted descending by users.
std::vector<MetroIndex> country_metros(const Internet& net, CountryIndex country) {
  std::vector<MetroIndex> out;
  for (const auto& metro : net.metros) {
    if (metro.country == country) out.push_back(metro.index);
  }
  std::sort(out.begin(), out.end(), [&](MetroIndex a, MetroIndex b) {
    return net.metros[a].users > net.metros[b].users;
  });
  return out;
}

/// First colocation facility in a metro (every metro has at least one).
FacilityIndex first_colo(const Internet& net, MetroIndex metro) {
  for (const auto& facility : net.facilities) {
    if (facility.metro == metro && facility.kind == FacilityKind::kColocation) {
      return facility.index;
    }
  }
  throw Error("no colocation facility in metro " + net.metros[metro].name);
}

std::vector<AsIndex> ases_present_in_metro(const Internet& net, MetroIndex metro) {
  std::vector<AsIndex> out;
  for (const auto& as : net.ases) {
    if (std::find(as.metros.begin(), as.metros.end(), metro) != as.metros.end()) {
      out.push_back(as.index);
    }
  }
  return out;
}

int slash24_count_for(double users, double users_per_slash24) {
  const double raw = std::ceil(users / users_per_slash24);
  const auto clamped = static_cast<int>(std::clamp(raw, 1.0, 256.0));
  // Round up to a power of two so a single aligned prefix covers it.
  int pow2 = 1;
  while (pow2 < clamped) pow2 *= 2;
  return pow2;
}

}  // namespace

GeneratorConfig GeneratorConfig::tiny() {
  GeneratorConfig config;
  config.seed = 7;
  config.scale = 0.02;
  config.tier1_count = 4;
  config.max_access_per_country = 12;
  return config;
}

GeneratorConfig GeneratorConfig::small() {
  GeneratorConfig config;
  config.seed = 11;
  config.scale = 0.15;
  config.tier1_count = 8;
  config.max_access_per_country = 90;
  return config;
}

GeneratorConfig GeneratorConfig::paper() { return GeneratorConfig{}; }

GeneratorConfig GeneratorConfig::tenx() {
  GeneratorConfig config;
  config.scale = 10.0;
  config.max_access_per_country = 6000;
  return config;
}

double peak_demand_gbps(double users) noexcept {
  // ~1 Mbps per user at evening peak (fits the operator report in the paper:
  // a mid-size ISP sees on the order of 100 Gbps at peak).
  return std::max(0.5, users * 1e-3);
}

double ixp_member_port_gbps(double users) noexcept {
  // Roughly 20% of peak demand worth of public peering ports, between one
  // 100G port and a hard market ceiling.
  return std::clamp(0.2 * peak_demand_gbps(users), 100.0, 6000.0);
}

InternetGenerator::InternetGenerator(GeneratorConfig config)
    : config_(std::move(config)) {
  require(config_.scale > 0.0, "GeneratorConfig: scale must be positive");
  require(config_.tier1_count >= 1, "GeneratorConfig: need at least one tier-1");
}

Internet InternetGenerator::generate() {
  Internet net;
  Rng rng(config_.seed);
  // Global IPv4 plan: everything is carved out of 64.0.0.0/2.
  PrefixAllocator pool(Prefix(Ipv4::parse("64.0.0.0"), 2));

  build_metros(net, rng);
  build_facilities(net, rng);
  build_tier1s(net, rng, pool);
  build_transits(net, rng, pool);
  build_access_isps(net, rng, pool);
  build_ixps(net, rng, pool);
  build_hypergiants(net, rng, pool);
  provision_shared_links(net);
  return net;
}

void InternetGenerator::build_metros(Internet& net, Rng& rng) const {
  (void)rng;
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const CountryInfo& country = all_countries()[ci];
    Rng local = country_rng(config_.seed, country.code, /*salt=*/1);
    const int count = metro_count_for(country);
    // Zipf split of the country's users across metros.
    double harmonic = 0.0;
    for (int i = 1; i <= count; ++i) harmonic += 1.0 / i;
    const double jitter_radius_km = 150.0 + 60.0 * count;
    for (int i = 0; i < count; ++i) {
      Metro metro;
      metro.name = std::string(country.code) + "-metro" + std::to_string(i + 1);
      metro.iata = metro_iata(country.code, i);
      metro.country = ci;
      metro.users = country.internet_users_m * kMillion / (i + 1) / harmonic;
      metro.location = jitter_point(country.centroid, jitter_radius_km,
                                    local.uniform(), local.uniform());
      net.add_metro(std::move(metro));
    }
  }
}

void InternetGenerator::build_facilities(Internet& net, Rng& rng) const {
  (void)rng;
  for (const auto& metro : net.metros) {
    const int colos = 1 + std::min(4, static_cast<int>(metro.users / 8e6));
    Rng local = country_rng(config_.seed, metro.name, /*salt=*/2);
    for (int i = 0; i < colos; ++i) {
      Facility facility;
      facility.name = "colo-" + metro.iata + "-" + std::to_string(i + 1);
      facility.kind = FacilityKind::kColocation;
      facility.metro = metro.index;
      facility.owner_asn = 0;
      facility.location =
          jitter_point(metro.location, 15.0, local.uniform(), local.uniform());
      net.add_facility(std::move(facility));
    }
  }
}

void InternetGenerator::build_tier1s(Internet& net, Rng& rng,
                                     PrefixAllocator& pool) const {
  // Global metro ranking for backbone presence.
  std::vector<MetroIndex> ranked;
  ranked.reserve(net.metros.size());
  for (const auto& metro : net.metros) ranked.push_back(metro.index);
  std::sort(ranked.begin(), ranked.end(), [&](MetroIndex a, MetroIndex b) {
    return net.metros[a].users > net.metros[b].users;
  });

  static constexpr const char* kHomes[] = {"US", "DE", "GB", "FR", "JP", "NL", "SE",
                                           "US", "IN", "SG", "BR", "ZA", "AU", "CA"};
  std::vector<AsIndex> tier1s;
  for (int i = 0; i < config_.tier1_count; ++i) {
    As as;
    as.asn = 100 + static_cast<AsNumber>(i);
    as.name = "Backbone-" + std::to_string(i + 1);
    as.tier = AsTier::kTier1;
    const std::string_view home = kHomes[i % std::size(kHomes)];
    for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
      if (all_countries()[ci].code == home) as.country = ci;
    }
    // Present in the top metros worldwide (staggered so backbones differ)
    // and in every country's largest metro with probability 1/2.
    const std::size_t top = std::min<std::size_t>(ranked.size(), 40 + 5 * i);
    for (std::size_t r = 0; r < top; ++r) as.metros.push_back(ranked[r]);
    for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
      const auto metros = country_metros(net, ci);
      if (!metros.empty() && rng.chance(0.5)) as.metros.push_back(metros.front());
    }
    std::sort(as.metros.begin(), as.metros.end());
    as.metros.erase(std::unique(as.metros.begin(), as.metros.end()),
                    as.metros.end());
    as.primary_metro = as.metros.front();
    as.infra = PrefixAllocator(pool.allocate_prefix(18));
    const AsIndex index = net.add_as(std::move(as));
    net.announce(index, net.ases[index].infra.pool());
    tier1s.push_back(index);
  }

  // Full backbone mesh, landed at a colo in the biggest shared metro.
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      InterdomainLink link;
      link.kind = LinkKind::kPrivatePeering;
      link.a = tier1s[i];
      link.b = tier1s[j];
      link.facility = first_colo(net, ranked.front());
      link.capacity_gbps = 10000.0;
      net.add_link(link);
    }
  }
}

void InternetGenerator::build_transits(Internet& net, Rng& rng,
                                       PrefixAllocator& pool) const {
  std::vector<AsIndex> tier1s;
  for (const auto& as : net.ases) {
    if (as.tier == AsTier::kTier1) tier1s.push_back(as.index);
  }

  AsNumber next_asn = 1000;
  std::vector<AsIndex> transits;
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const CountryInfo& country = all_countries()[ci];
    const auto metros = country_metros(net, ci);
    const int count = static_cast<int>(
        std::clamp(1.0 + country.internet_users_m / 40.0, 1.0, 6.0));
    Rng local = country_rng(config_.seed, country.code, /*salt=*/3);
    for (int i = 0; i < count; ++i) {
      As as;
      as.asn = next_asn++;
      as.name = "Transit-" + std::string(country.code) + "-" + std::to_string(i + 1);
      as.tier = AsTier::kTransit;
      as.country = ci;
      const std::size_t presence = std::min<std::size_t>(metros.size(), 4);
      for (std::size_t m = 0; m < presence; ++m) as.metros.push_back(metros[m]);
      as.primary_metro = as.metros.front();
      as.infra = PrefixAllocator(pool.allocate_prefix(19));
      const AsIndex index = net.add_as(std::move(as));
      net.announce(index, net.ases[index].infra.pool());
      transits.push_back(index);

      // Two tier-1 providers.
      const auto picks = local.sample_indices(tier1s.size(),
                                              std::min<std::size_t>(2, tier1s.size()));
      for (const std::size_t pick : picks) {
        InterdomainLink link;
        link.kind = LinkKind::kTransit;
        link.a = index;             // customer
        link.b = tier1s[pick];      // provider
        link.facility = first_colo(net, net.ases[index].primary_metro);
        link.capacity_gbps = 400.0;
        net.add_link(link);
      }
    }
  }

  // Sparse continental transit peering (PNI).
  for (std::size_t i = 0; i < transits.size(); ++i) {
    for (std::size_t j = i + 1; j < transits.size(); ++j) {
      const auto& a = net.ases[transits[i]];
      const auto& b = net.ases[transits[j]];
      if (all_countries()[a.country].continent !=
          all_countries()[b.country].continent) {
        continue;
      }
      if (!rng.chance(0.2)) continue;
      InterdomainLink link;
      link.kind = LinkKind::kPrivatePeering;
      link.a = a.index;
      link.b = b.index;
      link.facility = first_colo(net, a.primary_metro);
      link.capacity_gbps = 100.0;
      net.add_link(link);
    }
  }
}

void InternetGenerator::build_access_isps(Internet& net, Rng& rng,
                                          PrefixAllocator& pool) const {
  (void)rng;
  AsNumber next_asn = 200000;
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const CountryInfo& country = all_countries()[ci];
    const auto metros = country_metros(net, ci);
    std::vector<AsIndex> country_transits;
    for (const auto& as : net.ases) {
      if (as.tier == AsTier::kTransit && as.country == ci) {
        country_transits.push_back(as.index);
      }
    }
    std::vector<AsIndex> tier1s;
    for (const auto& as : net.ases) {
      if (as.tier == AsTier::kTier1) tier1s.push_back(as.index);
    }

    const int count = static_cast<int>(std::clamp(
        country.internet_users_m * config_.access_per_million_users * config_.scale,
        2.0, static_cast<double>(config_.max_access_per_country)));
    Rng local = country_rng(config_.seed, country.code, /*salt=*/4);

    // Zipf user shares within the country.
    std::vector<double> shares(static_cast<std::size_t>(count));
    double total_share = 0.0;
    for (int i = 0; i < count; ++i) {
      shares[static_cast<std::size_t>(i)] = 1.0 / std::pow(i + 1.0, 1.05);
      total_share += shares[static_cast<std::size_t>(i)];
    }

    for (int i = 0; i < count; ++i) {
      As as;
      as.asn = next_asn++;
      as.name = "ISP-" + std::string(country.code) + "-" + std::to_string(i + 1);
      as.tier = AsTier::kAccess;
      as.country = ci;
      as.users = country.internet_users_m * kMillion *
                 shares[static_cast<std::size_t>(i)] / total_share;

      // Primary metro weighted by metro users; extra presence for big ISPs.
      std::vector<double> metro_weights;
      metro_weights.reserve(metros.size());
      for (const MetroIndex mi : metros) metro_weights.push_back(net.metros[mi].users);
      const std::size_t primary_pick = local.weighted_index(metro_weights);
      as.primary_metro = metros[primary_pick];
      as.metros.push_back(as.primary_metro);
      if (as.users > 3e6) {
        const auto extra = std::min<std::size_t>(
            metros.size() - 1, 1 + static_cast<std::size_t>(as.users / 5e6));
        std::size_t added = 0;
        for (const MetroIndex mi : metros) {
          if (added >= extra) break;
          if (mi == as.primary_metro) continue;
          as.metros.push_back(mi);
          ++added;
        }
      }

      // /18: room for router interfaces plus the largest multi-hypergiant
      // offnet deployments (thousands of hosted servers).
      as.infra = PrefixAllocator(pool.allocate_prefix(18));
      const int n24 = slash24_count_for(as.users, config_.users_per_slash24);
      int user_len = 24;
      for (int n = n24; n > 1; n /= 2) --user_len;
      as.user_prefixes.push_back(pool.allocate_prefix(user_len));

      const AsIndex index = net.add_as(std::move(as));
      net.announce(index, net.ases[index].infra.pool());
      for (const auto& prefix : net.ases[index].user_prefixes) {
        net.announce(index, prefix);
      }

      // Own facility at the primary metro.
      {
        Facility facility;
        facility.name = "pop-" + net.metros[net.ases[index].primary_metro].iata +
                        "-as" + std::to_string(net.ases[index].asn);
        facility.kind = FacilityKind::kIspOwned;
        facility.metro = net.ases[index].primary_metro;
        facility.owner_asn = net.ases[index].asn;
        facility.location = jitter_point(net.metros[facility.metro].location, 25.0,
                                         local.uniform(), local.uniform());
        const FacilityIndex fi = net.add_facility(std::move(facility));
        net.ases[index].facilities.push_back(fi);
      }

      // Providers: one or two national transits (or a tier-1 fallback),
      // plus a direct tier-1 for the biggest eyeballs.
      const double users = net.ases[index].users;
      const int provider_count = 1 + (users > 5e5 ? 1 : 0);
      std::vector<AsIndex> providers;
      if (country_transits.empty()) {
        providers.push_back(tier1s[local.uniform_int(
            0, static_cast<std::int64_t>(tier1s.size()) - 1)]);
      } else {
        const auto picks = local.sample_indices(
            country_transits.size(),
            std::min<std::size_t>(static_cast<std::size_t>(provider_count),
                                  country_transits.size()));
        for (const std::size_t pick : picks) providers.push_back(country_transits[pick]);
      }
      if (users > 5e6 && !tier1s.empty() && local.chance(0.7)) {
        providers.push_back(tier1s[local.uniform_int(
            0, static_cast<std::int64_t>(tier1s.size()) - 1)]);
      }
      for (const AsIndex provider : providers) {
        InterdomainLink link;
        link.kind = LinkKind::kTransit;
        link.a = index;
        link.b = provider;
        link.facility = net.ases[index].facilities.front();
        // Provisioned somewhat above peak demand, with a heavy lower tail.
        link.capacity_gbps = peak_demand_gbps(users) *
                             local.lognormal(std::log(1.4), 0.35) /
                             static_cast<double>(providers.size());
        net.add_link(link);
      }
    }
  }
}

void InternetGenerator::build_ixps(Internet& net, Rng& rng,
                                   PrefixAllocator& pool) const {
  (void)rng;
  for (const auto& metro : net.metros) {
    if (metro.users < config_.ixp_metro_users_m * kMillion) continue;
    Ixp ixp;
    ixp.name = "IX-" + metro.iata;
    ixp.metro = metro.index;
    ixp.facility = first_colo(net, metro.index);
    ixp.peering_lan = pool.allocate_prefix(22);
    const IxpIndex ixp_index = net.add_ixp(std::move(ixp));

    Rng local = country_rng(config_.seed, net.metros[metro.index].name, /*salt=*/5);
    std::uint64_t next_port = 2;
    for (const AsIndex ai : ases_present_in_metro(net, metro.index)) {
      const AsTier tier = net.ases[ai].tier;
      double join = 0.0;
      switch (tier) {
        case AsTier::kAccess: join = config_.ixp_join_access; break;
        case AsTier::kTransit: join = config_.ixp_join_transit; break;
        case AsTier::kTier1: join = config_.ixp_join_tier1; break;
        case AsTier::kHypergiant: join = 0.0; break;  // added later
      }
      if (!local.chance(join)) continue;
      auto& fabric = net.ixps[ixp_index];
      fabric.members.push_back(ai);
      net.register_ixp_port(fabric.peering_lan.at(next_port++), ixp_index, ai);
    }

    // Transit-transit public peering over the fabric.
    const auto& members = net.ixps[ixp_index].members;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const AsTier ta = net.ases[members[i]].tier;
        const AsTier tb = net.ases[members[j]].tier;
        double probability = 0.0;
        if (ta == AsTier::kTransit && tb == AsTier::kTransit) probability = 0.35;
        else if ((ta == AsTier::kTransit && tb == AsTier::kTier1) ||
                 (ta == AsTier::kTier1 && tb == AsTier::kTransit)) probability = 0.2;
        if (probability == 0.0 || !local.chance(probability)) continue;
        InterdomainLink link;
        link.kind = LinkKind::kIxpPeering;
        link.a = members[i];
        link.b = members[j];
        link.ixp = ixp_index;
        link.facility = net.ixps[ixp_index].facility;
        link.capacity_gbps =
            std::min(ixp_member_port_gbps(net.ases[members[i]].users),
                     ixp_member_port_gbps(net.ases[members[j]].users));
        net.add_link(link);
      }
    }
  }
}

void InternetGenerator::build_hypergiants(Internet& net, Rng& rng,
                                          PrefixAllocator& pool) const {
  (void)rng;
  struct HgSpec {
    AsNumber asn;
    const char* name;
  };
  static constexpr HgSpec kSpecs[] = {
      {kGoogleAsn, "Google"},
      {kNetflixAsn, "Netflix"},
      {kMetaAsn, "Meta"},
      {kAkamaiAsn, "Akamai"},
  };

  std::vector<AsIndex> tier1s;
  std::vector<AsIndex> transits;
  std::vector<AsIndex> access;
  for (const auto& as : net.ases) {
    switch (as.tier) {
      case AsTier::kTier1: tier1s.push_back(as.index); break;
      case AsTier::kTransit: transits.push_back(as.index); break;
      case AsTier::kAccess: access.push_back(as.index); break;
      case AsTier::kHypergiant: break;
    }
  }

  for (const auto& spec : kSpecs) {
    As as;
    as.asn = spec.asn;
    as.name = spec.name;
    as.tier = AsTier::kHypergiant;
    for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
      if (all_countries()[ci].code == "US") as.country = ci;
    }
    for (const auto& metro : net.metros) {
      if (metro.users >= 4e6) as.metros.push_back(metro.index);
    }
    require(!as.metros.empty(), "hypergiant has no onnet metros");
    as.primary_metro = as.metros.front();
    as.infra = PrefixAllocator(pool.allocate_prefix(16));
    const AsIndex index = net.add_as(std::move(as));
    net.announce(index, net.ases[index].infra.pool());

    Rng local = country_rng(config_.seed, spec.name, /*salt=*/6);

    // Settlement-free peering with every backbone (global reachability).
    for (const AsIndex t1 : tier1s) {
      InterdomainLink link;
      link.kind = LinkKind::kPrivatePeering;
      link.a = index;
      link.b = t1;
      link.facility = first_colo(net, net.ases[index].primary_metro);
      link.capacity_gbps = 5000.0;
      net.add_link(link);
    }
    // Plus a couple of paid transit relationships, so the hypergiant is
    // reachable as a *destination* from networks that only hear its
    // announcement through providers (e.g. other hypergiants).
    for (std::size_t t = 0; t < std::min<std::size_t>(2, tier1s.size()); ++t) {
      InterdomainLink link;
      link.kind = LinkKind::kTransit;
      link.a = index;        // customer
      link.b = tier1s[t];    // provider
      link.facility = first_colo(net, net.ases[index].primary_metro);
      link.capacity_gbps = 1000.0;
      net.add_link(link);
    }

    // PNIs with about half of the transit providers.
    for (const AsIndex transit : transits) {
      if (!local.chance(0.5)) continue;
      InterdomainLink link;
      link.kind = LinkKind::kPrivatePeering;
      link.a = index;
      link.b = transit;
      link.facility = first_colo(net, net.ases[transit].primary_metro);
      link.capacity_gbps = 500.0;
      net.add_link(link);
    }

    // Size-dependent PNIs with access ISPs. Capacity is provisioned around
    // the hypergiant's expected share of the ISP's peak demand, with a heavy
    // lower tail (the paper: PNIs frequently lack sufficient bandwidth).
    for (const AsIndex isp : access) {
      const double users = net.ases[isp].users;
      double probability = config_.hg_pni_small_isp;
      if (users >= 1e7) probability = config_.hg_pni_giant_isp;
      else if (users >= 1e6) probability = config_.hg_pni_large_isp;
      else if (users >= 1e5) probability = config_.hg_pni_medium_isp;
      if (!local.chance(probability)) continue;
      InterdomainLink link;
      link.kind = LinkKind::kPrivatePeering;
      link.a = index;
      link.b = isp;
      link.facility = first_colo(net, net.ases[isp].primary_metro);
      link.capacity_gbps = std::max(
          1.0, 0.2 * peak_demand_gbps(users) * local.lognormal(std::log(1.1), 0.45));
      net.add_link(link);
    }

    // Join the big IXP fabrics and peer with most co-located members.
    for (auto& ixp : net.ixps) {
      if (net.metros[ixp.metro].users < 4e6) continue;
      if (!local.chance(0.9)) continue;
      ixp.members.push_back(index);
      net.register_ixp_port(ixp.peering_lan.at(200 + index % 800), ixp.index, index);
      net.ases[index].metros.push_back(ixp.metro);
      for (const AsIndex member : ixp.members) {
        if (member == index) continue;
        const AsTier tier = net.ases[member].tier;
        if (tier != AsTier::kAccess && tier != AsTier::kTransit) continue;
        if (!local.chance(config_.hg_ixp_peer_probability)) continue;
        // Parallel PNI + IXP peerings between the same pair are common and
        // are exactly what makes some peers visible both ways (Section
        // 4.2.1's "62.2% via an IXP in at least one traceroute").
        InterdomainLink link;
        link.kind = LinkKind::kIxpPeering;
        link.a = index;
        link.b = member;
        link.ixp = ixp.index;
        link.facility = ixp.facility;
        // Bounded by the (smaller) ISP-side port.
        link.capacity_gbps = ixp_member_port_gbps(net.ases[member].users);
        net.add_link(link);
      }
    }
    auto& hg_metros = net.ases[index].metros;
    std::sort(hg_metros.begin(), hg_metros.end());
    hg_metros.erase(std::unique(hg_metros.begin(), hg_metros.end()),
                    hg_metros.end());
  }
}

void InternetGenerator::provision_shared_links(Internet& net) const {
  // Peak demand of the access cone under each AS (access ISPs count
  // themselves; transits sum their access customers).
  std::vector<double> cone_gbps(net.ases.size(), 0.0);
  for (const As& as : net.ases) {
    if (as.tier == AsTier::kAccess) cone_gbps[as.index] = peak_demand_gbps(as.users);
  }
  for (const InterdomainLink& link : net.links) {
    if (link.kind != LinkKind::kTransit) continue;
    if (net.ases[link.a].tier == AsTier::kAccess &&
        net.ases[link.b].tier == AsTier::kTransit) {
      cone_gbps[link.b] += cone_gbps[link.a];
    }
  }

  const auto headroom = [this](std::uint64_t key, double median, double sigma) {
    // Deterministic lognormal keyed by the link (seed-stable).
    double u1 = static_cast<double>(
                    mix64(key ^ config_.seed ^ 0xCAFE) >> 11) * 0x1.0p-53;
    const double u2 =
        static_cast<double>(mix64(key * 2654435761ULL) >> 11) * 0x1.0p-53;
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.141592653589793 * u2);
    return median * std::exp(sigma * z);
  };

  for (InterdomainLink& link : net.links) {
    const AsTier tier_a = net.ases[link.a].tier;
    const AsTier tier_b = net.ases[link.b].tier;
    if (link.kind == LinkKind::kTransit && tier_a == AsTier::kTransit &&
        tier_b == AsTier::kTier1) {
      // A transit's uplink carries a fraction of its cone (the rest is
      // served locally by offnets or peers), with modest headroom.
      link.capacity_gbps = std::max(
          400.0, 0.6 * cone_gbps[link.a] * headroom(link.index, 1.1, 0.3));
    } else if (link.kind == LinkKind::kPrivatePeering &&
               ((tier_a == AsTier::kHypergiant && tier_b == AsTier::kTransit) ||
                (tier_a == AsTier::kTransit && tier_b == AsTier::kHypergiant))) {
      // Hypergiant-transit PNIs are sized to the hypergiant's expected
      // *interdomain remainder* for the cone below -- which is why offnet
      // failures overflow them (Section 4.2.2's mechanism, one level up).
      const AsIndex transit = tier_a == AsTier::kTransit ? link.a : link.b;
      link.capacity_gbps = std::max(
          500.0, 0.08 * cone_gbps[transit] * headroom(link.index, 1.2, 0.4));
    } else if (link.kind == LinkKind::kPrivatePeering &&
               tier_a == AsTier::kTier1 && tier_b == AsTier::kTier1) {
      link.capacity_gbps = 200'000.0;  // multi-Tbps backbone mesh
    } else if ((tier_a == AsTier::kHypergiant && tier_b == AsTier::kTier1) ||
               (tier_a == AsTier::kTier1 && tier_b == AsTier::kHypergiant)) {
      link.capacity_gbps = 100'000.0;
    } else if (link.kind == LinkKind::kPrivatePeering &&
               tier_a == AsTier::kTransit && tier_b == AsTier::kTransit) {
      link.capacity_gbps =
          std::max(100.0, 0.15 * std::min(cone_gbps[link.a], cone_gbps[link.b]) *
                              headroom(link.index, 1.0, 0.3));
    } else if (link.kind == LinkKind::kIxpPeering &&
               (tier_a == AsTier::kTransit || tier_b == AsTier::kTransit)) {
      // A transit's IXP port serves its whole cone, not its (zero) direct
      // users; size it to the cone like its other shared links.
      const AsIndex transit = tier_a == AsTier::kTransit ? link.a : link.b;
      link.capacity_gbps =
          std::max(link.capacity_gbps,
                   0.08 * cone_gbps[transit] * headroom(link.index, 1.2, 0.35));
    }
  }
}

}  // namespace repro
