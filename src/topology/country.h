// Embedded country database: ISO code, continent, Internet-user population
// (an APNIC-style estimate) and a geographic centroid. The generator draws
// metros and ISP populations from this table; Figure 1 aggregates by it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/geo.h"

namespace repro {

enum class Continent : std::uint8_t {
  kAfrica,
  kAsia,
  kEurope,
  kNorthAmerica,
  kSouthAmerica,
  kOceania,
};

/// Human-readable continent name.
std::string_view to_string(Continent continent) noexcept;

struct CountryInfo {
  std::string_view code;       // ISO 3166-1 alpha-2
  std::string_view name;
  Continent continent;
  double internet_users_m;     // Internet users, millions (2023-ish estimate)
  GeoPoint centroid;
};

/// The full embedded table, sorted by ISO code.
std::span<const CountryInfo> all_countries() noexcept;

/// Lookup by ISO code. Throws NotFoundError for unknown codes.
const CountryInfo& country_by_code(std::string_view code);

/// Sum of internet_users_m over the table.
double total_internet_users_m() noexcept;

}  // namespace repro
