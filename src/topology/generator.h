// Synthetic Internet generation.
//
// Builds a world with countries, metros, facilities, IXPs, a tiered AS
// topology (tier-1 backbones, national transit providers, access ISPs) and
// the four hypergiants' onnet ASes, all wired with transit/PNI/IXP links and
// numbered out of a global IPv4 plan. Everything is deterministic given the
// config seed.
//
// This substitutes for the real Internet the paper measures; see DESIGN.md
// ("What we cannot have, and what we build instead").
#pragma once

#include <cstdint>

#include "topology/internet.h"
#include "util/rng.h"

namespace repro {

/// Well-known hypergiant ASNs (the real ones, for flavor).
inline constexpr AsNumber kGoogleAsn = 15169;
inline constexpr AsNumber kNetflixAsn = 2906;
inline constexpr AsNumber kMetaAsn = 32934;
inline constexpr AsNumber kAkamaiAsn = 20940;

struct GeneratorConfig {
  std::uint64_t seed = 42;

  /// Scales the number of access ISPs per country (1.0 = paper-scale,
  /// roughly 9-10k access ISPs worldwide).
  double scale = 1.0;

  /// Access ISPs per country = clamp(users_m * access_per_million_users *
  /// scale, 2, max_access_per_country).
  double access_per_million_users = 2.0;
  int max_access_per_country = 600;

  /// Number of global tier-1 backbones.
  int tier1_count = 14;

  /// One IXP in every metro with at least this many users (millions).
  double ixp_metro_users_m = 2.0;

  /// Users represented by one announced /24 of access space.
  double users_per_slash24 = 50000.0;

  /// Probability that an AS present in an IXP metro joins the fabric.
  double ixp_join_access = 0.6;
  double ixp_join_transit = 0.85;
  double ixp_join_tier1 = 0.7;

  /// Probability that a hypergiant peers (IXP) with a co-located member.
  double hg_ixp_peer_probability = 0.55;

  /// PNI probability between a hypergiant and an access ISP, by ISP size.
  /// Calibrated so that roughly half of offnet-hosting ISPs peer with the
  /// hypergiant at all (Section 4.2.1: 48.4% of Google-offnet ISPs show no
  /// evidence of peering).
  double hg_pni_giant_isp = 0.95;   // users >= 10M (hypergiants always PNI
                                    // with national-scale eyeballs)
  double hg_pni_large_isp = 0.55;   // users >= 1M
  double hg_pni_medium_isp = 0.22;  // users >= 100k
  double hg_pni_small_isp = 0.03;   // below

  /// Small test world: ~2 countries worth of ISPs, fast to build.
  static GeneratorConfig tiny();
  /// Mid-size world for integration tests.
  static GeneratorConfig small();
  /// Full paper-scale world.
  static GeneratorConfig paper();
  /// 10x the paper's access-ISP population (the north-star stress world);
  /// the per-country cap is raised so the extra ISPs actually materialize.
  static GeneratorConfig tenx();
};

/// Rough peak traffic demand of an access ISP in Gbps, from its user count.
/// Shared by the generator (capacity provisioning) and the traffic module
/// (demand modeling) so that provisioned headroom is meaningful.
double peak_demand_gbps(double users) noexcept;

/// Aggregate IXP port capacity a member of this size buys at one fabric
/// (members scale their ports with their traffic, within market limits).
double ixp_member_port_gbps(double users) noexcept;

/// Builds a deterministic synthetic Internet.
class InternetGenerator {
 public:
  explicit InternetGenerator(GeneratorConfig config);

  /// Generates the world. Call once.
  Internet generate();

 private:
  void build_metros(Internet& net, Rng& rng) const;
  void build_facilities(Internet& net, Rng& rng) const;
  void build_tier1s(Internet& net, Rng& rng, PrefixAllocator& pool) const;
  void build_transits(Internet& net, Rng& rng, PrefixAllocator& pool) const;
  void build_access_isps(Internet& net, Rng& rng, PrefixAllocator& pool) const;
  void build_ixps(Internet& net, Rng& rng, PrefixAllocator& pool) const;
  void build_hypergiants(Internet& net, Rng& rng, PrefixAllocator& pool) const;
  /// Re-sizes mid-hierarchy links (transit uplinks, hypergiant-transit
  /// PNIs, backbone mesh) to the peak demand of the customer cone beneath
  /// them -- static capacities would congest the moment the cone grows.
  void provision_shared_links(Internet& net) const;

  GeneratorConfig config_;
};

}  // namespace repro
