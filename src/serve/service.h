// The resident report service: a long-lived daemon answering the paper's
// tables and figures for arbitrary (Scenario, FaultPlan, xi) combinations
// out of warm artifacts. See docs/SERVICE.md for the query schema and the
// incremental-recompute matrix.
//
// Request/response is newline-delimited JSON, one object per line:
//
//   {"id":1,"query":"table1"}
//   {"id":2,"query":"table2","xis":[0.1,0.9],"fault":"chaos"}
//   {"query":"section421","scale":"tiny","flap_rate":0.3}
//   {"query":"stats"}          {"query":"ping"}          {"query":"shutdown"}
//
// Report queries (table1, figure1, table2, figure2, section421, section43)
// answer {"id":...,"ok":true,"query":...,"cached":bool,"ms":...,
// "render":"..."} where `render` is byte-identical to the corresponding
// examples/full_report section body for the same world (tests/test_serve.cpp
// enforces this for clean and chaos plans). Errors -- malformed JSON,
// unknown fields, out-of-range xi, oversized lines -- always produce
// {"ok":false,"error":"..."}; handle_line() never throws, so one bad
// request can never kill the daemon loop.
//
// Three layers of reuse, coldest to warmest:
//   1. store artifacts (population, scan, per-ISP matrices, per-xi
//      clusterings, topology) via Pipeline's load_or_compute keys,
//   2. resident pipelines (in-process stage caches) via ArtifactResolver,
//   3. rendered reports, keyed by (measurement digest, full plan JSON,
//      query, xi set) in a bounded LRU with single-flight compute --
//      serve.hit / serve.miss / serve.inflight_waits count them.
// Every query records serve.query_ms (always, tracing on or off) and a
// "serve.query" span so traced runs show queries on the Perfetto timeline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/resolver.h"

namespace repro::serve {

struct ServiceConfig {
  /// Shared artifact store; nullptr = no persistence (resident pipelines
  /// are then the only warm layer).
  std::shared_ptr<store::ArtifactStore> artifacts;
  /// Scale used when a request omits "scale".
  Scale default_scale = Scale::kTiny;
  /// Worker threads for the Unix-socket accept loop (0 = default count).
  std::size_t workers = 0;
  /// Requests longer than this are rejected before parsing.
  std::size_t max_request_bytes = 1 << 20;
  /// LRU bound on resident pipelines.
  std::size_t max_resident_pipelines = 8;
  /// LRU bound on cached rendered reports.
  std::size_t max_cached_renders = 1024;
};

/// A parsed, validated report query.
struct QueryRequest {
  /// Raw JSON for the echoed "id" (already quoted/escaped if a string);
  /// empty = absent.
  std::string id;
  std::string query;
  Scale scale = Scale::kTiny;
  fault::FaultPlan plan = fault::FaultPlan::none();
  /// For table2/figure2; validated into (0, 1).
  std::vector<double> xis;
};

struct QueryResponse {
  /// The full response line (no trailing newline), always valid JSON.
  std::string json;
  /// Raw render text for report queries (empty for admin queries and
  /// errors); what the byte-identity tests and `--render-out` diff.
  std::string render;
  bool ok = false;
  bool cached = false;
  double ms = 0.0;
};

class ReportService {
 public:
  explicit ReportService(ServiceConfig config);

  /// Parses and executes one request line. Never throws.
  QueryResponse handle_line(std::string_view line);

  /// Executes an already-parsed request (the load bench bypasses parsing).
  /// Never throws.
  QueryResponse execute(const QueryRequest& request);

  /// Sequential request loop over a stream pair: one response line per
  /// request line, flushed after each, until EOF or a "shutdown" query.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Unix-socket daemon: binds `path` (unlinking any stale socket), then
  /// accepts connections until a "shutdown" query arrives, dispatching each
  /// connection's request loop to a thread pool (config.workers). Returns
  /// normally on shutdown; throws repro::Error when the socket cannot be
  /// bound. Responses are ndjson exactly like serve_stream.
  void serve_unix_socket(const std::string& path);

  /// Set by a "shutdown" query; serve loops exit at the next boundary.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  ArtifactResolver& resolver() noexcept { return resolver_; }
  const ServiceConfig& config() const noexcept { return config_; }

  ReportService(const ReportService&) = delete;
  ReportService& operator=(const ReportService&) = delete;

 private:
  /// Render-cache key over (world, query, xis).
  static std::uint64_t render_key(const QueryRequest& request);
  /// Computes the render text for a report query (the cache-miss path).
  std::string compute_render(const QueryRequest& request);
  /// Single-flight cached render lookup; sets `cached`.
  std::string fetch_render(const QueryRequest& request, bool& cached);
  /// The "stats" admin payload (store occupancy + serve counters).
  std::string stats_json() const;

  ServiceConfig config_;
  ArtifactResolver resolver_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex render_mutex_;
  std::condition_variable render_cv_;
  /// Front = most recently used. Values are shared so eviction cannot
  /// invalidate a response being copied out.
  std::list<std::pair<std::uint64_t, std::shared_ptr<const std::string>>>
      render_lru_;
  std::unordered_map<std::uint64_t, decltype(render_lru_)::iterator>
      render_index_;
  std::unordered_set<std::uint64_t> render_inflight_;
};

}  // namespace repro::serve
